package gathernoc

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"gathernoc/internal/cnn"
	"gathernoc/internal/fault"
	"gathernoc/internal/noc"
	"gathernoc/internal/sim"
	"gathernoc/internal/topology"
	"gathernoc/internal/traffic"
	"gathernoc/internal/workload"
)

// faultMatrixConfig is matrixConfig's twin for the fault suite: one
// (topology, routing) cell at the Table I defaults with a deterministic
// transient-fault schedule layered on.
func faultMatrixConfig(topo, routing string, rows, cols int) noc.Config {
	cfg := noc.DefaultConfig(rows, cols)
	cfg.Topology = topo
	cfg.Routing = routing
	if topo == "torus" {
		cfg.EastSinks = false
	}
	cfg.Faults = &fault.Config{
		Seed:        0xF00D,
		DropRate:    0.05,
		CorruptRate: 0.02,
	}
	return cfg
}

// TestFaultMatrixConservation is the recovery proof: every topology ×
// routing × collection-scheme cell runs an accumulation workload under
// transient link drops and corruption, and must still deliver 100% of the
// payloads (every round's row sums verify bit-exactly against the
// reduce.Oracle — a single lost or duplicated operand fails the ops
// count) — with the recovery schedule itself bit-identical at every shard
// count.
func TestFaultMatrixConservation(t *testing.T) {
	schemes := []traffic.CollectScheme{traffic.CollectUnicast, traffic.CollectGather, traffic.CollectINA}
	shardCounts := []int{0, 1, 2, 4}
	for _, topoName := range topology.TopologyNames() {
		for _, routingName := range topology.RoutingNames() {
			for _, scheme := range schemes {
				name := fmt.Sprintf("%s/%s/%s", topoName, routingName, scheme)
				t.Run(name, func(t *testing.T) {
					type outcome struct {
						cycles      int64
						activity    noc.Activity
						drops       uint64
						corrupts    uint64
						retransmits uint64
						abandoned   uint64
					}
					run := func(shards int) outcome {
						t.Helper()
						cfg := faultMatrixConfig(topoName, routingName, 4, 4)
						cfg.Shards = shards
						if scheme == traffic.CollectINA {
							cfg.EnableINA = true
						}
						nw, err := noc.New(cfg)
						if err != nil {
							t.Fatal(err)
						}
						defer nw.Close()
						ctrl, err := traffic.NewAccumulationController(nw, traffic.AccumulationConfig{
							Scheme: scheme, Rounds: 3, ComputeLatency: 20,
						})
						if err != nil {
							t.Fatal(err)
						}
						res, err := ctrl.Run(2_000_000)
						if err != nil {
							t.Fatalf("run did not complete under faults: %v", err)
						}
						if res.OracleErrors != 0 {
							t.Fatalf("%d oracle errors: payloads lost or duplicated", res.OracleErrors)
						}
						out := outcome{
							cycles:   res.Cycles,
							activity: res.Activity,
							drops:    nw.FaultInjector().Drops(),
							corrupts: nw.FaultInjector().Corrupts(),
						}
						for id := 0; id < nw.Topology().NumNodes(); id++ {
							n := nw.NIC(topology.NodeID(id))
							out.retransmits += n.Retransmits.Value()
							out.abandoned += n.AbandonedPayloads.Value()
						}
						if out.abandoned != 0 {
							t.Fatalf("%d payloads abandoned under purely transient faults", out.abandoned)
						}
						return out
					}
					seq := run(0)
					if seq.drops == 0 && seq.corrupts == 0 {
						t.Fatalf("fault schedule injected nothing; the cell proves nothing")
					}
					if seq.drops > 0 && seq.retransmits == 0 {
						t.Fatalf("%d flits dropped but no retransmissions fired", seq.drops)
					}
					for _, shards := range shardCounts[1:] {
						got := run(shards)
						if got != seq {
							t.Errorf("shards=%d diverged from sequential:\nsequential %+v\nsharded    %+v", shards, seq, got)
						}
					}
				})
			}
		}
	}
}

// TestFaultRecoveryEngineEquivalence pins the fault path against the §2
// sleep/wake machinery: with transient faults on, the adaptive engine
// (credit flushers waking on owed credits, NICs held awake by unconfirmed
// payloads) must reproduce the naive always-tick schedule bit for bit.
func TestFaultRecoveryEngineEquivalence(t *testing.T) {
	run := func(alwaysTick bool) (*traffic.AccumulationResult, noc.Activity) {
		t.Helper()
		cfg := noc.DefaultConfig(6, 6)
		cfg.AlwaysTick = alwaysTick
		cfg.Faults = &fault.Config{Seed: 21, DropRate: 0.05, CorruptRate: 0.02}
		nw, err := noc.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer nw.Close()
		ctrl, err := traffic.NewAccumulationController(nw, traffic.AccumulationConfig{
			Scheme: traffic.CollectGather, Rounds: 3, ComputeLatency: 15,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := ctrl.Run(2_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return res, nw.Activity()
	}
	naiveRes, naiveAct := run(true)
	adaptiveRes, adaptiveAct := run(false)
	if naiveAct != adaptiveAct {
		t.Errorf("activity diverged:\nnaive    %+v\nadaptive %+v", naiveAct, adaptiveAct)
	}
	if naiveRes.Cycles != adaptiveRes.Cycles || naiveRes.OracleErrors != adaptiveRes.OracleErrors {
		t.Errorf("naive cycles=%d errs=%d, adaptive cycles=%d errs=%d",
			naiveRes.Cycles, naiveRes.OracleErrors, adaptiveRes.Cycles, adaptiveRes.OracleErrors)
	}
	if naiveRes.OracleErrors != 0 {
		t.Errorf("%d oracle errors", naiveRes.OracleErrors)
	}
}

// TestAlexNetPipelineUnderFaults is the acceptance run: a seeded AlexNet
// convolution pipeline (INA collection, the paper's headline mode)
// completes under transient drops and corruption with zero lost payloads,
// and the whole recovery — retransmissions included — is identical at
// shard counts {1, 2, 4}.
func TestAlexNetPipelineUnderFaults(t *testing.T) {
	type outcome struct {
		cycles      int64
		activity    noc.Activity
		drops       uint64
		retransmits uint64
	}
	run := func(shards int) outcome {
		t.Helper()
		cfg := noc.DefaultConfig(8, 8)
		cfg.EnableINA = true
		cfg.Shards = shards
		cfg.Faults = &fault.Config{Seed: 0xA1E7, DropRate: 0.02, CorruptRate: 0.01}
		nw, err := noc.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer nw.Close()
		job, drivers, err := workload.NewPipelineJob(nw, "alexnet", workload.PipelineConfig{
			Layers: cnn.AlexNetConvLayers(),
			Scheme: traffic.CollectINA,
			Rounds: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		s, err := workload.New(nw, []workload.Job{job})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(5_000_000)
		if err != nil {
			t.Fatalf("pipeline did not complete under faults: %v", err)
		}
		for i, drv := range drivers {
			if errs := drv.Snapshot().OracleErrors; errs != 0 {
				t.Fatalf("layer %d: %d oracle errors", i, errs)
			}
		}
		out := outcome{
			cycles:   res.Cycles,
			activity: nw.Activity(),
			drops:    nw.FaultInjector().Drops(),
		}
		for id := 0; id < nw.Topology().NumNodes(); id++ {
			out.retransmits += nw.NIC(topology.NodeID(id)).Retransmits.Value()
		}
		return out
	}
	seq := run(0)
	if seq.drops == 0 {
		t.Fatal("fault schedule injected nothing")
	}
	for _, shards := range []int{1, 2, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			if got := run(shards); got != seq {
				t.Errorf("diverged from sequential:\nsequential %+v\nsharded    %+v", seq, got)
			}
		})
	}
}

// TestWatchdogConvertsPartitionToDiagnostic seeds a permanent router
// outage that makes a workload unfinishable and requires the stall
// watchdog to surface a structured *sim.StallError — bounded retries gone
// quiet, diagnostic attached — instead of the run spinning to its cycle
// cap.
func TestWatchdogConvertsPartitionToDiagnostic(t *testing.T) {
	cfg := noc.DefaultConfig(4, 4)
	cfg.Faults = &fault.Config{
		Seed:         3,
		Routers:      []fault.RouterOutage{{Node: 5, Window: fault.Window{From: 0}}},
		RetryTimeout: 64,
		MaxRetries:   2,
	}
	nw, err := noc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	nw.Engine().SetWatchdog(nw.Watchdog(0))
	ctrl, err := traffic.NewAccumulationController(nw, traffic.AccumulationConfig{
		Scheme: traffic.CollectUnicast, Rounds: 1, ComputeLatency: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = ctrl.Run(50_000_000)
	if err == nil {
		t.Fatal("run completed despite the partitioned node")
	}
	if errors.Is(err, sim.ErrMaxCyclesExceeded) {
		t.Fatalf("watchdog never fired; run burned its whole cycle budget: %v", err)
	}
	if !errors.Is(err, sim.ErrStalled) {
		t.Fatalf("want sim.ErrStalled, got %v", err)
	}
	var stall *sim.StallError
	if !errors.As(err, &stall) {
		t.Fatalf("want *sim.StallError, got %T", err)
	}
	if stall.Diagnostic == "" {
		t.Error("stall diagnostic empty")
	}
	if !strings.Contains(stall.Diagnostic, "fault totals") {
		t.Errorf("diagnostic missing fault totals:\n%s", stall.Diagnostic)
	}
	var abandoned uint64
	for id := 0; id < nw.Topology().NumNodes(); id++ {
		abandoned += nw.NIC(topology.NodeID(id)).AbandonedPayloads.Value()
	}
	if abandoned == 0 {
		t.Error("no payload was abandoned; the stall should follow bounded retries going quiet")
	}
}

// TestShardedFlitPoolLeakFreedomWithFaults extends the pool ownership
// check to a lossy fabric: flits destroyed mid-flight by the injector are
// released into the dropping link's shard view and accounted in the
// pool's Drops counter, so a drained network still holds zero live flits
// and packet conservation closes exactly — every generator packet either
// delivered or died whole on a link (payload-less generator packets are
// not retransmitted; loss is theirs to keep).
func TestShardedFlitPoolLeakFreedomWithFaults(t *testing.T) {
	cfg := noc.DefaultConfig(8, 8)
	cfg.EastSinks = false
	cfg.Shards = 4
	cfg.DebugFlitPool = true
	cfg.Faults = &fault.Config{Seed: 5, DropRate: 0.1}
	nw, err := noc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	gen, err := traffic.NewGenerator(nw, traffic.GeneratorConfig{
		Pattern:       traffic.UniformRandom{Nodes: 64},
		InjectionRate: 0.05,
		PacketFlits:   2,
		Warmup:        100,
		Measure:       900,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gen.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if live := nw.FlitPool().Live(); live != 0 {
		t.Fatalf("drained lossy network holds %d leaked flits", live)
	}
	drops := nw.FlitPool().Drops()
	if drops == 0 {
		t.Fatal("no flit was dropped — the fault schedule did nothing")
	}
	if inj := nw.FaultInjector().Drops(); inj != drops {
		t.Errorf("injector counted %d dropped flits, pool released %d", inj, drops)
	}
	if drops%2 != 0 {
		t.Errorf("%d dropped flits is odd; 2-flit packets must die whole", drops)
	}
	lostPackets := drops / 2
	if gen.Sent() != gen.Delivered()+lostPackets {
		t.Errorf("conservation broken: sent %d, delivered %d, lost %d",
			gen.Sent(), gen.Delivered(), lostPackets)
	}
}

// TestCheckReachableNamesPartition pins the named error: a destination
// severed by an active outage must be reported as fault.ErrUnreachable,
// and reachable pairs must stay nil.
func TestCheckReachableNamesPartition(t *testing.T) {
	cfg := noc.DefaultConfig(4, 4)
	cfg.Faults = &fault.Config{
		Routers: []fault.RouterOutage{{Node: 5, Window: fault.Window{From: 0}}},
	}
	nw, err := noc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	if err := nw.CheckReachable(0, 15); err != nil {
		t.Errorf("0>15 should route around the dead node: %v", err)
	}
	if err := nw.CheckReachable(0, 5); !errors.Is(err, fault.ErrUnreachable) {
		t.Errorf("0>5 into the dead node: want ErrUnreachable, got %v", err)
	}
	if err := nw.CheckReachable(5, 0); !errors.Is(err, fault.ErrUnreachable) {
		t.Errorf("5>0 out of the dead node: want ErrUnreachable, got %v", err)
	}
	if err := nw.CheckReachable(0, nw.RowSinkID(2)); err != nil {
		t.Errorf("sink 2 should be reachable: %v", err)
	}
}
