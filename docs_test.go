package gathernoc

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// markdownFiles returns the repository's markdown files (the tree walked
// from the module root, VCS and tool directories skipped).
func markdownFiles(t *testing.T) []string {
	t.Helper()
	var files []string
	err := filepath.Walk(".", func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			if name := info.Name(); name == ".git" || name == ".github" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".md") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no markdown files found")
	}
	return files
}

// TestMarkdownLinksResolve is the docs gate's link check: every relative
// markdown link target in the repository's documentation must exist on
// disk, so renames and deletions cannot silently orphan the docs.
// External schemes and pure anchors are out of scope (no network in CI).
func TestMarkdownLinksResolve(t *testing.T) {
	linkRE := regexp.MustCompile(`\]\(([^)\s]+)\)`)
	for _, path := range markdownFiles(t) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range linkRE.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			resolved := filepath.Join(filepath.Dir(path), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (%v)", path, m[1], err)
			}
		}
	}
}

// TestDesignSectionReferencesResolve verifies that every "DESIGN.md §N"
// reference — in the markdown docs and in Go doc comments across the
// tree — names a section heading that actually exists, so DESIGN.md
// renumbering cannot strand stale pointers.
func TestDesignSectionReferencesResolve(t *testing.T) {
	design, err := os.ReadFile("DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	headingRE := regexp.MustCompile(`(?m)^## §(\d+)`)
	have := map[string]bool{}
	for _, m := range headingRE.FindAllStringSubmatch(string(design), -1) {
		have[m[1]] = true
	}
	if len(have) == 0 {
		t.Fatal("DESIGN.md has no §N section headings")
	}

	refRE := regexp.MustCompile(`DESIGN(?:\.md)? (?:§|&sect;)(\d+)`)
	var sources []string
	sources = append(sources, markdownFiles(t)...)
	err = filepath.Walk(".", func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			if info.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			sources = append(sources, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range sources {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range refRE.FindAllStringSubmatch(string(data), -1) {
			if !have[m[1]] {
				t.Errorf("%s: references DESIGN.md §%s, which does not exist", path, m[1])
			}
		}
	}
}
