package traffic

import (
	"fmt"
	"math/rand"

	"gathernoc/internal/nic"
	"gathernoc/internal/noc"
	"gathernoc/internal/stats"
	"gathernoc/internal/topology"
)

// GeneratorConfig parameterizes an open-loop synthetic run.
type GeneratorConfig struct {
	// Pattern picks destinations.
	Pattern Pattern
	// InjectionRate is packets per node per cycle (Bernoulli process).
	InjectionRate float64
	// PacketFlits is the injected packet length.
	PacketFlits int
	// Warmup and Measure are the warm-up and measurement windows in
	// cycles; injection stops after Warmup+Measure and the run drains.
	Warmup  int64
	Measure int64
	// Seed makes the run reproducible.
	Seed int64
}

// Validate reports configuration errors.
func (c GeneratorConfig) Validate() error {
	switch {
	case c.Pattern == nil:
		return fmt.Errorf("traffic: nil pattern")
	case c.InjectionRate < 0 || c.InjectionRate > 1:
		return fmt.Errorf("traffic: injection rate %v out of [0,1]", c.InjectionRate)
	case c.PacketFlits < 1:
		return fmt.Errorf("traffic: packet length %d invalid", c.PacketFlits)
	case c.Warmup < 0 || c.Measure < 1:
		return fmt.Errorf("traffic: windows %d/%d invalid", c.Warmup, c.Measure)
	}
	return nil
}

// GeneratorResult summarizes a synthetic run.
type GeneratorResult struct {
	// Injected and Received count measured-window packets.
	Injected uint64
	Received uint64
	// Latency samples received packets' end-to-end latencies (cycles),
	// measurement window only. QueueLatency and NetworkLatency break the
	// same packets' latency into source-queueing and in-network portions.
	Latency        stats.Sample
	QueueLatency   stats.Sample
	NetworkLatency stats.Sample
	// Hops samples the same packets' traversed link hops (routers visited
	// minus one), the measured counterpart of the per-topology analytic
	// hop bounds (analytic.UniformMeanHops).
	Hops stats.Sample
	// Cycles is the total run length including drain.
	Cycles int64
	// Throughput is received packets per node per cycle over the
	// measurement window.
	Throughput float64
}

// Generator drives an open-loop synthetic workload on a network. Create
// one per run.
type Generator struct {
	nw  *noc.Network
	cfg GeneratorConfig
	rng *rand.Rand

	injecting bool
	injected  uint64
	received  uint64
	res       GeneratorResult
}

// NewGenerator wires a generator to nw's NIC callbacks.
func NewGenerator(nw *noc.Network, cfg GeneratorConfig) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		nw:        nw,
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		injecting: true,
	}
	for id := 0; id < nw.Mesh().NumNodes(); id++ {
		nw.NIC(topology.NodeID(id)).OnReceive(g.onPacket)
	}
	return g, nil
}

func (g *Generator) onPacket(p *nic.ReceivedPacket) {
	if p.InjectCycle >= g.cfg.Warmup && p.InjectCycle < g.cfg.Warmup+g.cfg.Measure {
		g.received++
		g.res.Latency.Observe(float64(p.Latency()))
		g.res.QueueLatency.Observe(float64(p.QueueLatency()))
		g.res.NetworkLatency.Observe(float64(p.NetworkLatency()))
		g.res.Hops.Observe(float64(p.Hops - 1))
	}
}

// Tick injects per-node Bernoulli traffic while inside the injection
// window.
func (g *Generator) Tick(cycle int64) {
	if !g.injecting {
		return
	}
	if cycle >= g.cfg.Warmup+g.cfg.Measure {
		g.injecting = false
		return
	}
	measured := cycle >= g.cfg.Warmup
	for id := 0; id < g.nw.Mesh().NumNodes(); id++ {
		if g.rng.Float64() >= g.cfg.InjectionRate {
			continue
		}
		src := topology.NodeID(id)
		dst := g.cfg.Pattern.Destination(src, g.rng)
		if dst == src {
			continue
		}
		g.nw.NIC(src).SendUnicastN(dst, g.cfg.PacketFlits)
		if measured {
			g.injected++
		}
	}
}

// Run executes the workload: warm-up, measurement, then drain. It returns
// the result summary.
func (g *Generator) Run(maxCycles int64) (*GeneratorResult, error) {
	eng := g.nw.Engine()
	eng.AddTicker(g)
	done := func() bool { return !g.injecting && g.nw.Quiescent() }
	cycles, err := eng.RunUntil(done, maxCycles)
	if err != nil {
		return nil, err
	}
	g.res.Injected = g.injected
	g.res.Received = g.received
	g.res.Cycles = cycles
	if g.cfg.Measure > 0 {
		g.res.Throughput = float64(g.received) /
			float64(g.cfg.Measure) / float64(g.nw.Mesh().NumNodes())
	}
	return &g.res, nil
}
