package traffic

import (
	"fmt"
	"math/rand"

	"gathernoc/internal/flit"
	"gathernoc/internal/nic"
	"gathernoc/internal/noc"
	"gathernoc/internal/stats"
	"gathernoc/internal/topology"
)

// GeneratorConfig parameterizes an open-loop synthetic run.
type GeneratorConfig struct {
	// Pattern picks destinations.
	Pattern Pattern
	// InjectionRate is packets per node per cycle (Bernoulli process).
	InjectionRate float64
	// PacketFlits is the injected packet length.
	PacketFlits int
	// Warmup and Measure are the warm-up and measurement windows in
	// cycles; injection stops after Warmup+Measure and the run drains.
	Warmup  int64
	Measure int64
	// Seed makes the run reproducible.
	Seed int64
}

// Validate reports configuration errors.
func (c GeneratorConfig) Validate() error {
	switch {
	case c.Pattern == nil:
		return fmt.Errorf("traffic: nil pattern")
	case c.InjectionRate < 0 || c.InjectionRate > 1:
		return fmt.Errorf("traffic: injection rate %v out of [0,1]", c.InjectionRate)
	case c.PacketFlits < 1:
		return fmt.Errorf("traffic: packet length %d invalid", c.PacketFlits)
	case c.Warmup < 0 || c.Measure < 1:
		return fmt.Errorf("traffic: windows %d/%d invalid", c.Warmup, c.Measure)
	}
	return nil
}

// GeneratorResult summarizes a synthetic run.
type GeneratorResult struct {
	// Injected and Received count measured-window packets.
	Injected uint64
	Received uint64
	// Latency samples received packets' end-to-end latencies (cycles),
	// measurement window only. QueueLatency and NetworkLatency break the
	// same packets' latency into source-queueing and in-network portions.
	Latency        stats.Sample
	QueueLatency   stats.Sample
	NetworkLatency stats.Sample
	// Hops samples the same packets' traversed link hops (routers visited
	// minus one), the measured counterpart of the per-topology analytic
	// hop bounds (analytic.UniformMeanHops).
	Hops stats.Sample
	// Cycles is the total run length including drain.
	Cycles int64
	// Throughput is received packets per node per cycle over the
	// measurement window.
	Throughput float64
}

// Generator drives an open-loop synthetic workload on a network, either
// standalone (NewGenerator + Run, which wire the NIC callbacks and own the
// engine loop) or as a workload.Driver phase (NewGeneratorDriver, where a
// scheduler admits the phase, ticks it and dispatches its tagged packets
// back through OnPacket). Create one per run or phase.
type Generator struct {
	nw  *noc.Network
	cfg GeneratorConfig
	rng *rand.Rand
	// src wraps the seeded source with a draw counter so snapshots can
	// record the RNG position and restore it by replaying discards; the
	// draw sequence is untouched, keeping golden results bit-identical.
	src *countingSource
	tag flit.Tag

	// base is the engine cycle the injection windows are measured from:
	// 0 standalone, the phase admission cycle under a scheduler.
	base      int64
	injecting bool
	injected  uint64
	received  uint64
	// sent/delivered count every packet of the run (warm-up included), the
	// conservation pair behind Drained.
	sent      uint64
	delivered uint64
	res       GeneratorResult
}

// NewGenerator wires a generator to nw's NIC callbacks for a standalone
// Run.
func NewGenerator(nw *noc.Network, cfg GeneratorConfig) (*Generator, error) {
	g, err := NewGeneratorDriver(nw, cfg)
	if err != nil {
		return nil, err
	}
	g.injecting = true
	for id := 0; id < nw.Mesh().NumNodes(); id++ {
		nw.NIC(topology.NodeID(id)).OnReceive(g.OnPacket)
	}
	return g, nil
}

// NewGeneratorDriver prepares a generator phase for a workload scheduler:
// no NIC callbacks are wired (the scheduler owns them and dispatches this
// phase's packets to OnPacket by tag) and injection starts at Start, not
// construction.
func NewGeneratorDriver(nw *noc.Network, cfg GeneratorConfig) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	src := newCountingSource(cfg.Seed)
	return &Generator{
		nw:  nw,
		cfg: cfg,
		rng: rand.New(src),
		src: src,
	}, nil
}

// SetTag assigns the workload tag stamped onto every injected packet
// (workload.Taggable; the scheduler calls it before Start).
func (g *Generator) SetTag(t flit.Tag) { g.tag = t }

// Start begins the injection windows at the given cycle (workload.Driver).
func (g *Generator) Start(cycle int64) {
	g.base = cycle
	g.injecting = true
}

// Injected reports whether the injection window has elapsed
// (workload.Driver: overlap successors may start).
func (g *Generator) Injected() bool { return !g.injecting }

// Drained reports whether every injected packet has been delivered
// (workload.Driver: barrier successors may start). Meaningful only when
// packet deliveries reach OnPacket — standalone via NewGenerator's
// callbacks, under a scheduler via tag dispatch.
func (g *Generator) Drained() bool { return !g.injecting && g.delivered == g.sent }

// Sent and Delivered expose the conservation pair: every packet the
// generator injected (warm-up included) and every one that reached an
// ejection point.
func (g *Generator) Sent() uint64      { return g.sent }
func (g *Generator) Delivered() uint64 { return g.delivered }

// OnPacket records one delivered generator packet (measurement-window
// packets feed the latency samples). The scheduler dispatches tagged
// packets here; standalone runs wire it as the NIC receive callback.
func (g *Generator) OnPacket(p *nic.ReceivedPacket) {
	g.delivered++
	rel := p.InjectCycle - g.base
	if rel >= g.cfg.Warmup && rel < g.cfg.Warmup+g.cfg.Measure {
		g.received++
		g.res.Latency.Observe(float64(p.Latency()))
		g.res.QueueLatency.Observe(float64(p.QueueLatency()))
		g.res.NetworkLatency.Observe(float64(p.NetworkLatency()))
		g.res.Hops.Observe(float64(p.Hops - 1))
	}
}

// Tick injects per-node Bernoulli traffic while inside the injection
// window.
func (g *Generator) Tick(cycle int64) {
	if !g.injecting {
		return
	}
	rel := cycle - g.base
	if rel >= g.cfg.Warmup+g.cfg.Measure {
		g.injecting = false
		return
	}
	measured := rel >= g.cfg.Warmup
	for id := 0; id < g.nw.Mesh().NumNodes(); id++ {
		if g.rng.Float64() >= g.cfg.InjectionRate {
			continue
		}
		src := topology.NodeID(id)
		dst := g.cfg.Pattern.Destination(src, g.rng)
		if dst == src {
			continue
		}
		n := g.nw.NIC(src)
		n.SetTag(g.tag)
		n.SendUnicastN(dst, g.cfg.PacketFlits)
		g.sent++
		if measured {
			g.injected++
		}
	}
}

// Run executes the workload: warm-up, measurement, then drain. It returns
// the result summary.
func (g *Generator) Run(maxCycles int64) (*GeneratorResult, error) {
	eng := g.nw.Engine()
	eng.AddTicker(g)
	done := func() bool { return !g.injecting && g.nw.Quiescent() }
	cycles, err := eng.RunUntil(done, maxCycles)
	if err != nil {
		return nil, err
	}
	return g.Result(cycles), nil
}

// Result finalizes the run summary. Run calls it; scheduler-driven phases
// call it once the scheduler completes, with the run length to record.
func (g *Generator) Result(cycles int64) *GeneratorResult {
	g.res.Injected = g.injected
	g.res.Received = g.received
	g.res.Cycles = cycles
	if g.cfg.Measure > 0 {
		g.res.Throughput = float64(g.received) /
			float64(g.cfg.Measure) / float64(g.nw.Mesh().NumNodes())
	}
	return &g.res
}
