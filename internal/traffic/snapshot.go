package traffic

import (
	"fmt"
	"math/rand"

	"gathernoc/internal/stats"
)

// countingSource wraps the standard seeded source with a draw counter.
// The wrapper is draw-transparent — every value comes straight from the
// wrapped source — so a generator built on it produces exactly the
// numbers the plain rand.NewSource generator did. Snapshots record the
// count; restore reconstructs the source from the seed and discards the
// same number of draws. Both Int63 and Uint64 of the runtime source
// advance its state by exactly one step, so uniform discarding via
// Uint64 lands on the identical state regardless of which method the
// original draws used (rejection-sampling loops included: they draw
// through this wrapper too, so the count reflects actual consumption).
type countingSource struct {
	src   rand.Source64
	draws uint64
}

func newCountingSource(seed int64) *countingSource {
	return &countingSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (s *countingSource) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

func (s *countingSource) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

func (s *countingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.draws = 0
}

// skipTo re-seeds the source and discards n draws, reproducing the state
// a source that made n draws since seeding would be in.
func (s *countingSource) skipTo(seed int64, n uint64) {
	s.src.Seed(seed)
	for i := uint64(0); i < n; i++ {
		s.src.Uint64()
	}
	s.draws = n
}

// GeneratorState is the serialized mutable state of a Generator. The
// configuration (pattern, rates, windows, seed) is not serialized — a
// resuming run reconstructs the generator from the same config, and the
// checkpoint layer guards that with the network config hash.
type GeneratorState struct {
	Base      int64
	Injecting bool
	Injected  uint64
	Received  uint64
	Sent      uint64
	Delivered uint64
	// Draws is the RNG position: how many values the generator has drawn
	// from its seeded source.
	Draws uint64

	Latency        stats.Sample
	QueueLatency   stats.Sample
	NetworkLatency stats.Sample
	Hops           stats.Sample
}

// CaptureState serializes the generator's progress at a cycle boundary.
func (g *Generator) CaptureState() GeneratorState {
	return GeneratorState{
		Base:      g.base,
		Injecting: g.injecting,
		Injected:  g.injected,
		Received:  g.received,
		Sent:      g.sent,
		Delivered: g.delivered,
		Draws:     g.src.draws,

		Latency:        g.res.Latency.Clone(),
		QueueLatency:   g.res.QueueLatency.Clone(),
		NetworkLatency: g.res.NetworkLatency.Clone(),
		Hops:           g.res.Hops.Clone(),
	}
}

// RestoreState rewinds a freshly constructed generator (same config as
// the captured one) to the captured progress, RNG position included.
func (g *Generator) RestoreState(s GeneratorState) error {
	if g.sent != 0 || g.src.draws != 0 {
		return fmt.Errorf("traffic: RestoreState needs a fresh generator")
	}
	g.base = s.Base
	g.injecting = s.Injecting
	g.injected = s.Injected
	g.received = s.Received
	g.sent = s.Sent
	g.delivered = s.Delivered
	g.src.skipTo(g.cfg.Seed, s.Draws)

	g.res.Latency = s.Latency.Clone()
	g.res.QueueLatency = s.QueueLatency.Clone()
	g.res.NetworkLatency = s.NetworkLatency.Clone()
	g.res.Hops = s.Hops.Clone()
	return nil
}
