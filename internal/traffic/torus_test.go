package traffic

import (
	"fmt"
	"testing"

	"gathernoc/internal/noc"
)

// TestTorusCollectionSchemesOracle runs the accumulation-phase workload
// on a torus for every routing and collection scheme: the rounds must
// complete (no deadlock among collective, self-initiated and background
// packets) and every row reduction must match the software oracle bit
// for bit. On the torus the controller follows the network's RowCollect
// plan — two initiators per row under wrap-aware dimension-order routing,
// a column-0 initiator under the mesh-sub-network adaptive routings.
func TestTorusCollectionSchemesOracle(t *testing.T) {
	for _, routing := range []string{"xy", "oddeven", "westfirst"} {
		for _, scheme := range []CollectScheme{CollectUnicast, CollectGather, CollectINA} {
			name := fmt.Sprintf("%s/%s", routing, scheme)
			t.Run(name, func(t *testing.T) {
				cfg := noc.DefaultTorusConfig(4, 6)
				cfg.Routing = routing
				cfg.EnableINA = scheme == CollectINA
				nw, err := noc.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				ctl, err := NewAccumulationController(nw, AccumulationConfig{
					Scheme: scheme, Rounds: 2, ComputeLatency: 10,
				})
				if err != nil {
					t.Fatal(err)
				}
				res, err := ctl.Run(2_000_000)
				if err != nil {
					t.Fatal(err)
				}
				if res.OracleErrors != 0 {
					t.Fatalf("%d oracle errors", res.OracleErrors)
				}
				if res.RoundCycles.N() != 2 {
					t.Fatalf("completed %v rounds, want 2", res.RoundCycles.N())
				}
				if scheme == CollectINA && res.Merges == 0 && routing == "xy" {
					t.Error("wrap-aware INA collection produced no in-network merges")
				}
				if scheme == CollectGather && res.Merges == 0 {
					// Merges counts MergeAcks (INA); gather pickups land in
					// piggyback acks — assert via self-initiation staying
					// below the everyone-falls-back worst case instead.
					if res.SelfInitiated >= uint64(cfg.Rows*cfg.Cols*2) {
						t.Errorf("gather collection degenerated to all self-initiations (%d)", res.SelfInitiated)
					}
				}
			})
		}
	}
}

// TestMeshCollectionWithoutSinks exercises the RowCollect fallback on a
// plain mesh with EastSinks disabled: collection targets the east-column
// PE and the oracle must still pass.
func TestMeshCollectionWithoutSinks(t *testing.T) {
	cfg := noc.DefaultConfig(4, 4)
	cfg.EastSinks = false
	cfg.EnableINA = true
	nw, err := noc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewAccumulationController(nw, AccumulationConfig{
		Scheme: CollectINA, Rounds: 2, ComputeLatency: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctl.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.OracleErrors != 0 {
		t.Fatalf("%d oracle errors", res.OracleErrors)
	}
}
