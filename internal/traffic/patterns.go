// Package traffic provides synthetic workload generators for the NoC
// (uniform random, transpose, bit-complement, hotspot, many-to-one) and a
// JSON trace format with record/replay support — the stand-in for the
// paper's PyTorch-generated convolution-layer traces.
package traffic

import (
	"fmt"
	"math/rand"

	"gathernoc/internal/topology"
)

// Pattern maps a source node to a destination for one injected packet.
type Pattern interface {
	// Name identifies the pattern in reports.
	Name() string
	// Destination picks the target for a packet injected at src. It must
	// not return src itself (the generator retries or skips such picks).
	Destination(src topology.NodeID, rng *rand.Rand) topology.NodeID
}

// UniformRandom sends every packet to a uniformly random other node.
type UniformRandom struct {
	// Nodes is the mesh node count.
	Nodes int
}

// Name implements Pattern.
func (UniformRandom) Name() string { return "uniform" }

// Destination implements Pattern.
func (u UniformRandom) Destination(src topology.NodeID, rng *rand.Rand) topology.NodeID {
	if u.Nodes < 2 {
		return src
	}
	for {
		d := topology.NodeID(rng.Intn(u.Nodes))
		if d != src {
			return d
		}
	}
}

// Transpose sends (r,c) to (c,r); nodes on the diagonal send uniformly.
type Transpose struct {
	// Mesh supplies the coordinate mapping (any grid topology works).
	Mesh topology.Topology
}

// Name implements Pattern.
func (Transpose) Name() string { return "transpose" }

// Destination implements Pattern.
func (t Transpose) Destination(src topology.NodeID, rng *rand.Rand) topology.NodeID {
	c := t.Mesh.Coord(src)
	if c.Row == c.Col || t.Mesh.Rows() != t.Mesh.Cols() {
		return UniformRandom{Nodes: t.Mesh.NumNodes()}.Destination(src, rng)
	}
	return t.Mesh.ID(topology.Coord{Row: c.Col, Col: c.Row})
}

// BitComplement sends node i to node (N-1-i).
type BitComplement struct {
	// Nodes is the mesh node count.
	Nodes int
}

// Name implements Pattern.
func (BitComplement) Name() string { return "bitcomplement" }

// Destination implements Pattern.
func (b BitComplement) Destination(src topology.NodeID, rng *rand.Rand) topology.NodeID {
	d := topology.NodeID(b.Nodes - 1 - int(src))
	if d == src {
		return UniformRandom{Nodes: b.Nodes}.Destination(src, rng)
	}
	return d
}

// Hotspot sends a fraction of traffic to a fixed hot node and the rest
// uniformly — the many-to-one stress the gather mechanism targets.
type Hotspot struct {
	// Nodes is the mesh node count; Target the hot node.
	Nodes  int
	Target topology.NodeID
	// Fraction in [0,1] is the share of packets aimed at Target.
	Fraction float64
}

// Name implements Pattern.
func (Hotspot) Name() string { return "hotspot" }

// Destination implements Pattern.
func (h Hotspot) Destination(src topology.NodeID, rng *rand.Rand) topology.NodeID {
	if src != h.Target && rng.Float64() < h.Fraction {
		return h.Target
	}
	return UniformRandom{Nodes: h.Nodes}.Destination(src, rng)
}

// PatternByName constructs a pattern for a grid topology by CLI name.
func PatternByName(name string, mesh topology.Topology) (Pattern, error) {
	switch name {
	case "uniform":
		return UniformRandom{Nodes: mesh.NumNodes()}, nil
	case "transpose":
		return Transpose{Mesh: mesh}, nil
	case "bitcomplement":
		return BitComplement{Nodes: mesh.NumNodes()}, nil
	case "hotspot":
		return Hotspot{Nodes: mesh.NumNodes(), Target: 0, Fraction: 0.2}, nil
	default:
		return nil, fmt.Errorf("traffic: unknown pattern %q", name)
	}
}
