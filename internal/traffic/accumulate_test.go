package traffic

import (
	"testing"

	"gathernoc/internal/noc"
)

func runAccumulation(t *testing.T, scheme CollectScheme, mutate func(*noc.Config)) *AccumulationResult {
	t.Helper()
	cfg := noc.DefaultConfig(8, 8)
	cfg.EnableINA = true
	if mutate != nil {
		mutate(&cfg)
	}
	nw, err := noc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewAccumulationController(nw, AccumulationConfig{
		Scheme: scheme, Rounds: 2, ComputeLatency: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctl.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.OracleErrors != 0 {
		t.Fatalf("%s: %d oracle errors", scheme, res.OracleErrors)
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAccumulationOracleAllSchemes(t *testing.T) {
	for _, scheme := range []CollectScheme{CollectUnicast, CollectGather, CollectINA} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			res := runAccumulation(t, scheme, nil)
			if res.RoundCycles.N() != 2 {
				t.Errorf("rounds simulated = %d, want 2", res.RoundCycles.N())
			}
		})
	}
}

func TestAccumulationINAMergesFullRows(t *testing.T) {
	res := runAccumulation(t, CollectINA, nil)
	// With uniform completion and column-scaled δ every non-initiator
	// operand merges into the row's packet: 7 columns × 8 rows × 2 rounds.
	if res.Merges != 112 {
		t.Errorf("merges = %d, want 112", res.Merges)
	}
	if res.SelfInitiated != 0 {
		t.Errorf("self-initiated = %d, want 0", res.SelfInitiated)
	}
	// One 2-flit accumulate packet per row per round at the sinks.
	if res.SinkPackets != 16 || res.SinkFlits != 32 {
		t.Errorf("sink packets/flits = %d/%d, want 16/32", res.SinkPackets, res.SinkFlits)
	}
	if res.Reduction.PayloadsMerged != 112 || res.Reduction.SinkTransactionsSaved != 112 {
		t.Errorf("reduction stats = %+v, want 112 merges/savings", res.Reduction)
	}
	if res.Reduction.LinkTraversalsSaved == 0 {
		t.Error("merges must account saved link traversals")
	}
	if res.Activity.ReduceMerges != res.Merges {
		t.Errorf("activity merges = %d, NIC acks = %d", res.Activity.ReduceMerges, res.Merges)
	}
}

func TestAccumulationINABeatsGatherAtSink(t *testing.T) {
	g := runAccumulation(t, CollectGather, nil)
	a := runAccumulation(t, CollectINA, nil)
	if a.SinkFlits >= g.SinkFlits {
		t.Errorf("INA sink flits %d not below gather %d", a.SinkFlits, g.SinkFlits)
	}
	if a.PacketLatency.Mean() >= g.PacketLatency.Mean() {
		t.Errorf("INA packet latency %.1f not below gather %.1f",
			a.PacketLatency.Mean(), g.PacketLatency.Mean())
	}
}

func TestAccumulationINADisabledRejected(t *testing.T) {
	nw, err := noc.New(noc.DefaultConfig(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewAccumulationController(nw, AccumulationConfig{
		Scheme: CollectINA, Rounds: 1,
	})
	if err == nil {
		t.Fatal("INA scheme without EnableINA must be rejected")
	}
}

func TestAccumulationReduceDeltaTimeout(t *testing.T) {
	// A tiny flat reduce δ forces self-initiated accumulate fallbacks, and
	// the sums must still verify: correctness never depends on merging.
	res := runAccumulation(t, CollectINA, func(c *noc.Config) {
		c.ReduceDelta = 1
	})
	// Undo the per-column scaling's protection by construction: δ·(1+col)
	// stays far below the packet's multi-hop transit for distant columns,
	// so at least some operands time out.
	if res.SelfInitiated == 0 {
		t.Skip("no timeouts at this δ; scaling covered the transit")
	}
	if res.OracleErrors != 0 {
		t.Errorf("oracle errors under timeouts: %d", res.OracleErrors)
	}
}

func TestAccumulationReduceCapacityLimitsMerges(t *testing.T) {
	// A merge budget of 2 (own operand + one merge) forces the remaining
	// operands onto fallback packets; sums must still verify.
	res := runAccumulation(t, CollectINA, func(c *noc.Config) {
		c.ReduceCapacity = 2
	})
	if res.OracleErrors != 0 {
		t.Fatalf("oracle errors under capacity limit: %d", res.OracleErrors)
	}
	// Each packet (initiator or fallback) absorbs at most one extra
	// operand, so full-row merging (7 per row) is impossible; fallback
	// packets with their own budget keep some merging alive.
	full := uint64((res.Cols - 1) * res.Rows * res.Rounds)
	if res.Merges >= full {
		t.Errorf("merges = %d, capacity 2 cannot reach full merging (%d)", res.Merges, full)
	}
	if res.SelfInitiated == 0 {
		t.Error("capacity limit must force self-initiated fallbacks")
	}
}

func TestSchemeByName(t *testing.T) {
	for _, name := range []string{"unicast", "gather", "ina"} {
		s, err := SchemeByName(name)
		if err != nil || s.String() != name {
			t.Errorf("SchemeByName(%q) = %v, %v", name, s, err)
		}
	}
	if _, err := SchemeByName("bogus"); err == nil {
		t.Error("bogus scheme must error")
	}
}
