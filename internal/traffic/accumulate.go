package traffic

import (
	"fmt"

	"gathernoc/internal/flit"
	"gathernoc/internal/nic"
	"gathernoc/internal/noc"
	"gathernoc/internal/reduce"
	"gathernoc/internal/stats"
	"gathernoc/internal/topology"
)

// CollectScheme selects how an accumulation-phase round returns its row
// sums to the global buffer.
type CollectScheme uint8

// Collection schemes for accumulation traffic.
const (
	// CollectUnicast sends every PE's partial sum as its own unicast
	// packet; the buffer performs the reduction.
	CollectUnicast CollectScheme = iota + 1
	// CollectGather packs the row's partial sums into gather packets;
	// every operand still travels the full path and the buffer still
	// performs the reduction.
	CollectGather
	// CollectINA reduces the partial sums inside the routers: one
	// constant-length accumulate packet arrives carrying the row's sum.
	CollectINA
)

// String names the scheme.
func (s CollectScheme) String() string {
	switch s {
	case CollectUnicast:
		return "unicast"
	case CollectGather:
		return "gather"
	case CollectINA:
		return "ina"
	default:
		return fmt.Sprintf("CollectScheme(%d)", uint8(s))
	}
}

// SchemeByName parses a collection scheme name.
func SchemeByName(name string) (CollectScheme, error) {
	switch name {
	case "unicast":
		return CollectUnicast, nil
	case "gather":
		return CollectGather, nil
	case "ina":
		return CollectINA, nil
	default:
		return 0, fmt.Errorf("traffic: unknown collection scheme %q (unicast, gather, ina)", name)
	}
}

// AccumulationConfig parameterizes an accumulation-phase workload: every
// round, each PE produces one partial sum for its row's output and the
// row-wide reduction must land at the row's east sink — the conv
// partial-sum traffic of an input-channel-partitioned mapping (see
// cnn.LayerConfig.AccumulationRounds / PartialMACsPerPE for deriving the
// parameters from a layer).
type AccumulationConfig struct {
	// Scheme selects unicast, gather or INA collection.
	Scheme CollectScheme
	// Rounds is how many rounds to simulate (>= 1).
	Rounds int
	// TotalRounds is the workload's full round count, for extrapolating
	// TotalCycles from the simulated sample; 0 means Rounds.
	TotalRounds int64
	// ComputeLatency is the cycles from round start until every PE's
	// partial sum is ready (e.g. ⌈C·R·R/M⌉ + T_MAC).
	ComputeLatency int
}

// Validate reports configuration errors.
func (c AccumulationConfig) Validate() error {
	switch {
	case c.Scheme != CollectUnicast && c.Scheme != CollectGather && c.Scheme != CollectINA:
		return fmt.Errorf("traffic: invalid collection scheme %d", c.Scheme)
	case c.Rounds < 1:
		return fmt.Errorf("traffic: Rounds must be >= 1, got %d", c.Rounds)
	case c.TotalRounds < 0:
		return fmt.Errorf("traffic: TotalRounds must be >= 0, got %d", c.TotalRounds)
	case c.ComputeLatency < 0:
		return fmt.Errorf("traffic: ComputeLatency must be >= 0, got %d", c.ComputeLatency)
	}
	return nil
}

// AccumulationResult summarizes an accumulation-phase run.
type AccumulationResult struct {
	// Scheme, Rows, Cols, Rounds echo the run parameters.
	Scheme CollectScheme
	Rows   int
	Cols   int
	Rounds int

	// RoundCycles samples each simulated round's latency (compute +
	// collection); PacketLatency samples the end-to-end latency of every
	// packet reaching a sink.
	RoundCycles   stats.Sample
	PacketLatency stats.Sample

	// TotalRounds and TotalCycles extrapolate the simulated sample to the
	// whole workload (mean round latency × TotalRounds).
	TotalRounds int64
	TotalCycles int64

	// SinkFlits and SinkPackets count the flit and packet transactions
	// the global-buffer ports paid; Merges counts in-network merges and
	// SelfInitiated the δ-timeout fallback packets (gather or accumulate,
	// per the scheme).
	SinkFlits     uint64
	SinkPackets   uint64
	Merges        uint64
	SelfInitiated uint64

	// Reduction accounts the wire work the merges avoided.
	Reduction stats.ReductionStats

	// OracleErrors counts reductions whose delivered sum or operand count
	// disagreed with the software oracle (must be 0).
	OracleErrors int

	// Activity holds the NoC event counts; Cycles the run length.
	Activity noc.Activity
	Cycles   int64
}

// SinkFlitsPerRow returns the mean sink flit transactions one row's
// reduction cost per round.
func (r *AccumulationResult) SinkFlitsPerRow() float64 {
	n := r.Rows * r.Rounds
	if n == 0 {
		return 0
	}
	return float64(r.SinkFlits) / float64(n)
}

type rowAcc struct {
	sum  uint64
	ops  int
	done bool
}

// AccumulationController drives an accumulation-phase workload on a
// network: per round every PE submits its partial sum under the configured
// scheme, the row-collection targets reassemble the row reductions, and
// each round's result is checked bit for bit against a software reduction
// oracle.
//
// The controller carries no topology assumptions: initiators, targets and
// δ scaling all come from the network's RowCollect plan, so the same
// workload runs against east-edge sinks on the mesh and against
// east-column PEs on a torus (where two initiators per row cover the
// ring, see noc.RowCollect).
type AccumulationController struct {
	nw    *noc.Network
	cfg   AccumulationConfig
	plans []noc.RowCollect

	rows, cols int

	// tag is the workload job/phase identity (zero standalone): it stamps
	// injected packets, namespaces payload sequence numbers and is encoded
	// into every ReduceID, so concurrent controllers on one fabric never
	// collide.
	tag flit.Tag
	// foreign, when set, receives payloads whose ReduceID carries another
	// controller's tag — a collective packet of one phase may pick up
	// another phase's payloads en route to a shared sink, and the workload
	// scheduler routes them home through this hook.
	foreign func(flit.Payload)

	phase      phase
	round      int
	roundStart int64

	doneAt    []int64
	submitted []bool
	// pendingOps counts the current round's not-yet-submitted operands;
	// zero in the final round means injection is complete (Injected).
	pendingOps int

	acc      []rowAcc
	rowsDone int
	oracle   *reduce.Oracle
	seq      uint64

	res AccumulationResult
}

type phase uint8

const (
	phaseRun phase = iota
	phaseDone
)

// NewAccumulationController prepares a standalone accumulation run on nw.
// It wires the row-collection target callbacks and scales the collection
// scheme's δ with each node's distance from the initiator sweeping it,
// like the gather workloads (DESIGN.md §3 and §7).
func NewAccumulationController(nw *noc.Network, cfg AccumulationConfig) (*AccumulationController, error) {
	c, err := NewAccumulationDriver(nw, cfg)
	if err != nil {
		return nil, err
	}
	for row := 0; row < c.rows; row++ {
		if c.plans[row].TargetIsSink {
			nw.Sink(row).OnReceive(c.OnPacket)
		} else {
			nw.NIC(c.plans[row].Target).OnReceive(c.OnPacket)
		}
	}
	c.startRound(0)
	return c, nil
}

// NewAccumulationDriver prepares an accumulation phase for a workload
// scheduler: identical δ scaling and round bookkeeping, but no receive
// callbacks are wired (the scheduler dispatches this phase's packets to
// OnPacket by tag) and the first round starts at Start, not construction.
// A single-phase scheduler run is bit-identical to the standalone path
// (DESIGN.md §8).
func NewAccumulationDriver(nw *noc.Network, cfg AccumulationConfig) (*AccumulationController, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nc := nw.Config()
	if cfg.Scheme == CollectINA && !nc.EnableINA {
		return nil, fmt.Errorf("traffic: INA collection needs noc.Config.EnableINA")
	}
	c := &AccumulationController{
		nw:   nw,
		cfg:  cfg,
		rows: nc.Rows,
		cols: nc.Cols,
	}
	c.doneAt = make([]int64, c.rows*c.cols)
	c.submitted = make([]bool, c.rows*c.cols)
	c.acc = make([]rowAcc, c.rows)
	c.oracle = reduce.NewOracle()
	c.plans = make([]noc.RowCollect, c.rows)
	for row := 0; row < c.rows; row++ {
		c.plans[row] = nw.RowCollect(row)
	}

	total := cfg.TotalRounds
	if total == 0 {
		total = int64(cfg.Rounds)
	}
	rounds := cfg.Rounds
	if int64(rounds) > total {
		rounds = int(total)
	}
	c.res = AccumulationResult{
		Scheme: cfg.Scheme, Rows: c.rows, Cols: c.cols,
		Rounds: rounds, TotalRounds: total,
	}
	c.cfg.Rounds = rounds

	// Per-node δ: a node waits δ·DeltaScale (1 + its distance from the
	// initiator sweeping it) before self-initiating, so packets already
	// in flight are not preempted.
	topo := nw.Topology()
	for row := 0; row < c.rows; row++ {
		for col := 0; col < c.cols; col++ {
			id := topo.ID(topology.Coord{Row: row, Col: col})
			scale := int64(c.plans[row].DeltaScale[col])
			switch cfg.Scheme {
			case CollectGather:
				nw.NIC(id).SetDelta(nc.Delta * scale)
			case CollectINA:
				nw.NIC(id).SetReduceDelta(nc.EffectiveReduceDelta() * scale)
			}
		}
	}
	return c, nil
}

// SetTag assigns the workload tag encoded into this controller's packets,
// payload sequence numbers and ReduceIDs (workload.Taggable; the scheduler
// calls it before Start). The zero tag reproduces the historic untagged
// encodings bit for bit.
func (c *AccumulationController) SetTag(t flit.Tag) { c.tag = t }

// SetForeignPayloadHandler installs the hook receiving payloads that
// arrived in this phase's packets but belong to another phase
// (workload.ForeignPayloadRouter). Without one, foreign payloads are
// counted as oracle errors.
func (c *AccumulationController) SetForeignPayloadHandler(fn func(flit.Payload)) { c.foreign = fn }

// Start begins the first round at the given cycle (workload.Driver).
func (c *AccumulationController) Start(cycle int64) { c.startRound(cycle) }

// Injected reports whether every operand of the final simulated round has
// been submitted (workload.Driver: overlap successors may start while the
// last round's collection still drains).
func (c *AccumulationController) Injected() bool {
	return c.phase == phaseDone || (c.round == c.cfg.Rounds-1 && c.pendingOps == 0)
}

// Drained reports whether all simulated rounds completed and verified
// (workload.Driver: barrier successors may start).
func (c *AccumulationController) Drained() bool { return c.Done() }

// reduceID tags row r's reduction of the current round with this
// controller's workload tag.
func (c *AccumulationController) reduceID(row int) uint64 {
	return flit.TaggedReduceID(c.tag, row, uint32(c.round))
}

// nextSeq allocates a payload sequence number namespaced by the workload
// tag, so concurrent controllers sharing a NIC's wait lists and stations
// never collide (zero tag: the historic bare counter).
func (c *AccumulationController) nextSeq() uint64 {
	c.seq++
	return uint64(c.tag)<<32 | c.seq
}

// operandValue derives the deterministic synthetic partial sum PE id
// produces in the given round. The multiplier spreads values across the
// full uint64 range so sums exercise wrap-around arithmetic, which the
// oracle reproduces exactly.
func operandValue(id int, round int) uint64 {
	return (uint64(id)+1)*0x9E3779B97F4A7C15 + (uint64(round)+3)*0xD1B54A32D192ED03
}

func (c *AccumulationController) startRound(now int64) {
	c.roundStart = now
	c.rowsDone = 0
	c.oracle = reduce.NewOracle()
	for i := range c.acc {
		c.acc[i] = rowAcc{}
	}
	for i := range c.submitted {
		c.submitted[i] = false
	}
	c.pendingOps = len(c.submitted)
	topo := c.nw.Topology()
	for row := 0; row < c.rows; row++ {
		rid := c.reduceID(row)
		for col := 0; col < c.cols; col++ {
			id := int(topo.ID(topology.Coord{Row: row, Col: col}))
			c.doneAt[id] = now + int64(c.cfg.ComputeLatency)
			c.oracle.Add(rid, operandValue(id, c.round))
		}
	}
}

// OnPacket records one arriving packet and folds its payloads into the
// per-row accounts (standalone: the wired receive callback; scheduler:
// the dispatch target for this phase's tag). Payloads tagged for another
// controller — picked up en route by this phase's collective packet — are
// routed through the foreign handler instead.
func (c *AccumulationController) OnPacket(p *nic.ReceivedPacket) {
	c.res.PacketLatency.Observe(float64(p.Latency()))
	for _, pl := range p.Payloads {
		if flit.ReduceIDTag(pl.ReduceID) != c.tag && c.foreign != nil {
			c.foreign(pl)
			continue
		}
		c.OnPayload(pl)
	}
}

// OnPayload folds one delivered payload into its row's account and checks
// completed reductions against the oracle. Payloads whose ReduceID does
// not name this controller's tag, a valid row and the current round count
// as oracle errors.
func (c *AccumulationController) OnPayload(pl flit.Payload) {
	row := flit.ReduceIDRow(pl.ReduceID)
	if flit.ReduceIDTag(pl.ReduceID) != c.tag || row >= c.rows ||
		flit.ReduceIDRound(pl.ReduceID) != uint32(c.round) {
		c.res.OracleErrors++
		return
	}
	a := &c.acc[row]
	a.sum += pl.Value
	a.ops += pl.OpsCount()
	if a.done {
		// Operands beyond a verified reduction are duplicates.
		c.res.OracleErrors++
		return
	}
	if a.ops >= c.cols {
		if err := c.oracle.Verify(c.reduceID(row), a.sum, a.ops); err != nil {
			c.res.OracleErrors++
		}
		a.done = true
		c.rowsDone++
	}
}

// Tick advances the controller: operand release and round bookkeeping.
func (c *AccumulationController) Tick(cycle int64) {
	if c.phase == phaseDone {
		return
	}
	c.releaseOperands(cycle)
	if c.rowsDone >= c.rows {
		c.finishRound(cycle)
	}
}

func (c *AccumulationController) releaseOperands(cycle int64) {
	topo := c.nw.Topology()
	for id := 0; id < topo.NumNodes(); id++ {
		if c.submitted[id] || c.doneAt[id] > cycle {
			continue
		}
		c.submitted[id] = true
		c.pendingOps--
		node := topology.NodeID(id)
		plan := &c.plans[topo.Coord(node).Row]
		dst := plan.Target
		rid := c.reduceID(plan.Row)
		p := flit.Payload{
			Seq: c.nextSeq(), Src: node, Dst: dst,
			Bits:       c.nw.Config().PayloadBits,
			Value:      operandValue(id, c.round),
			ReadyCycle: cycle,
			ReduceID:   rid,
			Ops:        1,
		}
		nicAt := c.nw.NIC(node)
		nicAt.SetTag(c.tag)
		switch {
		case c.cfg.Scheme == CollectUnicast:
			nicAt.SendUnicastPayload(dst, p)
		case plan.IsInitiator(node) && c.cfg.Scheme == CollectGather:
			nicAt.SendGather(dst, &p)
		case plan.IsInitiator(node):
			nicAt.SendAccumulate(dst, rid, p)
		case c.cfg.Scheme == CollectGather:
			nicAt.SubmitGatherPayload(p)
		default:
			nicAt.SubmitReduceOperand(p)
		}
	}
}

func (c *AccumulationController) finishRound(cycle int64) {
	c.res.RoundCycles.Observe(float64(cycle - c.roundStart))
	c.round++
	if c.round >= c.cfg.Rounds {
		c.phase = phaseDone
		return
	}
	c.startRound(cycle)
}

// Done reports whether all simulated rounds completed.
func (c *AccumulationController) Done() bool { return c.phase == phaseDone }

// Run registers the controller with the network's engine and executes the
// configured rounds, returning the finalized result. Call at most once.
func (c *AccumulationController) Run(maxCycles int64) (*AccumulationResult, error) {
	eng := c.nw.Engine()
	eng.AddTicker(c)
	cycles, err := eng.RunUntil(c.Done, maxCycles)
	if err != nil {
		return nil, fmt.Errorf("traffic: accumulation %s on %dx%d: %w",
			c.cfg.Scheme, c.rows, c.cols, err)
	}
	return c.result(cycles), nil
}

func (c *AccumulationController) result(cycles int64) *AccumulationResult {
	r := &c.res
	r.Cycles = cycles
	r.Activity = c.nw.Activity()
	topo := c.nw.Topology()
	unicastFlits := c.nw.Config().UnicastFlits
	for id := 0; id < topo.NumNodes(); id++ {
		node := topology.NodeID(id)
		n := c.nw.NIC(node)
		r.SelfInitiated += n.SelfInitiatedGathers.Value() + n.SelfInitiatedReduces.Value()
		merges := n.MergeAcks.Value()
		r.Merges += merges
		// Each merged operand spared its own packet: unicastFlits flits
		// over the node's hop distance to the collection target (sink
		// link included) and one write transaction at the buffer port.
		hops := c.nw.CollectHops(node, &c.plans[topo.Coord(node).Row])
		for k := uint64(0); k < merges; k++ {
			r.Reduction.Merge(unicastFlits, hops)
		}
	}
	for row := 0; row < c.rows; row++ {
		var ej *nic.Ejector
		if c.plans[row].TargetIsSink {
			ej = c.nw.Sink(row).Ejector()
		} else {
			ej = c.nw.NIC(c.plans[row].Target).Ejector()
		}
		r.SinkFlits += ej.FlitsEjected.Value()
		r.SinkPackets += ej.PacketsEjected.Value()
	}
	return c.Snapshot()
}

// Snapshot finalizes and returns the controller-local result fields:
// round and packet latencies, the extrapolated whole-workload totals and
// the oracle error count. Unlike Run's full result it aggregates no
// network-wide counters, so it is the accessor scheduler-driven phases use
// — concurrent phases share those counters and summing them per phase
// would double-count.
func (c *AccumulationController) Snapshot() *AccumulationResult {
	r := &c.res
	if r.RoundCycles.N() > 0 {
		r.TotalCycles = int64(r.RoundCycles.Mean()*float64(r.TotalRounds) + 0.5)
	}
	return r
}
