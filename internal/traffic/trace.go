package traffic

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"gathernoc/internal/cnn"
	"gathernoc/internal/flit"
	"gathernoc/internal/noc"
	"gathernoc/internal/topology"
)

// Event kinds in a trace.
const (
	// EventUnicast injects a unicast packet (optionally carrying a result
	// payload).
	EventUnicast = "unicast"
	// EventMulticast injects a multicast packet to Dsts.
	EventMulticast = "multicast"
	// EventGather injects a gather packet carrying the source's payload.
	EventGather = "gather"
	// EventPayload deposits a gather payload for piggybacking (the
	// Algorithm 1 path).
	EventPayload = "payload"
)

// Event is one line of a JSON-lines traffic trace.
type Event struct {
	// Cycle is the injection cycle.
	Cycle int64 `json:"cycle"`
	// Type is one of the Event* kinds.
	Type string `json:"type"`
	// Src and Dst are node ids (Dst may address a row sink).
	Src int `json:"src"`
	Dst int `json:"dst,omitempty"`
	// Dsts lists multicast destinations.
	Dsts []int `json:"dsts,omitempty"`
	// Flits overrides the packet length (0 = configured default).
	Flits int `json:"flits,omitempty"`
	// Seq and Value tag the carried payload for integrity checking.
	Seq   uint64 `json:"seq,omitempty"`
	Value uint64 `json:"value,omitempty"`
}

// Write streams events as JSON lines.
func Write(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return fmt.Errorf("traffic: write event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Read parses a JSON-lines trace.
func Read(r io.Reader) ([]Event, error) {
	var events []Event
	dec := json.NewDecoder(r)
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			return events, nil
		} else if err != nil {
			return nil, fmt.Errorf("traffic: read event %d: %w", len(events), err)
		}
		events = append(events, e)
	}
}

// GenerateLayerTrace synthesizes the result-collection traffic of one
// convolution round on a rows×cols array, in the given collection mode —
// the equivalent of the paper's per-layer trace generation. startCycle is
// when the round's results become ready (C·R·R + T_MAC after streaming
// starts); sinkBase is the node id of row 0's buffer sink.
func GenerateLayerTrace(layer cnn.LayerConfig, rows, cols int, gather bool, startCycle int64, sinkBase int) []Event {
	var events []Event
	seq := uint64(0)
	for r := 0; r < rows; r++ {
		dst := sinkBase + r
		for c := 0; c < cols; c++ {
			src := r*cols + c
			seq++
			switch {
			case !gather:
				events = append(events, Event{
					Cycle: startCycle, Type: EventUnicast, Src: src, Dst: dst,
					Seq: seq, Value: uint64(src),
				})
			case c == 0:
				events = append(events, Event{
					Cycle: startCycle, Type: EventGather, Src: src, Dst: dst,
					Seq: seq, Value: uint64(src),
				})
			default:
				events = append(events, Event{
					Cycle: startCycle, Type: EventPayload, Src: src, Dst: dst,
					Seq: seq, Value: uint64(src),
				})
			}
		}
	}
	return events
}

// Replayer injects a recorded trace into a network at the recorded cycles.
type Replayer struct {
	nw     *noc.Network
	events []Event
	next   int
	// Injected counts injected events.
	Injected uint64
}

// NewReplayer validates the trace against the network and prepares the
// replay. Events must be sorted by cycle.
func NewReplayer(nw *noc.Network, events []Event) (*Replayer, error) {
	nodes := nw.Mesh().NumNodes()
	sinks := 0
	if nw.Config().EastSinks {
		sinks = nw.Config().Rows
	}
	last := int64(-1)
	for i, e := range events {
		if e.Cycle < last {
			return nil, fmt.Errorf("traffic: event %d out of order (cycle %d after %d)", i, e.Cycle, last)
		}
		last = e.Cycle
		if e.Src < 0 || e.Src >= nodes {
			return nil, fmt.Errorf("traffic: event %d: src %d out of range", i, e.Src)
		}
		if e.Type != EventMulticast && (e.Dst < 0 || e.Dst >= nodes+sinks) {
			return nil, fmt.Errorf("traffic: event %d: dst %d out of range", i, e.Dst)
		}
		switch e.Type {
		case EventUnicast, EventMulticast, EventGather, EventPayload:
		default:
			return nil, fmt.Errorf("traffic: event %d: unknown type %q", i, e.Type)
		}
	}
	return &Replayer{nw: nw, events: events}, nil
}

// Done reports whether every event has been injected.
func (rp *Replayer) Done() bool { return rp.next >= len(rp.events) }

// Tick injects all events scheduled at or before the current cycle.
func (rp *Replayer) Tick(cycle int64) {
	for rp.next < len(rp.events) && rp.events[rp.next].Cycle <= cycle {
		e := rp.events[rp.next]
		rp.next++
		rp.Injected++
		src := topology.NodeID(e.Src)
		n := rp.nw.NIC(src)
		payload := flit.Payload{
			Seq: e.Seq, Src: src, Dst: topology.NodeID(e.Dst),
			Bits: rp.nw.Config().PayloadBits, Value: e.Value, ReadyCycle: cycle,
		}
		switch e.Type {
		case EventUnicast:
			if e.Flits > 0 {
				n.SendUnicastN(topology.NodeID(e.Dst), e.Flits)
			} else {
				n.SendUnicastPayload(topology.NodeID(e.Dst), payload)
			}
		case EventMulticast:
			set := topology.NewDestSet(rp.nw.Mesh().NumNodes())
			for _, d := range e.Dsts {
				set.Add(topology.NodeID(d))
			}
			flits := e.Flits
			if flits == 0 {
				flits = rp.nw.Config().UnicastFlits
			}
			n.SendMulticast(set, flits)
		case EventGather:
			n.SendGather(topology.NodeID(e.Dst), &payload)
		case EventPayload:
			n.SubmitGatherPayload(payload)
		}
	}
}

// Run registers the replayer and runs until the trace is injected and the
// network drains.
func (rp *Replayer) Run(maxCycles int64) (int64, error) {
	eng := rp.nw.Engine()
	eng.AddTicker(rp)
	done := func() bool { return rp.Done() && rp.nw.Quiescent() }
	return eng.RunUntil(done, maxCycles)
}
