package traffic

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"gathernoc/internal/cnn"
	"gathernoc/internal/flit"
	"gathernoc/internal/nic"
	"gathernoc/internal/noc"
	"gathernoc/internal/topology"
)

// Event kinds in a trace.
const (
	// EventUnicast injects a unicast packet (optionally carrying a result
	// payload).
	EventUnicast = "unicast"
	// EventMulticast injects a multicast packet to Dsts.
	EventMulticast = "multicast"
	// EventGather injects a gather packet carrying the source's payload.
	EventGather = "gather"
	// EventPayload deposits a gather payload for piggybacking (the
	// Algorithm 1 path).
	EventPayload = "payload"
)

// Event is one line of a JSON-lines traffic trace.
type Event struct {
	// Cycle is the injection cycle.
	Cycle int64 `json:"cycle"`
	// Type is one of the Event* kinds.
	Type string `json:"type"`
	// Src and Dst are node ids (Dst may address a row sink).
	Src int `json:"src"`
	Dst int `json:"dst,omitempty"`
	// Dsts lists multicast destinations.
	Dsts []int `json:"dsts,omitempty"`
	// Flits overrides the packet length (0 = configured default).
	Flits int `json:"flits,omitempty"`
	// Seq and Value tag the carried payload for integrity checking.
	Seq   uint64 `json:"seq,omitempty"`
	Value uint64 `json:"value,omitempty"`
}

// Write streams events as JSON lines.
func Write(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return fmt.Errorf("traffic: write event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Read parses a JSON-lines trace.
func Read(r io.Reader) ([]Event, error) {
	var events []Event
	dec := json.NewDecoder(r)
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			return events, nil
		} else if err != nil {
			return nil, fmt.Errorf("traffic: read event %d: %w", len(events), err)
		}
		events = append(events, e)
	}
}

// GenerateLayerTrace synthesizes the result-collection traffic of one
// convolution round on a rows×cols array, in the given collection mode —
// the equivalent of the paper's per-layer trace generation. startCycle is
// when the round's results become ready (C·R·R + T_MAC after streaming
// starts); sinkBase is the node id of row 0's buffer sink.
func GenerateLayerTrace(layer cnn.LayerConfig, rows, cols int, gather bool, startCycle int64, sinkBase int) []Event {
	var events []Event
	seq := uint64(0)
	for r := 0; r < rows; r++ {
		dst := sinkBase + r
		for c := 0; c < cols; c++ {
			src := r*cols + c
			seq++
			switch {
			case !gather:
				events = append(events, Event{
					Cycle: startCycle, Type: EventUnicast, Src: src, Dst: dst,
					Seq: seq, Value: uint64(src),
				})
			case c == 0:
				events = append(events, Event{
					Cycle: startCycle, Type: EventGather, Src: src, Dst: dst,
					Seq: seq, Value: uint64(src),
				})
			default:
				events = append(events, Event{
					Cycle: startCycle, Type: EventPayload, Src: src, Dst: dst,
					Seq: seq, Value: uint64(src),
				})
			}
		}
	}
	return events
}

// Replayer injects a recorded trace into a network at the recorded cycles,
// either standalone (Run) or as a workload.Driver phase — under a
// scheduler, event cycles are relative to the phase's admission cycle and
// the scheduler dispatches the phase's tagged packets back to OnPacket.
type Replayer struct {
	nw     *noc.Network
	events []Event
	next   int
	tag    flit.Tag
	// foreign, when set, receives payloads that arrived inside this
	// phase's packets but carry another phase's tag in their ReduceID —
	// a replayed gather packet can pick up a concurrent phase's payload
	// at a shared station, and the scheduler routes it home through this
	// hook (workload.ForeignPayloadRouter).
	foreign func(flit.Payload)
	// base is the cycle event timestamps are measured from: 0 standalone,
	// the phase admission cycle under a scheduler.
	base int64
	// outstanding counts expected delivery units not yet observed by
	// OnPacket: one per unicast/gather event, one per multicast
	// destination, one per deposited payload. Each arriving packet retires
	// one unit for itself plus one per piggybacked (non-seeded) payload,
	// whichever packet carried it — so δ-timeout self-initiations do not
	// skew the account.
	outstanding int64
	// EventsInjected counts injected events.
	EventsInjected uint64
}

// SetTag assigns the workload tag stamped onto replayed packets
// (workload.Taggable).
func (rp *Replayer) SetTag(t flit.Tag) { rp.tag = t }

// SetForeignPayloadHandler installs the hook receiving payloads that
// arrived in this phase's packets but belong to another phase
// (workload.ForeignPayloadRouter).
func (rp *Replayer) SetForeignPayloadHandler(fn func(flit.Payload)) { rp.foreign = fn }

// Start begins the replay clock at the given cycle (workload.Driver).
func (rp *Replayer) Start(cycle int64) { rp.base = cycle }

// Injected reports whether every event has been injected
// (workload.Driver overlap edge; identical to Done).
func (rp *Replayer) Injected() bool { return rp.Done() }

// Drained reports whether the trace is injected and every expected
// delivery has been observed (workload.Driver barrier edge). Meaningful
// only when the phase's packets are dispatched to OnPacket — the
// standalone Run path uses network quiescence instead.
func (rp *Replayer) Drained() bool { return rp.Done() && rp.outstanding == 0 }

// OnPacket retires the delivery units an arriving packet accounts for:
// the packet itself plus any of this phase's payloads beyond the one the
// packet's injection event seeded. Under a scheduler, payloads tagged
// for another phase (picked up at a shared station en route) are routed
// home through the foreign handler instead of being counted here.
func (rp *Replayer) OnPacket(p *nic.ReceivedPacket) {
	own := 0
	for _, pl := range p.Payloads {
		if rp.tag != 0 && flit.ReduceIDTag(pl.ReduceID) != rp.tag {
			if rp.foreign != nil {
				rp.foreign(pl)
			}
			continue
		}
		own++
	}
	units := int64(1 + own)
	switch p.PT {
	case flit.Gather:
		units-- // the gather (or self-initiated) packet seeded one payload
	case flit.Unicast:
		if own > 0 {
			units-- // payload-carrying unicast: the payload is the packet
		}
	}
	rp.outstanding -= units
}

// OnPayload retires one delivery unit for a payload of this phase that
// arrived inside another phase's packet (workload.PayloadSink).
func (rp *Replayer) OnPayload(pl flit.Payload) { rp.outstanding-- }

// NewReplayer validates the trace against the network and prepares the
// replay. Events must be sorted by cycle.
func NewReplayer(nw *noc.Network, events []Event) (*Replayer, error) {
	nodes := nw.Mesh().NumNodes()
	sinks := 0
	if nw.Config().EastSinks {
		sinks = nw.Config().Rows
	}
	last := int64(-1)
	for i, e := range events {
		if e.Cycle < last {
			return nil, fmt.Errorf("traffic: event %d out of order (cycle %d after %d)", i, e.Cycle, last)
		}
		last = e.Cycle
		if e.Src < 0 || e.Src >= nodes {
			return nil, fmt.Errorf("traffic: event %d: src %d out of range", i, e.Src)
		}
		if e.Type != EventMulticast && (e.Dst < 0 || e.Dst >= nodes+sinks) {
			return nil, fmt.Errorf("traffic: event %d: dst %d out of range", i, e.Dst)
		}
		switch e.Type {
		case EventUnicast, EventMulticast, EventGather, EventPayload:
		default:
			return nil, fmt.Errorf("traffic: event %d: unknown type %q", i, e.Type)
		}
	}
	return &Replayer{nw: nw, events: events}, nil
}

// Done reports whether every event has been injected.
func (rp *Replayer) Done() bool { return rp.next >= len(rp.events) }

// Tick injects all events scheduled at or before the current cycle
// (relative to the replay's Start cycle).
func (rp *Replayer) Tick(cycle int64) {
	rel := cycle - rp.base
	for rp.next < len(rp.events) && rp.events[rp.next].Cycle <= rel {
		e := rp.events[rp.next]
		rp.next++
		rp.EventsInjected++
		src := topology.NodeID(e.Src)
		n := rp.nw.NIC(src)
		n.SetTag(rp.tag)
		// Payload sequence numbers are namespaced by the workload tag like
		// the accumulation controller's (tag<<32 | trace seq), so a
		// replayed phase's payloads cannot collide with another phase's at
		// a shared NIC wait list or router station, and the ReduceID
		// carries the tag so a payload picked up by another phase's
		// packet can be routed home. Untagged standalone replays keep the
		// trace's raw seqs and a zero ReduceID.
		seq := e.Seq
		var rid uint64
		if rp.tag != 0 {
			seq = uint64(rp.tag)<<32 | (e.Seq & 0xFFFFFFFF)
			rid = flit.TaggedReduceID(rp.tag, 0, 0)
		}
		payload := flit.Payload{
			Seq: seq, Src: src, Dst: topology.NodeID(e.Dst),
			Bits: rp.nw.Config().PayloadBits, Value: e.Value, ReadyCycle: cycle,
			ReduceID: rid,
		}
		switch e.Type {
		case EventUnicast:
			rp.outstanding++
			if e.Flits > 0 {
				n.SendUnicastN(topology.NodeID(e.Dst), e.Flits)
			} else {
				n.SendUnicastPayload(topology.NodeID(e.Dst), payload)
			}
		case EventMulticast:
			set := topology.NewDestSet(rp.nw.Mesh().NumNodes())
			for _, d := range e.Dsts {
				set.Add(topology.NodeID(d))
			}
			flits := e.Flits
			if flits == 0 {
				flits = rp.nw.Config().UnicastFlits
			}
			rp.outstanding += int64(set.Len())
			n.SendMulticast(set, flits)
		case EventGather:
			rp.outstanding++
			n.SendGather(topology.NodeID(e.Dst), &payload)
		case EventPayload:
			rp.outstanding++
			n.SubmitGatherPayload(payload)
		}
	}
}

// Run registers the replayer and runs until the trace is injected and the
// network drains.
func (rp *Replayer) Run(maxCycles int64) (int64, error) {
	eng := rp.nw.Engine()
	eng.AddTicker(rp)
	done := func() bool { return rp.Done() && rp.nw.Quiescent() }
	return eng.RunUntil(done, maxCycles)
}
