package traffic

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"gathernoc/internal/cnn"
	"gathernoc/internal/nic"
	"gathernoc/internal/noc"
	"gathernoc/internal/topology"
)

func TestPatternsNeverSelfTarget(t *testing.T) {
	mesh := topology.MustMesh(4, 4)
	patterns := []Pattern{
		UniformRandom{Nodes: 16},
		Transpose{Mesh: mesh},
		BitComplement{Nodes: 16},
		Hotspot{Nodes: 16, Target: 0, Fraction: 0.3},
	}
	rng := rand.New(rand.NewSource(1))
	for _, p := range patterns {
		for src := 0; src < 16; src++ {
			for i := 0; i < 50; i++ {
				if d := p.Destination(topology.NodeID(src), rng); d == topology.NodeID(src) {
					t.Errorf("%s: self-target from %d", p.Name(), src)
				}
			}
		}
	}
}

func TestTransposeMapsCoordinates(t *testing.T) {
	mesh := topology.MustMesh(4, 4)
	p := Transpose{Mesh: mesh}
	rng := rand.New(rand.NewSource(1))
	src := mesh.ID(topology.Coord{Row: 1, Col: 3})
	want := mesh.ID(topology.Coord{Row: 3, Col: 1})
	if got := p.Destination(src, rng); got != want {
		t.Errorf("Destination = %d, want %d", got, want)
	}
}

func TestBitComplement(t *testing.T) {
	p := BitComplement{Nodes: 16}
	rng := rand.New(rand.NewSource(1))
	if got := p.Destination(3, rng); got != 12 {
		t.Errorf("Destination(3) = %d, want 12", got)
	}
}

func TestHotspotFraction(t *testing.T) {
	p := Hotspot{Nodes: 64, Target: 5, Fraction: 0.5}
	rng := rand.New(rand.NewSource(42))
	hot := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if p.Destination(0, rng) == 5 {
			hot++
		}
	}
	frac := float64(hot) / n
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("hot fraction = %v, want ~0.5", frac)
	}
}

func TestPatternByName(t *testing.T) {
	mesh := topology.MustMesh(4, 4)
	for _, name := range []string{"uniform", "transpose", "bitcomplement", "hotspot"} {
		p, err := PatternByName(name, mesh)
		if err != nil || p.Name() != name {
			t.Errorf("PatternByName(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := PatternByName("nope", mesh); err == nil {
		t.Error("unknown pattern accepted")
	}
}

func TestGeneratorRunDelivery(t *testing.T) {
	nw, err := noc.New(noc.DefaultConfig(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(nw, GeneratorConfig{
		Pattern:       UniformRandom{Nodes: 16},
		InjectionRate: 0.02,
		PacketFlits:   2,
		Warmup:        100,
		Measure:       400,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Run(100000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected == 0 {
		t.Fatal("no packets injected")
	}
	if res.Received != res.Injected {
		t.Errorf("received %d != injected %d after drain", res.Received, res.Injected)
	}
	if res.Latency.Mean() <= 0 {
		t.Error("latency not recorded")
	}
	if res.Throughput <= 0 {
		t.Error("throughput not computed")
	}
	// Latency decomposes into queueing + in-network portions.
	if res.QueueLatency.N() != res.Latency.N() || res.NetworkLatency.N() != res.Latency.N() {
		t.Error("latency breakdown sample counts differ")
	}
	sum := res.QueueLatency.Mean() + res.NetworkLatency.Mean()
	if diff := sum - res.Latency.Mean(); diff > 0.001 || diff < -0.001 {
		t.Errorf("queue %.2f + network %.2f != total %.2f",
			res.QueueLatency.Mean(), res.NetworkLatency.Mean(), res.Latency.Mean())
	}
}

func TestGeneratorConfigValidate(t *testing.T) {
	good := GeneratorConfig{Pattern: UniformRandom{Nodes: 4}, InjectionRate: 0.1, PacketFlits: 2, Measure: 10}
	if err := good.Validate(); err != nil {
		t.Errorf("valid rejected: %v", err)
	}
	bad := []GeneratorConfig{
		{InjectionRate: 0.1, PacketFlits: 2, Measure: 10},
		{Pattern: UniformRandom{Nodes: 4}, InjectionRate: -0.1, PacketFlits: 2, Measure: 10},
		{Pattern: UniformRandom{Nodes: 4}, InjectionRate: 1.5, PacketFlits: 2, Measure: 10},
		{Pattern: UniformRandom{Nodes: 4}, InjectionRate: 0.1, PacketFlits: 0, Measure: 10},
		{Pattern: UniformRandom{Nodes: 4}, InjectionRate: 0.1, PacketFlits: 2, Measure: 0},
		{Pattern: UniformRandom{Nodes: 4}, InjectionRate: 0.1, PacketFlits: 2, Warmup: -1, Measure: 10},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	events := []Event{
		{Cycle: 0, Type: EventGather, Src: 0, Dst: 16, Seq: 1, Value: 10},
		{Cycle: 0, Type: EventPayload, Src: 1, Dst: 16, Seq: 2, Value: 11},
		{Cycle: 5, Type: EventUnicast, Src: 2, Dst: 3, Seq: 3, Value: 12},
		{Cycle: 9, Type: EventMulticast, Src: 4, Dsts: []int{1, 2, 3}, Flits: 2},
	}
	var buf bytes.Buffer
	if err := Write(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("len = %d, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i].Cycle != events[i].Cycle || got[i].Type != events[i].Type ||
			got[i].Src != events[i].Src || got[i].Seq != events[i].Seq {
			t.Errorf("event %d = %+v, want %+v", i, got[i], events[i])
		}
	}
}

// Property: trace round-trips preserve every field for arbitrary events.
func TestTraceRoundTripProperty(t *testing.T) {
	f := func(cycle int64, src, dst uint8, seq, value uint64) bool {
		if cycle < 0 {
			cycle = -cycle
		}
		in := []Event{{Cycle: cycle, Type: EventUnicast, Src: int(src), Dst: int(dst), Seq: seq, Value: value}}
		var buf bytes.Buffer
		if err := Write(&buf, in); err != nil {
			return false
		}
		out, err := Read(&buf)
		if err != nil || len(out) != 1 {
			return false
		}
		a, b := out[0], in[0]
		return a.Cycle == b.Cycle && a.Type == b.Type && a.Src == b.Src &&
			a.Dst == b.Dst && a.Seq == b.Seq && a.Value == b.Value
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGenerateLayerTraceShape(t *testing.T) {
	layer, _ := cnn.LayerByName(cnn.AlexNetConvLayers(), "Conv3")
	events := GenerateLayerTrace(layer, 4, 4, true /* gather */, 100, 16)
	if len(events) != 16 {
		t.Fatalf("len = %d, want 16", len(events))
	}
	gathers, payloads := 0, 0
	for _, e := range events {
		switch e.Type {
		case EventGather:
			gathers++
		case EventPayload:
			payloads++
		}
		if e.Cycle != 100 {
			t.Errorf("cycle = %d, want 100", e.Cycle)
		}
	}
	if gathers != 4 || payloads != 12 {
		t.Errorf("gathers/payloads = %d/%d, want 4/12", gathers, payloads)
	}

	ru := GenerateLayerTrace(layer, 4, 4, false, 0, 16)
	for _, e := range ru {
		if e.Type != EventUnicast {
			t.Errorf("RU trace has %s event", e.Type)
		}
	}
}

func TestReplayerDeliversTrace(t *testing.T) {
	nw, err := noc.New(noc.DefaultConfig(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	layer, _ := cnn.LayerByName(cnn.AlexNetConvLayers(), "Conv3")
	// Scale the per-column δ the way the systolic layer does.
	for row := 0; row < 4; row++ {
		for col := 0; col < 4; col++ {
			id := nw.Mesh().ID(topology.Coord{Row: row, Col: col})
			nw.NIC(id).SetDelta(5 * int64(1+col))
		}
	}
	events := GenerateLayerTrace(layer, 4, 4, true, 0, nw.Mesh().NumNodes())
	rp, err := NewReplayer(nw, events)
	if err != nil {
		t.Fatal(err)
	}
	payloads := 0
	for row := 0; row < 4; row++ {
		nw.Sink(row).OnReceive(func(p *nic.ReceivedPacket) { payloads += len(p.Payloads) })
	}
	if _, err := rp.Run(100000); err != nil {
		t.Fatal(err)
	}
	if rp.EventsInjected != 16 {
		t.Errorf("injected = %d, want 16", rp.EventsInjected)
	}
	if payloads != 16 {
		t.Errorf("payloads delivered = %d, want 16", payloads)
	}
}

func TestReplayerValidation(t *testing.T) {
	nw, err := noc.New(noc.DefaultConfig(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]Event{
		{{Cycle: 5, Type: EventUnicast, Src: 0, Dst: 1}, {Cycle: 4, Type: EventUnicast, Src: 0, Dst: 1}},
		{{Cycle: 0, Type: EventUnicast, Src: 99, Dst: 1}},
		{{Cycle: 0, Type: EventUnicast, Src: 0, Dst: 99}},
		{{Cycle: 0, Type: "bogus", Src: 0, Dst: 1}},
	}
	for i, events := range bad {
		if _, err := NewReplayer(nw, events); err == nil {
			t.Errorf("bad trace %d accepted", i)
		}
	}
}
