package collective

import (
	"errors"
	"testing"

	"gathernoc/internal/fault"
	"gathernoc/internal/noc"
	"gathernoc/internal/topology"
)

// FuzzTreePlan throws random fabrics, routings and dead-node masks at the
// tree-plan builder. The invariant: construction either fails with an
// error wrapping fault.ErrUnreachable (a live node's deterministic sweep
// crosses a dead router — nothing to reroute around), or yields a plan
// whose row lines cover every live node exactly once, whose column line
// threads the row targets in order, and whose δ scales are all positive.
// Plan construction must never panic.
func FuzzTreePlan(f *testing.F) {
	f.Add(uint8(8), uint8(8), false, uint8(0), uint64(0))
	f.Add(uint8(8), uint8(8), true, uint8(0), uint64(0))
	f.Add(uint8(4), uint8(4), false, uint8(1), uint64(0x0F0F))
	f.Add(uint8(6), uint8(3), true, uint8(2), uint64(1)<<17)
	f.Add(uint8(1), uint8(1), false, uint8(0), uint64(1))
	f.Fuzz(func(t *testing.T, rows, cols uint8, torus bool, routing uint8, mask uint64) {
		// Clamp to fabrics of at most 64 nodes so the mask covers them.
		r := 1 + int(rows)%8
		c := 1 + int(cols)%8
		var cfg noc.Config
		if torus {
			cfg = noc.DefaultTorusConfig(r, c)
		} else {
			cfg = noc.DefaultConfig(r, c)
		}
		names := topology.RoutingNames()
		cfg.Routing = names[int(routing)%len(names)]
		if err := cfg.Validate(); err != nil {
			t.Fatalf("fuzz harness built an invalid config: %v", err)
		}
		nw, err := noc.New(cfg)
		if err != nil {
			t.Fatalf("noc.New: %v", err)
		}
		defer nw.Close()

		nodes := r * c
		dead := make([]bool, nodes)
		live := 0
		for id := 0; id < nodes; id++ {
			dead[id] = mask&(1<<uint(id)) != 0
			if !dead[id] {
				live++
			}
		}
		plan, err := NewTreePlan(nw, PlanOptions{Dead: dead, RootAtSink: cfg.EastSinks})
		if err != nil {
			if !errors.Is(err, fault.ErrUnreachable) {
				t.Fatalf("plan error is not fault.ErrUnreachable: %v", err)
			}
			return
		}
		if plan.LiveCount != live {
			t.Fatalf("LiveCount = %d, want %d", plan.LiveCount, live)
		}
		covered := make(map[topology.NodeID]int)
		for row, line := range plan.Rows {
			if len(line.Nodes) != c || len(line.DeltaScale) != c {
				t.Fatalf("row %d line sized %d/%d, want %d", row, len(line.Nodes), len(line.DeltaScale), c)
			}
			for i, id := range line.Nodes {
				if dead[id] {
					continue
				}
				covered[id]++
				if line.DeltaScale[i] < 1 {
					t.Fatalf("row %d node %d δ scale %d", row, id, line.DeltaScale[i])
				}
			}
			if plan.Column.Nodes[row] != line.Target {
				t.Fatalf("column node %d is %d, want row target %d", row, plan.Column.Nodes[row], line.Target)
			}
		}
		if len(covered) != live {
			t.Fatalf("row lines cover %d live nodes, want %d", len(covered), live)
		}
		for id, n := range covered {
			if n != 1 {
				t.Fatalf("node %d covered %d times", id, n)
			}
		}
		if plan.Dests(nw.Topology()).Len() != live {
			t.Fatalf("broadcast dest set covers %d nodes, want %d", plan.Dests(nw.Topology()).Len(), live)
		}
	})
}
