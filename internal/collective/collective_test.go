package collective

import (
	"errors"
	"testing"

	"gathernoc/internal/fault"
	"gathernoc/internal/noc"
	"gathernoc/internal/topology"
)

// leafSum is the software truth for the built-in operand derivation.
func leafSum(nodes, round int) uint64 {
	var s uint64
	for id := 0; id < nodes; id++ {
		s += (uint64(id)+1)*0x9E3779B97F4A7C15 + (uint64(round)+3)*0xD1B54A32D192ED03
	}
	return s
}

func newNetwork(t *testing.T, cfg noc.Config) *noc.Network {
	t.Helper()
	nw, err := noc.New(cfg)
	if err != nil {
		t.Fatalf("noc.New: %v", err)
	}
	t.Cleanup(nw.Close)
	return nw
}

func configs(rows, cols int) map[string]noc.Config {
	return map[string]noc.Config{
		"mesh":  noc.DefaultConfig(rows, cols),
		"torus": noc.DefaultTorusConfig(rows, cols),
	}
}

// TestTreePlanShape checks the structural invariants of the two-level
// tree on both topologies: every PE in exactly one row line, row targets
// forming the column line, and the root placement per RootAtSink.
func TestTreePlanShape(t *testing.T) {
	for name, cfg := range configs(4, 6) {
		t.Run(name, func(t *testing.T) {
			nw := newNetwork(t, cfg)
			plan, err := NewTreePlan(nw, PlanOptions{RootAtSink: cfg.EastSinks})
			if err != nil {
				t.Fatalf("NewTreePlan: %v", err)
			}
			topo := nw.Topology()
			seen := make(map[topology.NodeID]int)
			for r, line := range plan.Rows {
				if len(line.Nodes) != cfg.Cols {
					t.Fatalf("row %d has %d nodes, want %d", r, len(line.Nodes), cfg.Cols)
				}
				for _, id := range line.Nodes {
					seen[id]++
				}
				if line.TargetIsSink {
					t.Fatalf("row %d targets a sink; row lines must end at a PE", r)
				}
				if got := topo.Coord(line.Target); got.Col != cfg.Cols-1 {
					t.Fatalf("row %d target at col %d, want east column", r, got.Col)
				}
				if plan.Column.Nodes[r] != line.Target {
					t.Fatalf("column line node %d is %d, want row target %d", r, plan.Column.Nodes[r], line.Target)
				}
			}
			if len(seen) != topo.NumNodes() {
				t.Fatalf("row lines cover %d nodes, want %d", len(seen), topo.NumNodes())
			}
			for id, n := range seen {
				if n != 1 {
					t.Fatalf("node %d covered %d times", id, n)
				}
			}
			if cfg.EastSinks {
				if !plan.RootIsSink || plan.Root != nw.RowSinkID(cfg.Rows-1) {
					t.Fatalf("mesh RootAtSink plan rooted at %d (sink=%v)", plan.Root, plan.RootIsSink)
				}
			} else if plan.RootIsSink {
				t.Fatal("torus plan claims a sink root")
			}
			if plan.LiveCount != topo.NumNodes() {
				t.Fatalf("LiveCount = %d, want %d", plan.LiveCount, topo.NumNodes())
			}
			if plan.Dests(topo).Len() != topo.NumNodes() {
				t.Fatalf("Dests covers %d nodes, want all", plan.Dests(topo).Len())
			}
		})
	}
}

// TestTreePlanRootAtSinkNeedsSinks rejects sink-rooted plans on a torus.
func TestTreePlanRootAtSinkNeedsSinks(t *testing.T) {
	nw := newNetwork(t, noc.DefaultTorusConfig(4, 4))
	if _, err := NewTreePlan(nw, PlanOptions{RootAtSink: true}); err == nil {
		t.Fatal("RootAtSink on a torus should fail")
	}
}

// TestTreePlanDeadMasks exercises the fault-masked construction: a dead
// node off every live sweep path is skipped, while one sitting on a live
// node's route makes the plan infeasible with fault.ErrUnreachable.
func TestTreePlanDeadMasks(t *testing.T) {
	cfg := noc.DefaultConfig(4, 4)
	nw := newNetwork(t, cfg)
	topo := nw.Topology()
	id := func(r, c int) int { return int(topo.ID(topology.Coord{Row: r, Col: c})) }

	t.Run("west-column-dead", func(t *testing.T) {
		// Column 0 dead: live sweeps run east from column >= 1 and down
		// the east column, never crossing column 0.
		dead := make([]bool, topo.NumNodes())
		for r := 0; r < 4; r++ {
			dead[id(r, 0)] = true
		}
		plan, err := NewTreePlan(nw, PlanOptions{Dead: dead})
		if err != nil {
			t.Fatalf("NewTreePlan: %v", err)
		}
		if plan.LiveCount != 12 {
			t.Fatalf("LiveCount = %d, want 12", plan.LiveCount)
		}
		if plan.Alive(topo.ID(topology.Coord{Row: 1, Col: 0})) {
			t.Fatal("dead node reported alive")
		}
	})

	t.Run("row-sweep-cut", func(t *testing.T) {
		// A dead mid-row node cuts every live node west of it off its
		// row target.
		dead := make([]bool, topo.NumNodes())
		dead[id(1, 2)] = true
		_, err := NewTreePlan(nw, PlanOptions{Dead: dead})
		if !errors.Is(err, fault.ErrUnreachable) {
			t.Fatalf("err = %v, want fault.ErrUnreachable", err)
		}
	})

	t.Run("column-sweep-cut", func(t *testing.T) {
		// A dead east-column node cuts every row above it off the root.
		dead := make([]bool, topo.NumNodes())
		for c := 0; c < 4; c++ {
			// Kill row 1 entirely so no live node needs its row sweep...
			dead[id(1, c)] = true
		}
		// ...but rows 0's column relay still crosses the dead (1, 3).
		_, err := NewTreePlan(nw, PlanOptions{Dead: dead})
		if !errors.Is(err, fault.ErrUnreachable) {
			t.Fatalf("err = %v, want fault.ErrUnreachable", err)
		}
	})

	t.Run("all-dead", func(t *testing.T) {
		dead := make([]bool, topo.NumNodes())
		for i := range dead {
			dead[i] = true
		}
		plan, err := NewTreePlan(nw, PlanOptions{Dead: dead})
		if err != nil {
			t.Fatalf("NewTreePlan: %v", err)
		}
		if plan.LiveCount != 0 {
			t.Fatalf("LiveCount = %d, want 0", plan.LiveCount)
		}
	})
}

// runCollective executes one standalone collective run and applies the
// invariant checks every cell of the matrix must satisfy.
func runCollective(t *testing.T, cfg noc.Config, ccfg Config) *Result {
	t.Helper()
	nw := newNetwork(t, cfg)
	d, err := NewController(nw, ccfg)
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	res, err := d.Run(200_000)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.OracleErrors != 0 || res.BroadcastErrors != 0 {
		t.Fatalf("oracle errors %d, broadcast errors %d", res.OracleErrors, res.BroadcastErrors)
	}
	nodes := cfg.Rows * cfg.Cols
	for round := 0; round < ccfg.Rounds; round++ {
		if ccfg.Op != Broadcast && ccfg.Values == nil {
			if want := leafSum(nodes, round); res.Sums[round] != want {
				t.Fatalf("round %d sum %#x, want %#x", round, res.Sums[round], want)
			}
		}
		if ccfg.Op != Reduce {
			for id, v := range res.NodeValues[round] {
				if v != res.Sums[round] {
					t.Fatalf("round %d node %d got %#x, want %#x", round, id, v, res.Sums[round])
				}
			}
		}
	}
	return res
}

// TestCollectiveMatrix runs every op × algorithm × topology cell on a
// 4x4 fabric: oracle-exact reductions and bit-identical broadcast
// deliveries everywhere.
func TestCollectiveMatrix(t *testing.T) {
	for name, base := range configs(4, 4) {
		for _, alg := range []Algorithm{AlgTree, AlgFlat, AlgFused} {
			for _, op := range []Op{Reduce, Broadcast, AllReduce} {
				t.Run(name+"/"+alg.String()+"/"+op.String(), func(t *testing.T) {
					cfg := base
					if alg == AlgFused {
						cfg.EnableINA = true
					}
					runCollective(t, cfg, Config{
						Op: op, Algorithm: alg, Rounds: 2, ComputeLatency: 8,
					})
				})
			}
		}
	}
}

// TestCollectiveNonSquare runs the tree on fabrics whose column stage
// does not fit one gather packet (rows > capacity): δ fallbacks must keep
// the reduction exact.
func TestCollectiveNonSquare(t *testing.T) {
	for _, dims := range [][2]int{{6, 3}, {2, 5}, {1, 4}, {4, 1}} {
		cfg := noc.DefaultConfig(dims[0], dims[1])
		cfg.EnableINA = true
		for _, alg := range []Algorithm{AlgTree, AlgFused} {
			t.Run(alg.String(), func(t *testing.T) {
				runCollective(t, cfg, Config{
					Op: AllReduce, Algorithm: alg, Rounds: 1, ComputeLatency: 3,
				})
			})
		}
	}
}

// TestBroadcastValuesOverride pins the Broadcast op to caller-supplied
// values, the hook the metamorphic Reduce∘Broadcast composition uses.
func TestBroadcastValuesOverride(t *testing.T) {
	vals := []uint64{0xDEAD_BEEF_F00D_CAFE, 3}
	res := runCollective(t, noc.DefaultConfig(4, 4), Config{
		Op: Broadcast, Algorithm: AlgTree, Rounds: 2, BroadcastValues: vals,
	})
	for round, want := range vals {
		if res.Sums[round] != want {
			t.Fatalf("round %d broadcast %#x, want %#x", round, res.Sums[round], want)
		}
	}
}

// TestConfigValidate covers the named rejection paths.
func TestConfigValidate(t *testing.T) {
	good := Config{Op: AllReduce, Algorithm: AlgTree, Rounds: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Algorithm: AlgTree, Rounds: 1},
		{Op: Reduce, Rounds: 1},
		{Op: Reduce, Algorithm: AlgTree},
		{Op: Broadcast, Algorithm: AlgTree, Rounds: 3, BroadcastValues: []uint64{1}},
		{Op: Reduce, Algorithm: AlgTree, Rounds: 1, ComputeLatency: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
	if _, err := OpByName("nope"); err == nil {
		t.Fatal("unknown op accepted")
	}
	if _, err := AlgorithmByName("nope"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	for _, name := range []string{"reduce", "bcast", "allreduce"} {
		if _, err := OpByName(name); err != nil {
			t.Fatalf("OpByName(%q): %v", name, err)
		}
	}
	for _, name := range []string{"tree", "flat", "fused"} {
		if _, err := AlgorithmByName(name); err != nil {
			t.Fatalf("AlgorithmByName(%q): %v", name, err)
		}
	}
}

// TestFusedNeedsINA rejects the fused algorithm without EnableINA.
func TestFusedNeedsINA(t *testing.T) {
	nw := newNetwork(t, noc.DefaultConfig(4, 4))
	_, err := NewDriver(nw, Config{Op: Reduce, Algorithm: AlgFused, Rounds: 1})
	if err == nil {
		t.Fatal("fused without EnableINA accepted")
	}
}
