// Package collective composes the row-collection machinery into
// mesh-wide collective operations: Reduce (every PE's operand folded into
// one value), Broadcast (one value delivered to every PE) and AllReduce
// (reduce then broadcast, every PE ending with the global sum).
//
// The reduction is a two-level tree built from noc.LineCollect plans
// (DESIGN.md §13): each row first collects at its east-column PE exactly
// like the paper's row gather — initiators, payload stations and δ-scaled
// timeouts all reused — and the east column then collects those row sums
// vertically at the tree root: the bottom-right PE, or, for a pure Reduce
// on a fabric with east sinks, the bottom row's global-buffer sink. The
// broadcast leg is the reverse tree, one multicast packet fanning the
// value out over the XY multicast tree (PT=M, topology.MulticastRoute).
// Plans are wrap-aware: on a torus each line is covered by two directional
// arcs, exactly as noc.RowCollect covers a row ring.
//
// Three algorithms transport the same semantics:
//
//   - AlgTree moves operands in gather packets at both tree levels and
//     broadcasts with one multicast packet; routers upload waiting
//     payloads into passing packets but the folding happens at the tree
//     nodes (the driver's software accounts).
//   - AlgFlat is the baseline: every PE unicasts its operand straight to
//     the root, and the root unicasts the result back to every PE.
//   - AlgFused is the INA variant: accumulate packets fold partials inside
//     the routers at every tree level, so each level delivers
//     constant-length packets carrying ready sums.
//
// Every level of every round is checked bit for bit against a
// reduce.Oracle, and the driver implements workload.Driver, so pipelines
// can issue a collective phase like any other traffic stage.
package collective

import (
	"fmt"

	"gathernoc/internal/noc"
	"gathernoc/internal/stats"
)

// Op selects the collective operation.
type Op uint8

// Collective operations.
const (
	// Reduce folds every PE's operand into one value at the tree root
	// (the bottom row's sink on fabrics with east sinks, else the
	// bottom-right PE).
	Reduce Op = iota + 1
	// Broadcast delivers the root's value to every PE.
	Broadcast
	// AllReduce is reduce followed by broadcast: every PE ends the round
	// holding the global sum.
	AllReduce
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case Reduce:
		return "reduce"
	case Broadcast:
		return "bcast"
	case AllReduce:
		return "allreduce"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// OpByName parses a collective operation name.
func OpByName(name string) (Op, error) {
	switch name {
	case "reduce":
		return Reduce, nil
	case "bcast", "broadcast":
		return Broadcast, nil
	case "allreduce":
		return AllReduce, nil
	default:
		return 0, fmt.Errorf("collective: unknown op %q (reduce, bcast, allreduce)", name)
	}
}

// Algorithm selects the transport moving operands through the tree.
type Algorithm uint8

// Collective algorithms.
const (
	// AlgTree moves operands in gather packets level by level and folds
	// them at the tree nodes.
	AlgTree Algorithm = iota + 1
	// AlgFlat unicasts every operand straight to the root (and the result
	// straight back): the tree-less baseline.
	AlgFlat
	// AlgFused folds partials inside the routers (INA) at every tree
	// level; needs noc.Config.EnableINA.
	AlgFused
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case AlgTree:
		return "tree"
	case AlgFlat:
		return "flat"
	case AlgFused:
		return "fused"
	default:
		return fmt.Sprintf("Algorithm(%d)", uint8(a))
	}
}

// AlgorithmByName parses a collective algorithm name.
func AlgorithmByName(name string) (Algorithm, error) {
	switch name {
	case "tree":
		return AlgTree, nil
	case "flat":
		return AlgFlat, nil
	case "fused", "ina":
		return AlgFused, nil
	default:
		return 0, fmt.Errorf("collective: unknown algorithm %q (tree, flat, fused)", name)
	}
}

// Config parameterizes a collective workload phase: Rounds repetitions of
// the operation, each preceded by ComputeLatency cycles of modeled local
// compute.
type Config struct {
	// Op selects reduce, broadcast or all-reduce.
	Op Op
	// Algorithm selects the tree, flat-unicast or INA-fused transport.
	Algorithm Algorithm
	// Rounds is how many rounds to simulate (>= 1).
	Rounds int
	// ComputeLatency is the cycles from round start until every PE's
	// operand (or, for a pure broadcast, the root's value) is ready.
	ComputeLatency int
	// Values, when set, overrides the deterministic synthetic operand a
	// PE contributes in a round — the metamorphic tests permute values
	// across PEs through it. Nil selects the built-in derivation.
	Values func(node, round int) uint64
	// BroadcastValues, when set, supplies the root's per-round value for
	// Op == Broadcast (len >= Rounds); nil selects a deterministic
	// synthetic value. Ignored by the other ops, whose broadcast value is
	// the reduction result.
	BroadcastValues []uint64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Op != Reduce && c.Op != Broadcast && c.Op != AllReduce:
		return fmt.Errorf("collective: invalid op %d", c.Op)
	case c.Algorithm != AlgTree && c.Algorithm != AlgFlat && c.Algorithm != AlgFused:
		return fmt.Errorf("collective: invalid algorithm %d", c.Algorithm)
	case c.Rounds < 1:
		return fmt.Errorf("collective: Rounds must be >= 1, got %d", c.Rounds)
	case c.ComputeLatency < 0:
		return fmt.Errorf("collective: ComputeLatency must be >= 0, got %d", c.ComputeLatency)
	case c.Op == Broadcast && c.BroadcastValues != nil && len(c.BroadcastValues) < c.Rounds:
		return fmt.Errorf("collective: BroadcastValues has %d entries for %d rounds",
			len(c.BroadcastValues), c.Rounds)
	}
	return nil
}

// Result summarizes a collective run.
type Result struct {
	// Op, Algorithm, Rows, Cols, Rounds echo the run parameters.
	Op        Op
	Algorithm Algorithm
	Rows      int
	Cols      int
	Rounds    int

	// RoundCycles samples each round's latency (compute included);
	// PacketLatency samples the end-to-end latency of every packet the
	// driver received.
	RoundCycles   stats.Sample
	PacketLatency stats.Sample

	// RootFlits and RootPackets count the flit and packet transactions at
	// the tree root's ejection point — the global-buffer sink port for a
	// mesh Reduce, the root PE's NIC otherwise. This is the serialization
	// bottleneck the tree amortizes, the number the
	// experiments.CollectiveComparison acceptance bound compares against
	// repeated row collection.
	RootFlits   uint64
	RootPackets uint64

	// Merges counts in-network merges and piggyback uploads; SelfInitiated
	// the δ-timeout fallback packets.
	Merges        uint64
	SelfInitiated uint64

	// Sums records each round's collective value: the reduction result
	// (Reduce, AllReduce) or the broadcast value (Broadcast).
	Sums []uint64
	// NodeValues records, for ops with a broadcast leg, the value each
	// node received in each round ([round][node]); the metamorphic
	// equivalence tests compare these matrices bit for bit.
	NodeValues [][]uint64

	// OracleErrors counts reductions whose delivered sum or operand count
	// disagreed with the software oracle at any tree level (must be 0);
	// BroadcastErrors counts wrong, duplicate or misaddressed broadcast
	// deliveries (must be 0).
	OracleErrors    int
	BroadcastErrors int

	// Activity holds the NoC event counts; Cycles the run length.
	Activity noc.Activity
	Cycles   int64
}
