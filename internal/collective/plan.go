package collective

import (
	"fmt"

	"gathernoc/internal/fault"
	"gathernoc/internal/noc"
	"gathernoc/internal/topology"
)

// TreePlan is the two-level reduction tree over a fabric: one LineCollect
// per row collecting at the row's east-column PE, and one LineCollect over
// the east column collecting the row sums at the tree root. The reverse
// tree (broadcast) needs no plan of its own — one multicast packet from
// the root covers every destination over the XY multicast tree.
//
// Every PE belongs to exactly one row line, so the tree covers the fabric
// exactly once; the east-column PEs additionally relay their row sums into
// the column stage. Plans are wrap-aware: with wrap-aware routing each
// line is a ring covered by two directional arcs (see noc.LineCollect).
type TreePlan struct {
	// Rows[r] collects row r at its east-column PE.
	Rows []noc.LineCollect
	// Column collects the east column's row sums at the root.
	Column noc.LineCollect
	// Root is the final reduction point: Column.Target.
	Root topology.NodeID
	// RootIsSink reports whether the root is a global-buffer sink (mesh
	// Reduce) rather than a PE; a sink cannot re-inject, so plans for ops
	// with a broadcast leg must keep the root on a PE.
	RootIsSink bool
	// Live[id] reports whether node id participates (nil: every node). A
	// plan is only constructed when every live node's sweep path to the
	// root is fully alive, so dead nodes never sit on a live node's route.
	Live []bool
	// LiveCount is the number of participating nodes.
	LiveCount int
}

// PlanOptions parameterizes tree-plan construction.
type PlanOptions struct {
	// Dead marks nodes (by id) whose PE and router are out of service;
	// nil or all-false plans the full fabric. A live node whose sweep
	// path to the root crosses a dead node makes the plan infeasible
	// (fault.ErrUnreachable): the tree's routes are deterministic, so
	// there is nothing to reroute around.
	Dead []bool
	// RootAtSink collects the column stage at the bottom row's
	// global-buffer sink instead of the bottom-right PE — the natural
	// root for a pure Reduce on a fabric with east sinks. Requires
	// noc.Config.EastSinks.
	RootAtSink bool
}

// NewTreePlan builds the two-level reduction tree for the network's
// topology and routing, honoring the dead-node mask: the returned plan
// covers every live node exactly once, or construction fails with an
// error wrapping fault.ErrUnreachable naming the first node whose
// deterministic path to the root crosses a dead node.
func NewTreePlan(nw *noc.Network, opts PlanOptions) (*TreePlan, error) {
	cfg := nw.Config()
	topo := nw.Topology()
	nodes := topo.NumNodes()
	if opts.Dead != nil && len(opts.Dead) != nodes {
		return nil, fmt.Errorf("collective: Dead mask has %d entries for %d nodes", len(opts.Dead), nodes)
	}
	if opts.RootAtSink && !cfg.EastSinks {
		return nil, fmt.Errorf("collective: RootAtSink needs noc.Config.EastSinks (topology %q has none)",
			cfg.EffectiveTopology())
	}

	p := &TreePlan{Rows: make([]noc.LineCollect, cfg.Rows)}
	for row := 0; row < cfg.Rows; row++ {
		p.Rows[row] = nw.RowLine(row)
	}
	p.Column = nw.ColumnLine(cfg.Cols-1, opts.RootAtSink)
	p.Root = p.Column.Target
	p.RootIsSink = p.Column.TargetIsSink

	p.LiveCount = nodes
	if opts.Dead != nil {
		p.Live = make([]bool, nodes)
		p.LiveCount = 0
		for id := range p.Live {
			if !opts.Dead[id] {
				p.Live[id] = true
				p.LiveCount++
			}
		}
		if err := p.checkReachable(topo); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Alive reports whether node id participates in the plan.
func (p *TreePlan) Alive(id topology.NodeID) bool {
	return p.Live == nil || p.Live[id]
}

// checkReachable walks every live node's deterministic sweep path — its
// row arc to the east-column PE, then the east column's arc to the root —
// and fails on the first dead router en route. The column segment starts
// at the live node's own row even when its row line is otherwise empty:
// the row target relays through the same column arc regardless.
func (p *TreePlan) checkReachable(topo topology.Topology) error {
	var buf []int
	for id := 0; id < topo.NumNodes(); id++ {
		node := topology.NodeID(id)
		if !p.Live[node] {
			continue
		}
		c := topo.Coord(node)
		rowLine := &p.Rows[c.Row]
		buf = rowLine.SweepPath(c.Col, buf[:0])
		for _, idx := range buf {
			if hop := rowLine.Nodes[idx]; !p.Live[hop] {
				return fmt.Errorf("collective: node %d: row sweep crosses dead node %d: %w",
					node, hop, fault.ErrUnreachable)
			}
		}
		buf = p.Column.SweepPath(c.Row, buf[:0])
		for _, idx := range buf {
			if hop := p.Column.Nodes[idx]; !p.Live[hop] {
				return fmt.Errorf("collective: node %d: column sweep crosses dead node %d: %w",
					node, hop, fault.ErrUnreachable)
			}
		}
	}
	return nil
}

// Dests returns the broadcast destination set: every live node, the root
// included (the multicast tree delivers the root's copy through its own
// local port, so receipt accounting is uniform across all nodes).
func (p *TreePlan) Dests(topo topology.Topology) *topology.DestSet {
	n := topo.NumNodes()
	s := topology.NewDestSet(n)
	for id := 0; id < n; id++ {
		if p.Alive(topology.NodeID(id)) {
			s.Add(topology.NodeID(id))
		}
	}
	return s
}
