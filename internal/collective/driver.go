package collective

import (
	"fmt"

	"gathernoc/internal/flit"
	"gathernoc/internal/nic"
	"gathernoc/internal/noc"
	"gathernoc/internal/reduce"
	"gathernoc/internal/topology"
)

// ReduceID row-field conventions: values below Rows name a row's level-1
// reduction; rowIDColumn tags the column-stage (root) reduction and
// rowIDBroadcast the broadcast payload. flit.TaggedReduceID carries 16
// bits of row, so fabrics up to 2^16-2 rows keep the channels distinct.
const (
	rowIDColumnOffset    = 0
	rowIDBroadcastOffset = 1
)

// acct accumulates one reduction account (a row's level-1 sum or the
// root's column-stage sum).
type acct struct {
	sum  uint64
	ops  int
	done bool
}

// Driver runs a collective workload phase on a network: per round every
// PE contributes one operand (or, for a pure broadcast, the root produces
// one value), the operands flow through the two-level tree — or straight
// to the root under AlgFlat — and ops with a broadcast leg fan the result
// back out to every PE. Each level of each round is verified bit for bit
// against a software reduce.Oracle, and every broadcast receipt against
// the expected value.
//
// The driver carries no topology assumptions: initiators, targets, sweep
// membership and δ scaling all come from the TreePlan's LineCollect
// plans, so the same workload runs on the paper's sink mesh and on a
// torus. It implements workload.Driver (plus the PacketSink, PayloadSink,
// Taggable and ForeignPayloadRouter wiring interfaces), so a scheduler
// can admit a collective phase alongside any other traffic.
type Driver struct {
	nw   *noc.Network
	cfg  Config
	plan *TreePlan

	rows, cols, nodes int
	delta             int64 // base gather δ (AlgTree)
	rdelta            int64 // base reduce δ (AlgFused)
	bcastDests        *topology.DestSet

	// tag is the workload job/phase identity (zero standalone): it stamps
	// injected packets, namespaces payload sequence numbers and is encoded
	// into every ReduceID, so concurrent drivers on one fabric never
	// collide.
	tag flit.Tag
	// foreign, when set, receives payloads whose ReduceID carries another
	// driver's tag (workload.ForeignPayloadRouter).
	foreign func(flit.Payload)

	phase      phase
	round      int
	roundStart int64

	// Leaf stage (reduce ops): per-node operand release.
	doneAt    []int64
	submitted []bool
	pending   int

	// Level 1 (tree/fused): per-row accounts and row-sum relays.
	rowAccs []acct
	rowSum  []uint64
	l2Ready []bool
	l2Sent  []bool
	l2Left  int

	// Level 2: the root account.
	rootAcct   acct
	reduceDone bool

	// Broadcast leg.
	rootReadyAt int64
	bcastSent   bool
	bcastVal    uint64
	got         []bool
	gotCount    int

	oracle *reduce.Oracle
	seq    uint64
	res    Result
}

type phase uint8

const (
	phaseRun phase = iota
	phaseDone
)

// NewController prepares a standalone collective run on nw: the driver
// wires itself as the receive callback of every NIC and sink and starts
// round 0 at cycle 0. Use NewDriver for scheduler-admitted phases.
func NewController(nw *noc.Network, cfg Config) (*Driver, error) {
	d, err := NewDriver(nw, cfg)
	if err != nil {
		return nil, err
	}
	topo := nw.Topology()
	for id := 0; id < topo.NumNodes(); id++ {
		nw.NIC(topology.NodeID(id)).OnReceive(d.OnPacket)
	}
	if nw.Config().EastSinks {
		for row := 0; row < d.rows; row++ {
			nw.Sink(row).OnReceive(d.OnPacket)
		}
	}
	d.startRound(0)
	return d, nil
}

// NewDriver prepares a collective phase for a workload scheduler:
// identical plans and round bookkeeping, but no receive callbacks are
// wired (the scheduler dispatches this phase's packets to OnPacket by
// tag) and the first round starts at Start, not construction.
func NewDriver(nw *noc.Network, cfg Config) (*Driver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nc := nw.Config()
	if cfg.Algorithm == AlgFused && !nc.EnableINA {
		return nil, fmt.Errorf("collective: fused algorithm needs noc.Config.EnableINA")
	}
	// A pure Reduce lands at the global buffer when the fabric has one;
	// ops with a broadcast leg keep the root on a PE, which can re-inject.
	plan, err := NewTreePlan(nw, PlanOptions{RootAtSink: cfg.Op == Reduce && nc.EastSinks})
	if err != nil {
		return nil, err
	}
	d := &Driver{
		nw:     nw,
		cfg:    cfg,
		plan:   plan,
		rows:   nc.Rows,
		cols:   nc.Cols,
		nodes:  nc.Rows * nc.Cols,
		delta:  nc.Delta,
		rdelta: nc.EffectiveReduceDelta(),
	}
	d.doneAt = make([]int64, d.nodes)
	d.submitted = make([]bool, d.nodes)
	d.rowAccs = make([]acct, d.rows)
	d.rowSum = make([]uint64, d.rows)
	d.l2Ready = make([]bool, d.rows)
	d.l2Sent = make([]bool, d.rows)
	d.got = make([]bool, d.nodes)
	d.oracle = reduce.NewOracle()
	d.bcastDests = plan.Dests(nw.Topology())
	d.res = Result{
		Op: cfg.Op, Algorithm: cfg.Algorithm,
		Rows: d.rows, Cols: d.cols, Rounds: cfg.Rounds,
		Sums: make([]uint64, cfg.Rounds),
	}
	if d.hasBroadcast() {
		d.res.NodeValues = make([][]uint64, cfg.Rounds)
	}
	return d, nil
}

// Plan returns the driver's reduction tree.
func (d *Driver) Plan() *TreePlan { return d.plan }

func (d *Driver) hasReduce() bool    { return d.cfg.Op != Broadcast }
func (d *Driver) hasBroadcast() bool { return d.cfg.Op != Reduce }
func (d *Driver) treeLevels() bool   { return d.cfg.Algorithm != AlgFlat }

// SetTag assigns the workload tag encoded into this driver's packets,
// payload sequence numbers and ReduceIDs (workload.Taggable; the
// scheduler calls it before Start). The zero tag reproduces the historic
// untagged encodings bit for bit.
func (d *Driver) SetTag(t flit.Tag) { d.tag = t }

// SetForeignPayloadHandler installs the hook receiving payloads that
// arrived in this phase's packets but belong to another phase
// (workload.ForeignPayloadRouter). Without one, foreign payloads are
// counted as oracle errors.
func (d *Driver) SetForeignPayloadHandler(fn func(flit.Payload)) { d.foreign = fn }

// Start begins the first round at the given cycle (workload.Driver).
func (d *Driver) Start(cycle int64) { d.startRound(cycle) }

// Injected reports whether the final round has nothing left to inject
// (workload.Driver: overlap successors may start while the tail drains).
func (d *Driver) Injected() bool {
	return d.phase == phaseDone || (d.round == d.cfg.Rounds-1 && d.injectedRound())
}

func (d *Driver) injectedRound() bool {
	if d.hasReduce() && (d.pending > 0 || d.l2Left > 0) {
		return false
	}
	return !d.hasBroadcast() || d.bcastSent
}

// Drained reports whether all rounds completed and verified
// (workload.Driver: barrier successors may start).
func (d *Driver) Drained() bool { return d.Done() }

// Done reports whether all simulated rounds completed.
func (d *Driver) Done() bool { return d.phase == phaseDone }

// rowID, columnID and broadcastID name the round's reduction channels.
func (d *Driver) rowID(row int) uint64 {
	return flit.TaggedReduceID(d.tag, row, uint32(d.round))
}

func (d *Driver) columnID() uint64 {
	return flit.TaggedReduceID(d.tag, d.rows+rowIDColumnOffset, uint32(d.round))
}

func (d *Driver) broadcastID() uint64 {
	return flit.TaggedReduceID(d.tag, d.rows+rowIDBroadcastOffset, uint32(d.round))
}

// nextSeq allocates a payload sequence number namespaced by the workload
// tag, so concurrent drivers sharing a NIC's wait lists and stations
// never collide.
func (d *Driver) nextSeq() uint64 {
	d.seq++
	return uint64(d.tag)<<32 | d.seq
}

// leafValue derives the deterministic synthetic operand PE id contributes
// in the given round (Config.Values overrides). The multiplier spreads
// values across the full uint64 range so sums exercise wrap-around
// arithmetic, which the oracle reproduces exactly.
func (d *Driver) leafValue(id, round int) uint64 {
	if d.cfg.Values != nil {
		return d.cfg.Values(id, round)
	}
	return (uint64(id)+1)*0x9E3779B97F4A7C15 + (uint64(round)+3)*0xD1B54A32D192ED03
}

// rootValue derives the value a pure broadcast fans out in the given
// round (Config.BroadcastValues overrides).
func (d *Driver) rootValue(round int) uint64 {
	if d.cfg.BroadcastValues != nil {
		return d.cfg.BroadcastValues[round]
	}
	return (uint64(round)+11)*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB
}

func (d *Driver) startRound(now int64) {
	d.roundStart = now
	d.oracle = reduce.NewOracle()
	d.rootAcct = acct{}
	d.reduceDone = false
	d.bcastSent = false
	d.gotCount = 0
	for i := range d.got {
		d.got[i] = false
	}
	if d.hasBroadcast() {
		d.res.NodeValues[d.round] = make([]uint64, d.nodes)
	}

	if !d.hasReduce() {
		d.rootReadyAt = now + int64(d.cfg.ComputeLatency)
		d.bcastVal = d.rootValue(d.round)
		d.res.Sums[d.round] = d.bcastVal
		return
	}

	for i := range d.rowAccs {
		d.rowAccs[i] = acct{}
		d.l2Ready[i] = false
		d.l2Sent[i] = false
	}
	for i := range d.submitted {
		d.submitted[i] = false
	}
	d.pending = d.nodes
	d.l2Left = 0
	if d.treeLevels() {
		d.l2Left = d.rows
	}
	topo := d.nw.Topology()
	cid := d.columnID()
	for row := 0; row < d.rows; row++ {
		rid := d.rowID(row)
		for col := 0; col < d.cols; col++ {
			id := int(topo.ID(topology.Coord{Row: row, Col: col}))
			d.doneAt[id] = now + int64(d.cfg.ComputeLatency)
			v := d.leafValue(id, d.round)
			if d.treeLevels() {
				d.oracle.Add(rid, v)
			}
			d.oracle.Add(cid, v)
		}
	}
	d.bcastVal = d.oracle.Sum(cid)
	d.res.Sums[d.round] = d.bcastVal
}

// Tick advances the driver: operand release, row-sum relays, the
// broadcast leg and round bookkeeping (workload.Driver).
func (d *Driver) Tick(cycle int64) {
	if d.phase == phaseDone {
		return
	}
	if d.hasReduce() {
		d.releaseLeaves(cycle)
		if d.treeLevels() {
			d.releaseRowSums(cycle)
		}
	}
	d.maybeBroadcast(cycle)
	if d.roundComplete() {
		d.finishRound(cycle)
	}
}

// releaseLeaves submits every PE's operand whose compute finished: into
// its row's level-1 collection (tree/fused), or straight to the root
// (flat).
func (d *Driver) releaseLeaves(cycle int64) {
	if d.pending == 0 {
		return
	}
	topo := d.nw.Topology()
	for id := 0; id < d.nodes; id++ {
		if d.submitted[id] || d.doneAt[id] > cycle {
			continue
		}
		d.submitted[id] = true
		d.pending--
		node := topology.NodeID(id)
		if d.cfg.Algorithm == AlgFlat {
			p := d.payload(node, d.plan.Root, d.columnID(), d.leafValue(id, d.round), 1, cycle)
			n := d.nw.NIC(node)
			n.SetTag(d.tag)
			n.SendUnicastPayload(d.plan.Root, p)
			continue
		}
		row := topo.Coord(node).Row
		line := &d.plan.Rows[row]
		p := d.payload(node, line.Target, d.rowID(row), d.leafValue(id, d.round), 1, cycle)
		d.submitToLine(node, line, topo.Coord(node).Col, p)
	}
}

// releaseRowSums relays completed row sums into the column stage: the
// east-column PE that folded (or received) its row's sum submits it as a
// cols-operand payload toward the root.
func (d *Driver) releaseRowSums(cycle int64) {
	if d.l2Left == 0 {
		return
	}
	for row := 0; row < d.rows; row++ {
		if !d.l2Ready[row] || d.l2Sent[row] {
			continue
		}
		d.l2Sent[row] = true
		d.l2Left--
		east := d.plan.Rows[row].Target
		p := d.payload(east, d.plan.Root, d.columnID(), d.rowSum[row], d.cols, cycle)
		d.submitToLine(east, &d.plan.Column, row, p)
	}
}

// submitToLine moves one payload into a LineCollect stage under the
// configured algorithm: initiators launch the collective packet seeded
// with their payload, every other member offers it to the local station
// under the line's δ scale (a passing packet picks it up, or the timeout
// self-initiates).
func (d *Driver) submitToLine(node topology.NodeID, line *noc.LineCollect, idx int, p flit.Payload) {
	n := d.nw.NIC(node)
	n.SetTag(d.tag)
	scale := int64(line.DeltaScale[idx])
	if d.cfg.Algorithm == AlgFused {
		n.SetReduceDelta(d.rdelta * scale)
		if line.IsInitiator(node) {
			n.SendAccumulate(line.Target, p.ReduceID, p)
		} else {
			n.SubmitReduceOperand(p)
		}
		return
	}
	n.SetDelta(d.delta * scale)
	if line.IsInitiator(node) {
		n.SendGather(line.Target, &p)
	} else {
		n.SubmitGatherPayload(p)
	}
}

// payload assembles one operand payload.
func (d *Driver) payload(src, dst topology.NodeID, rid, value uint64, ops int, cycle int64) flit.Payload {
	return flit.Payload{
		Seq: d.nextSeq(), Src: src, Dst: dst,
		Bits:       d.nw.Config().PayloadBits,
		Value:      value,
		ReadyCycle: cycle,
		ReduceID:   rid,
		Ops:        ops,
	}
}

// maybeBroadcast launches the broadcast leg once the round's value is
// ready: the reduction completed (AllReduce) or the root's compute
// finished (Broadcast). Tree and fused send one multicast packet over the
// XY tree; flat unicasts to every node. The root addresses itself too, so
// every node's receipt flows through the same ejection accounting.
func (d *Driver) maybeBroadcast(cycle int64) {
	if !d.hasBroadcast() || d.bcastSent {
		return
	}
	if d.cfg.Op == AllReduce {
		if !d.reduceDone {
			return
		}
	} else if cycle < d.rootReadyAt {
		return
	}
	d.bcastSent = true
	root := d.plan.Root
	n := d.nw.NIC(root)
	n.SetTag(d.tag)
	bid := d.broadcastID()
	flits := d.nw.Config().UnicastFlits
	if d.cfg.Algorithm == AlgFlat {
		for id := 0; id < d.nodes; id++ {
			p := d.payload(root, topology.NodeID(id), bid, d.bcastVal, 1, cycle)
			n.SendUnicastPayload(topology.NodeID(id), p)
		}
		return
	}
	p := d.payload(root, root, bid, d.bcastVal, 1, cycle)
	n.SendMulticastPayload(d.bcastDests, flits, p)
}

// OnPacket records one arriving packet and dispatches its payloads
// (standalone: the wired receive callback; scheduler: the dispatch target
// for this phase's tag). Broadcast receipts are attributed to the
// ejecting node (ReceivedPacket.At); payloads tagged for another driver —
// picked up en route by this phase's collective packet — are routed
// through the foreign handler instead.
func (d *Driver) OnPacket(p *nic.ReceivedPacket) {
	d.res.PacketLatency.Observe(float64(p.Latency()))
	for _, pl := range p.Payloads {
		if flit.ReduceIDTag(pl.ReduceID) != d.tag && d.foreign != nil {
			d.foreign(pl)
			continue
		}
		if flit.ReduceIDRow(pl.ReduceID) == d.rows+rowIDBroadcastOffset {
			d.onBroadcast(pl, p.At)
			continue
		}
		d.OnPayload(pl)
	}
}

// onBroadcast accounts one broadcast delivery at node `at`: exactly one
// receipt per live node per round, carrying exactly the round's value.
func (d *Driver) onBroadcast(pl flit.Payload, at topology.NodeID) {
	if flit.ReduceIDTag(pl.ReduceID) != d.tag ||
		flit.ReduceIDRound(pl.ReduceID) != uint32(d.round) ||
		int(at) >= d.nodes || !d.plan.Alive(at) || d.got[at] {
		d.res.BroadcastErrors++
		return
	}
	d.got[at] = true
	d.gotCount++
	d.res.NodeValues[d.round][at] = pl.Value
	if pl.Value != d.bcastVal {
		d.res.BroadcastErrors++
	}
}

// OnPayload folds one delivered reduction payload into its account — a
// row's level-1 sum at the row target, or the column stage at the root —
// and checks completed reductions against the oracle. Payloads whose
// ReduceID does not name this driver's tag, a valid channel and the
// current round count as oracle errors (workload.PayloadSink).
func (d *Driver) OnPayload(pl flit.Payload) {
	row := flit.ReduceIDRow(pl.ReduceID)
	if flit.ReduceIDTag(pl.ReduceID) != d.tag || !d.hasReduce() ||
		flit.ReduceIDRound(pl.ReduceID) != uint32(d.round) {
		d.res.OracleErrors++
		return
	}
	switch {
	case row == d.rows+rowIDColumnOffset:
		d.onColumnOperand(pl)
	case row < d.rows && d.treeLevels():
		d.onRowOperand(pl, row)
	default:
		d.res.OracleErrors++
	}
}

// onRowOperand folds one level-1 payload into its row account; a
// completed row is verified against the oracle and its sum staged for the
// column relay.
func (d *Driver) onRowOperand(pl flit.Payload, row int) {
	a := &d.rowAccs[row]
	if a.done {
		// Operands beyond a verified reduction are duplicates.
		d.res.OracleErrors++
		return
	}
	a.sum += pl.Value
	a.ops += pl.OpsCount()
	if a.ops >= d.cols {
		if err := d.oracle.Verify(d.rowID(row), a.sum, a.ops); err != nil {
			d.res.OracleErrors++
		}
		a.done = true
		d.rowSum[row] = a.sum
		d.l2Ready[row] = true
	}
}

// onColumnOperand folds one column-stage payload into the root account; a
// completed reduction is verified against the oracle and finishes the
// round's reduce leg.
func (d *Driver) onColumnOperand(pl flit.Payload) {
	a := &d.rootAcct
	if a.done {
		d.res.OracleErrors++
		return
	}
	a.sum += pl.Value
	a.ops += pl.OpsCount()
	if a.ops >= d.nodes {
		if err := d.oracle.Verify(d.columnID(), a.sum, a.ops); err != nil {
			d.res.OracleErrors++
		}
		a.done = true
		d.reduceDone = true
	}
}

func (d *Driver) roundComplete() bool {
	if d.hasBroadcast() {
		return d.gotCount >= d.plan.LiveCount
	}
	return d.reduceDone
}

func (d *Driver) finishRound(cycle int64) {
	d.res.RoundCycles.Observe(float64(cycle - d.roundStart))
	d.round++
	if d.round >= d.cfg.Rounds {
		d.phase = phaseDone
		return
	}
	d.startRound(cycle)
}

// Run registers the driver with the network's engine and executes the
// configured rounds, returning the finalized result. Call at most once,
// on a standalone controller (NewController).
func (d *Driver) Run(maxCycles int64) (*Result, error) {
	eng := d.nw.Engine()
	eng.AddTicker(d)
	cycles, err := eng.RunUntil(d.Done, maxCycles)
	if err != nil {
		return nil, fmt.Errorf("collective: %s/%s on %dx%d: %w",
			d.cfg.Op, d.cfg.Algorithm, d.rows, d.cols, err)
	}
	return d.result(cycles), nil
}

// result finalizes the run-wide result: network counters plus the flits
// that crossed the tree root's ejection point.
func (d *Driver) result(cycles int64) *Result {
	r := &d.res
	r.Cycles = cycles
	r.Activity = d.nw.Activity()
	for id := 0; id < d.nodes; id++ {
		n := d.nw.NIC(topology.NodeID(id))
		r.SelfInitiated += n.SelfInitiatedGathers.Value() + n.SelfInitiatedReduces.Value()
		r.Merges += n.PiggybackAcks.Value() + n.MergeAcks.Value()
	}
	var ej *nic.Ejector
	if d.plan.RootIsSink {
		ej = d.nw.Sink(d.rows - 1).Ejector()
	} else {
		ej = d.nw.NIC(d.plan.Root).Ejector()
	}
	r.RootFlits = ej.FlitsEjected.Value()
	r.RootPackets = ej.PacketsEjected.Value()
	return r
}

// Snapshot returns the driver-local result fields (latencies, sums,
// per-node values, error counts) without aggregating network-wide
// counters — the accessor scheduler-driven phases use, where concurrent
// phases share those counters.
func (d *Driver) Snapshot() *Result { return &d.res }
