package analytic

import "fmt"

// MaxHops returns the network diameter — the worst-case minimal hop count
// between two nodes — for an n×m fabric of the named topology ("mesh" or
// "torus"; "" selects mesh). The torus halves each dimension's worst case
// because minimal routes take the shorter way around the ring.
func MaxHops(topology string, n, m int) (int, error) {
	if n < 1 || m < 1 {
		return 0, fmt.Errorf("analytic: fabric %dx%d invalid", n, m)
	}
	switch topology {
	case "", "mesh":
		return (n - 1) + (m - 1), nil
	case "torus":
		return n/2 + m/2, nil
	default:
		return 0, fmt.Errorf("analytic: unknown topology %q (mesh, torus)", topology)
	}
}

// UniformMeanHops returns the expected minimal hop count between a
// uniformly random ordered pair of distinct nodes on an n×m fabric of the
// named topology — the analytic bound that minimal routing (XY on the
// mesh, wrap-aware dimension-order on the torus) achieves exactly, and
// that the hop cross-validation tests check the simulator against.
//
// Per dimension of length k the mean absolute offset between two
// independent uniform positions is (k²-1)/(3k) on a line and k/4 (k even)
// or (k²-1)/(4k) (k odd) on a ring; dimensions are independent, and
// conditioning on distinct nodes scales the sum by N/(N-1).
func UniformMeanHops(topology string, n, m int) (float64, error) {
	if n < 1 || m < 1 {
		return 0, fmt.Errorf("analytic: fabric %dx%d invalid", n, m)
	}
	nodes := float64(n * m)
	if nodes < 2 {
		return 0, nil
	}
	var mean float64
	switch topology {
	case "", "mesh":
		mean = lineMeanDist(n) + lineMeanDist(m)
	case "torus":
		mean = ringMeanDist(n) + ringMeanDist(m)
	default:
		return 0, fmt.Errorf("analytic: unknown topology %q (mesh, torus)", topology)
	}
	return mean * nodes / (nodes - 1), nil
}

// lineMeanDist is E[|a-b|] for independent uniform a,b in [0,k).
func lineMeanDist(k int) float64 {
	fk := float64(k)
	return (fk*fk - 1) / (3 * fk)
}

// ringMeanDist is E[min(|a-b|, k-|a-b|)] for independent uniform a,b in
// [0,k).
func ringMeanDist(k int) float64 {
	fk := float64(k)
	if k%2 == 0 {
		return fk / 4
	}
	return (fk*fk - 1) / (4 * fk)
}
