package analytic

// Traffic predicts the exact wire activity of one result-collection round
// on an N×M mesh with east-edge global-buffer sinks: how many flits cross
// links and how many router buffer writes occur under each collection
// scheme. The simulator's activity counters match these closed forms
// exactly on uncongested runs (see the cross-validation tests), which
// pins the Fig. 1 resource-saving argument quantitatively.
type Traffic struct {
	// N and M are the mesh rows and columns.
	N int
	M int
	// UnicastFlits and GatherFlits are the packet lengths ⌈L/W⌉ and
	// ⌈L'/W⌉.
	UnicastFlits int
	GatherFlits  int
}

// RULinkFlits returns the flit-link traversals of one repetitive-unicast
// round: the PE at column c sends L flits across one injection link,
// M−1−c inter-router links and one sink link.
func (t Traffic) RULinkFlits() int {
	perRow := 0
	for c := 0; c < t.M; c++ {
		perRow += t.UnicastFlits * (t.M - c + 1)
	}
	return t.N * perRow
}

// GatherLinkFlits returns the flit-link traversals of one gather round:
// one L'-flit packet per row crossing injection, M−1 inter-router links
// and the sink link.
func (t Traffic) GatherLinkFlits() int {
	return t.N * t.GatherFlits * (t.M + 1)
}

// RUBufferWrites returns the router buffer writes of one RU round: the
// packet from column c visits M−c routers.
func (t Traffic) RUBufferWrites() int {
	perRow := 0
	for c := 0; c < t.M; c++ {
		perRow += t.UnicastFlits * (t.M - c)
	}
	return t.N * perRow
}

// GatherBufferWrites returns the router buffer writes of one gather round:
// the row packet visits all M routers.
func (t Traffic) GatherBufferWrites() int {
	return t.N * t.GatherFlits * t.M
}

// LinkFlitSavingPercent returns the wire-traffic reduction of gather over
// RU in percent.
func (t Traffic) LinkFlitSavingPercent() float64 {
	ru := t.RULinkFlits()
	if ru == 0 {
		return 0
	}
	return float64(ru-t.GatherLinkFlits()) / float64(ru) * 100
}
