package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"gathernoc/internal/cnn"
)

// tableIIParams returns the calibrated 8x8 parameters of DESIGN.md §4.
func tableIIParams(crr int) Params {
	return Params{
		N: 8, M: 8, Kappa: 4, UnicastFlits: 2, GatherFlits: 4,
		Eta: 8, TMAC: 5, CRR: crr,
	}
}

func TestReproducesTableIIEstimatedRow(t *testing.T) {
	// Paper Table II, "Estimated" row for AlexNet on the 8x8 mesh.
	paper := map[string]float64{
		"Conv1": 2.92, "Conv2": 0.73, "Conv3": 0.68, "Conv4": 0.34, "Conv5": 0.51,
	}
	// Conv1's published value appears to carry a rounding quirk in the
	// paper's own arithmetic; every other layer matches to the printed
	// precision (see DESIGN.md §4).
	tolerance := map[string]float64{
		"Conv1": 0.07, "Conv2": 0.005, "Conv3": 0.005, "Conv4": 0.005, "Conv5": 0.005,
	}
	for _, layer := range cnn.AlexNetConvLayers() {
		p := tableIIParams(layer.MACsPerPE())
		got := p.Improvement()
		want := paper[layer.Name]
		if math.Abs(got-want) > tolerance[layer.Name] {
			t.Errorf("%s: improvement = %.3f%%, paper says %.2f%% (tol %.3f)",
				layer.Name, got, want, tolerance[layer.Name])
		}
	}
}

func TestCollectionTerms(t *testing.T) {
	p := tableIIParams(363)
	// RU: M(κ+L/W)−1 = 8*(4+2)−1 = 47.
	if got := p.RUCollection(); got != 47 {
		t.Errorf("RUCollection = %d, want 47", got)
	}
	// Gather with η=M: one packet, M·κ + L'/W − 1 = 32+3 = 35.
	if got := p.GatherCollection(); got != 35 {
		t.Errorf("GatherCollection = %d, want 35", got)
	}
	if got := p.RURound(); got != 363+5+47 {
		t.Errorf("RURound = %d, want %d", got, 363+5+47)
	}
	if got := p.GatherRound(); got != 363+5+35 {
		t.Errorf("GatherRound = %d, want %d", got, 363+5+35)
	}
}

func TestGatherCollectionMultiplePackets(t *testing.T) {
	p := tableIIParams(100)
	p.Eta = 4 // two gather packets per row: i=0 and i=1
	// i=0: 8*4 + 3 = 35 ; i=1: (8-4)*4 + 3 = 19.
	if got := p.GatherCollection(); got != 54 {
		t.Errorf("GatherCollection = %d, want 54", got)
	}
}

func TestCongestionTermsRaiseLatency(t *testing.T) {
	base := tableIIParams(363)
	congested := base
	congested.DeltaR = 20
	congested.DeltaG = 4
	congested.TDelta = 2
	if congested.RUCollection() != base.RUCollection()+20 {
		t.Error("DeltaR not additive")
	}
	if congested.GatherCollection() != base.GatherCollection()+6 {
		t.Error("DeltaG/TDelta not additive")
	}
	// Congestion hits RU harder here, so improvement grows, matching the
	// paper's simulated > estimated observation.
	if congested.Improvement() <= base.Improvement() {
		t.Error("RU-side congestion should increase improvement")
	}
}

func TestTotalsScaleWithRounds(t *testing.T) {
	p := tableIIParams(363)
	if got := p.TotalRU(10); got != int64(p.RURound())*10 {
		t.Errorf("TotalRU = %d", got)
	}
	if got := p.TotalGather(10); got != int64(p.GatherRound())*10 {
		t.Errorf("TotalGather = %d", got)
	}
}

// Property: improvement decreases monotonically as C·R·R grows (the
// paper's explanation for Conv1 showing the largest improvement).
func TestImprovementMonotoneInCRR(t *testing.T) {
	f := func(a, b uint16) bool {
		ca, cb := int(a)+1, int(b)+1
		if ca > cb {
			ca, cb = cb, ca
		}
		if ca == cb {
			return true
		}
		pa, pb := tableIIParams(ca), tableIIParams(cb)
		return pa.Improvement() >= pb.Improvement()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: a 16-wide mesh improves at least as much as an 8-wide mesh for
// the same layer (the paper's network-size observation), given the
// format-derived gather packet lengths.
func TestWiderMeshImprovesMore(t *testing.T) {
	f := func(raw uint16) bool {
		crr := int(raw)%4000 + 27
		p8 := tableIIParams(crr)
		p16 := p8
		p16.M, p16.N, p16.Eta, p16.GatherFlits = 16, 16, 16, 7
		return p16.Improvement() > p8.Improvement()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestValidate(t *testing.T) {
	good := tableIIParams(100)
	if err := good.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := []func(*Params){
		func(p *Params) { p.N = 0 },
		func(p *Params) { p.Kappa = 0 },
		func(p *Params) { p.UnicastFlits = 0 },
		func(p *Params) { p.GatherFlits = 0 },
		func(p *Params) { p.Eta = 0 },
		func(p *Params) { p.CRR = -1 },
		func(p *Params) { p.DeltaR = -1 },
	}
	for i, mutate := range bad {
		p := tableIIParams(100)
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestImprovementZeroGuard(t *testing.T) {
	p := Params{N: 1, M: 1, Kappa: 1, UnicastFlits: 1, GatherFlits: 1, Eta: 1}
	// GatherRound is tiny but nonzero here; force the zero case directly.
	z := Params{}
	if z.Improvement() != 0 {
		t.Error("zero params should yield 0 improvement")
	}
	_ = p.Improvement() // must not divide by zero
}

// inaParams returns the Table I parameters with the INA extension's
// defaults (2-flit accumulate packets, whole-row merge budget).
func inaParams() Params {
	return Params{
		N: 8, M: 8, Kappa: 4, UnicastFlits: 2, GatherFlits: 4,
		Eta: 8, TMAC: 5, CRR: 100,
	}
}

func TestINACollectionBound(t *testing.T) {
	p := inaParams()
	// One accumulate packet covers the row: M·κ + 2 − 1 = 33.
	if got := p.INACollection(); got != 33 {
		t.Errorf("INACollection = %d, want 33", got)
	}
	// Strictly below the gather bound whenever the accumulate packet is
	// shorter than the gather packet.
	if p.INACollection() >= p.GatherCollection() {
		t.Errorf("INA bound %d not below gather bound %d",
			p.INACollection(), p.GatherCollection())
	}
	if got, want := p.INARound(), 100+5+33; got != want {
		t.Errorf("INARound = %d, want %d", got, want)
	}
	if got, want := p.TotalINA(10), int64(10*(100+5+33)); got != want {
		t.Errorf("TotalINA = %d, want %d", got, want)
	}
}

func TestINACollectionSplitsOnBudget(t *testing.T) {
	p := inaParams()
	p.ReduceCapacity = 4
	// Two packets: (8·4 + 1) + (4·4 + 1) = 33 + 17 = 50.
	if got := p.INACollection(); got != 50 {
		t.Errorf("INACollection with budget 4 = %d, want 50", got)
	}
}

func TestINAImprovementPositive(t *testing.T) {
	p := inaParams()
	if got := p.INAImprovement(); got <= 0 {
		t.Errorf("INAImprovement = %.2f, want > 0", got)
	}
	// The penalties apply per packet to both schemes; the gap is the
	// flit-length difference.
	want := float64(p.GatherCollection()-p.INACollection()) / float64(p.INARound()) * 100
	if got := p.INAImprovement(); got != want {
		t.Errorf("INAImprovement = %v, want %v", got, want)
	}
}

func TestINAValidation(t *testing.T) {
	p := inaParams()
	p.AccumulateFlits = -1
	if err := p.Validate(); err == nil {
		t.Error("negative AccumulateFlits accepted")
	}
	p = inaParams()
	p.ReduceCapacity = -1
	if err := p.Validate(); err == nil {
		t.Error("negative ReduceCapacity accepted")
	}
}
