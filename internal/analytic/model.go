// Package analytic implements the paper's closed-form latency model:
// Eq. (2) for the repetitive-unicast total latency, Eq. (3) for the gather
// total latency, and Eq. (4) for the expected improvement. With the
// congestion terms and tδ set to zero it reproduces the "Estimated" row of
// Table II (see DESIGN.md §4 for the calibration of κ, η and the packet
// lengths).
package analytic

import "fmt"

// Params are the inputs to Eqs. (2)–(4).
type Params struct {
	// N and M are the mesh rows and columns.
	N int
	M int
	// Kappa is κ, the per-hop router pipeline latency in cycles.
	Kappa int
	// UnicastFlits is ⌈L/W⌉, the unicast packet length in flits.
	UnicastFlits int
	// GatherFlits is ⌈L'/W⌉, the gather packet length in flits.
	GatherFlits int
	// Eta is η, the payload capacity of one gather packet.
	Eta int
	// AccumulateFlits is the (constant) accumulate packet length in flits;
	// 0 selects the wire format's 2 (head + accumulator). Used by the INA
	// bound only.
	AccumulateFlits int
	// ReduceCapacity is the merge budget of one accumulate packet; 0
	// selects M (one packet reduces a full row). Used by the INA bound
	// only.
	ReduceCapacity int
	// TMAC is the MAC time in cycles (Table I: 5).
	TMAC int
	// CRR is C·R·R, the per-round input/weight streaming time in cycles.
	CRR int
	// TDelta is tδ, the per-gather-packet delay waiting for payload
	// availability (0 in the ideal estimate).
	TDelta int
	// DeltaR and DeltaG are the congestion terms ΔR and ΔG (0 in the
	// ideal estimate).
	DeltaR int
	DeltaG int
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	switch {
	case p.N < 1 || p.M < 1:
		return fmt.Errorf("analytic: mesh %dx%d invalid", p.N, p.M)
	case p.Kappa < 1:
		return fmt.Errorf("analytic: kappa %d invalid", p.Kappa)
	case p.UnicastFlits < 1 || p.GatherFlits < 1:
		return fmt.Errorf("analytic: packet lengths %d/%d invalid", p.UnicastFlits, p.GatherFlits)
	case p.Eta < 1:
		return fmt.Errorf("analytic: eta %d invalid", p.Eta)
	case p.AccumulateFlits < 0 || p.ReduceCapacity < 0:
		return fmt.Errorf("analytic: INA parameters %d/%d invalid", p.AccumulateFlits, p.ReduceCapacity)
	case p.CRR < 0 || p.TMAC < 0 || p.TDelta < 0 || p.DeltaR < 0 || p.DeltaG < 0:
		return fmt.Errorf("analytic: negative latency component")
	}
	return nil
}

// accFlits resolves the accumulate packet length default (head + one
// accumulator flit).
func (p Params) accFlits() int {
	if p.AccumulateFlits > 0 {
		return p.AccumulateFlits
	}
	return 2
}

// reduceCapacity resolves the merge-budget default (the row width M).
func (p Params) reduceCapacity() int {
	if p.ReduceCapacity > 0 {
		return p.ReduceCapacity
	}
	return p.M
}

// RUCollection returns the repetitive-unicast result-collection term of
// Eq. (2): M·(κ + ⌈L/W⌉) − 1 + ΔR, i.e. the header pipeline latency from
// the leftmost PE plus the serialized remaining flits of all M packets.
func (p Params) RUCollection() int {
	return p.M*(p.Kappa+p.UnicastFlits) - 1 + p.DeltaR
}

// GatherCollection returns the gather result-collection term of Eq. (3):
// the sum over the ⌈M/η⌉ gather packets of each packet's header transit
// (M − i·η hops), its remaining flits, and the tδ and ΔG penalties.
func (p Params) GatherCollection() int {
	eta := p.Eta
	if eta < 1 {
		eta = 1
	}
	packets := (p.M + eta - 1) / eta
	total := 0
	for i := 0; i < packets; i++ {
		total += (p.M-i*eta)*p.Kappa + p.GatherFlits - 1 + p.TDelta + p.DeltaG
	}
	return total
}

// INACollection returns the in-network-accumulation collection bound: the
// row splits into ⌈M/capacity⌉ accumulate packets (one when the merge
// budget covers the row, the common case); packet i starts M − i·capacity
// hops from the sink and stays a constant AccumulateFlits long however
// many operands it absorbs, since merging happens in place. Each packet
// pays the same tδ and ΔG penalties as a gather packet. With the default
// capacity this collapses to M·κ + AccumulateFlits − 1 + tδ + ΔG —
// strictly below GatherCollection whenever the gather packet is longer
// than an accumulate packet, which is the whole-row case for every mesh
// the paper evaluates.
func (p Params) INACollection() int {
	budget := p.reduceCapacity()
	packets := (p.M + budget - 1) / budget
	total := 0
	for i := 0; i < packets; i++ {
		total += (p.M-i*budget)*p.Kappa + p.accFlits() - 1 + p.TDelta + p.DeltaG
	}
	return total
}

// INARound returns one round's latency under in-network accumulation.
func (p Params) INARound() int {
	return p.CRR + p.TMAC + p.INACollection()
}

// TotalINA returns the INA analogue of Eq. (3): the INA round latency
// times the round count.
func (p Params) TotalINA(rounds int64) int64 {
	return int64(p.INARound()) * rounds
}

// INAImprovement returns the collection-latency saving of INA over gather
// collection relative to the INA round latency, in percent (the Eq. (4)
// form with gather as the baseline).
func (p Params) INAImprovement() float64 {
	r := p.INARound()
	if r == 0 {
		return 0
	}
	return float64(p.GatherCollection()-p.INACollection()) / float64(r) * 100
}

// RURound returns one round's latency under repetitive unicast:
// C·R·R + T_MAC + RUCollection.
func (p Params) RURound() int {
	return p.CRR + p.TMAC + p.RUCollection()
}

// GatherRound returns one round's latency under gather collection.
func (p Params) GatherRound() int {
	return p.CRR + p.TMAC + p.GatherCollection()
}

// TotalRU returns Eq. (2): the RU round latency times the round count.
func (p Params) TotalRU(rounds int64) int64 {
	return int64(p.RURound()) * rounds
}

// TotalGather returns Eq. (3): the gather round latency times the round
// count.
func (p Params) TotalGather(rounds int64) int64 {
	return int64(p.GatherRound()) * rounds
}

// Improvement returns Eq. (4) as a percentage: the collection-latency
// saving relative to the gather round latency. The round count cancels, so
// it is also the total-latency improvement.
func (p Params) Improvement() float64 {
	g := p.GatherRound()
	if g == 0 {
		return 0
	}
	return float64(p.RUCollection()-p.GatherCollection()) / float64(g) * 100
}
