package analytic

import (
	"testing"
	"testing/quick"
)

func TestTrafficClosedForms(t *testing.T) {
	// The 8x8 Table I configuration, one round.
	tr := Traffic{N: 8, M: 8, UnicastFlits: 2, GatherFlits: 4}
	// Per row: 2 flits x sum_{c=0..7} (8-c+1) = 2 x (9+8+...+2) = 88.
	if got := tr.RULinkFlits(); got != 704 {
		t.Errorf("RULinkFlits = %d, want 704", got)
	}
	// Per row: 4 flits x 9 links = 36.
	if got := tr.GatherLinkFlits(); got != 288 {
		t.Errorf("GatherLinkFlits = %d, want 288", got)
	}
	// Per row: 2 x (8+7+...+1) = 72 buffer writes.
	if got := tr.RUBufferWrites(); got != 576 {
		t.Errorf("RUBufferWrites = %d, want 576", got)
	}
	if got := tr.GatherBufferWrites(); got != 256 {
		t.Errorf("GatherBufferWrites = %d, want 256", got)
	}
	if got := tr.LinkFlitSavingPercent(); got < 59 || got > 60 {
		t.Errorf("saving = %.2f%%, want ~59%%", got)
	}
}

func TestTrafficFig1Example(t *testing.T) {
	// Fig. 1's 6x6 mesh, single row (N=1): with 1-flit packets the RU
	// inter-router traversals are 15 (the paper's count) plus 6 injection
	// and 6 sink crossings.
	tr := Traffic{N: 1, M: 6, UnicastFlits: 1, GatherFlits: 1}
	interRouter := tr.RUBufferWrites() - tr.M // buffer writes minus source routers
	if interRouter != 15 {
		t.Errorf("RU inter-router hops = %d, want 15 (Fig. 1a)", interRouter)
	}
	if got := tr.GatherBufferWrites() - 1; got != 5 {
		t.Errorf("gather inter-router hops = %d, want 5 (Fig. 1b)", got)
	}
}

// Property: gather always saves wire traffic, and the saving grows with
// the mesh width when compared one payload-slot period (3 columns) apart
// — comparing adjacent widths is not monotone because the gather packet
// length quantizes to whole flits (3 payloads each), briefly diluting the
// saving right after each length step.
func TestTrafficSavingGrowsWithWidth(t *testing.T) {
	gflits := func(m int) int { return 1 + (m+2)/3 }
	f := func(raw uint8) bool {
		m := int(raw)%14 + 2
		a := Traffic{N: m, M: m, UnicastFlits: 2, GatherFlits: gflits(m)}
		b := Traffic{N: m + 3, M: m + 3, UnicastFlits: 2, GatherFlits: gflits(m + 3)}
		if a.GatherLinkFlits() >= a.RULinkFlits() {
			return false
		}
		return b.LinkFlitSavingPercent() > a.LinkFlitSavingPercent()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTrafficZeroGuard(t *testing.T) {
	var tr Traffic
	if tr.LinkFlitSavingPercent() != 0 {
		t.Error("zero traffic should report 0 saving")
	}
}
