package analytic

import (
	"math"
	"testing"

	"gathernoc/internal/topology"
)

func TestMaxHops(t *testing.T) {
	cases := []struct {
		topo string
		n, m int
		want int
	}{
		{"mesh", 8, 8, 14},
		{"", 8, 8, 14},
		{"torus", 8, 8, 8},
		{"torus", 5, 7, 5},
		{"mesh", 1, 1, 0},
	}
	for _, c := range cases {
		got, err := MaxHops(c.topo, c.n, c.m)
		if err != nil || got != c.want {
			t.Errorf("MaxHops(%q,%d,%d) = %d,%v want %d", c.topo, c.n, c.m, got, err, c.want)
		}
	}
	if _, err := MaxHops("ring", 4, 4); err == nil {
		t.Error("unknown topology accepted")
	}
	if _, err := MaxHops("mesh", 0, 4); err == nil {
		t.Error("bad size accepted")
	}
}

// TestUniformMeanHopsMatchesExhaustive cross-checks the closed form
// against a brute-force average over all distinct ordered pairs using the
// topology package's own Hops.
func TestUniformMeanHopsMatchesExhaustive(t *testing.T) {
	for _, c := range []struct {
		topoName string
		n, m     int
	}{
		{"mesh", 4, 4}, {"mesh", 5, 7}, {"torus", 4, 4}, {"torus", 5, 7}, {"torus", 6, 3},
	} {
		topo, err := topology.New(c.topoName, c.n, c.m)
		if err != nil {
			t.Fatal(err)
		}
		sum, pairs := 0, 0
		for a := 0; a < topo.NumNodes(); a++ {
			for b := 0; b < topo.NumNodes(); b++ {
				if a == b {
					continue
				}
				sum += topo.Hops(topology.NodeID(a), topology.NodeID(b))
				pairs++
			}
		}
		want := float64(sum) / float64(pairs)
		got, err := UniformMeanHops(c.topoName, c.n, c.m)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("UniformMeanHops(%q,%d,%d) = %v, exhaustive %v", c.topoName, c.n, c.m, got, want)
		}
	}
}
