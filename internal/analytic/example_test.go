package analytic_test

import (
	"fmt"

	"gathernoc/internal/analytic"
)

// The paper's Table II "Estimated" entry for AlexNet Conv2 on the 8x8
// mesh: Eq. (4) with the calibrated constants.
func ExampleParams_Improvement() {
	p := analytic.Params{
		N: 8, M: 8, // mesh
		Kappa:        4,          // per-hop header latency
		UnicastFlits: 2,          // Table I
		GatherFlits:  4,          // Table I
		Eta:          8,          // one gather packet per row
		TMAC:         5,          // Table I
		CRR:          64 * 5 * 5, // Conv2: C·R·R
	}
	fmt.Printf("RU collection:     %d cycles\n", p.RUCollection())
	fmt.Printf("gather collection: %d cycles\n", p.GatherCollection())
	fmt.Printf("improvement:       %.2f%%\n", p.Improvement())
	// Output:
	// RU collection:     47 cycles
	// gather collection: 35 cycles
	// improvement:       0.73%
}

// One round's wire traffic, the quantitative Fig. 1 argument.
func ExampleTraffic_LinkFlitSavingPercent() {
	t := analytic.Traffic{N: 8, M: 8, UnicastFlits: 2, GatherFlits: 4}
	fmt.Printf("RU:     %d flit-link traversals\n", t.RULinkFlits())
	fmt.Printf("gather: %d flit-link traversals\n", t.GatherLinkFlits())
	fmt.Printf("saving: %.0f%%\n", t.LinkFlitSavingPercent())
	// Output:
	// RU:     704 flit-link traversals
	// gather: 288 flit-link traversals
	// saving: 59%
}
