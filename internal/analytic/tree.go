package analytic

// Tree-collective bounds. The two-level tree reduces each row to its east
// column in parallel (the level-1 stage is the per-row collection bound,
// unchanged), then reduces the N row sums down the east column (the same
// formula with the column length N in place of M). Broadcast returns on
// the multicast XY tree, whose latency is the farthest leaf's hop count
// plus packet serialization. All bounds inherit the tδ/Δ congestion knobs
// of the row model and collapse to ideal estimates when those are zero.

// column returns p with the roles of the dimensions swapped so the row
// collection formulas describe the level-2 column stage: a line of N
// stations feeding the root.
func (p Params) column() Params {
	q := p
	q.M = p.N
	q.ReduceCapacity = p.ReduceCapacity
	if q.ReduceCapacity == 0 {
		// The default merge budget tracks the line length, not the row
		// width, once the line is a column.
		q.ReduceCapacity = p.N
	}
	return q
}

// TreeReduceCollection returns the two-level tree reduction bound with
// gather transport: the per-row gather collection (rows run concurrently,
// so the row stage costs one row's latency) plus the column-stage gather
// collection over the N row sums.
func (p Params) TreeReduceCollection() int {
	return p.GatherCollection() + p.column().GatherCollection()
}

// TreeINACollection is the INA-fused variant: both stages merge in the
// routers, so each stage costs its line's INA collection bound.
func (p Params) TreeINACollection() int {
	return p.INACollection() + p.column().INACollection()
}

// FlatCollection returns the flat-unicast all-to-root bound: every one of
// the N·M PEs unicasts its operand to the root, and the root's single
// ejection port serializes all of them — RUCollection with the row width
// replaced by the node count. This is the serialization wall the tree
// amortizes.
func (p Params) FlatCollection() int {
	q := p
	q.M = p.N * p.M
	return q.RUCollection()
}

// BroadcastLatency returns the multicast XY tree bound: the farthest leaf
// sits (N−1)+(M−1) hops from the root's corner, and the packet body
// serializes behind the header.
func (p Params) BroadcastLatency() int {
	return ((p.N-1)+(p.M-1))*p.Kappa + p.UnicastFlits - 1
}

// TreeAllReduce returns the tree all-reduce bound: reduction down the
// two-level tree, then the multicast broadcast back out.
func (p Params) TreeAllReduce() int {
	return p.TreeReduceCollection() + p.BroadcastLatency()
}

// TreeINAAllReduce is TreeAllReduce with INA-fused reduction stages.
func (p Params) TreeINAAllReduce() int {
	return p.TreeINACollection() + p.BroadcastLatency()
}

// FlatAllReduce returns the flat baseline: all-to-root unicast reduction
// followed by root-to-all unicast broadcast, which serializes the same
// N·M packets a second time on the way out.
func (p Params) FlatAllReduce() int {
	return 2 * p.FlatCollection()
}

// TreeImprovement returns the all-reduce saving of the tree over the flat
// baseline relative to the flat bound, in percent.
func (p Params) TreeImprovement() float64 {
	f := p.FlatAllReduce()
	if f == 0 {
		return 0
	}
	return float64(f-p.TreeAllReduce()) / float64(f) * 100
}
