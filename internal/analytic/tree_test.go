package analytic

import (
	"testing"
	"testing/quick"
)

// TestTreeCollectionTerms pins the tree bounds on the calibrated 8x8
// parameters by hand-computed arithmetic.
func TestTreeCollectionTerms(t *testing.T) {
	p := tableIIParams(0)
	// Row stage: one gather packet, 8·4 + 4 − 1 = 35. Column stage is the
	// same line length, so the tree reduce is 70.
	if got := p.TreeReduceCollection(); got != 70 {
		t.Errorf("TreeReduceCollection = %d, want 70", got)
	}
	// INA stage: 8·4 + 2 − 1 = 33 per line.
	if got := p.TreeINACollection(); got != 66 {
		t.Errorf("TreeINACollection = %d, want 66", got)
	}
	// Flat: 64 nodes through one ejection port, 64·(4+2) − 1 = 383.
	if got := p.FlatCollection(); got != 383 {
		t.Errorf("FlatCollection = %d, want 383", got)
	}
	// Broadcast: 14 hops · κ + 2 − 1 = 57.
	if got := p.BroadcastLatency(); got != 57 {
		t.Errorf("BroadcastLatency = %d, want 57", got)
	}
	if got := p.TreeAllReduce(); got != 70+57 {
		t.Errorf("TreeAllReduce = %d, want %d", got, 70+57)
	}
	if got := p.TreeINAAllReduce(); got != 66+57 {
		t.Errorf("TreeINAAllReduce = %d, want %d", got, 66+57)
	}
	if got := p.FlatAllReduce(); got != 766 {
		t.Errorf("FlatAllReduce = %d, want 766", got)
	}
	if imp := p.TreeImprovement(); imp < 80 || imp > 90 {
		t.Errorf("TreeImprovement = %.1f%%, want ~83%%", imp)
	}
}

// TestTreeBeatsFlatEverywhere property-checks the ordering the simulator's
// acceptance test measures: on any fabric with more than one row the tree
// all-reduce bound undercuts the flat baseline, and the INA-fused tree
// never exceeds the gather tree.
func TestTreeBeatsFlatEverywhere(t *testing.T) {
	f := func(n, m uint8) bool {
		p := Params{
			N: 2 + int(n)%15, M: 2 + int(m)%15,
			Kappa: 4, UnicastFlits: 2, GatherFlits: 4, Eta: 8, TMAC: 5,
		}
		if err := p.Validate(); err != nil {
			return false
		}
		return p.TreeAllReduce() < p.FlatAllReduce() &&
			p.TreeINAAllReduce() <= p.TreeAllReduce()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestTreeColumnStage verifies the level-2 stage tracks N, not M, on
// non-square fabrics.
func TestTreeColumnStage(t *testing.T) {
	wide := Params{N: 2, M: 8, Kappa: 4, UnicastFlits: 2, GatherFlits: 4, Eta: 8}
	tall := Params{N: 8, M: 2, Kappa: 4, UnicastFlits: 2, GatherFlits: 4, Eta: 8}
	// Wide: row 35 + column (2·4+3) = 46. Tall: row (2·4+3) + column 35 = 46.
	if got := wide.TreeReduceCollection(); got != 46 {
		t.Errorf("wide TreeReduceCollection = %d, want 46", got)
	}
	if got := tall.TreeReduceCollection(); got != 46 {
		t.Errorf("tall TreeReduceCollection = %d, want 46", got)
	}
	// Both share the same broadcast depth (8 hops).
	if wide.BroadcastLatency() != tall.BroadcastLatency() {
		t.Errorf("broadcast depths differ: %d vs %d",
			wide.BroadcastLatency(), tall.BroadcastLatency())
	}
}
