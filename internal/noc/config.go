package noc

import (
	"fmt"
	"slices"
	"strings"

	"gathernoc/internal/fault"
	"gathernoc/internal/flit"
	"gathernoc/internal/router"
	"gathernoc/internal/telemetry"
	"gathernoc/internal/topology"
)

// Config describes a complete network instance. DefaultConfig returns the
// paper's Table I settings.
type Config struct {
	// Rows and Cols give the fabric dimensions (Table I: 8x8 and 16x16).
	Rows int
	Cols int
	// Topology selects the interconnect fabric: "" or "mesh" for the
	// paper's 2-D mesh, or "torus" for the wraparound variant. The torus
	// has no east edge, so it is incompatible with EastSinks (row
	// collection targets the row's east-column PE instead) and, under
	// dimension-order routing, partitions the VCs into two dateline
	// classes — which excludes the GatherVC reservation and needs
	// Router.VCs >= 2. Validate spells out each conflict.
	Topology string
	// Router holds the per-router microarchitecture parameters.
	Router router.Config
	// LinkLatency is the flit traversal time of every channel in cycles.
	LinkLatency int
	// FlitBits is the flit width (Table I: 98).
	FlitBits int
	// PayloadBits is the gather payload width (Table I: 32).
	PayloadBits int
	// UnicastFlits is the non-gather packet length (Table I: 2).
	UnicastFlits int
	// GatherCapacity is η, the payload capacity of one gather packet;
	// 0 selects the row width (Cols), the value that reproduces Table I's
	// 4-flit gather packets on the 8x8 mesh.
	GatherCapacity int
	// Delta is the δ timeout in cycles (Table I: 5).
	Delta int64
	// EnableINA turns on the in-network accumulation subsystem (DESIGN.md
	// §5): workload layers may launch flit.Accumulate packets whose
	// partial sums are reduced inside the routers as they flow east, so
	// one constant-length packet delivers a whole row's sum. Off by
	// default; with it off no accumulate packet ever enters the fabric
	// and the network's schedules are bit-identical to the pre-INA
	// simulator.
	EnableINA bool
	// ReduceCapacity is the merge budget of one accumulate packet (its
	// own operand included); 0 selects the row width (Cols), letting one
	// packet reduce a full row.
	ReduceCapacity int
	// ReduceDelta is the δ timeout for reduce operands awaiting an
	// in-network merge; 0 falls back to Delta.
	ReduceDelta int64
	// EjectRate is the NIC ejection drain rate in flits/cycle.
	EjectRate int
	// EastSinks attaches a global-buffer sink past the east edge of every
	// row, addressed by RowSinkID, matching Fig. 1/Fig. 2's buffer
	// placement.
	EastSinks bool
	// SinkDrainRate is the buffer sink drain rate in flits/cycle.
	SinkDrainRate int
	// Routing selects the unicast/gather routing algorithm: "" or "xy"
	// for deterministic dimension-order routing (the paper's setting; on
	// the torus the wrap-aware minimal variant with dateline VC classes),
	// "westfirst" for minimal adaptive west-first turn-model routing, or
	// "oddeven" for the odd-even turn model — both with credit-based
	// output selection, and both confined to the mesh sub-network on a
	// torus (see topology.NewRouting). Multicast always uses the XY tree.
	Routing string
	// Shards selects the engine backend: 0 (default) runs the sequential
	// single-goroutine engine; N >= 1 partitions the fabric into N
	// contiguous row blocks, each ticked and committed by its own worker
	// goroutine under the deterministic two-phase schedule (DESIGN.md §9).
	// Schedules are bit-identical for every value, sequential included;
	// shard counts above Rows are clamped (see EffectiveShards), and
	// Shards=1 exercises the sharded machinery without parallelism. The
	// sharded engine always ticks every component (AlwaysTick is implied):
	// sharding targets exactly the high-load regimes where sleep/wake
	// bookkeeping is a net loss.
	Shards int
	// AlwaysTick disables the engine's sleep/wake scheduling, evaluating
	// every router, link and NIC every cycle. The default (false) skips
	// quiescent components, which is bit-identical but much faster at the
	// paper's operating points; the naive mode exists as the reference
	// path for the golden equivalence tests and for perf comparisons.
	AlwaysTick bool
	// DebugFlitPool enables the flit pool's ownership checker: every
	// acquire/release is tracked, double releases panic, and tests can
	// assert a drained network leaked nothing (Network.FlitPool().Live()
	// == 0). Off by default — the tracking map costs real time on the
	// hot path.
	DebugFlitPool bool
	// Telemetry enables the observability layer (DESIGN.md §11): an epoch
	// metrics collector snapshotting counter deltas every Telemetry.Epoch
	// cycles and a sampled flit-lifecycle tracer, harvested via
	// Network.HarvestTelemetry. Nil (the default) wires nothing — every
	// probe pointer stays nil and the hot path is unchanged, keeping
	// schedules bit-identical to a telemetry-free build. The collector is
	// purely observational, so schedules are identical with it on, too.
	Telemetry *telemetry.Config
	// Faults enables deterministic fault injection and the recovery
	// machinery (DESIGN.md §12): seeded transient flit drops/corruption on
	// the inter-router links, scheduled link and router outages, NIC-level
	// end-to-end retransmission with duplicate suppression at the ejectors,
	// and fault-aware adaptive routing. Nil (the default), or a config with
	// no fault source, wires nothing — schedules stay bit-identical to a
	// fault-free build at every shard count.
	Faults *fault.Config
	// SinkPacketOverhead is the per-packet write-transaction cost at the
	// global buffer, in cycles: after a packet's tail is consumed, the
	// buffer port stalls this long before accepting further flits. This
	// is the serialization that makes repetitive unicast pay per packet
	// at the memory while a gather packet pays once per row; without it
	// (0) the wormhole pipeline absorbs RU traffic and the paper's
	// latency gap does not materialize (DESIGN.md §3). The default of 5
	// (one SRAM transaction, on par with T_MAC) calibrates the simulated
	// Table II row.
	SinkPacketOverhead int64
}

// DefaultTorusConfig returns the Table I configuration transplanted onto
// a rows×cols torus: east sinks are disabled (the torus has no east edge;
// row collection targets the row's east-column PE, see
// Network.RowCollect) and the default dimension-order routing uses
// dateline VC classes for deadlock freedom.
func DefaultTorusConfig(rows, cols int) Config {
	cfg := DefaultConfig(rows, cols)
	cfg.Topology = "torus"
	cfg.EastSinks = false
	return cfg
}

// DefaultConfig returns the Table I network configuration for a rows×cols
// mesh with east-edge global-buffer sinks.
func DefaultConfig(rows, cols int) Config {
	return Config{
		Rows:               rows,
		Cols:               cols,
		Router:             router.DefaultConfig(),
		LinkLatency:        1,
		FlitBits:           flit.DefaultFlitBits,
		PayloadBits:        flit.DefaultPayloadBits,
		UnicastFlits:       2,
		Delta:              5,
		EjectRate:          1,
		EastSinks:          true,
		SinkDrainRate:      1,
		SinkPacketOverhead: 5,
	}
}

// EffectiveTopology resolves the topology default ("") to "mesh".
func (c Config) EffectiveTopology() string {
	if c.Topology == "" {
		return "mesh"
	}
	return c.Topology
}

// EffectiveRouting resolves the routing default ("") to "xy".
func (c Config) EffectiveRouting() string {
	if c.Routing == "" {
		return "xy"
	}
	return c.Routing
}

// Validate reports configuration errors, including inconsistent
// topology/routing/sink combinations: a config that would silently
// misroute (east sinks hanging off a wrapped torus edge, a dedicated
// gather VC colliding with the dateline VC classes) is rejected with an
// error naming the conflict instead of producing wrong schedules.
func (c Config) Validate() error {
	switch {
	case c.Rows < 1 || c.Cols < 1:
		return fmt.Errorf("noc: fabric %dx%d invalid", c.Rows, c.Cols)
	case c.Shards < 0:
		return fmt.Errorf("noc: Shards must be >= 0, got %d", c.Shards)
	case c.LinkLatency < 1:
		return fmt.Errorf("noc: LinkLatency must be >= 1, got %d", c.LinkLatency)
	case c.UnicastFlits < 1:
		return fmt.Errorf("noc: UnicastFlits must be >= 1, got %d", c.UnicastFlits)
	case c.GatherCapacity < 0:
		return fmt.Errorf("noc: GatherCapacity must be >= 0, got %d", c.GatherCapacity)
	case c.ReduceCapacity < 0:
		return fmt.Errorf("noc: ReduceCapacity must be >= 0, got %d", c.ReduceCapacity)
	case c.ReduceDelta < 0:
		return fmt.Errorf("noc: ReduceDelta must be >= 0, got %d", c.ReduceDelta)
	case c.EjectRate < 1:
		return fmt.Errorf("noc: EjectRate must be >= 1, got %d", c.EjectRate)
	case c.EastSinks && c.SinkDrainRate < 1:
		return fmt.Errorf("noc: SinkDrainRate must be >= 1, got %d", c.SinkDrainRate)
	case c.SinkPacketOverhead < 0:
		return fmt.Errorf("noc: SinkPacketOverhead must be >= 0, got %d", c.SinkPacketOverhead)
	case c.Topology != "" && !slices.Contains(topology.TopologyNames(), c.Topology):
		return fmt.Errorf("noc: unknown topology %q (%s)", c.Topology, strings.Join(topology.TopologyNames(), ", "))
	case c.Routing != "" && !slices.Contains(topology.RoutingNames(), c.Routing):
		return fmt.Errorf("noc: unknown routing %q (%s)", c.Routing, strings.Join(topology.RoutingNames(), ", "))
	}
	if c.EffectiveTopology() == "torus" {
		switch {
		case c.EastSinks:
			return fmt.Errorf("noc: EastSinks needs a mesh east edge, but on a torus every east port wraps around; " +
				"disable EastSinks (row collection then targets the row's east-column PE, see Network.RowCollect)")
		case c.EffectiveRouting() == "xy" && c.Router.VCs < 2:
			return fmt.Errorf("noc: torus dimension-order routing needs Router.VCs >= 2 for its dateline VC classes, got %d", c.Router.VCs)
		case c.EffectiveRouting() == "xy" && c.Router.GatherVC >= 0:
			return fmt.Errorf("noc: GatherVC %d conflicts with the torus dateline VC classes; "+
				"use GatherVC=-1 or an adaptive routing (westfirst, oddeven)", c.Router.GatherVC)
		}
	}
	if c.Telemetry != nil {
		if err := c.Telemetry.Validate(); err != nil {
			return err
		}
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	return c.Router.Validate()
}

// EffectiveShards resolves the shard count the engine actually runs:
// 0 stays sequential, and positive counts are clamped to Rows so every
// shard owns at least one row of the fabric partition.
func (c Config) EffectiveShards() int {
	if c.Shards > c.Rows {
		return c.Rows
	}
	return c.Shards
}

// EffectiveGatherCapacity resolves the η=0 default to the row width.
func (c Config) EffectiveGatherCapacity() int {
	if c.GatherCapacity > 0 {
		return c.GatherCapacity
	}
	return c.Cols
}

// EffectiveReduceCapacity resolves the INA merge-budget default (0) to the
// row width, so one accumulate packet can reduce a full row.
func (c Config) EffectiveReduceCapacity() int {
	if c.ReduceCapacity > 0 {
		return c.ReduceCapacity
	}
	return c.Cols
}

// EffectiveReduceDelta resolves the reduce δ default (0) to Delta.
func (c Config) EffectiveReduceDelta() int64 {
	if c.ReduceDelta > 0 {
		return c.ReduceDelta
	}
	return c.Delta
}

// HeaderHopLatency returns κ, the per-hop latency of a header flit through
// an uncontended router and its outgoing link.
func (c Config) HeaderHopLatency() int {
	return c.Router.RCDelay + c.Router.VADelay + 1 + c.LinkLatency
}
