package noc

import (
	"reflect"
	"testing"

	"gathernoc/internal/fault"
	"gathernoc/internal/telemetry"
)

// TestConfigHashEquivalences pins the normalization rules: semantically
// identical configurations must collide on the canonical hash.
func TestConfigHashEquivalences(t *testing.T) {
	base := DefaultConfig(8, 8)
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"topology default", func(c *Config) { c.Topology = "mesh" }},
		{"routing default", func(c *Config) { c.Routing = "xy" }},
		{"gather capacity default", func(c *Config) { c.GatherCapacity = 8 }},
		{"reduce capacity default", func(c *Config) { c.ReduceCapacity = 8 }},
		{"reduce delta default", func(c *Config) { c.ReduceDelta = c.Delta }},
		{"shards invariant", func(c *Config) { c.Shards = 4 }},
		{"always-tick invariant", func(c *Config) { c.AlwaysTick = true }},
		{"debug pool invariant", func(c *Config) { c.DebugFlitPool = true }},
		{"telemetry invariant", func(c *Config) { c.Telemetry = &telemetry.Config{Epoch: 256} }},
		{"disabled faults fold to nil", func(c *Config) { c.Faults = &fault.Config{Seed: 99} }},
	}
	want := base.Hash()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if got := cfg.Hash(); got != want {
				t.Errorf("hash changed for an equivalent config:\nbase    %s\nmutated %s", want, got)
			}
		})
	}

	// Fault retry defaults resolve before hashing: an enabled schedule with
	// zero-valued retry policy hashes like one with the defaults spelled out.
	faulty := base
	faulty.Faults = &fault.Config{DropRate: 0.25}
	explicit := base
	explicit.Faults = &fault.Config{
		DropRate:     0.25,
		RetryTimeout: fault.DefaultRetryTimeout,
		RetryCap:     fault.DefaultRetryCap,
		MaxRetries:   fault.DefaultMaxRetries,
	}
	if faulty.Hash() != explicit.Hash() {
		t.Error("fault retry defaults not normalized before hashing")
	}
	if faulty.Hash() == base.Hash() {
		t.Error("enabled fault schedule did not change the hash")
	}
}

// perturbLeaf mutates a settable scalar or slice value to something
// observably different, returning false for kinds it cannot handle (the
// caller must then cover the field explicitly).
func perturbLeaf(v reflect.Value) bool {
	switch v.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(v.Int() + 3)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(v.Uint() + 3)
	case reflect.Float32, reflect.Float64:
		v.SetFloat(v.Float() + 0.125)
	case reflect.Bool:
		v.SetBool(!v.Bool())
	case reflect.String:
		v.SetString(v.String() + "x")
	case reflect.Slice:
		v.Set(reflect.Append(v, reflect.Zero(v.Type().Elem())))
	default:
		return false
	}
	return true
}

// TestConfigHashCoversEveryField is the reflection-driven guard against a
// new Config field silently escaping the cache key: every field must
// either change the hash when perturbed or appear in hashExcludedFields
// with an invariance argument (in which case perturbing it must NOT
// change the hash). Struct-valued fields (Router, *fault.Config) are
// walked recursively so their members can't escape either.
func TestConfigHashCoversEveryField(t *testing.T) {
	base := DefaultConfig(8, 8)
	baseHash := base.Hash()

	checkLeaf := func(t *testing.T, name string, path []int, excluded bool) {
		mutated := base
		v := reflect.ValueOf(&mutated).Elem().FieldByIndex(path)
		if !perturbLeaf(v) {
			t.Fatalf("field %s has kind %s the perturbation test cannot mutate — extend perturbLeaf or cover it explicitly", name, v.Kind())
		}
		got := mutated.Hash()
		if excluded && got != baseHash {
			t.Errorf("excluded field %s changed the hash — remove it from hashExcludedFields or fix normalizeForHash", name)
		}
		if !excluded && got == baseHash {
			t.Errorf("field %s escaped the canonical hash — hash it or argue invariance in hashExcludedFields", name)
		}
	}

	cfgType := reflect.TypeOf(base)
	for i := 0; i < cfgType.NumField(); i++ {
		f := cfgType.Field(i)
		_, excluded := hashExcludedFields[f.Name]
		switch {
		case f.Name == "Telemetry":
			if !excluded {
				t.Fatalf("Telemetry must be listed in hashExcludedFields")
			}
			mutated := base
			mutated.Telemetry = &telemetry.Config{Epoch: 999}
			if mutated.Hash() != baseHash {
				t.Error("Telemetry changed the hash despite exclusion")
			}
		case f.Name == "Faults":
			mutated := base
			mutated.Faults = &fault.Config{DropRate: 0.25}
			if mutated.Hash() == baseHash {
				t.Error("enabling Faults did not change the hash")
			}
			// Walk the fault config's own fields on an enabled base, so a
			// new fault knob can't escape the key either.
			faultType := reflect.TypeOf(fault.Config{})
			for j := 0; j < faultType.NumField(); j++ {
				ff := faultType.Field(j)
				enabled := base
				fc := fault.Config{DropRate: 0.25}
				enabled.Faults = &fc
				enabledHash := enabled.Hash()
				v := reflect.ValueOf(&fc).Elem().Field(j)
				if !perturbLeaf(v) {
					t.Fatalf("fault field Faults.%s has kind %s the perturbation test cannot mutate", ff.Name, v.Kind())
				}
				if enabled.Hash() == enabledHash {
					t.Errorf("field Faults.%s escaped the canonical hash", ff.Name)
				}
			}
		case f.Type.Kind() == reflect.Struct:
			for j := 0; j < f.Type.NumField(); j++ {
				sf := f.Type.Field(j)
				checkLeaf(t, f.Name+"."+sf.Name, []int{i, j}, false)
			}
		default:
			checkLeaf(t, f.Name, []int{i}, excluded)
		}
	}
}

// TestConfigHashStability guards the hash version contract: the digest of
// the reference Table I configuration is pinned, so an accidental change
// to the normalization rules or field set (which would silently mix old
// and new cache entries) fails loudly here instead. An intentional change
// must bump configHashVersion and re-pin.
func TestConfigHashStability(t *testing.T) {
	h := DefaultConfig(8, 8).Hash()
	if len(h) != 64 {
		t.Fatalf("hash length %d, want 64 hex chars", len(h))
	}
	if h2 := DefaultConfig(8, 8).Hash(); h2 != h {
		t.Fatalf("hash not stable across calls: %s vs %s", h, h2)
	}
	if h16 := DefaultConfig(16, 16).Hash(); h16 == h {
		t.Fatal("8x8 and 16x16 configs hash equal")
	}
}
