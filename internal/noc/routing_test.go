package noc

import (
	"testing"

	"gathernoc/internal/flit"
	"gathernoc/internal/nic"
	"gathernoc/internal/topology"
)

func TestWestFirstRoutingDelivers(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	cfg.Routing = "westfirst"
	nw := mustNetwork(t, cfg)

	received := map[topology.NodeID]int{}
	for id := 0; id < nw.Mesh().NumNodes(); id++ {
		id := topology.NodeID(id)
		nw.NIC(id).OnReceive(func(p *nic.ReceivedPacket) { received[id]++ })
	}
	// All-to-one plus scattered pairs, covering west-exclusive and
	// adaptive quadrants.
	pairs := [][2]topology.NodeID{
		{0, 15}, {15, 0}, {3, 12}, {12, 3}, {5, 10}, {10, 5}, {1, 14}, {7, 8},
	}
	for _, pr := range pairs {
		nw.NIC(pr[0]).SendUnicast(pr[1])
	}
	if _, err := nw.RunUntilQuiescent(100000); err != nil {
		t.Fatal(err)
	}
	for _, pr := range pairs {
		if received[pr[1]] < 1 {
			t.Errorf("packet %d->%d not delivered", pr[0], pr[1])
		}
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestWestFirstGatherStillWorks(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	cfg.Routing = "westfirst"
	nw := mustNetwork(t, cfg)
	row := 1
	dst := nw.RowSinkID(row)
	payloads := 0
	nw.Sink(row).OnReceive(func(p *nic.ReceivedPacket) { payloads += len(p.Payloads) })

	for c := 1; c < 4; c++ {
		id := nw.Mesh().ID(topology.Coord{Row: row, Col: c})
		nw.NIC(id).SetDelta(cfg.Delta * int64(1+c))
		nw.NIC(id).SubmitGatherPayload(flitPayloadAt(uint64(c), id, dst))
	}
	left := nw.Mesh().ID(topology.Coord{Row: row, Col: 0})
	own := flitPayloadAt(0, left, dst)
	nw.NIC(left).SendGather(dst, &own)

	if _, err := nw.RunUntilQuiescent(100000); err != nil {
		t.Fatal(err)
	}
	if payloads != 4 {
		t.Errorf("payloads = %d, want 4", payloads)
	}
}

func TestWestFirstHotspotDrains(t *testing.T) {
	// Heavy many-to-one load under adaptive routing: must stay
	// deadlock-free (west-first turn model) and drain.
	cfg := DefaultConfig(4, 4)
	cfg.Routing = "westfirst"
	nw := mustNetwork(t, cfg)
	count := 0
	nw.NIC(0).OnReceive(func(p *nic.ReceivedPacket) { count++ })
	for id := 1; id < nw.Mesh().NumNodes(); id++ {
		for k := 0; k < 4; k++ {
			nw.NIC(topology.NodeID(id)).SendUnicastN(0, 4)
		}
	}
	if _, err := nw.RunUntilQuiescent(200000); err != nil {
		t.Fatal(err)
	}
	if count != 15*4 {
		t.Errorf("delivered %d, want %d", count, 60)
	}
}

func TestRoutingConfigValidation(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	cfg.Routing = "zigzag"
	if err := cfg.Validate(); err == nil {
		t.Error("unknown routing accepted")
	}
	for _, algo := range []string{"", "xy", "westfirst"} {
		cfg.Routing = algo
		if err := cfg.Validate(); err != nil {
			t.Errorf("routing %q rejected: %v", algo, err)
		}
	}
}

// flitPayloadAt builds a tagged payload for routing tests.
func flitPayloadAt(seq uint64, src, dst topology.NodeID) flit.Payload {
	return flit.Payload{Seq: seq, Src: src, Dst: dst, Bits: 32, Value: seq}
}
