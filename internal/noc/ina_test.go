package noc

import (
	"testing"

	"gathernoc/internal/flit"
	"gathernoc/internal/nic"
	"gathernoc/internal/topology"
)

// reduceOperandAt builds an INA operand.
func reduceOperandAt(seq uint64, src, dst topology.NodeID, reduceID, value uint64) flit.Payload {
	return flit.Payload{Seq: seq, Src: src, Dst: dst, ReduceID: reduceID, Value: value, Ops: 1}
}

// TestINARowReduction drives one full-row reduction end to end: the
// leftmost PE launches an accumulate packet, every other PE offers its
// operand, and the sink must receive exactly one 2-flit packet whose
// accumulator carries the bit-exact row sum.
func TestINARowReduction(t *testing.T) {
	cfg := DefaultConfig(1, 8)
	cfg.EnableINA = true
	nw := mustNetwork(t, cfg)
	dst := nw.RowSinkID(0)

	var pkts []*nic.ReceivedPacket
	nw.Sink(0).OnReceive(func(p *nic.ReceivedPacket) { pkts = append(pkts, p.Clone()) })

	const rid = uint64(3) << 32
	want := uint64(0)
	for col := 1; col < 8; col++ {
		id := topology.NodeID(col)
		v := uint64(col) * 1_000_003
		want += v
		nw.NIC(id).SetReduceDelta(5 * int64(1+col))
		nw.NIC(id).SubmitReduceOperand(reduceOperandAt(uint64(col), id, dst, rid, v))
	}
	own := reduceOperandAt(100, 0, dst, rid, 17)
	want += 17
	nw.NIC(0).SendAccumulate(dst, rid, own)

	if _, err := nw.RunUntilQuiescent(100000); err != nil {
		t.Fatal(err)
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 1 {
		t.Fatalf("sink received %d packets, want 1", len(pkts))
	}
	p := pkts[0]
	if p.PT != flit.Accumulate || p.Flits != flit.AccumulateFlits {
		t.Errorf("packet = %s %d flits, want A %d", p.PT, p.Flits, flit.AccumulateFlits)
	}
	if len(p.Payloads) != 1 {
		t.Fatalf("packet carries %d payloads, want 1 accumulator", len(p.Payloads))
	}
	acc := p.Payloads[0]
	if acc.Value != want {
		t.Errorf("row sum = %d, want %d", acc.Value, want)
	}
	if acc.Ops != 8 {
		t.Errorf("ops = %d, want 8", acc.Ops)
	}
	if got := nw.Activity().ReduceMerges; got != 7 {
		t.Errorf("ReduceMerges = %d, want 7", got)
	}
}

// TestINATimeoutSelfInitiates delays no packet past a tiny δ: the operand
// must be retracted and arrive via a self-initiated accumulate packet, and
// the total across packets must still be exact.
func TestINATimeoutSelfInitiates(t *testing.T) {
	cfg := DefaultConfig(1, 8)
	cfg.EnableINA = true
	nw := mustNetwork(t, cfg)
	dst := nw.RowSinkID(0)

	sum := uint64(0)
	ops := 0
	nw.Sink(0).OnReceive(func(p *nic.ReceivedPacket) {
		for _, pl := range p.Payloads {
			sum += pl.Value
			ops += pl.OpsCount()
		}
	})

	// No accumulate packet is ever launched toward this operand: δ expires
	// and the NIC must self-initiate.
	id := topology.NodeID(5)
	nw.NIC(id).SetReduceDelta(3)
	nw.NIC(id).SubmitReduceOperand(reduceOperandAt(1, id, dst, 9, 123))

	if _, err := nw.RunUntilQuiescent(100000); err != nil {
		t.Fatal(err)
	}
	if got := nw.NIC(id).SelfInitiatedReduces.Value(); got != 1 {
		t.Errorf("SelfInitiatedReduces = %d, want 1", got)
	}
	if sum != 123 || ops != 1 {
		t.Errorf("sink got sum %d ops %d, want 123/1", sum, ops)
	}
}

// TestINAStationFullFallsBack overflows the accumulation station: the
// overflow operand must self-initiate immediately and everything must be
// delivered exactly once.
func TestINAStationFullFallsBack(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	cfg.EnableINA = true
	cfg.Router.ReduceQueueCap = 1
	cfg.ReduceDelta = 1000 // only the overflow path, no timeouts
	nw := mustNetwork(t, cfg)
	row := 0
	dst := nw.RowSinkID(row)

	sum := uint64(0)
	ops := 0
	nw.Sink(row).OnReceive(func(p *nic.ReceivedPacket) {
		for _, pl := range p.Payloads {
			sum += pl.Value
			ops += pl.OpsCount()
		}
	})

	id := nw.Mesh().ID(topology.Coord{Row: row, Col: 2})
	n := nw.NIC(id)
	n.SubmitReduceOperand(reduceOperandAt(1, id, dst, 4, 10))
	n.SubmitReduceOperand(reduceOperandAt(2, id, dst, 4, 20))
	if n.SelfInitiatedReduces.Value() != 1 {
		t.Fatalf("overflow operand did not self-initiate (count=%d)",
			n.SelfInitiatedReduces.Value())
	}
	left := nw.Mesh().ID(topology.Coord{Row: row, Col: 0})
	nw.NIC(left).SendAccumulate(dst, 4, reduceOperandAt(3, left, dst, 4, 30))

	if _, err := nw.RunUntilQuiescent(100000); err != nil {
		t.Fatal(err)
	}
	if sum != 60 || ops != 3 {
		t.Errorf("sink got sum %d ops %d, want 60/3", sum, ops)
	}
}

// TestINAOffBitIdentical pins the guard rail: with EnableINA unset (and no
// accumulate traffic), a gather workload's schedule and activity must be
// byte-for-byte what they were before the INA subsystem existed — here
// asserted as equality between two configs differing only in EnableINA.
func TestINAOffBitIdentical(t *testing.T) {
	runGather := func(enable bool) (Activity, int64) {
		cfg := DefaultConfig(4, 4)
		cfg.EnableINA = enable
		nw := mustNetwork(t, cfg)
		dst := nw.RowSinkID(0)
		for col := 1; col < 4; col++ {
			id := nw.Mesh().ID(topology.Coord{Row: 0, Col: col})
			nw.NIC(id).SetDelta(5 * int64(1+col))
			nw.NIC(id).SubmitGatherPayload(flitPayloadAt(uint64(col), id, dst))
		}
		own := flitPayloadAt(9, 0, dst)
		nw.NIC(0).SendGather(dst, &own)
		cycles, err := nw.RunUntilQuiescent(100000)
		if err != nil {
			t.Fatal(err)
		}
		return nw.Activity(), cycles
	}
	aOff, cOff := runGather(false)
	aOn, cOn := runGather(true)
	if aOff != aOn || cOff != cOn {
		t.Errorf("EnableINA perturbed a gather run:\noff %+v (%d cycles)\non  %+v (%d cycles)",
			aOff, cOff, aOn, cOn)
	}
}

// TestINAConfigValidation pins the new Config knobs.
func TestINAConfigValidation(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	cfg.ReduceCapacity = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative ReduceCapacity accepted")
	}
	cfg = DefaultConfig(4, 4)
	cfg.ReduceDelta = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative ReduceDelta accepted")
	}
	cfg = DefaultConfig(4, 4)
	if got := cfg.EffectiveReduceCapacity(); got != 4 {
		t.Errorf("EffectiveReduceCapacity = %d, want Cols (4)", got)
	}
	if got := cfg.EffectiveReduceDelta(); got != cfg.Delta {
		t.Errorf("EffectiveReduceDelta = %d, want Delta (%d)", got, cfg.Delta)
	}
	cfg.ReduceCapacity = 2
	cfg.ReduceDelta = 9
	if cfg.EffectiveReduceCapacity() != 2 || cfg.EffectiveReduceDelta() != 9 {
		t.Error("explicit INA knobs not honored")
	}
}
