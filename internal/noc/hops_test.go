package noc

import (
	"math/rand"
	"testing"

	"gathernoc/internal/nic"
	"gathernoc/internal/topology"
)

// TestHopAccountingMatchesManhattan verifies end to end that XY-routed
// packets traverse exactly Manhattan-distance+1 routers, and that
// west-first routing is minimal too.
func TestHopAccountingMatchesManhattan(t *testing.T) {
	for _, algo := range []string{"xy", "westfirst"} {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			cfg := DefaultConfig(5, 5)
			cfg.Routing = algo
			nw := mustNetwork(t, cfg)
			type want struct {
				src, dst topology.NodeID
			}
			byID := map[uint64]want{}
			var got []*nic.ReceivedPacket
			for id := 0; id < nw.Mesh().NumNodes(); id++ {
				id := topology.NodeID(id)
				nw.NIC(id).OnReceive(func(p *nic.ReceivedPacket) { got = append(got, p.Clone()) })
			}
			rng := rand.New(rand.NewSource(3))
			for i := 0; i < 30; i++ {
				src := topology.NodeID(rng.Intn(25))
				dst := topology.NodeID(rng.Intn(25))
				if src == dst {
					continue
				}
				pid := nw.NIC(src).SendUnicast(dst)
				byID[pid] = want{src: src, dst: dst}
			}
			if _, err := nw.RunUntilQuiescent(100000); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(byID) {
				t.Fatalf("received %d, want %d", len(got), len(byID))
			}
			for _, p := range got {
				w := byID[p.ID]
				wantHops := nw.Mesh().Hops(w.src, w.dst) + 1
				if p.Hops != wantHops {
					t.Errorf("%s: packet %d->%d hops = %d, want %d",
						algo, w.src, w.dst, p.Hops, wantHops)
				}
			}
		})
	}
}

// TestGatherHopCountMatchesFig1 checks the Fig. 1 arithmetic on the live
// simulator: a gather packet crossing a full row visits every row router
// once.
func TestGatherHopCountMatchesFig1(t *testing.T) {
	cfg := DefaultConfig(6, 6)
	nw := mustNetwork(t, cfg)
	row := 2
	dst := nw.RowSinkID(row)
	var hops int
	nw.Sink(row).OnReceive(func(p *nic.ReceivedPacket) { hops = p.Hops })
	left := nw.Mesh().ID(topology.Coord{Row: row, Col: 0})
	own := flitPayloadAt(1, left, dst)
	nw.NIC(left).SendGather(dst, &own)
	if _, err := nw.RunUntilQuiescent(10000); err != nil {
		t.Fatal(err)
	}
	// 6 routers across the row; the 5 inter-router hops are the paper's
	// "5 hops" of Fig. 1(b).
	if hops != 6 {
		t.Errorf("gather packet visited %d routers, want 6", hops)
	}
}
