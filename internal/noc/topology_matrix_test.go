package noc

import (
	"fmt"
	"math/rand"
	"testing"

	"gathernoc/internal/nic"
	"gathernoc/internal/topology"
)

// matrixConfig builds the network configuration for one (topology,
// routing) cell: the Table I defaults, with east sinks dropped on the
// torus (its east ports wrap around).
func matrixConfig(topo, routing string, rows, cols int) Config {
	cfg := DefaultConfig(rows, cols)
	cfg.Topology = topo
	cfg.Routing = routing
	if topo == "torus" {
		cfg.EastSinks = false
	}
	return cfg
}

// saturator is an open-loop injector driving every NIC far past the
// saturation rate — the stress under which a routing deadlock, were one
// possible, would manifest as a never-draining network.
type saturator struct {
	nw     *Network
	rng    *rand.Rand
	dest   func(src topology.NodeID, rng *rand.Rand) topology.NodeID
	cycles int64
	rate   float64
	sent   int
}

func (s *saturator) Tick(cycle int64) {
	if cycle >= s.cycles {
		return
	}
	n := s.nw.Topology().NumNodes()
	for id := 0; id < n; id++ {
		if s.rng.Float64() >= s.rate {
			continue
		}
		src := topology.NodeID(id)
		dst := s.dest(src, s.rng)
		if dst == src {
			continue
		}
		s.nw.NIC(src).SendUnicast(dst)
		s.sent++
	}
}

// TestTopologyRoutingMatrixDeadlockFree runs every built-in (topology,
// routing) pair under saturated uniform-random and transpose traffic and
// requires the network to drain completely: with a deadlocked VC anywhere
// the run would exhaust its cycle budget instead. Torus cells exercise
// the wraparound links and the dateline VC classes; the adaptive cells
// exercise credit-based output selection under heavy backpressure.
func TestTopologyRoutingMatrixDeadlockFree(t *testing.T) {
	rows, cols := 6, 6
	window := int64(600)
	if testing.Short() {
		rows, cols = 4, 4
		window = 250
	}
	for _, topoName := range topology.TopologyNames() {
		for _, routingName := range topology.RoutingNames() {
			for _, pattern := range []string{"uniform", "transpose"} {
				name := fmt.Sprintf("%s/%s/%s", topoName, routingName, pattern)
				t.Run(name, func(t *testing.T) {
					cfg := matrixConfig(topoName, routingName, rows, cols)
					nw := mustNetwork(t, cfg)
					topo := nw.Topology()
					received := 0
					for id := 0; id < topo.NumNodes(); id++ {
						nw.NIC(topology.NodeID(id)).OnReceive(func(p *nic.ReceivedPacket) {
							received++
						})
					}
					dest := func(src topology.NodeID, rng *rand.Rand) topology.NodeID {
						return topology.NodeID(rng.Intn(topo.NumNodes()))
					}
					if pattern == "transpose" {
						dest = func(src topology.NodeID, rng *rand.Rand) topology.NodeID {
							c := topo.Coord(src)
							return topo.ID(topology.Coord{Row: c.Col, Col: c.Row})
						}
					}
					sat := &saturator{
						nw: nw, rng: rand.New(rand.NewSource(11)),
						dest: dest, cycles: window, rate: 0.5,
					}
					nw.Engine().AddTicker(sat)
					// The stall watchdog bounds the deadlock detection: a
					// wedged cell fails within one no-progress window with
					// a component-level diagnostic, instead of spinning to
					// the coarse cycle budget (kept as a backstop).
					nw.Engine().SetWatchdog(nw.Watchdog(20_000))
					if _, err := nw.RunUntilQuiescent(5_000_000); err != nil {
						t.Fatalf("%s did not drain (deadlock?): %v", name, err)
					}
					if received != sat.sent {
						t.Fatalf("received %d of %d packets", received, sat.sent)
					}
					if err := nw.CheckInvariants(); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// TestTorusHopAccountingMatchesTopology cross-validates the simulator
// against the topology's hop geometry: under deterministic wrap-aware
// dimension-order routing every packet traverses exactly the minimal
// torus distance plus one (source router included), so wraparound routes
// really take the shorter way around the rings.
func TestTorusHopAccountingMatchesTopology(t *testing.T) {
	cfg := matrixConfig("torus", "xy", 5, 5)
	nw := mustNetwork(t, cfg)
	topo := nw.Topology()
	type want struct{ src, dst topology.NodeID }
	byID := map[uint64]want{}
	var got []*nic.ReceivedPacket
	for id := 0; id < topo.NumNodes(); id++ {
		nw.NIC(topology.NodeID(id)).OnReceive(func(p *nic.ReceivedPacket) { got = append(got, p.Clone()) })
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 60; i++ {
		src := topology.NodeID(rng.Intn(topo.NumNodes()))
		dst := topology.NodeID(rng.Intn(topo.NumNodes()))
		if src == dst {
			continue
		}
		pid := nw.NIC(src).SendUnicast(dst)
		byID[pid] = want{src: src, dst: dst}
	}
	if _, err := nw.RunUntilQuiescent(100000); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(byID) {
		t.Fatalf("received %d, want %d", len(got), len(byID))
	}
	for _, p := range got {
		w := byID[p.ID]
		if wantHops := topo.Hops(w.src, w.dst) + 1; p.Hops != wantHops {
			t.Errorf("packet %d->%d hops = %d, want %d", w.src, w.dst, p.Hops, wantHops)
		}
	}
}

// TestConfigValidateTopologyCombos pins the inconsistent-combination
// errors: configurations that would silently misroute must be rejected
// with a clear message instead.
func TestConfigValidateTopologyCombos(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		wantOK bool
	}{
		{"mesh default", func(c *Config) {}, true},
		{"torus default", func(c *Config) { c.Topology = "torus"; c.EastSinks = false }, true},
		{"unknown topology", func(c *Config) { c.Topology = "hypercube" }, false},
		{"unknown routing", func(c *Config) { c.Routing = "zigzag" }, false},
		{"oddeven on mesh", func(c *Config) { c.Routing = "oddeven" }, true},
		{"torus with east sinks", func(c *Config) { c.Topology = "torus" }, false},
		{"torus xy single vc", func(c *Config) {
			c.Topology = "torus"
			c.EastSinks = false
			c.Router.VCs = 1
		}, false},
		{"torus xy with gather vc", func(c *Config) {
			c.Topology = "torus"
			c.EastSinks = false
			c.Router.GatherVC = 3
		}, false},
		{"torus oddeven with gather vc", func(c *Config) {
			c.Topology = "torus"
			c.EastSinks = false
			c.Routing = "oddeven"
			c.Router.GatherVC = 3
		}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig(4, 4)
			tt.mutate(&cfg)
			err := cfg.Validate()
			if (err == nil) != tt.wantOK {
				t.Errorf("Validate() err = %v, wantOK %v", err, tt.wantOK)
			}
			if err != nil {
				if _, nerr := New(cfg); nerr == nil {
					t.Error("New accepted a config Validate rejects")
				}
			}
		})
	}
}

// TestDefaultTorusConfigValid keeps the torus convenience constructor
// buildable as defaults evolve.
func TestDefaultTorusConfigValid(t *testing.T) {
	cfg := DefaultTorusConfig(4, 6)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	nw := mustNetwork(t, cfg)
	if nw.Topology().Name() != "torus" {
		t.Errorf("topology = %q, want torus", nw.Topology().Name())
	}
	if nw.Sink(0) != nil {
		t.Error("torus network must not have edge sinks")
	}
	if nw.Routing().VCClasses() != 2 {
		t.Errorf("routing VCClasses = %d, want 2 (dateline)", nw.Routing().VCClasses())
	}
}
