package noc

import (
	"fmt"
	"strings"

	"gathernoc/internal/fault"
	"gathernoc/internal/nic"
	"gathernoc/internal/sim"
	"gathernoc/internal/telemetry"
	"gathernoc/internal/topology"
)

// wireFaults compiles Config.Faults into per-link decision state and arms
// the recovery machinery (DESIGN.md §12): transient drop/corrupt rates on
// the inter-router links, outage windows on every link named by a
// LinkOutage or incident to a RouterOutage, a credit flusher per faulted
// link (returning the credits its drops consumed), fault-aware ejectors
// (CRC discard + duplicate suppression), end-to-end reliability on every
// NIC, and the reliability hub that confirms deliveries back to the
// sending NICs on the serial sub-phase. Runs after engine registration and
// before wireTelemetry, so the fault sources are in place when telemetry
// extends its field lists.
func (nw *Network) wireFaults() error {
	fc := nw.cfg.Faults
	inj := fault.NewInjector(fc)
	nw.injector = inj

	// Collect the outage windows per link record. A LinkOutage names a
	// directed inter-router link by its endpoints (on a 2-wide torus ring
	// two parallel links connect the same pair; the outage covers both). A
	// RouterOutage covers every link incident to the node, local injection
	// and ejection channels included, partitioning it off the fabric.
	outages := make(map[int]fault.WindowSet)
	for _, o := range fc.Links {
		matched := false
		for i := 0; i < nw.fabricLinks; i++ {
			rec := nw.linkRecs[i]
			if int(rec.upID) == o.SrcNode && int(rec.downID) == o.DstNode {
				outages[i] = append(outages[i], o.Window)
				matched = true
			}
		}
		if !matched {
			return fmt.Errorf("noc: fault link outage %d>%d names no wired inter-router link", o.SrcNode, o.DstNode)
		}
	}
	for _, o := range fc.Routers {
		if o.Node < 0 || o.Node >= nw.topo.NumNodes() {
			return fmt.Errorf("noc: fault router outage node %d outside fabric [0, %d)", o.Node, nw.topo.NumNodes())
		}
		for i, rec := range nw.linkRecs {
			if int(rec.upID) == o.Node || int(rec.downID) == o.Node {
				outages[i] = append(outages[i], o.Window)
			}
		}
	}

	transient := fc.DropRate > 0 || fc.CorruptRate > 0
	nw.portFault = make([][]*fault.LinkState, nw.topo.NumNodes())
	for n := range nw.portFault {
		nw.portFault[n] = make([]*fault.LinkState, topology.NumPorts)
	}
	for i := range nw.linkRecs {
		rec := &nw.linkRecs[i]
		ws := outages[i]
		var ls *fault.LinkState
		if i < nw.fabricLinks {
			if !transient && len(ws) == 0 {
				continue
			}
			ls = inj.NewLink(i, ws)
			nw.portFault[rec.upID][rec.outPort] = ls
		} else {
			if len(ws) == 0 {
				continue
			}
			// Local and sink channels see outages only, never the
			// transient inter-router noise.
			ls = inj.NewOutageLink(i, ws)
		}
		pool := nw.pool
		if nw.pools != nil {
			pool = nw.pools[rec.downShard]
		}
		rec.l.SetFaults(ls, pool)
		// The flusher ticks on the shard that commits the link's flits, so
		// the owed-credit counters keep a single writer per phase.
		cf := rec.l.NewCreditFlusher()
		if nw.engine.Sharded() {
			nw.engine.AddShardTicker(rec.downShard, cf)
		} else {
			cf.SetWake(nw.engine.AddTicker(cf))
		}
	}

	// Recovery: exactly-once ejectors everywhere, reliability tables on
	// every NIC, and the hub confirming deliveries back to the senders.
	for _, n := range nw.nics {
		n.EnableReliability(fc.EffectiveRetryTimeout(), fc.EffectiveRetryCap(), fc.EffectiveMaxRetries())
		n.Ejector().SetFaultAware()
	}
	for _, s := range nw.sinks {
		s.ej.SetFaultAware()
	}
	hub := &reliabilityHub{nw: nw}
	hub.confirmFn = hub.confirm
	// Serial ticker, after the sharded staged dispatcher (registered in
	// registerSharded) and before any caller-added controller: in both
	// engine modes a payload assembled in cycle C is confirmed in cycle C,
	// before the workload layer observes the cycle.
	nw.engine.AddTicker(hub)
	return nil
}

// reliabilityHub drains every ejector's delivered-payload staging on the
// serial sub-phase — canonical sink-then-NIC order, one goroutine — and
// confirms each payload with the NIC that sent it, closing the end-to-end
// retransmission loop.
type reliabilityHub struct {
	nw *Network
	// confirmFn is the bound confirm method, allocated once: DrainDelivered
	// takes a func value and the hub ticks every cycle.
	confirmFn func(nic.DeliveredPayload)
}

func (h *reliabilityHub) Tick(cycle int64) {
	for _, s := range h.nw.sinks {
		s.ej.DrainDelivered(h.confirmFn)
	}
	for _, n := range h.nw.nics {
		n.Ejector().DrainDelivered(h.confirmFn)
	}
}

func (h *reliabilityHub) confirm(d nic.DeliveredPayload) {
	h.nw.nics[d.Src].ConfirmDelivery(d.Seq)
}

// FaultInjector returns the compiled fault state, nil when Config.Faults
// is nil or inactive. Tests and reports read its aggregate counters.
func (nw *Network) FaultInjector() *fault.Injector { return nw.injector }

// filterPorts drops adaptive route alternatives whose outgoing link is
// inside an outage window right now, so the adaptive routings steer around
// scheduled faults. With every alternative cut the original set is kept:
// the packet routes into a dead link and is dropped there, which the
// end-to-end retransmission absorbs.
func (nw *Network) filterPorts(ports []topology.Port, cur topology.NodeID) []topology.Port {
	now := nw.engine.Cycle()
	keep := ports[:0]
	for _, p := range ports {
		if ls := nw.portFault[cur][p]; ls != nil && ls.Cut(now) {
			continue
		}
		keep = append(keep, p)
	}
	if len(keep) == 0 {
		return ports
	}
	return keep
}

// CheckReachable reports whether dst is reachable from src over the
// fabric links alive at the current cycle, wrapping fault.ErrUnreachable
// when the active outages sever every path (detect with
// errors.Is(err, fault.ErrUnreachable)). Sink destinations additionally
// require the sink's own channel alive. Without fault injection the fabric
// is always connected and the check is trivially nil.
func (nw *Network) CheckReachable(src, dst topology.NodeID) error {
	if nw.injector == nil {
		return nil
	}
	now := nw.engine.Cycle()
	target := dst
	if nw.IsSinkID(dst) {
		row := int(dst) - nw.topo.NumNodes()
		for i := nw.fabricLinks; i < len(nw.linkRecs); i++ {
			rec := nw.linkRecs[i]
			if rec.downID != dst {
				continue
			}
			if ls := rec.l.Faults(); ls != nil && ls.Cut(now) {
				return fmt.Errorf("noc: sink %d channel cut at cycle %d: %w", row, now, fault.ErrUnreachable)
			}
		}
		target = nw.topo.ID(topology.Coord{Row: row, Col: nw.cfg.Cols - 1})
	}
	if src == target {
		return nil
	}
	// BFS over the alive directed fabric links.
	visited := make([]bool, nw.topo.NumNodes())
	queue := []topology.NodeID{src}
	visited[src] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for i := 0; i < nw.fabricLinks; i++ {
			rec := nw.linkRecs[i]
			if rec.upID != cur || visited[rec.downID] {
				continue
			}
			if ls := rec.l.Faults(); ls != nil && ls.Cut(now) {
				continue
			}
			if rec.downID == target {
				return nil
			}
			visited[rec.downID] = true
			queue = append(queue, rec.downID)
		}
	}
	return fmt.Errorf("noc: no alive path %d>%d at cycle %d: %w", src, dst, now, fault.ErrUnreachable)
}

// WatchdogWindow returns the default no-progress window for this network:
// four maximally backed-off retransmission intervals, so a lone in-flight
// retry waiting out its backoff is never mistaken for a stall.
func (nw *Network) WatchdogWindow() int64 {
	fc := nw.cfg.Faults
	return 4 * (fc.EffectiveRetryTimeout() << fc.EffectiveRetryCap())
}

// Watchdog builds a stall watchdog for this network: progress is the sum
// of the monotonic movement counters (flits carried, credits returned,
// packets injected — retransmissions count, so a fabric still retrying is
// not stalled), and the diagnostic enumerates where traffic is stuck.
// window <= 0 selects WatchdogWindow. Arm it with
// Engine().SetWatchdog(nw.Watchdog(0)).
func (nw *Network) Watchdog(window int64) *sim.Watchdog {
	if window <= 0 {
		window = nw.WatchdogWindow()
	}
	return &sim.Watchdog{
		Window:   window,
		Progress: nw.progressCount,
		Diagnose: nw.stallDiagnostic,
	}
}

// progressCount sums the fabric's monotonic movement counters. Called by
// the engine between steps (no phase running), so the reads are safe.
func (nw *Network) progressCount() uint64 {
	var n uint64
	for _, l := range nw.links {
		n += l.FlitsCarried.Value() + l.CreditsCarried.Value()
	}
	for _, nc := range nw.nics {
		n += nc.PacketsInjected.Value()
	}
	return n
}

// stallDiagnostic renders the structured no-progress report: stuck flits
// per router, starving collective stations, NICs with undeliverable
// payloads, sink backlogs and the fault counters — everything needed to
// see what wedged without re-running under a debugger. When telemetry is
// on, an EvStall event is also emitted so the stall lands in the exported
// trace next to the fault events that caused it.
func (nw *Network) stallDiagnostic(cycle int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "in-flight flits: %d\n", nw.InFlight())
	listed := 0
	for _, r := range nw.routers {
		buf, gb, rb := r.BufferedFlits(), r.GatherBacklog(), r.ReduceBacklog()
		if buf == 0 && gb == 0 && rb == 0 {
			continue
		}
		if listed < 16 {
			fmt.Fprintf(&b, "  router %d: %d buffered flits, %d gather payloads, %d reduce operands waiting\n",
				r.ID(), buf, gb, rb)
		}
		listed++
	}
	if listed > 16 {
		fmt.Fprintf(&b, "  ... and %d more routers with stuck traffic\n", listed-16)
	}
	listed = 0
	for _, n := range nw.nics {
		if n.Idle() {
			continue
		}
		if listed < 16 {
			fmt.Fprintf(&b, "  nic %d: queue %d, %d unconfirmed payloads, %d retransmits, %d abandoned\n",
				n.ID(), n.QueueDepth(), n.ReliablePending(),
				n.Retransmits.Value(), n.AbandonedPayloads.Value())
		}
		listed++
	}
	if listed > 16 {
		fmt.Fprintf(&b, "  ... and %d more awake NICs\n", listed-16)
	}
	for _, s := range nw.sinks {
		if s.ej.Buffered() > 0 || s.ej.PendingPackets() > 0 {
			fmt.Fprintf(&b, "  sink %d: %d buffered flits, %d partial packets\n",
				s.row, s.ej.Buffered(), s.ej.PendingPackets())
		}
	}
	if nw.injector != nil {
		fmt.Fprintf(&b, "fault totals: %d flits dropped, %d packets corrupted\n",
			nw.injector.Drops(), nw.injector.Corrupts())
	}
	if nw.tele != nil && nw.tele.Tracing() {
		nw.tele.SerialProbe().Emit(telemetry.Event{
			Cycle: cycle, Kind: telemetry.EvStall, Aux: int64(nw.InFlight()),
		})
	}
	return strings.TrimRight(b.String(), "\n")
}
