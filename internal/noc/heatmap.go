package noc

import (
	"fmt"
	"strings"

	"gathernoc/internal/topology"
)

// heatGlyphs maps normalized load to increasing intensity.
var heatGlyphs = []byte{'.', ':', '-', '=', '+', '*', '#', '@'}

// UtilizationHeatmap renders per-router crossbar activity as an ASCII grid
// (one glyph per router, '.' idle through '@' hottest), with the absolute
// peak count in the footer. Useful for eyeballing where traffic
// concentrates — e.g. the east-edge column under repetitive unicast.
func (nw *Network) UtilizationHeatmap() string {
	counts := make([]uint64, nw.topo.NumNodes())
	var peak uint64
	for i, r := range nw.routers {
		counts[i] = r.Counters.Crossings.Value()
		if counts[i] > peak {
			peak = counts[i]
		}
	}
	var b strings.Builder
	for row := 0; row < nw.cfg.Rows; row++ {
		for col := 0; col < nw.cfg.Cols; col++ {
			id := nw.topo.ID(topology.Coord{Row: row, Col: col})
			b.WriteByte(glyphFor(counts[id], peak))
			if col < nw.cfg.Cols-1 {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "(crossbar traversals per router, peak=%d)\n", peak)
	return b.String()
}

func glyphFor(count, peak uint64) byte {
	if peak == 0 || count == 0 {
		return heatGlyphs[0]
	}
	idx := int(count * uint64(len(heatGlyphs)-1) / peak)
	if idx >= len(heatGlyphs) {
		idx = len(heatGlyphs) - 1
	}
	return heatGlyphs[idx]
}
