package noc

import (
	"testing"

	"gathernoc/internal/flit"
	"gathernoc/internal/topology"
)

// TestFlitPoolLeakFreedom runs a mixed workload (unicast, multicast,
// gather, accumulate) with the pool's ownership checker on and asserts
// that a drained network holds zero outstanding flits: every acquire has a
// matching release, whatever path the flit took (ejection, multicast fork,
// edge sink).
func TestFlitPoolLeakFreedom(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	cfg.EnableINA = true
	cfg.DebugFlitPool = true
	nw := mustNetwork(t, cfg)

	// Unicast and multicast across the mesh.
	nw.NIC(0).SendUnicastN(15, 3)
	nw.NIC(5).SendUnicastN(2, 1)
	set := topology.NewDestSet(16)
	set.Add(3)
	set.Add(12)
	set.Add(10)
	nw.NIC(1).SendMulticast(set, 2)

	// A gather row with piggybacked payloads.
	dst := nw.RowSinkID(0)
	for col := 1; col < 4; col++ {
		id := nw.Mesh().ID(topology.Coord{Row: 0, Col: col})
		nw.NIC(id).SetDelta(5 * int64(1+col))
		nw.NIC(id).SubmitGatherPayload(flit.Payload{Seq: uint64(col), Src: id, Dst: dst, Bits: 32})
	}
	left := nw.Mesh().ID(topology.Coord{Row: 0, Col: 0})
	own := flit.Payload{Seq: 99, Src: left, Dst: dst, Bits: 32}
	nw.NIC(left).SendGather(dst, &own)

	// An accumulate row with in-network merges.
	rdst := nw.RowSinkID(1)
	const rid = uint64(7) << 32
	for col := 1; col < 4; col++ {
		id := nw.Mesh().ID(topology.Coord{Row: 1, Col: col})
		nw.NIC(id).SetReduceDelta(5 * int64(1+col))
		nw.NIC(id).SubmitReduceOperand(flit.Payload{
			Seq: 100 + uint64(col), Src: id, Dst: rdst, Bits: 32, Value: uint64(col), ReduceID: rid, Ops: 1,
		})
	}
	rleft := nw.Mesh().ID(topology.Coord{Row: 1, Col: 0})
	nw.NIC(rleft).SendAccumulate(rdst, rid, flit.Payload{
		Seq: 200, Src: rleft, Dst: rdst, Bits: 32, Value: 5, ReduceID: rid, Ops: 1,
	})

	if _, err := nw.RunUntilQuiescent(100000); err != nil {
		t.Fatal(err)
	}
	if live := nw.FlitPool().Live(); live != 0 {
		t.Fatalf("drained network holds %d leaked flits", live)
	}
	if nw.FlitPool().Misses() == 0 {
		t.Fatal("pool never allocated — workload did not exercise it")
	}
}
