package noc

import (
	"math/rand"
	"testing"

	"gathernoc/internal/flit"
	"gathernoc/internal/nic"
	"gathernoc/internal/topology"
)

// TestRandomTrafficConservation floods the network with randomized unicast,
// multicast and gather traffic and asserts global conservation: every
// unicast/gather packet is ejected exactly once, every multicast packet
// exactly once per destination, and every gather payload exactly once —
// across many seeds.
func TestRandomTrafficConservation(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultConfig(4, 4)
		nw := mustNetwork(t, cfg)
		nodes := nw.Mesh().NumNodes()

		wantDeliveries := 0
		gotDeliveries := 0
		wantPayloads := 0
		gotPayloads := map[uint64]int{}

		count := func(p *nic.ReceivedPacket) {
			gotDeliveries++
			for _, pl := range p.Payloads {
				gotPayloads[pl.Seq]++
			}
		}
		for id := 0; id < nodes; id++ {
			nw.NIC(topology.NodeID(id)).OnReceive(count)
		}
		for row := 0; row < cfg.Rows; row++ {
			nw.Sink(row).OnReceive(count)
		}

		seq := uint64(0)
		for i := 0; i < 60; i++ {
			src := topology.NodeID(rng.Intn(nodes))
			n := nw.NIC(src)
			switch rng.Intn(4) {
			case 0: // unicast to a PE
				dst := topology.NodeID(rng.Intn(nodes))
				if dst == src {
					continue
				}
				seq++
				n.SendUnicastPayload(dst, flit.Payload{Seq: seq, Src: src, Dst: dst, Bits: 32})
				wantDeliveries++
				wantPayloads++
			case 1: // unicast to a row sink
				dst := nw.RowSinkID(rng.Intn(cfg.Rows))
				seq++
				n.SendUnicastPayload(dst, flit.Payload{Seq: seq, Src: src, Dst: dst, Bits: 32})
				wantDeliveries++
				wantPayloads++
			case 2: // multicast to a random subset
				set := topology.NewDestSet(nodes)
				for k := 0; k < 1+rng.Intn(5); k++ {
					d := topology.NodeID(rng.Intn(nodes))
					if d != src {
						set.Add(d)
					}
				}
				if set.Empty() {
					continue
				}
				n.SendMulticast(set, 1+rng.Intn(3))
				wantDeliveries += set.Len()
			case 3: // gather packet toward the source row's sink
				row := nw.Mesh().Coord(src).Row
				dst := nw.RowSinkID(row)
				seq++
				own := flit.Payload{Seq: seq, Src: src, Dst: dst, Bits: 32}
				n.SendGather(dst, &own)
				wantDeliveries++
				wantPayloads++
			}
		}

		// Step manually so invariants can be checked mid-flight.
		eng := nw.Engine()
		for i := 0; i < 50; i++ {
			eng.Step()
			if err := nw.CheckInvariants(); err != nil {
				t.Fatalf("seed %d cycle %d: %v", seed, eng.Cycle(), err)
			}
		}
		if _, err := nw.RunUntilQuiescent(200000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := nw.CheckInvariants(); err != nil {
			t.Fatalf("seed %d drained: %v", seed, err)
		}
		if gotDeliveries != wantDeliveries {
			t.Errorf("seed %d: deliveries = %d, want %d", seed, gotDeliveries, wantDeliveries)
		}
		if len(gotPayloads) != wantPayloads {
			t.Errorf("seed %d: distinct payloads = %d, want %d", seed, len(gotPayloads), wantPayloads)
		}
		for s, n := range gotPayloads {
			if n != 1 {
				t.Errorf("seed %d: payload %d delivered %d times", seed, s, n)
			}
		}
	}
}

// TestGatherProtocolRandomized deposits payloads at random PEs with random
// offsets around randomly timed gather initiations and asserts that every
// payload reaches its row sink exactly once, whether by piggyback or by
// δ-timeout self-initiation.
func TestGatherProtocolRandomized(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		cfg := DefaultConfig(4, 4)
		cfg.Delta = int64(rng.Intn(12)) // deliberately varied, incl. tiny
		nw := mustNetwork(t, cfg)

		got := map[uint64]int{}
		for row := 0; row < cfg.Rows; row++ {
			nw.Sink(row).OnReceive(func(p *nic.ReceivedPacket) {
				for _, pl := range p.Payloads {
					got[pl.Seq]++
				}
			})
		}

		type deposit struct {
			at   int64
			node topology.NodeID
			p    flit.Payload
			init bool
		}
		var plan []deposit
		seq := uint64(0)
		for row := 0; row < cfg.Rows; row++ {
			dst := nw.RowSinkID(row)
			for col := 0; col < cfg.Cols; col++ {
				if rng.Intn(3) == 0 {
					continue // this PE produces nothing
				}
				id := nw.Mesh().ID(topology.Coord{Row: row, Col: col})
				seq++
				plan = append(plan, deposit{
					at:   int64(rng.Intn(30)),
					node: id,
					p:    flit.Payload{Seq: seq, Src: id, Dst: dst, Bits: 32},
					init: col == 0,
				})
			}
		}

		eng := nw.Engine()
		for cycle := int64(0); cycle <= 30; cycle++ {
			for _, d := range plan {
				if d.at != cycle {
					continue
				}
				if d.init {
					own := d.p
					nw.NIC(d.node).SendGather(d.p.Dst, &own)
				} else {
					nw.NIC(d.node).SubmitGatherPayload(d.p)
				}
			}
			eng.Step()
		}
		if _, err := nw.RunUntilQuiescent(100000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		if len(got) != len(plan) {
			t.Errorf("seed %d (delta=%d): %d payloads delivered, want %d",
				seed, cfg.Delta, len(got), len(plan))
		}
		for s, n := range got {
			if n != 1 {
				t.Errorf("seed %d: payload %d delivered %d times", seed, s, n)
			}
		}
	}
}

func TestHeatmapRendering(t *testing.T) {
	nw := mustNetwork(t, DefaultConfig(3, 3))
	// Idle network: every grid glyph is the idle marker.
	for _, line := range gridLines(nw.UtilizationHeatmap()) {
		for i := 0; i < len(line); i++ {
			if line[i] != '.' && line[i] != ' ' {
				t.Errorf("idle heatmap shows activity glyph %q in %q", line[i], line)
			}
		}
	}
	nw.NIC(0).SendUnicast(8)
	if _, err := nw.RunUntilQuiescent(10000); err != nil {
		t.Fatal(err)
	}
	hot := false
	for _, line := range gridLines(nw.UtilizationHeatmap()) {
		for i := 0; i < len(line); i++ {
			if line[i] == '@' {
				hot = true
			}
		}
	}
	if !hot {
		t.Errorf("active heatmap lacks peak glyph:\n%s", nw.UtilizationHeatmap())
	}
}

// gridLines strips the footer from a heatmap rendering.
func gridLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if len(lines) > 0 {
		lines = lines[:len(lines)-1] // drop the "(...)" footer
	}
	return lines
}
