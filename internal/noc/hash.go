package noc

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"gathernoc/internal/fault"
)

// configHashVersion prefixes every canonical hash. Bump it whenever the
// normalization rules, the serialized field set, or the meaning of any
// field changes — a version bump invalidates every cached result and
// checkpoint keyed by the old scheme, which is exactly what a semantic
// change requires.
const configHashVersion = "gathernoc/noc.Config/v1"

// hashExcludedFields names the Config fields the canonical hash ignores,
// with the invariance argument for each. Every field listed here must be
// result-invariant: two configs differing only in these fields produce
// bit-identical simulation results (schedules, counters, statistics), so
// hashing them would only fragment the result cache.
//
// The reflection-driven perturbation test (TestConfigHashCoversEveryField)
// asserts the complement: any field NOT listed here must change the hash
// when perturbed, so a newly added Config field cannot silently escape the
// cache key — it either perturbs the hash or is explicitly argued
// invariant by being added to this set.
var hashExcludedFields = map[string]string{
	// Engine backends: schedules are bit-identical at every shard count
	// (DESIGN.md §9) and under naive ticking (the engineequiv contract).
	"Shards":     "sharded and sequential engines are bit-identical",
	"AlwaysTick": "sleep/wake and naive ticking are bit-identical",
	// Debug/observability: purely observational layers, no schedule effect.
	"DebugFlitPool": "ownership checking never alters a schedule",
	"Telemetry":     "the collector is observational (DESIGN.md §11)",
}

// normalizeForHash returns the canonical form of the configuration:
// defaults resolved to their effective values (so "" and "mesh", or η=0
// and η=Cols, hash identically), result-invariant fields cleared (see
// hashExcludedFields), and a disabled fault config folded to nil.
func (c Config) normalizeForHash() Config {
	n := c
	n.Topology = c.EffectiveTopology()
	n.Routing = c.EffectiveRouting()
	n.GatherCapacity = c.EffectiveGatherCapacity()
	n.ReduceCapacity = c.EffectiveReduceCapacity()
	n.ReduceDelta = c.EffectiveReduceDelta()
	n.Shards = 0
	n.AlwaysTick = false
	n.DebugFlitPool = false
	n.Telemetry = nil
	if !n.Faults.Enabled() {
		// A nil config and a config with no fault source wire nothing —
		// both are bit-identical to a fault-free build.
		n.Faults = nil
	} else {
		f := *n.Faults
		if f.RetryTimeout == 0 {
			f.RetryTimeout = fault.DefaultRetryTimeout
		}
		if f.RetryCap == 0 {
			f.RetryCap = fault.DefaultRetryCap
		}
		if f.MaxRetries == 0 {
			f.MaxRetries = fault.DefaultMaxRetries
		}
		n.Faults = &f
	}
	return n
}

// Hash returns the versioned canonical content hash of the configuration:
// a stable hex digest over the normalized form, equal for semantically
// identical configs (defaults resolved, result-invariant fields ignored)
// and different for any field change that can alter a result. It is the
// network half of every content-addressed cache key and checkpoint
// identity.
func (c Config) Hash() string {
	// encoding/json marshals struct fields in declaration order with
	// shortest-round-trip floats, so the byte stream is deterministic for
	// a given normalized value.
	b, err := json.Marshal(c.normalizeForHash())
	if err != nil {
		// Config is plain data (ints, strings, bools, float64s); this
		// cannot fail for any constructible value.
		panic(fmt.Sprintf("noc: config hash marshal: %v", err))
	}
	h := sha256.New()
	h.Write([]byte(configHashVersion))
	h.Write([]byte{0})
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil))
}
