package noc

import (
	"strings"
	"testing"

	"gathernoc/internal/router"
)

// FuzzConfigValidate throws arbitrary fabric dimensions, topology/routing
// selectors, sink placements and VC counts at Config.Validate. The
// invariant: Validate never panics, and every rejection is a named error
// (the "noc:" prefix) rather than a silent misconfiguration — a config
// that would misroute must be refused with the conflict spelled out.
func FuzzConfigValidate(f *testing.F) {
	f.Add(8, 8, uint8(0), uint8(0), true, 4, -1, 1, 1)
	f.Add(8, 8, uint8(1), uint8(0), false, 2, -1, 1, 1)
	f.Add(8, 8, uint8(1), uint8(0), true, 1, 0, 1, 1)   // torus + east sinks: rejected
	f.Add(0, -3, uint8(0), uint8(1), false, 4, 2, 0, 5) // degenerate dims
	f.Add(16, 16, uint8(2), uint8(3), true, 4, 3, 2, 1) // unknown topology byte
	f.Fuzz(func(t *testing.T, rows, cols int, topoSel, routeSel uint8, sinks bool,
		vcs, gatherVC, linkLatency, ejectRate int) {
		topos := []string{"", "mesh", "torus", "hypercube"}
		routes := []string{"", "xy", "westfirst", "oddeven", "valiant"}
		cfg := DefaultConfig(rows, cols)
		cfg.Topology = topos[int(topoSel)%len(topos)]
		cfg.Routing = routes[int(routeSel)%len(routes)]
		cfg.EastSinks = sinks
		cfg.Router.VCs = vcs
		cfg.Router.GatherVC = gatherVC
		cfg.LinkLatency = linkLatency
		cfg.EjectRate = ejectRate

		err := cfg.Validate()
		if err == nil {
			// Accepted configs must be self-consistent enough for the
			// derived accessors to behave.
			if cfg.EffectiveShards() < 0 || cfg.EffectiveGatherCapacity() < 1 ||
				cfg.EffectiveReduceCapacity() < 1 || cfg.EffectiveReduceDelta() < 0 {
				t.Fatalf("accepted config with broken derived values: %+v", cfg)
			}
			return
		}
		msg := err.Error()
		if msg == "" {
			t.Fatal("rejection with empty error message")
		}
		if !strings.HasPrefix(msg, "noc: ") &&
			!strings.HasPrefix(msg, "router: ") &&
			!strings.HasPrefix(msg, "telemetry: ") &&
			!strings.HasPrefix(msg, "fault: ") {
			t.Fatalf("rejection not named by its layer: %q", msg)
		}
	})
}

// TestFuzzSeedsRouterDefaults pins the assumption the fuzz harness makes:
// the default router config carries no gather VC, so GatherVC collisions
// only appear when the fuzzer sets one.
func TestFuzzSeedsRouterDefaults(t *testing.T) {
	if router.DefaultConfig().GatherVC != -1 {
		t.Fatal("router.DefaultConfig gained a GatherVC; refresh the fuzz seeds")
	}
}
