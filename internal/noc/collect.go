package noc

import "gathernoc/internal/topology"

// RowCollect is the network's plan for collecting one row's partial sums
// at a single target — the generalization of the paper's "leftmost PE
// launches a packet that merges while flowing east" to fabrics without an
// east edge. The workload layers (gather and INA collection) consume only
// this plan, so they carry no topology or routing assumptions of their
// own:
//
//   - On a mesh with east sinks, the target is the row's global-buffer
//     sink and the single initiator is the column-0 PE, whose
//     deterministic route to the sink sweeps the entire row — the paper's
//     configuration, bit-identical to the pre-plan controller.
//   - On a torus under wrap-aware dimension-order routing, minimal routes
//     span at most half a ring, so no single packet can sweep the row;
//     the plan instead names two initiators — the farthest node of each
//     ring direction — whose routes to the east-column target jointly
//     cover every PE of the row.
//
// DeltaScale preserves the δ-timeout discipline across all of this: a
// node's timeout is scaled with its hop distance from the initiator that
// sweeps past it, so a packet already in flight is not preempted by a
// spurious self-initiation (DESIGN.md §3 and §7).
type RowCollect struct {
	// Row is the collected row.
	Row int
	// Target receives the row's payloads: the row sink id when east sinks
	// are enabled, otherwise the east-column PE's node id.
	Target topology.NodeID
	// TargetIsSink distinguishes the two target kinds.
	TargetIsSink bool
	// Initiators lists the nodes that launch the row's collective
	// packet(s); every other row node offers its payload to the local
	// station and waits for a passing packet.
	Initiators []topology.NodeID
	// DeltaScale[col] is the δ multiplier for the PE in that column:
	// 1 + its hop distance from the initiator whose packet sweeps it.
	DeltaScale []int
}

// IsInitiator reports whether id launches one of the row's collective
// packets.
func (rc *RowCollect) IsInitiator(id topology.NodeID) bool {
	for _, init := range rc.Initiators {
		if init == id {
			return true
		}
	}
	return false
}

// RowCollect plans the collection of the given row's partial sums (see
// the RowCollect type for the per-topology strategies).
func (nw *Network) RowCollect(row int) RowCollect {
	cols := nw.cfg.Cols
	topo := nw.topo
	rc := RowCollect{
		Row:        row,
		Target:     topo.ID(topology.Coord{Row: row, Col: cols - 1}),
		DeltaScale: make([]int, cols),
	}
	if len(nw.sinks) > 0 {
		rc.Target = nw.RowSinkID(row)
		rc.TargetIsSink = true
	}
	inits, scale := nw.linePlan(cols, cols > 1 || rc.TargetIsSink)
	for _, idx := range inits {
		rc.Initiators = append(rc.Initiators, topo.ID(topology.Coord{Row: row, Col: idx}))
	}
	copy(rc.DeltaScale, scale)
	return rc
}

// LineCollect generalizes the RowCollect plan to any straight line of
// fabric nodes whose collection target sits at the line's last index —
// rows sweeping east and columns sweeping south use the same shape. The
// collective tree layer (internal/collective) composes one LineCollect per
// row with one over the sink column to form mesh-wide reductions.
type LineCollect struct {
	// Nodes lists the line's members in sweep-index order (west to east
	// for a row, north to south for a column).
	Nodes []topology.NodeID
	// Target receives the line's payloads: Nodes[len-1] itself, or the
	// bottom row's sink when the plan collects the sink column to the
	// global buffer.
	Target topology.NodeID
	// TargetIsSink distinguishes the two target kinds.
	TargetIsSink bool
	// Initiators lists the nodes that launch the line's collective
	// packet(s); one on mesh paths, up to two covering a torus ring.
	Initiators []topology.NodeID
	// DeltaScale[i] is the δ multiplier for Nodes[i]: 1 + its hop distance
	// from the initiator whose packet sweeps it.
	DeltaScale []int
	// Wrap records whether the plan covers a ring with two directional
	// arcs (wrap-aware routing) rather than one straight mesh sweep; it
	// decides which segment SweepPath walks.
	Wrap bool
}

// IsInitiator reports whether id launches one of the line's collective
// packets.
func (lc *LineCollect) IsInitiator(id topology.NodeID) bool {
	for _, init := range lc.Initiators {
		if init == id {
			return true
		}
	}
	return false
}

// Index returns id's sweep index in the line, or -1.
func (lc *LineCollect) Index(id topology.NodeID) int {
	for i, n := range lc.Nodes {
		if n == id {
			return i
		}
	}
	return -1
}

// SweepPath appends to buf the line indices a payload from Nodes[i]
// traverses to reach the target (both endpoints included): the straight
// east/south segment on mesh paths, or the node's directional arc on a
// ring. Fault-masked plan builders walk it to decide whether a dead router
// cuts the node off.
func (lc *LineCollect) SweepPath(i int, buf []int) []int {
	n := len(lc.Nodes)
	t := n - 1
	buf = append(buf, i)
	if !lc.Wrap {
		for j := i + 1; j < n; j++ {
			buf = append(buf, j)
		}
		return buf
	}
	if d := pmod(t-i, n); d <= n-d {
		// Swept by the forward (east/south) packet.
		for j := i; j != t; {
			j = pmod(j+1, n)
			buf = append(buf, j)
		}
	} else {
		for j := i; j != t; {
			j = pmod(j-1, n)
			buf = append(buf, j)
		}
	}
	return buf
}

// RowLine plans the collection of one row at its east-column PE — always
// the PE, never the row sink, so the target can re-inject the row's sum
// into a second-level reduction (the collective tree's row stage).
func (nw *Network) RowLine(row int) LineCollect {
	cols := nw.cfg.Cols
	nodes := make([]topology.NodeID, cols)
	for col := 0; col < cols; col++ {
		nodes[col] = nw.topo.ID(topology.Coord{Row: row, Col: col})
	}
	return nw.lineCollect(nodes, nodes[cols-1], false)
}

// ColumnLine plans the collection of one column at its bottom-row PE, or —
// when toSink is set on a fabric with east sinks — at the bottom row's
// global-buffer sink, whose deterministic route extends the southward
// sweep with the final east hop off the edge (the collective tree's column
// stage). toSink without east sinks panics: Validate already rejects the
// torus/EastSinks combination, so the caller gates on the config.
func (nw *Network) ColumnLine(col int, toSink bool) LineCollect {
	rows := nw.cfg.Rows
	nodes := make([]topology.NodeID, rows)
	for row := 0; row < rows; row++ {
		nodes[row] = nw.topo.ID(topology.Coord{Row: row, Col: col})
	}
	target := nodes[rows-1]
	if toSink {
		if len(nw.sinks) == 0 {
			panic("noc: ColumnLine toSink without east sinks")
		}
		target = nw.RowSinkID(rows - 1)
	}
	return nw.lineCollect(nodes, target, toSink)
}

// lineCollect assembles a LineCollect from the index-space plan.
func (nw *Network) lineCollect(nodes []topology.NodeID, target topology.NodeID, sink bool) LineCollect {
	n := len(nodes)
	lc := LineCollect{
		Nodes:        nodes,
		Target:       target,
		TargetIsSink: sink,
		Wrap:         nw.routing.VCClasses() > 1,
	}
	inits, scale := nw.linePlan(n, n > 1 || sink)
	for _, idx := range inits {
		lc.Initiators = append(lc.Initiators, nodes[idx])
	}
	lc.DeltaScale = scale
	return lc
}

// linePlan computes the initiator indices and δ scales for a line of n
// nodes whose target sits at index n-1 — the index-space core shared by
// RowCollect, RowLine and ColumnLine. meshInitiator controls whether the
// mesh path names index 0 as initiator (false only for a single-node line
// collecting at itself, where there is nothing to sweep).
func (nw *Network) linePlan(n int, meshInitiator bool) (inits []int, scale []int) {
	scale = make([]int, n)
	if nw.routing.VCClasses() > 1 {
		// Wrap-aware routing (torus dimension-order with dateline VC
		// classes): cover the ring with two initiators, the farthest node
		// of each direction. ringStep ties break forward (east/south), so
		// the forward arc may span ⌊n/2⌋ hops and the backward arc the
		// remaining ⌈n/2⌉-1.
		t := n - 1
		fwd := pmod(t-n/2, n)
		bwd := pmod(t+(n+1)/2-1, n)
		if fwd != t {
			inits = append(inits, fwd)
		}
		if bwd != t && bwd != fwd {
			inits = append(inits, bwd)
		}
		for i := 0; i < n; i++ {
			if d := pmod(t-i, n); d <= n-d {
				// Swept by the forward packet.
				scale[i] = 1 + pmod(i-fwd, n)
			} else {
				scale[i] = 1 + pmod(bwd-i, n)
			}
		}
		return inits, scale
	}

	// Mesh-path routing (mesh fabrics, and turn-model routings confined
	// to a torus's mesh sub-network): the index-0 initiator's route to
	// the line-end target is the straight sweep under every built-in
	// algorithm — same-row and same-column destinations leave no
	// adaptivity.
	if meshInitiator {
		inits = append(inits, 0)
	}
	for i := 0; i < n; i++ {
		scale[i] = 1 + i
	}
	return inits, scale
}

// pmod is the positive remainder of v modulo size (size > 0).
func pmod(v, size int) int {
	v %= size
	if v < 0 {
		v += size
	}
	return v
}

// CollectHops returns the hop count a payload from node id pays to reach
// the row-collection target (the sink link included when the target is a
// sink) — the per-operand wire cost the merge-savings accounting charges
// against repetitive unicast. The distance follows the configured
// routing's effective fabric: turn-model routings on a torus never take
// wrap links, so their packets pay mesh-grid distances even though the
// topology's minimal distance is shorter.
func (nw *Network) CollectHops(id topology.NodeID, rc *RowCollect) int {
	edge := rc.Target
	extra := 0
	if rc.TargetIsSink {
		edge = nw.topo.ID(topology.Coord{Row: rc.Row, Col: nw.cfg.Cols - 1})
		extra = 1
	}
	if nw.routing.VCClasses() > 1 {
		// Wrap-aware routing: the topology's minimal distance is achieved.
		return nw.topo.Hops(id, edge) + extra
	}
	ca, cb := nw.topo.Coord(id), nw.topo.Coord(edge)
	return iabs(ca.Row-cb.Row) + iabs(ca.Col-cb.Col) + extra
}

// iabs is the integer absolute value.
func iabs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
