package noc

import "gathernoc/internal/topology"

// RowCollect is the network's plan for collecting one row's partial sums
// at a single target — the generalization of the paper's "leftmost PE
// launches a packet that merges while flowing east" to fabrics without an
// east edge. The workload layers (gather and INA collection) consume only
// this plan, so they carry no topology or routing assumptions of their
// own:
//
//   - On a mesh with east sinks, the target is the row's global-buffer
//     sink and the single initiator is the column-0 PE, whose
//     deterministic route to the sink sweeps the entire row — the paper's
//     configuration, bit-identical to the pre-plan controller.
//   - On a torus under wrap-aware dimension-order routing, minimal routes
//     span at most half a ring, so no single packet can sweep the row;
//     the plan instead names two initiators — the farthest node of each
//     ring direction — whose routes to the east-column target jointly
//     cover every PE of the row.
//
// DeltaScale preserves the δ-timeout discipline across all of this: a
// node's timeout is scaled with its hop distance from the initiator that
// sweeps past it, so a packet already in flight is not preempted by a
// spurious self-initiation (DESIGN.md §3 and §7).
type RowCollect struct {
	// Row is the collected row.
	Row int
	// Target receives the row's payloads: the row sink id when east sinks
	// are enabled, otherwise the east-column PE's node id.
	Target topology.NodeID
	// TargetIsSink distinguishes the two target kinds.
	TargetIsSink bool
	// Initiators lists the nodes that launch the row's collective
	// packet(s); every other row node offers its payload to the local
	// station and waits for a passing packet.
	Initiators []topology.NodeID
	// DeltaScale[col] is the δ multiplier for the PE in that column:
	// 1 + its hop distance from the initiator whose packet sweeps it.
	DeltaScale []int
}

// IsInitiator reports whether id launches one of the row's collective
// packets.
func (rc *RowCollect) IsInitiator(id topology.NodeID) bool {
	for _, init := range rc.Initiators {
		if init == id {
			return true
		}
	}
	return false
}

// RowCollect plans the collection of the given row's partial sums (see
// the RowCollect type for the per-topology strategies).
func (nw *Network) RowCollect(row int) RowCollect {
	cols := nw.cfg.Cols
	topo := nw.topo
	edge := topo.ID(topology.Coord{Row: row, Col: cols - 1})
	rc := RowCollect{
		Row:        row,
		Target:     edge,
		DeltaScale: make([]int, cols),
	}
	if len(nw.sinks) > 0 {
		rc.Target = nw.RowSinkID(row)
		rc.TargetIsSink = true
	}

	if nw.routing.VCClasses() > 1 {
		// Wrap-aware routing (torus dimension-order with dateline VC
		// classes): cover the row ring with two initiators, the farthest
		// node of each direction. ringStep ties break east, so the
		// eastbound arc may span ⌊cols/2⌋ hops and the westbound arc the
		// remaining ⌈cols/2⌉-1.
		t := cols - 1
		east := pmod(t-cols/2, cols)
		west := pmod(t+(cols+1)/2-1, cols)
		if east != t {
			rc.Initiators = append(rc.Initiators, topo.ID(topology.Coord{Row: row, Col: east}))
		}
		if west != t && west != east {
			rc.Initiators = append(rc.Initiators, topo.ID(topology.Coord{Row: row, Col: west}))
		}
		for col := 0; col < cols; col++ {
			if d := pmod(t-col, cols); d <= cols-d {
				// Swept by the eastbound packet.
				rc.DeltaScale[col] = 1 + pmod(col-east, cols)
			} else {
				rc.DeltaScale[col] = 1 + pmod(west-col, cols)
			}
		}
		return rc
	}

	// Mesh-path routing (mesh fabrics, and turn-model routings confined
	// to a torus's mesh sub-network): the column-0 initiator's route to
	// the east-column target is the straight row sweep under every
	// built-in algorithm — same-row destinations leave no adaptivity.
	if cols > 1 || rc.TargetIsSink {
		rc.Initiators = append(rc.Initiators, topo.ID(topology.Coord{Row: row, Col: 0}))
	}
	for col := 0; col < cols; col++ {
		rc.DeltaScale[col] = 1 + col
	}
	return rc
}

// pmod is the positive remainder of v modulo size (size > 0).
func pmod(v, size int) int {
	v %= size
	if v < 0 {
		v += size
	}
	return v
}

// CollectHops returns the hop count a payload from node id pays to reach
// the row-collection target (the sink link included when the target is a
// sink) — the per-operand wire cost the merge-savings accounting charges
// against repetitive unicast. The distance follows the configured
// routing's effective fabric: turn-model routings on a torus never take
// wrap links, so their packets pay mesh-grid distances even though the
// topology's minimal distance is shorter.
func (nw *Network) CollectHops(id topology.NodeID, rc *RowCollect) int {
	edge := rc.Target
	extra := 0
	if rc.TargetIsSink {
		edge = nw.topo.ID(topology.Coord{Row: rc.Row, Col: nw.cfg.Cols - 1})
		extra = 1
	}
	if nw.routing.VCClasses() > 1 {
		// Wrap-aware routing: the topology's minimal distance is achieved.
		return nw.topo.Hops(id, edge) + extra
	}
	ca, cb := nw.topo.Coord(id), nw.topo.Coord(edge)
	return iabs(ca.Row-cb.Row) + iabs(ca.Col-cb.Col) + extra
}

// iabs is the integer absolute value.
func iabs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
