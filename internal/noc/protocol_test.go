package noc

import (
	"testing"

	"gathernoc/internal/flit"
	"gathernoc/internal/nic"
	"gathernoc/internal/topology"
)

// TestGatherStationFullFallsBack fills a router's Gather Payload station
// beyond capacity; the NIC must self-initiate immediately for the overflow
// payload and everything must still be delivered exactly once.
func TestGatherStationFullFallsBack(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	cfg.Router.GatherQueueCap = 1
	cfg.Delta = 1000 // timeouts must not fire; only the overflow path.
	nw := mustNetwork(t, cfg)
	row := 0
	dst := nw.RowSinkID(row)
	got := map[uint64]int{}
	nw.Sink(row).OnReceive(func(p *nic.ReceivedPacket) {
		for _, pl := range p.Payloads {
			got[pl.Seq]++
		}
	})

	// Two payloads at the same node: the second overflows the station.
	id := nw.Mesh().ID(topology.Coord{Row: row, Col: 2})
	n := nw.NIC(id)
	n.SubmitGatherPayload(flitPayloadAt(1, id, dst))
	n.SubmitGatherPayload(flitPayloadAt(2, id, dst))
	if n.SelfInitiatedGathers.Value() != 1 {
		t.Fatalf("overflow payload did not self-initiate (count=%d)",
			n.SelfInitiatedGathers.Value())
	}
	// A gather packet from the row start eventually collects the first.
	left := nw.Mesh().ID(topology.Coord{Row: row, Col: 0})
	own := flitPayloadAt(3, left, dst)
	nw.NIC(left).SendGather(dst, &own)

	if _, err := nw.RunUntilQuiescent(100000); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("delivered %d payloads, want 3 (%v)", len(got), got)
	}
	for s, c := range got {
		if c != 1 {
			t.Errorf("payload %d delivered %d times", s, c)
		}
	}
}

// TestGatherTimeoutWhileReserved arranges for the δ deadline to pass while
// the payload is already reserved by an in-flight packet: the retract must
// fail and the payload must still arrive exactly once via the packet.
func TestGatherTimeoutWhileReserved(t *testing.T) {
	cfg := DefaultConfig(1, 8)
	cfg.Delta = 1 // deadline passes almost immediately
	nw := mustNetwork(t, cfg)
	dst := nw.RowSinkID(0)
	got := map[uint64]int{}
	nw.Sink(0).OnReceive(func(p *nic.ReceivedPacket) {
		for _, pl := range p.Payloads {
			got[pl.Seq]++
		}
	})

	// Start the gather packet first so it is already in flight when the
	// payload shows up with a nearly expired deadline.
	own := flitPayloadAt(1, 0, dst)
	nw.NIC(0).SendGather(dst, &own)
	// Head reaches router 5's RC at about cycle 2+5κ; deposit the payload
	// just before so reservation happens within a cycle or two of the
	// deadline.
	eng := nw.Engine()
	for eng.Cycle() < 21 {
		eng.Step()
	}
	id := topology.NodeID(5)
	nw.NIC(id).SubmitGatherPayload(flitPayloadAt(2, id, dst))

	if _, err := nw.RunUntilQuiescent(100000); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("delivered %d payloads, want 2", len(got))
	}
	for s, c := range got {
		if c != 1 {
			t.Errorf("payload %d delivered %d times", s, c)
		}
	}
}

// TestSetDeltaIgnoresNegative pins the defensive behavior of SetDelta.
func TestSetDeltaIgnoresNegative(t *testing.T) {
	nw := mustNetwork(t, DefaultConfig(2, 2))
	n := nw.NIC(0)
	n.SetDelta(42)
	if n.Delta() != 42 {
		t.Fatalf("Delta = %d, want 42", n.Delta())
	}
	n.SetDelta(-5)
	if n.Delta() != 42 {
		t.Errorf("negative SetDelta changed Delta to %d", n.Delta())
	}
}

// TestSinkPacketOverheadSerializes pins the buffer-transaction model: with
// a large per-packet cost, back-to-back packets drain no faster than the
// cost allows.
func TestSinkPacketOverheadSerializes(t *testing.T) {
	cfg := DefaultConfig(1, 4)
	cfg.SinkPacketOverhead = 20
	nw := mustNetwork(t, cfg)
	dst := nw.RowSinkID(0)
	var arrivals []int64
	nw.Sink(0).OnReceive(func(p *nic.ReceivedPacket) {
		arrivals = append(arrivals, p.TailArrival)
	})
	// Two packets from the node adjacent to the sink.
	nw.NIC(3).SendUnicast(dst)
	nw.NIC(3).SendUnicast(dst)
	if _, err := nw.RunUntilQuiescent(10000); err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %d, want 2", len(arrivals))
	}
	if gap := arrivals[1] - arrivals[0]; gap < 20 {
		t.Errorf("packet gap = %d cycles, want >= 20 (transaction stall)", gap)
	}
}

// TestEjectorOverflowPanics documents that a credit-protocol violation at
// an ejection point is treated as an internal bug.
func TestEjectorOverflowPanics(t *testing.T) {
	e := nic.NewEjector("t", 1, 1, 1)
	e.AcceptFlit(&flit.Flit{Type: flit.HeadTail, PacketFlits: 1}, 0)
	defer func() {
		if recover() == nil {
			t.Error("overflow did not panic")
		}
	}()
	e.AcceptFlit(&flit.Flit{Type: flit.HeadTail, PacketFlits: 1}, 0)
}
