// Package noc assembles routers, links, network interfaces and
// global-buffer edge sinks into a runnable network on any
// topology.Topology/Routing pair (2-D mesh or torus; dimension-order,
// west-first or odd-even routing), providing node addressing (including
// the virtual sink nodes past the mesh's east edge), row-collection path
// planning (RowCollect), drain detection and aggregate activity counts
// for the power model.
package noc

import (
	"fmt"

	"gathernoc/internal/fault"
	"gathernoc/internal/flit"
	"gathernoc/internal/link"
	"gathernoc/internal/nic"
	"gathernoc/internal/router"
	"gathernoc/internal/sim"
	"gathernoc/internal/telemetry"
	"gathernoc/internal/topology"
)

// EdgeSink is a global-buffer port attached past the east edge of one mesh
// row (Fig. 1: "GLOBAL BUFFER" alongside the rightmost column). It behaves
// as a pure consumer with its own buffered channel and drain rate.
type EdgeSink struct {
	id  topology.NodeID
	row int
	ej  *nic.Ejector
}

// ID returns the sink's virtual node id (see Network.RowSinkID).
func (s *EdgeSink) ID() topology.NodeID { return s.id }

// Row returns the mesh row the sink serves.
func (s *EdgeSink) Row() int { return s.row }

// Ejector exposes the sink's receive machinery (stats, callbacks).
func (s *EdgeSink) Ejector() *nic.Ejector { return s.ej }

// OnReceive registers the completed-packet callback.
func (s *EdgeSink) OnReceive(fn func(*nic.ReceivedPacket)) { s.ej.OnReceive(fn) }

// Tick drains the sink's buffers.
func (s *EdgeSink) Tick(cycle int64) { s.ej.Tick(cycle) }

// Idle implements sim.Idler: with nothing buffered the sink's tick is a
// pure no-op; flit deliveries wake it through the ejector's handle.
func (s *EdgeSink) Idle() bool { return s.ej.Buffered() == 0 }

// Network is a fully wired NoC on the configured topology. Create with
// New, drive through Engine() or the Run helpers.
type Network struct {
	cfg     Config
	topo    topology.Topology
	routing topology.Routing
	format  *flit.Format
	engine  *sim.Engine
	pool    *flit.Pool

	routers []*router.Router
	nics    []*nic.NIC
	sinks   []*EdgeSink
	links   []*link.Link

	// pidSeq[id] counts the packet ids node id's NIC has drawn; kept here
	// rather than in the nextID closures so snapshots can capture it.
	pidSeq []uint64

	// portBranch[p] is the shared single-branch route through port p.
	// Deterministic unicast/gather routes are one of these five slices,
	// so route computation allocates nothing; completeRC copies the
	// branch values out, never mutating the slice.
	portBranch [topology.NumPorts][]topology.MulticastBranch

	// Sharded-mode state (Config.Shards > 0): rowShard maps a fabric row
	// to the shard that owns it, pools holds the per-shard flit-pool views
	// hanging off the root pool, and linkRecs remembers each link's
	// endpoint shards so the two halves of its commit can be registered
	// with the shards that own the mutated state (DESIGN.md §9).
	rowShard []int
	pools    []*flit.Pool
	linkRecs []linkRec

	// tele is the telemetry collector, nil unless Config.Telemetry enables
	// the observability layer (DESIGN.md §11).
	tele *telemetry.Collector

	// Fault-injection state (DESIGN.md §12), nil/zero unless Config.Faults
	// is active: injector compiles the schedule, fabricLinks counts the
	// inter-router prefix of linkRecs (the links transient rates apply to),
	// and portFault indexes each fabric link's fault state by its upstream
	// node and output port so route computation can mask dead ports.
	injector    *fault.Injector
	fabricLinks int
	portFault   [][]*fault.LinkState
}

// linkRec records which shard owns each end of a link: downShard mutates
// on flit delivery (the downstream input buffer), upShard on credit return
// (the upstream output credit counters). downID is the downstream
// endpoint's node (or sink) id, reported on link trace events; upID the
// upstream one. outPort is the upstream router's output port, meaningful
// only for the inter-router records (the first fabricLinks entries).
type linkRec struct {
	l                  *link.Link
	downShard, upShard int
	downID, upID       topology.NodeID
	outPort            topology.Port
}

// New builds and wires a network according to cfg.
func New(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	topo, err := topology.New(cfg.Topology, cfg.Rows, cfg.Cols)
	if err != nil {
		return nil, err
	}
	routing, err := topology.NewRouting(cfg.Routing, topo)
	if err != nil {
		return nil, err
	}
	if routing.Adaptive() && routing.VCClasses() > 1 {
		// The adaptive path hands the router alternative ports without
		// per-alternative dateline classes (the port is picked at VA
		// time), so a multi-class adaptive routing would allocate outside
		// its class and could deadlock. No built-in routing hits this;
		// reject custom ones until Route carries per-alternative classes.
		return nil, fmt.Errorf("noc: adaptive routing %q with %d VC classes is unsupported (see DESIGN.md §7)",
			routing.Name(), routing.VCClasses())
	}
	format, err := flit.NewFormat(cfg.FlitBits, cfg.PayloadBits, topo.NumNodes()+cfg.Rows)
	if err != nil {
		return nil, err
	}
	nw := &Network{
		cfg:     cfg,
		topo:    topo,
		routing: routing,
		format:  format,
		engine:  sim.NewEngine(),
		pool:    flit.NewPool(),
	}
	nw.pool.SetDebug(cfg.DebugFlitPool)
	if shards := cfg.EffectiveShards(); shards > 0 {
		// Sharded engine: contiguous row blocks, shard s owning rows
		// [s*Rows/S, (s+1)*Rows/S). Rows are the natural cut for this
		// fabric — a node's router, NIC and row sink land in one shard, so
		// only the vertical inter-router links cross shard boundaries.
		nw.engine = sim.NewShardedEngine(shards)
		nw.rowShard = make([]int, cfg.Rows)
		for s := 0; s < shards; s++ {
			for r := s * cfg.Rows / shards; r < (s+1)*cfg.Rows/shards; r++ {
				nw.rowShard[r] = s
			}
		}
		nw.pools = make([]*flit.Pool, shards)
		for s := range nw.pools {
			nw.pools[s] = nw.pool.NewView()
		}
	}
	for p := 0; p < topology.NumPorts; p++ {
		nw.portBranch[p] = []topology.MulticastBranch{{Out: topology.Port(p)}}
	}

	// Routers. The routing algorithm dictates the dateline VC partition
	// (2 classes for torus dimension-order routing, 1 otherwise).
	rcfg := cfg.Router
	if n := routing.VCClasses(); n > 1 {
		rcfg.VCClasses = n
	}
	nw.routers = make([]*router.Router, topo.NumNodes())
	for id := 0; id < topo.NumNodes(); id++ {
		// Every router gets its own adaptive-route scratch buffer: route
		// computation may run concurrently across shards, and even in
		// sequential mode the buffer's contents never outlive one call,
		// so per-router scratch is always safe and allocation-free.
		scratch := new([4]topology.Port)
		rf := func(cur topology.NodeID, f *flit.Flit) router.Route {
			return nw.routeFlit(scratch, cur, f)
		}
		r, err := router.New(topology.NodeID(id), rcfg, rf)
		if err != nil {
			return nil, err
		}
		nw.routers[id] = r
	}

	// Inter-router links (both directions of every fabric edge). Scanning
	// every node's east and south ports enumerates each undirected edge
	// exactly once on the mesh and on the torus — a wraparound edge is
	// seen only from its east/south end.
	for id := 0; id < topo.NumNodes(); id++ {
		src := nw.routers[id]
		for _, p := range []topology.Port{topology.EastPort, topology.SouthPort} {
			nbID, ok := topo.Neighbor(topology.NodeID(id), p)
			if !ok || nbID == topology.NodeID(id) {
				// Degenerate 1-wide torus rings wrap onto themselves; no
				// routing function ever uses such a link, so skip it.
				continue
			}
			dst := nw.routers[nbID]
			nw.wireRouterPair(src, dst, p)
			nw.wireRouterPair(dst, src, p.Opposite())
		}
	}
	// Everything wired so far is an inter-router link; fault injection's
	// transient rates apply to this prefix of linkRecs only.
	nw.fabricLinks = len(nw.linkRecs)

	// NICs with injection/ejection channels.
	nicCfg := nic.Config{
		VCs:               cfg.Router.VCs,
		RouterBufferDepth: cfg.Router.BufferDepth,
		EjectDepth:        cfg.Router.BufferDepth,
		EjectRate:         cfg.EjectRate,
		Delta:             cfg.Delta,
		UnicastFlits:      cfg.UnicastFlits,
		GatherCapacity:    cfg.EffectiveGatherCapacity(),
		EnableINA:         cfg.EnableINA,
		ReduceCapacity:    cfg.EffectiveReduceCapacity(),
		ReduceDelta:       cfg.EffectiveReduceDelta(),
		GatherVC:          cfg.Router.GatherVC,
		Format:            format,
	}
	nw.nics = make([]*nic.NIC, topo.NumNodes())
	nw.pidSeq = make([]uint64, topo.NumNodes())
	for id := 0; id < topo.NumNodes(); id++ {
		// Packet ids are striped per NIC — node id's NIC issues id+1,
		// id+1+N, id+1+2N, ... — so every id is network-unique (ejectors
		// key reassembly on them) without a global counter. A shared
		// counter would be read-modify-written concurrently in sharded
		// mode (self-initiated gathers draw ids inside NIC.Tick), and
		// per-NIC striping keeps the sequence identical for any shard
		// count, sequential mode included. The per-NIC draw counts live
		// in pidSeq — not in closure locals — so snapshots can capture
		// and restore them; each slot is written only by its own NIC's
		// shard, preserving the single-writer rule.
		stride := uint64(topo.NumNodes())
		base := uint64(id) + 1
		seq := &nw.pidSeq[id]
		nextID := func() uint64 {
			pid := base + *seq*stride
			*seq++
			return pid
		}
		n, err := nic.New(topology.NodeID(id), nicCfg, nw.routers[id], nextID)
		if err != nil {
			return nil, err
		}
		nw.nics[id] = n
		rtr := nw.routers[id]

		sh := nw.shardOfNode(topology.NodeID(id))
		inj := link.New(fmt.Sprintf("inj%d", id), cfg.LinkLatency, rtr.InputSink(topology.LocalPort), n)
		n.ConnectInjection(inj)
		rtr.ConnectInput(topology.LocalPort, inj)
		nw.addLink(inj, sh, sh, topology.NodeID(id), topology.NodeID(id))

		ej := link.New(fmt.Sprintf("ej%d", id), cfg.LinkLatency, n.Ejector(), rtr.CreditSink(topology.LocalPort))
		rtr.ConnectOutput(topology.LocalPort, ej, cfg.Router.VCs, cfg.Router.BufferDepth)
		n.Ejector().ConnectReverse(ej)
		nw.addLink(ej, sh, sh, topology.NodeID(id), topology.NodeID(id))
	}

	// Global-buffer sinks past the east edge (mesh only: Validate rejects
	// EastSinks on a torus, whose east ports wrap around).
	if cfg.EastSinks {
		nw.sinks = make([]*EdgeSink, cfg.Rows)
		for row := 0; row < cfg.Rows; row++ {
			edge := nw.routers[topo.ID(topology.Coord{Row: row, Col: cfg.Cols - 1})]
			s := &EdgeSink{
				id:  nw.RowSinkID(row),
				row: row,
				ej:  nic.NewEjector(fmt.Sprintf("sink%d", row), cfg.Router.VCs, cfg.Router.BufferDepth, cfg.SinkDrainRate),
			}
			s.ej.SetOwner(s.id)
			s.ej.SetPacketOverhead(cfg.SinkPacketOverhead)
			l := link.New(fmt.Sprintf("sinklink%d", row), cfg.LinkLatency, s.ej, edge.CreditSink(topology.EastPort))
			edge.ConnectOutput(topology.EastPort, l, cfg.Router.VCs, cfg.Router.BufferDepth)
			s.ej.ConnectReverse(l)
			nw.sinks[row] = s
			sh := nw.shardOfRow(row)
			nw.addLink(l, sh, sh, s.id, edge.ID())
		}
	}

	if nw.engine.Sharded() {
		nw.registerSharded()
	} else {
		// Engine registration: routers, sinks, then NICs as tickers; all
		// links as committers. Controllers added by callers tick after
		// NICs. Every component gets its wake handle (and NICs the engine
		// clock) so the activity-tracked engine can sleep idle components
		// and re-evaluate them on flit/credit handoff or packet submission.
		for _, r := range nw.routers {
			r.SetWake(nw.engine.AddTicker(r))
			r.SetFlitPool(nw.pool)
		}
		for _, s := range nw.sinks {
			s.ej.SetWake(nw.engine.AddTicker(s))
			s.ej.SetFlitPool(nw.pool)
		}
		for _, n := range nw.nics {
			h := nw.engine.AddTicker(n)
			n.SetWake(h)
			n.Ejector().SetWake(h)
			n.SetClock(nw.engine)
			n.SetFlitPool(nw.pool)
			n.Ejector().SetFlitPool(nw.pool)
		}
		for _, l := range nw.links {
			l.SetWake(nw.engine.AddCommitter(l))
		}
		nw.engine.SetAlwaysTick(cfg.AlwaysTick)
		// High-load fallback: saturated fabrics tick naively in bursts
		// instead of paying per-component wake bookkeeping that skips
		// nothing (the schedules are bit-identical either way; see
		// sim.Engine.SetAdaptive).
		nw.engine.SetAdaptive(true)
	}
	if cfg.Faults.Enabled() {
		if err := nw.wireFaults(); err != nil {
			return nil, err
		}
	}
	if cfg.Telemetry != nil && cfg.Telemetry.Enabled() {
		nw.wireTelemetry()
	}
	return nw, nil
}

// wireTelemetry builds the collector, attaches the per-shard probes to
// every component (tracer), registers the metrics sources with the shard
// that owns each counter (single-writer rule, DESIGN.md §11), and appends
// the epoch snapshot as the last committer of each shard — after the link
// halves — so a snapshot observes every counter its shard wrote that
// cycle. Runs after engine registration, before the first cycle.
func (nw *Network) wireTelemetry() {
	shards := nw.cfg.EffectiveShards()
	if shards < 1 {
		shards = 1
	}
	tc := telemetry.New(*nw.cfg.Telemetry, shards)
	nw.tele = tc
	tracing := tc.Tracing()

	routerFields := []telemetry.Field{
		{Name: "buffer_writes"}, {Name: "rc_computations"},
		{Name: "gather_uploads"}, {Name: "reduce_merges"},
		{Name: "occupancy", Gauge: true}, {Name: "max_vc_occupancy", Gauge: true},
	}
	for _, r := range nw.routers {
		sh := nw.shardOfNode(r.ID())
		if tracing {
			r.SetTelemetry(tc.ShardProbe(sh))
		}
		co := nw.topo.Coord(r.ID())
		tc.AddSource(sh, telemetry.SourceMeta{
			Kind: "router", ID: int(r.ID()), Name: fmt.Sprintf("r%d", r.ID()), Row: co.Row, Col: co.Col,
		}, routerFields, func(dst []int64) {
			dst[0] = int64(r.Counters.BufferWrites.Value())
			dst[1] = int64(r.Counters.RCComputations.Value())
			dst[2] = int64(r.Counters.GatherUploads.Value())
			dst[3] = int64(r.Counters.ReduceMerges.Value())
			dst[4] = int64(r.BufferedFlits())
			dst[5] = int64(r.MaxVCOccupancy())
		})
	}

	// Each link contributes two single-field sources, one per endpoint
	// shard: the forward flit count lives with the downstream committer,
	// the credit count with the upstream one, so both reads stay on the
	// goroutine that writes them.
	// With fault injection active every component's field list grows the
	// fault/recovery counters; a fault-free network keeps the original
	// schema byte for byte.
	faulty := nw.injector != nil
	flitFields := []telemetry.Field{{Name: "flits"}}
	if faulty {
		flitFields = append(flitFields, telemetry.Field{Name: "fault_drops"}, telemetry.Field{Name: "fault_corrupts"})
	}
	creditFields := []telemetry.Field{{Name: "credits"}}
	for i, rec := range nw.linkRecs {
		if tracing {
			rec.l.SetTelemetry(tc.ShardProbe(rec.downShard), int(rec.downID))
		}
		meta := telemetry.SourceMeta{Kind: "link", ID: i, Name: rec.l.Name(), Row: -1, Col: -1}
		l := rec.l
		tc.AddSource(rec.downShard, meta, flitFields, func(dst []int64) {
			dst[0] = int64(l.FlitsCarried.Value())
			if len(dst) > 1 {
				// The fault counters are written by the same shard that
				// commits the link's flits, so the snapshot read is safe.
				if ls := l.Faults(); ls != nil {
					dst[1], dst[2] = int64(ls.Drops), int64(ls.Corrupts)
				} else {
					dst[1], dst[2] = 0, 0
				}
			}
		})
		tc.AddSource(rec.upShard, meta, creditFields, func(dst []int64) {
			dst[0] = int64(l.CreditsCarried.Value())
		})
	}

	nicFields := []telemetry.Field{
		{Name: "packets_injected"}, {Name: "flits_injected"},
		{Name: "packets_ejected"}, {Name: "flits_ejected"},
		{Name: "queue_depth", Gauge: true},
	}
	if faulty {
		nicFields = append(nicFields,
			telemetry.Field{Name: "retransmits"}, telemetry.Field{Name: "abandoned"},
			telemetry.Field{Name: "dup_suppressed"}, telemetry.Field{Name: "crc_discards"},
			telemetry.Field{Name: "unconfirmed", Gauge: true})
	}
	for _, n := range nw.nics {
		sh := nw.shardOfNode(n.ID())
		if tracing {
			n.Ejector().SetTelemetry(tc.ShardProbe(sh), int(n.ID()))
			n.SetTelemetry(tc.ShardProbe(sh))
		}
		co := nw.topo.Coord(n.ID())
		tc.AddSource(sh, telemetry.SourceMeta{
			Kind: "nic", ID: int(n.ID()), Name: fmt.Sprintf("nic%d", n.ID()), Row: co.Row, Col: co.Col,
		}, nicFields, func(dst []int64) {
			dst[0] = int64(n.PacketsInjected.Value())
			dst[1] = int64(n.FlitsInjected.Value())
			dst[2] = int64(n.Ejector().PacketsEjected.Value())
			dst[3] = int64(n.Ejector().FlitsEjected.Value())
			dst[4] = int64(n.QueueDepth())
			if len(dst) > 5 {
				dst[5] = int64(n.Retransmits.Value())
				dst[6] = int64(n.AbandonedPayloads.Value())
				dst[7] = int64(n.Ejector().DuplicatesSuppressed.Value())
				dst[8] = int64(n.Ejector().PacketsDiscarded.Value())
				dst[9] = int64(n.ReliablePending())
			}
		})
	}

	sinkFields := []telemetry.Field{
		{Name: "packets_ejected"}, {Name: "flits_ejected"},
		{Name: "buffered", Gauge: true},
	}
	if faulty {
		sinkFields = append(sinkFields,
			telemetry.Field{Name: "dup_suppressed"}, telemetry.Field{Name: "crc_discards"})
	}
	for _, s := range nw.sinks {
		sh := nw.shardOfRow(s.row)
		if tracing {
			s.ej.SetTelemetry(tc.ShardProbe(sh), int(s.id))
		}
		tc.AddSource(sh, telemetry.SourceMeta{
			Kind: "sink", ID: s.row, Name: fmt.Sprintf("sink%d", s.row), Row: s.row, Col: nw.cfg.Cols,
		}, sinkFields, func(dst []int64) {
			dst[0] = int64(s.ej.PacketsEjected.Value())
			dst[1] = int64(s.ej.FlitsEjected.Value())
			dst[2] = int64(s.ej.Buffered())
			if len(dst) > 3 {
				dst[3] = int64(s.ej.DuplicatesSuppressed.Value())
				dst[4] = int64(s.ej.PacketsDiscarded.Value())
			}
		})
	}

	// The flit pool is one fabric-wide gauge, attached to shard 0: pool
	// acquires/releases all happen in the tick phase (NIC packetize,
	// router forks, ejector reassembly), so by the time any shard commits,
	// the aggregate Live count is stable behind the tick barrier.
	tc.AddSource(0, telemetry.SourceMeta{Kind: "pool", ID: 0, Name: "flitpool", Row: -1, Col: -1},
		[]telemetry.Field{{Name: "live", Gauge: true}}, func(dst []int64) {
			dst[0] = int64(nw.pool.Live())
		})

	for s := 0; s < shards; s++ {
		ec := tc.EpochCommitter(s)
		if ec == nil {
			break
		}
		if nw.engine.Sharded() {
			nw.engine.AddShardCommitter(s, ec)
		} else {
			nw.engine.AddCommitter(ec)
		}
	}
	tc.Start()
}

// Telemetry returns the telemetry collector, or nil when
// Config.Telemetry left the observability layer off. Workload schedulers
// use it to reach the serial probe for phase-boundary events.
func (nw *Network) Telemetry() *telemetry.Collector { return nw.tele }

// HarvestTelemetry flushes and merges the telemetry buffers into a report
// (nil without telemetry). Call after the run, from the goroutine that
// drove the engine.
func (nw *Network) HarvestTelemetry() *telemetry.Report {
	if nw.tele == nil {
		return nil
	}
	return nw.tele.Harvest(nw.engine.Cycle())
}

// registerSharded wires every component into the two-phase sharded engine
// (DESIGN.md §9). Each shard's tick list keeps the sequential engine's
// relative order — routers by id, then sinks, then NICs — and no wake
// handles are attached: the sharded engine always ticks everything, and a
// nil handle makes every Wake call a no-op. Each link's commit is split
// between the shards owning its endpoints, ejectors switch to staged
// delivery, and the staged-dispatch hook becomes the first serial ticker
// so receive callbacks fire — in the sequential callback order — before
// any workload driver runs.
func (nw *Network) registerSharded() {
	for _, r := range nw.routers {
		sh := nw.shardOfNode(r.ID())
		nw.engine.AddShardTicker(sh, r)
		r.SetFlitPool(nw.pools[sh])
	}
	for _, s := range nw.sinks {
		sh := nw.shardOfRow(s.row)
		nw.engine.AddShardTicker(sh, s)
		s.ej.SetFlitPool(nw.pools[sh])
		s.ej.SetStaged(true)
	}
	for _, n := range nw.nics {
		sh := nw.shardOfNode(n.ID())
		nw.engine.AddShardTicker(sh, n)
		n.SetClock(nw.engine)
		n.SetFlitPool(nw.pools[sh])
		n.Ejector().SetFlitPool(nw.pools[sh])
		n.Ejector().SetStaged(true)
	}
	for _, rec := range nw.linkRecs {
		nw.engine.AddShardCommitter(rec.downShard, flitHalf{rec.l})
		nw.engine.AddShardCommitter(rec.upShard, creditHalf{rec.l})
	}
	nw.engine.AddTicker(stagedDispatcher{nw})
}

// flitHalf commits a link's forward path only; registered with the shard
// owning the downstream endpoint.
type flitHalf struct{ l *link.Link }

func (h flitHalf) Commit(now int64) { h.l.CommitFlits(now) }

// creditHalf commits a link's credit return only; registered with the
// shard owning the upstream endpoint.
type creditHalf struct{ l *link.Link }

func (h creditHalf) Commit(now int64) { h.l.CommitCredits(now) }

// stagedDispatcher replays the cycle's staged packet deliveries on the
// serial sub-phase, in the order the sequential engine fires them: sink
// callbacks row by row (sinks register before NICs), then NIC callbacks
// in node order.
type stagedDispatcher struct{ nw *Network }

func (d stagedDispatcher) Tick(cycle int64) {
	for _, s := range d.nw.sinks {
		s.ej.DispatchStaged()
	}
	for _, n := range d.nw.nics {
		n.Ejector().DispatchStaged()
	}
}

func (nw *Network) wireRouterPair(src, dst *router.Router, out topology.Port) {
	in := out.Opposite()
	l := link.New(
		fmt.Sprintf("r%d%s->r%d", src.ID(), out, dst.ID()),
		nw.cfg.LinkLatency,
		dst.InputSink(in),
		src.CreditSink(out),
	)
	src.ConnectOutput(out, l, nw.cfg.Router.VCs, nw.cfg.Router.BufferDepth)
	dst.ConnectInput(in, l)
	nw.addLink(l, nw.shardOfNode(dst.ID()), nw.shardOfNode(src.ID()), dst.ID(), src.ID())
	nw.linkRecs[len(nw.linkRecs)-1].outPort = out
}

// addLink records a wired link with the shards owning its two endpoints:
// flit delivery mutates the downstream endpoint, credit return the
// upstream one. Sequential networks record shard 0 throughout.
func (nw *Network) addLink(l *link.Link, downShard, upShard int, downID, upID topology.NodeID) {
	nw.links = append(nw.links, l)
	nw.linkRecs = append(nw.linkRecs, linkRec{l: l, downShard: downShard, upShard: upShard, downID: downID, upID: upID})
}

// shardOfNode returns the shard owning node id's row (0 when sequential).
func (nw *Network) shardOfNode(id topology.NodeID) int {
	return nw.shardOfRow(nw.topo.Coord(id).Row)
}

// shardOfRow returns the shard owning a fabric row (0 when sequential).
func (nw *Network) shardOfRow(row int) int {
	if nw.rowShard == nil {
		return 0
	}
	return nw.rowShard[row]
}

// Config returns the network's configuration.
func (nw *Network) Config() Config { return nw.cfg }

// Topology returns the fabric the network is wired on.
func (nw *Network) Topology() topology.Topology { return nw.topo }

// Routing returns the routing algorithm steering the network's packets.
func (nw *Network) Routing() topology.Routing { return nw.routing }

// Mesh returns the underlying topology.
//
// Deprecated: the fabric is not necessarily a mesh anymore; use Topology.
// Retained because the coordinate-grid methods (ID, Coord, Hops, ...) are
// what every caller used, and those live on the interface.
func (nw *Network) Mesh() topology.Topology { return nw.topo }

// Format returns the wire format.
func (nw *Network) Format() *flit.Format { return nw.format }

// Engine returns the cycle engine, for registering controllers.
func (nw *Network) Engine() *sim.Engine { return nw.engine }

// Close stops the engine's shard workers. A no-op on sequential networks
// (and safe to call repeatedly); sharded networks should be closed when
// done so the persistent worker goroutines exit.
func (nw *Network) Close() { nw.engine.Close() }

// FlitPool returns the network's flit pool. Tests use it (with
// Config.DebugFlitPool) to assert that a drained network leaked no flits.
func (nw *Network) FlitPool() *flit.Pool { return nw.pool }

// Router returns the router at node id.
func (nw *Network) Router(id topology.NodeID) *router.Router { return nw.routers[id] }

// NIC returns the network interface at node id.
func (nw *Network) NIC(id topology.NodeID) *nic.NIC { return nw.nics[id] }

// ClearNICTags resets every NIC to the untagged state, skipping the ones
// already untagged. Workload schedulers call it once per cycle after their
// drivers ran; the fast path matters on large fabrics where most NICs
// never saw a tagged injection this cycle.
func (nw *Network) ClearNICTags() {
	for _, n := range nw.nics {
		if n.Tag() != 0 {
			n.SetTag(0)
		}
	}
}

// Sink returns the global-buffer sink of the given row, or nil when east
// sinks are disabled.
func (nw *Network) Sink(row int) *EdgeSink {
	if row < 0 || row >= len(nw.sinks) {
		return nil
	}
	return nw.sinks[row]
}

// RowSinkID returns the virtual node id addressing the global-buffer sink
// of the given row. Sink ids live just past the PE id space.
func (nw *Network) RowSinkID(row int) topology.NodeID {
	return topology.NodeID(nw.topo.NumNodes() + row)
}

// IsSinkID reports whether id addresses an edge sink.
func (nw *Network) IsSinkID(id topology.NodeID) bool {
	n := nw.topo.NumNodes()
	return int(id) >= n && int(id) < n+len(nw.sinks)
}

// routeFlit is the RoutingFunc behind every router (each closes over its
// own scratch buffer): the configured topology.Routing for unicast, gather
// and accumulate traffic — extended to the virtual sink nodes past the
// mesh's east edge — and XY-tree branching for multicast.
func (nw *Network) routeFlit(scratch *[4]topology.Port, cur topology.NodeID, f *flit.Flit) router.Route {
	if f.PT == flit.Multicast {
		branches, local := topology.MulticastRoute(nw.topo, cur, f.MDst)
		rt := router.Route{Branches: branches}
		if local {
			rt.Branches = append(rt.Branches, topology.MulticastBranch{Out: topology.LocalPort})
		}
		return rt
	}
	dst := f.Dst
	if nw.IsSinkID(dst) {
		row := int(dst) - nw.topo.NumNodes()
		edge := nw.topo.ID(topology.Coord{Row: row, Col: nw.cfg.Cols - 1})
		if cur == edge {
			return router.Route{Branches: nw.portBranch[topology.EastPort]}
		}
		return nw.unicastRoute(scratch, f.Src, cur, edge)
	}
	return nw.unicastRoute(scratch, f.Src, cur, dst)
}

// unicastRoute translates the routing algorithm's port set into a
// router.Route: a shared single-branch route (plus the hop's dateline VC
// class) when deterministic, an adaptive alternative list when several
// ports are productive, and local delivery when the packet has arrived.
func (nw *Network) unicastRoute(scratch *[4]topology.Port, src, cur, dst topology.NodeID) router.Route {
	ports := nw.routing.AppendPorts(scratch[:0], src, cur, dst)
	switch len(ports) {
	case 0:
		return router.Route{Branches: nw.portBranch[topology.LocalPort]}
	case 1:
		return router.Route{
			Branches: nw.portBranch[ports[0]],
			VCClass:  nw.routing.VCClass(cur, dst, ports[0]),
		}
	default:
		if nw.portFault != nil {
			ports = nw.filterPorts(ports, cur)
		}
		return router.Route{Adaptive: ports}
	}
}

// InFlight reports the total flits buffered in routers, traversing links,
// or waiting in ejection buffers.
func (nw *Network) InFlight() int {
	n := 0
	for _, r := range nw.routers {
		n += r.BufferedFlits()
	}
	for _, l := range nw.links {
		n += l.InFlight()
	}
	for _, s := range nw.sinks {
		n += s.ej.Buffered()
	}
	return n
}

// Quiescent reports whether no packet activity remains anywhere: NIC
// queues, router buffers, links, sinks and gather stations are all empty.
func (nw *Network) Quiescent() bool {
	for _, n := range nw.nics {
		if n.Pending() {
			return false
		}
	}
	for _, r := range nw.routers {
		if r.GatherBacklog() > 0 || r.ReduceBacklog() > 0 {
			return false
		}
	}
	if nw.InFlight() != 0 {
		return false
	}
	for _, s := range nw.sinks {
		if s.ej.PendingPackets() > 0 {
			return false
		}
	}
	return true
}

// RunUntilQuiescent steps the network until it drains or the cycle budget
// is exhausted (returning sim.ErrMaxCyclesExceeded).
func (nw *Network) RunUntilQuiescent(maxCycles int64) (int64, error) {
	return nw.engine.RunUntil(nw.Quiescent, maxCycles)
}

// CheckInvariants validates every router's internal consistency (see
// router.CheckInvariants); intended for tests and debugging runs.
func (nw *Network) CheckInvariants() error {
	for _, r := range nw.routers {
		if err := r.CheckInvariants(); err != nil {
			return err
		}
	}
	return nil
}

// Activity aggregates the event counts the power model consumes.
type Activity struct {
	BufferWrites   uint64
	BufferReads    uint64
	RCComputations uint64
	VAAllocations  uint64
	SAGrants       uint64
	Crossings      uint64
	LinkFlits      uint64
	GatherUploads  uint64
	ReduceMerges   uint64
	PacketsSent    uint64
	FlitsSent      uint64
}

// Activity sums the per-component counters across the network.
func (nw *Network) Activity() Activity {
	var a Activity
	for _, r := range nw.routers {
		a.BufferWrites += r.Counters.BufferWrites.Value()
		a.BufferReads += r.Counters.BufferReads.Value()
		a.RCComputations += r.Counters.RCComputations.Value()
		a.VAAllocations += r.Counters.VAAllocations.Value()
		a.SAGrants += r.Counters.SAGrants.Value()
		a.Crossings += r.Counters.Crossings.Value()
		a.GatherUploads += r.Counters.GatherUploads.Value()
		a.ReduceMerges += r.Counters.ReduceMerges.Value()
	}
	for _, l := range nw.links {
		a.LinkFlits += l.FlitsCarried.Value()
	}
	for _, n := range nw.nics {
		a.PacketsSent += n.PacketsInjected.Value()
		a.FlitsSent += n.FlitsInjected.Value()
	}
	return a
}
