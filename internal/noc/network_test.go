package noc

import (
	"testing"

	"gathernoc/internal/flit"
	"gathernoc/internal/nic"
	"gathernoc/internal/topology"
)

func mustNetwork(t *testing.T, cfg Config) *Network {
	t.Helper()
	nw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		wantOK bool
	}{
		{"default", func(c *Config) {}, true},
		{"bad mesh", func(c *Config) { c.Rows = 0 }, false},
		{"bad link", func(c *Config) { c.LinkLatency = 0 }, false},
		{"bad unicast", func(c *Config) { c.UnicastFlits = 0 }, false},
		{"bad eject", func(c *Config) { c.EjectRate = 0 }, false},
		{"bad sink drain", func(c *Config) { c.SinkDrainRate = 0 }, false},
		{"bad router", func(c *Config) { c.Router.VCs = 0 }, false},
		{"negative gather capacity", func(c *Config) { c.GatherCapacity = -1 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig(4, 4)
			tt.mutate(&cfg)
			err := cfg.Validate()
			if (err == nil) != tt.wantOK {
				t.Errorf("Validate() = %v, wantOK %v", err, tt.wantOK)
			}
		})
	}
}

func TestHeaderHopLatencyDefault(t *testing.T) {
	// κ = RC(1)+VA(1)+SA/ST(1)+link(1) = 4, the calibration of DESIGN.md §4.
	if got := DefaultConfig(8, 8).HeaderHopLatency(); got != 4 {
		t.Errorf("κ = %d, want 4", got)
	}
}

func TestEffectiveGatherCapacityDefaultsToRowWidth(t *testing.T) {
	cfg := DefaultConfig(8, 8)
	if got := cfg.EffectiveGatherCapacity(); got != 8 {
		t.Errorf("capacity = %d, want 8", got)
	}
	cfg.GatherCapacity = 3
	if got := cfg.EffectiveGatherCapacity(); got != 3 {
		t.Errorf("capacity = %d, want 3", got)
	}
}

func TestUnicastCrossesNetwork(t *testing.T) {
	nw := mustNetwork(t, DefaultConfig(4, 4))
	var got []*nic.ReceivedPacket
	nw.NIC(15).OnReceive(func(p *nic.ReceivedPacket) { got = append(got, p.Clone()) })

	nw.NIC(0).SendUnicast(15)
	if _, err := nw.RunUntilQuiescent(10000); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("received %d packets, want 1", len(got))
	}
	p := got[0]
	if p.Src != 0 || p.Dst != 15 || p.Flits != 2 {
		t.Errorf("packet = %+v", p)
	}
	// 6 mesh hops (0,0)->(3,3) plus injection and ejection stages; the
	// exact value documents the simulator's timing model.
	if p.Latency() <= 0 || p.Latency() > 64 {
		t.Errorf("latency = %d, out of plausible range", p.Latency())
	}
}

func TestUnicastLatencyMatchesHopModel(t *testing.T) {
	// Across one row with no contention, head latency should be
	// (hops+1 ejection+1 injection treated as hops) * κ plus NIC/drain
	// overhead; serialization adds flits-1. Assert the exact analytic
	// relation holds for several distances to pin the timing model.
	cfg := DefaultConfig(1, 8)
	cfg.EastSinks = false
	kappa := int64(cfg.HeaderHopLatency())
	var prev int64
	for d := 1; d <= 7; d++ {
		nw := mustNetwork(t, cfg)
		var got []*nic.ReceivedPacket
		nw.NIC(topology.NodeID(d)).OnReceive(func(p *nic.ReceivedPacket) { got = append(got, p.Clone()) })
		nw.NIC(0).SendUnicast(topology.NodeID(d))
		if _, err := nw.RunUntilQuiescent(10000); err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 {
			t.Fatalf("d=%d: received %d", d, len(got))
		}
		lat := got[0].Latency()
		if d > 1 && lat-prev != kappa {
			t.Errorf("d=%d: latency %d, want previous+κ (%d+%d)", d, lat, prev, kappa)
		}
		prev = lat
	}
}

func TestGatherCollectsRowPayloads(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	nw := mustNetwork(t, cfg)
	row := 1
	sink := nw.Sink(row)
	var got []*nic.ReceivedPacket
	sink.OnReceive(func(p *nic.ReceivedPacket) { got = append(got, p.Clone()) })

	dst := nw.RowSinkID(row)
	// PEs (1,1)..(1,3) deposit payloads for piggybacking; PE (1,0)
	// initiates the gather packet with its own payload. Per the paper, δ
	// is configured per router to cover the pipeline delay from the
	// initiator, so it scales with the column distance.
	for c := 1; c < 4; c++ {
		id := nw.Mesh().ID(topology.Coord{Row: row, Col: c})
		nw.NIC(id).SetDelta(cfg.Delta * int64(1+c))
		nw.NIC(id).SubmitGatherPayload(flit.Payload{
			Seq: uint64(c), Src: id, Dst: dst, Bits: 32, Value: uint64(100 + c),
		})
	}
	initiator := nw.Mesh().ID(topology.Coord{Row: row, Col: 0})
	nw.NIC(initiator).SendGather(dst, &flit.Payload{
		Seq: 0, Src: initiator, Dst: dst, Bits: 32, Value: 100,
	})

	if _, err := nw.RunUntilQuiescent(10000); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("sink received %d packets, want 1 gather packet", len(got))
	}
	p := got[0]
	if p.PT != flit.Gather {
		t.Fatalf("packet type = %s, want G", p.PT)
	}
	if len(p.Payloads) != 4 {
		t.Fatalf("payloads = %d, want 4 (whole row in one packet)", len(p.Payloads))
	}
	seen := map[uint64]bool{}
	for _, pl := range p.Payloads {
		if seen[pl.Value] {
			t.Errorf("duplicate payload %d", pl.Value)
		}
		seen[pl.Value] = true
	}
	for v := uint64(100); v <= 103; v++ {
		if !seen[v] {
			t.Errorf("payload %d missing", v)
		}
	}
}

func TestGatherDeltaTimeoutSelfInitiates(t *testing.T) {
	// No gather packet ever passes, so every deposited payload must
	// self-initiate after δ and still reach the sink.
	cfg := DefaultConfig(4, 4)
	cfg.Delta = 5
	nw := mustNetwork(t, cfg)
	row := 2
	dst := nw.RowSinkID(row)
	var got []*nic.ReceivedPacket
	nw.Sink(row).OnReceive(func(p *nic.ReceivedPacket) { got = append(got, p.Clone()) })

	id := nw.Mesh().ID(topology.Coord{Row: row, Col: 2})
	nw.NIC(id).SubmitGatherPayload(flit.Payload{Seq: 1, Src: id, Dst: dst, Bits: 32, Value: 7})

	if _, err := nw.RunUntilQuiescent(10000); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Payloads) != 1 || got[0].Payloads[0].Value != 7 {
		t.Fatalf("self-initiated gather not delivered: %+v", got)
	}
	if nw.NIC(id).SelfInitiatedGathers.Value() != 1 {
		t.Errorf("SelfInitiatedGathers = %d, want 1", nw.NIC(id).SelfInitiatedGathers.Value())
	}
	// The self-initiated packet cannot have left before the δ deadline.
	if got[0].InjectCycle < 5 {
		t.Errorf("self-initiation at cycle %d, before δ=5", got[0].InjectCycle)
	}
}

func TestRepetitiveUnicastDeliversAll(t *testing.T) {
	// The RU baseline: every PE in a row unicasts to the row sink.
	cfg := DefaultConfig(4, 4)
	nw := mustNetwork(t, cfg)
	row := 0
	dst := nw.RowSinkID(row)
	var got []*nic.ReceivedPacket
	nw.Sink(row).OnReceive(func(p *nic.ReceivedPacket) { got = append(got, p.Clone()) })

	for c := 0; c < 4; c++ {
		id := nw.Mesh().ID(topology.Coord{Row: row, Col: c})
		nw.NIC(id).SendUnicast(dst)
	}
	if _, err := nw.RunUntilQuiescent(10000); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("sink received %d packets, want 4", len(got))
	}
}

func TestMulticastReachesAllDestinations(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	nw := mustNetwork(t, cfg)
	received := map[topology.NodeID]int{}
	for id := 0; id < nw.Mesh().NumNodes(); id++ {
		id := topology.NodeID(id)
		nw.NIC(id).OnReceive(func(p *nic.ReceivedPacket) { received[id]++ })
	}
	dsts := topology.DestSetOf(nw.Mesh().NumNodes(), 3, 7, 12, 15, 0)
	nw.NIC(5).SendMulticast(dsts, 2)

	if _, err := nw.RunUntilQuiescent(10000); err != nil {
		t.Fatal(err)
	}
	for _, d := range dsts.Nodes() {
		if received[d] != 1 {
			t.Errorf("dst %d received %d copies, want 1", d, received[d])
		}
	}
	for id, n := range received {
		if !dsts.Contains(id) && n > 0 {
			t.Errorf("non-destination %d received %d packets", id, n)
		}
	}
}

func TestBackpressureManyToOneDrains(t *testing.T) {
	// Hotspot: every node floods the same destination; credit flow control
	// must avoid overflow panics and the network must eventually drain.
	cfg := DefaultConfig(4, 4)
	nw := mustNetwork(t, cfg)
	count := 0
	nw.NIC(5).OnReceive(func(p *nic.ReceivedPacket) { count++ })
	for id := 0; id < nw.Mesh().NumNodes(); id++ {
		if id == 5 {
			continue
		}
		for k := 0; k < 4; k++ {
			nw.NIC(topology.NodeID(id)).SendUnicastN(5, 4)
		}
	}
	if _, err := nw.RunUntilQuiescent(100000); err != nil {
		t.Fatal(err)
	}
	if count != 15*4 {
		t.Errorf("delivered %d packets, want %d", count, 15*4)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (int64, Activity) {
		cfg := DefaultConfig(4, 4)
		nw := mustNetwork(t, cfg)
		for row := 0; row < 4; row++ {
			dst := nw.RowSinkID(row)
			for c := 1; c < 4; c++ {
				id := nw.Mesh().ID(topology.Coord{Row: row, Col: c})
				nw.NIC(id).SubmitGatherPayload(flit.Payload{
					Seq: uint64(row*10 + c), Src: id, Dst: dst, Bits: 32,
				})
			}
			left := nw.Mesh().ID(topology.Coord{Row: row, Col: 0})
			nw.NIC(left).SendGather(dst, &flit.Payload{Seq: uint64(row * 100), Src: left, Dst: dst})
			nw.NIC(left).SendUnicast(topology.NodeID((row + 1) % 4 * 4))
		}
		cycles, err := nw.RunUntilQuiescent(50000)
		if err != nil {
			t.Fatal(err)
		}
		return cycles, nw.Activity()
	}
	c1, a1 := run()
	c2, a2 := run()
	if c1 != c2 {
		t.Errorf("cycle counts differ: %d vs %d", c1, c2)
	}
	if a1 != a2 {
		t.Errorf("activity differs:\n%+v\n%+v", a1, a2)
	}
}

func TestSinkAddressing(t *testing.T) {
	nw := mustNetwork(t, DefaultConfig(4, 4))
	if !nw.IsSinkID(nw.RowSinkID(0)) || !nw.IsSinkID(nw.RowSinkID(3)) {
		t.Error("sink ids not recognized")
	}
	if nw.IsSinkID(15) || nw.IsSinkID(nw.RowSinkID(3)+1) {
		t.Error("non-sink ids recognized as sinks")
	}
	if nw.Sink(-1) != nil || nw.Sink(4) != nil {
		t.Error("out-of-range Sink() not nil")
	}
	if nw.Sink(2).Row() != 2 {
		t.Errorf("Sink(2).Row() = %d", nw.Sink(2).Row())
	}
}

func TestGatherVCReservation(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	cfg.Router.GatherVC = 3
	nw := mustNetwork(t, cfg)
	row := 0
	dst := nw.RowSinkID(row)
	var got []*nic.ReceivedPacket
	nw.Sink(row).OnReceive(func(p *nic.ReceivedPacket) { got = append(got, p.Clone()) })

	left := nw.Mesh().ID(topology.Coord{Row: row, Col: 0})
	nw.NIC(left).SendGather(dst, &flit.Payload{Seq: 1, Src: left, Dst: dst, Value: 9})
	// Background unicast traffic on the same row.
	for c := 1; c < 4; c++ {
		id := nw.Mesh().ID(topology.Coord{Row: row, Col: c})
		nw.NIC(id).SendUnicast(dst)
	}
	if _, err := nw.RunUntilQuiescent(10000); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("sink received %d packets, want 4", len(got))
	}
	var sawGather bool
	for _, p := range got {
		if p.PT == flit.Gather {
			sawGather = true
			if len(p.Payloads) != 1 || p.Payloads[0].Value != 9 {
				t.Errorf("gather payloads = %+v", p.Payloads)
			}
		}
	}
	if !sawGather {
		t.Error("gather packet not delivered")
	}
}

func TestActivityCountsPlausible(t *testing.T) {
	nw := mustNetwork(t, DefaultConfig(4, 4))
	nw.NIC(0).SendUnicast(15)
	if _, err := nw.RunUntilQuiescent(10000); err != nil {
		t.Fatal(err)
	}
	a := nw.Activity()
	// 2 flits across 7 routers (6 hops + ejection router... the packet
	// visits routers (0,0)..(3,3): 7 routers), each write+read once.
	if a.BufferWrites != a.BufferReads {
		t.Errorf("writes %d != reads %d on a drained network", a.BufferWrites, a.BufferReads)
	}
	if a.BufferWrites != 14 {
		t.Errorf("buffer writes = %d, want 14 (2 flits x 7 routers)", a.BufferWrites)
	}
	// Link flits: injection + 6 mesh links + ejection = 8 traversals x 2.
	if a.LinkFlits != 16 {
		t.Errorf("link flits = %d, want 16", a.LinkFlits)
	}
	if a.PacketsSent != 1 || a.FlitsSent != 2 {
		t.Errorf("sent = %d pkts / %d flits, want 1/2", a.PacketsSent, a.FlitsSent)
	}
}
