package noc

import (
	"encoding/json"
	"fmt"

	"gathernoc/internal/flit"
	"gathernoc/internal/link"
	"gathernoc/internal/nic"
	"gathernoc/internal/router"
)

// SnapshotVersion tags the snapshot envelope. Any change to a component
// State layout or to the capture/restore rules must bump it; Restore
// rejects snapshots from other versions instead of misinterpreting them.
const SnapshotVersion = "gathernoc/noc.Snapshot/v1"

// Snapshot is the complete serialized mutable state of a Network at a
// cycle boundary: the engine clock, the per-NIC packet-id counters, and
// every router, link, NIC and sink in deterministic construction order.
// Immutable structure — topology, routing, wiring, capacities — is not
// serialized: Restore applies a snapshot onto a freshly constructed
// Network of the same canonical configuration (enforced via ConfigHash,
// so result-invariant knobs like Shards may differ between the capturing
// and restoring processes).
type Snapshot struct {
	Version    string
	ConfigHash string
	// Config is the capturing network's configuration (telemetry cleared:
	// snapshots reject telemetry-enabled networks), letting a resuming
	// process reconstruct the network without out-of-band state.
	Config  Config
	Cycle   int64
	PidSeq  []uint64
	Routers []router.State
	Links   []link.State
	NICs    []nic.State
	Sinks   []nic.EjectorState `json:",omitempty"`
}

// Snapshot captures the network's complete mutable state. It must be
// called at a cycle boundary (between engine steps — never from inside a
// Tick or Commit). Telemetry-enabled networks are rejected: the
// collector's epoch ring and trace buffers are append-only observations
// of a specific run, and checkpointing them is not supported.
func (nw *Network) Snapshot() (*Snapshot, error) {
	if nw.tele != nil {
		return nil, fmt.Errorf("noc: snapshot of a telemetry-enabled network is unsupported")
	}
	s := &Snapshot{
		Version:    SnapshotVersion,
		ConfigHash: nw.cfg.Hash(),
		Config:     nw.cfg,
		Cycle:      nw.engine.Cycle(),
		PidSeq:     append([]uint64(nil), nw.pidSeq...),
	}
	s.Config.Telemetry = nil
	s.Routers = make([]router.State, len(nw.routers))
	for i, r := range nw.routers {
		s.Routers[i] = r.CaptureState()
	}
	s.Links = make([]link.State, len(nw.links))
	for i, l := range nw.links {
		s.Links[i] = l.CaptureState()
	}
	s.NICs = make([]nic.State, len(nw.nics))
	for i, n := range nw.nics {
		ns, err := n.CaptureState()
		if err != nil {
			return nil, err
		}
		s.NICs[i] = ns
	}
	for _, sk := range nw.sinks {
		es, err := sk.ej.CaptureState()
		if err != nil {
			return nil, err
		}
		s.Sinks = append(s.Sinks, es)
	}
	return s, nil
}

// Restore applies a snapshot onto this network, which must be freshly
// constructed (no cycles run) from a configuration with the same
// canonical hash as the capturing one — shard count and the other
// result-invariant knobs may differ, everything else may not. All
// restored flits are acquired from this network's pool, so the pool's
// live accounting balances exactly as in an uninterrupted run.
func (nw *Network) Restore(s *Snapshot) error {
	if s.Version != SnapshotVersion {
		return fmt.Errorf("noc: snapshot version %q, want %q", s.Version, SnapshotVersion)
	}
	if h := nw.cfg.Hash(); s.ConfigHash != h {
		return fmt.Errorf("noc: snapshot config hash %.12s does not match network config hash %.12s", s.ConfigHash, h)
	}
	if nw.engine.Cycle() != 0 {
		return fmt.Errorf("noc: restore target must be a fresh network (engine at cycle %d)", nw.engine.Cycle())
	}
	if nw.tele != nil {
		return fmt.Errorf("noc: restore onto a telemetry-enabled network is unsupported")
	}
	if len(s.Routers) != len(nw.routers) || len(s.Links) != len(nw.links) ||
		len(s.NICs) != len(nw.nics) || len(s.Sinks) != len(nw.sinks) ||
		len(s.PidSeq) != len(nw.pidSeq) {
		return fmt.Errorf("noc: snapshot shape mismatch (%d/%d routers, %d/%d links, %d/%d nics, %d/%d sinks)",
			len(s.Routers), len(nw.routers), len(s.Links), len(nw.links),
			len(s.NICs), len(nw.nics), len(s.Sinks), len(nw.sinks))
	}
	copy(nw.pidSeq, s.PidSeq)
	numNodes := nw.topo.NumNodes()
	for i, r := range nw.routers {
		n := nw.nics[i]
		if err := r.RestoreState(s.Routers[i], nw.poolFor(nw.shardOfNode(r.ID())), numNodes,
			n.GatherAckFunc(), n.ReduceAckFunc()); err != nil {
			return err
		}
	}
	for i, l := range nw.links {
		l.RestoreState(s.Links[i], nw.poolFor(nw.linkRecs[i].downShard), numNodes)
	}
	for i, n := range nw.nics {
		if err := n.RestoreState(s.NICs[i], numNodes); err != nil {
			return err
		}
	}
	for i, sk := range nw.sinks {
		if err := sk.ej.RestoreState(s.Sinks[i], numNodes); err != nil {
			return err
		}
	}
	nw.engine.RestoreCycle(s.Cycle)
	return nil
}

// poolFor returns the flit pool view owned by shard sh (the root pool on
// sequential networks) — the same pool the shard's components were wired
// with, so restored flits land in the view that will release them.
func (nw *Network) poolFor(sh int) *flit.Pool {
	if nw.pools == nil {
		return nw.pool
	}
	return nw.pools[sh]
}

// Fork clones the network mid-run: a new Network is built from the same
// configuration and the current state is copied onto it in memory. The
// fork owns all of its state — flits are acquired from its own pool,
// destination sets and statistics are deep-copied, station entries are
// re-acked through the fork's own NICs — so the original and the fork
// may run on independently (warm-start reuse: simulate a shared prefix
// once, fork per divergent suffix). Callers that attach drivers or
// controllers must re-attach equivalents to the fork; only fabric state
// is cloned. Close the fork when done (sharded engines own goroutines).
func (nw *Network) Fork() (*Network, error) {
	s, err := nw.Snapshot()
	if err != nil {
		return nil, err
	}
	clone, err := New(nw.cfg)
	if err != nil {
		return nil, err
	}
	if err := clone.Restore(s); err != nil {
		clone.Close()
		return nil, err
	}
	return clone, nil
}

// EncodeSnapshot serializes a snapshot to deterministic JSON (one
// encoding per state, fit for content addressing and golden comparison).
func EncodeSnapshot(s *Snapshot) ([]byte, error) {
	return json.Marshal(s)
}

// DecodeSnapshot parses a snapshot produced by EncodeSnapshot.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("noc: decoding snapshot: %w", err)
	}
	if s.Version != SnapshotVersion {
		return nil, fmt.Errorf("noc: snapshot version %q, want %q", s.Version, SnapshotVersion)
	}
	return &s, nil
}
