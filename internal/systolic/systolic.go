// Package systolic implements the output-stationary (OS) dataflow engine
// of Sec. III-A: per round, input feature-map operands stream from the
// west edge and filter weights from the north edge in a wavefront (Fig. 2),
// every PE performs C·R·R multiply-accumulates, and the partial-convolution
// results return to the global buffer on the east edge (Fig. 4's pipelined
// input/MAC/result schedule) — either as per-PE repetitive-unicast packets
// or via the paper's gather packets.
//
// Streaming and MAC are modeled as a deterministic wavefront (they use
// dedicated systolic forwarding paths, not the router pipeline); the
// result-collection phase is simulated flit by flit on the NoC. This
// matches the structure of Eqs. (2)/(3), where streaming contributes
// C·R·R + T_MAC per round and only collection interacts with the network.
// Streaming energy is accounted as operand-hops for the power model, since
// the paper's Orion traces include the streamed operands (DESIGN.md §3).
package systolic

import (
	"fmt"

	"gathernoc/internal/cnn"
	"gathernoc/internal/flit"
	"gathernoc/internal/nic"
	"gathernoc/internal/noc"
	"gathernoc/internal/stats"
	"gathernoc/internal/topology"
)

// Mode selects the result-collection scheme.
type Mode uint8

// Collection modes.
const (
	// RepetitiveUnicast is the baseline: every PE unicasts its result to
	// the global buffer.
	RepetitiveUnicast Mode = iota + 1
	// GatherMode uses the paper's gather packets: the leftmost PE of each
	// row initiates one, intermediate PEs piggyback (Algorithm 1).
	GatherMode
)

// String names the mode as in the paper ("RU", "Gather").
func (m Mode) String() string {
	switch m {
	case RepetitiveUnicast:
		return "RU"
	case GatherMode:
		return "Gather"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Dataflow selects the systolic mapping of the convolution onto the PE
// array.
type Dataflow uint8

// Dataflows. The zero value selects OutputStationary (the paper's
// evaluation setting).
const (
	// OutputStationary (Sec. III-A): every PE accumulates one output
	// position; all N·M PEs return a result every round.
	OutputStationary Dataflow = iota
	// WeightStationary is the paper's future-work dataflow: weights are
	// pinned in PEs, partial sums cascade down each column, and only the
	// bottom-row PEs emit results — one completed output per column per
	// round. Result collection concentrates in a single row, which is an
	// even more aggressive many-to-one pattern than OS.
	WeightStationary
)

// String names the dataflow.
func (d Dataflow) String() string {
	switch d {
	case OutputStationary:
		return "OS"
	case WeightStationary:
		return "WS"
	default:
		return fmt.Sprintf("Dataflow(%d)", uint8(d))
	}
}

// Config parameterizes one layer run.
type Config struct {
	// Layer is the convolution layer to execute.
	Layer cnn.LayerConfig
	// Mode selects RU or gather collection.
	Mode Mode
	// Dataflow selects the systolic mapping (default OutputStationary).
	Dataflow Dataflow
	// TMAC is the MAC latency in cycles (Table I: 5).
	TMAC int
	// MaxRounds bounds how many rounds are actually simulated; the
	// remaining rounds are extrapolated (every round is statistically
	// identical — same schedule, drained network). 0 means 2.
	MaxRounds int
	// SimulateAllRounds disables extrapolation (exact mode).
	SimulateAllRounds bool
	// FlatDelta disables the per-column δ scaling, applying the network
	// config's base δ uniformly — the literal reading of Table I,
	// exercised by the δ ablation.
	FlatDelta bool
	// SkewPerHop staggers PE completion by this many cycles per hop of
	// systolic distance (row+col). The paper's Eq. (2) models result
	// collection as a synchronized phase, so the default is 0. Positive
	// values model the operand wavefront's completion stagger; the skew
	// ablation shows how the stagger interacts with the buffer's
	// per-packet transaction serialization (a stagger equal to κ aligns a
	// row's arrivals at the buffer and maximizes RU serialization).
	SkewPerHop int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Layer.Validate(); err != nil {
		return err
	}
	switch {
	case c.Mode != RepetitiveUnicast && c.Mode != GatherMode:
		return fmt.Errorf("systolic: invalid mode %d", c.Mode)
	case c.TMAC < 0:
		return fmt.Errorf("systolic: TMAC %d invalid", c.TMAC)
	case c.MaxRounds < 0:
		return fmt.Errorf("systolic: MaxRounds %d invalid", c.MaxRounds)
	case c.SkewPerHop < 0:
		return fmt.Errorf("systolic: SkewPerHop %d invalid", c.SkewPerHop)
	case c.Dataflow != OutputStationary && c.Dataflow != WeightStationary:
		return fmt.Errorf("systolic: invalid dataflow %d", c.Dataflow)
	}
	return nil
}

// totalRounds returns the round count for the configured dataflow on an
// rows×cols array: OS computes N·M outputs per round (⌈P/N⌉·⌈Q/M⌉ rounds,
// Eq. 2/3); WS completes one output per column per round (⌈P·Q/M⌉ rounds).
func (c Config) totalRounds(rows, cols int) int64 {
	if c.Dataflow == WeightStationary {
		total := int64(c.Layer.OutputPositions()) * int64(c.Layer.OutKernels)
		return (total + int64(cols) - 1) / int64(cols)
	}
	return c.Layer.Rounds(rows, cols)
}

// resultsPerRound returns how many results return to the buffer per round.
func (c Config) resultsPerRound(rows, cols int) int {
	if c.Dataflow == WeightStationary {
		return cols
	}
	return rows * cols
}

// computeLatency returns the streaming+compute time of one round before
// results are ready, excluding wavefront skew.
func (c Config) computeLatency(rows int) int {
	if c.Dataflow == WeightStationary {
		// Operands split across the column's rows, then the partial sums
		// cascade down the column before the final accumulation.
		return (c.Layer.MACsPerPE()+rows-1)/rows + rows + c.TMAC
	}
	return c.Layer.MACsPerPE() + c.TMAC
}

// Result summarizes a layer run.
type Result struct {
	// Layer, Mode, Dataflow, Rows, Cols echo the run parameters.
	Layer    cnn.LayerConfig
	Mode     Mode
	Dataflow Dataflow
	Rows     int
	Cols     int

	// TotalRounds is ⌈P/N⌉·⌈Q/M⌉; RoundsSimulated is how many were run
	// on the simulator before extrapolation.
	TotalRounds     int64
	RoundsSimulated int

	// RoundCycles samples the simulated rounds' full latencies
	// (streaming + MAC + collection); CollectionCycles samples just the
	// collection phases.
	RoundCycles      stats.Sample
	CollectionCycles stats.Sample

	// TotalCycles is the extrapolated whole-layer latency
	// (mean round latency × TotalRounds); MeasuredCycles is the simulated
	// portion.
	TotalCycles    int64
	MeasuredCycles int64

	// Activity holds the NoC event counts of the simulated rounds;
	// StreamHops and MACs the corresponding systolic-side counts.
	Activity   noc.Activity
	StreamHops uint64
	MACs       uint64

	// SelfInitiatedGathers and PiggybackAcks describe gather-protocol
	// behaviour; PayloadErrors counts integrity violations (must be 0).
	SelfInitiatedGathers uint64
	PiggybackAcks        uint64
	PayloadErrors        int
}

// ScaleFactor returns TotalRounds / RoundsSimulated for extrapolating
// event counts to the whole layer.
func (r *Result) ScaleFactor() float64 {
	if r.RoundsSimulated == 0 {
		return 0
	}
	return float64(r.TotalRounds) / float64(r.RoundsSimulated)
}

type phase uint8

const (
	phaseStream phase = iota
	phaseCollect
	phaseDone
)

// Controller drives one layer run on a network. Register it as an engine
// ticker (after the network's own components) and call Run, or embed it in
// a larger schedule via Tick/Done.
type Controller struct {
	nw  *noc.Network
	cfg Config

	rows, cols int
	crr        int
	expected   int

	phase      phase
	round      int
	roundStart int64
	roundsToDo int

	// doneAt[i] is the cycle PE i finishes its MACs in the current round.
	doneAt    []int64
	submitted []bool

	collected   int
	seenSeq     map[uint64]bool
	seenSrc     map[topology.NodeID]bool
	payloadSeq  uint64
	payloadErrs int

	res Result
}

// NewController prepares a layer run on nw. It wires the sink callbacks
// and the per-column δ configuration (δ scaled by distance from the row's
// gather initiator, DESIGN.md §3).
func NewController(nw *noc.Network, cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nc := nw.Config()
	if !nc.EastSinks {
		return nil, fmt.Errorf("systolic: network needs east-edge global-buffer sinks")
	}
	c := &Controller{
		nw:   nw,
		cfg:  cfg,
		rows: nc.Rows,
		cols: nc.Cols,
		crr:  cfg.Layer.MACsPerPE(),
	}
	c.expected = cfg.resultsPerRound(c.rows, c.cols)
	c.doneAt = make([]int64, c.rows*c.cols)
	c.submitted = make([]bool, c.rows*c.cols)
	c.seenSeq = make(map[uint64]bool, c.expected)
	c.seenSrc = make(map[topology.NodeID]bool, c.expected)

	total := cfg.totalRounds(c.rows, c.cols)
	sim := cfg.MaxRounds
	if sim == 0 {
		sim = 2
	}
	if cfg.SimulateAllRounds || int64(sim) > total {
		if total > int64(int(^uint(0)>>1)) {
			return nil, fmt.Errorf("systolic: round count %d too large to simulate exactly", total)
		}
		sim = int(total)
	}
	c.roundsToDo = sim

	c.res = Result{
		Layer: cfg.Layer, Mode: cfg.Mode, Dataflow: cfg.Dataflow,
		Rows: c.rows, Cols: c.cols,
		TotalRounds: total, RoundsSimulated: sim,
	}

	// Per-column δ (gather mode): column c waits δ·(1+c) for the packet
	// launched at column 0 before self-initiating.
	if cfg.Mode == GatherMode && !cfg.FlatDelta {
		base := nc.Delta
		for row := 0; row < c.rows; row++ {
			for col := 0; col < c.cols; col++ {
				id := nw.Mesh().ID(topology.Coord{Row: row, Col: col})
				nw.NIC(id).SetDelta(base * int64(1+col))
			}
		}
	}

	for row := 0; row < c.rows; row++ {
		sink := nw.Sink(row)
		sink.OnReceive(c.onPacket)
	}

	c.startRound(0)
	return c, nil
}

// onPacket accounts results arriving at the global buffer and checks
// payload integrity: every PE's payload must arrive exactly once per
// round, whatever mix of gather, self-initiated-gather and unicast packets
// carried it.
func (c *Controller) onPacket(p *nic.ReceivedPacket) {
	for _, pl := range p.Payloads {
		if c.seenSeq[pl.Seq] || c.seenSrc[pl.Src] {
			c.payloadErrs++
			continue
		}
		c.seenSeq[pl.Seq] = true
		c.seenSrc[pl.Src] = true
		c.collected++
	}
	if p.PT == flit.Unicast && len(p.Payloads) == 0 {
		// A result packet without its payload is an integrity failure.
		c.payloadErrs++
	}
}

// Run registers the controller with the network's engine and executes the
// configured rounds, returning the finalized result. Call at most once.
func (c *Controller) Run(maxCycles int64) (*Result, error) {
	c.nw.Engine().AddTicker(c)
	if _, err := c.nw.Engine().RunUntil(c.Done, maxCycles); err != nil {
		return nil, fmt.Errorf("systolic: %s %s on %dx%d: %w",
			c.cfg.Layer.Name, c.cfg.Mode, c.rows, c.cols, err)
	}
	return c.Result(), nil
}

func (c *Controller) startRound(now int64) {
	c.roundStart = now
	c.collected = 0
	clearBoolSlice(c.submitted)
	for k := range c.seenSeq {
		delete(c.seenSeq, k)
	}
	for k := range c.seenSrc {
		delete(c.seenSrc, k)
	}
	// Completion schedule: participating PEs finish the round's
	// streaming+compute time after the round start, optionally staggered
	// by the wavefront skew (SkewPerHop × systolic distance). Under WS
	// only the bottom row emits results; the other PEs are pre-marked
	// submitted so the release loop skips them.
	base := c.cfg.computeLatency(c.rows)
	for row := 0; row < c.rows; row++ {
		for col := 0; col < c.cols; col++ {
			id := int(c.nw.Mesh().ID(topology.Coord{Row: row, Col: col}))
			if c.cfg.Dataflow == WeightStationary && row != c.rows-1 {
				c.submitted[id] = true
				continue
			}
			c.doneAt[id] = now + int64(c.cfg.SkewPerHop*(row+col)+base)
		}
	}
	c.phase = phaseStream
}

// Done reports whether all simulated rounds completed.
func (c *Controller) Done() bool { return c.phase == phaseDone }

// Result finalizes and returns the run summary. Call after Done.
func (c *Controller) Result() *Result {
	r := c.res
	r.Activity = c.nw.Activity()
	mesh := c.nw.Mesh()
	for id := 0; id < mesh.NumNodes(); id++ {
		n := c.nw.NIC(topology.NodeID(id))
		r.SelfInitiatedGathers += n.SelfInitiatedGathers.Value()
		r.PiggybackAcks += n.PiggybackAcks.Value()
	}
	r.PayloadErrors = c.payloadErrs
	// Streaming and compute activity per round. OS: every PE receives
	// C·R·R inputs from the west and C·R·R weights from the north (one
	// hop each) and performs C·R·R MACs. WS: each column consumes C·R·R
	// operands split across its rows and cascades N partial sums; weights
	// stay put.
	var streamPerRound, macsPerRound uint64
	streams := uint64(c.cfg.Layer.Kind.StreamFactor())
	if c.cfg.Dataflow == WeightStationary {
		macsPerRound = uint64(c.crr) * uint64(c.cols)
		streamPerRound = macsPerRound + uint64(c.rows*c.cols)
	} else {
		macsPerRound = uint64(c.crr) * uint64(c.rows*c.cols)
		streamPerRound = streams * macsPerRound
	}
	r.StreamHops = streamPerRound * uint64(r.RoundsSimulated)
	r.MACs = macsPerRound * uint64(r.RoundsSimulated)
	if r.RoundCycles.N() > 0 {
		r.MeasuredCycles = int64(r.RoundCycles.Sum())
		r.TotalCycles = int64(r.RoundCycles.Mean()*float64(r.TotalRounds) + 0.5)
	}
	return &r
}

// Tick advances the controller: it releases results as PEs finish and
// closes rounds when the global buffer has every payload.
func (c *Controller) Tick(cycle int64) {
	switch c.phase {
	case phaseDone:
		return
	case phaseStream, phaseCollect:
		c.releaseResults(cycle)
		if c.collected >= c.expected {
			c.finishRound(cycle)
		}
	}
}

func (c *Controller) releaseResults(cycle int64) {
	mesh := c.nw.Mesh()
	for id := 0; id < mesh.NumNodes(); id++ {
		if c.submitted[id] || c.doneAt[id] > cycle {
			continue
		}
		c.submitted[id] = true
		c.phase = phaseCollect
		node := topology.NodeID(id)
		coord := mesh.Coord(node)
		dst := c.nw.RowSinkID(coord.Row)
		c.payloadSeq++
		p := flit.Payload{
			Seq: c.payloadSeq, Src: node, Dst: dst,
			Bits:       c.nw.Config().PayloadBits,
			Value:      uint64(id)<<32 | uint64(c.round),
			ReadyCycle: cycle,
		}
		nicAt := c.nw.NIC(node)
		switch {
		case c.cfg.Mode == RepetitiveUnicast:
			nicAt.SendUnicastPayload(dst, p)
		case coord.Col == 0:
			nicAt.SendGather(dst, &p)
		default:
			nicAt.SubmitGatherPayload(p)
		}
	}
}

func (c *Controller) finishRound(cycle int64) {
	latency := cycle - c.roundStart
	c.res.RoundCycles.Observe(float64(latency))
	c.res.CollectionCycles.Observe(float64(latency) - float64(c.cfg.computeLatency(c.rows)))
	c.round++
	if c.round >= c.roundsToDo {
		c.phase = phaseDone
		return
	}
	c.startRound(cycle)
}

func clearBoolSlice(s []bool) {
	for i := range s {
		s[i] = false
	}
}
