package systolic

import (
	"testing"

	"gathernoc/internal/noc"
)

func runDataflow(t *testing.T, df Dataflow, mode Mode) *Result {
	t.Helper()
	nw, err := noc.New(noc.DefaultConfig(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewController(nw, Config{
		Layer: smallLayer(), Mode: mode, Dataflow: df, TMAC: 5, MaxRounds: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctl.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWeightStationaryCompletes(t *testing.T) {
	res := runDataflow(t, WeightStationary, GatherMode)
	if res.PayloadErrors != 0 {
		t.Errorf("payload errors = %d", res.PayloadErrors)
	}
	if res.Dataflow != WeightStationary {
		t.Errorf("dataflow = %s", res.Dataflow)
	}
	// WS emits one result per column per round: 3 piggybacks + 1
	// initiator per round on a 4-wide mesh.
	if res.PiggybackAcks != 6 {
		t.Errorf("piggyback acks = %d, want 6 (3 cols x 2 rounds)", res.PiggybackAcks)
	}
	if res.SelfInitiatedGathers != 0 {
		t.Errorf("self-initiated = %d", res.SelfInitiatedGathers)
	}
}

func TestWeightStationaryRoundCount(t *testing.T) {
	layer := smallLayer() // P = 100, Q = 8
	cfg := Config{Layer: layer, Mode: GatherMode, Dataflow: WeightStationary, TMAC: 5}
	// WS: ceil(P*Q / cols) rounds = ceil(800/4) = 200 on a 4-wide mesh.
	if got := cfg.totalRounds(4, 4); got != 200 {
		t.Errorf("totalRounds = %d, want 200", got)
	}
	if got := cfg.resultsPerRound(4, 4); got != 4 {
		t.Errorf("resultsPerRound = %d, want 4", got)
	}
	os := Config{Layer: layer, Mode: GatherMode, TMAC: 5}
	if got := os.totalRounds(4, 4); got != layer.Rounds(4, 4) {
		t.Errorf("OS totalRounds = %d, want %d", got, layer.Rounds(4, 4))
	}
}

func TestWeightStationaryComputeLatency(t *testing.T) {
	layer := smallLayer() // C·R·R = 36
	cfg := Config{Layer: layer, Mode: GatherMode, Dataflow: WeightStationary, TMAC: 5}
	// ceil(36/4) + 4 + 5 = 18.
	if got := cfg.computeLatency(4); got != 18 {
		t.Errorf("computeLatency = %d, want 18", got)
	}
	os := Config{Layer: layer, Mode: GatherMode, TMAC: 5}
	if got := os.computeLatency(4); got != 41 {
		t.Errorf("OS computeLatency = %d, want 41", got)
	}
}

func TestWeightStationaryGatherBeatsRU(t *testing.T) {
	ru := runDataflow(t, WeightStationary, RepetitiveUnicast)
	g := runDataflow(t, WeightStationary, GatherMode)
	if g.RoundCycles.Mean() >= ru.RoundCycles.Mean() {
		t.Errorf("WS gather round %.1f >= RU %.1f",
			g.RoundCycles.Mean(), ru.RoundCycles.Mean())
	}
}

func TestWeightStationaryStreamAccounting(t *testing.T) {
	res := runDataflow(t, WeightStationary, GatherMode)
	crr := uint64(smallLayer().MACsPerPE())
	wantMACs := crr * 4 * 2        // per column, 2 rounds
	wantStream := (crr*4 + 16) * 2 // operands + psum cascade
	if res.MACs != wantMACs {
		t.Errorf("MACs = %d, want %d", res.MACs, wantMACs)
	}
	if res.StreamHops != wantStream {
		t.Errorf("StreamHops = %d, want %d", res.StreamHops, wantStream)
	}
}

func TestDataflowValidate(t *testing.T) {
	cfg := Config{Layer: smallLayer(), Mode: GatherMode, TMAC: 5, Dataflow: Dataflow(9)}
	if err := cfg.Validate(); err == nil {
		t.Error("invalid dataflow accepted")
	}
}

func TestDataflowString(t *testing.T) {
	if OutputStationary.String() != "OS" || WeightStationary.String() != "WS" {
		t.Error("dataflow names wrong")
	}
}
