package systolic

import (
	"testing"

	"gathernoc/internal/analytic"
	"gathernoc/internal/cnn"
	"gathernoc/internal/noc"
)

func smallLayer() cnn.LayerConfig {
	return cnn.LayerConfig{
		Model: "test", Name: "tiny", InChannels: 4, OutKernels: 8, Kernel: 3,
		InputSize: 10, OutputSize: 10, Stride: 1, Pad: 1,
	}
}

func runLayer(t *testing.T, rows, cols int, layer cnn.LayerConfig, mode Mode, rounds int) *Result {
	t.Helper()
	nw, err := noc.New(noc.DefaultConfig(rows, cols))
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewController(nw, Config{Layer: layer, Mode: mode, TMAC: 5, MaxRounds: rounds})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctl.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConfigValidate(t *testing.T) {
	good := Config{Layer: smallLayer(), Mode: GatherMode, TMAC: 5}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Layer: smallLayer(), Mode: 0, TMAC: 5},
		{Layer: smallLayer(), Mode: GatherMode, TMAC: -1},
		{Layer: smallLayer(), Mode: GatherMode, TMAC: 5, MaxRounds: -1},
		{Layer: cnn.LayerConfig{}, Mode: GatherMode, TMAC: 5},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestRoundCompletesRU(t *testing.T) {
	res := runLayer(t, 4, 4, smallLayer(), RepetitiveUnicast, 2)
	if res.RoundsSimulated != 2 || res.RoundCycles.N() != 2 {
		t.Fatalf("rounds simulated = %d (%d samples)", res.RoundsSimulated, res.RoundCycles.N())
	}
	if res.PayloadErrors != 0 {
		t.Errorf("payload errors = %d", res.PayloadErrors)
	}
	// Round latency must exceed the compute floor C·R·R + TMAC.
	floor := float64(smallLayer().MACsPerPE() + 5)
	if res.RoundCycles.Min() <= floor {
		t.Errorf("round latency %v <= compute floor %v", res.RoundCycles.Min(), floor)
	}
	if res.TotalRounds != smallLayer().Rounds(4, 4) {
		t.Errorf("TotalRounds = %d", res.TotalRounds)
	}
}

func TestRoundCompletesGather(t *testing.T) {
	res := runLayer(t, 4, 4, smallLayer(), GatherMode, 2)
	if res.PayloadErrors != 0 {
		t.Errorf("payload errors = %d", res.PayloadErrors)
	}
	// In a clean run every non-initiator PE's payload should piggyback;
	// self-initiations indicate δ misconfiguration.
	if res.SelfInitiatedGathers != 0 {
		t.Errorf("self-initiated gathers = %d, want 0", res.SelfInitiatedGathers)
	}
	// 3 piggybacking columns x 4 rows x 2 rounds.
	if res.PiggybackAcks != 24 {
		t.Errorf("piggyback acks = %d, want 24", res.PiggybackAcks)
	}
}

func TestGatherBeatsRU(t *testing.T) {
	ru := runLayer(t, 4, 4, smallLayer(), RepetitiveUnicast, 2)
	g := runLayer(t, 4, 4, smallLayer(), GatherMode, 2)
	if g.RoundCycles.Mean() >= ru.RoundCycles.Mean() {
		t.Errorf("gather round %.1f >= RU round %.1f",
			g.RoundCycles.Mean(), ru.RoundCycles.Mean())
	}
	if g.TotalCycles >= ru.TotalCycles {
		t.Errorf("gather total %d >= RU total %d", g.TotalCycles, ru.TotalCycles)
	}
}

func TestSimulatedImprovementAtLeastEstimated(t *testing.T) {
	// The paper's Table II observation: the simulated improvement exceeds
	// the ideal-case estimate because congestion penalizes RU more.
	layer := cnn.AlexNetConvLayers()[0]
	ru := runLayer(t, 8, 8, layer, RepetitiveUnicast, 2)
	g := runLayer(t, 8, 8, layer, GatherMode, 2)
	simImp := float64(ru.TotalCycles-g.TotalCycles) / float64(g.TotalCycles) * 100

	est := analytic.Params{
		N: 8, M: 8, Kappa: 4, UnicastFlits: 2, GatherFlits: 4, Eta: 8,
		TMAC: 5, CRR: layer.MACsPerPE(),
	}
	if simImp <= 0 {
		t.Fatalf("simulated improvement %.2f%% not positive", simImp)
	}
	if simImp < est.Improvement() {
		t.Errorf("simulated %.2f%% < estimated %.2f%%", simImp, est.Improvement())
	}
}

func TestRoundsAreIdentical(t *testing.T) {
	// Rounds are serialized and the network drains between them, so every
	// simulated round should take exactly as long as the first —
	// justifying extrapolation.
	res := runLayer(t, 4, 4, smallLayer(), GatherMode, 4)
	if res.RoundCycles.Min() != res.RoundCycles.Max() {
		t.Errorf("round latencies vary: min %v max %v",
			res.RoundCycles.Min(), res.RoundCycles.Max())
	}
}

func TestExactModeSmallLayer(t *testing.T) {
	layer := cnn.LayerConfig{
		Model: "test", Name: "micro", InChannels: 1, OutKernels: 4, Kernel: 2,
		InputSize: 5, OutputSize: 4, Stride: 1, Pad: 0,
	}
	nw, err := noc.New(noc.DefaultConfig(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewController(nw, Config{
		Layer: layer, Mode: GatherMode, TMAC: 5, SimulateAllRounds: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctl.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if int64(res.RoundsSimulated) != res.TotalRounds {
		t.Errorf("simulated %d of %d rounds in exact mode", res.RoundsSimulated, res.TotalRounds)
	}
	if res.MeasuredCycles != res.TotalCycles {
		t.Errorf("exact mode measured %d != total %d", res.MeasuredCycles, res.TotalCycles)
	}
}

func TestStreamAndMACAccounting(t *testing.T) {
	layer := smallLayer()
	res := runLayer(t, 4, 4, layer, GatherMode, 2)
	perRound := uint64(layer.MACsPerPE()) * 16
	if res.MACs != perRound*2 {
		t.Errorf("MACs = %d, want %d", res.MACs, perRound*2)
	}
	if res.StreamHops != 2*perRound*2 {
		t.Errorf("StreamHops = %d, want %d", res.StreamHops, 4*perRound)
	}
}

func TestControllerRequiresSinks(t *testing.T) {
	cfg := noc.DefaultConfig(4, 4)
	cfg.EastSinks = false
	nw, err := noc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewController(nw, Config{Layer: smallLayer(), Mode: GatherMode, TMAC: 5}); err == nil {
		t.Error("controller accepted sink-less network")
	}
}

func TestModeString(t *testing.T) {
	if RepetitiveUnicast.String() != "RU" || GatherMode.String() != "Gather" {
		t.Error("mode names wrong")
	}
}
