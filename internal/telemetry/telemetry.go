// Package telemetry is the simulator's observability layer (DESIGN.md
// §11): an epoch metrics collector that snapshots deltas of the counters
// the components already keep into preallocated per-shard time-series
// rings, and a flit-lifecycle tracer that records sampled per-packet
// pipeline events into bounded per-shard buffers. Both are off by default
// and purely observational — probes read component state and write only
// their own buffers, so enabling telemetry never changes a schedule, and
// a disabled network carries no probe at all (every hook is behind a
// nil-check).
//
// Ownership follows the sharded engine's partition (DESIGN.md §9): each
// shard gets its own Probe, written only by the goroutine that ticks and
// commits that shard, plus one serial probe for events emitted on the
// serial sub-phase (workload phase boundaries). The epoch snapshot runs
// as the last committer of each shard, after every counter write the
// shard performs that cycle, so the merged series is identical for every
// shard count, sequential engine included.
package telemetry

import (
	"fmt"
	"sort"

	"gathernoc/internal/flit"
)

// Config enables and sizes the telemetry subsystem. The zero value
// disables everything; a Config reaches the network through
// noc.Config.Telemetry.
type Config struct {
	// Epoch is the metrics snapshot period in cycles; <= 0 disables the
	// epoch collector (the tracer may still run).
	Epoch int64
	// TraceSample enables the flit-lifecycle tracer, sampling one in N
	// packets (by a hash of the packet id, so the sampled set is
	// identical for every shard count); 0 disables tracing, 1 traces
	// every packet.
	TraceSample uint64
	// MaxEpochs bounds each probe's time-series ring (0 = 1024 epochs,
	// i.e. 256K cycles of history at the default period); older epochs
	// are overwritten, keeping the most recent window. The ring is
	// preallocated at Start and costs 8 bytes per epoch per field, so
	// large fabrics with long windows should size this deliberately.
	MaxEpochs int
	// MaxEvents bounds each probe's event buffer (0 = 65536 events);
	// events past the bound are dropped and counted in
	// Report.DroppedEvents.
	MaxEvents int
}

// DefaultConfig returns the default-sampling telemetry configuration the
// CLIs enable: 256-cycle epochs, one traced packet in 64.
func DefaultConfig() Config {
	return Config{Epoch: 256, TraceSample: 64}
}

// Enabled reports whether the config turns any telemetry on.
func (c Config) Enabled() bool { return c.Epoch > 0 || c.TraceSample > 0 }

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.MaxEpochs < 0:
		return fmt.Errorf("telemetry: MaxEpochs must be >= 0, got %d", c.MaxEpochs)
	case c.MaxEvents < 0:
		return fmt.Errorf("telemetry: MaxEvents must be >= 0, got %d", c.MaxEvents)
	}
	return nil
}

func (c Config) maxEpochs() int {
	if c.MaxEpochs > 0 {
		return c.MaxEpochs
	}
	return 1024
}

func (c Config) maxEvents() int {
	if c.MaxEvents > 0 {
		return c.MaxEvents
	}
	return 65536
}

// EventKind identifies one step of a packet's lifecycle (or a workload
// phase boundary). The numeric order is part of the canonical event sort,
// so kinds follow pipeline order.
type EventKind uint8

const (
	// EvInject: the packet entered its source injection queue (back-dated
	// from the ejected packet's InjectCycle; Loc = source node, Aux =
	// destination node).
	EvInject EventKind = iota + 1
	// EvNetwork: the head flit left the NIC into the router (back-dated;
	// Loc = source node).
	EvNetwork
	// EvRC: route computation completed for the head at a router
	// (Loc = router node).
	EvRC
	// EvVA: the packet secured downstream VCs on every branch
	// (Loc = router node).
	EvVA
	// EvSA: the head flit won switch allocation and crossed toward an
	// output (Loc = router node, Aux = output port).
	EvSA
	// EvLink: a link delivered the head flit downstream (Loc = the
	// downstream endpoint's node or sink id).
	EvLink
	// EvHead: the head flit reached its ejection point (back-dated;
	// Loc = ejector id).
	EvHead
	// EvEject: the tail drained and the packet completed reassembly
	// (Loc = ejector id, Aux = hop count).
	EvEject
	// EvGatherUpload: a passing gather packet picked up a payload
	// (Loc = router node, Aux = payload source node).
	EvGatherUpload
	// EvReduceMerge: an INA merge folded an operand into a passing
	// accumulate packet (Loc = router node, Aux = operand source node).
	EvReduceMerge
	// EvPhaseStart / EvPhaseInjected / EvPhaseDrained are workload phase
	// boundaries emitted on the serial sub-phase (Loc = job index,
	// Aux = phase index; Packet = 0).
	EvPhaseStart
	EvPhaseInjected
	EvPhaseDrained
	// EvFaultDrop: fault injection dropped a packet at a link (Loc =
	// downstream node, Aux = VC). Emitted on the sampled head only.
	EvFaultDrop
	// EvFaultCorrupt: fault injection corrupted a packet at a link
	// (Loc = downstream node, Aux = VC); the receiver will discard it.
	EvFaultCorrupt
	// EvRetransmit: a NIC's end-to-end reliability layer re-sent a
	// timed-out payload (Loc = source node, Aux = payload Seq; Packet =
	// the new packet's id).
	EvRetransmit
	// EvStall: the stall watchdog fired (serial probe; Loc = 0, Aux =
	// the no-progress window in cycles; Packet = 0).
	EvStall
)

// String returns the kind's Chrome-trace stage label.
func (k EventKind) String() string {
	switch k {
	case EvInject:
		return "inject"
	case EvNetwork:
		return "network"
	case EvRC:
		return "rc"
	case EvVA:
		return "va"
	case EvSA:
		return "sa"
	case EvLink:
		return "link"
	case EvHead:
		return "head"
	case EvEject:
		return "eject"
	case EvGatherUpload:
		return "gather-upload"
	case EvReduceMerge:
		return "ina-merge"
	case EvPhaseStart:
		return "phase-start"
	case EvPhaseInjected:
		return "phase-injected"
	case EvPhaseDrained:
		return "phase-drained"
	case EvFaultDrop:
		return "fault-drop"
	case EvFaultCorrupt:
		return "fault-corrupt"
	case EvRetransmit:
		return "retransmit"
	case EvStall:
		return "stall"
	}
	return "unknown"
}

// Event is one recorded lifecycle step. Events are fixed-size values so
// the per-probe buffers are flat preallocated arrays.
type Event struct {
	// Cycle is when the step happened (ejection-side steps of a packet
	// are back-dated from the timestamps the flits carry).
	Cycle int64
	// Packet is the network-unique packet id (0 for phase events).
	Packet uint64
	// Tag carries the workload job/phase (zero for untagged traffic).
	Tag flit.Tag
	// Kind is the lifecycle step.
	Kind EventKind
	// Loc locates the step: a node id, an ejector/sink id, or a job
	// index for phase events.
	Loc int32
	// Aux is kind-specific (see the EventKind docs).
	Aux int64
}

// Field names one metric of a source. Gauge fields snapshot the current
// value each epoch; non-gauge fields snapshot the delta since the
// previous epoch.
type Field struct {
	Name  string
	Gauge bool
}

// SourceMeta identifies one metrics source in exports: a router, link,
// NIC, sink or pool, with its grid position where applicable (Row/Col are
// -1 for sources without one).
type SourceMeta struct {
	Kind string
	ID   int
	Name string
	Row  int
	Col  int
}

// ReadFn writes the source's current cumulative counter values into dst
// (len(dst) == len(fields)). It runs on the owning shard's goroutine at
// epoch boundaries, after all of that shard's writes for the cycle.
type ReadFn func(dst []int64)

type source struct {
	meta   SourceMeta
	fields []Field
	read   ReadFn
	prev   []int64
	cur    []int64
}

// Probe is the single-writer recording endpoint for one shard (or the
// serial sub-phase). Components hold a *Probe and guard every hook with a
// nil-check, so a telemetry-off network pays nothing.
type Probe struct {
	c       *Collector
	sources []source

	// Event buffer: a flat preallocated slice, appended until full.
	events  []Event
	dropped uint64

	// Epoch ring (see Collector.Harvest for the merge):
	stride    int     // fields across all sources
	vals      []int64 // maxEpochs * stride, slot-major
	epochIdx  []int64 // epoch index per slot
	epochEnd  []int64 // inclusive end cycle per slot
	head, cnt int
	lastEnd   int64 // last snapshotted end cycle (-1 before the first)
}

// Sampled reports whether packet id pid is in the traced sample. The
// predicate hashes the id, so it is independent of the shard count (ids
// are striped per NIC) and spreads the sample across sources.
func (p *Probe) Sampled(pid uint64) bool {
	n := p.c.cfg.TraceSample
	if n <= 1 {
		return n == 1
	}
	x := pid * 0x9E3779B97F4A7C15
	x ^= x >> 33
	return x%n == 0
}

// Emit records one event; when the buffer is full the event is dropped
// and counted. Callers must hold the probe's single-writer role (the
// owning shard's goroutine, or the serial sub-phase).
func (p *Probe) Emit(ev Event) {
	if len(p.events) == cap(p.events) {
		p.dropped++
		return
	}
	p.events = append(p.events, ev)
}

// snapshot records one epoch row: every source's counters are read and
// delta-ed (or copied, for gauges) into the next ring slot.
func (p *Probe) snapshot(epoch, endCycle int64) {
	if p.stride == 0 {
		p.lastEnd = endCycle
		return
	}
	slot := p.head
	p.head++
	if p.head == len(p.epochIdx) {
		p.head = 0
	}
	if p.cnt < len(p.epochIdx) {
		p.cnt++
	}
	p.epochIdx[slot] = epoch
	p.epochEnd[slot] = endCycle
	base := slot * p.stride
	off := 0
	for i := range p.sources {
		s := &p.sources[i]
		s.read(s.cur)
		for j := range s.fields {
			v := s.cur[j]
			if s.fields[j].Gauge {
				p.vals[base+off] = v
			} else {
				p.vals[base+off] = v - s.prev[j]
				s.prev[j] = v
			}
			off++
		}
	}
	p.lastEnd = endCycle
}

// EpochCommitter is the per-shard component that triggers epoch
// snapshots. The network registers it as the last committer of its shard,
// so it observes every counter the shard wrote that cycle. It
// intentionally does not implement sim.Idler: the sleep/wake engine must
// evaluate it every cycle or epoch boundaries would be missed.
type EpochCommitter struct {
	p     *Probe
	epoch int64
}

// Commit snapshots an epoch row when cycle is the epoch's last cycle.
func (ec *EpochCommitter) Commit(cycle int64) {
	if (cycle+1)%ec.epoch == 0 {
		ec.p.snapshot((cycle+1)/ec.epoch-1, cycle)
	}
}

// Collector owns the per-shard probes and merges them at harvest.
// Construction order: New, AddSource/ShardProbe/SerialProbe wiring, then
// Start (which preallocates every ring) before the first cycle runs.
type Collector struct {
	cfg    Config
	probes []*Probe // [0..shards-1] shard probes, [shards] serial
}

// New returns a collector for a fabric partitioned into shards (>= 1;
// sequential networks pass 1).
func New(cfg Config, shards int) *Collector {
	if shards < 1 {
		shards = 1
	}
	c := &Collector{cfg: cfg, probes: make([]*Probe, shards+1)}
	for i := range c.probes {
		c.probes[i] = &Probe{c: c}
	}
	return c
}

// Config returns the collector's configuration.
func (c *Collector) Config() Config { return c.cfg }

// Tracing reports whether the flit-lifecycle tracer is on.
func (c *Collector) Tracing() bool { return c.cfg.TraceSample > 0 }

// ShardProbe returns shard s's single-writer probe.
func (c *Collector) ShardProbe(s int) *Probe { return c.probes[s] }

// SerialProbe returns the probe for events emitted on the serial
// sub-phase (workload phase boundaries), where cross-shard order is
// already deterministic.
func (c *Collector) SerialProbe() *Probe { return c.probes[len(c.probes)-1] }

// AddSource registers one metrics source with shard s's probe. Must be
// called before Start; read runs on s's goroutine at epoch boundaries.
func (c *Collector) AddSource(s int, meta SourceMeta, fields []Field, read ReadFn) {
	p := c.probes[s]
	p.sources = append(p.sources, source{
		meta:   meta,
		fields: fields,
		read:   read,
		prev:   make([]int64, len(fields)),
		cur:    make([]int64, len(fields)),
	})
}

// EpochCommitter returns shard s's snapshot trigger, or nil when the
// epoch collector is disabled. The network registers it after the shard's
// links so the snapshot sees the cycle's complete counter state.
func (c *Collector) EpochCommitter(s int) *EpochCommitter {
	if c.cfg.Epoch <= 0 {
		return nil
	}
	return &EpochCommitter{p: c.probes[s], epoch: c.cfg.Epoch}
}

// Start preallocates every probe's rings. Call once, after all sources
// are registered and before the first cycle; from then on telemetry
// allocates nothing.
func (c *Collector) Start() {
	for _, p := range c.probes {
		p.lastEnd = -1
		if c.cfg.TraceSample > 0 {
			p.events = make([]Event, 0, c.cfg.maxEvents())
		}
		if c.cfg.Epoch > 0 {
			for i := range p.sources {
				p.stride += len(p.sources[i].fields)
			}
			if p.stride > 0 {
				n := c.cfg.maxEpochs()
				p.vals = make([]int64, n*p.stride)
				p.epochIdx = make([]int64, n)
				p.epochEnd = make([]int64, n)
			}
		}
	}
}

// SourceSeries is one source's merged epoch series: Values[i] holds the
// source's field values for the i-th retained epoch (aligned with
// Report.EpochIndex).
type SourceSeries struct {
	Meta   SourceMeta
	Fields []Field
	Values [][]int64
}

// Report is a harvested run's telemetry: the merged epoch series in
// canonical source order and the canonically sorted trace events.
type Report struct {
	// Epoch is the snapshot period; 0 when the epoch collector was off.
	Epoch int64
	// EpochIndex[i] is the i-th retained epoch's index; EpochEnd[i] its
	// inclusive end cycle (the final epoch may be partial).
	EpochIndex []int64
	EpochEnd   []int64
	// Sources holds one series per registered source, sorted by
	// (kind, id, first field name).
	Sources []SourceSeries
	// Events holds every recorded trace event, sorted by
	// (cycle, packet, kind, loc, aux) — identical for every shard count
	// as long as no probe overflowed.
	Events []Event
	// DroppedEvents counts events lost to full buffers (overflowing runs
	// are still usable but no longer shard-count-invariant).
	DroppedEvents uint64
}

// Harvest flushes a final partial epoch (when cycles ran past the last
// boundary), merges the per-shard rings in canonical order, and sorts the
// event streams. Call once, after the run, from the coordinating
// goroutine. finalCycle is the engine's completed-cycle count.
func (c *Collector) Harvest(finalCycle int64) *Report {
	r := &Report{Epoch: c.cfg.Epoch}
	if c.cfg.Epoch > 0 && finalCycle > 0 {
		for _, p := range c.probes {
			if p.lastEnd < finalCycle-1 {
				p.snapshot((finalCycle-1)/c.cfg.Epoch, finalCycle-1)
			}
		}
	}

	// Epoch axis: every snapping probe recorded the same slots; take the
	// axis from the first probe with a ring.
	for _, p := range c.probes {
		if p.stride == 0 {
			continue
		}
		r.EpochIndex = make([]int64, p.cnt)
		r.EpochEnd = make([]int64, p.cnt)
		for i := 0; i < p.cnt; i++ {
			slot := p.slotAt(i)
			r.EpochIndex[i] = p.epochIdx[slot]
			r.EpochEnd[i] = p.epochEnd[slot]
		}
		break
	}

	for _, p := range c.probes {
		base := 0
		for i := range p.sources {
			s := &p.sources[i]
			ss := SourceSeries{Meta: s.meta, Fields: s.fields, Values: make([][]int64, p.cnt)}
			for e := 0; e < p.cnt; e++ {
				slot := p.slotAt(e)
				row := p.vals[slot*p.stride+base : slot*p.stride+base+len(s.fields)]
				ss.Values[e] = row
			}
			r.Sources = append(r.Sources, ss)
			base += len(s.fields)
		}
		r.Events = append(r.Events, p.events...)
		r.DroppedEvents += p.dropped
	}
	sort.Slice(r.Sources, func(i, j int) bool {
		a, b := &r.Sources[i], &r.Sources[j]
		if a.Meta.Kind != b.Meta.Kind {
			return a.Meta.Kind < b.Meta.Kind
		}
		if a.Meta.ID != b.Meta.ID {
			return a.Meta.ID < b.Meta.ID
		}
		return firstField(a.Fields) < firstField(b.Fields)
	})
	sort.Slice(r.Events, func(i, j int) bool {
		a, b := &r.Events[i], &r.Events[j]
		if a.Cycle != b.Cycle {
			return a.Cycle < b.Cycle
		}
		if a.Packet != b.Packet {
			return a.Packet < b.Packet
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Loc != b.Loc {
			return a.Loc < b.Loc
		}
		return a.Aux < b.Aux
	})
	return r
}

// slotAt translates retained-epoch index i (0 = oldest) to a ring slot.
func (p *Probe) slotAt(i int) int {
	slot := p.head - p.cnt + i
	if slot < 0 {
		slot += len(p.epochIdx)
	}
	return slot
}

func firstField(fs []Field) string {
	if len(fs) == 0 {
		return ""
	}
	return fs[0].Name
}
