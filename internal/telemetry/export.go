// Export formats: a long-form CSV for the epoch metrics (one row per
// epoch x source x field — the format gatherviz renders heatmaps from)
// and Chrome Trace Event JSON for the lifecycle events, loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing.
package telemetry

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// MetricsCSVHeader is the column layout WriteMetricsCSV emits.
var MetricsCSVHeader = []string{"epoch", "cycle", "kind", "id", "name", "row", "col", "field", "value", "per_cycle"}

// WriteMetricsCSV writes the epoch series in long form: one row per
// (epoch, source, field). The per_cycle column divides delta fields by
// the epoch's actual cycle span (the last epoch may be partial), which
// for links is the utilization in flits/cycle; gauge fields leave it
// empty.
func (r *Report) WriteMetricsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(MetricsCSVHeader); err != nil {
		return err
	}
	rec := make([]string, len(MetricsCSVHeader))
	for e := range r.EpochIndex {
		span := r.epochSpan(e)
		for _, ss := range r.Sources {
			for fi, f := range ss.Fields {
				v := ss.Values[e][fi]
				rec[0] = strconv.FormatInt(r.EpochIndex[e], 10)
				rec[1] = strconv.FormatInt(r.EpochEnd[e], 10)
				rec[2] = ss.Meta.Kind
				rec[3] = strconv.Itoa(ss.Meta.ID)
				rec[4] = ss.Meta.Name
				rec[5] = strconv.Itoa(ss.Meta.Row)
				rec[6] = strconv.Itoa(ss.Meta.Col)
				rec[7] = f.Name
				rec[8] = strconv.FormatInt(v, 10)
				rec[9] = ""
				if !f.Gauge && span > 0 {
					rec[9] = strconv.FormatFloat(float64(v)/float64(span), 'f', 4, 64)
				}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// epochSpan returns the cycle count epoch e covers.
func (r *Report) epochSpan(e int) int64 {
	if e == 0 {
		return r.EpochEnd[0] + 1 - r.EpochIndex[0]*r.Epoch
	}
	return r.EpochEnd[e] - r.EpochEnd[e-1]
}

// MetricPoint is one parsed row of the metrics CSV (see ReadMetricsCSV).
type MetricPoint struct {
	Epoch    int64
	Cycle    int64
	Kind     string
	ID       int
	Name     string
	Row, Col int
	Field    string
	Value    int64
}

// ReadMetricsCSV parses a WriteMetricsCSV stream back into points;
// gatherviz consumes it to render congestion heatmaps.
func ReadMetricsCSV(rd io.Reader) ([]MetricPoint, error) {
	cr := csv.NewReader(rd)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("telemetry: empty metrics CSV")
	}
	if len(recs[0]) < 9 || recs[0][0] != "epoch" {
		return nil, fmt.Errorf("telemetry: not a metrics CSV (header %q)", recs[0])
	}
	pts := make([]MetricPoint, 0, len(recs)-1)
	for _, rec := range recs[1:] {
		var p MetricPoint
		p.Epoch, _ = strconv.ParseInt(rec[0], 10, 64)
		p.Cycle, _ = strconv.ParseInt(rec[1], 10, 64)
		p.Kind = rec[2]
		p.ID, _ = strconv.Atoi(rec[3])
		p.Name = rec[4]
		p.Row, _ = strconv.Atoi(rec[5])
		p.Col, _ = strconv.Atoi(rec[6])
		p.Field = rec[7]
		p.Value, _ = strconv.ParseInt(rec[8], 10, 64)
		pts = append(pts, p)
	}
	return pts, nil
}

// traceEvent is one Chrome Trace Event (the JSON array format). Cycles
// map 1:1 onto the format's microsecond timestamps, so one Perfetto
// "us" reads as one simulated cycle.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	ID   string         `json:"id,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Track layout: pid = workload job index + 1 (0 for untagged traffic),
// tid 0 = the job's schedule track (phase spans), tid = node+1 = that
// node's pipeline-stage slices.
const scheduleTid = 0

// WriteChromeTrace writes the event stream as Chrome Trace Event JSON:
// per-packet async spans (inject to eject) bracketing per-stage "X"
// slices on the node tracks, instant events for gather uploads and INA
// merges, and per-job phase spans on each job's schedule track, all
// tagged with job/phase args.
func (r *Report) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)

	var out []traceEvent
	jobs := map[int64]bool{}
	nodes := map[int64]bool{}
	record := func(ev traceEvent) {
		jobs[ev.Pid] = true
		if ev.Tid != scheduleTid {
			nodes[ev.Tid] = true
		}
		out = append(out, ev)
	}

	// Per-packet spans: events are sorted by (cycle, packet, ...), so
	// regroup by packet id first, preserving cycle order within each.
	byPkt := map[uint64][]Event{}
	var order []uint64
	phases := map[[2]int64][3]int64{} // (job, phase) -> start/injected/drained cycles
	for _, ev := range r.Events {
		switch ev.Kind {
		case EvPhaseStart, EvPhaseInjected, EvPhaseDrained:
			key := [2]int64{int64(ev.Loc), ev.Aux}
			tl := phases[key]
			tl[int(ev.Kind-EvPhaseStart)] = ev.Cycle + 1 // +1 so cycle 0 stays distinguishable
			phases[key] = tl
		default:
			if _, seen := byPkt[ev.Packet]; !seen {
				order = append(order, ev.Packet)
			}
			byPkt[ev.Packet] = append(byPkt[ev.Packet], ev)
		}
	}

	for _, pid := range order {
		evs := byPkt[pid]
		first, last := evs[0], evs[len(evs)-1]
		// The tag's raw job field (job index + 1, 0 = untagged) is the
		// process id, matching the phase spans' job+1 tracks.
		pidTrack := int64(first.Tag.Job())
		id := strconv.FormatUint(pid, 10)
		args := map[string]any{
			"packet": pid,
			// Job is the scheduler's job index (-1 for untagged traffic;
			// the tag's job field is offset by one).
			"job":   int64(first.Tag.Job()) - 1,
			"phase": int64(first.Tag.Phase()),
		}
		if first.Kind == EvInject {
			args["src"] = first.Loc
			args["dst"] = first.Aux
		}
		record(traceEvent{Name: "packet", Cat: "packet", Ph: "b", Ts: first.Cycle,
			Pid: pidTrack, Tid: int64(first.Loc) + 1, ID: id, Args: args})
		for i, ev := range evs {
			switch ev.Kind {
			case EvGatherUpload, EvReduceMerge:
				record(traceEvent{Name: ev.Kind.String(), Cat: "collective", Ph: "i", Ts: ev.Cycle,
					Pid: pidTrack, Tid: int64(ev.Loc) + 1, S: "t",
					Args: map[string]any{"packet": pid, "operand_src": ev.Aux}})
				continue
			case EvEject:
				continue
			}
			// Stage slice: from this step to the packet's next step.
			dur := int64(1)
			if i+1 < len(evs) {
				dur = evs[i+1].Cycle - ev.Cycle
			}
			if dur < 1 {
				dur = 1
			}
			record(traceEvent{Name: ev.Kind.String(), Cat: "stage", Ph: "X", Ts: ev.Cycle, Dur: dur,
				Pid: pidTrack, Tid: int64(ev.Loc) + 1,
				Args: map[string]any{"packet": pid}})
		}
		endArgs := map[string]any{"packet": pid, "latency": last.Cycle - first.Cycle}
		if last.Kind == EvEject {
			endArgs["hops"] = last.Aux
		}
		record(traceEvent{Name: "packet", Cat: "packet", Ph: "e", Ts: last.Cycle,
			Pid: pidTrack, Tid: int64(last.Loc) + 1, ID: id, Args: endArgs})
	}

	phaseKeys := make([][2]int64, 0, len(phases))
	for key := range phases {
		phaseKeys = append(phaseKeys, key)
	}
	sort.Slice(phaseKeys, func(i, j int) bool {
		if phaseKeys[i][0] != phaseKeys[j][0] {
			return phaseKeys[i][0] < phaseKeys[j][0]
		}
		return phaseKeys[i][1] < phaseKeys[j][1]
	})
	for _, key := range phaseKeys {
		tl := phases[key]
		job, phase := key[0], key[1]
		start, injected, drained := tl[0]-1, tl[1]-1, tl[2]-1
		if tl[0] == 0 {
			continue
		}
		end := drained
		if tl[2] == 0 {
			end = start // never drained: zero-length marker
		}
		args := map[string]any{"job": job, "phase": phase}
		if tl[1] != 0 {
			args["injected_cycle"] = injected
		}
		record(traceEvent{Name: fmt.Sprintf("job%d/phase%d", job, phase), Cat: "phase",
			Ph: "X", Ts: start, Dur: max64(end-start, 1), Pid: job + 1, Tid: scheduleTid, Args: args})
	}

	// Metadata: name the job processes and node threads, in sorted order
	// so the output is byte-deterministic.
	jobIDs := sortedKeys(jobs)
	nodeIDs := sortedKeys(nodes)
	for _, pid := range jobIDs {
		name := fmt.Sprintf("job %d", pid-1)
		if pid == 0 {
			name = "untagged"
		}
		out = append(out, traceEvent{Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name}})
		out = append(out, traceEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: scheduleTid,
			Args: map[string]any{"name": "schedule"}})
	}
	for _, pid := range jobIDs {
		for _, tid := range nodeIDs {
			out = append(out, traceEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": fmt.Sprintf("node %d", tid-1)}})
		}
	}

	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	for i := range out {
		if i > 0 {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		b, err := json.Marshal(&out[i])
		if err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func sortedKeys(m map[int64]bool) []int64 {
	ks := make([]int64, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}
