package telemetry

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"gathernoc/internal/flit"
)

func TestConfigEnabled(t *testing.T) {
	cases := []struct {
		cfg  Config
		want bool
	}{
		{Config{}, false},
		{Config{Epoch: 256}, true},
		{Config{TraceSample: 1}, true},
		{Config{Epoch: 64, TraceSample: 8}, true},
		{Config{MaxEpochs: 16, MaxEvents: 16}, false}, // bounds alone enable nothing
	}
	for _, c := range cases {
		if got := c.cfg.Enabled(); got != c.want {
			t.Errorf("%+v Enabled() = %v, want %v", c.cfg, got, c.want)
		}
	}
	if DefaultConfig() != (Config{Epoch: 256, TraceSample: 64}) {
		t.Errorf("DefaultConfig() = %+v", DefaultConfig())
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Epoch: 256, TraceSample: 64}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := (Config{MaxEpochs: -1}).Validate(); err == nil {
		t.Error("negative MaxEpochs accepted")
	}
	if err := (Config{MaxEvents: -1}).Validate(); err == nil {
		t.Error("negative MaxEvents accepted")
	}
}

// TestSampledSpreadsAcrossStripedIDs pins the hash-based sampling
// predicate: packet ids are striped per NIC (node i issues i, i+64,
// i+128, ...), so a naive pid%N==0 would sample one node's packets only.
// The hash must instead pick roughly 1/N of each node's stripe.
func TestSampledSpreadsAcrossStripedIDs(t *testing.T) {
	c := New(Config{TraceSample: 16}, 1)
	p := c.ShardProbe(0)
	const nodes, perNode = 64, 256
	nodesHit := 0
	total := 0
	for n := 0; n < nodes; n++ {
		hits := 0
		for k := 0; k < perNode; k++ {
			if p.Sampled(uint64(n + k*nodes)) {
				hits++
			}
		}
		if hits > 0 {
			nodesHit++
		}
		total += hits
	}
	if nodesHit < nodes/2 {
		t.Errorf("sample concentrated: only %d of %d nodes have sampled packets", nodesHit, nodes)
	}
	want := nodes * perNode / 16
	if total < want/2 || total > want*2 {
		t.Errorf("sample rate off: %d of %d sampled, want ~%d", total, nodes*perNode, want)
	}
}

func TestSampledEdgeRates(t *testing.T) {
	all := New(Config{TraceSample: 1}, 1).ShardProbe(0)
	none := New(Config{TraceSample: 0}, 1).ShardProbe(0)
	for pid := uint64(0); pid < 100; pid++ {
		if !all.Sampled(pid) {
			t.Fatalf("TraceSample=1 skipped packet %d", pid)
		}
		if none.Sampled(pid) {
			t.Fatalf("TraceSample=0 sampled packet %d", pid)
		}
	}
}

func TestEmitOverflowCountsDrops(t *testing.T) {
	c := New(Config{TraceSample: 1, MaxEvents: 4}, 1)
	c.Start()
	p := c.ShardProbe(0)
	for i := 0; i < 10; i++ {
		p.Emit(Event{Cycle: int64(i), Packet: uint64(i), Kind: EvInject})
	}
	rep := c.Harvest(10)
	if len(rep.Events) != 4 {
		t.Errorf("kept %d events, want 4", len(rep.Events))
	}
	if rep.DroppedEvents != 6 {
		t.Errorf("DroppedEvents = %d, want 6", rep.DroppedEvents)
	}
}

// collectorWithSource builds a one-shard collector with a single
// two-field source (one delta counter, one gauge) backed by the returned
// slice: [0] is the cumulative counter, [1] the gauge.
func collectorWithSource(cfg Config) (*Collector, []int64) {
	c := New(cfg, 1)
	state := make([]int64, 2)
	c.AddSource(0, SourceMeta{Kind: "router", ID: 3, Name: "r3", Row: 0, Col: 3},
		[]Field{{Name: "writes"}, {Name: "occupancy", Gauge: true}},
		func(dst []int64) { copy(dst, state) })
	c.Start()
	return c, state
}

// TestSnapshotDeltaVsGauge drives epoch boundaries by hand and checks the
// delta field reports per-epoch differences while the gauge field reports
// the instantaneous value.
func TestSnapshotDeltaVsGauge(t *testing.T) {
	c, state := collectorWithSource(Config{Epoch: 4})
	ec := c.EpochCommitter(0)
	for cycle := int64(0); cycle < 12; cycle++ {
		state[0] += 2 // counter advances 2/cycle => 8/epoch
		state[1] = cycle
		ec.Commit(cycle)
	}
	rep := c.Harvest(12)
	if len(rep.EpochIndex) != 3 {
		t.Fatalf("retained %d epochs, want 3", len(rep.EpochIndex))
	}
	ss := rep.Sources[0]
	for e := 0; e < 3; e++ {
		if rep.EpochIndex[e] != int64(e) || rep.EpochEnd[e] != int64(e*4+3) {
			t.Errorf("epoch %d axis = (%d, %d), want (%d, %d)",
				e, rep.EpochIndex[e], rep.EpochEnd[e], e, e*4+3)
		}
		if ss.Values[e][0] != 8 {
			t.Errorf("epoch %d delta = %d, want 8", e, ss.Values[e][0])
		}
		if ss.Values[e][1] != int64(e*4+3) {
			t.Errorf("epoch %d gauge = %d, want %d", e, ss.Values[e][1], e*4+3)
		}
	}
}

// TestEpochRingWrap bounds the series: with MaxEpochs=2 only the newest
// two epochs survive, indices intact.
func TestEpochRingWrap(t *testing.T) {
	c, state := collectorWithSource(Config{Epoch: 2, MaxEpochs: 2})
	ec := c.EpochCommitter(0)
	for cycle := int64(0); cycle < 10; cycle++ {
		state[0]++
		ec.Commit(cycle)
	}
	rep := c.Harvest(10)
	if len(rep.EpochIndex) != 2 {
		t.Fatalf("retained %d epochs, want 2", len(rep.EpochIndex))
	}
	if rep.EpochIndex[0] != 3 || rep.EpochIndex[1] != 4 {
		t.Errorf("retained epochs %v, want [3 4]", rep.EpochIndex)
	}
	if rep.EpochEnd[0] != 7 || rep.EpochEnd[1] != 9 {
		t.Errorf("epoch ends %v, want [7 9]", rep.EpochEnd)
	}
}

// TestHarvestFlushesPartialEpoch: a run that stops between boundaries
// still reports the tail cycles as a final short epoch.
func TestHarvestFlushesPartialEpoch(t *testing.T) {
	c, state := collectorWithSource(Config{Epoch: 4})
	ec := c.EpochCommitter(0)
	for cycle := int64(0); cycle < 6; cycle++ {
		state[0]++
		ec.Commit(cycle)
	}
	rep := c.Harvest(6)
	if len(rep.EpochIndex) != 2 {
		t.Fatalf("retained %d epochs, want full + partial", len(rep.EpochIndex))
	}
	if rep.EpochIndex[1] != 1 || rep.EpochEnd[1] != 5 {
		t.Errorf("partial epoch = (%d, %d), want (1, 5)", rep.EpochIndex[1], rep.EpochEnd[1])
	}
	ss := rep.Sources[0]
	if ss.Values[0][0] != 4 || ss.Values[1][0] != 2 {
		t.Errorf("deltas = [%d %d], want [4 2]", ss.Values[0][0], ss.Values[1][0])
	}
	// Harvesting exactly at a boundary must not add an empty epoch.
	c2, state2 := collectorWithSource(Config{Epoch: 4})
	ec2 := c2.EpochCommitter(0)
	for cycle := int64(0); cycle < 4; cycle++ {
		state2[0]++
		ec2.Commit(cycle)
	}
	if rep2 := c2.Harvest(4); len(rep2.EpochIndex) != 1 {
		t.Errorf("boundary harvest retained %d epochs, want 1", len(rep2.EpochIndex))
	}
}

// TestHarvestCanonicalOrder scrambles sources across two shard probes and
// events across probes and cycles, then checks Harvest's canonical sorts:
// sources by (kind, id, first field), events by (cycle, packet, kind, loc,
// aux). These orders are what makes exports shard-count-invariant.
func TestHarvestCanonicalOrder(t *testing.T) {
	c := New(Config{Epoch: 8, TraceSample: 1}, 2)
	zero := func(dst []int64) { dst[0] = 0 }
	c.AddSource(1, SourceMeta{Kind: "router", ID: 9}, []Field{{Name: "writes"}}, zero)
	c.AddSource(0, SourceMeta{Kind: "nic", ID: 2}, []Field{{Name: "injected"}}, zero)
	c.AddSource(0, SourceMeta{Kind: "link", ID: 5}, []Field{{Name: "flits"}}, zero)
	c.AddSource(1, SourceMeta{Kind: "link", ID: 5}, []Field{{Name: "credits"}}, zero)
	c.AddSource(0, SourceMeta{Kind: "router", ID: 1}, []Field{{Name: "writes"}}, zero)
	c.Start()

	c.ShardProbe(1).Emit(Event{Cycle: 7, Packet: 1, Kind: EvRC, Loc: 4})
	c.ShardProbe(0).Emit(Event{Cycle: 3, Packet: 2, Kind: EvSA, Loc: 1})
	c.ShardProbe(0).Emit(Event{Cycle: 3, Packet: 1, Kind: EvLink, Loc: 6})
	c.ShardProbe(1).Emit(Event{Cycle: 3, Packet: 1, Kind: EvRC, Loc: 6})
	c.SerialProbe().Emit(Event{Cycle: 3, Packet: 1, Kind: EvRC, Loc: 2})

	rep := c.Harvest(8)
	var order []string
	for _, ss := range rep.Sources {
		order = append(order, ss.Meta.Kind+"/"+ss.Fields[0].Name)
	}
	want := []string{"link/credits", "link/flits", "nic/injected", "router/writes", "router/writes"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("source order %v, want %v", order, want)
	}
	if rep.Sources[3].Meta.ID != 1 || rep.Sources[4].Meta.ID != 9 {
		t.Errorf("router ids out of order: %d then %d", rep.Sources[3].Meta.ID, rep.Sources[4].Meta.ID)
	}
	wantEv := []Event{
		{Cycle: 3, Packet: 1, Kind: EvRC, Loc: 2},
		{Cycle: 3, Packet: 1, Kind: EvRC, Loc: 6},
		{Cycle: 3, Packet: 1, Kind: EvLink, Loc: 6},
		{Cycle: 3, Packet: 2, Kind: EvSA, Loc: 1},
		{Cycle: 7, Packet: 1, Kind: EvRC, Loc: 4},
	}
	if !reflect.DeepEqual(rep.Events, wantEv) {
		t.Errorf("event order:\n got %+v\nwant %+v", rep.Events, wantEv)
	}
}

func TestMetricsCSVRoundTrip(t *testing.T) {
	c, state := collectorWithSource(Config{Epoch: 4})
	ec := c.EpochCommitter(0)
	for cycle := int64(0); cycle < 8; cycle++ {
		state[0] += 3
		state[1] = cycle
		ec.Commit(cycle)
	}
	rep := c.Harvest(8)

	var buf bytes.Buffer
	if err := rep.WriteMetricsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if want := 1 + 2*2; len(lines) != want { // header + epochs x fields
		t.Fatalf("CSV has %d lines, want %d:\n%s", len(lines), want, buf.String())
	}
	// Delta rows carry a per_cycle rate; gauge rows leave it empty.
	if !strings.Contains(buf.String(), "router,3,r3,0,3,writes,12,3.0000") {
		t.Errorf("delta row missing per-cycle rate:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "occupancy,3,\n") && !strings.Contains(buf.String(), "occupancy,7,\n") {
		t.Errorf("gauge rows should leave per_cycle empty:\n%s", buf.String())
	}

	pts, err := ReadMetricsCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("parsed %d points, want 4", len(pts))
	}
	p := pts[0]
	if p.Epoch != 0 || p.Cycle != 3 || p.Kind != "router" || p.ID != 3 ||
		p.Name != "r3" || p.Row != 0 || p.Col != 3 || p.Field != "writes" || p.Value != 12 {
		t.Errorf("first point = %+v", p)
	}
	if _, err := ReadMetricsCSV(strings.NewReader("not,a,metrics\nfile,0,0\n")); err == nil {
		t.Error("non-metrics CSV accepted")
	}
}

// chromeTrace mirrors the JSON layout Perfetto's Chrome-trace importer
// reads; the exporter's output must unmarshal into it.
type chromeTrace struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   int64          `json:"ts"`
		Pid  int64          `json:"pid"`
		Tid  int64          `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestChromeTraceExport(t *testing.T) {
	c := New(Config{TraceSample: 1}, 1)
	c.Start()
	p := c.ShardProbe(0)
	tag := flit.NewTag(1, 2)
	p.Emit(Event{Cycle: 10, Packet: 42, Tag: tag, Kind: EvInject, Loc: 0, Aux: 5})
	p.Emit(Event{Cycle: 12, Packet: 42, Tag: tag, Kind: EvRC, Loc: 0})
	p.Emit(Event{Cycle: 14, Packet: 42, Tag: tag, Kind: EvGatherUpload, Loc: 3, Aux: 2})
	p.Emit(Event{Cycle: 18, Packet: 42, Tag: tag, Kind: EvEject, Loc: 5, Aux: 4})
	sp := c.SerialProbe()
	sp.Emit(Event{Cycle: 0, Kind: EvPhaseStart, Tag: tag, Loc: 1, Aux: 2})
	sp.Emit(Event{Cycle: 30, Kind: EvPhaseDrained, Tag: tag, Loc: 1, Aux: 2})
	rep := c.Harvest(31)

	var buf bytes.Buffer
	if err := rep.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	counts := map[string]int{}
	for _, ev := range tr.TraceEvents {
		counts[ev.Ph]++
	}
	// One async span pair, two stage slices (inject, rc), one collective
	// instant, one phase slice, plus metadata records.
	if counts["b"] != 1 || counts["e"] != 1 {
		t.Errorf("span begin/end = %d/%d, want 1/1", counts["b"], counts["e"])
	}
	if counts["X"] != 3 {
		t.Errorf("%d complete slices, want 3 (2 stages + 1 phase)", counts["X"])
	}
	if counts["i"] != 1 {
		t.Errorf("%d instants, want 1 gather-upload", counts["i"])
	}
	if counts["M"] == 0 {
		t.Error("no metadata records")
	}
	var sawPhase, sawJobArg bool
	for _, ev := range tr.TraceEvents {
		if ev.Name == "job1/phase2" && ev.Ph == "X" && ev.Ts == 0 && ev.Tid == 0 {
			sawPhase = true
		}
		if ev.Name == "packet" && ev.Ph == "b" {
			// Tag job fields are offset by one (0 = untagged), so tag
			// job 1 is scheduler job 0.
			if job, ok := ev.Args["job"].(float64); !ok || int(job) != 0 {
				t.Errorf("packet span job arg = %v, want 0", ev.Args["job"])
			}
			sawJobArg = true
		}
	}
	if !sawPhase {
		t.Error("phase span job1/phase2 missing from schedule track")
	}
	if !sawJobArg {
		t.Error("packet begin span missing")
	}

	// Byte determinism: a second export of the same report is identical.
	var buf2 bytes.Buffer
	if err := rep.WriteChromeTrace(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("two exports of one report differ")
	}
}
