package stats

import "encoding/json"

// The JSON forms below exist for two consumers with the same need: the
// content-addressed result cache (experiments must round-trip a report
// byte-for-byte) and engine snapshots (a restored component must replay
// the exact statistics of the run it left). Both require that decoding
// reproduces the encoder's state bit-for-bit, so Sample serializes its
// raw observations in insertion order — re-observing them rebuilds the
// identical chunk layout, sum (same float addition order) and order
// statistics — rather than any lossy summary.

// Clone returns an independent deep copy of the sample, rebuilt by
// replaying the observations in insertion order so the copy's chunk
// layout, running sum and order statistics match the original exactly.
// In-memory snapshot forks use it: assigning a Sample by value would
// share chunk backing arrays with the live original.
func (s *Sample) Clone() Sample {
	var c Sample
	for _, chunk := range s.chunks {
		for _, v := range chunk {
			c.Observe(v)
		}
	}
	return c
}

// MarshalJSON encodes the counter as its plain count.
func (c Counter) MarshalJSON() ([]byte, error) {
	return json.Marshal(c.n)
}

// UnmarshalJSON decodes a plain count.
func (c *Counter) UnmarshalJSON(data []byte) error {
	return json.Unmarshal(data, &c.n)
}

// MarshalJSON encodes the sample as its observations in insertion order.
func (s Sample) MarshalJSON() ([]byte, error) {
	obs := make([]float64, 0, s.n)
	for _, chunk := range s.chunks {
		obs = append(obs, chunk...)
	}
	return json.Marshal(obs)
}

// UnmarshalJSON resets the sample and replays the encoded observations,
// reproducing the encoder's state exactly.
func (s *Sample) UnmarshalJSON(data []byte) error {
	var obs []float64
	if err := json.Unmarshal(data, &obs); err != nil {
		return err
	}
	*s = Sample{}
	for _, v := range obs {
		s.Observe(v)
	}
	return nil
}
