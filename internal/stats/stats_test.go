package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored
	if c.Value() != 5 {
		t.Errorf("Value = %d, want 5", c.Value())
	}
}

func TestSampleSummary(t *testing.T) {
	var s Sample
	for _, v := range []float64{4, 1, 3, 2, 5} {
		s.Observe(v)
	}
	if s.N() != 5 || s.Sum() != 15 {
		t.Fatalf("N=%d Sum=%v", s.N(), s.Sum())
	}
	if s.Mean() != 3 {
		t.Errorf("Mean = %v, want 3", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("Min/Max = %v/%v, want 1/5", s.Min(), s.Max())
	}
	if got := s.Percentile(50); got != 3 {
		t.Errorf("p50 = %v, want 3", got)
	}
	if got := s.Percentile(100); got != 5 {
		t.Errorf("p100 = %v, want 5", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("p0 = %v, want 1", got)
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 || s.StdDev() != 0 {
		t.Error("empty sample should report zeros")
	}
}

func TestSampleObserveAfterSort(t *testing.T) {
	var s Sample
	s.Observe(10)
	_ = s.Min() // forces sort
	s.Observe(1)
	if s.Min() != 1 {
		t.Errorf("Min after late observation = %v, want 1", s.Min())
	}
}

func TestSampleStdDev(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Observe(v)
	}
	if got := s.StdDev(); math.Abs(got-2) > 1e-9 {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

// TestPercentileTable pins the nearest-rank semantics edge by edge: the
// telemetry epoch summaries lean on Percentile, so its behavior at p=0,
// p=100, out-of-range and NaN p, and tiny samples is contract, not
// accident.
func TestPercentileTable(t *testing.T) {
	tests := []struct {
		name string
		obs  []float64
		p    float64
		want float64
	}{
		{"empty p50", nil, 50, 0},
		{"empty p0", nil, 0, 0},
		{"empty p100", nil, 100, 0},
		{"empty NaN", nil, math.NaN(), 0},
		{"single p0", []float64{7}, 0, 7},
		{"single p50", []float64{7}, 50, 7},
		{"single p100", []float64{7}, 100, 7},
		{"single tiny p", []float64{7}, 0.001, 7},
		{"p0 is min", []float64{4, 1, 3}, 0, 1},
		{"negative p clamps to min", []float64{4, 1, 3}, -10, 1},
		{"p100 is max", []float64{4, 1, 3}, 100, 4},
		{"p>100 clamps to max", []float64{4, 1, 3}, 250, 4},
		{"-Inf clamps to min", []float64{4, 1, 3}, math.Inf(-1), 1},
		{"+Inf clamps to max", []float64{4, 1, 3}, math.Inf(1), 4},
		// Nearest-rank on n=4: rank = ceil(p/100*4), no interpolation.
		{"n=4 p25 -> 1st", []float64{10, 20, 30, 40}, 25, 10},
		{"n=4 p25+eps -> 2nd", []float64{10, 20, 30, 40}, 25.0001, 20},
		{"n=4 p50 -> 2nd", []float64{10, 20, 30, 40}, 50, 20},
		{"n=4 p75 -> 3rd", []float64{10, 20, 30, 40}, 75, 30},
		{"n=4 p99 -> 4th", []float64{10, 20, 30, 40}, 99, 40},
		{"n=5 p50 -> 3rd", []float64{10, 20, 30, 40, 50}, 50, 30},
		{"duplicates p50", []float64{5, 5, 5, 1}, 50, 5},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var s Sample
			for _, v := range tc.obs {
				s.Observe(v)
			}
			if got := s.Percentile(tc.p); got != tc.want {
				t.Errorf("Percentile(%v) over %v = %v, want %v", tc.p, tc.obs, got, tc.want)
			}
		})
	}
}

// A NaN p must not panic or produce a platform-dependent rank; it yields
// NaN on a non-empty sample.
func TestPercentileNaNP(t *testing.T) {
	var s Sample
	for _, v := range []float64{1, 2, 3} {
		s.Observe(v)
	}
	if got := s.Percentile(math.NaN()); !math.IsNaN(got) {
		t.Errorf("Percentile(NaN) = %v, want NaN", got)
	}
}

// Property: percentiles are monotone in p and bracketed by min/max.
func TestPercentileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		var s Sample
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			s.Observe(v)
		}
		if s.N() == 0 {
			return true
		}
		prev := s.Min()
		for p := 0.0; p <= 100; p += 10 {
			cur := s.Percentile(p)
			if cur < prev || cur > s.Max() {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 3) // buckets [0,10) [10,20) [20,30), overflow beyond
	for _, v := range []float64{0, 5, 9.99, 10, 25, 31, 100, -1} {
		h.Observe(v)
	}
	if h.N() != 8 {
		t.Fatalf("N = %d, want 8", h.N())
	}
	if h.Bucket(0) != 4 { // 0, 5, 9.99, -1(clamped)
		t.Errorf("bucket0 = %d, want 4", h.Bucket(0))
	}
	if h.Bucket(1) != 1 {
		t.Errorf("bucket1 = %d, want 1", h.Bucket(1))
	}
	if h.Bucket(2) != 1 {
		t.Errorf("bucket2 = %d, want 1", h.Bucket(2))
	}
	if h.Overflow() != 2 {
		t.Errorf("overflow = %d, want 2", h.Overflow())
	}
	if h.Bucket(-1) != 0 || h.Bucket(99) != 0 {
		t.Error("out-of-range Bucket should return 0")
	}
}

func TestHistogramDegenerateConfig(t *testing.T) {
	h := NewHistogram(0, 0) // coerced to 1 bucket of width 1
	h.Observe(0.5)
	if h.Bucket(0) != 1 {
		t.Errorf("bucket0 = %d, want 1", h.Bucket(0))
	}
}

func TestStringerOutputs(t *testing.T) {
	var s Sample
	s.Observe(1)
	if s.String() == "" {
		t.Error("Sample.String empty")
	}
	h := NewHistogram(1, 2)
	h.Observe(0)
	if h.String() == "" {
		t.Error("Histogram.String empty")
	}
}

func TestReductionStatsMerge(t *testing.T) {
	var r ReductionStats
	r.Merge(2, 5)
	r.Merge(2, 3)
	if r.PayloadsMerged != 2 {
		t.Errorf("PayloadsMerged = %d, want 2", r.PayloadsMerged)
	}
	if r.LinkTraversalsSaved != 16 {
		t.Errorf("LinkTraversalsSaved = %d, want 2*5+2*3=16", r.LinkTraversalsSaved)
	}
	if r.SinkTransactionsSaved != 2 {
		t.Errorf("SinkTransactionsSaved = %d, want 2", r.SinkTransactionsSaved)
	}
	// Degenerate inputs still count the merge but save no traversals.
	r.Merge(0, -1)
	if r.PayloadsMerged != 3 || r.LinkTraversalsSaved != 16 {
		t.Errorf("degenerate merge mis-accounted: %+v", r)
	}
}

func TestReductionStatsAdd(t *testing.T) {
	a := ReductionStats{PayloadsMerged: 1, LinkTraversalsSaved: 10, SinkTransactionsSaved: 1}
	b := ReductionStats{PayloadsMerged: 2, LinkTraversalsSaved: 5, SinkTransactionsSaved: 2}
	s := a.Add(b)
	want := ReductionStats{PayloadsMerged: 3, LinkTraversalsSaved: 15, SinkTransactionsSaved: 3}
	if s != want {
		t.Errorf("Add = %+v, want %+v", s, want)
	}
}

func TestReductionStatsString(t *testing.T) {
	r := ReductionStats{PayloadsMerged: 7}
	if !strings.Contains(r.String(), "merged=7") {
		t.Errorf("String() = %q", r.String())
	}
}

func TestMaxMinRatio(t *testing.T) {
	cases := []struct {
		vs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{0, -3}, 0},
		{[]float64{5}, 1},
		{[]float64{2, 8}, 4},
		{[]float64{4, 0, 2, -1, 8}, 4}, // non-positive values ignored
	}
	for _, tc := range cases {
		if got := MaxMinRatio(tc.vs); got != tc.want {
			t.Errorf("MaxMinRatio(%v) = %v, want %v", tc.vs, got, tc.want)
		}
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex(nil); got != 0 {
		t.Errorf("JainIndex(nil) = %v, want 0", got)
	}
	if got := JainIndex([]float64{3, 3, 3}); got != 1 {
		t.Errorf("equal shares: %v, want 1", got)
	}
	// One dominant value among n drives the index toward 1/n.
	skewed := JainIndex([]float64{1000, 1e-9, 1e-9, 1e-9})
	if skewed > 0.3 || skewed <= 0.25-1e-6 {
		t.Errorf("skewed shares: %v, want just above 1/4", skewed)
	}
	if even, uneven := JainIndex([]float64{5, 5}), JainIndex([]float64{9, 1}); uneven >= even {
		t.Errorf("uneven (%v) not below even (%v)", uneven, even)
	}
}
