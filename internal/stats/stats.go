// Package stats provides the measurement primitives the simulator reports
// through: counters, scalar samples with min/mean/max/percentiles, and
// small fixed-bucket histograms. All types have useful zero values and are
// not safe for concurrent use (the simulator is single-threaded).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	n uint64
}

// Add increments the counter by delta (negative deltas are ignored).
func (c *Counter) Add(delta int) {
	if delta > 0 {
		c.n += uint64(delta)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Sample accumulates scalar observations and reports summary statistics.
// Observations are retained so percentiles are exact.
//
// Storage is chunked: observations land in fixed-size blocks that are
// never copied or abandoned, so the bytes ever allocated equal the bytes
// retained (a single growing slice abandons ~4x the final size to the
// garbage collector under Go's append growth policy). Chunk capacities
// ramp geometrically from sampleChunkMin to sampleChunkMax so small
// samples stay small.
type Sample struct {
	chunks [][]float64
	n      int
	sum    float64
	// sorted caches the flattened, sorted observations for the order
	// statistics (Min/Max/Percentile); Observe invalidates it.
	sorted []float64
}

const (
	sampleChunkMin = 64
	sampleChunkMax = 4096
)

// Observe records one observation.
func (s *Sample) Observe(v float64) {
	last := len(s.chunks) - 1
	if last < 0 || len(s.chunks[last]) == cap(s.chunks[last]) {
		capNext := s.n
		if capNext < sampleChunkMin {
			capNext = sampleChunkMin
		}
		if capNext > sampleChunkMax {
			capNext = sampleChunkMax
		}
		s.chunks = append(s.chunks, make([]float64, 0, capNext))
		last++
	}
	s.chunks[last] = append(s.chunks[last], v)
	s.n++
	s.sum += v
	s.sorted = nil
}

// N returns the observation count.
func (s *Sample) N() int { return s.n }

// Sum returns the sum of observations.
func (s *Sample) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 with no observations.
func (s *Sample) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min returns the smallest observation, or 0 with no observations.
func (s *Sample) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.ensureSorted()[0]
}

// Max returns the largest observation, or 0 with no observations.
func (s *Sample) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.ensureSorted()[s.n-1]
}

// Percentile returns the p-th percentile using nearest-rank on the sorted
// observations: the value at rank ceil(p/100 * n), so for n observations
// Percentile(100k/n) is exactly the k-th smallest and no interpolation is
// ever performed. Out-of-range p clamps (p <= 0 yields the minimum,
// p >= 100 the maximum), an empty sample yields 0 for every p, and a NaN
// p yields NaN — int(math.Ceil(NaN)) is platform-dependent, so it must
// not reach the rank computation.
func (s *Sample) Percentile(p float64) float64 {
	if s.n == 0 {
		return 0
	}
	if math.IsNaN(p) {
		return math.NaN()
	}
	sorted := s.ensureSorted()
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[s.n-1]
	}
	rank := int(math.Ceil(p/100*float64(s.n))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= s.n {
		rank = s.n - 1
	}
	return sorted[rank]
}

// StdDev returns the population standard deviation, or 0 with fewer than
// two observations.
func (s *Sample) StdDev() float64 {
	if s.n < 2 {
		return 0
	}
	mean := s.Mean()
	var ss float64
	for _, chunk := range s.chunks {
		for _, v := range chunk {
			d := v - mean
			ss += d * d
		}
	}
	return math.Sqrt(ss / float64(s.n))
}

// String summarizes the sample for reports.
func (s *Sample) String() string {
	return fmt.Sprintf("n=%d mean=%.2f min=%.0f p50=%.0f p99=%.0f max=%.0f",
		s.N(), s.Mean(), s.Min(), s.Percentile(50), s.Percentile(99), s.Max())
}

func (s *Sample) ensureSorted() []float64 {
	if s.sorted == nil {
		s.sorted = make([]float64, 0, s.n)
		for _, chunk := range s.chunks {
			s.sorted = append(s.sorted, chunk...)
		}
		sort.Float64s(s.sorted)
	}
	return s.sorted
}

// ReductionStats accounts the wire-level work an in-network accumulation
// run avoided: every operand folded into a passing accumulate packet is a
// payload that no longer needs its own packet, so its would-be link
// traversals and its sink write transaction are saved. Workload layers
// record one Merge per ack, with the flit count and hop distance the
// operand's own unicast packet would have cost.
type ReductionStats struct {
	// PayloadsMerged counts operands folded into passing packets.
	PayloadsMerged uint64
	// LinkTraversalsSaved counts the flit-hops the merged operands'
	// own packets would have needed (packet flits × hops to the sink).
	LinkTraversalsSaved uint64
	// SinkTransactionsSaved counts the per-packet write transactions the
	// global buffer no longer pays (one per merged operand).
	SinkTransactionsSaved uint64
}

// Merge records one in-network merge of an operand whose fallback packet
// would have been packetFlits long and hopsToSink hops from home router to
// sink (negative inputs are ignored).
func (r *ReductionStats) Merge(packetFlits, hopsToSink int) {
	r.PayloadsMerged++
	if packetFlits > 0 && hopsToSink > 0 {
		r.LinkTraversalsSaved += uint64(packetFlits) * uint64(hopsToSink)
	}
	r.SinkTransactionsSaved++
}

// Add returns the field-wise sum of two reduction accounts.
func (r ReductionStats) Add(o ReductionStats) ReductionStats {
	return ReductionStats{
		PayloadsMerged:        r.PayloadsMerged + o.PayloadsMerged,
		LinkTraversalsSaved:   r.LinkTraversalsSaved + o.LinkTraversalsSaved,
		SinkTransactionsSaved: r.SinkTransactionsSaved + o.SinkTransactionsSaved,
	}
}

// String summarizes the account for reports.
func (r ReductionStats) String() string {
	return fmt.Sprintf("merged=%d link-traversals-saved=%d sink-transactions-saved=%d",
		r.PayloadsMerged, r.LinkTraversalsSaved, r.SinkTransactionsSaved)
}

// Histogram counts observations into uniform-width buckets over [0, width*n)
// with an overflow bucket at the end.
type Histogram struct {
	width   float64
	buckets []uint64
	over    uint64
	n       uint64
}

// NewHistogram returns a histogram of n buckets each width wide.
func NewHistogram(width float64, n int) *Histogram {
	if n < 1 {
		n = 1
	}
	if width <= 0 {
		width = 1
	}
	return &Histogram{width: width, buckets: make([]uint64, n)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.n++
	if v < 0 {
		v = 0
	}
	i := int(v / h.width)
	if i >= len(h.buckets) {
		h.over++
		return
	}
	h.buckets[i]++
}

// N returns the observation count.
func (h *Histogram) N() uint64 { return h.n }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) uint64 {
	if i < 0 || i >= len(h.buckets) {
		return 0
	}
	return h.buckets[i]
}

// Overflow returns the count of observations beyond the last bucket.
func (h *Histogram) Overflow() uint64 { return h.over }

// String renders an ASCII sparkline-style summary.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hist n=%d [", h.n)
	for i, c := range h.buckets {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", c)
	}
	fmt.Fprintf(&b, " |%d]", h.over)
	return b.String()
}
