package stats

// MaxMinRatio returns the ratio of the largest to the smallest positive
// value — the max/min slowdown fairness figure for per-job completion
// times (1.0 = perfectly even). Non-positive values are ignored; with
// fewer than one positive value the ratio is 0.
func MaxMinRatio(vs []float64) float64 {
	min, max := 0.0, 0.0
	seen := false
	for _, v := range vs {
		if v <= 0 {
			continue
		}
		if !seen || v < min {
			min = v
		}
		if !seen || v > max {
			max = v
		}
		seen = true
	}
	if !seen {
		return 0
	}
	return max / min
}

// JainIndex returns Jain's fairness index (Σv)² / (n·Σv²) over the
// positive values: 1.0 when all shares are equal, approaching 1/n as one
// value dominates. With no positive values it is 0.
func JainIndex(vs []float64) float64 {
	var sum, sq float64
	n := 0
	for _, v := range vs {
		if v <= 0 {
			continue
		}
		sum += v
		sq += v * v
		n++
	}
	if n == 0 || sq == 0 {
		return 0
	}
	return sum * sum / (float64(n) * sq)
}
