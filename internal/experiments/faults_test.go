package experiments

import (
	"strings"
	"testing"
)

func TestFaultSweepDegradesGracefully(t *testing.T) {
	rows, err := FaultSweep(Options{Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("rows = %d, want 15 (3 schemes x 5 rates)", len(rows))
	}
	for _, r := range rows {
		if r.OracleErrors != 0 {
			t.Errorf("%s @ %.3f: %d oracle errors", r.Scheme, r.DropRate, r.OracleErrors)
		}
		if r.DropRate == 0 {
			if r.Drops != 0 || r.Retransmits != 0 {
				t.Errorf("%s fault-free point shows recovery traffic: %+v", r.Scheme, r)
			}
			if r.Slowdown != 1 {
				t.Errorf("%s fault-free slowdown = %.3f, want 1", r.Scheme, r.Slowdown)
			}
		}
		if r.DropRate >= 0.02 {
			if r.Drops == 0 {
				t.Errorf("%s @ %.3f destroyed nothing", r.Scheme, r.DropRate)
			}
			if r.Retransmits == 0 {
				t.Errorf("%s @ %.3f recovered nothing", r.Scheme, r.DropRate)
			}
			if r.Slowdown < 1 {
				t.Errorf("%s @ %.3f slowdown %.3f below fault-free", r.Scheme, r.DropRate, r.Slowdown)
			}
		}
	}
	out := RenderFaultSweep(rows)
	for _, frag := range []string{"unicast", "gather", "ina", "retransmits"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
}
