// Package experiments regenerates every table and figure of the paper's
// evaluation section (Table I–III, Fig. 1, Figs. 7–10) plus the ablations
// DESIGN.md calls out. Each experiment returns machine-readable rows and a
// rendered text table printing the same series the paper reports.
package experiments

import (
	"context"
	"fmt"
	"strings"

	"gathernoc/internal/cnn"
	"gathernoc/internal/core"
	"gathernoc/internal/flit"
	"gathernoc/internal/noc"
	"gathernoc/internal/telemetry"
	"gathernoc/internal/topology"
)

// Options tune the whole experiment suite.
type Options struct {
	// Rounds is the number of simulated rounds per run (0 = 2).
	Rounds int
	// Meshes lists the mesh sizes to evaluate (nil = the paper's 8x8 and
	// 16x16).
	Meshes []int
	// Workers bounds the sweep worker pool: each simulation point runs on
	// its own Network, so points execute concurrently without affecting
	// the per-point results or their ordering. 0 selects GOMAXPROCS; 1
	// forces serial execution.
	Workers int
	// Ctx, when non-nil, stops sweeps between simulation points; a point
	// already running completes before the cancellation error surfaces
	// (nil = Background).
	Ctx context.Context
	// Model selects the CNN for the whole-model pipeline comparison
	// ("" = alexnet; "vgg16" for the deeper model).
	Model string
	// Jobs is the batch size of the multi-job experiment (0 = 4).
	Jobs int
	// Overlap selects double-buffered pipelining for the multi-job
	// experiment's inference phases (false = strict barrier).
	Overlap bool
	// Cache, when non-nil, memoizes the gather-vs-RU comparison cells by
	// their canonical content key: a sweep consults it before dispatching
	// a cell and stores every miss, so repeated suites (and overlapping
	// sweeps — the figures and ablations share cells) warm-start instead
	// of resimulating. Nil leaves every cell simulated, bit-identical to
	// the uncached code path.
	Cache *Cache
	// Telemetry, when non-nil, enables the observability layer on every
	// simulated sweep cell (each cell runs on its own Network, so each
	// gets its own collector); the cell's report then carries epoch/event
	// counts from the harvested run. Nil leaves telemetry off — the
	// default, and the configuration every published number uses.
	Telemetry *telemetry.Config
}

func (o Options) meshes() []int {
	if len(o.Meshes) == 0 {
		return []int{8, 16}
	}
	return o.Meshes
}

func (o Options) core() core.Options {
	return core.Options{Rounds: o.Rounds}
}

func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

func (o Options) model() string {
	if o.Model == "" {
		return "alexnet"
	}
	return o.Model
}

func (o Options) jobs() int {
	if o.Jobs <= 0 {
		return 4
	}
	return o.Jobs
}

// pipelineRounds resolves the simulated rounds per pipeline layer
// (Options.Rounds, 0 = 2 like the figure sweeps).
func (o Options) pipelineRounds() int {
	if o.Rounds <= 0 {
		return 2
	}
	return o.Rounds
}

// ImprovementRow is one bar of Figs. 7–10: a layer on a mesh size with its
// gather-vs-RU improvement.
type ImprovementRow struct {
	Model       string
	Layer       string
	Mesh        int
	Improvement float64
}

// Table2Row pairs the estimated and simulated improvements (Table II).
type Table2Row struct {
	Layer     string
	Estimated float64
	Simulated float64
}

// Table2 reproduces Table II: estimated vs simulated total-latency
// improvement for AlexNet's five convolution layers on the 8x8 mesh.
func Table2(opts Options) ([]Table2Row, error) {
	points := comparePoints(cnn.AlexNetConvLayers(), []int{8})
	cmps, err := compareSweep(points, opts)
	if err != nil {
		return nil, fmt.Errorf("table2: %w", err)
	}
	rows := make([]Table2Row, len(points))
	for i, cmp := range cmps {
		rows[i] = Table2Row{
			Layer:     points[i].layer.Name,
			Estimated: cmp.EstimatedImprovementPct,
			Simulated: cmp.LatencyImprovementPct,
		}
	}
	return rows, nil
}

// RenderTable2 formats Table II rows like the paper.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table II: estimated vs simulated total-latency improvement, AlexNet, 8x8 mesh (%)\n")
	b.WriteString("Result    ")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8s", r.Layer)
	}
	b.WriteString("\nEstimated ")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8.2f", r.Estimated)
	}
	b.WriteString("\nSimulated ")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8.2f", r.Simulated)
	}
	b.WriteString("\n")
	return b.String()
}

// improvementFigure runs the gather-vs-RU comparison for a layer list
// across mesh sizes on the sweep pool and projects one improvement metric
// per point.
func improvementFigure(layers []cnn.LayerConfig, opts Options, metric func(*core.Comparison) float64) ([]ImprovementRow, error) {
	points := comparePoints(layers, opts.meshes())
	cmps, err := compareSweep(points, opts)
	if err != nil {
		return nil, err
	}
	rows := make([]ImprovementRow, len(points))
	for i, cmp := range cmps {
		rows[i] = ImprovementRow{
			Model: points[i].layer.Model, Layer: points[i].layer.Name,
			Mesh:        points[i].mesh,
			Improvement: metric(cmp),
		}
	}
	return rows, nil
}

// latencyFigure runs the gather-vs-RU latency comparison for a layer list
// across mesh sizes (Figs. 7 and 8).
func latencyFigure(layers []cnn.LayerConfig, opts Options) ([]ImprovementRow, error) {
	return improvementFigure(layers, opts, func(c *core.Comparison) float64 {
		return c.LatencyImprovementPct
	})
}

// powerFigure runs the gather-vs-RU NoC-energy comparison (Figs. 9 and 10).
func powerFigure(layers []cnn.LayerConfig, opts Options) ([]ImprovementRow, error) {
	return improvementFigure(layers, opts, func(c *core.Comparison) float64 {
		return c.PowerImprovementPct
	})
}

// Fig7 reproduces Fig. 7: total-latency improvement for AlexNet on 8x8 and
// 16x16 meshes.
func Fig7(opts Options) ([]ImprovementRow, error) {
	return latencyFigure(cnn.AlexNetConvLayers(), opts)
}

// Fig8 reproduces Fig. 8: total-latency improvement for the paper's
// selected VGG-16 layers on 8x8 and 16x16 meshes.
func Fig8(opts Options) ([]ImprovementRow, error) {
	return latencyFigure(cnn.VGG16SelectedConvLayers(), opts)
}

// Fig9 reproduces Fig. 9: NoC dynamic-power improvement for AlexNet.
func Fig9(opts Options) ([]ImprovementRow, error) {
	return powerFigure(cnn.AlexNetConvLayers(), opts)
}

// Fig10 reproduces Fig. 10: NoC dynamic-power improvement for VGG-16.
func Fig10(opts Options) ([]ImprovementRow, error) {
	return powerFigure(cnn.VGG16SelectedConvLayers(), opts)
}

// RenderImprovements formats figure rows as a mesh-by-layer table.
func RenderImprovements(title, unit string, rows []ImprovementRow) string {
	var b strings.Builder
	b.WriteString(title)
	b.WriteString("\n")
	byMesh := map[int][]ImprovementRow{}
	var meshes []int
	for _, r := range rows {
		if _, ok := byMesh[r.Mesh]; !ok {
			meshes = append(meshes, r.Mesh)
		}
		byMesh[r.Mesh] = append(byMesh[r.Mesh], r)
	}
	if len(rows) > 0 {
		b.WriteString("Mesh    ")
		for _, r := range byMesh[meshes[0]] {
			fmt.Fprintf(&b, "%8s", r.Layer)
		}
		b.WriteString("\n")
	}
	for _, mesh := range meshes {
		fmt.Fprintf(&b, "%dx%-5d", mesh, mesh)
		for _, r := range byMesh[mesh] {
			fmt.Fprintf(&b, "%8.2f", r.Improvement)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "(%s)\n", unit)
	return b.String()
}

// Fig1Result quantifies the Fig. 1 example: hop counts for collecting one
// row of a 6x6 mesh with repetitive unicast vs one gather packet.
type Fig1Result struct {
	MeshSize    int
	Row         int
	UnicastHops int
	GatherHops  int
}

// Fig1 computes the motivating hop-count example of Fig. 1.
func Fig1() Fig1Result {
	m := topology.MustMesh(6, 6)
	row := 2
	dst := m.ID(topology.Coord{Row: row, Col: 5})
	total := 0
	for c := 0; c < 6; c++ {
		total += m.Hops(m.ID(topology.Coord{Row: row, Col: c}), dst)
	}
	return Fig1Result{
		MeshSize:    6,
		Row:         row,
		UnicastHops: total,
		GatherHops:  m.Hops(m.ID(topology.Coord{Row: row, Col: 0}), dst),
	}
}

// RenderFig1 formats the Fig. 1 example.
func RenderFig1(r Fig1Result) string {
	return fmt.Sprintf(
		"Fig. 1: collecting row %d of a %dx%d mesh into the global buffer\n"+
			"  repetitive unicast: %d hops\n"+
			"  gather packet:      %d hops\n",
		r.Row, r.MeshSize, r.MeshSize, r.UnicastHops, r.GatherHops)
}

// RenderTable1 prints the Table I network configuration for a mesh size.
func RenderTable1(rows, cols int) string {
	cfg := noc.DefaultConfig(rows, cols)
	var b strings.Builder
	b.WriteString("Table I: network configuration\n")
	fmt.Fprintf(&b, "  Topology            %dx%d Mesh\n", rows, cols)
	fmt.Fprintf(&b, "  Virtual Channels    %d\n", cfg.Router.VCs)
	fmt.Fprintf(&b, "  Router Pipeline     RC/VA/SA+ST/link (kappa=%d cycles/hop)\n", cfg.HeaderHopLatency())
	fmt.Fprintf(&b, "  Buffer Depth        %d flits\n", cfg.Router.BufferDepth)
	gflits := 4
	if f, err := formatFor(cfg); err == nil {
		gflits = f.GatherFlits(cfg.EffectiveGatherCapacity())
	}
	fmt.Fprintf(&b, "  Packet Size         Gather: %d flits, Other: %d flits\n", gflits, cfg.UnicastFlits)
	fmt.Fprintf(&b, "  Flit Size           %d bits\n", cfg.FlitBits)
	fmt.Fprintf(&b, "  Gather Payload      %d bits\n", cfg.PayloadBits)
	fmt.Fprintf(&b, "  T_MAC               5 cycles\n")
	fmt.Fprintf(&b, "  Delta               %d cycles (scaled per column)\n", cfg.Delta)
	fmt.Fprintf(&b, "  Buffer transaction  %d cycles/packet\n", cfg.SinkPacketOverhead)
	return b.String()
}

// RenderTable3 prints the Table III layer parameters.
func RenderTable3() string {
	var b strings.Builder
	b.WriteString("Table III: convolution layers (kernels CxQ@RxR, output Q@HxH)\n")
	for _, l := range cnn.AlexNetConvLayers() {
		fmt.Fprintf(&b, "  %s\n", l)
	}
	for _, l := range cnn.VGG16SelectedConvLayers() {
		fmt.Fprintf(&b, "  %s\n", l)
	}
	return b.String()
}

// formatFor mirrors the network's flit-format construction for the
// Table I rendering.
func formatFor(cfg noc.Config) (*flit.Format, error) {
	return flit.NewFormat(cfg.FlitBits, cfg.PayloadBits, cfg.Rows*cfg.Cols+cfg.Rows)
}
