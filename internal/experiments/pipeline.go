package experiments

import (
	"context"
	"fmt"
	"strings"

	"gathernoc/internal/cnn"
	"gathernoc/internal/noc"
	"gathernoc/internal/stats"
	"gathernoc/internal/traffic"
	"gathernoc/internal/workload"
)

// PipelineRow is one (fabric, mode) cell of the whole-model pipeline
// comparison.
type PipelineRow struct {
	Model    string
	Topology string
	// Mode is "analytic" (the sum of independent per-layer runs — the
	// extrapolation the repository used before the workload scheduler),
	// "barrier" (cycle-accurate sequential composition) or "overlap"
	// (double-buffered pipelining with inter-layer contention).
	Mode string
	// Layers is the layer count of the model.
	Layers int
	// Cycles is the simulated makespan of the composed run (for the
	// analytic row, the sum of the independent runs' cycle counts).
	Cycles int64
	// ExtrapolatedCycles scales each layer's simulated rounds to its full
	// round count and sums — the whole-model estimate.
	ExtrapolatedCycles int64
	// OracleErrors counts row reductions that failed verification
	// (must be 0).
	OracleErrors int
	// TelemetryEpochs/TelemetryEvents summarize the cell's harvested
	// telemetry when Options.Telemetry opted in (0/0 otherwise; the
	// analytic arm runs many short fabrics and reports none).
	TelemetryEpochs int
	TelemetryEvents int
}

// pipelineTMAC is the MAC latency entering every pipeline arm's per-round
// compute time (the paper's T_MAC = 5). The analytic and scheduler arms
// must share it, or the reconciliation gate between them drifts.
const pipelineTMAC = 5

// pipelinePoint is one cell of the comparison sweep.
type pipelinePoint struct {
	topology string
	mode     string
}

// pipelineFabric builds the 8x8 network for a topology name, with the
// sweep's telemetry opt-in applied (each cell owns its network, so each
// harvests independently).
func pipelineFabric(topology string, opts Options) (*noc.Network, error) {
	cfg := noc.DefaultConfig(8, 8)
	if topology == "torus" {
		cfg = noc.DefaultTorusConfig(8, 8)
	}
	cfg.Telemetry = opts.Telemetry
	return noc.New(cfg)
}

// PipelineComparison runs the complete model (opts.Model, default
// AlexNet) through the cycle-accurate workload scheduler on an 8x8 mesh
// and torus, in strict-barrier and double-buffered-overlap modes, and
// against the analytic composition of independent per-layer runs — the
// extrapolation that whole-model results were stitched from before
// phases could contend on one fabric, now demoted to a cross-check role:
// the barrier makespan must land within a few percent of it (the residue
// is the per-boundary admission cycle and the VA rotation phase each
// layer inherits from its start cycle), while overlap must come in
// strictly below barrier.
func PipelineComparison(opts Options) ([]PipelineRow, error) {
	model := opts.model()
	layers, err := workload.ModelLayers(model)
	if err != nil {
		return nil, err
	}
	points := []pipelinePoint{
		{"mesh", "analytic"}, {"mesh", "barrier"}, {"mesh", "overlap"},
		{"torus", "analytic"}, {"torus", "barrier"}, {"torus", "overlap"},
	}
	return Sweep(opts.ctx(), opts.Workers, points,
		func(_ context.Context, _ int, p pipelinePoint) (PipelineRow, error) {
			row := PipelineRow{Model: model, Topology: p.topology, Mode: p.mode, Layers: len(layers)}
			if p.mode == "analytic" {
				return analyticComposition(row, layers, opts)
			}
			return pipelineRun(row, layers, p.mode == "overlap", opts)
		})
}

// analyticComposition runs every layer independently on a fresh fabric
// and sums — no flit of layer k ever contends with layer k-1.
func analyticComposition(row PipelineRow, layers []cnn.LayerConfig, opts Options) (PipelineRow, error) {
	for _, layer := range layers {
		// The analytic arm intentionally passes a telemetry-free Options:
		// it runs one throwaway fabric per layer, and a per-layer harvest
		// would not compose into one run's series.
		nw, err := pipelineFabric(row.Topology, Options{})
		if err != nil {
			return row, err
		}
		total := layer.AccumulationRounds(nw.Config().Rows)
		ctl, err := traffic.NewAccumulationController(nw, traffic.AccumulationConfig{
			Scheme:         traffic.CollectGather,
			Rounds:         opts.pipelineRounds(),
			TotalRounds:    total,
			ComputeLatency: layer.PartialMACsPerPE(nw.Config().Cols) + pipelineTMAC,
		})
		if err != nil {
			return row, fmt.Errorf("analytic %s: %w", layer.Name, err)
		}
		res, err := ctl.Run(10_000_000)
		if err != nil {
			return row, fmt.Errorf("analytic %s: %w", layer.Name, err)
		}
		row.Cycles += res.Cycles
		row.ExtrapolatedCycles += res.TotalCycles
		row.OracleErrors += res.OracleErrors
	}
	return row, nil
}

// pipelineRun composes the whole model on one fabric through the
// scheduler.
func pipelineRun(row PipelineRow, layers []cnn.LayerConfig, overlap bool, opts Options) (PipelineRow, error) {
	nw, err := pipelineFabric(row.Topology, opts)
	if err != nil {
		return row, err
	}
	job, drivers, err := workload.NewPipelineJob(nw, row.Model, workload.PipelineConfig{
		Layers:  layers,
		Scheme:  traffic.CollectGather,
		Rounds:  opts.pipelineRounds(),
		TMAC:    pipelineTMAC,
		Overlap: overlap,
	})
	if err != nil {
		return row, err
	}
	s, err := workload.New(nw, []workload.Job{job})
	if err != nil {
		return row, err
	}
	res, err := s.Run(10_000_000)
	if err != nil {
		return row, err
	}
	row.Cycles = res.Jobs[0].Time()
	for _, d := range drivers {
		snap := d.Snapshot()
		row.ExtrapolatedCycles += snap.TotalCycles
		row.OracleErrors += snap.OracleErrors
	}
	if rep := nw.HarvestTelemetry(); rep != nil {
		row.TelemetryEpochs = len(rep.EpochIndex)
		row.TelemetryEvents = len(rep.Events)
	}
	return row, nil
}

// RenderPipeline formats the pipeline comparison.
func RenderPipeline(rows []PipelineRow) string {
	var b strings.Builder
	if len(rows) > 0 {
		fmt.Fprintf(&b, "Workload: complete %s (%d layers) on one 8x8 fabric, cycle-accurate vs analytic composition\n",
			rows[0].Model, rows[0].Layers)
	}
	fmt.Fprintf(&b, "%-8s %-10s %14s %18s %8s\n", "fabric", "mode", "cycles", "extrapolated", "oracle")
	for _, r := range rows {
		oracle := "exact"
		if r.OracleErrors != 0 {
			oracle = fmt.Sprintf("%d ERR", r.OracleErrors)
		}
		fmt.Fprintf(&b, "%-8s %-10s %14d %18d %8s\n", r.Topology, r.Mode, r.Cycles, r.ExtrapolatedCycles, oracle)
	}
	return b.String()
}

// MultiJobRow is one job of a batched shared-fabric run.
type MultiJobRow struct {
	Job   string
	Start int64
	Done  int64
	// Cycles is the job's makespan.
	Cycles int64
	// Packets counts the job's delivered packets; MeanLatency and
	// P99Latency summarize their end-to-end latencies; Throughput is
	// packets per cycle over the makespan.
	Packets     uint64
	MeanLatency float64
	P99Latency  float64
	Throughput  float64
	// Slowdown is the job's makespan over the fastest inference job's
	// (1.0 for the fastest inference; the background row's value is
	// relative to the same baseline and reflects its own window length,
	// not contention).
	Slowdown float64
}

// MultiJobReport is a batched run's outcome.
type MultiJobReport struct {
	Topology string
	Overlap  bool
	Jobs     []MultiJobRow
	// Cycles is the whole batch's run length; MaxMinSlowdown and
	// JainFairness summarize how evenly the fabric served the
	// *inference* jobs (the background job's makespan is set by its own
	// injection window, so it is excluded).
	Cycles          int64
	MaxMinSlowdown  float64
	JainFairness    float64
	OracleErrors    int
	OrphanPackets   uint64
	OrphanPayloads  uint64
	BackgroundRate  float64
	InferenceLayers int
	// TelemetryEpochs/TelemetryEvents summarize the run's harvested
	// telemetry when Options.Telemetry opted in (0/0 otherwise).
	TelemetryEpochs int
	TelemetryEvents int
}

// MultiJob batches opts.Jobs (default 4) concurrent two-layer inference
// jobs (AlexNet Conv1→Pool1, staggered arrivals) plus a background
// uniform-random traffic job onto one 8x8 mesh and reports per-job
// latency, throughput and fairness — the shared-fabric serving regime the
// single-workload simulator could not express.
func MultiJob(opts Options) (*MultiJobReport, error) {
	nJobs := opts.jobs()
	layers := cnn.AlexNetAllLayers()[:2] // Conv1 → Pool1
	const bgRate = 0.005

	nw, err := pipelineFabric("mesh", opts)
	if err != nil {
		return nil, err
	}
	jobs, drivers, err := workload.NewInferenceBatch(nw, nJobs, 5, workload.PipelineConfig{
		Layers:  layers,
		Scheme:  traffic.CollectGather,
		Rounds:  opts.pipelineRounds(),
		Overlap: opts.Overlap,
	})
	if err != nil {
		return nil, err
	}
	bg, err := traffic.NewGeneratorDriver(nw, traffic.GeneratorConfig{
		Pattern:       traffic.UniformRandom{Nodes: nw.Topology().NumNodes()},
		InjectionRate: bgRate,
		PacketFlits:   2,
		Warmup:        0,
		Measure:       400,
		Seed:          1,
	})
	if err != nil {
		return nil, err
	}
	jobs = append(jobs, workload.Job{
		Name:   "background",
		Phases: []workload.Phase{{Name: "uniform", Driver: bg}},
	})

	s, err := workload.New(nw, jobs)
	if err != nil {
		return nil, err
	}
	res, err := s.Run(10_000_000)
	if err != nil {
		return nil, err
	}

	// Fairness is computed over the inference jobs only: the background
	// job's makespan is set by its own injection window, not by
	// contention, and including it would report workload-length mismatch
	// as unfairness.
	inferenceTimes := make([]float64, nJobs)
	for j := 0; j < nJobs; j++ {
		inferenceTimes[j] = float64(res.Jobs[j].Time())
	}
	rep := &MultiJobReport{
		Topology:        "mesh",
		Overlap:         opts.Overlap,
		Cycles:          res.Cycles,
		MaxMinSlowdown:  stats.MaxMinRatio(inferenceTimes),
		JainFairness:    stats.JainIndex(inferenceTimes),
		OrphanPackets:   res.OrphanPackets,
		OrphanPayloads:  res.OrphanPayloads,
		BackgroundRate:  bgRate,
		InferenceLayers: len(layers),
	}
	var fastest int64
	for _, j := range res.Jobs[:nJobs] {
		if t := j.Time(); fastest == 0 || (t > 0 && t < fastest) {
			fastest = t
		}
	}
	for _, j := range res.Jobs {
		row := MultiJobRow{
			Job:         j.Name,
			Start:       j.StartCycle,
			Done:        j.DrainedCycle,
			Cycles:      j.Time(),
			Packets:     j.PacketsEjected,
			MeanLatency: j.Latency.Mean(),
			P99Latency:  j.Latency.Percentile(99),
			Throughput:  j.Throughput(),
		}
		if fastest > 0 {
			row.Slowdown = float64(j.Time()) / float64(fastest)
		}
		rep.Jobs = append(rep.Jobs, row)
	}
	for _, drv := range drivers {
		for _, d := range drv {
			rep.OracleErrors += d.Snapshot().OracleErrors
		}
	}
	if trep := nw.HarvestTelemetry(); trep != nil {
		rep.TelemetryEpochs = len(trep.EpochIndex)
		rep.TelemetryEvents = len(trep.Events)
	}
	return rep, nil
}

// RenderMultiJob formats a batched run.
func RenderMultiJob(r *MultiJobReport) string {
	var b strings.Builder
	mode := "barrier"
	if r.Overlap {
		mode = "overlap"
	}
	fmt.Fprintf(&b, "Workload: %d batched inference jobs (+background uniform @ %.3f) on one 8x8 %s, %s phases\n",
		len(r.Jobs)-1, r.BackgroundRate, r.Topology, mode)
	fmt.Fprintf(&b, "%-14s %8s %8s %8s %8s %10s %10s %10s %9s\n",
		"job", "start", "done", "cycles", "packets", "mean-lat", "p99-lat", "pkts/cyc", "slowdown")
	for _, j := range r.Jobs {
		fmt.Fprintf(&b, "%-14s %8d %8d %8d %8d %10.2f %10.0f %10.4f %9.3f\n",
			j.Job, j.Start, j.Done, j.Cycles, j.Packets,
			j.MeanLatency, j.P99Latency, j.Throughput, j.Slowdown)
	}
	oracle := "exact"
	if r.OracleErrors != 0 {
		oracle = fmt.Sprintf("%d ERRORS", r.OracleErrors)
	}
	fmt.Fprintf(&b, "fairness (inference jobs): max/min slowdown %.3f, Jain %.3f; oracle %s; %d cycles total\n",
		r.MaxMinSlowdown, r.JainFairness, oracle, r.Cycles)
	return b.String()
}
