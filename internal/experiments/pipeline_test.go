package experiments

import (
	"math"
	"testing"

	"gathernoc/internal/telemetry"
)

// pipelineReconcileTolerance is the stated tolerance between the
// cycle-accurate barrier makespan and the analytic composition of
// independent per-layer runs: the residue is one admission cycle per
// layer boundary plus the VA-rotation phase each layer inherits from its
// start cycle, both bounded well under 2% of a whole-model run.
const pipelineReconcileTolerance = 0.02

// TestPipelineComparisonAcceptance is the tentpole acceptance gate:
// complete AlexNet on the mesh and the torus, with overlap strictly
// faster than barrier and the barrier totals reconciling with the
// analytic composition within the stated tolerance, every reduction
// oracle exact.
func TestPipelineComparisonAcceptance(t *testing.T) {
	rounds := 2
	if testing.Short() {
		rounds = 1
	}
	rows, err := PipelineComparison(Options{Rounds: rounds})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	byMode := map[string]map[string]PipelineRow{}
	for _, r := range rows {
		if r.OracleErrors != 0 {
			t.Errorf("%s/%s: %d oracle errors", r.Topology, r.Mode, r.OracleErrors)
		}
		if r.Cycles <= 0 || r.ExtrapolatedCycles <= 0 {
			t.Errorf("%s/%s: non-positive cycles %d/%d", r.Topology, r.Mode, r.Cycles, r.ExtrapolatedCycles)
		}
		if byMode[r.Topology] == nil {
			byMode[r.Topology] = map[string]PipelineRow{}
		}
		byMode[r.Topology][r.Mode] = r
	}
	for _, topo := range []string{"mesh", "torus"} {
		analytic := byMode[topo]["analytic"]
		barrier := byMode[topo]["barrier"]
		overlap := byMode[topo]["overlap"]
		if overlap.Cycles >= barrier.Cycles {
			t.Errorf("%s: overlap (%d cycles) not strictly below barrier (%d)", topo, overlap.Cycles, barrier.Cycles)
		}
		if rel := math.Abs(float64(barrier.Cycles-analytic.Cycles)) / float64(analytic.Cycles); rel > pipelineReconcileTolerance {
			t.Errorf("%s: barrier %d vs analytic %d cycles diverge by %.2f%% (tolerance %.0f%%)",
				topo, barrier.Cycles, analytic.Cycles, rel*100, pipelineReconcileTolerance*100)
		}
		if rel := math.Abs(float64(barrier.ExtrapolatedCycles-analytic.ExtrapolatedCycles)) /
			float64(analytic.ExtrapolatedCycles); rel > pipelineReconcileTolerance {
			t.Errorf("%s: extrapolated barrier %d vs analytic %d diverge by %.2f%%",
				topo, barrier.ExtrapolatedCycles, analytic.ExtrapolatedCycles, rel*100)
		}
	}
}

// TestMultiJobReport covers the batched serving regime: every inference
// job completes with an exact oracle, per-job latency samples are
// populated, and the fairness figures are well-formed.
func TestMultiJobReport(t *testing.T) {
	rep, err := MultiJob(Options{Rounds: 1, Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rep.Jobs); got != 5 { // 4 inferences + background
		t.Fatalf("got %d job rows, want 5", got)
	}
	if rep.OracleErrors != 0 {
		t.Errorf("%d oracle errors", rep.OracleErrors)
	}
	if rep.OrphanPackets != 0 || rep.OrphanPayloads != 0 {
		t.Errorf("orphans: %d packets, %d payloads", rep.OrphanPackets, rep.OrphanPayloads)
	}
	for i, j := range rep.Jobs {
		if j.Cycles <= 0 {
			t.Errorf("job %s: non-positive makespan %d", j.Job, j.Cycles)
		}
		if j.Packets == 0 {
			t.Errorf("job %s: no packets delivered", j.Job)
		}
		if inference := i < len(rep.Jobs)-1; inference && j.Slowdown < 1 {
			t.Errorf("job %s: slowdown %.3f < 1", j.Job, j.Slowdown)
		}
	}
	if rep.MaxMinSlowdown < 1 {
		t.Errorf("max/min slowdown %.3f < 1", rep.MaxMinSlowdown)
	}
	// The fairness figures cover the inference jobs only: with four
	// near-identical staggered inferences the max/min slowdown must stay
	// near 1, not reflect the background job's much longer window.
	if rep.MaxMinSlowdown > 2 {
		t.Errorf("inference max/min slowdown %.3f implausibly high — background job leaked into fairness?", rep.MaxMinSlowdown)
	}
	if rep.JainFairness <= 0 || rep.JainFairness > 1 {
		t.Errorf("Jain index %.3f out of (0,1]", rep.JainFairness)
	}
	if RenderMultiJob(rep) == "" {
		t.Error("empty render")
	}
}

// TestMultiJobTelemetryOptIn covers the sweep harness's per-cell opt-in:
// the same batch with Options.Telemetry carries harvested epoch/event
// counts in its report, and without it records none (the published
// numbers' configuration).
func TestMultiJobTelemetryOptIn(t *testing.T) {
	dark, err := MultiJob(Options{Rounds: 1, Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if dark.TelemetryEpochs != 0 || dark.TelemetryEvents != 0 {
		t.Errorf("telemetry-off report carries counts: %d epochs, %d events",
			dark.TelemetryEpochs, dark.TelemetryEvents)
	}
	lit, err := MultiJob(Options{Rounds: 1, Jobs: 2,
		Telemetry: &telemetry.Config{Epoch: 64, TraceSample: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if lit.TelemetryEpochs == 0 {
		t.Error("telemetry-on report harvested no epochs")
	}
	if lit.TelemetryEvents == 0 {
		t.Error("telemetry-on report harvested no events")
	}
	// Observational only: the schedule must not notice the probes.
	if lit.Cycles != dark.Cycles {
		t.Errorf("telemetry changed the schedule: %d vs %d cycles", lit.Cycles, dark.Cycles)
	}
}
