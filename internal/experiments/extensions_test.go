package experiments

import (
	"strings"
	"testing"
)

func TestDataflowsBothMappingsWork(t *testing.T) {
	rows, err := Dataflows(Options{Rounds: 1, Meshes: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 (OS, WS)", len(rows))
	}
	for _, r := range rows {
		if r.LatencyImprovement <= 0 {
			t.Errorf("%s: latency improvement %.2f not positive", r.Dataflow, r.LatencyImprovement)
		}
		if r.RoundCycles <= 0 {
			t.Errorf("%s: no round cycles", r.Dataflow)
		}
	}
	out := RenderDataflows(rows)
	if !strings.Contains(out, "OS") || !strings.Contains(out, "WS") {
		t.Errorf("render missing dataflows:\n%s", out)
	}
}

func TestMixedTrafficDedicatedVCHelps(t *testing.T) {
	rows, err := MixedTraffic(Options{Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	find := func(rate float64, dedicated bool) *MixedTrafficRow {
		for i := range rows {
			if rows[i].Rate == rate && rows[i].DedicatedVC == dedicated {
				return &rows[i]
			}
		}
		t.Fatalf("row rate=%v dedicated=%v missing", rate, dedicated)
		return nil
	}
	// Without background traffic the dedicated VC changes nothing.
	quietShared, quietDed := find(0, false), find(0, true)
	if quietShared.GatherRound != quietDed.GatherRound {
		t.Errorf("quiet network: shared %.1f != dedicated %.1f",
			quietShared.GatherRound, quietDed.GatherRound)
	}
	// Under heavy background traffic the dedicated VC must not be slower
	// than sharing (the paper's Sec. VI mitigation).
	busyShared, busyDed := find(0.15, false), find(0.15, true)
	if busyDed.Collection > busyShared.Collection {
		t.Errorf("busy network: dedicated VC collection %.1f > shared %.1f",
			busyDed.Collection, busyShared.Collection)
	}
	// Background traffic must slow gather collection relative to quiet.
	if busyShared.Collection <= quietShared.Collection {
		t.Errorf("background traffic had no effect: busy %.1f <= quiet %.1f",
			busyShared.Collection, quietShared.Collection)
	}
	if out := RenderMixedTraffic(rows); !strings.Contains(out, "dedicated") {
		t.Error("render missing dedicated rows")
	}
}

func TestStreamingOverNoCSlowdown(t *testing.T) {
	r, err := StreamingOverNoC(32)
	if err != nil {
		t.Fatal(err)
	}
	if r.NoCCycles <= r.IdealCycles {
		t.Errorf("NoC streaming %d cycles <= dedicated-path ideal %d",
			r.NoCCycles, r.IdealCycles)
	}
	// The per-packet pipeline overhead should cost at least 2x.
	if r.Slowdown < 2 {
		t.Errorf("slowdown %.2f < 2, suspiciously fast", r.Slowdown)
	}
	if !strings.Contains(RenderStreaming(r), "slowdown") {
		t.Error("render missing slowdown")
	}
}

func TestStreamingOverNoCDefaultOperands(t *testing.T) {
	r, err := StreamingOverNoC(0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Operands != 64 {
		t.Errorf("default operands = %d, want 64", r.Operands)
	}
}
