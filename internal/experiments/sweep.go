package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"gathernoc/internal/cnn"
	"gathernoc/internal/core"
)

// Sweep evaluates fn over every item on a bounded worker pool and returns
// the results in input order: results[i] is fn's value for items[i],
// whatever the worker count or scheduling. Each fn call must be
// self-contained (every simulation point constructs its own Network), which
// makes the per-point runs as deterministic in parallel as they are
// serially.
//
// workers <= 0 selects runtime.GOMAXPROCS(0); the pool never exceeds
// len(items). fn receives the item's index alongside the item so callers
// can label results without closing over shared state.
//
// The sweep fails fast: the first error cancels the context passed to the
// remaining fn calls, and no new item starts once cancellation is
// observed (skipped items keep zero results). When several items fail
// before cancellation lands, the error with the smallest item index is
// returned. Cancelling ctx stops the sweep the same way, surfacing ctx's
// error if no fn error preceded it. Items already inside fn when the
// context is cancelled run to completion unless fn itself honors ctx —
// simulation points here do not, so cancellation latency is one point.
func Sweep[T, R any](ctx context.Context, workers int, items []T, fn func(ctx context.Context, i int, item T) (R, error)) ([]R, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]R, len(items))
	if len(items) == 0 {
		return results, ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, len(items))
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					// Drain handed-out indices without running them once
					// the sweep is cancelled.
					continue
				}
				r, err := fn(ctx, i, items[i])
				if err != nil {
					errs[i] = err
					cancel()
					continue
				}
				results[i] = r
			}
		}()
	}

feed:
	for i := range items {
		// Check cancellation with priority: a plain two-way select would
		// pick randomly between a ready worker and a closed Done channel
		// and could keep dispatching points after cancellation.
		select {
		case <-ctx.Done():
			break feed
		default:
		}
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, ctx.Err()
}

// comparePoint is one (mesh, layer) cell of a figure or table sweep.
type comparePoint struct {
	mesh  int
	layer cnn.LayerConfig
}

// comparePoints enumerates the mesh-major point grid the figures iterate.
func comparePoints(layers []cnn.LayerConfig, meshes []int) []comparePoint {
	points := make([]comparePoint, 0, len(meshes)*len(layers))
	for _, mesh := range meshes {
		for _, layer := range layers {
			points = append(points, comparePoint{mesh: mesh, layer: layer})
		}
	}
	return points
}

// compareSweep runs core.CompareLayer for every point on the worker pool,
// consulting the result cache (when configured) before dispatching a cell.
func compareSweep(points []comparePoint, opts Options) ([]*core.Comparison, error) {
	return Sweep(opts.ctx(), opts.Workers, points,
		func(_ context.Context, _ int, p comparePoint) (*core.Comparison, error) {
			cmp, err := cachedCompareLayer(opts.Cache, p.mesh, p.mesh, p.layer, opts.core())
			if err != nil {
				return nil, fmt.Errorf("%s %dx%d: %w", p.layer.Name, p.mesh, p.mesh, err)
			}
			return cmp, nil
		})
}
