package experiments

import "gathernoc/internal/topology"

// topologyCoord builds a coordinate (readability helper for extensions).
func topologyCoord(row, col int) topology.Coord {
	return topology.Coord{Row: row, Col: col}
}

// topologyRowSet returns the destination set of every PE in the row except
// column 0 (the multicast source).
func topologyRowSet(m topology.Topology, row, cols int) *topology.DestSet {
	s := topology.NewDestSet(m.NumNodes())
	for c := 1; c < cols; c++ {
		s.Add(m.ID(topology.Coord{Row: row, Col: c}))
	}
	return s
}
