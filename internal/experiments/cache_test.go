package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

// cacheOpts is the smallest real sweep: AlexNet's five layers on one 4x4
// mesh, one simulated round.
func cacheOpts(c *Cache) Options {
	return Options{Rounds: 1, Meshes: []int{4}, Cache: c}
}

func TestCacheMemoryRoundTrip(t *testing.T) {
	c, err := NewCache("")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.get("k"); ok {
		t.Fatal("empty cache hit")
	}
	if err := c.put("k", []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	data, ok := c.get("k")
	if !ok || string(data) != `{"x":1}` {
		t.Fatalf("get = %q, %v", data, ok)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Stale != 0 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", s)
	}
}

func TestCacheDiskPersistsAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.put("key-a", []byte(`"payload"`)); err != nil {
		t.Fatal(err)
	}

	// A fresh instance over the same directory must serve the entry.
	c2, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	data, ok := c2.get("key-a")
	if !ok || string(data) != `"payload"` {
		t.Fatalf("disk get = %q, %v", data, ok)
	}
	if s := c2.Stats(); s.Hits != 1 || s.BytesRead == 0 {
		t.Fatalf("stats = %+v, want a disk hit", s)
	}
}

func TestCacheRejectsForeignEntries(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.put("key-a", []byte(`1`)); err != nil {
		t.Fatal(err)
	}
	// Overwrite the entry with a different schema: a fresh instance must
	// report it stale and miss, not decode it.
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("glob: %v, %v", files, err)
	}
	if err := os.WriteFile(files[0], []byte(`{"Schema":"other/v9","Key":"key-a","Result":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.get("key-a"); ok {
		t.Fatal("foreign-schema entry served")
	}
	if s := c2.Stats(); s.Stale != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 stale / 1 miss", s)
	}
}

// TestCachedSweepByteIdentical is the memoization contract: a cached
// sweep's rows render byte-for-byte like the uncached sweep's, the first
// pass misses every cell, and the rerun is served entirely from cache.
func TestCachedSweepByteIdentical(t *testing.T) {
	ref, err := Fig7(Options{Rounds: 1, Meshes: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	refText := RenderImprovements("t", "u", ref)

	cache, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Fig7(cacheOpts(cache))
	if err != nil {
		t.Fatal(err)
	}
	if got := RenderImprovements("t", "u", cold); got != refText {
		t.Errorf("cold cached sweep diverged from uncached:\n%s\nvs\n%s", got, refText)
	}
	s := cache.Stats()
	if s.Hits != 0 || s.Misses != uint64(len(ref)) {
		t.Fatalf("cold stats = %+v, want 0 hits / %d misses", s, len(ref))
	}

	warm, err := Fig7(cacheOpts(cache))
	if err != nil {
		t.Fatal(err)
	}
	if got := RenderImprovements("t", "u", warm); got != refText {
		t.Errorf("warm cached sweep diverged from uncached:\n%s\nvs\n%s", got, refText)
	}
	s2 := cache.Stats()
	if s2.Misses != s.Misses || s2.Hits != uint64(len(ref)) {
		t.Fatalf("warm stats = %+v, want %d hits and no new misses", s2, len(ref))
	}
}

// TestCachedSweepWarmStartsFromDisk reruns the sweep in a fresh Cache
// instance over the same directory — the cross-process rerun CI pins.
func TestCachedSweepWarmStartsFromDisk(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Fig7(cacheOpts(c1))
	if err != nil {
		t.Fatal(err)
	}

	c2, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Fig7(cacheOpts(c2))
	if err != nil {
		t.Fatal(err)
	}
	if s := c2.Stats(); s.Misses != 0 || s.Hits != uint64(len(cold)) {
		t.Fatalf("fresh-instance stats = %+v, want %d pure hits", s, len(cold))
	}
	if a, b := RenderImprovements("t", "u", cold), RenderImprovements("t", "u", warm); a != b {
		t.Errorf("disk warm-start diverged:\n%s\nvs\n%s", b, a)
	}
}

// TestAblationSharesCacheWithFigures checks cross-sweep memoization:
// distinct experiments whose cells materialize to the same canonical
// inputs share entries, and ablation cells that differ (mutated configs)
// do not collide.
func TestAblationSharesCacheWithFigures(t *testing.T) {
	cache, err := NewCache("")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Rounds: 1, Cache: cache}
	if _, err := AblationEta(opts); err != nil {
		t.Fatal(err)
	}
	s := cache.Stats()
	if s.Misses == 0 || s.Stale != 0 {
		t.Fatalf("stats = %+v, want fresh misses and no stale entries", s)
	}
	// η=8 on the 8x8 mesh is the default gather capacity: the sweep's
	// mutated cell must collide with the unmutated Conv3 cell by content,
	// which AblationDelta's δ-mutated cells must not.
	before := cache.Stats()
	if _, err := AblationEta(opts); err != nil {
		t.Fatal(err)
	}
	after := cache.Stats()
	if after.Misses != before.Misses {
		t.Fatalf("rerun missed: %+v -> %+v", before, after)
	}
}
