package experiments

import (
	"fmt"
	"strings"

	"gathernoc/internal/cnn"
	"gathernoc/internal/noc"
	"gathernoc/internal/systolic"
	"gathernoc/internal/traffic"
)

// DataflowRow compares collection schemes under one dataflow.
type DataflowRow struct {
	Dataflow           string
	Layer              string
	Mesh               int
	LatencyImprovement float64
	PowerImprovement   float64
	RoundCycles        float64
}

// Dataflows compares the gather benefit under output-stationary and
// weight-stationary mappings (the paper's future-work question). Under WS
// all results emerge from the bottom row, concentrating the many-to-one
// traffic into a single buffer port.
func Dataflows(opts Options) ([]DataflowRow, error) {
	layer, _ := cnn.LayerByName(cnn.AlexNetConvLayers(), "Conv3")
	var rows []DataflowRow
	for _, df := range []systolic.Dataflow{systolic.OutputStationary, systolic.WeightStationary} {
		df := df
		for _, mesh := range opts.meshes() {
			o := opts.core()
			o.MutateSystolic = func(s *systolic.Config) { s.Dataflow = df }
			cmp, err := cachedCompareLayer(opts.Cache, mesh, mesh, layer, o)
			if err != nil {
				return nil, fmt.Errorf("dataflow %s %dx%d: %w", df, mesh, mesh, err)
			}
			rows = append(rows, DataflowRow{
				Dataflow: df.String(), Layer: layer.Name, Mesh: mesh,
				LatencyImprovement: cmp.LatencyImprovementPct,
				PowerImprovement:   cmp.PowerImprovementPct,
				RoundCycles:        cmp.Gather.Result.RoundCycles.Mean(),
			})
		}
	}
	return rows, nil
}

// RenderDataflows formats the dataflow comparison.
func RenderDataflows(rows []DataflowRow) string {
	var b strings.Builder
	b.WriteString("Extension: gather benefit by dataflow (AlexNet Conv3)\n")
	fmt.Fprintf(&b, "%8s %8s %12s %10s %14s\n", "dataflow", "mesh", "latency%", "power%", "gather round")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8s %5dx%-2d %12.2f %10.2f %14.0f\n",
			r.Dataflow, r.Mesh, r.Mesh, r.LatencyImprovement, r.PowerImprovement, r.RoundCycles)
	}
	return b.String()
}

// MixedTrafficRow is one configuration of the mixed-traffic experiment.
type MixedTrafficRow struct {
	// Rate is the background injection rate (packets/node/cycle).
	Rate float64
	// DedicatedVC reports whether gather traffic had a reserved VC.
	DedicatedVC bool
	// GatherRound is the mean gather-mode round latency in cycles;
	// Collection is just the result-collection phase, where contention
	// with background traffic actually shows.
	GatherRound float64
	Collection  float64
	// SelfInitiated counts δ-timeout fallbacks.
	SelfInitiated uint64
}

// MixedTraffic evaluates the paper's conclusion scenario: gather collection
// sharing the network with unrelated background traffic, with and without
// a VC dedicated to gather packets ("to prevent the time out of δ when
// mixed with other traffic a separate VC can be allocated to the gather
// traffic", Sec. VI).
func MixedTraffic(opts Options) ([]MixedTrafficRow, error) {
	layer, _ := cnn.LayerByName(cnn.AlexNetConvLayers(), "Conv3")
	var rows []MixedTrafficRow
	for _, rate := range []float64{0, 0.05, 0.15} {
		for _, dedicated := range []bool{false, true} {
			row, err := runMixed(layer, rate, dedicated, opts)
			if err != nil {
				return nil, err
			}
			rows = append(rows, *row)
		}
	}
	return rows, nil
}

func runMixed(layer cnn.LayerConfig, rate float64, dedicated bool, opts Options) (*MixedTrafficRow, error) {
	cfg := noc.DefaultConfig(8, 8)
	if dedicated {
		cfg.Router.GatherVC = cfg.Router.VCs - 1
	}
	nw, err := noc.New(cfg)
	if err != nil {
		return nil, err
	}

	rounds := opts.Rounds
	if rounds == 0 {
		rounds = 2
	}
	ctl, err := systolic.NewController(nw, systolic.Config{
		Layer: layer, Mode: systolic.GatherMode, TMAC: 5, MaxRounds: rounds,
	})
	if err != nil {
		return nil, err
	}

	if rate > 0 {
		gen, err := traffic.NewGenerator(nw, traffic.GeneratorConfig{
			Pattern:       traffic.UniformRandom{Nodes: nw.Mesh().NumNodes()},
			InjectionRate: rate,
			PacketFlits:   cfg.UnicastFlits,
			Warmup:        0,
			Measure:       1 << 40, // inject for the whole run
			Seed:          7,
		})
		if err != nil {
			return nil, err
		}
		nw.Engine().AddTicker(gen)
	}

	res, err := ctl.Run(50_000_000)
	if err != nil {
		return nil, fmt.Errorf("mixed rate=%v dedicated=%v: %w", rate, dedicated, err)
	}
	if res.PayloadErrors != 0 {
		return nil, fmt.Errorf("mixed rate=%v dedicated=%v: %d payload errors",
			rate, dedicated, res.PayloadErrors)
	}
	return &MixedTrafficRow{
		Rate:          rate,
		DedicatedVC:   dedicated,
		GatherRound:   res.RoundCycles.Mean(),
		Collection:    res.CollectionCycles.Mean(),
		SelfInitiated: res.SelfInitiatedGathers,
	}, nil
}

// RenderMixedTraffic formats the mixed-traffic experiment.
func RenderMixedTraffic(rows []MixedTrafficRow) string {
	var b strings.Builder
	b.WriteString("Extension: gather under background traffic, shared vs dedicated gather VC\n")
	fmt.Fprintf(&b, "%8s %12s %14s %12s %10s\n", "rate", "gather VC", "gather round", "collection", "selfinit")
	for _, r := range rows {
		vc := "shared"
		if r.DedicatedVC {
			vc = "dedicated"
		}
		fmt.Fprintf(&b, "%8.3f %12s %14.1f %12.1f %10d\n",
			r.Rate, vc, r.GatherRound, r.Collection, r.SelfInitiated)
	}
	return b.String()
}

// StreamingRow measures streaming one round's operands over the NoC itself
// instead of dedicated systolic paths.
type StreamingRow struct {
	// Operands is the number of operands delivered per destination.
	Operands int
	// IdealCycles is the dedicated-path time (1 operand/cycle).
	IdealCycles int64
	// NoCCycles is the measured makespan over the NoC.
	NoCCycles int64
	// Slowdown is NoCCycles / IdealCycles.
	Slowdown float64
}

// StreamingOverNoC quantifies why OS arrays use dedicated forwarding paths
// rather than routing operands through the packet network: each west-edge
// PE multicasts a window of operands to its row (one single-flit packet
// per operand), and the makespan is compared with the 1-operand/cycle
// dedicated-path ideal. The per-packet RC/VA/SA overhead caps the NoC's
// streaming throughput well below wire speed.
func StreamingOverNoC(operands int) (*StreamingRow, error) {
	if operands < 1 {
		operands = 64
	}
	cfg := noc.DefaultConfig(8, 8)
	cfg.EastSinks = false
	nw, err := noc.New(cfg)
	if err != nil {
		return nil, err
	}
	mesh := nw.Mesh()
	// Row-wise operand multicast: PE (r,0) sends each operand to all other
	// PEs of its row as a 1-flit multicast packet.
	for row := 0; row < cfg.Rows; row++ {
		src := mesh.ID(topologyCoord(row, 0))
		dsts := topologyRowSet(mesh, row, cfg.Cols)
		for k := 0; k < operands; k++ {
			nw.NIC(src).SendMulticast(dsts, 1)
		}
	}
	cycles, err := nw.RunUntilQuiescent(10_000_000)
	if err != nil {
		return nil, err
	}
	row := &StreamingRow{
		Operands:    operands,
		IdealCycles: int64(operands),
		NoCCycles:   cycles,
	}
	row.Slowdown = float64(row.NoCCycles) / float64(row.IdealCycles)
	return row, nil
}

// RenderStreaming formats the streaming-over-NoC measurement.
func RenderStreaming(r *StreamingRow) string {
	return fmt.Sprintf(
		"Extension: streaming %d operands per row over the NoC (vs dedicated paths)\n"+
			"  dedicated-path ideal: %d cycles\n"+
			"  over the NoC:         %d cycles (%.1fx slowdown)\n",
		r.Operands, r.IdealCycles, r.NoCCycles, r.Slowdown)
}
