package experiments

import (
	"context"
	"fmt"
	"strings"

	"gathernoc/internal/cnn"
	"gathernoc/internal/core"
	"gathernoc/internal/noc"
	"gathernoc/internal/systolic"
)

// AblationRow is one point of a parameter sweep.
type AblationRow struct {
	// Param names the swept parameter; Value is its setting.
	Param string
	Value int
	// LatencyImprovement and PowerImprovement are gather-vs-RU (%).
	LatencyImprovement float64
	PowerImprovement   float64
	// SelfInitiated counts δ-timeout fallbacks in the gather run.
	SelfInitiated uint64
}

func ablationLayer() cnn.LayerConfig {
	l, _ := cnn.LayerByName(cnn.AlexNetConvLayers(), "Conv3")
	return l
}

func sweep(param string, values []int, opts Options, mutate func(v int, o *core.Options)) ([]AblationRow, error) {
	return Sweep(opts.ctx(), opts.Workers, values,
		func(_ context.Context, _ int, v int) (AblationRow, error) {
			o := opts.core()
			mutate(v, &o)
			cmp, err := cachedCompareLayer(opts.Cache, 8, 8, ablationLayer(), o)
			if err != nil {
				return AblationRow{}, fmt.Errorf("ablation %s=%d: %w", param, v, err)
			}
			return AblationRow{
				Param: param, Value: v,
				LatencyImprovement: cmp.LatencyImprovementPct,
				PowerImprovement:   cmp.PowerImprovementPct,
				SelfInitiated:      cmp.Gather.Result.SelfInitiatedGathers,
			}, nil
		})
}

// AblationDelta sweeps a flat δ timeout (the literal Table I policy,
// without per-column scaling). Small values force PEs to self-initiate
// before the row's gather packet arrives — the failure mode discussed in
// DESIGN.md §3; large values restore single-packet-per-row collection.
func AblationDelta(opts Options) ([]AblationRow, error) {
	return sweep("delta", []int{0, 1, 2, 5, 10, 20, 40}, opts, func(v int, o *core.Options) {
		o.MutateNetwork = func(c *noc.Config) { c.Delta = int64(v) }
		o.MutateSystolic = func(s *systolic.Config) { s.FlatDelta = true }
	})
}

// AblationEta sweeps the gather packet capacity η: below the row width,
// several gather packets per row are needed (Eq. 3's ⌈M/η⌉ sum).
func AblationEta(opts Options) ([]AblationRow, error) {
	return sweep("eta", []int{2, 4, 8, 16}, opts, func(v int, o *core.Options) {
		o.MutateNetwork = func(c *noc.Config) { c.GatherCapacity = v }
	})
}

// AblationGatherVC compares a dedicated gather VC (the conclusion's
// future-work mitigation) against shared VCs: value 0 = shared, 1 =
// dedicated VC.
func AblationGatherVC(opts Options) ([]AblationRow, error) {
	return sweep("gathervc", []int{0, 1}, opts, func(v int, o *core.Options) {
		o.MutateNetwork = func(c *noc.Config) {
			if v == 1 {
				c.Router.GatherVC = c.Router.VCs - 1
			}
		}
	})
}

// AblationVCs sweeps the virtual-channel count.
func AblationVCs(opts Options) ([]AblationRow, error) {
	return sweep("vcs", []int{1, 2, 4, 8}, opts, func(v int, o *core.Options) {
		o.MutateNetwork = func(c *noc.Config) { c.Router.VCs = v }
	})
}

// AblationBufferDepth sweeps the per-VC buffer depth.
func AblationBufferDepth(opts Options) ([]AblationRow, error) {
	return sweep("depth", []int{2, 4, 8}, opts, func(v int, o *core.Options) {
		o.MutateNetwork = func(c *noc.Config) { c.Router.BufferDepth = v }
	})
}

// AblationSinkCost sweeps the global buffer's per-packet transaction
// overhead — the substitution DESIGN.md §3 documents. At 0 the wormhole
// pipeline absorbs RU traffic and the gather latency advantage vanishes
// (energy advantage remains).
func AblationSinkCost(opts Options) ([]AblationRow, error) {
	return sweep("sinkcost", []int{0, 2, 5, 10}, opts, func(v int, o *core.Options) {
		o.MutateNetwork = func(c *noc.Config) { c.SinkPacketOverhead = int64(v) }
	})
}

// AblationSkew sweeps the PE completion stagger per hop of systolic
// distance. Stagger spreads RU injections, but a per-hop stagger equal to
// κ makes a row's packets arrive at the buffer simultaneously (the stagger
// exactly cancels the hop-distance head start), maximizing the per-packet
// transaction serialization — so the gather advantage grows toward
// skew = κ rather than eroding monotonically.
func AblationSkew(opts Options) ([]AblationRow, error) {
	return sweep("skew", []int{0, 1, 2, 4}, opts, func(v int, o *core.Options) {
		o.MutateSystolic = func(s *systolic.Config) { s.SkewPerHop = v }
	})
}

// AblationRouting compares XY and adaptive west-first routing for the
// collection workload (value 0 = XY, 1 = west-first). Collection traffic
// is purely eastward, so the algorithms should agree — a consistency check
// that the adaptive machinery does not distort the headline experiment.
func AblationRouting(opts Options) ([]AblationRow, error) {
	algos := []string{"xy", "westfirst"}
	return sweep("routing", []int{0, 1}, opts, func(v int, o *core.Options) {
		algo := algos[v]
		o.MutateNetwork = func(c *noc.Config) { c.Routing = algo }
	})
}

// RenderAblation formats a sweep.
func RenderAblation(title string, rows []AblationRow) string {
	var b strings.Builder
	b.WriteString(title)
	b.WriteString("\n")
	fmt.Fprintf(&b, "%10s %10s %10s %10s\n", "value", "latency%", "power%", "selfinit")
	for _, r := range rows {
		fmt.Fprintf(&b, "%10d %10.2f %10.2f %10d\n",
			r.Value, r.LatencyImprovement, r.PowerImprovement, r.SelfInitiated)
	}
	return b.String()
}
