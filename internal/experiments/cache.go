package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"gathernoc/internal/cnn"
	"gathernoc/internal/core"
)

// cacheSchema tags the on-disk entry envelope. It versions the storage
// format only; result semantics are versioned inside the key itself
// (core.ComparisonKeyVersion), so a simulator behaviour change produces
// new keys rather than stale-looking files.
const cacheSchema = "gathernoc/experiments.Cache/v1"

// CacheStats is the hit accounting a sweep accumulates.
type CacheStats struct {
	// Hits and Misses count lookups; Stale counts entries that were found
	// but rejected (wrong schema, key collision, undecodable payload) and
	// then recomputed.
	Hits   uint64
	Misses uint64
	Stale  uint64
	// BytesRead and BytesWritten count entry payloads moved through the
	// cache (hits read, stores write).
	BytesRead    uint64
	BytesWritten uint64
}

// Cache memoizes simulation results content-addressed by their canonical
// input key: identical simulation inputs — after config-hash
// normalization, whatever closures produced them — map to one entry.
// Lookups always hit the in-memory layer first; with a directory
// configured, entries are also persisted as one JSON file per key, so a
// rerun in a fresh process warm-starts from disk. Safe for concurrent use
// by sweep workers.
type Cache struct {
	dir string

	mu    sync.Mutex
	mem   map[string][]byte
	stats CacheStats
}

// NewCache opens a cache over dir, creating the directory if needed. An
// empty dir selects a purely in-memory cache (one process's sweeps share
// results; nothing persists).
func NewCache(dir string) (*Cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("cache: %w", err)
		}
	}
	return &Cache{dir: dir, mem: make(map[string][]byte)}, nil
}

// Dir returns the persistence directory ("" = memory-only).
func (c *Cache) Dir() string { return c.dir }

// Stats returns a snapshot of the hit accounting.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// cacheEntry is the one-file-per-key disk format: the schema tag and full
// key make every entry self-validating, so a hash collision or a file
// from an incompatible layout is detected and treated as stale instead of
// silently decoded.
type cacheEntry struct {
	Schema string
	Key    string
	Result json.RawMessage
}

// hashKey content-addresses a canonical key string.
func hashKey(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

func (c *Cache) path(hash string) string {
	return filepath.Join(c.dir, hash+".json")
}

// get returns the payload stored under key, consulting memory then disk.
func (c *Cache) get(key string) ([]byte, bool) {
	hash := hashKey(key)
	c.mu.Lock()
	defer c.mu.Unlock()
	if data, ok := c.mem[hash]; ok {
		c.stats.Hits++
		c.stats.BytesRead += uint64(len(data))
		return data, true
	}
	if c.dir == "" {
		c.stats.Misses++
		return nil, false
	}
	raw, err := os.ReadFile(c.path(hash))
	if err != nil {
		c.stats.Misses++
		return nil, false
	}
	var e cacheEntry
	if err := json.Unmarshal(raw, &e); err != nil || e.Schema != cacheSchema || e.Key != key {
		c.stats.Stale++
		c.stats.Misses++
		return nil, false
	}
	c.mem[hash] = e.Result
	c.stats.Hits++
	c.stats.BytesRead += uint64(len(e.Result))
	return e.Result, true
}

// put stores a payload under key in memory and, when configured, on disk.
// Disk write failures are surfaced; the in-memory entry stays either way.
func (c *Cache) put(key string, data []byte) error {
	hash := hashKey(key)
	c.mu.Lock()
	c.mem[hash] = data
	c.stats.BytesWritten += uint64(len(data))
	dir := c.dir
	c.mu.Unlock()
	if dir == "" {
		return nil
	}
	raw, err := json.Marshal(cacheEntry{Schema: cacheSchema, Key: key, Result: data})
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	// Write-then-rename so a crashed or concurrent sweep never leaves a
	// torn entry under the content-addressed name.
	tmp, err := os.CreateTemp(dir, "entry-*.tmp")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(hash)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	return nil
}

// markStale records an entry that decoded at the envelope level but whose
// payload could not be used.
func (c *Cache) markStale() {
	c.mu.Lock()
	c.stats.Stale++
	c.mu.Unlock()
}

// cachedCompareLayer is the memoized form of core.CompareLayer every
// experiment sweep routes through: on a hit the stored comparison is
// decoded and returned without constructing a network; on a miss the
// simulation runs and its result is stored. A nil cache degenerates to a
// plain call, leaving uncached sweeps bit-identical to the pre-cache
// code path.
func cachedCompareLayer(cache *Cache, rows, cols int, layer cnn.LayerConfig, opts core.Options) (*core.Comparison, error) {
	if cache == nil {
		return core.CompareLayer(rows, cols, layer, opts)
	}
	key, err := core.ComparisonKey(rows, cols, layer, opts)
	if err != nil {
		// Unkeyable inputs are never wrong results — just uncacheable.
		return core.CompareLayer(rows, cols, layer, opts)
	}
	if data, ok := cache.get(key); ok {
		var cmp core.Comparison
		if err := json.Unmarshal(data, &cmp); err == nil {
			return &cmp, nil
		}
		cache.markStale()
	}
	cmp, err := core.CompareLayer(rows, cols, layer, opts)
	if err != nil {
		return nil, err
	}
	data, err := json.Marshal(cmp)
	if err != nil {
		return cmp, nil
	}
	if err := cache.put(key, data); err != nil {
		return cmp, err
	}
	return cmp, nil
}
