package experiments

import (
	"context"
	"fmt"
	"strings"

	"gathernoc/internal/collective"
	"gathernoc/internal/noc"
	"gathernoc/internal/power"
	"gathernoc/internal/traffic"
)

// CollectiveRow is one cell of the mesh-wide collective comparison: an
// all-reduce under one transport on one fabric, or the repeated
// row-collection baseline that delivers every row's reduction to the
// global buffer separately.
type CollectiveRow struct {
	Mesh      int
	Algorithm string
	// RoundCycles is the mean round latency (compute included);
	// PacketLatency the mean end-to-end packet latency.
	RoundCycles   float64
	PacketLatency float64
	// RootFlits counts the flit transactions at the reduction's final
	// ejection point: the tree root for the collectives, the row sinks
	// summed for the baseline. This is the serialization the tree
	// amortizes — the paper's sink-port argument lifted from one row to
	// the whole fabric.
	RootFlits uint64
	// Merges counts piggyback uploads and in-network merges;
	// SelfInitiated the δ-timeout fallback packets.
	Merges        uint64
	SelfInitiated uint64
	// LinkFlits is the total channel traffic; NoCPJ the network dynamic
	// energy of the simulated rounds.
	LinkFlits uint64
	NoCPJ     float64
}

// collectivePoint is one (mesh, algorithm) cell; the empty algorithm
// marks the repeated row-gather baseline.
type collectivePoint struct {
	mesh int
	alg  collective.Algorithm
}

// CollectiveBaseline names the repeated row-collection comparison rows.
const CollectiveBaseline = "rowgather"

// collectiveComputeLatency fixes the modeled per-round compute time so
// rows differ only in transport.
const collectiveComputeLatency = 32

// CollectiveComparison runs the mesh-wide all-reduce comparison: the
// two-level collective tree (gather transport), the flat-unicast
// baseline, the INA-fused tree, and — as the "no mesh-wide collective"
// reference — repeated row-gather collection, which lands one packet per
// row per round at the global-buffer sinks and leaves the cross-row
// reduction to the buffer. One simulation point per (mesh, algorithm) on
// the sweep pool.
func CollectiveComparison(opts Options) ([]CollectiveRow, error) {
	meshes := opts.meshes()
	algs := []collective.Algorithm{collective.AlgTree, collective.AlgFlat, collective.AlgFused}
	points := make([]collectivePoint, 0, len(meshes)*(len(algs)+1))
	for _, mesh := range meshes {
		for _, alg := range algs {
			points = append(points, collectivePoint{mesh: mesh, alg: alg})
		}
		points = append(points, collectivePoint{mesh: mesh}) // baseline
	}
	rows, err := Sweep(opts.ctx(), opts.Workers, points,
		func(_ context.Context, _ int, p collectivePoint) (CollectiveRow, error) {
			return runCollectivePoint(p, opts)
		})
	if err != nil {
		return nil, fmt.Errorf("collectives: %w", err)
	}
	return rows, nil
}

// runCollectivePoint executes one comparison cell.
func runCollectivePoint(p collectivePoint, opts Options) (CollectiveRow, error) {
	rounds := opts.Rounds
	if rounds == 0 {
		rounds = 2
	}
	cfg := noc.DefaultConfig(p.mesh, p.mesh)
	cfg.EnableINA = true
	nw, err := noc.New(cfg)
	if err != nil {
		return CollectiveRow{}, err
	}
	if p.alg == 0 {
		return runCollectiveBaseline(nw, p.mesh, rounds)
	}
	ctl, err := collective.NewController(nw, collective.Config{
		Op:             collective.AllReduce,
		Algorithm:      p.alg,
		Rounds:         rounds,
		ComputeLatency: collectiveComputeLatency,
	})
	if err != nil {
		return CollectiveRow{}, err
	}
	res, err := ctl.Run(50_000_000)
	if err != nil {
		return CollectiveRow{}, fmt.Errorf("allreduce %s %dx%d: %w", p.alg, p.mesh, p.mesh, err)
	}
	if res.OracleErrors != 0 || res.BroadcastErrors != 0 {
		return CollectiveRow{}, fmt.Errorf("allreduce %s %dx%d: %d oracle / %d broadcast errors",
			p.alg, p.mesh, p.mesh, res.OracleErrors, res.BroadcastErrors)
	}
	return CollectiveRow{
		Mesh:          p.mesh,
		Algorithm:     p.alg.String(),
		RoundCycles:   res.RoundCycles.Mean(),
		PacketLatency: res.PacketLatency.Mean(),
		RootFlits:     res.RootFlits,
		Merges:        res.Merges,
		SelfInitiated: res.SelfInitiated,
		LinkFlits:     res.Activity.LinkFlits,
		NoCPJ:         collectivePower(res.Activity, res.Cycles),
	}, nil
}

// runCollectiveBaseline executes the repeated row-gather reference: per
// round, every row's partial sums are gathered to its own sink and the
// cross-row reduction is left to the buffer — the fabric's reach before
// the collective tree existed.
func runCollectiveBaseline(nw *noc.Network, mesh, rounds int) (CollectiveRow, error) {
	ctl, err := traffic.NewAccumulationController(nw, traffic.AccumulationConfig{
		Scheme:         traffic.CollectGather,
		Rounds:         rounds,
		ComputeLatency: collectiveComputeLatency,
	})
	if err != nil {
		return CollectiveRow{}, err
	}
	res, err := ctl.Run(50_000_000)
	if err != nil {
		return CollectiveRow{}, fmt.Errorf("rowgather %dx%d: %w", mesh, mesh, err)
	}
	if res.OracleErrors != 0 {
		return CollectiveRow{}, fmt.Errorf("rowgather %dx%d: %d oracle errors", mesh, mesh, res.OracleErrors)
	}
	return CollectiveRow{
		Mesh:          mesh,
		Algorithm:     CollectiveBaseline,
		RoundCycles:   res.RoundCycles.Mean(),
		PacketLatency: res.PacketLatency.Mean(),
		RootFlits:     res.SinkFlits,
		Merges:        res.Merges,
		SelfInitiated: res.SelfInitiated,
		LinkFlits:     res.Activity.LinkFlits,
		NoCPJ:         collectivePower(res.Activity, res.Cycles),
	}, nil
}

func collectivePower(a noc.Activity, cycles int64) float64 {
	report := power.Compute(power.Events{
		BufferWrites:   a.BufferWrites,
		BufferReads:    a.BufferReads,
		RCComputations: a.RCComputations,
		VAAllocations:  a.VAAllocations,
		SAGrants:       a.SAGrants,
		Crossings:      a.Crossings,
		LinkFlits:      a.LinkFlits,
		GatherUploads:  a.GatherUploads,
		ReduceMerges:   a.ReduceMerges,
	}, power.DefaultCoefficients(), cycles, 1.0)
	return report.NoCPJ
}

// RenderCollectives formats the comparison as an algorithm table per
// mesh.
func RenderCollectives(rows []CollectiveRow) string {
	var b strings.Builder
	b.WriteString("Extension: mesh-wide all-reduce — collective tree vs flat unicast vs INA-fused vs repeated row-gather\n")
	fmt.Fprintf(&b, "%7s %10s %12s %10s %10s %8s %8s %10s %12s\n",
		"mesh", "algorithm", "round", "pkt lat", "rootflits", "merges", "selfinit", "linkflits", "noc pJ")
	for _, r := range rows {
		fmt.Fprintf(&b, "%4dx%-2d %10s %12.1f %10.1f %10d %8d %8d %10d %12.0f\n",
			r.Mesh, r.Mesh, r.Algorithm, r.RoundCycles, r.PacketLatency,
			r.RootFlits, r.Merges, r.SelfInitiated, r.LinkFlits, r.NoCPJ)
	}
	return b.String()
}
