package experiments

import (
	"math"
	"testing"
)

// TestTopologyComparison is the acceptance test for the topology ×
// routing sweep: every cell completes, the measured mean hop count of
// every minimal routing tracks the analytic uniform-traffic bound, and
// the torus's wrap-aware routing strictly cuts hops (and with them
// network latency) relative to the mesh at every sampled load.
func TestTopologyComparison(t *testing.T) {
	rows, err := TopologyComparison(Options{Meshes: []int{4}, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 2 * 3 * len(TopologyComparisonRates)
	if len(rows) != wantRows {
		t.Fatalf("got %d rows, want %d", len(rows), wantRows)
	}
	meshXY := map[float64]TopologyRow{}
	torusXY := map[float64]TopologyRow{}
	for _, r := range rows {
		if r.Throughput <= 0 {
			t.Errorf("%s/%s@%v: zero throughput", r.Topology, r.Routing, r.Rate)
		}
		// Minimal routing: the measured hop mean sits at the analytic
		// bound, modulo the finite sample of random pairs.
		if math.Abs(r.AvgHops-r.MeanHopBound) > 0.4 {
			t.Errorf("%s/%s@%v: avg hops %.2f vs bound %.2f", r.Topology, r.Routing, r.Rate, r.AvgHops, r.MeanHopBound)
		}
		if r.AvgHops > float64(r.MaxHopBound) {
			t.Errorf("%s/%s@%v: avg hops %.2f exceed diameter %d", r.Topology, r.Routing, r.Rate, r.AvgHops, r.MaxHopBound)
		}
		if r.Topology == "mesh" && r.Routing == "xy" {
			meshXY[r.Rate] = r
		}
		if r.Topology == "torus" && r.Routing == "xy" {
			torusXY[r.Rate] = r
		}
	}
	for rate, mr := range meshXY {
		tr, ok := torusXY[rate]
		if !ok {
			t.Fatalf("missing torus xy row at rate %v", rate)
		}
		if tr.AvgHops >= mr.AvgHops {
			t.Errorf("rate %v: torus hops %.2f not below mesh hops %.2f", rate, tr.AvgHops, mr.AvgHops)
		}
		if tr.MaxHopBound >= mr.MaxHopBound {
			t.Errorf("torus diameter %d not below mesh diameter %d", tr.MaxHopBound, mr.MaxHopBound)
		}
	}
	if s := RenderTopologyComparison(rows); len(s) == 0 {
		t.Error("empty rendering")
	}
}
