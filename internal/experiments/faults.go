package experiments

import (
	"fmt"
	"strings"

	"gathernoc/internal/fault"
	"gathernoc/internal/noc"
	"gathernoc/internal/topology"
	"gathernoc/internal/traffic"
)

// FaultSweepRow is one point of the degradation-under-loss sweep: a
// collection scheme's accumulation round latency at one transient flit
// drop rate, with the recovery accounting alongside.
type FaultSweepRow struct {
	Scheme string
	// DropRate is the per-link-traversal flit drop probability (the
	// corruption rate rides along at a quarter of it).
	DropRate float64
	// RoundCycles is the mean accumulation round latency.
	RoundCycles float64
	// Slowdown is RoundCycles relative to the scheme's fault-free point —
	// the price of recovery, since delivery stays at 100% throughout.
	Slowdown float64
	// Drops and Corrupts count the flits the injector destroyed;
	// Retransmits the end-to-end resends that recovered them.
	Drops       uint64
	Corrupts    uint64
	Retransmits uint64
	// SelfInitiated counts δ-timeout fallback packets — under loss the
	// collectives degrade toward the unicast path rather than waiting on
	// operands that died.
	SelfInitiated uint64
	// OracleErrors must be zero at every point: the retransmission layer
	// trades latency for loss, never correctness.
	OracleErrors int
}

// FaultSweep measures graceful degradation on the 8x8 fabric: each
// collection scheme's round latency as the transient drop rate rises.
// Every point must complete oracle-exact — lost operands are recovered by
// the NIC retransmission layer, and gather/INA collectives fall back to
// the δ-timeout unicast path when loss starves their merge windows.
func FaultSweep(opts Options) ([]FaultSweepRow, error) {
	rates := []float64{0, 0.005, 0.01, 0.02, 0.05}
	schemes := []traffic.CollectScheme{traffic.CollectUnicast, traffic.CollectGather, traffic.CollectINA}
	ctx := opts.ctx()
	rows := make([]FaultSweepRow, 0, len(rates)*len(schemes))
	for _, scheme := range schemes {
		var base float64
		for _, rate := range rates {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			row, err := runFaultPoint(scheme, rate, opts)
			if err != nil {
				return nil, fmt.Errorf("fault sweep %s @ %.3f: %w", scheme, rate, err)
			}
			if rate == 0 {
				base = row.RoundCycles
			}
			if base > 0 {
				row.Slowdown = row.RoundCycles / base
			}
			rows = append(rows, *row)
		}
	}
	return rows, nil
}

func runFaultPoint(scheme traffic.CollectScheme, rate float64, opts Options) (*FaultSweepRow, error) {
	cfg := noc.DefaultConfig(8, 8)
	cfg.EnableINA = scheme == traffic.CollectINA
	if rate > 0 {
		cfg.Faults = &fault.Config{Seed: 1, DropRate: rate, CorruptRate: rate / 4}
	}
	nw, err := noc.New(cfg)
	if err != nil {
		return nil, err
	}
	defer nw.Close()
	// The watchdog bounds a wedged point to one no-progress window instead
	// of the whole cycle budget.
	nw.Engine().SetWatchdog(nw.Watchdog(0))
	rounds := opts.Rounds
	if rounds == 0 {
		rounds = 2
	}
	ctl, err := traffic.NewAccumulationController(nw, traffic.AccumulationConfig{
		Scheme: scheme, Rounds: rounds, ComputeLatency: 20,
	})
	if err != nil {
		return nil, err
	}
	res, err := ctl.Run(20_000_000)
	if err != nil {
		return nil, err
	}
	row := &FaultSweepRow{
		Scheme:        scheme.String(),
		DropRate:      rate,
		RoundCycles:   res.RoundCycles.Mean(),
		SelfInitiated: res.SelfInitiated,
		OracleErrors:  res.OracleErrors,
	}
	if inj := nw.FaultInjector(); inj != nil {
		row.Drops = inj.Drops()
		row.Corrupts = inj.Corrupts()
	}
	for id := 0; id < nw.Topology().NumNodes(); id++ {
		row.Retransmits += nw.NIC(topology.NodeID(id)).Retransmits.Value()
	}
	if row.OracleErrors != 0 {
		return nil, fmt.Errorf("%d oracle errors — recovery lost payloads", row.OracleErrors)
	}
	return row, nil
}

// RenderFaultSweep formats the degradation sweep.
func RenderFaultSweep(rows []FaultSweepRow) string {
	var b strings.Builder
	b.WriteString("Extension: reliability under transient faults (8x8 accumulation, oracle-exact at every point)\n")
	fmt.Fprintf(&b, "%8s %9s %10s %9s %7s %9s %12s %9s\n",
		"scheme", "droprate", "round cyc", "slowdown", "drops", "corrupts", "retransmits", "fallback")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8s %9.3f %10.1f %8.2fx %7d %9d %12d %9d\n",
			r.Scheme, r.DropRate, r.RoundCycles, r.Slowdown,
			r.Drops, r.Corrupts, r.Retransmits, r.SelfInitiated)
	}
	return b.String()
}
