package experiments

import (
	"strings"
	"testing"
)

func TestFullAlexNetAggregates(t *testing.T) {
	r, err := FullAlexNet(4, Options{Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Layers) != 11 {
		t.Fatalf("layers = %d, want 11", len(r.Layers))
	}
	var sumRU, sumG int64
	kinds := map[string]int{}
	for _, l := range r.Layers {
		if l.GatherCycles >= l.RUCycles {
			t.Errorf("%s: gather %d >= RU %d", l.Layer, l.GatherCycles, l.RUCycles)
		}
		sumRU += l.RUCycles
		sumG += l.GatherCycles
		kinds[l.Kind]++
	}
	if kinds["conv"] != 5 || kinds["pool"] != 3 || kinds["fc"] != 3 {
		t.Errorf("kind mix = %v", kinds)
	}
	if sumRU != r.RUTotalCycles || sumG != r.GatherTotalCycles {
		t.Errorf("totals %d/%d don't match sums %d/%d",
			r.RUTotalCycles, r.GatherTotalCycles, sumRU, sumG)
	}
	if r.LatencyImprovement <= 0 || r.PowerImprovement <= 0 {
		t.Errorf("model improvements %.2f/%.2f not positive",
			r.LatencyImprovement, r.PowerImprovement)
	}

	// Pooling layers have tiny per-output compute (9 ops), so collection
	// dominates and gather helps them most of any kind.
	var bestPool, bestConv float64
	for _, l := range r.Layers {
		switch l.Kind {
		case "pool":
			if l.LatencyImprovement > bestPool {
				bestPool = l.LatencyImprovement
			}
		case "conv":
			if l.LatencyImprovement > bestConv {
				bestConv = l.LatencyImprovement
			}
		}
	}
	if bestPool <= bestConv {
		t.Errorf("pooling improvement %.2f <= conv %.2f (pooling should dominate)",
			bestPool, bestConv)
	}

	out := RenderModel(r)
	for _, frag := range []string{"TOTAL", "Pool1", "FC8", "conv"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q", frag)
		}
	}
}

func TestFullVGG16Aggregates(t *testing.T) {
	if testing.Short() {
		t.Skip("21-layer model run")
	}
	r, err := FullVGG16(4, Options{Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Layers) != 21 {
		t.Fatalf("layers = %d, want 21", len(r.Layers))
	}
	if r.LatencyImprovement <= 0 || r.PowerImprovement <= 0 {
		t.Errorf("model improvements %.2f/%.2f not positive",
			r.LatencyImprovement, r.PowerImprovement)
	}
	for _, l := range r.Layers {
		if l.GatherCycles >= l.RUCycles {
			t.Errorf("%s: gather %d >= RU %d", l.Layer, l.GatherCycles, l.RUCycles)
		}
	}
}
