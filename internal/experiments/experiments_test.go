package experiments

import (
	"strings"
	"testing"
)

// quickOpts keeps the suite fast in unit tests: one round, small meshes.
func quickOpts() Options {
	return Options{Rounds: 1, Meshes: []int{4, 8}}
}

func TestTable2ShapesMatchPaper(t *testing.T) {
	rows, err := Table2(Options{Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	for _, r := range rows {
		if r.Simulated < r.Estimated {
			t.Errorf("%s: simulated %.2f < estimated %.2f (paper: congestion makes simulated larger)",
				r.Layer, r.Simulated, r.Estimated)
		}
		if r.Estimated <= 0 || r.Simulated <= 0 {
			t.Errorf("%s: non-positive improvement", r.Layer)
		}
	}
	// Conv1 (smallest C·R·R) shows the largest improvement.
	for _, r := range rows[1:] {
		if r.Simulated >= rows[0].Simulated {
			t.Errorf("Conv1 should dominate: %s=%.2f vs Conv1=%.2f",
				r.Layer, r.Simulated, rows[0].Simulated)
		}
	}
	out := RenderTable2(rows)
	for _, frag := range []string{"Estimated", "Simulated", "Conv5"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q", frag)
		}
	}
}

func TestFig7BiggerMeshImprovesMore(t *testing.T) {
	rows, err := Fig7(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]float64{}
	for _, r := range rows {
		byKey[r.Layer+string(rune(r.Mesh))] = r.Improvement
	}
	for _, layer := range []string{"Conv1", "Conv2", "Conv3", "Conv4", "Conv5"} {
		small := byKey[layer+string(rune(4))]
		big := byKey[layer+string(rune(8))]
		if big <= small {
			t.Errorf("%s: 8x8 improvement %.2f <= 4x4 %.2f", layer, big, small)
		}
	}
}

func TestFig8VGGPositive(t *testing.T) {
	rows, err := Fig8(Options{Rounds: 1, Meshes: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 selected VGG layers", len(rows))
	}
	for _, r := range rows {
		if r.Improvement <= 0 {
			t.Errorf("%s: improvement %.2f not positive", r.Layer, r.Improvement)
		}
		if r.Model != "VGG-16" {
			t.Errorf("model = %q", r.Model)
		}
	}
	// VGG Conv1 (smallest C·R·R) dominates, as in the paper.
	for _, r := range rows[1:] {
		if r.Improvement >= rows[0].Improvement {
			t.Errorf("VGG Conv1 should dominate: %s=%.2f vs %.2f",
				r.Layer, r.Improvement, rows[0].Improvement)
		}
	}
}

func TestFig9PowerShape(t *testing.T) {
	rows, err := Fig9(Options{Rounds: 1, Meshes: []int{8, 16}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Improvement <= 0 {
			t.Errorf("%s %dx%d: power improvement %.2f not positive",
				r.Layer, r.Mesh, r.Mesh, r.Improvement)
		}
		// The paper: all AlexNet layers below 1% on the 8x8 mesh.
		if r.Mesh == 8 && r.Improvement >= 1.0 {
			t.Errorf("%s on 8x8: power improvement %.2f >= 1%%", r.Layer, r.Improvement)
		}
	}
	// And the 16x16 mesh improves more than the 8x8 (per layer).
	by := map[string]map[int]float64{}
	for _, r := range rows {
		if by[r.Layer] == nil {
			by[r.Layer] = map[int]float64{}
		}
		by[r.Layer][r.Mesh] = r.Improvement
	}
	for layer, m := range by {
		if m[16] <= m[8] {
			t.Errorf("%s: 16x16 power %.2f <= 8x8 %.2f", layer, m[16], m[8])
		}
	}
}

func TestFig10VGGPowerPositive(t *testing.T) {
	rows, err := Fig10(Options{Rounds: 1, Meshes: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Improvement <= 0 {
			t.Errorf("%s: %.3f not positive", r.Layer, r.Improvement)
		}
	}
}

func TestFig1HopCounts(t *testing.T) {
	r := Fig1()
	if r.UnicastHops != 15 || r.GatherHops != 5 {
		t.Errorf("hops = %d/%d, want 15/5 (the paper's Fig. 1 numbers)",
			r.UnicastHops, r.GatherHops)
	}
	if !strings.Contains(RenderFig1(r), "15 hops") {
		t.Error("render missing hop count")
	}
}

func TestRenderTables(t *testing.T) {
	t1 := RenderTable1(8, 8)
	for _, frag := range []string{"8x8 Mesh", "Virtual Channels    4", "98 bits", "Gather: 4 flits"} {
		if !strings.Contains(t1, frag) {
			t.Errorf("Table I render missing %q:\n%s", frag, t1)
		}
	}
	t3 := RenderTable3()
	for _, frag := range []string{"AlexNet Conv1", "VGG-16 Conv4", "3x64@11x11"} {
		if !strings.Contains(t3, frag) {
			t.Errorf("Table III render missing %q", frag)
		}
	}
}

func TestRenderImprovementsLayout(t *testing.T) {
	rows := []ImprovementRow{
		{Model: "AlexNet", Layer: "Conv1", Mesh: 8, Improvement: 4.5},
		{Model: "AlexNet", Layer: "Conv2", Mesh: 8, Improvement: 1.1},
		{Model: "AlexNet", Layer: "Conv1", Mesh: 16, Improvement: 9.0},
		{Model: "AlexNet", Layer: "Conv2", Mesh: 16, Improvement: 2.2},
	}
	out := RenderImprovements("Fig X", "%", rows)
	if !strings.Contains(out, "8x8") || !strings.Contains(out, "16x16") {
		t.Errorf("render missing mesh rows:\n%s", out)
	}
	if !strings.Contains(out, "Conv1") || !strings.Contains(out, "Conv2") {
		t.Errorf("render missing layer headers:\n%s", out)
	}
}
