package experiments

import (
	"context"
	"strings"
	"testing"
)

func collectiveRow(t *testing.T, rows []CollectiveRow, mesh int, alg string) *CollectiveRow {
	t.Helper()
	for i := range rows {
		if rows[i].Mesh == mesh && rows[i].Algorithm == alg {
			return &rows[i]
		}
	}
	t.Fatalf("missing row %dx%d/%s", mesh, mesh, alg)
	return nil
}

// TestCollectiveComparisonAcceptance pins this PR's acceptance criterion:
// on the 8x8 mesh the tree all-reduce lands strictly fewer flits at its
// root than repeated row-gather collection lands at the sinks, and the
// INA-fused tree in turn undercuts the plain tree while the flat-unicast
// baseline is the worst serialization of all.
func TestCollectiveComparisonAcceptance(t *testing.T) {
	rows, err := CollectiveComparison(Options{Rounds: 2, Meshes: []int{8}})
	if err != nil {
		t.Fatal(err)
	}
	tree := collectiveRow(t, rows, 8, "tree")
	flat := collectiveRow(t, rows, 8, "flat")
	fused := collectiveRow(t, rows, 8, "fused")
	base := collectiveRow(t, rows, 8, CollectiveBaseline)
	if tree.RootFlits >= base.RootFlits {
		t.Errorf("tree root flits %d not below repeated row-gather %d",
			tree.RootFlits, base.RootFlits)
	}
	if fused.RootFlits > tree.RootFlits {
		t.Errorf("fused root flits %d above tree %d", fused.RootFlits, tree.RootFlits)
	}
	if flat.RootFlits <= tree.RootFlits {
		t.Errorf("flat root flits %d not above tree %d — the tree buys nothing",
			flat.RootFlits, tree.RootFlits)
	}
	if fused.Merges == 0 {
		t.Error("fused tree reported no in-network merges")
	}
	if tree.Merges == 0 {
		t.Error("gather tree reported no piggyback merges")
	}
	for _, r := range rows {
		if r.RoundCycles <= 0 || r.LinkFlits == 0 || r.NoCPJ <= 0 {
			t.Errorf("row %+v has empty activity", r)
		}
	}
}

// TestCollectiveComparisonDeterministic verifies identical rows across
// worker schedules.
func TestCollectiveComparisonDeterministic(t *testing.T) {
	opts := Options{Rounds: 1, Meshes: []int{4}}
	a, err := CollectiveComparison(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 1
	b, err := CollectiveComparison(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("row %d diverged:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

// TestCollectiveComparisonCancellation verifies ctx cancellation surfaces.
func TestCollectiveComparisonCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CollectiveComparison(Options{Rounds: 1, Meshes: []int{4}, Ctx: ctx}); err == nil {
		t.Fatal("cancelled comparison must error")
	}
}

func TestRenderCollectives(t *testing.T) {
	rows := []CollectiveRow{{
		Mesh: 8, Algorithm: "tree", RoundCycles: 120, PacketLatency: 30,
		RootFlits: 10, Merges: 12, LinkFlits: 500, NoCPJ: 4000,
	}}
	out := RenderCollectives(rows)
	if !strings.Contains(out, "tree") || !strings.Contains(out, "all-reduce") {
		t.Errorf("render missing content:\n%s", out)
	}
}
