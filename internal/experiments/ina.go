package experiments

import (
	"context"
	"fmt"
	"strings"

	"gathernoc/internal/cnn"
	"gathernoc/internal/noc"
	"gathernoc/internal/power"
	"gathernoc/internal/stats"
	"gathernoc/internal/traffic"
)

// INARow is one cell of the in-network-accumulation comparison: a layer's
// accumulation phase on a mesh under one collection scheme.
type INARow struct {
	Layer  string
	Mesh   int
	Scheme string
	// RoundCycles is the mean simulated round latency; TotalCycles the
	// whole-phase extrapolation.
	RoundCycles float64
	TotalCycles int64
	// SinkFlitsPerRow is the mean sink flit transactions per row
	// reduction; PacketLatency the mean end-to-end packet latency.
	SinkFlitsPerRow float64
	PacketLatency   float64
	// Merges counts in-network merges, SelfInitiated the δ fallbacks.
	Merges        uint64
	SelfInitiated uint64
	// LinkFlits is the total channel traffic; NoCPJ the network dynamic
	// energy of the simulated rounds (merge adders included).
	LinkFlits uint64
	NoCPJ     float64
	// Reduction accounts the wire work the merges avoided.
	Reduction stats.ReductionStats
}

// inaPoint is one (mesh, layer, scheme) cell of the INA sweep grid.
type inaPoint struct {
	mesh   int
	layer  cnn.LayerConfig
	scheme traffic.CollectScheme
}

// inaSchemes orders the comparison's collection schemes.
var inaSchemes = []traffic.CollectScheme{
	traffic.CollectUnicast, traffic.CollectGather, traffic.CollectINA,
}

// INAComparison runs the gather-vs-INA-vs-unicast comparison on the
// accumulation-phase workload (conv partial sums reduced across each mesh
// row) for AlexNet's convolution layers, one simulation point per (mesh,
// layer, scheme) on the sweep pool. The INA rows demonstrate the
// follow-on paper's claim: reducing partial sums inside the routers beats
// gathering them — fewer sink transactions, shorter packets, lower
// latency — at the cost of one adder event per merge.
func INAComparison(opts Options) ([]INARow, error) {
	layers := cnn.AlexNetConvLayers()
	meshes := opts.meshes()
	points := make([]inaPoint, 0, len(meshes)*len(layers)*len(inaSchemes))
	for _, mesh := range meshes {
		for _, layer := range layers {
			for _, scheme := range inaSchemes {
				points = append(points, inaPoint{mesh: mesh, layer: layer, scheme: scheme})
			}
		}
	}
	rows, err := Sweep(opts.ctx(), opts.Workers, points,
		func(_ context.Context, _ int, p inaPoint) (INARow, error) {
			return runINAPoint(p, opts)
		})
	if err != nil {
		return nil, fmt.Errorf("ina: %w", err)
	}
	return rows, nil
}

// runINAPoint executes one accumulation-phase run and projects its row.
func runINAPoint(p inaPoint, opts Options) (INARow, error) {
	cfg := noc.DefaultConfig(p.mesh, p.mesh)
	cfg.EnableINA = true
	nw, err := noc.New(cfg)
	if err != nil {
		return INARow{}, err
	}
	rounds := opts.Rounds
	if rounds == 0 {
		rounds = 2
	}
	ctl, err := traffic.NewAccumulationController(nw, traffic.AccumulationConfig{
		Scheme:         p.scheme,
		Rounds:         rounds,
		TotalRounds:    p.layer.AccumulationRounds(p.mesh),
		ComputeLatency: p.layer.PartialMACsPerPE(p.mesh) + 5, // + T_MAC
	})
	if err != nil {
		return INARow{}, err
	}
	res, err := ctl.Run(50_000_000)
	if err != nil {
		return INARow{}, fmt.Errorf("%s %s %dx%d: %w", p.layer.Name, p.scheme, p.mesh, p.mesh, err)
	}
	if res.OracleErrors != 0 {
		return INARow{}, fmt.Errorf("%s %s %dx%d: %d oracle errors",
			p.layer.Name, p.scheme, p.mesh, p.mesh, res.OracleErrors)
	}
	a := res.Activity
	report := power.Compute(power.Events{
		BufferWrites:   a.BufferWrites,
		BufferReads:    a.BufferReads,
		RCComputations: a.RCComputations,
		VAAllocations:  a.VAAllocations,
		SAGrants:       a.SAGrants,
		Crossings:      a.Crossings,
		LinkFlits:      a.LinkFlits,
		GatherUploads:  a.GatherUploads,
		ReduceMerges:   a.ReduceMerges,
	}, power.DefaultCoefficients(), res.Cycles, 1.0)
	return INARow{
		Layer:           p.layer.Name,
		Mesh:            p.mesh,
		Scheme:          p.scheme.String(),
		RoundCycles:     res.RoundCycles.Mean(),
		TotalCycles:     res.TotalCycles,
		SinkFlitsPerRow: res.SinkFlitsPerRow(),
		PacketLatency:   res.PacketLatency.Mean(),
		Merges:          res.Merges,
		SelfInitiated:   res.SelfInitiated,
		LinkFlits:       a.LinkFlits,
		NoCPJ:           report.NoCPJ,
		Reduction:       res.Reduction,
	}, nil
}

// RenderINA formats the comparison as a layer-by-scheme table per mesh.
func RenderINA(rows []INARow) string {
	var b strings.Builder
	b.WriteString("Extension: accumulation-phase collection — unicast vs gather vs in-network accumulation\n")
	fmt.Fprintf(&b, "%8s %7s %8s %12s %10s %10s %8s %8s %12s\n",
		"layer", "mesh", "scheme", "round", "sinkflit/row", "pkt lat", "merges", "selfinit", "noc pJ")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8s %4dx%-2d %8s %12.1f %10.2f %10.1f %8d %8d %12.0f\n",
			r.Layer, r.Mesh, r.Mesh, r.Scheme, r.RoundCycles,
			r.SinkFlitsPerRow, r.PacketLatency, r.Merges, r.SelfInitiated, r.NoCPJ)
	}
	return b.String()
}
