package experiments

import (
	"strings"
	"testing"
)

func TestAblationDeltaFailureMode(t *testing.T) {
	rows, err := AblationDelta(Options{Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Flat δ=0 must force widespread self-initiation; a generous flat δ
	// must eliminate it.
	first, last := rows[0], rows[len(rows)-1]
	if first.Value != 0 || first.SelfInitiated == 0 {
		t.Errorf("flat δ=0 self-initiations = %d, want > 0", first.SelfInitiated)
	}
	if last.SelfInitiated != 0 {
		t.Errorf("flat δ=%d self-initiations = %d, want 0", last.Value, last.SelfInitiated)
	}
	// Self-initiation count must not increase with δ.
	for i := 1; i < len(rows); i++ {
		if rows[i].SelfInitiated > rows[i-1].SelfInitiated {
			t.Errorf("self-initiations rose from δ=%d (%d) to δ=%d (%d)",
				rows[i-1].Value, rows[i-1].SelfInitiated, rows[i].Value, rows[i].SelfInitiated)
		}
	}
}

func TestAblationEtaSmallCapacityHurts(t *testing.T) {
	rows, err := AblationEta(Options{Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	by := map[int]float64{}
	for _, r := range rows {
		by[r.Value] = r.LatencyImprovement
	}
	// Full-row capacity (8 on the 8x8 mesh) must beat fragmented gathers
	// (η=2).
	if by[8] <= by[2] {
		t.Errorf("η=8 improvement %.2f <= η=2 %.2f", by[8], by[2])
	}
}

func TestAblationSinkCostZeroKillsLatencyGain(t *testing.T) {
	rows, err := AblationSinkCost(Options{Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	by := map[int]AblationRow{}
	for _, r := range rows {
		by[r.Value] = r
	}
	// The DESIGN.md §3 finding: without per-packet buffer transactions the
	// latency advantage (nearly) vanishes...
	if by[0].LatencyImprovement > 0.5 {
		t.Errorf("sinkcost=0 latency improvement = %.2f, expected ~0", by[0].LatencyImprovement)
	}
	// ...but the energy advantage (fewer hops, fewer flits) remains.
	if by[0].PowerImprovement <= 0 {
		t.Errorf("sinkcost=0 power improvement = %.2f, want > 0", by[0].PowerImprovement)
	}
	// Latency improvement grows with the per-packet cost.
	if by[10].LatencyImprovement <= by[2].LatencyImprovement {
		t.Errorf("latency improvement not increasing in sink cost: %v vs %v",
			by[10].LatencyImprovement, by[2].LatencyImprovement)
	}
}

func TestAblationSkewAlignmentEffect(t *testing.T) {
	rows, err := AblationSkew(Options{Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	by := map[int]float64{}
	for _, r := range rows {
		if r.LatencyImprovement <= 0 {
			t.Errorf("skew=%d: improvement %.2f not positive", r.Value, r.LatencyImprovement)
		}
		by[r.Value] = r.LatencyImprovement
	}
	// A stagger equal to κ (4) aligns a row's RU arrivals at the buffer
	// and maximizes their transaction serialization, so the gather
	// advantage peaks there rather than at zero skew.
	if by[4] <= by[0] {
		t.Errorf("skew=κ improvement %.2f <= skew=0 %.2f (arrival alignment should maximize RU serialization)",
			by[4], by[0])
	}
}

func TestAblationVCsAndDepthRun(t *testing.T) {
	vcs, err := AblationVCs(Options{Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(vcs) != 4 {
		t.Fatalf("vc rows = %d", len(vcs))
	}
	depth, err := AblationBufferDepth(Options{Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range append(vcs, depth...) {
		if r.LatencyImprovement <= 0 {
			t.Errorf("%s=%d: improvement %.2f not positive", r.Param, r.Value, r.LatencyImprovement)
		}
	}
}

func TestAblationGatherVC(t *testing.T) {
	rows, err := AblationGatherVC(Options{Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.LatencyImprovement <= 0 {
			t.Errorf("gathervc=%d: improvement %.2f not positive", r.Value, r.LatencyImprovement)
		}
	}
}

func TestAblationRoutingConsistency(t *testing.T) {
	rows, err := AblationRouting(Options{Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	// Collection traffic is purely eastward: XY and west-first must agree
	// exactly (the adaptive machinery has no choices to make).
	if rows[0].LatencyImprovement != rows[1].LatencyImprovement {
		t.Errorf("xy %.3f != westfirst %.3f",
			rows[0].LatencyImprovement, rows[1].LatencyImprovement)
	}
}

func TestRenderAblation(t *testing.T) {
	out := RenderAblation("sweep", []AblationRow{{Param: "x", Value: 3, LatencyImprovement: 1.5}})
	if !strings.Contains(out, "sweep") || !strings.Contains(out, "3") {
		t.Errorf("render = %q", out)
	}
}
