package experiments

import (
	"context"
	"fmt"
	"strings"

	"gathernoc/internal/analytic"
	"gathernoc/internal/noc"
	"gathernoc/internal/traffic"
)

// TopologyRow is one point of the topology × routing comparison: uniform
// random traffic at one injection rate on one fabric, with the measured
// latency/hop/throughput figures next to the fabric's analytic hop
// bounds.
type TopologyRow struct {
	Topology string
	Routing  string
	// Rate is the offered load in packets/node/cycle; Throughput the
	// accepted load over the measurement window.
	Rate       float64
	Throughput float64
	// AvgLatency is the mean end-to-end packet latency in cycles;
	// AvgNetworkLatency excludes source queueing.
	AvgLatency        float64
	AvgNetworkLatency float64
	// AvgHops is the measured mean link hops per packet; MeanHopBound and
	// MaxHopBound are the fabric's analytic expectation under uniform
	// traffic and its diameter. Minimal routing keeps AvgHops at the mean
	// bound regardless of load.
	AvgHops      float64
	MeanHopBound float64
	MaxHopBound  int
}

// topologyPoint is one (topology, routing, rate) cell of the sweep grid.
type topologyPoint struct {
	topo    string
	routing string
	rate    float64
}

// TopologyComparisonRates are the offered loads the comparison samples:
// well below saturation, moderate, and near the mesh's saturation knee.
var TopologyComparisonRates = []float64{0.01, 0.03, 0.05}

// TopologyComparison sweeps uniform-random traffic across every built-in
// (topology, routing) pair and injection rate on one fabric size (the
// first of Options.Meshes, the paper's 8x8 by default), one simulation
// point per cell on the worker pool. It reports the per-topology
// latency and hop curves next to the analytic hop bounds: the torus's
// shorter-way-around rings cut the mean hop count by roughly a third and
// the diameter in half, which shows up directly as network latency.
func TopologyComparison(opts Options) ([]TopologyRow, error) {
	size := opts.meshes()[0]
	var points []topologyPoint
	for _, topo := range []string{"mesh", "torus"} {
		for _, routing := range []string{"xy", "westfirst", "oddeven"} {
			for _, rate := range TopologyComparisonRates {
				points = append(points, topologyPoint{topo: topo, routing: routing, rate: rate})
			}
		}
	}
	rows, err := Sweep(opts.ctx(), opts.Workers, points,
		func(_ context.Context, _ int, p topologyPoint) (TopologyRow, error) {
			return runTopologyPoint(p, size)
		})
	if err != nil {
		return nil, fmt.Errorf("topology: %w", err)
	}
	return rows, nil
}

// runTopologyPoint executes one synthetic run and projects its row.
func runTopologyPoint(p topologyPoint, size int) (TopologyRow, error) {
	cfg := noc.DefaultConfig(size, size)
	cfg.Topology = p.topo
	cfg.Routing = p.routing
	if p.topo == "torus" {
		cfg.EastSinks = false
	}
	nw, err := noc.New(cfg)
	if err != nil {
		return TopologyRow{}, err
	}
	gen, err := traffic.NewGenerator(nw, traffic.GeneratorConfig{
		Pattern:       traffic.UniformRandom{Nodes: nw.Topology().NumNodes()},
		InjectionRate: p.rate,
		PacketFlits:   cfg.UnicastFlits,
		Warmup:        500,
		Measure:       2000,
		Seed:          1,
	})
	if err != nil {
		return TopologyRow{}, err
	}
	res, err := gen.Run(20_000_000)
	if err != nil {
		return TopologyRow{}, fmt.Errorf("%s/%s rate %v: %w", p.topo, p.routing, p.rate, err)
	}
	// The hop bounds follow the routing's effective fabric: the adaptive
	// turn models stay on the mesh sub-network even on a torus (only
	// wrap-aware DOR uses the wraparound links — it is the routing with
	// dateline VC classes), so their minimal paths obey the mesh bounds.
	effective := p.topo
	if nw.Routing().VCClasses() == 1 {
		effective = "mesh"
	}
	meanBound, err := analytic.UniformMeanHops(effective, size, size)
	if err != nil {
		return TopologyRow{}, err
	}
	maxBound, err := analytic.MaxHops(effective, size, size)
	if err != nil {
		return TopologyRow{}, err
	}
	return TopologyRow{
		Topology:          p.topo,
		Routing:           p.routing,
		Rate:              p.rate,
		Throughput:        res.Throughput,
		AvgLatency:        res.Latency.Mean(),
		AvgNetworkLatency: res.NetworkLatency.Mean(),
		AvgHops:           res.Hops.Mean(),
		MeanHopBound:      meanBound,
		MaxHopBound:       maxBound,
	}, nil
}

// RenderTopologyComparison formats the comparison as per-fabric latency
// and hop curves.
func RenderTopologyComparison(rows []TopologyRow) string {
	var b strings.Builder
	b.WriteString("Extension: topology x routing comparison, uniform random traffic\n")
	fmt.Fprintf(&b, "%6s %10s %7s %10s %10s %8s %9s %8s\n",
		"fabric", "routing", "rate", "latency", "net lat", "hops", "hop bound", "diameter")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6s %10s %7.3f %10.1f %10.1f %8.2f %9.2f %8d\n",
			r.Topology, r.Routing, r.Rate, r.AvgLatency, r.AvgNetworkLatency,
			r.AvgHops, r.MeanHopBound, r.MaxHopBound)
	}
	return b.String()
}
