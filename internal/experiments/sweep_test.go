package experiments

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestSweepPreservesInputOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i * 3
	}
	for _, workers := range []int{1, 2, 7, 64, 0} {
		got, err := Sweep(context.Background(), workers, items,
			func(_ context.Context, i int, item int) (string, error) {
				return fmt.Sprintf("%d:%d", i, item), nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range items {
			want := fmt.Sprintf("%d:%d", i, items[i])
			if got[i] != want {
				t.Fatalf("workers=%d: got[%d] = %q, want %q", workers, i, got[i], want)
			}
		}
	}
}

func TestSweepEmptyItems(t *testing.T) {
	got, err := Sweep(context.Background(), 4, nil,
		func(_ context.Context, i int, item int) (int, error) { return item, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("Sweep(nil items) = (%v, %v), want empty, nil", got, err)
	}
}

func TestSweepReturnsSmallestIndexError(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	// Serial execution reaches item 2 first; the sweep must surface its
	// error (the smallest failing index) rather than a later one.
	_, err := Sweep(context.Background(), 1, items,
		func(ctx context.Context, i int, item int) (int, error) {
			if i == 5 || i == 2 {
				return 0, fmt.Errorf("boom %d", i)
			}
			return item, nil
		})
	if err == nil || err.Error() != "boom 2" {
		t.Fatalf("err = %v, want boom 2", err)
	}
}

func TestSweepFailFastSkipsRemainingItems(t *testing.T) {
	var ran atomic.Int64
	items := make([]int, 1000)
	_, err := Sweep(context.Background(), 2, items,
		func(ctx context.Context, i int, item int) (int, error) {
			ran.Add(1)
			if i == 0 {
				return 0, errors.New("early failure")
			}
			return item, nil
		})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := ran.Load(); n >= int64(len(items)) {
		t.Errorf("ran %d items, expected fail-fast to skip some", n)
	}
}

func TestSweepHonorsContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Sweep(ctx, 4, []int{1, 2, 3},
		func(ctx context.Context, i int, item int) (int, error) {
			return item, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(res) != 3 {
		t.Fatalf("results length = %d, want 3 (zero-valued)", len(res))
	}
}

// TestTable2ParallelMatchesSerial proves the harness returns identical
// results whatever the worker count: every simulation point owns its
// network, so parallelism cannot perturb the simulated values.
func TestTable2ParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	serial, err := Table2(Options{Rounds: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Table2(Options{Rounds: 1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("parallel sweep diverged:\nserial   %+v\nparallel %+v", serial, parallel)
	}
}
