package experiments

import (
	"fmt"
	"strings"

	"gathernoc/internal/cnn"
	"gathernoc/internal/power"
)

// ModelLayerRow is one layer of a whole-model run.
type ModelLayerRow struct {
	Layer              string
	Kind               string
	RUCycles           int64
	GatherCycles       int64
	LatencyImprovement float64
	PowerImprovement   float64
}

// ModelResult aggregates a complete network execution, layer by layer.
type ModelResult struct {
	Model  string
	Mesh   int
	Layers []ModelLayerRow
	// Totals over the whole model (extrapolated cycles; energy scaled to
	// full layers).
	RUTotalCycles      int64
	GatherTotalCycles  int64
	RUTotalPJ          float64
	GatherTotalPJ      float64
	LatencyImprovement float64
	PowerImprovement   float64
}

// FullAlexNet executes the complete AlexNet layer sequence — convolution,
// pooling and fully-connected layers — in both collection modes and
// aggregates whole-model latency and energy. This is the paper's
// future-work target ("accelerate the complete CNN model", Sec. VI).
func FullAlexNet(mesh int, opts Options) (*ModelResult, error) {
	return fullModel("AlexNet", cnn.AlexNetAllLayers(), mesh, opts)
}

// FullVGG16 executes the complete VGG-16 layer sequence (13 conv, 5 pool,
// 3 fc).
func FullVGG16(mesh int, opts Options) (*ModelResult, error) {
	return fullModel("VGG-16", cnn.VGG16AllLayers(), mesh, opts)
}

func fullModel(name string, layers []cnn.LayerConfig, mesh int, opts Options) (*ModelResult, error) {
	res := &ModelResult{Model: name, Mesh: mesh}
	coeff := power.DefaultCoefficients()
	for _, layer := range layers {
		cmp, err := cachedCompareLayer(opts.Cache, mesh, mesh, layer, opts.core())
		if err != nil {
			return nil, fmt.Errorf("full model %s: %w", layer.Name, err)
		}
		ruE := power.Compute(cmp.RU.Events.Scale(cmp.RU.Result.ScaleFactor()), coeff, 0, 0)
		gE := power.Compute(cmp.Gather.Events.Scale(cmp.Gather.Result.ScaleFactor()), coeff, 0, 0)
		res.Layers = append(res.Layers, ModelLayerRow{
			Layer:              layer.Name,
			Kind:               layer.Kind.String(),
			RUCycles:           cmp.RU.Result.TotalCycles,
			GatherCycles:       cmp.Gather.Result.TotalCycles,
			LatencyImprovement: cmp.LatencyImprovementPct,
			PowerImprovement:   cmp.PowerImprovementPct,
		})
		res.RUTotalCycles += cmp.RU.Result.TotalCycles
		res.GatherTotalCycles += cmp.Gather.Result.TotalCycles
		res.RUTotalPJ += ruE.NoCPJ
		res.GatherTotalPJ += gE.NoCPJ
	}
	if res.GatherTotalCycles > 0 {
		res.LatencyImprovement = float64(res.RUTotalCycles-res.GatherTotalCycles) /
			float64(res.GatherTotalCycles) * 100
	}
	res.PowerImprovement = power.ImprovementPercent(res.RUTotalPJ, res.GatherTotalPJ)
	return res, nil
}

// RenderModel formats a whole-model run.
func RenderModel(r *ModelResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: complete %s on %dx%d mesh (conv + pool + fc)\n", r.Model, r.Mesh, r.Mesh)
	fmt.Fprintf(&b, "%-8s %-6s %14s %14s %10s %10s\n",
		"layer", "kind", "RU cycles", "gather cycles", "latency%", "power%")
	for _, l := range r.Layers {
		fmt.Fprintf(&b, "%-8s %-6s %14d %14d %10.2f %10.2f\n",
			l.Layer, l.Kind, l.RUCycles, l.GatherCycles, l.LatencyImprovement, l.PowerImprovement)
	}
	fmt.Fprintf(&b, "%-8s %-6s %14d %14d %10.2f %10.2f\n",
		"TOTAL", "", r.RUTotalCycles, r.GatherTotalCycles, r.LatencyImprovement, r.PowerImprovement)
	return b.String()
}
