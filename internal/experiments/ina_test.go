package experiments

import (
	"context"
	"strings"
	"testing"

	"gathernoc/internal/traffic"
)

// TestINAComparisonAcceptance pins the PR's acceptance criterion: on the
// 8x8 mesh accumulation workload the INA scheme's sinks receive bit-exact
// row sums (oracle-checked inside the run) with strictly fewer per-row
// sink flit transactions and strictly lower average packet latency than
// gather collection, for every layer.
func TestINAComparisonAcceptance(t *testing.T) {
	rows, err := INAComparison(Options{Rounds: 1, Meshes: []int{8}})
	if err != nil {
		t.Fatal(err)
	}
	byScheme := func(layer, scheme string) *INARow {
		for i := range rows {
			if rows[i].Layer == layer && rows[i].Scheme == scheme {
				return &rows[i]
			}
		}
		t.Fatalf("missing row %s/%s", layer, scheme)
		return nil
	}
	layers := map[string]bool{}
	for _, r := range rows {
		layers[r.Layer] = true
	}
	if len(layers) == 0 {
		t.Fatal("no layers in comparison")
	}
	for layer := range layers {
		g := byScheme(layer, "gather")
		a := byScheme(layer, "ina")
		u := byScheme(layer, "unicast")
		if a.SinkFlitsPerRow >= g.SinkFlitsPerRow {
			t.Errorf("%s: INA sink flits/row %.2f not below gather %.2f",
				layer, a.SinkFlitsPerRow, g.SinkFlitsPerRow)
		}
		if a.PacketLatency >= g.PacketLatency {
			t.Errorf("%s: INA packet latency %.1f not below gather %.1f",
				layer, a.PacketLatency, g.PacketLatency)
		}
		if a.RoundCycles >= u.RoundCycles {
			t.Errorf("%s: INA round %.1f not below unicast %.1f",
				layer, a.RoundCycles, u.RoundCycles)
		}
		if a.Merges == 0 || g.Merges != 0 || u.Merges != 0 {
			t.Errorf("%s: merges ina/gather/unicast = %d/%d/%d, want >0/0/0",
				layer, a.Merges, g.Merges, u.Merges)
		}
		if a.Reduction.PayloadsMerged != a.Merges {
			t.Errorf("%s: reduction account %d != merges %d",
				layer, a.Reduction.PayloadsMerged, a.Merges)
		}
	}
}

// TestINAComparisonDeterministic verifies the sweep yields identical rows
// on a rerun, whatever the worker scheduling.
func TestINAComparisonDeterministic(t *testing.T) {
	opts := Options{Rounds: 1, Meshes: []int{8}}
	a, err := INAComparison(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 1
	b, err := INAComparison(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("row %d diverged:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

// TestINAComparisonCancellation verifies ctx cancellation surfaces.
func TestINAComparisonCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := INAComparison(Options{Rounds: 1, Meshes: []int{8}, Ctx: ctx}); err == nil {
		t.Fatal("cancelled comparison must error")
	}
}

func TestRenderINA(t *testing.T) {
	rows := []INARow{{
		Layer: "Conv1", Mesh: 8, Scheme: traffic.CollectINA.String(),
		RoundCycles: 100, SinkFlitsPerRow: 2, PacketLatency: 30, Merges: 7,
	}}
	out := RenderINA(rows)
	if !strings.Contains(out, "Conv1") || !strings.Contains(out, "ina") {
		t.Errorf("render missing content:\n%s", out)
	}
}
