package ring

import "testing"

func TestDequeFIFOAcrossBlocks(t *testing.T) {
	var d Deque[int]
	const n = 3*dequeBlockMax + 17 // span many blocks
	for i := 0; i < n; i++ {
		d.PushBack(i)
	}
	if d.Len() != n {
		t.Fatalf("Len = %d, want %d", d.Len(), n)
	}
	if d.Front() != 0 {
		t.Fatalf("Front = %d, want 0", d.Front())
	}
	for i := 0; i < n; i++ {
		if got := d.PopFront(); got != i {
			t.Fatalf("PopFront = %d, want %d", got, i)
		}
	}
	if d.Len() != 0 {
		t.Fatal("deque not empty after draining")
	}
}

// TestDequeBlockRecycling oscillates the queue depth and checks that the
// steady state stops allocating fresh blocks: drained front blocks must be
// reused for new tail blocks.
func TestDequeBlockRecycling(t *testing.T) {
	var d Deque[int]
	// Reach the high-water mark once.
	for i := 0; i < 4*dequeBlockMax; i++ {
		d.PushBack(i)
	}
	for d.Len() > 0 {
		d.PopFront()
	}
	spareHighWater := d.spare.Len()
	if spareHighWater == 0 {
		t.Fatal("no blocks recycled after a full drain")
	}
	// Oscillate: total spare+live blocks must never exceed the high-water
	// set (no fresh allocations once warmed).
	for round := 0; round < 20; round++ {
		for i := 0; i < 2*dequeBlockMax; i++ {
			d.PushBack(i)
		}
		for d.Len() > 0 {
			d.PopFront()
		}
		if got := d.spare.Len() + len(d.blocks); got > spareHighWater {
			t.Fatalf("round %d: %d blocks in circulation, high water was %d", round, got, spareHighWater)
		}
	}
}

func TestDequeInterleavedPushPop(t *testing.T) {
	var d Deque[int]
	next, expect := 0, 0
	for round := 0; round < 500; round++ {
		for i := 0; i < 7; i++ {
			d.PushBack(next)
			next++
		}
		for i := 0; i < 5; i++ {
			if got := d.PopFront(); got != expect {
				t.Fatalf("PopFront = %d, want %d", got, expect)
			}
			expect++
		}
	}
	for d.Len() > 0 {
		if got := d.PopFront(); got != expect {
			t.Fatalf("drain: PopFront = %d, want %d", got, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("drained %d elements, pushed %d", expect, next)
	}
}

func TestDequeEmptyPanics(t *testing.T) {
	var d Deque[int]
	for name, f := range map[string]func(){
		"PopFront": func() { d.PopFront() },
		"Front":    func() { d.Front() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on empty deque did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestDequePopZeroesSlot(t *testing.T) {
	var d Deque[*int]
	x := 1
	d.PushBack(&x)
	d.PopFront()
	if d.spare.Len() != 1 {
		t.Fatal("drained block not recycled")
	}
	b, _ := d.spare.Get()
	if b[:1][0] != nil {
		t.Fatal("PopFront left the slot holding the pointer")
	}
}
