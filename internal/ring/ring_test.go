package ring

import "testing"

func TestRingFIFOOrder(t *testing.T) {
	r := New[int](4)
	for i := 0; i < 4; i++ {
		r.PushBack(i)
	}
	for i := 0; i < 4; i++ {
		if got := r.PopFront(); got != i {
			t.Fatalf("PopFront = %d, want %d", got, i)
		}
	}
	if !r.Empty() {
		t.Fatal("ring not empty after draining")
	}
}

// TestRingWraparound drives the head index around the backing array
// several times, checking order across the seam.
func TestRingWraparound(t *testing.T) {
	r := New[int](4)
	next, expect := 0, 0
	for round := 0; round < 10; round++ {
		for i := 0; i < 3; i++ {
			r.PushBack(next)
			next++
		}
		for i := 0; i < 3; i++ {
			if got := r.PopFront(); got != expect {
				t.Fatalf("round %d: PopFront = %d, want %d", round, got, expect)
			}
			expect++
		}
	}
	if r.Cap() != 4 {
		t.Errorf("capacity grew to %d under bounded use, want 4", r.Cap())
	}
}

// TestRingGrowth fills past capacity and checks the doubling preserves
// order, including when the queue wraps the seam at growth time.
func TestRingGrowth(t *testing.T) {
	r := New[int](2)
	// Wrap the head first so growth must linearize.
	r.PushBack(-2)
	r.PushBack(-1)
	r.PopFront()
	r.PopFront()
	for i := 0; i < 9; i++ {
		r.PushBack(i)
	}
	if r.Cap() < 9 {
		t.Fatalf("cap = %d after 9 pushes", r.Cap())
	}
	if r.Len() != 9 {
		t.Fatalf("len = %d, want 9", r.Len())
	}
	for i := 0; i < 9; i++ {
		if got := r.At(i); got != i {
			t.Fatalf("At(%d) = %d, want %d", i, got, i)
		}
	}
	for i := 0; i < 9; i++ {
		if got := r.PopFront(); got != i {
			t.Fatalf("PopFront = %d, want %d", got, i)
		}
	}
}

func TestRingFrontAndAt(t *testing.T) {
	r := New[string](2)
	r.PushBack("a")
	r.PushBack("b")
	if r.Front() != "a" {
		t.Errorf("Front = %q, want a", r.Front())
	}
	if r.At(1) != "b" {
		t.Errorf("At(1) = %q, want b", r.At(1))
	}
	if r.Front() != "a" {
		t.Error("Front mutated the ring")
	}
}

func TestRingEmptyPanics(t *testing.T) {
	for name, f := range map[string]func(*Ring[int]){
		"PopFront": func(r *Ring[int]) { r.PopFront() },
		"Front":    func(r *Ring[int]) { r.Front() },
		"At":       func(r *Ring[int]) { r.At(0) },
	} {
		r := New[int](2)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on empty ring did not panic", name)
				}
			}()
			f(&r)
		}()
	}
}

func TestRingReset(t *testing.T) {
	r := New[*int](2)
	x := 7
	r.PushBack(&x)
	r.PushBack(&x)
	r.Reset()
	if r.Len() != 0 || r.Cap() != 2 {
		t.Fatalf("after Reset: len=%d cap=%d, want 0/2", r.Len(), r.Cap())
	}
	// Slots must be zeroed so popped pointers are not pinned.
	for i := range r.buf {
		if r.buf[i] != nil {
			t.Fatal("Reset left a live pointer in the backing array")
		}
	}
}

func TestRingZeroValueGrows(t *testing.T) {
	var r Ring[int]
	r.PushBack(1)
	r.PushBack(2)
	if r.PopFront() != 1 || r.PopFront() != 2 {
		t.Fatal("zero-value ring lost elements")
	}
}

func TestRingPopZeroesSlot(t *testing.T) {
	r := New[*int](2)
	x := 1
	r.PushBack(&x)
	r.PopFront()
	if r.buf[0] != nil {
		t.Fatal("PopFront left the slot holding the pointer")
	}
}
