package ring

// Deque block sizes in elements: fresh blocks ramp geometrically from
// dequeBlockMin to dequeBlockMax with the queue's occupancy, so shallow
// queues stay small and deep ones amortize block bookkeeping. Blocks are
// recycled front-to-back, so a queue oscillating around any depth stops
// allocating entirely once its high-water mark is reached.
const (
	dequeBlockMin = 4
	dequeBlockMax = 256
)

// Deque is an unbounded FIFO over a chain of fixed-size blocks. Unlike a
// growing ring or slice it never copies elements on growth and never
// abandons a backing array: total bytes allocated equal the high-water
// retained bytes. Use it for queues with no hardware bound (NIC injection
// queues under saturation); use Ring for depth-bounded buffers.
//
// Not safe for concurrent use; the simulator is single-threaded.
type Deque[T any] struct {
	blocks [][]T // blocks[0] is the front
	head   int   // index of the front element within blocks[0]
	n      int
	spare  FreeList[[]T] // drained blocks awaiting reuse
}

// Len returns the number of queued elements.
func (d *Deque[T]) Len() int { return d.n }

// PushBack appends v at the tail.
func (d *Deque[T]) PushBack(v T) {
	last := len(d.blocks) - 1
	if last < 0 || len(d.blocks[last]) == cap(d.blocks[last]) {
		b, ok := d.spare.Get()
		if !ok {
			capNext := d.n
			if capNext < dequeBlockMin {
				capNext = dequeBlockMin
			}
			if capNext > dequeBlockMax {
				capNext = dequeBlockMax
			}
			b = make([]T, 0, capNext)
		}
		d.blocks = append(d.blocks, b)
		last++
	}
	d.blocks[last] = append(d.blocks[last], v)
	d.n++
}

// Front returns the front element without removing it. It panics on an
// empty deque.
func (d *Deque[T]) Front() T {
	if d.n == 0 {
		panic("ring: Front on empty deque")
	}
	return d.blocks[0][d.head]
}

// At returns the i-th element from the front (0 = Front) without
// removing it, panicking when out of range. It is the non-destructive
// iteration snapshots use to serialize a queue without draining it.
func (d *Deque[T]) At(i int) T {
	if i < 0 || i >= d.n {
		panic("ring: At out of range")
	}
	i += d.head
	for _, b := range d.blocks {
		if i < len(b) {
			return b[i]
		}
		i -= len(b)
	}
	panic("ring: At internal inconsistency")
}

// PopFront removes and returns the front element, panicking on an empty
// deque. Vacated slots are zeroed and fully drained blocks recycled.
func (d *Deque[T]) PopFront() T {
	if d.n == 0 {
		panic("ring: PopFront on empty deque")
	}
	var zero T
	b := d.blocks[0]
	v := b[d.head]
	b[d.head] = zero
	d.head++
	d.n--
	if d.head == len(b) {
		// Block drained: recycle it and advance. The block list is a
		// handful of entries, so the copy is trivial.
		d.spare.Put(b[:0])
		copy(d.blocks, d.blocks[1:])
		d.blocks[len(d.blocks)-1] = nil
		d.blocks = d.blocks[:len(d.blocks)-1]
		d.head = 0
	}
	return v
}
