package ring

import "testing"

func TestFreeListLIFOAndZeroing(t *testing.T) {
	var f FreeList[*int]
	a, b := new(int), new(int)
	f.Put(a)
	f.Put(b)
	if f.Len() != 2 {
		t.Fatalf("Len = %d, want 2", f.Len())
	}
	got, ok := f.Get()
	if !ok || got != b {
		t.Fatal("Get did not return the most recently parked value")
	}
	if f.items[:2][1] != nil {
		t.Fatal("Get left the vacated slot holding the pointer")
	}
	got, ok = f.Get()
	if !ok || got != a {
		t.Fatal("second Get wrong")
	}
	if _, ok := f.Get(); ok {
		t.Fatal("Get on empty freelist reported ok")
	}
}
