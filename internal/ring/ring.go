// Package ring provides the fixed-capacity FIFO ring buffer used by the
// simulator's hot-path queues (router input VCs, link in-flight stages,
// ejection buffers). Unlike the append/re-slice idiom
// (`q = append(q, v)` ... `q = q[1:]`), a ring never abandons its backing
// array, so steady-state queue traffic performs zero heap allocations.
//
// Rings grow by doubling only when a push finds the buffer full; callers
// that model hardware buffers of a fixed depth (router VCs, ejectors)
// bound their occupancy with Len before pushing, so their rings never
// grow after construction. Unbounded producers (links staging in-flight
// flits and credits) amortize growth to zero once the high-water mark is
// reached.
//
// The package is not safe for concurrent use; the simulator is
// single-threaded.
package ring

// Ring is a FIFO queue over a circular backing array. The zero value is an
// empty ring with no capacity (it grows on first push); use New to
// preallocate.
type Ring[T any] struct {
	buf  []T
	head int // index of the front element
	n    int // number of elements
}

// New returns a ring with the given preallocated capacity (minimum 1).
func New[T any](capacity int) Ring[T] {
	if capacity < 1 {
		capacity = 1
	}
	return Ring[T]{buf: make([]T, capacity)}
}

// Len returns the number of queued elements.
func (r *Ring[T]) Len() int { return r.n }

// Cap returns the current capacity of the backing array.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Empty reports whether the ring holds no elements.
func (r *Ring[T]) Empty() bool { return r.n == 0 }

// PushBack appends v at the tail, doubling the backing array when full.
func (r *Ring[T]) PushBack(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
}

// PopFront removes and returns the front element. It panics on an empty
// ring. The vacated slot is zeroed so popped pointers do not pin their
// referents.
func (r *Ring[T]) PopFront() T {
	if r.n == 0 {
		panic("ring: PopFront on empty ring")
	}
	var zero T
	v := r.buf[r.head]
	r.buf[r.head] = zero
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return v
}

// Front returns the front element without removing it. It panics on an
// empty ring.
func (r *Ring[T]) Front() T {
	if r.n == 0 {
		panic("ring: Front on empty ring")
	}
	return r.buf[r.head]
}

// At returns the i-th element from the front (0 = front). It panics when i
// is out of range.
func (r *Ring[T]) At(i int) T {
	if i < 0 || i >= r.n {
		panic("ring: At out of range")
	}
	return r.buf[(r.head+i)%len(r.buf)]
}

// Reset empties the ring, zeroing all slots but keeping the capacity.
func (r *Ring[T]) Reset() {
	var zero T
	for i := 0; i < r.n; i++ {
		r.buf[(r.head+i)%len(r.buf)] = zero
	}
	r.head = 0
	r.n = 0
}

// grow doubles the backing array, linearizing the queued elements to the
// front of the new buffer.
func (r *Ring[T]) grow() {
	capNew := 2 * len(r.buf)
	if capNew == 0 {
		capNew = 4
	}
	buf := make([]T, capNew)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = buf
	r.head = 0
}
