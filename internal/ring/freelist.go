package ring

// FreeList is a LIFO recycling stack — the shared shape behind every
// freelist in the zero-alloc hot path (pooled flits, station entries,
// partial-packet records, deque blocks). Put parks a value for reuse;
// Get pops the most recently parked one, zeroing the vacated slot so
// parked pointers are not pinned by the backing array.
//
// Resetting a recycled value's fields is the caller's job: each user has
// its own notion of "clean" (a flit keeps its payload capacity, a deque
// block is re-sliced to length zero).
//
// Not safe for concurrent use; the simulator is single-threaded.
type FreeList[T any] struct {
	items []T
}

// Len returns the number of parked values.
func (f *FreeList[T]) Len() int { return len(f.items) }

// Put parks v for a later Get.
func (f *FreeList[T]) Put(v T) { f.items = append(f.items, v) }

// Get pops the most recently parked value; ok is false when the list is
// empty.
func (f *FreeList[T]) Get() (v T, ok bool) {
	n := len(f.items)
	if n == 0 {
		return v, false
	}
	var zero T
	v = f.items[n-1]
	f.items[n-1] = zero
	f.items = f.items[:n-1]
	return v, true
}
