package workload

import (
	"testing"

	"gathernoc/internal/cnn"
	"gathernoc/internal/flit"
	"gathernoc/internal/noc"
	"gathernoc/internal/traffic"
)

// fakeDriver is a scripted phase: it reports injection and drain after
// fixed numbers of ticks, injecting nothing.
type fakeDriver struct {
	injectAfter int64
	drainAfter  int64

	started bool
	startAt int64
	ticks   int64
	tag     flit.Tag
}

func (d *fakeDriver) Start(cycle int64) { d.started = true; d.startAt = cycle }
func (d *fakeDriver) Tick(cycle int64)  { d.ticks++ }
func (d *fakeDriver) Injected() bool    { return d.started && d.ticks >= d.injectAfter }
func (d *fakeDriver) Drained() bool     { return d.started && d.ticks >= d.drainAfter }
func (d *fakeDriver) SetTag(t flit.Tag) { d.tag = t }

func testNetwork(t *testing.T, rows, cols int) *noc.Network {
	t.Helper()
	cfg := noc.DefaultConfig(rows, cols)
	cfg.EastSinks = false
	nw, err := noc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestSchedulerValidation(t *testing.T) {
	nw := testNetwork(t, 2, 2)
	ok := Job{Name: "ok", Phases: []Phase{{Name: "p0", Driver: &fakeDriver{drainAfter: 1}}}}
	cases := []struct {
		name string
		jobs []Job
	}{
		{"no jobs", nil},
		{"empty job", []Job{{Name: "empty"}}},
		{"nil driver", []Job{{Name: "j", Phases: []Phase{{Name: "p"}}}}},
		{"self dep", []Job{{Name: "j", Phases: []Phase{
			{Name: "p0", Driver: &fakeDriver{}, After: []Dep{{Phase: 0}}},
		}}}},
		{"forward dep", []Job{{Name: "j", Phases: []Phase{
			{Name: "p0", Driver: &fakeDriver{}, After: []Dep{{Phase: 1}}},
			{Name: "p1", Driver: &fakeDriver{}},
		}}}},
		{"negative arrival", []Job{{Name: "j", Arrival: -1, Phases: ok.Phases}}},
	}
	for _, tc := range cases {
		if _, err := New(nw, tc.jobs); err == nil {
			t.Errorf("%s: New accepted invalid jobs", tc.name)
		}
	}
	if _, err := New(nil, []Job{ok}); err == nil {
		t.Error("New accepted nil network")
	}
	if _, err := New(nw, []Job{ok}); err != nil {
		t.Errorf("valid job rejected: %v", err)
	}
}

// TestBarrierVsOverlapAdmission pins the edge semantics: a barrier
// successor starts the cycle after its predecessor drains, an overlap
// successor the cycle after the predecessor finishes injecting.
func TestBarrierVsOverlapAdmission(t *testing.T) {
	const injectAfter, drainAfter = 3, 10
	run := func(overlap bool) *Result {
		nw := testNetwork(t, 2, 2)
		s, err := New(nw, []Job{{Name: "j", Phases: []Phase{
			{Name: "p0", Driver: &fakeDriver{injectAfter: injectAfter, drainAfter: drainAfter}},
			{Name: "p1", Driver: &fakeDriver{injectAfter: 1, drainAfter: 2},
				After: []Dep{{Phase: 0, Overlap: overlap}}},
		}}})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(1000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	barrier := run(false)
	overlap := run(true)
	// The predecessor's k-th tick happens at cycle k-1, so its
	// injected/drained transitions land at injectAfter-1 / drainAfter-1
	// and the successor is admitted one cycle later.
	if got := barrier.Jobs[0].Phases[1].StartCycle; got != drainAfter {
		t.Errorf("barrier successor admitted at %d, want %d", got, drainAfter)
	}
	if got := overlap.Jobs[0].Phases[1].StartCycle; got != injectAfter {
		t.Errorf("overlap successor admitted at %d, want %d", got, injectAfter)
	}
	if overlap.Cycles >= barrier.Cycles {
		t.Errorf("overlap schedule (%d cycles) not shorter than barrier (%d)", overlap.Cycles, barrier.Cycles)
	}
}

// TestJobArrivalDelaysAdmission verifies the batched-arrival offset.
func TestJobArrivalDelaysAdmission(t *testing.T) {
	nw := testNetwork(t, 2, 2)
	s, err := New(nw, []Job{
		{Name: "first", Phases: []Phase{{Name: "p", Driver: &fakeDriver{drainAfter: 4}}}},
		{Name: "late", Arrival: 7, Phases: []Phase{{Name: "p", Driver: &fakeDriver{drainAfter: 4}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Jobs[0].StartCycle; got != 0 {
		t.Errorf("first job started at %d, want 0", got)
	}
	if got := res.Jobs[1].StartCycle; got != 7 {
		t.Errorf("late job started at %d, want 7", got)
	}
}

// TestMultiJobGeneratorConservation runs three concurrent synthetic jobs
// on one fabric and requires exact per-job packet conservation: every
// packet a job injected is delivered exactly once, attributed to that job
// by its tag, and no packet is orphaned. DebugFlitPool extends the check
// to flit granularity — a leaked or double-freed flit fails the run.
func TestMultiJobGeneratorConservation(t *testing.T) {
	cfg := noc.DefaultConfig(4, 4)
	cfg.EastSinks = false
	cfg.DebugFlitPool = true
	nw, err := noc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(rate float64, seed int64) (*traffic.Generator, Job) {
		gen, err := traffic.NewGeneratorDriver(nw, traffic.GeneratorConfig{
			Pattern:       traffic.UniformRandom{Nodes: 16},
			InjectionRate: rate,
			PacketFlits:   2,
			Warmup:        50,
			Measure:       400,
			Seed:          seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		name := "gen"
		return gen, Job{Name: name, Phases: []Phase{{Name: "traffic", Driver: gen}}}
	}
	gens := make([]*traffic.Generator, 3)
	jobs := make([]Job, 3)
	for i := range jobs {
		gens[i], jobs[i] = mk(0.02+0.02*float64(i), int64(i+1))
	}
	s, err := New(nw, jobs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	var totalSent uint64
	for i, g := range gens {
		if g.Sent() == 0 {
			t.Errorf("job %d injected nothing", i)
		}
		if g.Sent() != g.Delivered() {
			t.Errorf("job %d: sent %d != delivered %d", i, g.Sent(), g.Delivered())
		}
		if got := res.Jobs[i].PacketsEjected; got != g.Delivered() {
			t.Errorf("job %d: scheduler attributed %d packets, driver saw %d", i, got, g.Delivered())
		}
		if res.Jobs[i].Latency.N() == 0 {
			t.Errorf("job %d has no latency samples", i)
		}
		totalSent += g.Sent()
	}
	if res.OrphanPackets != 0 || res.OrphanPayloads != 0 {
		t.Errorf("orphans: %d packets, %d payloads", res.OrphanPackets, res.OrphanPayloads)
	}
	if a := nw.Activity(); a.PacketsSent != totalSent {
		t.Errorf("network injected %d packets, jobs account for %d", a.PacketsSent, totalSent)
	}
	if live := nw.FlitPool().Live(); live != 0 {
		t.Errorf("%d flits leaked", live)
	}
	if slow := res.MaxMinSlowdown(); slow < 1 {
		t.Errorf("max/min slowdown %v < 1", slow)
	}
	if jain := res.JainFairness(); jain <= 0 || jain > 1 {
		t.Errorf("Jain index %v out of (0,1]", jain)
	}
}

// TestModelLayers covers the model-name resolution used by the CLIs.
func TestModelLayers(t *testing.T) {
	alex, err := ModelLayers("alexnet")
	if err != nil || len(alex) != 11 {
		t.Fatalf("alexnet: %d layers, err %v; want 11", len(alex), err)
	}
	vgg, err := ModelLayers("VGG16")
	if err != nil || len(vgg) != 21 {
		t.Fatalf("vgg16: %d layers, err %v; want 21", len(vgg), err)
	}
	if _, err := ModelLayers("lenet"); err == nil {
		t.Error("unknown model accepted")
	}
}

// TestUntaggedTrafficCountsAsOrphan pins the zero-tag reservation: a
// packet injected outside the scheduler (no tag) must be counted as an
// orphan, not attributed to job 0 — job tags are offset by one precisely
// so the two are distinguishable.
func TestUntaggedTrafficCountsAsOrphan(t *testing.T) {
	nw := testNetwork(t, 2, 2)
	gen, err := traffic.NewGeneratorDriver(nw, traffic.GeneratorConfig{
		Pattern:       traffic.UniformRandom{Nodes: 4},
		InjectionRate: 0.1,
		PacketFlits:   2,
		Warmup:        0,
		Measure:       100,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(nw, []Job{{Name: "job0", Phases: []Phase{{Name: "gen", Driver: gen}}}})
	if err != nil {
		t.Fatal(err)
	}
	// Untagged injection from outside the scheduler, mid-schedule.
	nw.NIC(0).SendUnicastN(3, 2)
	res, err := s.Run(100000)
	if err != nil {
		t.Fatal(err)
	}
	if res.OrphanPackets != 1 {
		t.Errorf("orphan packets = %d, want 1 (the untagged injection)", res.OrphanPackets)
	}
	if got := res.Jobs[0].PacketsEjected; got != gen.Delivered() {
		t.Errorf("job 0 attributed %d packets, its driver delivered %d", got, gen.Delivered())
	}
}

// tickerFunc adapts a function to sim.Ticker for test-side injection.
type tickerFunc func(cycle int64)

func (f tickerFunc) Tick(cycle int64) { f(cycle) }

// TestStaleTagClearedBetweenTicks pins the scheduler's end-of-tick tag
// reset: traffic injected by a non-scheduler ticker on a NIC a driver
// used earlier must not inherit that driver's tag — it counts as an
// orphan, and the driver's conservation pair stays exact.
func TestStaleTagClearedBetweenTicks(t *testing.T) {
	nw := testNetwork(t, 2, 2)
	gen, err := traffic.NewGeneratorDriver(nw, traffic.GeneratorConfig{
		Pattern:       traffic.UniformRandom{Nodes: 4},
		InjectionRate: 0.5, // dense: every NIC gets tagged early and often
		PacketFlits:   2,
		Warmup:        0,
		Measure:       200,
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(nw, []Job{{Name: "job0", Phases: []Phase{{Name: "gen", Driver: gen}}}})
	if err != nil {
		t.Fatal(err)
	}
	eng := nw.Engine()
	eng.AddTicker(s)
	// A foreign ticker (registered after the scheduler) injecting
	// untagged packets mid-run, well after the generator has tagged
	// every NIC.
	const foreignPackets = 5
	eng.AddTicker(tickerFunc(func(cycle int64) {
		if cycle >= 50 && cycle < 50+foreignPackets {
			nw.NIC(0).SendUnicastN(3, 2)
		}
	}))
	if _, err := eng.RunUntil(func() bool { return s.Done() && nw.Quiescent() }, 100000); err != nil {
		t.Fatal(err)
	}
	res := s.Result(eng.Cycle())
	if res.OrphanPackets != foreignPackets {
		t.Errorf("orphan packets = %d, want %d (stale tag leaked onto foreign traffic?)",
			res.OrphanPackets, foreignPackets)
	}
	if gen.Sent() != gen.Delivered() {
		t.Errorf("generator conservation broken: sent %d, delivered %d", gen.Sent(), gen.Delivered())
	}
	if got := res.Jobs[0].PacketsEjected; got != gen.Delivered() {
		t.Errorf("job 0 attributed %d packets, its driver delivered %d", got, gen.Delivered())
	}
}

// TestReplayerAlongsideAccumulation schedules a trace-replay phase and an
// accumulation job collecting at the same row sinks: their gather packets
// can pick up each other's payloads at shared stations, so both phases
// must still drain exactly — the replayer via foreign routing of stray
// payloads, the accumulation job via its oracle.
func TestReplayerAlongsideAccumulation(t *testing.T) {
	layer, ok := cnn.LayerByName(cnn.AlexNetConvLayers(), "Conv3")
	if !ok {
		t.Fatal("Conv3 missing")
	}
	nw, err := noc.New(noc.DefaultConfig(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	events := traffic.GenerateLayerTrace(layer, 4, 4, true, 0, nw.Topology().NumNodes())
	rp, err := traffic.NewReplayer(nw, events)
	if err != nil {
		t.Fatal(err)
	}
	accJobs, drivers, err := NewInferenceBatch(nw, 1, 0, PipelineConfig{
		Layers: []cnn.LayerConfig{layer},
		Scheme: traffic.CollectGather,
		Rounds: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	jobs := append(accJobs, Job{
		Name:   "replay",
		Phases: []Phase{{Name: "trace", Driver: rp}},
	})
	s, err := New(nw, jobs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if snap := drivers[0][0].Snapshot(); snap.OracleErrors != 0 {
		t.Errorf("accumulation job: %d oracle errors", snap.OracleErrors)
	}
	if rp.EventsInjected != uint64(len(events)) {
		t.Errorf("replayed %d of %d events", rp.EventsInjected, len(events))
	}
	if res.OrphanPackets != 0 || res.OrphanPayloads != 0 {
		t.Errorf("orphans: %d packets, %d payloads", res.OrphanPackets, res.OrphanPayloads)
	}
}
