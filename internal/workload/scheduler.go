package workload

import (
	"fmt"

	"gathernoc/internal/flit"
	"gathernoc/internal/nic"
	"gathernoc/internal/noc"
	"gathernoc/internal/stats"
	"gathernoc/internal/telemetry"
	"gathernoc/internal/topology"
)

// MaxJobs and MaxPhases bound a scheduler's job and per-job phase counts:
// the flit.TaggedReduceID encoding gives the job and phase index eight
// bits each, and the bounds keep every tag round-trippable through it.
// Job tags are offset by one (job j carries tag job field j+1) so the
// zero tag stays reserved for untagged traffic — a delivery with no
// scheduled owner is counted as an orphan instead of being silently
// attributed to job 0 — which costs one job slot of the 8-bit space.
const (
	MaxJobs   = 255
	MaxPhases = 256
)

// tagFor returns the tag assigned to phase p of job j (job offset by one;
// see MaxJobs).
func tagFor(j, p int) flit.Tag { return flit.NewTag(j+1, p) }

// phaseRun is one phase's runtime state.
type phaseRun struct {
	name   string
	driver Driver
	after  []Dep

	sink     PacketSink
	payloads PayloadSink

	started  bool
	injected bool
	drained  bool

	startedAt  int64
	injectedAt int64
	drainedAt  int64
}

// jobRun is one job's runtime state and per-job accounting.
type jobRun struct {
	name    string
	arrival int64
	phases  []phaseRun
	// remaining counts not-yet-drained phases.
	remaining int

	started   bool
	startAt   int64
	drainedAt int64

	ejected uint64
	latency stats.Sample
}

// Scheduler admits the phases of any number of jobs onto one network as
// their dependency edges fire, ticks the active drivers cycle by cycle,
// and owns the ejection-side dispatch: every NIC and edge-sink receive
// callback routes delivered packets back to the phase tagged on them,
// feeding the per-job accounts along the way.
//
// The scheduler is the single receive-callback owner of its network —
// construct drivers in driver mode (NewGeneratorDriver,
// NewAccumulationDriver, NewReplayer without Run) so they do not wire
// callbacks of their own. Register it as an engine ticker after the
// network's components (Run does); its per-cycle work — admission scans,
// driver ticks, completion harvest — allocates nothing.
type Scheduler struct {
	nw   *noc.Network
	jobs []jobRun

	startAt   int64
	started   bool
	remaining int // phases not yet drained, across all jobs

	// probe records phase-boundary telemetry events (nil without tracing).
	// Scheduler ticks run on the engine's serial sub-phase, so the serial
	// probe is the right single-writer endpoint for any shard count.
	probe *telemetry.Probe

	// orphanPackets counts delivered packets whose tag names no scheduled
	// phase (untagged background traffic injected outside the scheduler);
	// orphanPayloads counts foreign-routed payloads whose owner either
	// does not exist or consumes no payloads. Both should be zero in a
	// fully scheduled run.
	orphanPackets  uint64
	orphanPayloads uint64
}

// New validates the jobs and wires a scheduler onto nw. Phase dependency
// edges must point at earlier phases of the same job (the DAG is given in
// topological order), and every driver that also injects alongside other
// jobs should implement Taggable — the scheduler assigns tag (j+1, p) to
// phase p of job j (the zero tag stays reserved for untagged traffic)
// and installs its dispatch as the receive callback of every NIC and
// edge sink.
func New(nw *noc.Network, jobs []Job) (*Scheduler, error) {
	if nw == nil {
		return nil, fmt.Errorf("workload: nil network")
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("workload: no jobs")
	}
	if len(jobs) > MaxJobs {
		return nil, fmt.Errorf("workload: %d jobs exceeds the tag limit of %d", len(jobs), MaxJobs)
	}
	s := &Scheduler{nw: nw, jobs: make([]jobRun, len(jobs))}
	if tc := nw.Telemetry(); tc != nil && tc.Tracing() {
		s.probe = tc.SerialProbe()
	}
	for j, job := range jobs {
		if len(job.Phases) == 0 {
			return nil, fmt.Errorf("workload: job %d (%s) has no phases", j, job.Name)
		}
		if len(job.Phases) > MaxPhases {
			return nil, fmt.Errorf("workload: job %d (%s) has %d phases, tag limit is %d",
				j, job.Name, len(job.Phases), MaxPhases)
		}
		if job.Arrival < 0 {
			return nil, fmt.Errorf("workload: job %d (%s) has negative arrival %d", j, job.Name, job.Arrival)
		}
		jr := &s.jobs[j]
		jr.name = job.Name
		jr.arrival = job.Arrival
		jr.phases = make([]phaseRun, len(job.Phases))
		jr.remaining = len(job.Phases)
		for i, ph := range job.Phases {
			if ph.Driver == nil {
				return nil, fmt.Errorf("workload: job %d (%s) phase %d (%s) has no driver", j, job.Name, i, ph.Name)
			}
			for _, d := range ph.After {
				if d.Phase < 0 || d.Phase >= i {
					return nil, fmt.Errorf("workload: job %d (%s) phase %d (%s) depends on phase %d; edges must point at earlier phases",
						j, job.Name, i, ph.Name, d.Phase)
				}
			}
			pr := &jr.phases[i]
			pr.name = ph.Name
			pr.driver = ph.Driver
			pr.after = ph.After
			pr.sink, _ = ph.Driver.(PacketSink)
			pr.payloads, _ = ph.Driver.(PayloadSink)
			if tg, ok := ph.Driver.(Taggable); ok {
				tg.SetTag(tagFor(j, i))
			}
			if fr, ok := ph.Driver.(ForeignPayloadRouter); ok {
				fr.SetForeignPayloadHandler(s.routePayload)
			}
		}
		s.remaining += len(job.Phases)
	}

	// Ejection-side dispatch: the scheduler owns every receive callback.
	for id := 0; id < nw.Topology().NumNodes(); id++ {
		nw.NIC(topology.NodeID(id)).OnReceive(s.onPacket)
	}
	for row := 0; nw.Sink(row) != nil; row++ {
		nw.Sink(row).OnReceive(s.onPacket)
	}
	return s, nil
}

// phaseByTag resolves a tag to its phase, or nil for the zero (untagged)
// tag and tags naming no scheduled phase.
func (s *Scheduler) phaseByTag(t flit.Tag) *phaseRun {
	j, p := t.Job()-1, t.Phase()
	if j < 0 || j >= len(s.jobs) || p >= len(s.jobs[j].phases) {
		return nil
	}
	return &s.jobs[j].phases[p]
}

// onPacket is the shared receive callback: per-job accounting from the
// packet's tag, then dispatch to the owning driver. Untagged deliveries
// (traffic injected outside the scheduler, or a driver that does not
// implement Taggable) count as orphans.
func (s *Scheduler) onPacket(p *nic.ReceivedPacket) {
	pr := s.phaseByTag(p.Tag)
	if pr == nil {
		s.orphanPackets++
		return
	}
	jr := &s.jobs[p.Tag.Job()-1]
	jr.ejected++
	jr.latency.Observe(float64(p.Latency()))
	if pr.sink != nil {
		pr.sink.OnPacket(p)
	}
}

// routePayload delivers a payload that arrived inside another phase's
// collective packet to the phase its ReduceID names.
func (s *Scheduler) routePayload(pl flit.Payload) {
	pr := s.phaseByTag(flit.ReduceIDTag(pl.ReduceID))
	if pr == nil || pr.payloads == nil {
		s.orphanPayloads++
		return
	}
	pr.payloads.OnPayload(pl)
}

// depsMet reports whether every incoming edge of phase i has fired.
func (s *Scheduler) depsMet(jr *jobRun, pr *phaseRun) bool {
	for _, d := range pr.after {
		dep := &jr.phases[d.Phase]
		if d.Overlap {
			if !dep.injected {
				return false
			}
		} else if !dep.drained {
			return false
		}
	}
	return true
}

// Tick advances the schedule by one cycle: admit every phase whose
// dependencies are satisfied, tick the active drivers, then harvest
// injection/drain transitions (which fire edges for the next cycle's
// admissions — except that a phase admitted this cycle ticks this cycle,
// so a single dependency-free phase behaves bit-identically to the same
// driver run standalone). After the drivers ran, every NIC's tag is
// reset to zero: tags are sticky, so without the reset a non-scheduler
// ticker injecting on a NIC some driver used earlier would inherit that
// driver's tag and be misattributed to its job instead of counted as an
// orphan.
func (s *Scheduler) Tick(cycle int64) {
	if !s.started {
		s.started = true
		s.startAt = cycle
	}
	ticked := false
	for j := range s.jobs {
		jr := &s.jobs[j]
		if jr.remaining == 0 || cycle < s.startAt+jr.arrival {
			continue
		}
		// Admission scan, in phase order.
		for i := range jr.phases {
			pr := &jr.phases[i]
			if pr.started || !s.depsMet(jr, pr) {
				continue
			}
			pr.started = true
			pr.startedAt = cycle
			if !jr.started {
				jr.started = true
				jr.startAt = cycle
			}
			s.phaseEvent(telemetry.EvPhaseStart, j, i, cycle)
			pr.driver.Start(cycle)
		}
		// Drive and harvest.
		for i := range jr.phases {
			pr := &jr.phases[i]
			if !pr.started || pr.drained {
				continue
			}
			pr.driver.Tick(cycle)
			ticked = true
			if !pr.injected && pr.driver.Injected() {
				pr.injected = true
				pr.injectedAt = cycle
				s.phaseEvent(telemetry.EvPhaseInjected, j, i, cycle)
			}
			if pr.driver.Drained() {
				pr.drained = true
				if !pr.injected {
					pr.injected = true
					pr.injectedAt = cycle
					s.phaseEvent(telemetry.EvPhaseInjected, j, i, cycle)
				}
				pr.drainedAt = cycle
				s.phaseEvent(telemetry.EvPhaseDrained, j, i, cycle)
				jr.remaining--
				s.remaining--
				if jr.remaining == 0 {
					jr.drainedAt = cycle
				}
			}
		}
	}
	// Tag hygiene (see the method comment): only cycles in which a driver
	// actually ran can have left a sticky tag behind, so the common
	// all-drained / not-yet-arrived cycle skips the NIC sweep entirely,
	// and the sweep itself only rewrites NICs that hold a tag.
	if ticked {
		s.nw.ClearNICTags()
	}
}

// phaseEvent records one phase-boundary trace event (no-op without a
// probe). Loc carries the job index, Aux the phase index.
func (s *Scheduler) phaseEvent(kind telemetry.EventKind, j, i int, cycle int64) {
	if s.probe == nil {
		return
	}
	s.probe.Emit(telemetry.Event{Cycle: cycle, Kind: kind, Tag: tagFor(j, i),
		Loc: int32(j), Aux: int64(i)})
}

// Done reports whether every phase of every job has drained.
func (s *Scheduler) Done() bool { return s.remaining == 0 }

// Run registers the scheduler with the network's engine and executes the
// whole schedule, returning the finalized per-job results. Call at most
// once.
func (s *Scheduler) Run(maxCycles int64) (*Result, error) {
	eng := s.nw.Engine()
	eng.AddTicker(s)
	cycles, err := eng.RunUntil(s.Done, maxCycles)
	if err != nil {
		return nil, fmt.Errorf("workload: %d jobs on %dx%d %s: %w",
			len(s.jobs), s.nw.Config().Rows, s.nw.Config().Cols,
			s.nw.Config().EffectiveTopology(), err)
	}
	return s.Result(cycles), nil
}

// Result builds the run summary; cycles is the total run length to
// record. Valid once Done reports true (Run calls it).
func (s *Scheduler) Result(cycles int64) *Result {
	r := &Result{
		Cycles:         cycles,
		Jobs:           make([]JobResult, len(s.jobs)),
		OrphanPackets:  s.orphanPackets,
		OrphanPayloads: s.orphanPayloads,
	}
	for j := range s.jobs {
		jr := &s.jobs[j]
		out := &r.Jobs[j]
		out.Name = jr.name
		out.StartCycle = jr.startAt
		out.DrainedCycle = jr.drainedAt
		out.PacketsEjected = jr.ejected
		out.Latency = &jr.latency
		out.Phases = make([]PhaseResult, len(jr.phases))
		for i := range jr.phases {
			pr := &jr.phases[i]
			out.Phases[i] = PhaseResult{
				Name:          pr.name,
				StartCycle:    pr.startedAt,
				InjectedCycle: pr.injectedAt,
				DrainedCycle:  pr.drainedAt,
			}
		}
	}
	return r
}

// PhaseResult is one phase's timeline in a finished run.
type PhaseResult struct {
	Name string
	// StartCycle is the admission cycle; InjectedCycle when the phase
	// finished injecting (its overlap edge fired); DrainedCycle when its
	// last packet was accounted (its barrier edge fired).
	StartCycle    int64
	InjectedCycle int64
	DrainedCycle  int64
}

// Time returns the phase's total occupancy in cycles.
func (p *PhaseResult) Time() int64 { return p.DrainedCycle - p.StartCycle }

// JobResult is one job's outcome: timeline, per-job packet accounting and
// latency distribution.
type JobResult struct {
	Name string
	// StartCycle is when the job's first phase was admitted and
	// DrainedCycle when its last phase drained.
	StartCycle   int64
	DrainedCycle int64
	// PacketsEjected counts delivered packets tagged for this job.
	PacketsEjected uint64
	// Latency samples the end-to-end latency of every such packet.
	Latency *stats.Sample
	// Phases holds the per-phase timelines in DAG order.
	Phases []PhaseResult
}

// Time returns the job's makespan in cycles.
func (j *JobResult) Time() int64 { return j.DrainedCycle - j.StartCycle }

// Throughput returns delivered packets per cycle over the job's makespan.
func (j *JobResult) Throughput() float64 {
	if t := j.Time(); t > 0 {
		return float64(j.PacketsEjected) / float64(t)
	}
	return 0
}

// Result summarizes a multi-job run.
type Result struct {
	// Cycles is the whole schedule's run length.
	Cycles int64
	// Jobs holds the per-job results in submission order.
	Jobs []JobResult
	// OrphanPackets and OrphanPayloads count deliveries no scheduled
	// phase claimed (zero in a fully scheduled run).
	OrphanPackets  uint64
	OrphanPayloads uint64
}

// JobTimes returns every job's makespan as float64s, the input to the
// fairness metrics.
func (r *Result) JobTimes() []float64 {
	ts := make([]float64, len(r.Jobs))
	for i := range r.Jobs {
		ts[i] = float64(r.Jobs[i].Time())
	}
	return ts
}

// MaxMinSlowdown returns the max/min ratio of job makespans — 1.0 is
// perfectly fair, and with identical jobs sharing the fabric it measures
// how unevenly contention taxed them.
func (r *Result) MaxMinSlowdown() float64 { return stats.MaxMinRatio(r.JobTimes()) }

// JainFairness returns Jain's fairness index of the job makespans
// (1.0 = perfectly even, 1/n = maximally skewed).
func (r *Result) JainFairness() float64 { return stats.JainIndex(r.JobTimes()) }
