package workload

import (
	"testing"

	"gathernoc/internal/cnn"
	"gathernoc/internal/collective"
	"gathernoc/internal/noc"
	"gathernoc/internal/traffic"
)

// TestCollectiveJobPhases runs a two-phase collective job — an all-reduce
// followed by a broadcast, the gradient-sync/parameter-push pair — under
// the scheduler and checks both phases' verification accounts.
func TestCollectiveJobPhases(t *testing.T) {
	nw, err := noc.New(noc.DefaultConfig(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	job, drivers, err := NewCollectiveJob(nw, "sync", []collective.Config{
		{Op: collective.AllReduce, Algorithm: collective.AlgTree, Rounds: 2, ComputeLatency: 4},
		{Op: collective.Broadcast, Algorithm: collective.AlgTree, Rounds: 1},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(job.Phases) != 2 || job.Phases[0].Name != "allreduce-tree-0" || job.Phases[1].Name != "bcast-tree-1" {
		t.Fatalf("phases = %+v", job.Phases)
	}
	s, err := New(nw, []Job{job})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range drivers {
		snap := d.Snapshot()
		if snap.OracleErrors != 0 || snap.BroadcastErrors != 0 {
			t.Errorf("phase %d: %d oracle / %d broadcast errors", i, snap.OracleErrors, snap.BroadcastErrors)
		}
	}
	if res.OrphanPackets != 0 || res.OrphanPayloads != 0 {
		t.Errorf("orphans: %d packets, %d payloads", res.OrphanPackets, res.OrphanPayloads)
	}
}

// TestCollectiveAlongsideAccumulation shares the fabric between a
// collective all-reduce job and a row-accumulation inference job: the
// scheduler's tag routing must keep each job's payloads out of the other's
// stations, and both oracles must stay exact.
func TestCollectiveAlongsideAccumulation(t *testing.T) {
	layer, ok := cnn.LayerByName(cnn.AlexNetConvLayers(), "Conv3")
	if !ok {
		t.Fatal("Conv3 missing")
	}
	nw, err := noc.New(noc.DefaultConfig(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	accJobs, accDrivers, err := NewInferenceBatch(nw, 1, 0, PipelineConfig{
		Layers: []cnn.LayerConfig{layer},
		Scheme: traffic.CollectGather,
		Rounds: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	collJob, collDrivers, err := NewCollectiveJob(nw, "sync", []collective.Config{
		{Op: collective.AllReduce, Algorithm: collective.AlgTree, Rounds: 2, ComputeLatency: 4},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(nw, append(accJobs, collJob))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if snap := accDrivers[0][0].Snapshot(); snap.OracleErrors != 0 {
		t.Errorf("accumulation job: %d oracle errors", snap.OracleErrors)
	}
	snap := collDrivers[0].Snapshot()
	if snap.OracleErrors != 0 || snap.BroadcastErrors != 0 {
		t.Errorf("collective job: %d oracle / %d broadcast errors", snap.OracleErrors, snap.BroadcastErrors)
	}
	if res.OrphanPackets != 0 || res.OrphanPayloads != 0 {
		t.Errorf("orphans: %d packets, %d payloads", res.OrphanPackets, res.OrphanPayloads)
	}
}

// TestCollectiveJobValidation covers the constructor's rejection paths.
func TestCollectiveJobValidation(t *testing.T) {
	nw := testNetwork(t, 4, 4)
	defer nw.Close()
	if _, _, err := NewCollectiveJob(nw, "empty", nil, false); err == nil {
		t.Error("empty phase list accepted")
	}
	if _, _, err := NewCollectiveJob(nw, "bad", []collective.Config{{}}, false); err == nil {
		t.Error("invalid phase config accepted")
	}
}
