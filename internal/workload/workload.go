// Package workload is the job/phase layer above the cycle-accurate
// network: it models a workload as a DAG of dependent traffic phases
// (a multi-layer CNN inference, a synthetic soak, a trace replay) and
// schedules any number of such jobs concurrently on one fabric.
//
// A Phase wraps a Driver — the injection logic of one traffic stage; the
// existing one-shot controllers (traffic.Generator,
// traffic.AccumulationController, traffic.Replayer) all implement it — and
// names the earlier phases it depends on. Dependency edges come in two
// strengths matching the accelerator's buffering discipline (DESIGN.md
// §8):
//
//   - a barrier edge admits the successor only when the predecessor has
//     fully drained (every packet delivered and verified) — the
//     single-buffered regime where layer k+1's input buffer is the same
//     SRAM layer k streams its results into;
//   - an overlap edge admits the successor as soon as the predecessor has
//     finished injecting — double-buffered pipelining, where the next
//     layer's compute starts while the previous layer's tail traffic is
//     still draining through the NoC and the two layers' flits contend in
//     the routers.
//
// The Scheduler tags every phase's packets with a flit.Tag
// (job index, phase index), threads the tag through NIC injection,
// packetization, the routers and ejection-side reassembly, and dispatches
// each delivered packet back to its owning driver — which makes per-job
// latency, throughput and fairness first-class outputs of a shared-fabric
// run instead of aggregates smeared across jobs.
package workload

import (
	"gathernoc/internal/flit"
	"gathernoc/internal/nic"
)

// Driver is one phase's injection logic. The scheduler admits the phase
// (Start), ticks it every cycle while it is active, and consults
// Injected/Drained to fire the phase's outgoing dependency edges. A
// driver must be prepared for Tick calls after Drained (they must be
// no-ops) and must never touch the network before Start.
type Driver interface {
	// Start is called once, at the cycle the phase is admitted; drivers
	// measure their internal timelines from it.
	Start(cycle int64)
	// Tick advances the phase by one cycle (injection, timeouts, round
	// bookkeeping).
	Tick(cycle int64)
	// Injected reports whether the phase has finished injecting: its
	// overlap-edge successors may start while its traffic drains.
	Injected() bool
	// Drained reports whether every packet of the phase has been
	// delivered and accounted: its barrier-edge successors may start and
	// the phase is complete.
	Drained() bool
}

// PacketSink is implemented by drivers that consume their delivered
// packets; the scheduler dispatches each ejected packet to the driver
// owning the packet's tag.
type PacketSink interface {
	OnPacket(p *nic.ReceivedPacket)
}

// PayloadSink is implemented by drivers that account individual payloads.
// Collective packets can carry payloads belonging to another phase (a
// gather packet of phase B picks up phase A's waiting payload at a shared
// sink's row); the scheduler re-routes such strays to the payload's owner
// through this interface.
type PayloadSink interface {
	OnPayload(pl flit.Payload)
}

// Taggable is implemented by drivers that stamp their traffic with the
// workload tag the scheduler assigns; every driver admitted alongside
// others on one fabric must implement it, or its packets are
// indistinguishable from untagged background noise.
type Taggable interface {
	SetTag(t flit.Tag)
}

// ForeignPayloadRouter is implemented by drivers whose packets may carry
// other phases' payloads; the scheduler installs its payload-routing hook
// through it.
type ForeignPayloadRouter interface {
	SetForeignPayloadHandler(fn func(flit.Payload))
}

// Dep is one incoming dependency edge of a phase.
type Dep struct {
	// Phase is the index (within the same job) of the predecessor. It
	// must be smaller than the dependent phase's own index, which keeps
	// every job DAG trivially acyclic.
	Phase int
	// Overlap selects the edge strength: false waits for the predecessor
	// to drain (strict barrier), true only for it to finish injecting
	// (double-buffered pipelining).
	Overlap bool
}

// Phase is one node of a job's DAG.
type Phase struct {
	// Name labels the phase in results ("Conv1", "background", ...).
	Name string
	// Driver injects the phase's traffic.
	Driver Driver
	// After lists the phase's incoming dependency edges; a phase with
	// none is admitted at the job's start.
	After []Dep
}

// Job is an independent workload sharing the fabric with its peers: one
// inference of a layer pipeline, one synthetic soak, one trace replay.
type Job struct {
	// Name labels the job in results.
	Name string
	// Arrival delays the job's admission by this many cycles after the
	// schedule starts (0 = immediately), modeling batched inferences
	// arriving over time.
	Arrival int64
	// Phases holds the job's DAG in index order.
	Phases []Phase
}
