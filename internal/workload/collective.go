package workload

import (
	"fmt"

	"gathernoc/internal/collective"
	"gathernoc/internal/noc"
)

// NewCollectiveJob compiles a sequence of collective phases into a Job —
// the gradient-synchronization pattern of data-parallel training, where
// an all-reduce follows each compute stage. Phase i is named after its
// op/algorithm pair and chained to its predecessor by a barrier edge
// (overlap selects double-buffered pipelining instead). The returned
// drivers expose each phase's Snapshot after the run.
func NewCollectiveJob(nw *noc.Network, name string, phases []collective.Config, overlap bool) (Job, []*collective.Driver, error) {
	if len(phases) == 0 {
		return Job{}, nil, fmt.Errorf("workload: collective job %q has no phases", name)
	}
	job := Job{Name: name, Phases: make([]Phase, 0, len(phases))}
	drivers := make([]*collective.Driver, 0, len(phases))
	for i, cfg := range phases {
		drv, err := collective.NewDriver(nw, cfg)
		if err != nil {
			return Job{}, nil, fmt.Errorf("workload: collective job %q phase %d: %w", name, i, err)
		}
		ph := Phase{
			Name:   fmt.Sprintf("%s-%s-%d", cfg.Op, cfg.Algorithm, i),
			Driver: drv,
		}
		if i > 0 {
			ph.After = []Dep{{Phase: i - 1, Overlap: overlap}}
		}
		job.Phases = append(job.Phases, ph)
		drivers = append(drivers, drv)
	}
	return job, drivers, nil
}
