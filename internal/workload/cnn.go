package workload

import (
	"fmt"
	"strings"

	"gathernoc/internal/cnn"
	"gathernoc/internal/noc"
	"gathernoc/internal/traffic"
)

// PipelineConfig compiles a CNN layer sequence into a phase-DAG job:
// every layer becomes one accumulation phase (its result-collection
// traffic under the chosen scheme), chained to its predecessor by a
// barrier or overlap edge.
type PipelineConfig struct {
	// Layers is the layer sequence in execution order (e.g.
	// cnn.AlexNetAllLayers()).
	Layers []cnn.LayerConfig
	// Scheme selects unicast, gather or INA collection for every layer.
	Scheme traffic.CollectScheme
	// Rounds bounds the simulated rounds per layer (0 = 1); each layer's
	// full round count still enters its extrapolated totals.
	Rounds int
	// TMAC is the MAC latency entering each layer's compute time
	// (0 = the paper's 5).
	TMAC int
	// Overlap selects double-buffered pipelining: each layer starts as
	// soon as its predecessor finished injecting, so the predecessor's
	// tail traffic contends with the successor's head. False is the
	// strict barrier — a layer starts only when its predecessor fully
	// drained, the sequential composition the analytic whole-model
	// extrapolation assumes.
	Overlap bool
}

func (c PipelineConfig) rounds() int {
	if c.Rounds <= 0 {
		return 1
	}
	return c.Rounds
}

func (c PipelineConfig) tmac() int {
	if c.TMAC <= 0 {
		return 5
	}
	return c.TMAC
}

// NewPipelineJob compiles the layer sequence into a Job on nw and returns
// it together with the per-layer drivers (whose Snapshot carries each
// layer's round latencies and extrapolated totals after the run). Each
// layer phase simulates min(Rounds, its full accumulation round count)
// rounds with a per-round compute latency of ⌈C·R·R/M⌉ + T_MAC — the
// input-channel-partitioned mapping the accumulation workload models
// (cnn.LayerConfig.AccumulationRounds / PartialMACsPerPE).
func NewPipelineJob(nw *noc.Network, name string, cfg PipelineConfig) (Job, []*traffic.AccumulationController, error) {
	if len(cfg.Layers) == 0 {
		return Job{}, nil, fmt.Errorf("workload: pipeline %q has no layers", name)
	}
	rows := nw.Config().Rows
	cols := nw.Config().Cols
	job := Job{Name: name, Phases: make([]Phase, 0, len(cfg.Layers))}
	drivers := make([]*traffic.AccumulationController, 0, len(cfg.Layers))
	for i, layer := range cfg.Layers {
		if err := layer.Validate(); err != nil {
			return Job{}, nil, fmt.Errorf("workload: pipeline %q: %w", name, err)
		}
		// The driver clamps Rounds to TotalRounds itself.
		drv, err := traffic.NewAccumulationDriver(nw, traffic.AccumulationConfig{
			Scheme:         cfg.Scheme,
			Rounds:         cfg.rounds(),
			TotalRounds:    layer.AccumulationRounds(rows),
			ComputeLatency: layer.PartialMACsPerPE(cols) + cfg.tmac(),
		})
		if err != nil {
			return Job{}, nil, fmt.Errorf("workload: pipeline %q layer %s: %w", name, layer.Name, err)
		}
		ph := Phase{Name: layer.Name, Driver: drv}
		if i > 0 {
			ph.After = []Dep{{Phase: i - 1, Overlap: cfg.Overlap}}
		}
		job.Phases = append(job.Phases, ph)
		drivers = append(drivers, drv)
	}
	return job, drivers, nil
}

// NewInferenceBatch compiles n staggered copies of the same layer
// pipeline into independent jobs on nw — the batched-inference workload
// the CLIs, experiments and benchmarks all run. Job j is named
// "inference-j", arrives stagger·j cycles after the schedule starts, and
// returns its per-layer drivers alongside so callers can aggregate
// oracle errors and extrapolated totals from their Snapshots.
func NewInferenceBatch(nw *noc.Network, n int, stagger int64, cfg PipelineConfig) ([]Job, [][]*traffic.AccumulationController, error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("workload: batch size must be >= 1, got %d", n)
	}
	if stagger < 0 {
		return nil, nil, fmt.Errorf("workload: negative batch stagger %d", stagger)
	}
	jobs := make([]Job, n)
	drivers := make([][]*traffic.AccumulationController, n)
	for j := 0; j < n; j++ {
		job, drv, err := NewPipelineJob(nw, fmt.Sprintf("inference-%d", j), cfg)
		if err != nil {
			return nil, nil, err
		}
		job.Arrival = stagger * int64(j)
		jobs[j] = job
		drivers[j] = drv
	}
	return jobs, drivers, nil
}

// ModelLayers resolves a CNN model name to its complete layer sequence
// (convolution, pooling and fully-connected layers in execution order).
func ModelLayers(model string) ([]cnn.LayerConfig, error) {
	switch strings.ToLower(model) {
	case "alexnet":
		return cnn.AlexNetAllLayers(), nil
	case "vgg16", "vgg-16":
		return cnn.VGG16AllLayers(), nil
	default:
		return nil, fmt.Errorf("workload: unknown model %q (alexnet, vgg16)", model)
	}
}
