package workload

import (
	"fmt"
	"testing"

	"gathernoc/internal/cnn"
	"gathernoc/internal/noc"
	"gathernoc/internal/traffic"
)

// smokeLayers is the Conv1→Pool1→Conv2 AlexNet prefix the CI pipeline
// smoke runs.
func smokeLayers(t *testing.T) []cnn.LayerConfig {
	t.Helper()
	all := cnn.AlexNetAllLayers()
	layers := all[:3]
	if layers[0].Name != "Conv1" || layers[1].Name != "Pool1" || layers[2].Name != "Conv2" {
		t.Fatalf("unexpected AlexNet prefix: %v", layers)
	}
	return layers
}

// TestPipelineShortSmoke runs the Conv1→Pool1→Conv2 prefix on an 8x8 mesh
// and torus, in both barrier and overlap modes: every layer's reduction
// oracle must verify, the whole job must drain, and overlap must finish
// no later than the barrier schedule on the same fabric.
func TestPipelineShortSmoke(t *testing.T) {
	fabrics := []struct {
		name string
		cfg  noc.Config
	}{
		{"mesh", noc.DefaultConfig(8, 8)},
		{"torus", noc.DefaultTorusConfig(8, 8)},
	}
	for _, fab := range fabrics {
		fab := fab
		t.Run(fab.name, func(t *testing.T) {
			cycles := map[bool]int64{}
			for _, overlap := range []bool{false, true} {
				nw, err := noc.New(fab.cfg)
				if err != nil {
					t.Fatal(err)
				}
				job, drivers, err := NewPipelineJob(nw, "alexnet-prefix", PipelineConfig{
					Layers:  smokeLayers(t),
					Scheme:  traffic.CollectGather,
					Rounds:  1,
					Overlap: overlap,
				})
				if err != nil {
					t.Fatal(err)
				}
				s, err := New(nw, []Job{job})
				if err != nil {
					t.Fatal(err)
				}
				res, err := s.Run(1_000_000)
				if err != nil {
					t.Fatalf("overlap=%v: %v", overlap, err)
				}
				for i, d := range drivers {
					snap := d.Snapshot()
					if snap.OracleErrors != 0 {
						t.Errorf("overlap=%v layer %d (%s): %d oracle errors",
							overlap, i, job.Phases[i].Name, snap.OracleErrors)
					}
					if snap.RoundCycles.N() == 0 {
						t.Errorf("overlap=%v layer %d (%s): no rounds completed",
							overlap, i, job.Phases[i].Name)
					}
				}
				if res.OrphanPackets != 0 || res.OrphanPayloads != 0 {
					t.Errorf("overlap=%v: orphans %d/%d", overlap, res.OrphanPackets, res.OrphanPayloads)
				}
				cycles[overlap] = res.Jobs[0].Time()
			}
			if cycles[true] >= cycles[false] {
				t.Errorf("overlap (%d cycles) not faster than barrier (%d)", cycles[true], cycles[false])
			}
		})
	}
}

// TestMultiJobConservationMatrix is the per-job conservation oracle over
// every topology×routing cell: four batched single-layer inference jobs
// share each fabric under the gather scheme (whose packets can pick up
// other jobs' payloads en route, exercising the scheduler's foreign
// payload routing), and every job's every row-reduction must verify
// exactly — sum and operand count — with no duplicated or orphaned
// delivery and no leaked flit.
func TestMultiJobConservationMatrix(t *testing.T) {
	layer, ok := cnn.LayerByName(cnn.AlexNetConvLayers(), "Conv3")
	if !ok {
		t.Fatal("Conv3 missing")
	}
	const jobs = 4
	for _, topo := range []string{"mesh", "torus"} {
		for _, routing := range []string{"xy", "westfirst", "oddeven"} {
			topo, routing := topo, routing
			t.Run(fmt.Sprintf("%s/%s", topo, routing), func(t *testing.T) {
				if testing.Short() && routing != "xy" {
					t.Skip("adaptive-routing cells skipped in -short")
				}
				cfg := noc.DefaultConfig(8, 8)
				if topo == "torus" {
					cfg = noc.DefaultTorusConfig(8, 8)
				}
				cfg.Routing = routing
				cfg.DebugFlitPool = true
				nw, err := noc.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				batch, perJob, err := NewInferenceBatch(nw, jobs, 3, PipelineConfig{
					Layers:  []cnn.LayerConfig{layer},
					Scheme:  traffic.CollectGather,
					Rounds:  2,
					Overlap: false,
				})
				if err != nil {
					t.Fatal(err)
				}
				drivers := make([]*traffic.AccumulationController, jobs)
				for j, drv := range perJob {
					drivers[j] = drv[0]
				}
				s, err := New(nw, batch)
				if err != nil {
					t.Fatal(err)
				}
				res, err := s.Run(2_000_000)
				if err != nil {
					t.Fatal(err)
				}
				for j, d := range drivers {
					snap := d.Snapshot()
					if snap.OracleErrors != 0 {
						t.Errorf("job %d: %d oracle errors", j, snap.OracleErrors)
					}
					if res.Jobs[j].Time() <= 0 {
						t.Errorf("job %d: non-positive makespan %d", j, res.Jobs[j].Time())
					}
					if res.Jobs[j].Latency.N() == 0 {
						t.Errorf("job %d: no latency samples", j)
					}
				}
				if res.OrphanPackets != 0 || res.OrphanPayloads != 0 {
					t.Errorf("orphans: %d packets, %d payloads", res.OrphanPackets, res.OrphanPayloads)
				}
				if live := nw.FlitPool().Live(); live != 0 {
					t.Errorf("%d flits leaked", live)
				}
				if slow := res.MaxMinSlowdown(); slow < 1 {
					t.Errorf("max/min slowdown %v < 1", slow)
				}
			})
		}
	}
}
