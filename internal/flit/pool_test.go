package flit

import "testing"

func TestPoolReusesFlits(t *testing.T) {
	p := NewPool()
	f := p.Acquire()
	f.PacketID = 42
	f.Payloads = append(f.Payloads, Payload{Seq: 1})
	p.Release(f)
	g := p.Acquire()
	if g != f {
		t.Fatal("pool did not reuse the released flit")
	}
	if g.PacketID != 0 || len(g.Payloads) != 0 {
		t.Fatalf("reused flit not reset: %+v", g)
	}
	if cap(g.Payloads) == 0 {
		t.Error("release dropped the payload backing array")
	}
	if p.Misses() != 1 {
		t.Errorf("Misses = %d, want 1 (one cold acquire)", p.Misses())
	}
}

func TestNilPoolDegradesToHeap(t *testing.T) {
	var p *Pool
	f := p.Acquire()
	if f == nil {
		t.Fatal("nil pool returned nil flit")
	}
	p.Release(f) // must not panic
	if p.Live() != 0 || p.Misses() != 0 {
		t.Error("nil pool reported nonzero stats")
	}
}

func TestPoolDebugCatchesDoubleRelease(t *testing.T) {
	p := NewPool()
	p.SetDebug(true)
	f := p.Acquire()
	p.Release(f)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	p.Release(f)
}

func TestPoolDebugCatchesForeignRelease(t *testing.T) {
	p := NewPool()
	p.SetDebug(true)
	defer func() {
		if recover() == nil {
			t.Fatal("releasing a foreign flit did not panic")
		}
	}()
	p.Release(&Flit{})
}

func TestPoolLiveTracksOutstanding(t *testing.T) {
	for _, debug := range []bool{false, true} {
		p := NewPool()
		p.SetDebug(debug)
		a, b := p.Acquire(), p.Acquire()
		if p.Live() != 2 {
			t.Fatalf("debug=%v: Live = %d, want 2", debug, p.Live())
		}
		p.Release(a)
		if p.Live() != 1 {
			t.Fatalf("debug=%v: Live = %d, want 1", debug, p.Live())
		}
		p.Release(b)
		if p.Live() != 0 {
			t.Fatalf("debug=%v: Live = %d, want 0 (leak)", debug, p.Live())
		}
	}
}

// TestPacketizeIntoPoolRoundTrip checks that packetizing from a pool and
// releasing every flit leaves nothing outstanding, and that the packet
// backing slice is reused.
func TestPacketizeIntoPoolRoundTrip(t *testing.T) {
	p := NewPool()
	p.SetDebug(true)
	format := MustFormat(DefaultFlitBits, DefaultPayloadBits, 64)
	var scratch []*Flit
	for i := 0; i < 3; i++ {
		flits, err := PacketizeInto(scratch[:0], Packet{
			ID: uint64(i + 1), PT: Unicast, Src: 1, Dst: 2, Flits: 3,
		}, format, p)
		if err != nil {
			t.Fatal(err)
		}
		if len(flits) != 3 {
			t.Fatalf("len = %d, want 3", len(flits))
		}
		for _, f := range flits {
			p.Release(f)
		}
		scratch = flits
	}
	if p.Live() != 0 {
		t.Fatalf("Live = %d after releasing everything", p.Live())
	}
	if p.Misses() != 3 {
		t.Errorf("Misses = %d, want 3 (first packet only)", p.Misses())
	}
}

// TestPacketizeIntoReleasesOnError checks the error path returns acquired
// flits to the pool instead of leaking them.
func TestPacketizeIntoReleasesOnError(t *testing.T) {
	p := NewPool()
	p.SetDebug(true)
	// A zero Format offers no payload slots, so a gather packet carrying
	// its own payload fails after its flits were acquired.
	_, err := PacketizeInto(nil, Packet{
		ID: 9, PT: Gather, Flits: 2, GatherCapacity: 1,
		Carried: &Payload{Seq: 1},
	}, &Format{}, p)
	if err == nil {
		t.Skip("format accepted the payload; error path not reachable here")
	}
	if p.Live() != 0 {
		t.Fatalf("error path leaked %d flits", p.Live())
	}
}
