package flit

import (
	"errors"
	"testing"
	"testing/quick"

	"gathernoc/internal/topology"
)

func TestTypePredicates(t *testing.T) {
	tests := []struct {
		ft       Type
		head     bool
		tail     bool
		mnemonic string
	}{
		{Head, true, false, "H"},
		{Body, false, false, "B"},
		{Tail, false, true, "T"},
		{HeadTail, true, true, "HT"},
	}
	for _, tt := range tests {
		if tt.ft.IsHead() != tt.head || tt.ft.IsTail() != tt.tail {
			t.Errorf("%s: IsHead=%v IsTail=%v, want %v/%v",
				tt.mnemonic, tt.ft.IsHead(), tt.ft.IsTail(), tt.head, tt.tail)
		}
		if tt.ft.String() != tt.mnemonic {
			t.Errorf("String() = %q, want %q", tt.ft.String(), tt.mnemonic)
		}
	}
}

func TestPacketTypeString(t *testing.T) {
	tests := []struct {
		pt   PacketType
		want string
	}{
		{Unicast, "U"}, {Multicast, "M"}, {Gather, "G"},
	}
	for _, tt := range tests {
		if got := tt.pt.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestFormatTableI(t *testing.T) {
	// Table I: 98-bit flits, 32-bit gather payloads, 8x8 mesh.
	f := MustFormat(DefaultFlitBits, DefaultPayloadBits, 64)
	if got := f.SlotsPerFlit(); got != 3 {
		t.Errorf("SlotsPerFlit = %d, want 3", got)
	}
	// Table I: "Gather: 4 flits/packet" for a full 8-wide row.
	if got := f.GatherFlits(8); got != 4 {
		t.Errorf("GatherFlits(8) = %d, want 4", got)
	}
	// A 16-wide row needs 1 + ceil(16/3) = 7 flits.
	if got := f.GatherFlits(16); got != 7 {
		t.Errorf("GatherFlits(16) = %d, want 7", got)
	}
	if got := f.NodeBits(); got != 6 {
		t.Errorf("NodeBits = %d, want 6 (64 nodes)", got)
	}
}

func TestFormatRejectsOversizedPayload(t *testing.T) {
	if _, err := NewFormat(16, 32, 64); !errors.Is(err, ErrBadFormat) {
		t.Errorf("err = %v, want ErrBadFormat", err)
	}
	if _, err := NewFormat(0, 32, 64); !errors.Is(err, ErrBadFormat) {
		t.Errorf("err = %v, want ErrBadFormat", err)
	}
}

func TestFormatHeadOverheadFitsTableI(t *testing.T) {
	f := MustFormat(DefaultFlitBits, DefaultPayloadBits, 64)
	// FT(2)+PT(2)+ASpace(4 for max 8)+Src(6)+Dst(6) = 20 bits; with the
	// 64-bit MDst bit-string that is 84 <= 98, so the published format is
	// realizable.
	if got := f.HeadOverheadBits(8); got+64 > DefaultFlitBits {
		t.Errorf("head fields need %d+64 bits, exceeding the %d-bit flit",
			got, DefaultFlitBits)
	}
}

func TestGatherFlitsMinimumCapacity(t *testing.T) {
	f := MustFormat(DefaultFlitBits, DefaultPayloadBits, 64)
	if got := f.GatherFlits(0); got != 2 {
		t.Errorf("GatherFlits(0) = %d, want 2 (head+one payload flit)", got)
	}
}

// Property: gather packet length grows monotonically with capacity and
// always provides at least the requested slots.
func TestGatherFlitsProperty(t *testing.T) {
	f := MustFormat(DefaultFlitBits, DefaultPayloadBits, 256)
	fn := func(capRaw uint8) bool {
		capacity := int(capRaw)%64 + 1
		n := f.GatherFlits(capacity)
		slots := (n - 1) * f.SlotsPerFlit()
		return slots >= capacity && slots-capacity < f.SlotsPerFlit()
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestAddPayloadRespectsSlotCap(t *testing.T) {
	fl := &Flit{Type: Body, SlotCap: 2}
	if !fl.AddPayload(Payload{Seq: 1}) || !fl.AddPayload(Payload{Seq: 2}) {
		t.Fatal("payloads rejected despite free slots")
	}
	if fl.AddPayload(Payload{Seq: 3}) {
		t.Error("payload accepted beyond SlotCap")
	}
	if fl.FreeSlots() != 0 {
		t.Errorf("FreeSlots = %d, want 0", fl.FreeSlots())
	}
}

func TestPacketizeUnicast(t *testing.T) {
	format := MustFormat(DefaultFlitBits, DefaultPayloadBits, 64)
	flits, err := Packetize(Packet{
		ID: 7, PT: Unicast, Src: 3, Dst: 12, Flits: 2, InjectCycle: 5,
	}, format)
	if err != nil {
		t.Fatal(err)
	}
	if len(flits) != 2 {
		t.Fatalf("len = %d, want 2", len(flits))
	}
	if flits[0].Type != Head || flits[1].Type != Tail {
		t.Errorf("types = %s,%s, want H,T", flits[0].Type, flits[1].Type)
	}
	for i, f := range flits {
		if f.PacketID != 7 || f.Src != 3 || f.Dst != 12 || f.Seq != i ||
			f.PacketFlits != 2 || f.InjectCycle != 5 {
			t.Errorf("flit %d fields wrong: %+v", i, f)
		}
		if f.SlotCap != 0 {
			t.Errorf("unicast flit %d has payload slots", i)
		}
	}
}

func TestPacketizeSingleFlit(t *testing.T) {
	format := MustFormat(DefaultFlitBits, DefaultPayloadBits, 64)
	flits, err := Packetize(Packet{ID: 1, PT: Unicast, Flits: 1}, format)
	if err != nil {
		t.Fatal(err)
	}
	if len(flits) != 1 || flits[0].Type != HeadTail {
		t.Fatalf("got %v", flits)
	}
}

func TestPacketizeGatherCarriesOwnPayload(t *testing.T) {
	format := MustFormat(DefaultFlitBits, DefaultPayloadBits, 64)
	own := Payload{Seq: 99, Src: 8, Dst: 15, Bits: 32, Value: 42}
	flits, err := Packetize(Packet{
		ID: 2, PT: Gather, Src: 8, Dst: 15, Flits: format.GatherFlits(8),
		GatherCapacity: 8, Carried: &own,
	}, format)
	if err != nil {
		t.Fatal(err)
	}
	if len(flits) != 4 {
		t.Fatalf("len = %d, want 4", len(flits))
	}
	if flits[0].ASpace != 7 {
		t.Errorf("ASpace = %d, want 7 (capacity 8 minus own payload)", flits[0].ASpace)
	}
	if len(flits[1].Payloads) != 1 || flits[1].Payloads[0].Value != 42 {
		t.Errorf("own payload not pre-loaded: %+v", flits[1].Payloads)
	}
	for _, f := range flits[1:] {
		if f.SlotCap != format.SlotsPerFlit() {
			t.Errorf("flit %d SlotCap = %d, want %d", f.Seq, f.SlotCap, format.SlotsPerFlit())
		}
	}
}

func TestPacketizeRejectsInvalid(t *testing.T) {
	format := MustFormat(DefaultFlitBits, DefaultPayloadBits, 64)
	if _, err := Packetize(Packet{ID: 1, PT: Unicast, Flits: 0}, format); err == nil {
		t.Error("zero-flit packet accepted")
	}
	if _, err := Packetize(Packet{ID: 1, PT: Gather, Flits: 1}, format); err == nil {
		t.Error("single-flit gather packet accepted")
	}
}

func TestPacketizeMulticastKeepsMDst(t *testing.T) {
	format := MustFormat(DefaultFlitBits, DefaultPayloadBits, 64)
	set := topology.DestSetOf(64, 1, 2, 3)
	flits, err := Packetize(Packet{ID: 3, PT: Multicast, Src: 0, MDst: set, Flits: 2}, format)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range flits {
		if f.MDst == nil || f.MDst.Len() != 3 {
			t.Errorf("flit %d MDst = %v", f.Seq, f.MDst)
		}
	}
}

func TestFlitString(t *testing.T) {
	f := &Flit{Type: Head, PT: Gather, PacketID: 42, Seq: 0, PacketFlits: 4, Src: 3, Dst: 7}
	if got := f.String(); got != "pkt42[G] H 0/4 3->7" {
		t.Errorf("String() = %q", got)
	}
}

func TestPacketizeAccumulate(t *testing.T) {
	format := MustFormat(DefaultFlitBits, DefaultPayloadBits, 64)
	own := Payload{Seq: 1, Src: 3, Dst: 9, Value: 42}
	flits, err := Packetize(Packet{
		ID: 5, PT: Accumulate, Src: 3, Dst: 9,
		Flits: AccumulateFlits, GatherCapacity: 8, ReduceID: 77, Carried: &own,
	}, format)
	if err != nil {
		t.Fatal(err)
	}
	if len(flits) != 2 {
		t.Fatalf("accumulate packet has %d flits, want 2", len(flits))
	}
	head, tail := flits[0], flits[1]
	if head.Type != Head || tail.Type != Tail {
		t.Errorf("types = %s/%s, want H/T", head.Type, tail.Type)
	}
	// Own operand consumes one unit of the merge budget.
	if head.ASpace != 7 {
		t.Errorf("ASpace = %d, want 7", head.ASpace)
	}
	if head.ReduceID != 77 {
		t.Errorf("head ReduceID = %d, want 77", head.ReduceID)
	}
	if len(tail.Payloads) != 1 {
		t.Fatalf("accumulator payloads = %d, want 1", len(tail.Payloads))
	}
	acc := tail.Payloads[0]
	if acc.ReduceID != 77 || acc.Value != 42 || acc.Ops != 1 {
		t.Errorf("accumulator = %+v, want ReduceID 77, Value 42, Ops 1", acc)
	}
	// The accumulator flit is full: merging mutates in place, nothing is
	// ever appended.
	if tail.FreeSlots() != 0 {
		t.Errorf("FreeSlots = %d, want 0", tail.FreeSlots())
	}
}

func TestPacketizeAccumulateRejectsBadShapes(t *testing.T) {
	format := MustFormat(DefaultFlitBits, DefaultPayloadBits, 64)
	own := Payload{Seq: 1}
	if _, err := Packetize(Packet{
		ID: 1, PT: Accumulate, Flits: 3, GatherCapacity: 8, Carried: &own,
	}, format); err == nil {
		t.Error("wrong flit count accepted")
	}
	if _, err := Packetize(Packet{
		ID: 1, PT: Accumulate, Flits: AccumulateFlits, GatherCapacity: 8,
	}, format); err == nil {
		t.Error("missing accumulator payload accepted")
	}
}

func TestMergePayloadRequiresAccumulator(t *testing.T) {
	f := &Flit{PT: Accumulate, Type: Tail}
	if f.MergePayload(Payload{ReduceID: 1, Value: 5}) {
		t.Error("merge into an empty flit accepted")
	}
}

func TestPayloadOpsCount(t *testing.T) {
	if (Payload{}).OpsCount() != 1 {
		t.Error("zero-value payload must count as one operand")
	}
	if (Payload{Ops: 3}).OpsCount() != 3 {
		t.Error("explicit Ops not honored")
	}
}

func TestAccumulatePacketTypeString(t *testing.T) {
	if Accumulate.String() != "A" {
		t.Errorf("Accumulate.String() = %q, want A", Accumulate.String())
	}
}
