package flit

import (
	"fmt"
	"sync"

	"gathernoc/internal/ring"
)

// Pool is a freelist of Flit objects that removes per-flit heap
// allocation from the simulator's steady state. One pool serves one
// network (the sequential engine is single-threaded, so no locking is
// needed); parallel sweeps give every network its own pool, and a sharded
// engine gives every shard its own lock-free view of the network's pool
// (see NewView).
//
// Ownership discipline (DESIGN.md §6): whoever creates a flit acquires it
// (the NIC through PacketizeInto, a router forking a multicast copy), and
// the component that removes the flit from the fabric releases it (the
// ejector after reassembly, a forking router retiring the original). A
// released flit is reset — all fields zeroed — but keeps its Payloads
// backing array, so gather payload slots are reused across packets too.
//
// A nil *Pool is valid and degrades to the garbage collector: Acquire
// returns a fresh Flit and Release is a no-op. Standalone component unit
// tests rely on this.
type Pool struct {
	free ring.FreeList[*Flit]

	// debug, when enabled, tracks every outstanding flit so tests can
	// catch double releases, releases of foreign flits, and leaks. The
	// checker state lives on the root pool and is shared by all views,
	// guarded by mu — a flit acquired in one shard and released in
	// another (packets routinely cross shard boundaries) must stay a
	// single entry in one live set.
	debug bool
	mu    sync.Mutex
	live  map[*Flit]bool

	// parent is the root pool for a shard view, nil on a root. views
	// lists a root's shard views for Live/Misses aggregation.
	parent *Pool
	views  []*Pool

	acquired uint64
	released uint64
	misses   uint64 // Acquires that had to heap-allocate
	drops    uint64 // Releases via ReleaseDropped (fault injection)
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// NewView returns a shard-local view of the pool: an independent freelist
// with its own (unsynchronized) counters, sharing the root's debug
// checker. Each view must be used by at most one goroutine per engine
// phase; flits may freely migrate between views — a flit acquired from
// one view and released into another simply changes freelists, which the
// root's aggregate accounting absorbs.
func (p *Pool) NewView() *Pool {
	root := p.root()
	v := &Pool{parent: root}
	root.views = append(root.views, v)
	return v
}

func (p *Pool) root() *Pool {
	if p.parent != nil {
		return p.parent
	}
	return p
}

// SetDebug toggles the ownership checker. With it on, Release panics on a
// flit that is not currently outstanding (double free, or a flit the pool
// never issued), and Live reports the outstanding count so drained
// networks can assert leak freedom. Enable before the first Acquire.
func (p *Pool) SetDebug(on bool) {
	p.debug = on
	if on && p.live == nil {
		p.live = make(map[*Flit]bool)
	}
}

// Acquire returns a zeroed flit, reusing a released one when available. A
// nil pool heap-allocates.
func (p *Pool) Acquire() *Flit {
	if p == nil {
		return &Flit{}
	}
	p.acquired++
	f, ok := p.free.Get()
	if !ok {
		p.misses++
		f = &Flit{}
	}
	if root := p.root(); root.debug {
		root.mu.Lock()
		root.live[f] = true
		root.mu.Unlock()
	}
	return f
}

// Release resets f and returns it to the freelist. The flit must not be
// used after release. A nil pool ignores the call (the GC reclaims f).
func (p *Pool) Release(f *Flit) {
	if p == nil {
		return
	}
	if root := p.root(); root.debug {
		root.mu.Lock()
		ok := root.live[f]
		delete(root.live, f)
		root.mu.Unlock()
		if !ok {
			panic(fmt.Sprintf("flit: double release or foreign flit %p (%s)", f, f))
		}
	}
	p.released++
	payloads := f.Payloads[:0]
	*f = Flit{Payloads: payloads}
	p.free.Put(f)
}

// ReleaseDropped releases a flit that fault injection removed from the
// fabric (dropped at a link, vanished in an outage window) and accounts
// it separately: the flit returns to the freelist like any other release
// — the leak checker must stay clean with faults enabled — while the
// Drops counter lets conservation tests reconcile "flits injected" against
// "flits delivered plus flits faulted away".
func (p *Pool) ReleaseDropped(f *Flit) {
	if p == nil {
		return
	}
	p.drops++
	p.Release(f)
}

// Drops returns how many flits were released through ReleaseDropped. On a
// root it aggregates the shard views.
func (p *Pool) Drops() uint64 {
	if p == nil {
		return 0
	}
	n := p.drops
	for _, v := range p.views {
		n += v.drops
	}
	return n
}

// Live returns the number of outstanding flits (acquired, not yet
// released), views included when called on a root. Without debug mode it
// is derived from the acquire/release counters, which is equivalent as
// long as no foreign flits are released; a single view's balance can go
// negative (flits migrate between views), so leak checks call Live on the
// root.
func (p *Pool) Live() int {
	if p == nil {
		return 0
	}
	if p.debug {
		p.mu.Lock()
		n := len(p.live)
		p.mu.Unlock()
		return n
	}
	n := int(int64(p.acquired) - int64(p.released))
	for _, v := range p.views {
		n += int(int64(v.acquired) - int64(v.released))
	}
	return n
}

// Misses returns how many Acquires fell through to the heap — the pool's
// high-water mark, and zero growth once the steady state is reached. On a
// root it aggregates the shard views.
func (p *Pool) Misses() uint64 {
	if p == nil {
		return 0
	}
	n := p.misses
	for _, v := range p.views {
		n += v.misses
	}
	return n
}
