package flit

import (
	"fmt"

	"gathernoc/internal/ring"
)

// Pool is a freelist of Flit objects that removes per-flit heap
// allocation from the simulator's steady state. One pool serves one
// network (the engine is single-threaded, so no locking is needed);
// parallel sweeps give every network its own pool.
//
// Ownership discipline (DESIGN.md §6): whoever creates a flit acquires it
// (the NIC through PacketizeInto, a router forking a multicast copy), and
// the component that removes the flit from the fabric releases it (the
// ejector after reassembly, a forking router retiring the original). A
// released flit is reset — all fields zeroed — but keeps its Payloads
// backing array, so gather payload slots are reused across packets too.
//
// A nil *Pool is valid and degrades to the garbage collector: Acquire
// returns a fresh Flit and Release is a no-op. Standalone component unit
// tests rely on this.
type Pool struct {
	free ring.FreeList[*Flit]

	// debug, when enabled, tracks every outstanding flit so tests can
	// catch double releases, releases of foreign flits, and leaks.
	debug bool
	live  map[*Flit]bool

	acquired uint64
	released uint64
	misses   uint64 // Acquires that had to heap-allocate
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// SetDebug toggles the ownership checker. With it on, Release panics on a
// flit that is not currently outstanding (double free, or a flit the pool
// never issued), and Live reports the outstanding count so drained
// networks can assert leak freedom. Enable before the first Acquire.
func (p *Pool) SetDebug(on bool) {
	p.debug = on
	if on && p.live == nil {
		p.live = make(map[*Flit]bool)
	}
}

// Acquire returns a zeroed flit, reusing a released one when available. A
// nil pool heap-allocates.
func (p *Pool) Acquire() *Flit {
	if p == nil {
		return &Flit{}
	}
	p.acquired++
	f, ok := p.free.Get()
	if !ok {
		p.misses++
		f = &Flit{}
	}
	if p.debug {
		p.live[f] = true
	}
	return f
}

// Release resets f and returns it to the freelist. The flit must not be
// used after release. A nil pool ignores the call (the GC reclaims f).
func (p *Pool) Release(f *Flit) {
	if p == nil {
		return
	}
	if p.debug {
		if !p.live[f] {
			panic(fmt.Sprintf("flit: double release or foreign flit %p (%s)", f, f))
		}
		delete(p.live, f)
	}
	p.released++
	payloads := f.Payloads[:0]
	*f = Flit{Payloads: payloads}
	p.free.Put(f)
}

// Live returns the number of outstanding flits (acquired, not yet
// released). Without debug mode it is derived from the acquire/release
// counters, which is equivalent as long as no foreign flits are released.
func (p *Pool) Live() int {
	if p == nil {
		return 0
	}
	if p.debug {
		return len(p.live)
	}
	return int(p.acquired - p.released)
}

// Misses returns how many Acquires fell through to the heap — the pool's
// high-water mark, and zero growth once the steady state is reached.
func (p *Pool) Misses() uint64 {
	if p == nil {
		return 0
	}
	return p.misses
}
