package flit_test

import (
	"fmt"

	"gathernoc/internal/flit"
)

// The Table I wire format: 98-bit flits carrying 32-bit gather payloads
// give 3 payload slots per body/tail flit, so a gather packet covering an
// 8-wide mesh row is exactly the paper's 4 flits.
func ExampleFormat_GatherFlits() {
	f := flit.MustFormat(flit.DefaultFlitBits, flit.DefaultPayloadBits, 64)
	fmt.Println("slots per flit:", f.SlotsPerFlit())
	fmt.Println("8-wide row:    ", f.GatherFlits(8), "flits")
	fmt.Println("16-wide row:   ", f.GatherFlits(16), "flits")
	// Output:
	// slots per flit: 3
	// 8-wide row:     4 flits
	// 16-wide row:    7 flits
}

// A gather packet is born carrying its initiator's payload, with ASpace
// counting the remaining slots for intermediate PEs (Fig. 3a).
func ExamplePacketize() {
	format := flit.MustFormat(flit.DefaultFlitBits, flit.DefaultPayloadBits, 64)
	own := &flit.Payload{Seq: 1, Src: 8, Dst: 64, Value: 42, Bits: 32}
	flits, err := flit.Packetize(flit.Packet{
		ID: 7, PT: flit.Gather, Src: 8, Dst: 64,
		Flits:          format.GatherFlits(8),
		GatherCapacity: 8,
		Carried:        own,
	}, format)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, f := range flits {
		fmt.Printf("%s ASpace=%d payloads=%d\n", f.Type, f.ASpace, len(f.Payloads))
	}
	// Output:
	// H ASpace=7 payloads=0
	// B ASpace=0 payloads=1
	// B ASpace=0 payloads=0
	// T ASpace=0 payloads=0
}
