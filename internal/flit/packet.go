package flit

import (
	"fmt"

	"gathernoc/internal/topology"
)

// Packet is a logical message before packetization into flits.
type Packet struct {
	// ID must be unique per network run; the NIC allocates it.
	ID uint64
	// Tag is the workload job/phase the packet belongs to (zero for
	// untagged traffic); PacketizeInto stamps it onto every flit.
	Tag Tag
	// PT selects unicast, multicast or gather.
	PT PacketType
	// Src and Dst are the endpoints (Dst ignored for multicast).
	Src topology.NodeID
	Dst topology.NodeID
	// MDst is the multicast destination set (multicast only).
	MDst *topology.DestSet
	// Flits is the total length in flits, including the head.
	Flits int
	// GatherCapacity is the payload capacity η of a gather packet, or the
	// merge budget of an accumulate packet.
	GatherCapacity int
	// ReduceID tags the reduction an accumulate packet serves.
	ReduceID uint64
	// Carried is the payload the source itself contributes (nil for an
	// empty gather packet; required for accumulate packets, whose body
	// flit carries the running sum).
	Carried *Payload
	// TrackOperands keeps merged operands of an accumulate packet as
	// separate payload entries for end-to-end reliability (see
	// Flit.TrackOperands). Set by reliability-enabled NICs only.
	TrackOperands bool
	// InjectCycle is when the packet entered the injection queue.
	InjectCycle int64
}

// Packetize expands the packet into its flit sequence according to the
// format: a head flit carrying the routing fields, then body flits, then a
// tail flit, each body/tail flit exposing fmt.SlotsPerFlit() payload slots
// for gather packets. Packets of length 1 become a single HeadTail flit.
//
// For gather packets the head's ASpace starts at GatherCapacity and the
// source's own payload (if any) is pre-loaded into the first body flit with
// ASpace decremented accordingly, mirroring a PE that initiates a gather
// packet already carrying its result.
//
// Unicast packets may also carry a single payload (in the tail flit): the
// repetitive-unicast baseline transports one partial-sum result per packet,
// and carrying it lets integrity checks cover both collection schemes.
//
// Accumulate packets (the INA extension) are always two flits: a head
// carrying the merge budget in ASpace and the reduction ID, and one tail
// flit whose single payload slot holds the running sum. Routers fold local
// operands into that payload in place, so the length never grows with the
// number of merged operands.
//
// Packetize heap-allocates the slice and every flit; the simulator's hot
// path uses PacketizeInto, which reuses both through a caller-provided
// destination slice and a Pool.
func Packetize(p Packet, format *Format) ([]*Flit, error) {
	return PacketizeInto(nil, p, format, nil)
}

// PacketizeInto is the allocation-free form of Packetize: flits are
// acquired from pool (heap-allocated when pool is nil) and appended to
// dst, whose backing array is reused across packets (pass dst[:0]). On
// error, acquired flits are returned to the pool and dst's length is
// unchanged.
func PacketizeInto(dst []*Flit, p Packet, format *Format, pool *Pool) ([]*Flit, error) {
	if p.Flits < 1 {
		return nil, fmt.Errorf("%w: packet %d has %d flits", ErrBadFormat, p.ID, p.Flits)
	}
	if p.PT == Gather && p.Flits < 2 {
		return nil, fmt.Errorf("%w: gather packet %d needs a head and at least one payload flit", ErrBadFormat, p.ID)
	}
	if p.PT == Accumulate {
		if p.Flits != AccumulateFlits {
			return nil, fmt.Errorf("%w: accumulate packet %d must be %d flits, got %d",
				ErrBadFormat, p.ID, AccumulateFlits, p.Flits)
		}
		if p.Carried == nil {
			return nil, fmt.Errorf("%w: accumulate packet %d needs its accumulator payload", ErrBadFormat, p.ID)
		}
	}
	base := len(dst)
	flits := dst
	for i := 0; i < p.Flits; i++ {
		f := pool.Acquire()
		f.PT = p.PT
		f.PacketID = p.ID
		f.Tag = p.Tag
		f.Seq = i
		f.PacketFlits = p.Flits
		f.Src = p.Src
		f.Dst = p.Dst
		f.MDst = p.MDst
		f.TrackOperands = p.TrackOperands
		f.InjectCycle = p.InjectCycle
		switch {
		case p.Flits == 1:
			f.Type = HeadTail
		case i == 0:
			f.Type = Head
		case i == p.Flits-1:
			f.Type = Tail
		default:
			f.Type = Body
		}
		if p.PT == Gather && !f.Type.IsHead() {
			f.SlotCap = format.SlotsPerFlit()
		}
		flits = append(flits, f)
	}
	pkt := flits[base:]
	switch {
	case p.PT == Gather:
		pkt[0].ASpace = p.GatherCapacity
		if p.Carried != nil {
			if !pkt[1].AddPayload(*p.Carried) {
				for _, f := range pkt {
					pool.Release(f)
				}
				return nil, fmt.Errorf("%w: gather packet %d cannot carry its own payload", ErrBadFormat, p.ID)
			}
			pkt[0].ASpace--
		}
	case p.PT == Accumulate:
		// The source's own operand seeds the accumulator and consumes one
		// unit of merge budget, mirroring the gather initiator path.
		pkt[0].ASpace = p.GatherCapacity - 1
		pkt[0].ReduceID = p.ReduceID
		acc := *p.Carried
		acc.ReduceID = p.ReduceID
		acc.Ops = acc.OpsCount()
		pkt[1].SlotCap = 1
		pkt[1].AddPayload(acc)
	case p.Carried != nil:
		last := pkt[len(pkt)-1]
		last.SlotCap = 1
		last.AddPayload(*p.Carried)
	}
	return flits, nil
}
