package flit

import (
	"errors"
	"fmt"
)

// Field widths of the packet format in Fig. 3(a), in bits. FT distinguishes
// H/B/T, PT distinguishes U/M/G. The remaining head-flit fields (ASpace,
// Src, Dst, MDst) depend on the mesh size and the flit width, so they are
// computed by Format.
const (
	// FTBits encodes the flit type.
	FTBits = 2
	// PTBits encodes the packet type.
	PTBits = 2
	// DefaultFlitBits is the flit width from Table I (98 bits/flit).
	DefaultFlitBits = 98
	// DefaultPayloadBits is the gather payload width from Table I (32 bits).
	DefaultPayloadBits = 32
)

// ErrBadFormat reports an unsatisfiable flit format configuration.
var ErrBadFormat = errors.New("flit: invalid format")

// AccumulateFlits is the fixed length of an accumulate packet: a head flit
// plus one tail flit carrying the running sum. Merging happens in place,
// so the length is independent of how many operands the packet absorbs —
// the wire-level advantage of in-network accumulation over gather packets,
// whose length grows as 1 + ⌈η/slots⌉.
const AccumulateFlits = 2

// Format captures the wire-format arithmetic of the packet layout: how many
// gather payload slots fit in one body/tail flit and how long packets of
// each kind are. It is immutable after creation.
type Format struct {
	flitBits    int
	payloadBits int
	nodeBits    int
	slotsPer    int
}

// NewFormat computes the format for a network of numNodes nodes with the
// given flit and payload widths. nodeBits is sized to address every node.
func NewFormat(flitBits, payloadBits, numNodes int) (*Format, error) {
	if flitBits <= 0 || payloadBits <= 0 || numNodes <= 0 {
		return nil, fmt.Errorf("%w: flitBits=%d payloadBits=%d nodes=%d",
			ErrBadFormat, flitBits, payloadBits, numNodes)
	}
	nodeBits := 1
	for 1<<nodeBits < numNodes {
		nodeBits++
	}
	slots := (flitBits - FTBits) / payloadBits
	if slots < 1 {
		return nil, fmt.Errorf("%w: payload (%d bits) does not fit in a %d-bit flit",
			ErrBadFormat, payloadBits, flitBits)
	}
	return &Format{
		flitBits:    flitBits,
		payloadBits: payloadBits,
		nodeBits:    nodeBits,
		slotsPer:    slots,
	}, nil
}

// MustFormat is NewFormat for statically known-good parameters.
func MustFormat(flitBits, payloadBits, numNodes int) *Format {
	f, err := NewFormat(flitBits, payloadBits, numNodes)
	if err != nil {
		panic(err)
	}
	return f
}

// FlitBits returns the configured flit width.
func (f *Format) FlitBits() int { return f.flitBits }

// PayloadBits returns the configured gather payload width.
func (f *Format) PayloadBits() int { return f.payloadBits }

// NodeBits returns the width of the Src/Dst fields.
func (f *Format) NodeBits() int { return f.nodeBits }

// SlotsPerFlit returns how many gather payload slots one body/tail flit
// carries: the flit width minus the FT field, divided by the payload width.
// For the Table I configuration (98-bit flits, 32-bit payloads) this is 3.
func (f *Format) SlotsPerFlit() int { return f.slotsPer }

// GatherFlits returns the flit count of a gather packet able to collect
// capacity payloads: one head flit plus enough body/tail flits to hold the
// slots.
//
// With Table I parameters and capacity = 8 (one 8-wide mesh row) this is
// 1 + ceil(8/3) = 4 flits, matching Table I's "Gather: 4 flits/packet";
// capacity 16 (a 16-wide row) gives 7 flits.
func (f *Format) GatherFlits(capacity int) int {
	if capacity < 1 {
		capacity = 1
	}
	return 1 + (capacity+f.slotsPer-1)/f.slotsPer
}

// HeadOverheadBits returns the head-flit field budget (FT+PT+ASpace+Src+
// Dst) excluding MDst; it documents that the Table I format is achievable
// for the meshes the paper evaluates and is used by format sanity tests.
func (f *Format) HeadOverheadBits(aspaceMax int) int {
	aspaceBits := 1
	for 1<<aspaceBits <= aspaceMax {
		aspaceBits++
	}
	return FTBits + PTBits + aspaceBits + 2*f.nodeBits
}
