// Package flit defines the wire-level data unit of the NoC and the packet
// format of Fig. 3(a) of the paper: head flits carry flit type (FT), packet
// type (PT), the available-payload-space counter (ASpace), source and
// destination identifiers and the bit-string multicast destination (MDst);
// body and tail flits carry payload slots.
//
// Gather packets reserve ASpace payload slots; intermediate routers
// decrement ASpace as they piggyback their PE's partial-sum payload into a
// passing body/tail flit (Algorithm 1).
package flit

import (
	"fmt"

	"gathernoc/internal/topology"
)

// Type is the FT field: the position of a flit within its packet.
type Type uint8

// Flit types. A single-flit packet is represented as HeadTail.
const (
	Head Type = iota + 1
	Body
	Tail
	HeadTail
)

// String returns the FT mnemonic used in the paper (H/B/T).
func (t Type) String() string {
	switch t {
	case Head:
		return "H"
	case Body:
		return "B"
	case Tail:
		return "T"
	case HeadTail:
		return "HT"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// IsHead reports whether the flit opens a packet (Head or HeadTail).
func (t Type) IsHead() bool { return t == Head || t == HeadTail }

// IsTail reports whether the flit closes a packet (Tail or HeadTail).
func (t Type) IsTail() bool { return t == Tail || t == HeadTail }

// PacketType is the PT field: unicast (U), multicast (M), gather (G) or
// accumulate (A).
type PacketType uint8

// Packet types. Accumulate is the in-network-accumulation (INA) extension:
// instead of appending each PE's payload into its own slot like a gather
// packet, routers fold their local partial sum into the packet's single
// accumulator payload, so the packet length stays constant whatever the
// row width.
const (
	Unicast PacketType = iota + 1
	Multicast
	Gather
	Accumulate
)

// String returns the PT mnemonic (U/M/G from the paper, A for INA).
func (p PacketType) String() string {
	switch p {
	case Unicast:
		return "U"
	case Multicast:
		return "M"
	case Gather:
		return "G"
	case Accumulate:
		return "A"
	default:
		return fmt.Sprintf("PacketType(%d)", uint8(p))
	}
}

// Tag identifies the workload job and phase a packet belongs to: job index
// in the high 16 bits, phase index in the low 16. The zero Tag means
// "untagged" (legacy single-workload traffic, background noise), and every
// tag-aware code path treats it exactly like the pre-tag simulator, so
// tagging is invisible unless a workload scheduler assigns tags.
type Tag uint32

// NewTag packs a job and phase index into a Tag. Indices outside
// [0, 65535] are truncated; the workload layer enforces tighter bounds
// (job and phase < 256) so tags also fit the ReduceID encoding.
func NewTag(job, phase int) Tag {
	return Tag(uint32(uint16(job))<<16 | uint32(uint16(phase)))
}

// Job returns the tag's job index.
func (t Tag) Job() int { return int(t >> 16) }

// Phase returns the tag's phase index within the job.
func (t Tag) Phase() int { return int(t & 0xFFFF) }

// String renders "job/phase" for debug output.
func (t Tag) String() string { return fmt.Sprintf("j%d/p%d", t.Job(), t.Phase()) }

// TaggedReduceID encodes a reduction identifier carrying its workload tag:
// job in bits 56..63, phase in bits 48..55, row in bits 32..47 and the
// round number in the low 32 bits. The zero tag reproduces the historic
// row<<32|round encoding bit for bit, which keeps untagged runs (and their
// goldens) unchanged. Job and phase must be < 256 (the workload scheduler
// enforces this); rows must fit 16 bits.
func TaggedReduceID(tag Tag, row int, round uint32) uint64 {
	return uint64(uint8(tag.Job()))<<56 | uint64(uint8(tag.Phase()))<<48 |
		uint64(uint16(row))<<32 | uint64(round)
}

// ReduceIDTag extracts the workload tag from a TaggedReduceID.
func ReduceIDTag(id uint64) Tag {
	return NewTag(int(id>>56), int((id>>48)&0xFF))
}

// ReduceIDRow extracts the row from a TaggedReduceID.
func ReduceIDRow(id uint64) int { return int((id >> 32) & 0xFFFF) }

// ReduceIDRound extracts the round number from a TaggedReduceID.
func ReduceIDRound(id uint64) uint32 { return uint32(id) }

// Payload is one gather payload: a PE's partial-convolution result tagged
// with its producer and its destination (the global-buffer port). Value is
// carried end to end so tests can verify no payload is lost, duplicated or
// corrupted.
type Payload struct {
	// Seq uniquely identifies the payload within a run.
	Seq uint64
	// Src is the PE that produced the payload.
	Src topology.NodeID
	// Dst is the node whose local port delivers to the global buffer.
	Dst topology.NodeID
	// Bits is the wire size of the payload (32 in Table I).
	Bits int
	// Value is the synthetic partial-sum the payload carries.
	Value uint64
	// ReadyCycle is the cycle the producing PE finished its MAC; used for
	// per-payload collection-latency statistics.
	ReadyCycle int64
	// ReduceID tags the reduction this payload belongs to (accumulation
	// traffic only): operands with the same ReduceID may be folded into
	// one another, operands with different ReduceIDs never mix.
	ReduceID uint64
	// Ops counts the operands folded into this payload: 1 for a plain
	// operand, the merge count plus one for an accumulator that absorbed
	// partial sums en route. Gather payloads leave it 0 (one operand).
	Ops int
}

// OpsCount returns the number of operands this payload represents,
// treating the zero value (pre-INA payloads) as a single operand.
func (p Payload) OpsCount() int {
	if p.Ops < 1 {
		return 1
	}
	return p.Ops
}

// Flit is a single flow-control unit. Flits are created by the network
// interface, traverse router buffers by pointer, and are never shared
// between two buffers at once, so no locking is needed.
type Flit struct {
	// Type is the FT field.
	Type Type
	// PT is the packet type field.
	PT PacketType

	// PacketID groups the flits of one packet.
	PacketID uint64
	// Tag is the workload job/phase the packet belongs to (zero for
	// untagged traffic); ejection-side accounting breaks stats down by it.
	Tag Tag
	// Seq is the flit's position within its packet, 0-based.
	Seq int
	// PacketFlits is the total flit count of the packet.
	PacketFlits int

	// Src is the injecting node.
	Src topology.NodeID
	// Dst is the unicast/gather destination.
	Dst topology.NodeID
	// MDst is the multicast destination set (nil unless PT == Multicast).
	MDst *topology.DestSet

	// ASpace is the available payload space counter (head flits of gather
	// and accumulate packets only). For gather packets it counts remaining
	// payload slots, each PayloadBits wide, across the packet's body/tail
	// flits; for accumulate packets it counts the remaining merge budget
	// (merged operands occupy no wire space, but the budget bounds how many
	// reservations the header hands out).
	ASpace int
	// ReduceID is the reduction the packet serves (head flits of
	// accumulate packets only); routers only fold local operands tagged
	// with the same ReduceID into the packet.
	ReduceID uint64
	// SlotCap is the number of payload slots this body/tail flit offers.
	SlotCap int
	// Payloads are the gather payloads uploaded into this flit so far
	// (len(Payloads) <= SlotCap).
	Payloads []Payload

	// Corrupted marks a flit damaged in flight by fault injection. The
	// flit routes and consumes bandwidth normally; the ejector discards
	// the whole reassembled packet (the receiver CRC model), leaving
	// recovery to end-to-end retransmission.
	Corrupted bool
	// TrackOperands, on accumulate packets, keeps merged operands as
	// separate payload entries instead of folding them into the
	// accumulator (wire-length accounting is unchanged — the packet stays
	// AccumulateFlits long). The end-to-end reliability layer needs
	// per-operand identity at the ejector so retransmitted duplicates can
	// be suppressed exactly; summing the entries reproduces the folded
	// value bit for bit (wrap-around uint64 addition is associative).
	TrackOperands bool

	// InjectCycle is when the head entered the source injection queue.
	InjectCycle int64
	// NetworkCycle is when the flit first left the NIC into the router.
	NetworkCycle int64
	// Hops counts the routers this flit has entered; for minimal routing
	// on a mesh it ends at Manhattan distance + 1 (source router
	// included).
	Hops int
}

// IsHead reports whether the flit opens its packet.
func (f *Flit) IsHead() bool { return f.Type.IsHead() }

// IsTail reports whether the flit closes its packet.
func (f *Flit) IsTail() bool { return f.Type.IsTail() }

// FreeSlots returns the number of payload slots still available in this
// body/tail flit.
func (f *Flit) FreeSlots() int { return f.SlotCap - len(f.Payloads) }

// AddPayload uploads p into the flit. It returns false without modifying
// the flit when no slot is free.
func (f *Flit) AddPayload(p Payload) bool {
	if f.FreeSlots() <= 0 {
		return false
	}
	f.Payloads = append(f.Payloads, p)
	return true
}

// MergePayload folds operand p into the flit's accumulator payload: the
// operand's value is added (exact wrap-around uint64 arithmetic, matching
// the software reduction oracle) and its operand count absorbed. It
// returns false without modifying the flit when the flit carries no
// accumulator or the reduction IDs differ.
//
// With TrackOperands set (reliability-enabled fabrics) the operand is
// appended as its own payload entry instead — same sum, same wire length,
// but each operand keeps its Seq so the ejector can deduplicate
// retransmissions.
func (f *Flit) MergePayload(p Payload) bool {
	if len(f.Payloads) == 0 {
		return false
	}
	if f.Payloads[0].ReduceID != p.ReduceID {
		return false
	}
	if f.TrackOperands {
		p.Ops = p.OpsCount()
		f.Payloads = append(f.Payloads, p)
		return true
	}
	acc := &f.Payloads[0]
	acc.Value += p.Value
	acc.Ops = acc.OpsCount() + p.OpsCount()
	return true
}

// String renders a compact debug form, e.g. "pkt42[G] H 0/4 3->7".
func (f *Flit) String() string {
	return fmt.Sprintf("pkt%d[%s] %s %d/%d %d->%d",
		f.PacketID, f.PT, f.Type, f.Seq, f.PacketFlits, f.Src, f.Dst)
}
