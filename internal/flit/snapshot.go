package flit

import "gathernoc/internal/topology"

// State is the serialized form of one in-flight flit: every field by
// value, with the multicast destination set flattened to its member list
// (the only pointer a flit carries). Snapshots store flits in State form;
// restore materializes them through the owning network's pool so the
// acquire/release accounting balances exactly as if the flit had lived
// its whole life in the restored network.
type State struct {
	Type          Type
	PT            PacketType
	PacketID      uint64
	Tag           Tag
	Seq           int
	PacketFlits   int
	Src           topology.NodeID
	Dst           topology.NodeID
	MDst          []topology.NodeID `json:",omitempty"`
	ASpace        int
	ReduceID      uint64
	SlotCap       int
	Payloads      []Payload `json:",omitempty"`
	Corrupted     bool
	TrackOperands bool
	InjectCycle   int64
	NetworkCycle  int64
	Hops          int
}

// CaptureFlit serializes f by value.
func CaptureFlit(f *Flit) State {
	s := State{
		Type:          f.Type,
		PT:            f.PT,
		PacketID:      f.PacketID,
		Tag:           f.Tag,
		Seq:           f.Seq,
		PacketFlits:   f.PacketFlits,
		Src:           f.Src,
		Dst:           f.Dst,
		ASpace:        f.ASpace,
		ReduceID:      f.ReduceID,
		SlotCap:       f.SlotCap,
		Corrupted:     f.Corrupted,
		TrackOperands: f.TrackOperands,
		InjectCycle:   f.InjectCycle,
		NetworkCycle:  f.NetworkCycle,
		Hops:          f.Hops,
	}
	if f.MDst != nil {
		s.MDst = f.MDst.Nodes()
	}
	if len(f.Payloads) > 0 {
		s.Payloads = append([]Payload(nil), f.Payloads...)
	}
	return s
}

// Materialize acquires a fresh flit from p and restores the captured
// fields onto it. numNodes sizes the rebuilt multicast destination set.
func (s State) Materialize(p *Pool, numNodes int) *Flit {
	f := p.Acquire()
	payloads := append(f.Payloads[:0], s.Payloads...)
	*f = Flit{
		Type:          s.Type,
		PT:            s.PT,
		PacketID:      s.PacketID,
		Tag:           s.Tag,
		Seq:           s.Seq,
		PacketFlits:   s.PacketFlits,
		Src:           s.Src,
		Dst:           s.Dst,
		ASpace:        s.ASpace,
		ReduceID:      s.ReduceID,
		SlotCap:       s.SlotCap,
		Payloads:      payloads,
		Corrupted:     s.Corrupted,
		TrackOperands: s.TrackOperands,
		InjectCycle:   s.InjectCycle,
		NetworkCycle:  s.NetworkCycle,
		Hops:          s.Hops,
	}
	if len(s.MDst) > 0 {
		f.MDst = topology.DestSetOf(numNodes, s.MDst...)
	}
	return f
}
