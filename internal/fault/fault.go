// Package fault is the deterministic fault-injection subsystem: transient
// flit drops and corruption on links, plus scheduled link and router
// outages, all decided by pure hashes of stable identifiers (seed, link
// index, packet ID) or by cycle windows. Because no shared random state is
// consulted, the fault schedule of a run is a function of the
// configuration alone — bit-identical at every shard count — and the
// recovery machinery layered on top (NIC retransmission, ejector duplicate
// suppression, port masks for the adaptive routings) can be tested for
// exact payload conservation.
package fault

import (
	"errors"
	"fmt"
	"math"
)

// ErrUnreachable is the named error for a destination that no alive path
// can reach under the currently active outages. It is returned (wrapped)
// by reachability checks such as noc.Network.CheckReachable; callers
// detect it with errors.Is.
var ErrUnreachable = errors.New("fault: destination unreachable")

// Window is a half-open cycle interval [From, Until) during which an
// outage is active. Until <= 0 means the outage is permanent.
type Window struct {
	From  int64
	Until int64
}

// Active reports whether the window covers cycle now.
func (w Window) Active(now int64) bool {
	return now >= w.From && (w.Until <= 0 || now < w.Until)
}

// Permanent reports whether the window never ends.
func (w Window) Permanent() bool { return w.Until <= 0 }

// WindowSet is a small list of outage windows (typically zero or one).
type WindowSet []Window

// Active reports whether any window covers cycle now.
func (ws WindowSet) Active(now int64) bool {
	for _, w := range ws {
		if w.Active(now) {
			return true
		}
	}
	return false
}

// LinkOutage schedules a directed inter-router link dead for a window:
// every packet whose head reaches the link while the window is active is
// dropped whole (the fabric sees a cut wire, not a truncated wormhole).
type LinkOutage struct {
	// SrcNode and DstNode name the link by the routers it connects, in
	// traversal direction.
	SrcNode, DstNode int
	Window
}

// RouterOutage schedules a whole router dead for a window: every link
// incident to the router (inter-router links in both directions plus the
// local NIC's injection and ejection links) drops packets while the
// window is active, partitioning the node off the fabric.
type RouterOutage struct {
	Node int
	Window
}

// Retransmission policy defaults (see Config).
const (
	DefaultRetryTimeout = 256
	DefaultRetryCap     = 4
	DefaultMaxRetries   = 8
)

// Config declares a deterministic fault schedule and the reliability
// policy that recovers from it. The zero value injects nothing; a nil
// *Config in noc.Config disables the subsystem entirely (no per-cycle
// overhead, bit-identical to a fault-free build).
type Config struct {
	// Seed salts every fault decision. Two runs with the same seed and
	// schedule observe identical faults at every shard count.
	Seed uint64

	// DropRate is the probability that a packet is dropped while
	// traversing one link (whole-packet, decided at the head flit).
	DropRate float64
	// CorruptRate is the probability that a packet is corrupted while
	// traversing one link. Corrupted packets consume wire bandwidth
	// normally and are discarded by the receiver's CRC check at ejection.
	CorruptRate float64

	// Links and Routers schedule hard outages on top of the transient
	// rates above.
	Links   []LinkOutage
	Routers []RouterOutage

	// RetryTimeout is the base end-to-end retransmission timeout in
	// cycles (0 = DefaultRetryTimeout). Each retry doubles the timeout up
	// to RetryCap doublings (capped exponential backoff).
	RetryTimeout int64
	// RetryCap bounds the exponential backoff (0 = DefaultRetryCap).
	RetryCap int
	// MaxRetries is the number of retransmissions attempted before a
	// payload is abandoned (0 = DefaultMaxRetries; < 0 = never abandon).
	// Abandonment is what lets a permanently partitioned run go quiet so
	// the stall watchdog can convert it into a diagnostic.
	MaxRetries int
}

// Enabled reports whether the configuration can inject any fault.
func (c *Config) Enabled() bool {
	if c == nil {
		return false
	}
	return c.DropRate > 0 || c.CorruptRate > 0 || len(c.Links) > 0 || len(c.Routers) > 0
}

// Validate checks rates and windows. Node-range checks against a concrete
// topology happen in noc.Config.Validate.
func (c *Config) Validate() error {
	if c == nil {
		return nil
	}
	if c.DropRate < 0 || c.DropRate > 1 {
		return fmt.Errorf("fault: DropRate %v outside [0, 1]", c.DropRate)
	}
	if c.CorruptRate < 0 || c.CorruptRate > 1 {
		return fmt.Errorf("fault: CorruptRate %v outside [0, 1]", c.CorruptRate)
	}
	for _, o := range c.Links {
		if err := validateWindow(o.Window); err != nil {
			return fmt.Errorf("fault: link outage %d>%d: %w", o.SrcNode, o.DstNode, err)
		}
	}
	for _, o := range c.Routers {
		if err := validateWindow(o.Window); err != nil {
			return fmt.Errorf("fault: router outage %d: %w", o.Node, err)
		}
	}
	if c.RetryTimeout < 0 {
		return fmt.Errorf("fault: RetryTimeout %d negative", c.RetryTimeout)
	}
	if c.RetryCap < 0 {
		return fmt.Errorf("fault: RetryCap %d negative", c.RetryCap)
	}
	return nil
}

func validateWindow(w Window) error {
	if w.From < 0 {
		return fmt.Errorf("window From %d negative", w.From)
	}
	if w.Until > 0 && w.Until <= w.From {
		return fmt.Errorf("window [%d, %d) empty", w.From, w.Until)
	}
	return nil
}

// EffectiveRetryTimeout resolves the base retransmission timeout.
func (c *Config) EffectiveRetryTimeout() int64 {
	if c == nil || c.RetryTimeout <= 0 {
		return DefaultRetryTimeout
	}
	return c.RetryTimeout
}

// EffectiveRetryCap resolves the backoff doubling cap.
func (c *Config) EffectiveRetryCap() int {
	if c == nil || c.RetryCap <= 0 {
		return DefaultRetryCap
	}
	return c.RetryCap
}

// EffectiveMaxRetries resolves the abandonment bound; < 0 means retry
// forever.
func (c *Config) EffectiveMaxRetries() int {
	if c == nil {
		return DefaultMaxRetries
	}
	if c.MaxRetries < 0 {
		return math.MaxInt
	}
	if c.MaxRetries == 0 {
		return DefaultMaxRetries
	}
	return c.MaxRetries
}

// mix is the stateless decision hash (the same splitmix-style finalizer
// telemetry uses for trace sampling): a pure function of the salt and the
// packet ID, so every flit of a packet — on every shard layout — computes
// the same verdict.
func mix(salt, x uint64) uint64 {
	x ^= salt
	x *= 0x9E3779B97F4A7C15
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// threshold maps a probability in [0, 1] to a uint64 comparison bound.
func threshold(rate float64) uint64 {
	if rate <= 0 {
		return 0
	}
	if rate >= 1 {
		return math.MaxUint64
	}
	return uint64(rate * float64(1<<63) * 2)
}

// Injector is the compiled form of a Config: per-link decision state plus
// aggregate counters. The network layer creates one LinkState per wired
// link (in construction order, which is shard-count-invariant) and calls
// into it from the link commit phase.
type Injector struct {
	cfg      *Config
	dropT    uint64
	corruptT uint64
	links    []*LinkState
}

// NewInjector compiles cfg. The caller is expected to have validated it.
func NewInjector(cfg *Config) *Injector {
	return &Injector{
		cfg:      cfg,
		dropT:    threshold(cfg.DropRate),
		corruptT: threshold(cfg.CorruptRate),
	}
}

// Config returns the schedule the injector was compiled from.
func (in *Injector) Config() *Config { return in.cfg }

// NewLink registers decision state for the link with the given
// construction index and scheduled outage windows. Each LinkState is owned
// by the shard that commits the link's flits; the injector only aggregates
// counters after phases complete.
func (in *Injector) NewLink(index int, outages WindowSet) *LinkState {
	ls := &LinkState{
		salt:     mix(in.cfg.Seed, uint64(index)+1),
		dropT:    in.dropT,
		corruptT: in.corruptT,
		windows:  outages,
	}
	in.links = append(in.links, ls)
	return ls
}

// NewOutageLink registers decision state that only honors the scheduled
// outage windows, without the transient drop/corrupt rates. The network
// layer uses it for the links hit by a RouterOutage that are not fabric
// links (NIC injection/ejection, sink channels): transient noise models
// inter-router wires, but a dead router severs its local channels too.
func (in *Injector) NewOutageLink(index int, outages WindowSet) *LinkState {
	ls := &LinkState{
		salt:    mix(in.cfg.Seed, uint64(index)+1),
		windows: outages,
	}
	in.links = append(in.links, ls)
	return ls
}

// Drops sums packet-drop flit counts across all links. Only safe between
// phases (tests, telemetry snapshots, post-run reports).
func (in *Injector) Drops() uint64 {
	var n uint64
	for _, ls := range in.links {
		n += ls.Drops
	}
	return n
}

// Corrupts sums corrupted-packet counts across all links.
func (in *Injector) Corrupts() uint64 {
	var n uint64
	for _, ls := range in.links {
		n += ls.Corrupts
	}
	return n
}

// LinkState decides, flit by flit, what one link does to traffic. All
// methods are called from the link's commit phase only, so the state has a
// single writer.
type LinkState struct {
	salt     uint64
	dropT    uint64
	corruptT uint64
	windows  WindowSet

	// doomed tracks multi-flit packets whose head was dropped, so the
	// body and tail vanish at the same link (drops are packet-atomic: the
	// downstream router never sees a truncated wormhole).
	doomed map[uint64]struct{}

	// Drops counts dropped flits; Corrupts counts corrupted packets.
	Drops    uint64
	Corrupts uint64
}

// Cut reports whether a scheduled outage covers cycle now.
func (ls *LinkState) Cut(now int64) bool { return ls.windows.Active(now) }

// DropFlit decides whether the flit with the given packet ID and
// head/tail position is dropped at this link. The verdict is made at the
// head (transient hash or outage window) and then applied to every
// remaining flit of the packet.
func (ls *LinkState) DropFlit(pid uint64, head, tail bool, now int64) bool {
	if head {
		doomedNow := ls.Cut(now) || (ls.dropT > 0 && mix(ls.salt, pid) < ls.dropT)
		if doomedNow {
			if !tail {
				if ls.doomed == nil {
					ls.doomed = make(map[uint64]struct{})
				}
				ls.doomed[pid] = struct{}{}
			}
			ls.Drops++
		}
		return doomedNow
	}
	if ls.doomed == nil {
		return false
	}
	if _, ok := ls.doomed[pid]; !ok {
		return false
	}
	if tail {
		delete(ls.doomed, pid)
	}
	ls.Drops++
	return true
}

// CorruptFlit decides whether the packet traversing this link is
// corrupted. Like drops, the verdict is per packet (every flit of a
// corrupted packet is marked, and the receiver discards the reassembled
// packet); unlike drops the flits still travel and consume bandwidth.
func (ls *LinkState) CorruptFlit(pid uint64, head bool) bool {
	if ls.corruptT == 0 {
		return false
	}
	// A distinct salt keeps the corrupt schedule independent of the drop
	// schedule at the same rate.
	if mix(ls.salt^0xD6E8FEB86659FD93, pid) >= ls.corruptT {
		return false
	}
	if head {
		ls.Corrupts++
	}
	return true
}
