package fault

import (
	"math"
	"testing"
)

func TestWindowActive(t *testing.T) {
	tests := []struct {
		w    Window
		now  int64
		want bool
	}{
		{Window{From: 10, Until: 20}, 9, false},
		{Window{From: 10, Until: 20}, 10, true},
		{Window{From: 10, Until: 20}, 19, true},
		{Window{From: 10, Until: 20}, 20, false},
		{Window{From: 10}, 9, false},
		{Window{From: 10}, 1 << 40, true}, // permanent
		{Window{}, 0, true},               // permanent from cycle 0
	}
	for _, tt := range tests {
		if got := tt.w.Active(tt.now); got != tt.want {
			t.Errorf("%+v.Active(%d) = %v, want %v", tt.w, tt.now, got, tt.want)
		}
	}
	if !(Window{From: 3}).Permanent() {
		t.Error("Until=0 must be permanent")
	}
	if (Window{From: 3, Until: 9}).Permanent() {
		t.Error("bounded window must not be permanent")
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		cfg    *Config
		wantOK bool
	}{
		{"nil", nil, true},
		{"zero", &Config{}, true},
		{"rates", &Config{DropRate: 0.5, CorruptRate: 1}, true},
		{"drop rate high", &Config{DropRate: 1.5}, false},
		{"corrupt rate negative", &Config{CorruptRate: -0.1}, false},
		{"empty link window", &Config{Links: []LinkOutage{{SrcNode: 0, DstNode: 1, Window: Window{From: 5, Until: 5}}}}, false},
		{"negative router window", &Config{Routers: []RouterOutage{{Node: 3, Window: Window{From: -1}}}}, false},
		{"valid outages", &Config{
			Links:   []LinkOutage{{SrcNode: 0, DstNode: 1, Window: Window{From: 0, Until: 100}}},
			Routers: []RouterOutage{{Node: 3, Window: Window{From: 50}}},
		}, true},
		{"negative timeout", &Config{RetryTimeout: -1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.cfg.Validate(); (err == nil) != tt.wantOK {
				t.Errorf("Validate() = %v, wantOK %v", err, tt.wantOK)
			}
		})
	}
}

func TestEffectivePolicyDefaults(t *testing.T) {
	var nilCfg *Config
	if got := nilCfg.EffectiveRetryTimeout(); got != DefaultRetryTimeout {
		t.Errorf("nil EffectiveRetryTimeout = %d", got)
	}
	c := &Config{}
	if c.EffectiveRetryTimeout() != DefaultRetryTimeout ||
		c.EffectiveRetryCap() != DefaultRetryCap ||
		c.EffectiveMaxRetries() != DefaultMaxRetries {
		t.Error("zero config must resolve to the documented defaults")
	}
	c = &Config{RetryTimeout: 99, RetryCap: 2, MaxRetries: -1}
	if c.EffectiveRetryTimeout() != 99 || c.EffectiveRetryCap() != 2 {
		t.Error("explicit policy values must pass through")
	}
	if c.EffectiveMaxRetries() != math.MaxInt {
		t.Error("MaxRetries < 0 must mean retry forever")
	}
}

func TestEnabled(t *testing.T) {
	var nilCfg *Config
	if nilCfg.Enabled() {
		t.Error("nil config enabled")
	}
	if (&Config{Seed: 7, RetryTimeout: 100}).Enabled() {
		t.Error("config with no fault source enabled")
	}
	for _, c := range []*Config{
		{DropRate: 0.01},
		{CorruptRate: 0.01},
		{Links: []LinkOutage{{SrcNode: 0, DstNode: 1}}},
		{Routers: []RouterOutage{{Node: 2}}},
	} {
		if !c.Enabled() {
			t.Errorf("%+v not enabled", c)
		}
	}
}

// TestDropFlitPacketAtomic verifies the head's verdict binds the whole
// packet: body and tail flits of a doomed packet vanish at the same link,
// and a packet whose head survived is never truncated later.
func TestDropFlitPacketAtomic(t *testing.T) {
	inj := NewInjector(&Config{Seed: 1, DropRate: 0.5})
	ls := inj.NewLink(0, nil)
	dropped, kept := 0, 0
	for pid := uint64(1); pid <= 200; pid++ {
		head := ls.DropFlit(pid, true, false, 0)
		body := ls.DropFlit(pid, false, false, 0)
		tail := ls.DropFlit(pid, false, true, 0)
		if head != body || head != tail {
			t.Fatalf("packet %d not atomic: head=%v body=%v tail=%v", pid, head, body, tail)
		}
		if head {
			dropped++
		} else {
			kept++
		}
	}
	if dropped == 0 || kept == 0 {
		t.Fatalf("rate 0.5 over 200 packets gave dropped=%d kept=%d", dropped, kept)
	}
	if len(ls.doomed) != 0 {
		t.Errorf("doomed map leaked %d entries past the tails", len(ls.doomed))
	}
	if ls.Drops != uint64(3*dropped) {
		t.Errorf("Drops = %d, want %d (3 flits per dropped packet)", ls.Drops, 3*dropped)
	}
}

// TestDropDeterminism pins the property everything rests on: the same
// (seed, link index, packet id) triple always produces the same verdict,
// and different seeds or link indices decorrelate.
func TestDropDeterminism(t *testing.T) {
	verdicts := func(seed uint64, index int) []bool {
		inj := NewInjector(&Config{Seed: seed, DropRate: 0.3})
		ls := inj.NewLink(index, nil)
		out := make([]bool, 100)
		for pid := range out {
			out[pid] = ls.DropFlit(uint64(pid)+1, true, true, 0)
		}
		return out
	}
	a, b := verdicts(42, 7), verdicts(42, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed/index diverged at packet %d", i)
		}
	}
	diff := 0
	for i, v := range verdicts(42, 8) {
		if v != a[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different link index produced an identical schedule")
	}
}

// TestOutageWindowBindsAtHead verifies a packet whose head crossed before
// the outage completes intact, while one heading in during the window
// vanishes whole — even if its tail arrives after the window closed.
func TestOutageWindowBindsAtHead(t *testing.T) {
	inj := NewInjector(&Config{Seed: 1, Links: []LinkOutage{{SrcNode: 0, DstNode: 1, Window: Window{From: 10, Until: 20}}}})
	ls := inj.NewLink(0, WindowSet{{From: 10, Until: 20}})
	if ls.DropFlit(1, true, false, 9) {
		t.Fatal("head before window dropped")
	}
	if ls.DropFlit(1, false, true, 15) {
		t.Fatal("tail of a surviving packet dropped inside the window")
	}
	if !ls.DropFlit(2, true, false, 19) {
		t.Fatal("head inside window survived")
	}
	if !ls.DropFlit(2, false, true, 25) {
		t.Fatal("tail of a doomed packet survived past the window")
	}
	if ls.DropFlit(3, true, true, 20) {
		t.Fatal("head at window end dropped (half-open interval)")
	}
}

// TestCorruptIndependentOfDrop checks the two transient schedules at equal
// rates do not shadow each other (distinct salts).
func TestCorruptIndependentOfDrop(t *testing.T) {
	inj := NewInjector(&Config{Seed: 9, DropRate: 0.3, CorruptRate: 0.3})
	ls := inj.NewLink(0, nil)
	both, dropOnly, corruptOnly := 0, 0, 0
	for pid := uint64(1); pid <= 500; pid++ {
		d := ls.DropFlit(pid, true, true, 0)
		c := ls.CorruptFlit(pid, true)
		switch {
		case d && c:
			both++
		case d:
			dropOnly++
		case c:
			corruptOnly++
		}
	}
	if both == 0 || dropOnly == 0 || corruptOnly == 0 {
		t.Errorf("schedules not independent: both=%d dropOnly=%d corruptOnly=%d", both, dropOnly, corruptOnly)
	}
	if inj.Drops() == 0 || inj.Corrupts() == 0 {
		t.Error("injector aggregates must reflect link counters")
	}
}

// TestOutageOnlyLinkIgnoresRates pins NewOutageLink's contract: local
// channels hit by a router outage see the windows but never the transient
// inter-router noise.
func TestOutageOnlyLinkIgnoresRates(t *testing.T) {
	inj := NewInjector(&Config{Seed: 3, DropRate: 1, CorruptRate: 1})
	ls := inj.NewOutageLink(5, WindowSet{{From: 100, Until: 200}})
	for pid := uint64(1); pid <= 50; pid++ {
		if ls.DropFlit(pid, true, true, 0) {
			t.Fatal("outage-only link applied the transient drop rate")
		}
		if ls.CorruptFlit(pid, true) {
			t.Fatal("outage-only link applied the corrupt rate")
		}
	}
	if !ls.DropFlit(99, true, true, 150) {
		t.Fatal("outage-only link ignored its window")
	}
}

func TestThresholdBounds(t *testing.T) {
	if threshold(0) != 0 {
		t.Error("rate 0 must never fire")
	}
	if threshold(1) != math.MaxUint64 {
		t.Error("rate 1 must always fire")
	}
	if th := threshold(0.5); th < math.MaxUint64/4 || th > math.MaxUint64/4*3 {
		t.Errorf("rate 0.5 threshold %d implausible", th)
	}
}
