package fault

import "sort"

// LinkSnapshot is the serialized mutable state of one LinkState: the
// packet-atomic drop set plus the diagnostic counters. The decision
// inputs (salt, thresholds, outage windows) are pure functions of the
// configuration and are rebuilt by construction, not serialized.
type LinkSnapshot struct {
	Doomed   []uint64 `json:",omitempty"`
	Drops    uint64
	Corrupts uint64
}

// Capture serializes the link's mutable fault state. The doomed set is
// emitted sorted so identical states serialize identically.
func (ls *LinkState) Capture() LinkSnapshot {
	s := LinkSnapshot{Drops: ls.Drops, Corrupts: ls.Corrupts}
	for pid := range ls.doomed {
		s.Doomed = append(s.Doomed, pid)
	}
	sort.Slice(s.Doomed, func(i, j int) bool { return s.Doomed[i] < s.Doomed[j] })
	return s
}

// Restore replaces the link's mutable fault state with the captured one.
func (ls *LinkState) Restore(s LinkSnapshot) {
	ls.Drops = s.Drops
	ls.Corrupts = s.Corrupts
	clear(ls.doomed)
	if len(s.Doomed) > 0 && ls.doomed == nil {
		ls.doomed = make(map[uint64]struct{}, len(s.Doomed))
	}
	for _, pid := range s.Doomed {
		ls.doomed[pid] = struct{}{}
	}
}
