package topology

import "fmt"

// Torus is an immutable Rows×Cols 2-D torus: the mesh grid with wraparound
// links closing every row and column into a ring. Hop counts use the
// shorter way around each ring, so the worst-case distance halves relative
// to the mesh — the property that lets collective-capable NoCs scale to
// larger accelerator arrays.
//
// The wraparound links reintroduce cyclic channel dependencies that the
// mesh's turn models cannot break; deadlock-free routing on the torus
// therefore pairs dimension-order routing with dateline virtual-channel
// classes (see Routing and DESIGN.md §7).
type Torus struct {
	grid *Mesh
}

// NewTorus returns a Rows×Cols torus.
func NewTorus(rows, cols int) (*Torus, error) {
	m, err := NewMesh(rows, cols)
	if err != nil {
		return nil, err
	}
	return &Torus{grid: m}, nil
}

// MustTorus is NewTorus for statically known-good dimensions; it panics on
// error and is intended for tests and package-level defaults.
func MustTorus(rows, cols int) *Torus {
	t, err := NewTorus(rows, cols)
	if err != nil {
		panic(err)
	}
	return t
}

// Name implements Topology.
func (t *Torus) Name() string { return "torus" }

// Rows returns the number of torus rows.
func (t *Torus) Rows() int { return t.grid.Rows() }

// Cols returns the number of torus columns.
func (t *Torus) Cols() int { return t.grid.Cols() }

// NumNodes returns Rows*Cols.
func (t *Torus) NumNodes() int { return t.grid.NumNodes() }

// ID converts a coordinate to its row-major NodeID.
func (t *Torus) ID(c Coord) NodeID { return t.grid.ID(c) }

// Coord converts a NodeID back to its grid coordinate.
func (t *Torus) Coord(id NodeID) Coord { return t.grid.Coord(id) }

// InBounds reports whether c lies on the grid.
func (t *Torus) InBounds(c Coord) bool { return t.grid.InBounds(c) }

// ValidNode reports whether id names a node.
func (t *Torus) ValidNode(id NodeID) bool { return t.grid.ValidNode(id) }

// Neighbor returns the node adjacent to id through port p. Unlike the
// mesh, every cardinal port is connected: ports facing off the grid edge
// wrap around to the opposite edge. Only LocalPort (and invalid ports)
// report false.
func (t *Torus) Neighbor(id NodeID, p Port) (NodeID, bool) {
	c := t.grid.Coord(id)
	switch p {
	case NorthPort:
		c.Row = mod(c.Row-1, t.Rows())
	case SouthPort:
		c.Row = mod(c.Row+1, t.Rows())
	case EastPort:
		c.Col = mod(c.Col+1, t.Cols())
	case WestPort:
		c.Col = mod(c.Col-1, t.Cols())
	default:
		return 0, false
	}
	return t.grid.ID(c), true
}

// Hops returns the minimal hop count between two nodes: per dimension the
// shorter way around the ring.
func (t *Torus) Hops(a, b NodeID) int {
	ca, cb := t.grid.Coord(a), t.grid.Coord(b)
	return ringDist(ca.Row, cb.Row, t.Rows()) + ringDist(ca.Col, cb.Col, t.Cols())
}

// String renders the torus dimensions.
func (t *Torus) String() string {
	return fmt.Sprintf("torus %dx%d", t.Rows(), t.Cols())
}

// ringDist is the minimal distance between positions a and b on a ring of
// the given size.
func ringDist(a, b, size int) int {
	d := abs(a - b)
	if w := size - d; w < d {
		return w
	}
	return d
}

// mod is the positive remainder of v modulo size (size > 0).
func mod(v, size int) int {
	v %= size
	if v < 0 {
		v += size
	}
	return v
}
