package topology

import "fmt"

// Routing computes, for a single-destination packet, the productive output
// ports at each hop and the virtual-channel class the hop must use. It is
// the pluggable half of the Topology/Routing pair: the router pipeline
// calls it through the network layer and needs no knowledge of which
// algorithm or fabric is configured.
//
// A routing function is deterministic when AppendPorts always returns one
// port and adaptive when it may return several (the router then picks the
// alternative with the most downstream credit). Every implementation must
// be minimal (each returned port reduces the distance to dst), livelock-
// free, and deadlock-free on its topology — the deadlock argument per
// algorithm is documented in DESIGN.md §7.
type Routing interface {
	// Name identifies the algorithm in configs and reports ("xy",
	// "westfirst", "oddeven").
	Name() string
	// Topology returns the fabric the routing was constructed for.
	Topology() Topology
	// Adaptive reports whether AppendPorts may return more than one port.
	Adaptive() bool
	// AppendPorts appends the productive output ports a packet injected at
	// src, currently at cur, may take toward dst, and returns the extended
	// slice. The result is empty only when cur == dst. Appending into a
	// caller-owned scratch buffer keeps route computation allocation-free
	// on the hot path.
	AppendPorts(ports []Port, src, cur, dst NodeID) []Port
	// VCClasses returns how many dateline virtual-channel classes the
	// algorithm needs for deadlock freedom: 1 on fabrics whose channel
	// dependencies are already acyclic (mesh turn models), 2 when ring
	// cycles must be broken by a dateline (torus dimension-order routing).
	// Downstream VC allocation partitions the physical VCs evenly across
	// the classes, so the router VC count must be >= VCClasses.
	VCClasses() int
	// VCClass returns the dateline class, in [0, VCClasses()), that the
	// hop leaving cur through out toward dst must allocate its downstream
	// VC from. Single-class routings always return 0.
	VCClass(cur, dst NodeID, out Port) int
}

// RoutingNames lists the built-in routing algorithms accepted by
// NewRouting.
func RoutingNames() []string { return []string{"xy", "westfirst", "oddeven"} }

// NewRouting constructs a built-in routing algorithm by name for the given
// topology. The empty name selects "xy", deterministic dimension-order
// routing — the paper's setting on the mesh, and on the torus the
// wrap-aware minimal variant with dateline VC classes.
//
// The adaptive turn-model algorithms ("westfirst", "oddeven") are proven
// deadlock-free on the mesh's acyclic channel graph only; on a torus they
// route over the mesh sub-network (wraparound links stay unused), which
// preserves the proof at the cost of mesh-length paths. Only "xy" exploits
// the torus wraparound links.
func NewRouting(name string, t Topology) (Routing, error) {
	if t == nil {
		return nil, fmt.Errorf("topology: NewRouting needs a topology")
	}
	switch name {
	case "", "xy":
		if _, ok := t.(*Torus); ok {
			return torusDOR{t: t}, nil
		}
		return xyRouting{t: t}, nil
	case "westfirst":
		return westFirstRouting{t: t}, nil
	case "oddeven":
		return oddEvenRouting{t: t}, nil
	default:
		return nil, fmt.Errorf("topology: unknown routing %q (xy, westfirst, oddeven)", name)
	}
}

// xyRouting is deterministic dimension-order routing on the mesh grid:
// correct the column first, then the row. Deadlock-free because the turn
// graph it induces is acyclic.
type xyRouting struct{ t Topology }

func (r xyRouting) Name() string       { return "xy" }
func (r xyRouting) Topology() Topology { return r.t }
func (r xyRouting) Adaptive() bool     { return false }
func (r xyRouting) VCClasses() int     { return 1 }

func (r xyRouting) VCClass(cur, dst NodeID, out Port) int { return 0 }

func (r xyRouting) AppendPorts(ports []Port, src, cur, dst NodeID) []Port {
	if cur == dst {
		return ports
	}
	return append(ports, xyStep(r.t.Coord(cur), r.t.Coord(dst)))
}

// xyStep is the mesh dimension-order step from cc toward cd (cc != cd).
func xyStep(cc, cd Coord) Port {
	switch {
	case cd.Col > cc.Col:
		return EastPort
	case cd.Col < cc.Col:
		return WestPort
	case cd.Row > cc.Row:
		return SouthPort
	default:
		return NorthPort
	}
}

// westFirstRouting adapts the west-first turn model (Glass & Ni) to the
// Routing interface. On a torus it routes over the mesh sub-network, which
// keeps the turn-model deadlock proof intact (see NewRouting).
type westFirstRouting struct{ t Topology }

func (r westFirstRouting) Name() string       { return "westfirst" }
func (r westFirstRouting) Topology() Topology { return r.t }
func (r westFirstRouting) Adaptive() bool     { return true }
func (r westFirstRouting) VCClasses() int     { return 1 }

func (r westFirstRouting) VCClass(cur, dst NodeID, out Port) int { return 0 }

func (r westFirstRouting) AppendPorts(ports []Port, src, cur, dst NodeID) []Port {
	return appendWestFirst(ports, r.t.Coord(cur), r.t.Coord(dst))
}

// appendWestFirst appends the west-first productive ports for cc toward cd.
func appendWestFirst(ports []Port, cc, cd Coord) []Port {
	if cc == cd {
		return ports
	}
	// Westward travel cannot be entered by turning, so while the
	// destination lies west the only legal move is west.
	if cd.Col < cc.Col {
		return append(ports, WestPort)
	}
	if cd.Col > cc.Col {
		ports = append(ports, EastPort)
	}
	if cd.Row > cc.Row {
		ports = append(ports, SouthPort)
	}
	if cd.Row < cc.Row {
		ports = append(ports, NorthPort)
	}
	return ports
}

// oddEvenRouting adapts the odd-even turn model (Chiu) to the Routing
// interface. On a torus it routes over the mesh sub-network, which keeps
// the turn-model deadlock proof intact (see NewRouting).
type oddEvenRouting struct{ t Topology }

func (r oddEvenRouting) Name() string       { return "oddeven" }
func (r oddEvenRouting) Topology() Topology { return r.t }
func (r oddEvenRouting) Adaptive() bool     { return true }
func (r oddEvenRouting) VCClasses() int     { return 1 }

func (r oddEvenRouting) VCClass(cur, dst NodeID, out Port) int { return 0 }

func (r oddEvenRouting) AppendPorts(ports []Port, src, cur, dst NodeID) []Port {
	return appendOddEven(ports, r.t.Coord(src), r.t.Coord(cur), r.t.Coord(dst))
}

// torusDOR is wrap-aware minimal dimension-order routing on the torus:
// per dimension the shorter way around the ring (ties break east/south),
// column before row. Ring cycles are broken by two dateline VC classes —
// see VCClass.
type torusDOR struct{ t Topology }

func (r torusDOR) Name() string       { return "xy" }
func (r torusDOR) Topology() Topology { return r.t }
func (r torusDOR) Adaptive() bool     { return false }
func (r torusDOR) VCClasses() int     { return 2 }

func (r torusDOR) AppendPorts(ports []Port, src, cur, dst NodeID) []Port {
	if cur == dst {
		return ports
	}
	cc, cd := r.t.Coord(cur), r.t.Coord(dst)
	if cc.Col != cd.Col {
		return append(ports, ringStep(cc.Col, cd.Col, r.t.Cols(), EastPort, WestPort))
	}
	return append(ports, ringStep(cc.Row, cd.Row, r.t.Rows(), SouthPort, NorthPort))
}

// ringStep picks the minimal direction from position a to b on a ring of
// the given size: fwd is the increasing direction (east/south) and wins
// ties, matching the deterministic tie-break the collect-path planning
// relies on.
func ringStep(a, b, size int, fwd, bwd Port) Port {
	d := mod(b-a, size)
	if d <= size-d {
		return fwd
	}
	return bwd
}

// VCClass implements the dateline scheme that makes torus dimension-order
// routing deadlock-free. Each ring has one dateline, placed on its
// wraparound link (between positions size-1 and 0). A hop's class is 0
// while the packet's remaining path in that direction still has the
// dateline ahead of it, and 1 from the dateline crossing onward (packets
// that never cross also ride class 1 — harmless, since class-1
// dependencies end strictly before re-entering the wraparound link).
// Within each class the directed channel dependency graph of the ring is
// acyclic, and dimension-order traversal rules out cross-dimension
// cycles; DESIGN.md §7 gives the full argument.
//
// The class is a pure function of the current position, destination and
// direction — no per-packet state — because minimal routing crosses a
// dateline at most once.
func (r torusDOR) VCClass(cur, dst NodeID, out Port) int {
	cc, cd := r.t.Coord(cur), r.t.Coord(dst)
	switch out {
	case EastPort:
		if cc.Col == r.t.Cols()-1 || cd.Col > cc.Col {
			return 1
		}
	case WestPort:
		if cc.Col == 0 || cd.Col < cc.Col {
			return 1
		}
	case SouthPort:
		if cc.Row == r.t.Rows()-1 || cd.Row > cc.Row {
			return 1
		}
	case NorthPort:
		if cc.Row == 0 || cd.Row < cc.Row {
			return 1
		}
	}
	return 0
}
