// Package topology models the interconnect fabrics the accelerator can be
// built on and the routing algorithms that steer packets across them. The
// Topology interface abstracts node naming, port geometry and hop-count
// geometry (Mesh and Torus implement it); the Routing interface abstracts
// per-hop output-port selection and the virtual-channel classes deadlock
// freedom requires (dimension-order, west-first and odd-even implement
// it). XY-tree route computation for multicast (scatter) traffic works on
// every fabric. DESIGN.md §7 documents the interfaces and how to extend
// them.
//
// Rows grow downward and columns grow rightward, matching Fig. 1 and
// Fig. 2 of the paper: inputs enter on the west edge, weights on the north
// edge, and (on the mesh) the global buffer sits past the east edge of
// every row.
package topology

import (
	"errors"
	"fmt"
)

// NodeID identifies a router/PE position in row-major order.
type NodeID int

// Coord is a (row, column) mesh position.
type Coord struct {
	Row int
	Col int
}

// String renders the coordinate as "(r,c)".
func (c Coord) String() string {
	return fmt.Sprintf("(%d,%d)", c.Row, c.Col)
}

// Port names one of a router's five connections. LocalPort attaches the PE
// (through its network interface); the four cardinal ports attach
// neighboring routers.
type Port uint8

// Router port identifiers. LocalPort is deliberately the zero value: a
// freshly computed route that was never filled in would deliver locally and
// trip integrity checks immediately rather than wander.
const (
	LocalPort Port = iota
	NorthPort
	EastPort
	SouthPort
	WestPort

	// NumPorts is the number of ports on a mesh router.
	NumPorts = 5
)

// String returns the conventional single-letter port name.
func (p Port) String() string {
	switch p {
	case LocalPort:
		return "L"
	case NorthPort:
		return "N"
	case EastPort:
		return "E"
	case SouthPort:
		return "S"
	case WestPort:
		return "W"
	default:
		return fmt.Sprintf("Port(%d)", uint8(p))
	}
}

// Opposite returns the port a flit arrives on at the neighbor after leaving
// through p. Opposite of LocalPort is LocalPort.
func (p Port) Opposite() Port {
	switch p {
	case NorthPort:
		return SouthPort
	case SouthPort:
		return NorthPort
	case EastPort:
		return WestPort
	case WestPort:
		return EastPort
	default:
		return LocalPort
	}
}

// ErrBadMeshSize reports a non-positive mesh dimension.
var ErrBadMeshSize = errors.New("topology: mesh dimensions must be positive")

// Mesh is an immutable Rows×Cols 2-D mesh description. All methods are safe
// for concurrent use.
type Mesh struct {
	rows int
	cols int
}

// NewMesh returns a Rows×Cols mesh.
func NewMesh(rows, cols int) (*Mesh, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("%w: %dx%d", ErrBadMeshSize, rows, cols)
	}
	return &Mesh{rows: rows, cols: cols}, nil
}

// MustMesh is NewMesh for statically known-good dimensions; it panics on
// error and is intended for tests and package-level defaults.
func MustMesh(rows, cols int) *Mesh {
	m, err := NewMesh(rows, cols)
	if err != nil {
		panic(err)
	}
	return m
}

// Name implements Topology.
func (m *Mesh) Name() string { return "mesh" }

// Rows returns the number of mesh rows.
func (m *Mesh) Rows() int { return m.rows }

// Cols returns the number of mesh columns.
func (m *Mesh) Cols() int { return m.cols }

// NumNodes returns Rows*Cols.
func (m *Mesh) NumNodes() int { return m.rows * m.cols }

// ID converts a coordinate to its row-major NodeID. The coordinate must be
// in bounds; use InBounds to validate untrusted input.
func (m *Mesh) ID(c Coord) NodeID {
	return NodeID(c.Row*m.cols + c.Col)
}

// Coord converts a NodeID back to its mesh coordinate.
func (m *Mesh) Coord(id NodeID) Coord {
	return Coord{Row: int(id) / m.cols, Col: int(id) % m.cols}
}

// InBounds reports whether c lies on the mesh.
func (m *Mesh) InBounds(c Coord) bool {
	return c.Row >= 0 && c.Row < m.rows && c.Col >= 0 && c.Col < m.cols
}

// ValidNode reports whether id names a node on the mesh.
func (m *Mesh) ValidNode(id NodeID) bool {
	return id >= 0 && int(id) < m.NumNodes()
}

// Neighbor returns the node adjacent to id through port p, and false when
// the port faces off the mesh edge (or is LocalPort).
func (m *Mesh) Neighbor(id NodeID, p Port) (NodeID, bool) {
	c := m.Coord(id)
	switch p {
	case NorthPort:
		c.Row--
	case SouthPort:
		c.Row++
	case EastPort:
		c.Col++
	case WestPort:
		c.Col--
	default:
		return 0, false
	}
	if !m.InBounds(c) {
		return 0, false
	}
	return m.ID(c), true
}

// Hops returns the Manhattan distance between two nodes, which is exactly
// the hop count of the XY route between them.
func (m *Mesh) Hops(a, b NodeID) int {
	ca, cb := m.Coord(a), m.Coord(b)
	return abs(ca.Row-cb.Row) + abs(ca.Col-cb.Col)
}

// XYRoute returns the output port a packet at cur must take toward dst
// under dimension-order (X-first) routing: correct the column first, then
// the row. When cur == dst it returns LocalPort.
//
// XY routing on a mesh is deadlock-free because the port-to-port turn
// graph it induces is acyclic.
func (m *Mesh) XYRoute(cur, dst NodeID) Port {
	cc, cd := m.Coord(cur), m.Coord(dst)
	if cc == cd {
		return LocalPort
	}
	return xyStep(cc, cd)
}

// RoutePath returns the full sequence of nodes an XY-routed packet visits
// from src to dst, inclusive of both endpoints.
func (m *Mesh) RoutePath(src, dst NodeID) []NodeID {
	path := make([]NodeID, 0, m.Hops(src, dst)+1)
	cur := src
	path = append(path, cur)
	for cur != dst {
		p := m.XYRoute(cur, dst)
		next, ok := m.Neighbor(cur, p)
		if !ok {
			// Unreachable on a well-formed mesh: XY always steps toward
			// dst, which is in bounds.
			break
		}
		cur = next
		path = append(path, cur)
	}
	return path
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
