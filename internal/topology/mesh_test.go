package topology

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMeshRejectsBadSizes(t *testing.T) {
	tests := []struct {
		rows, cols int
	}{
		{0, 4}, {4, 0}, {-1, 4}, {4, -1}, {0, 0},
	}
	for _, tt := range tests {
		if _, err := NewMesh(tt.rows, tt.cols); !errors.Is(err, ErrBadMeshSize) {
			t.Errorf("NewMesh(%d,%d) err = %v, want ErrBadMeshSize", tt.rows, tt.cols, err)
		}
	}
}

func TestMeshIDCoordRoundTrip(t *testing.T) {
	m := MustMesh(6, 6)
	for id := NodeID(0); int(id) < m.NumNodes(); id++ {
		if got := m.ID(m.Coord(id)); got != id {
			t.Errorf("ID(Coord(%d)) = %d", id, got)
		}
	}
	if got := m.ID(Coord{Row: 2, Col: 3}); got != 15 {
		t.Errorf("ID((2,3)) = %d, want 15", got)
	}
}

func TestMeshNeighbor(t *testing.T) {
	m := MustMesh(3, 3)
	tests := []struct {
		id     NodeID
		port   Port
		want   NodeID
		wantOK bool
	}{
		{4, NorthPort, 1, true},
		{4, SouthPort, 7, true},
		{4, EastPort, 5, true},
		{4, WestPort, 3, true},
		{0, NorthPort, 0, false},
		{0, WestPort, 0, false},
		{8, SouthPort, 0, false},
		{8, EastPort, 0, false},
		{4, LocalPort, 0, false},
	}
	for _, tt := range tests {
		got, ok := m.Neighbor(tt.id, tt.port)
		if ok != tt.wantOK || (ok && got != tt.want) {
			t.Errorf("Neighbor(%d,%s) = (%d,%v), want (%d,%v)",
				tt.id, tt.port, got, ok, tt.want, tt.wantOK)
		}
	}
}

func TestPortOpposite(t *testing.T) {
	tests := []struct{ p, want Port }{
		{NorthPort, SouthPort},
		{SouthPort, NorthPort},
		{EastPort, WestPort},
		{WestPort, EastPort},
		{LocalPort, LocalPort},
	}
	for _, tt := range tests {
		if got := tt.p.Opposite(); got != tt.want {
			t.Errorf("%s.Opposite() = %s, want %s", tt.p, got, tt.want)
		}
	}
}

func TestXYRouteFirstCorrectsColumn(t *testing.T) {
	m := MustMesh(4, 4)
	// From (0,0) to (3,3): must go east until column matches, then south.
	if got := m.XYRoute(m.ID(Coord{0, 0}), m.ID(Coord{3, 3})); got != EastPort {
		t.Errorf("first hop = %s, want E", got)
	}
	if got := m.XYRoute(m.ID(Coord{0, 3}), m.ID(Coord{3, 3})); got != SouthPort {
		t.Errorf("aligned-column hop = %s, want S", got)
	}
	if got := m.XYRoute(5, 5); got != LocalPort {
		t.Errorf("self route = %s, want L", got)
	}
}

// Property: an XY route always terminates at the destination in exactly
// Manhattan-distance hops, and corrects X before Y.
func TestXYRouteReachesDestination(t *testing.T) {
	m := MustMesh(8, 8)
	f := func(a, b uint8) bool {
		src := NodeID(int(a) % m.NumNodes())
		dst := NodeID(int(b) % m.NumNodes())
		path := m.RoutePath(src, dst)
		if path[0] != src || path[len(path)-1] != dst {
			return false
		}
		if len(path)-1 != m.Hops(src, dst) {
			return false
		}
		// X-first: once a vertical move happens, no horizontal move may follow.
		vertical := false
		for i := 1; i < len(path); i++ {
			pc, cc := m.Coord(path[i-1]), m.Coord(path[i])
			if pc.Row != cc.Row {
				vertical = true
			} else if vertical && pc.Col != cc.Col {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRoutePathExample(t *testing.T) {
	// The Fig. 1(b) scenario: row 2 of a 6x6 mesh, node (2,0) to (2,5) is 5 hops.
	m := MustMesh(6, 6)
	src := m.ID(Coord{2, 0})
	dst := m.ID(Coord{2, 5})
	if got := m.Hops(src, dst); got != 5 {
		t.Errorf("Hops((2,0),(2,5)) = %d, want 5", got)
	}
	// Fig. 1(a): repetitive unicast from all 6 nodes of the row needs
	// 5+4+3+2+1+0 = 15 hops.
	total := 0
	for c := 0; c < 6; c++ {
		total += m.Hops(m.ID(Coord{2, c}), dst)
	}
	if total != 15 {
		t.Errorf("total unicast hops = %d, want 15", total)
	}
}

func TestHopsSymmetric(t *testing.T) {
	m := MustMesh(5, 7)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a := NodeID(rng.Intn(m.NumNodes()))
		b := NodeID(rng.Intn(m.NumNodes()))
		if m.Hops(a, b) != m.Hops(b, a) {
			t.Fatalf("Hops(%d,%d) != Hops(%d,%d)", a, b, b, a)
		}
	}
}

func TestNonSquareMesh(t *testing.T) {
	m := MustMesh(2, 5)
	if m.NumNodes() != 10 {
		t.Fatalf("NumNodes = %d, want 10", m.NumNodes())
	}
	if got := m.Coord(7); got != (Coord{Row: 1, Col: 2}) {
		t.Errorf("Coord(7) = %v, want (1,2)", got)
	}
	if _, ok := m.Neighbor(m.ID(Coord{0, 4}), EastPort); ok {
		t.Error("east edge should have no east neighbor")
	}
}

func TestValidNode(t *testing.T) {
	m := MustMesh(3, 3)
	if m.ValidNode(-1) || m.ValidNode(9) {
		t.Error("out-of-range ids reported valid")
	}
	if !m.ValidNode(0) || !m.ValidNode(8) {
		t.Error("in-range ids reported invalid")
	}
}
