package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWestFirstPortsSelf(t *testing.T) {
	m := MustMesh(4, 4)
	if got := m.WestFirstPorts(5, 5); got != nil {
		t.Errorf("self route = %v, want nil", got)
	}
}

func TestWestFirstWestIsExclusive(t *testing.T) {
	m := MustMesh(4, 4)
	// Destination west and south: only west is legal (turning into west
	// later would be a prohibited turn).
	src := m.ID(Coord{Row: 0, Col: 3})
	dst := m.ID(Coord{Row: 3, Col: 0})
	got := m.WestFirstPorts(src, dst)
	if len(got) != 1 || got[0] != WestPort {
		t.Errorf("ports = %v, want [W]", got)
	}
}

func TestWestFirstAdaptiveEastQuadrant(t *testing.T) {
	m := MustMesh(4, 4)
	// Destination east and south: both productive ports are legal.
	got := m.WestFirstPorts(m.ID(Coord{0, 0}), m.ID(Coord{3, 3}))
	if len(got) != 2 {
		t.Fatalf("ports = %v, want 2 alternatives", got)
	}
	seen := map[Port]bool{}
	for _, p := range got {
		seen[p] = true
	}
	if !seen[EastPort] || !seen[SouthPort] {
		t.Errorf("ports = %v, want {E,S}", got)
	}
}

// Property: west-first ports are always productive (each strictly reduces
// Manhattan distance), never turn into west from a non-west heading, and
// any greedy walk over them reaches the destination in exactly
// Manhattan-distance hops.
func TestWestFirstDeliversMinimally(t *testing.T) {
	m := MustMesh(8, 8)
	f := func(a, b uint8, seed int64) bool {
		src := NodeID(int(a) % m.NumNodes())
		dst := NodeID(int(b) % m.NumNodes())
		rng := rand.New(rand.NewSource(seed))
		cur := src
		steps := 0
		for cur != dst {
			ports := m.WestFirstPorts(cur, dst)
			if len(ports) == 0 {
				return false
			}
			p := ports[rng.Intn(len(ports))]
			next, ok := m.Neighbor(cur, p)
			if !ok {
				return false
			}
			if m.Hops(next, dst) != m.Hops(cur, dst)-1 {
				return false // non-productive hop
			}
			cur = next
			steps++
			if steps > m.Hops(src, dst) {
				return false
			}
		}
		return steps == m.Hops(src, dst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: west moves only happen while the destination is strictly west,
// i.e. the turn model holds along any walk.
func TestWestFirstTurnModel(t *testing.T) {
	m := MustMesh(8, 8)
	f := func(a, b uint8) bool {
		src := NodeID(int(a) % m.NumNodes())
		dst := NodeID(int(b) % m.NumNodes())
		cur := src
		for cur != dst {
			ports := m.WestFirstPorts(cur, dst)
			if len(ports) == 0 {
				return false
			}
			hasWest := false
			for _, p := range ports {
				if p == WestPort {
					hasWest = true
				}
			}
			if hasWest && len(ports) != 1 {
				return false // west must be exclusive when offered
			}
			next, _ := m.Neighbor(cur, ports[0])
			cur = next
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
