package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDestSetBasics(t *testing.T) {
	s := NewDestSet(128)
	if !s.Empty() || s.Len() != 0 {
		t.Fatal("new set not empty")
	}
	s.Add(0)
	s.Add(63)
	s.Add(64)
	s.Add(127)
	if s.Len() != 4 {
		t.Errorf("Len = %d, want 4", s.Len())
	}
	for _, id := range []NodeID{0, 63, 64, 127} {
		if !s.Contains(id) {
			t.Errorf("Contains(%d) = false", id)
		}
	}
	s.Remove(63)
	if s.Contains(63) || s.Len() != 3 {
		t.Error("Remove(63) did not remove")
	}
	// Duplicate add is idempotent.
	s.Add(0)
	if s.Len() != 3 {
		t.Errorf("Len after duplicate add = %d, want 3", s.Len())
	}
}

func TestDestSetOutOfRangeIgnored(t *testing.T) {
	s := NewDestSet(10)
	s.Add(-1)
	s.Add(1000)
	if !s.Empty() {
		t.Error("out-of-range adds changed the set")
	}
	if s.Contains(-1) || s.Contains(1000) {
		t.Error("out-of-range Contains returned true")
	}
	s.Remove(-1) // must not panic
	s.Remove(1000)
}

func TestDestSetNodesSorted(t *testing.T) {
	s := DestSetOf(64, 9, 3, 41, 0)
	got := s.Nodes()
	want := []NodeID{0, 3, 9, 41}
	if len(got) != len(want) {
		t.Fatalf("Nodes() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Nodes() = %v, want %v", got, want)
		}
	}
}

func TestDestSetClone(t *testing.T) {
	s := DestSetOf(64, 5)
	c := s.Clone()
	c.Add(6)
	if s.Contains(6) {
		t.Error("Clone shares storage with original")
	}
}

func TestDestSetString(t *testing.T) {
	if got := DestSetOf(64, 2, 10).String(); got != "{2,10}" {
		t.Errorf("String() = %q, want {2,10}", got)
	}
	if got := NewDestSet(8).String(); got != "{}" {
		t.Errorf("empty String() = %q, want {}", got)
	}
}

// Property: every destination in a multicast set appears in exactly one
// branch (or locally), so the XY multicast forms a tree with no duplicate
// delivery and no loss.
func TestMulticastRoutePartitions(t *testing.T) {
	m := MustMesh(8, 8)
	f := func(curRaw uint8, seed int64) bool {
		cur := NodeID(int(curRaw) % m.NumNodes())
		rng := rand.New(rand.NewSource(seed))
		dsts := NewDestSet(m.NumNodes())
		for i := 0; i < 10; i++ {
			dsts.Add(NodeID(rng.Intn(m.NumNodes())))
		}
		branches, local := m.MulticastRoute(cur, dsts)

		seen := NewDestSet(m.NumNodes())
		count := 0
		for _, br := range branches {
			if br.Out == LocalPort {
				return false // local deliveries must use the flag, not a branch
			}
			for _, d := range br.Dsts.Nodes() {
				if seen.Contains(d) {
					return false // duplicate across branches
				}
				seen.Add(d)
				count++
				// Branch port must match this destination's XY route.
				if m.XYRoute(cur, d) != br.Out {
					return false
				}
			}
		}
		if local {
			if !dsts.Contains(cur) {
				return false
			}
			count++
		}
		return count == dsts.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: following the multicast tree recursively delivers to every
// destination exactly once.
func TestMulticastTreeDeliversAll(t *testing.T) {
	m := MustMesh(6, 6)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		src := NodeID(rng.Intn(m.NumNodes()))
		dsts := NewDestSet(m.NumNodes())
		for i := 0; i < 1+rng.Intn(12); i++ {
			dsts.Add(NodeID(rng.Intn(m.NumNodes())))
		}
		delivered := make(map[NodeID]int)
		linkUses := 0

		var walk func(cur NodeID, set *DestSet)
		walk = func(cur NodeID, set *DestSet) {
			branches, local := m.MulticastRoute(cur, set)
			if local {
				delivered[cur]++
			}
			for _, br := range branches {
				next, ok := m.Neighbor(cur, br.Out)
				if !ok {
					t.Fatalf("branch through edge at node %d port %s", cur, br.Out)
				}
				linkUses++
				walk(next, br.Dsts)
			}
		}
		walk(src, dsts)

		for _, d := range dsts.Nodes() {
			if delivered[d] != 1 {
				t.Fatalf("dst %d delivered %d times", d, delivered[d])
			}
		}
		if len(delivered) != dsts.Len() {
			t.Fatalf("delivered to %d nodes, want %d", len(delivered), dsts.Len())
		}
		// Tree property: link uses can't exceed sum of individual route hops.
		sumHops := 0
		for _, d := range dsts.Nodes() {
			sumHops += m.Hops(src, d)
		}
		if linkUses > sumHops {
			t.Fatalf("tree used %d links, unicast union would use %d", linkUses, sumHops)
		}
	}
}

func TestDestSetBits(t *testing.T) {
	if got := NewDestSet(64).Bits(); got != 64 {
		t.Errorf("Bits(64 nodes) = %d, want 64", got)
	}
	if got := NewDestSet(65).Bits(); got != 128 {
		t.Errorf("Bits(65 nodes) = %d, want 128", got)
	}
}
