package topology

import (
	"errors"
	"testing"
)

func TestNewTorusRejectsBadSizes(t *testing.T) {
	for _, tt := range []struct{ rows, cols int }{{0, 4}, {4, 0}, {-1, 4}, {4, -1}} {
		if _, err := NewTorus(tt.rows, tt.cols); !errors.Is(err, ErrBadMeshSize) {
			t.Errorf("NewTorus(%d,%d) err = %v, want ErrBadMeshSize", tt.rows, tt.cols, err)
		}
	}
}

func TestTorusNeighborWrapsEveryEdge(t *testing.T) {
	tor := MustTorus(4, 6)
	// Interior moves match the mesh.
	mid := tor.ID(Coord{Row: 1, Col: 2})
	if nb, ok := tor.Neighbor(mid, EastPort); !ok || tor.Coord(nb) != (Coord{Row: 1, Col: 3}) {
		t.Errorf("interior east neighbor = %v,%v", nb, ok)
	}
	// Edge moves wrap around.
	cases := []struct {
		at   Coord
		p    Port
		want Coord
	}{
		{Coord{Row: 0, Col: 0}, NorthPort, Coord{Row: 3, Col: 0}},
		{Coord{Row: 3, Col: 2}, SouthPort, Coord{Row: 0, Col: 2}},
		{Coord{Row: 1, Col: 5}, EastPort, Coord{Row: 1, Col: 0}},
		{Coord{Row: 2, Col: 0}, WestPort, Coord{Row: 2, Col: 5}},
	}
	for _, c := range cases {
		nb, ok := tor.Neighbor(tor.ID(c.at), c.p)
		if !ok || tor.Coord(nb) != c.want {
			t.Errorf("Neighbor(%v, %s) = %v,%v, want %v", c.at, c.p, tor.Coord(nb), ok, c.want)
		}
	}
	if _, ok := tor.Neighbor(mid, LocalPort); ok {
		t.Error("LocalPort must not have a neighbor")
	}
}

func TestTorusHopsUsesShorterWay(t *testing.T) {
	tor := MustTorus(8, 8)
	a := tor.ID(Coord{Row: 0, Col: 0})
	b := tor.ID(Coord{Row: 0, Col: 7})
	if got := tor.Hops(a, b); got != 1 {
		t.Errorf("wraparound hops = %d, want 1", got)
	}
	c := tor.ID(Coord{Row: 7, Col: 7})
	if got := tor.Hops(a, c); got != 2 {
		t.Errorf("corner-to-corner hops = %d, want 2", got)
	}
	d := tor.ID(Coord{Row: 4, Col: 4})
	if got := tor.Hops(a, d); got != 8 {
		t.Errorf("antipode hops = %d, want 8", got)
	}
	// Never worse than the mesh distance.
	m := MustMesh(8, 8)
	for x := 0; x < 64; x++ {
		for y := 0; y < 64; y++ {
			if tor.Hops(NodeID(x), NodeID(y)) > m.Hops(NodeID(x), NodeID(y)) {
				t.Fatalf("torus hops %d->%d exceed mesh hops", x, y)
			}
		}
	}
}

// walkRoute follows a deterministic routing function from src to dst and
// returns the hop count, failing the test on non-minimal steps or cycles.
func walkRoute(t *testing.T, r Routing, src, dst NodeID) int {
	t.Helper()
	topo := r.Topology()
	cur := src
	hops := 0
	var buf [4]Port
	for cur != dst {
		ports := r.AppendPorts(buf[:0], src, cur, dst)
		if len(ports) == 0 {
			t.Fatalf("%s: empty port set at %v toward %v", r.Name(), topo.Coord(cur), topo.Coord(dst))
		}
		before := topo.Hops(cur, dst)
		next, ok := topo.Neighbor(cur, ports[0])
		if !ok {
			t.Fatalf("%s: port %s leads off the fabric at %v", r.Name(), ports[0], topo.Coord(cur))
		}
		if topo.Hops(next, dst) >= before {
			t.Fatalf("%s: non-minimal step %v->%v toward %v", r.Name(), topo.Coord(cur), topo.Coord(next), topo.Coord(dst))
		}
		cur = next
		if hops++; hops > topo.NumNodes() {
			t.Fatalf("%s: route %v->%v does not converge", r.Name(), src, dst)
		}
	}
	return hops
}

func TestTorusDORIsMinimalEverywhere(t *testing.T) {
	tor := MustTorus(5, 6)
	r, err := NewRouting("xy", tor)
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < tor.NumNodes(); src++ {
		for dst := 0; dst < tor.NumNodes(); dst++ {
			got := walkRoute(t, r, NodeID(src), NodeID(dst))
			if want := tor.Hops(NodeID(src), NodeID(dst)); got != want {
				t.Fatalf("route %d->%d took %d hops, want %d", src, dst, got, want)
			}
		}
	}
}

// TestTorusDatelineClassMonotonic checks the deadlock-avoidance invariant
// behind the dateline scheme: along any DOR route, within one dimension
// the VC class never drops from 1 back to 0, and class 1 is entered at or
// before the wraparound link. A class that could oscillate would re-create
// the ring cycle the dateline exists to break.
func TestTorusDatelineClassMonotonic(t *testing.T) {
	tor := MustTorus(6, 7)
	r, err := NewRouting("xy", tor)
	if err != nil {
		t.Fatal(err)
	}
	if r.VCClasses() != 2 {
		t.Fatalf("torus DOR VCClasses = %d, want 2", r.VCClasses())
	}
	var buf [4]Port
	for src := 0; src < tor.NumNodes(); src++ {
		for dst := 0; dst < tor.NumNodes(); dst++ {
			cur := NodeID(src)
			lastClass := -1
			lastDim := -1
			for cur != NodeID(dst) {
				out := r.AppendPorts(buf[:0], NodeID(src), cur, NodeID(dst))[0]
				class := r.VCClass(cur, NodeID(dst), out)
				if class < 0 || class >= r.VCClasses() {
					t.Fatalf("class %d out of range", class)
				}
				dim := 0
				if out == NorthPort || out == SouthPort {
					dim = 1
				}
				if dim == lastDim && class < lastClass {
					t.Fatalf("route %d->%d: class dropped %d->%d within dimension %d at %v",
						src, dst, lastClass, class, dim, tor.Coord(cur))
				}
				// Wraparound links must ride the high class: the dateline
				// crossing itself is the class switch.
				cc := tor.Coord(cur)
				wrap := (out == EastPort && cc.Col == tor.Cols()-1) ||
					(out == WestPort && cc.Col == 0) ||
					(out == SouthPort && cc.Row == tor.Rows()-1) ||
					(out == NorthPort && cc.Row == 0)
				if wrap && class != 1 {
					t.Fatalf("route %d->%d: wraparound hop at %v in class %d, want 1", src, dst, cc, class)
				}
				lastClass, lastDim = class, dim
				cur, _ = tor.Neighbor(cur, out)
			}
		}
	}
}

func TestMeshRoutingsSingleClass(t *testing.T) {
	m := MustMesh(4, 4)
	for _, name := range RoutingNames() {
		r, err := NewRouting(name, m)
		if err != nil {
			t.Fatal(err)
		}
		if r.VCClasses() != 1 {
			t.Errorf("%s on mesh: VCClasses = %d, want 1", name, r.VCClasses())
		}
		if got := r.VCClass(0, 5, EastPort); got != 0 {
			t.Errorf("%s on mesh: VCClass = %d, want 0", name, got)
		}
	}
}

func TestNewRoutingRejectsUnknown(t *testing.T) {
	if _, err := NewRouting("zigzag", MustMesh(2, 2)); err == nil {
		t.Error("unknown routing accepted")
	}
	if _, err := NewRouting("xy", nil); err == nil {
		t.Error("nil topology accepted")
	}
}

func TestNewTopologyByName(t *testing.T) {
	for _, name := range TopologyNames() {
		topo, err := New(name, 3, 4)
		if err != nil {
			t.Fatal(err)
		}
		if topo.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, topo.Name())
		}
		if topo.NumNodes() != 12 {
			t.Errorf("New(%q).NumNodes() = %d", name, topo.NumNodes())
		}
	}
	if topo, err := New("", 2, 2); err != nil || topo.Name() != "mesh" {
		t.Errorf("empty name: %v, %v", topo, err)
	}
	if _, err := New("hypercube", 2, 2); err == nil {
		t.Error("unknown topology accepted")
	}
}

// TestAdaptiveRoutingsAvoidWrapLinks pins the safe-sub-network rule: on a
// torus the turn-model routings never return a port whose hop would cross
// a wraparound link, which is what keeps their mesh deadlock proofs valid.
func TestAdaptiveRoutingsAvoidWrapLinks(t *testing.T) {
	tor := MustTorus(4, 5)
	for _, name := range []string{"westfirst", "oddeven"} {
		r, err := NewRouting(name, tor)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Adaptive() {
			t.Errorf("%s: Adaptive() = false", name)
		}
		var buf [4]Port
		for src := 0; src < tor.NumNodes(); src++ {
			for dst := 0; dst < tor.NumNodes(); dst++ {
				for cur := 0; cur < tor.NumNodes(); cur++ {
					cc := tor.Coord(NodeID(cur))
					for _, p := range r.AppendPorts(buf[:0], NodeID(src), NodeID(cur), NodeID(dst)) {
						wrap := (p == EastPort && cc.Col == tor.Cols()-1) ||
							(p == WestPort && cc.Col == 0) ||
							(p == SouthPort && cc.Row == tor.Rows()-1) ||
							(p == NorthPort && cc.Row == 0)
						if wrap {
							t.Fatalf("%s: wrap hop %v via %s toward %v", name, cc, p, tor.Coord(NodeID(dst)))
						}
					}
				}
			}
		}
	}
}
