package topology

// WestFirstPorts returns the productive output ports a packet at cur may
// take toward dst under the west-first turn model (Glass & Ni): any turn
// into the west direction is forbidden, so westward correction must happen
// first, after which the packet may route adaptively among the remaining
// productive directions. The result is empty only when cur == dst.
//
// West-first routing is deadlock-free on a mesh: prohibiting the two
// turns into west breaks every cycle in the turn graph. It is also
// minimal and livelock-free: every returned port strictly reduces the
// Manhattan distance to dst.
func (m *Mesh) WestFirstPorts(cur, dst NodeID) []Port {
	cc, cd := m.Coord(cur), m.Coord(dst)
	if cc == cd {
		return nil
	}
	// Westward travel cannot be entered by turning, so while the
	// destination lies west the only legal move is west.
	if cd.Col < cc.Col {
		return []Port{WestPort}
	}
	var ports []Port
	if cd.Col > cc.Col {
		ports = append(ports, EastPort)
	}
	if cd.Row > cc.Row {
		ports = append(ports, SouthPort)
	}
	if cd.Row < cc.Row {
		ports = append(ports, NorthPort)
	}
	return ports
}
