package topology

// WestFirstPorts returns the productive output ports a packet at cur may
// take toward dst under the west-first turn model (Glass & Ni): any turn
// into the west direction is forbidden, so westward correction must happen
// first, after which the packet may route adaptively among the remaining
// productive directions. The result is empty only when cur == dst.
//
// West-first routing is deadlock-free on a mesh: prohibiting the two
// turns into west breaks every cycle in the turn graph. It is also
// minimal and livelock-free: every returned port strictly reduces the
// Manhattan distance to dst.
func (m *Mesh) WestFirstPorts(cur, dst NodeID) []Port {
	return appendWestFirst(nil, m.Coord(cur), m.Coord(dst))
}
