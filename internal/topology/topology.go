package topology

import "fmt"

// Topology abstracts the interconnect fabric's shape: node naming on a
// rows×cols coordinate grid, the link structure (which ports lead where),
// and hop-count geometry. Mesh and Torus implement it; the network, router,
// traffic and analytic layers consume only this interface, so new fabrics
// plug in without touching them (see DESIGN.md §7 for the extension guide).
//
// All implementations must be immutable after construction and safe for
// concurrent use.
type Topology interface {
	// Name identifies the topology in configs and reports ("mesh",
	// "torus").
	Name() string
	// Rows and Cols give the coordinate grid dimensions.
	Rows() int
	Cols() int
	// NumNodes returns Rows*Cols.
	NumNodes() int
	// ID converts an in-bounds coordinate to its row-major NodeID.
	ID(c Coord) NodeID
	// Coord converts a NodeID back to its grid coordinate.
	Coord(id NodeID) Coord
	// InBounds reports whether c lies on the grid.
	InBounds(c Coord) bool
	// ValidNode reports whether id names a node.
	ValidNode(id NodeID) bool
	// Neighbor returns the node adjacent to id through port p, and false
	// when no link exists there (mesh edge, or LocalPort). On a torus every
	// cardinal port is connected: edge ports wrap around.
	Neighbor(id NodeID, p Port) (NodeID, bool)
	// Hops returns the minimal hop count between two nodes.
	Hops(a, b NodeID) int
}

// TopologyNames lists the built-in topology constructors accepted by New.
func TopologyNames() []string { return []string{"mesh", "torus"} }

// New constructs a built-in topology by name. The empty name selects the
// mesh, the paper's fabric.
func New(name string, rows, cols int) (Topology, error) {
	switch name {
	case "", "mesh":
		return NewMesh(rows, cols)
	case "torus":
		return NewTorus(rows, cols)
	default:
		return nil, fmt.Errorf("topology: unknown topology %q (mesh, torus)", name)
	}
}
