package topology_test

import (
	"fmt"

	"gathernoc/internal/topology"
)

// XY dimension-order routing corrects the column before the row.
func ExampleMesh_XYRoute() {
	m := topology.MustMesh(4, 4)
	src := m.ID(topology.Coord{Row: 0, Col: 0})
	dst := m.ID(topology.Coord{Row: 2, Col: 3})
	for _, n := range m.RoutePath(src, dst) {
		fmt.Print(m.Coord(n), " ")
	}
	fmt.Println()
	// Output:
	// (0,0) (0,1) (0,2) (0,3) (1,3) (2,3)
}

// A torus wraps every edge, so dimension-order routing takes the shorter
// way around each ring and the worst-case hop count halves relative to
// the mesh.
func ExampleTorus() {
	tor := topology.MustTorus(8, 8)
	m := topology.MustMesh(8, 8)
	a := tor.ID(topology.Coord{Row: 0, Col: 0})
	b := tor.ID(topology.Coord{Row: 7, Col: 7})
	fmt.Println("mesh hops: ", m.Hops(a, b))
	fmt.Println("torus hops:", tor.Hops(a, b))
	// Output:
	// mesh hops:  14
	// torus hops: 2
}

// NewRouting builds the configured algorithm for any topology; on the
// torus, dimension-order routing exploits the wraparound links and uses
// two dateline VC classes for deadlock freedom.
func ExampleNewRouting() {
	tor := topology.MustTorus(4, 4)
	r, _ := topology.NewRouting("xy", tor)
	src := tor.ID(topology.Coord{Row: 0, Col: 0})
	dst := tor.ID(topology.Coord{Row: 0, Col: 3})
	ports := r.AppendPorts(nil, src, src, dst)
	fmt.Printf("%s on %s: port %s, class %d of %d\n",
		r.Name(), r.Topology().Name(), ports[0],
		r.VCClass(src, dst, ports[0]), r.VCClasses())
	// Output:
	// xy on torus: port W, class 1 of 2
}

// A DestSet is the bit-string multicast destination encoding carried in a
// header flit.
func ExampleDestSet() {
	s := topology.NewDestSet(16)
	s.Add(3)
	s.Add(12)
	s.Add(3) // idempotent
	fmt.Println(s, "len", s.Len(), "contains 12:", s.Contains(12))
	// Output:
	// {3,12} len 2 contains 12: true
}

// An XY multicast partitions its destination set into tree branches, each
// destination reached exactly once.
func ExampleMesh_MulticastRoute() {
	m := topology.MustMesh(4, 4)
	dsts := topology.DestSetOf(m.NumNodes(),
		m.ID(topology.Coord{Row: 0, Col: 3}),
		m.ID(topology.Coord{Row: 2, Col: 0}),
		m.ID(topology.Coord{Row: 3, Col: 1}),
	)
	branches, local := m.MulticastRoute(m.ID(topology.Coord{Row: 1, Col: 1}), dsts)
	fmt.Println("deliver locally:", local)
	for _, br := range branches {
		fmt.Printf("port %s -> %s\n", br.Out, br.Dsts)
	}
	// Output:
	// deliver locally: false
	// port E -> {3}
	// port S -> {13}
	// port W -> {8}
}
