package topology_test

import (
	"fmt"

	"gathernoc/internal/topology"
)

// XY dimension-order routing corrects the column before the row.
func ExampleMesh_XYRoute() {
	m := topology.MustMesh(4, 4)
	src := m.ID(topology.Coord{Row: 0, Col: 0})
	dst := m.ID(topology.Coord{Row: 2, Col: 3})
	for _, n := range m.RoutePath(src, dst) {
		fmt.Print(m.Coord(n), " ")
	}
	fmt.Println()
	// Output:
	// (0,0) (0,1) (0,2) (0,3) (1,3) (2,3)
}

// An XY multicast partitions its destination set into tree branches, each
// destination reached exactly once.
func ExampleMesh_MulticastRoute() {
	m := topology.MustMesh(4, 4)
	dsts := topology.DestSetOf(m.NumNodes(),
		m.ID(topology.Coord{Row: 0, Col: 3}),
		m.ID(topology.Coord{Row: 2, Col: 0}),
		m.ID(topology.Coord{Row: 3, Col: 1}),
	)
	branches, local := m.MulticastRoute(m.ID(topology.Coord{Row: 1, Col: 1}), dsts)
	fmt.Println("deliver locally:", local)
	for _, br := range branches {
		fmt.Printf("port %s -> %s\n", br.Out, br.Dsts)
	}
	// Output:
	// deliver locally: false
	// port E -> {3}
	// port S -> {13}
	// port W -> {8}
}
