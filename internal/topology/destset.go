package topology

import (
	"math/bits"
	"strings"
)

// DestSet is the bit-string multicast destination representation carried in
// the MDst field of a header flit (Fig. 3a). Bit i set means NodeID i is a
// destination. The zero value is an empty set.
type DestSet struct {
	words []uint64
}

// NewDestSet returns an empty set sized for a mesh of n nodes.
func NewDestSet(n int) *DestSet {
	return &DestSet{words: make([]uint64, (n+63)/64)}
}

// DestSetOf returns a set containing exactly the given nodes, sized for n
// total nodes.
func DestSetOf(n int, nodes ...NodeID) *DestSet {
	s := NewDestSet(n)
	for _, id := range nodes {
		s.Add(id)
	}
	return s
}

// Clone returns an independent copy of the set.
func (s *DestSet) Clone() *DestSet {
	c := &DestSet{words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Add inserts id. Out-of-range ids are ignored.
func (s *DestSet) Add(id NodeID) {
	w := int(id) / 64
	if id < 0 || w >= len(s.words) {
		return
	}
	s.words[w] |= 1 << (uint(id) % 64)
}

// Remove deletes id if present.
func (s *DestSet) Remove(id NodeID) {
	w := int(id) / 64
	if id < 0 || w >= len(s.words) {
		return
	}
	s.words[w] &^= 1 << (uint(id) % 64)
}

// Contains reports whether id is in the set.
func (s *DestSet) Contains(id NodeID) bool {
	w := int(id) / 64
	if id < 0 || w >= len(s.words) {
		return false
	}
	return s.words[w]&(1<<(uint(id)%64)) != 0
}

// Len returns the number of destinations in the set.
func (s *DestSet) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no destinations.
func (s *DestSet) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Nodes returns the member NodeIDs in ascending order.
func (s *DestSet) Nodes() []NodeID {
	out := make([]NodeID, 0, s.Len())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, NodeID(wi*64+b))
			w &^= 1 << uint(b)
		}
	}
	return out
}

// Bits returns the number of bits needed to encode the set on the wire,
// i.e. the mesh node count rounded to the allocated words. It is used by
// the flit format budget accounting.
func (s *DestSet) Bits() int {
	return len(s.words) * 64
}

// String renders the member list, e.g. "{1,5,9}".
func (s *DestSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, id := range s.Nodes() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmtInt(&b, int(id))
	}
	b.WriteByte('}')
	return b.String()
}

func fmtInt(b *strings.Builder, v int) {
	if v < 0 {
		b.WriteByte('-')
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	b.Write(buf[i:])
}

// MulticastBranch describes one fork of an XY multicast tree at a router:
// the subset of destinations that continue through Out.
type MulticastBranch struct {
	Out  Port
	Dsts *DestSet
}

// MulticastRoute partitions a destination set at node cur into XY-routed
// branches. Destinations equal to cur are reported via deliverLocal. Each
// destination appears in exactly one branch, so repeated application forms
// a tree: no link ever carries the same multicast packet twice
// (the redundant-traffic property multicast exists to provide, Sec. II).
func (m *Mesh) MulticastRoute(cur NodeID, dsts *DestSet) (branches []MulticastBranch, deliverLocal bool) {
	return MulticastRoute(m, cur, dsts)
}

// MulticastRoute partitions a destination set at node cur into XY-tree
// branches on any topology's coordinate grid. The tree always uses the
// mesh sub-network steps (column first, then row) — on a torus the
// wraparound links stay unused, so the branches remain deadlock-free
// under a single VC class on every fabric (DESIGN.md §7). Destinations
// equal to cur are reported via deliverLocal. Each destination appears in
// exactly one branch, so repeated application forms a tree: no link ever
// carries the same multicast packet twice (the redundant-traffic property
// multicast exists to provide, Sec. II).
func MulticastRoute(t Topology, cur NodeID, dsts *DestSet) (branches []MulticastBranch, deliverLocal bool) {
	var byPort [NumPorts]*DestSet
	cc := t.Coord(cur)
	for _, d := range dsts.Nodes() {
		cd := t.Coord(d)
		if cd == cc {
			deliverLocal = true
			continue
		}
		p := xyStep(cc, cd)
		if byPort[p] == nil {
			byPort[p] = NewDestSet(t.NumNodes())
		}
		byPort[p].Add(d)
	}
	for p := Port(0); p < NumPorts; p++ {
		if byPort[p] != nil {
			branches = append(branches, MulticastBranch{Out: p, Dsts: byPort[p]})
		}
	}
	return branches, deliverLocal
}
