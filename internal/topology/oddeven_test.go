package topology

import "testing"

// TestOddEvenMinimalAndNonEmpty checks the two liveness properties of the
// routing function: at every (src, cur, dst) with cur on a minimal
// quadrant, the port set is non-empty and every port strictly reduces the
// Manhattan distance.
func TestOddEvenMinimalAndNonEmpty(t *testing.T) {
	m := MustMesh(5, 6)
	for src := 0; src < m.NumNodes(); src++ {
		for dst := 0; dst < m.NumNodes(); dst++ {
			if src == dst {
				continue
			}
			// Walk every reachable state by BFS over returned ports.
			seen := map[NodeID]bool{}
			frontier := []NodeID{NodeID(src)}
			for len(frontier) > 0 {
				cur := frontier[len(frontier)-1]
				frontier = frontier[:len(frontier)-1]
				if cur == NodeID(dst) || seen[cur] {
					continue
				}
				seen[cur] = true
				ports := m.OddEvenPorts(NodeID(src), cur, NodeID(dst))
				if len(ports) == 0 {
					t.Fatalf("empty port set at %v, src %v dst %v",
						m.Coord(cur), m.Coord(NodeID(src)), m.Coord(NodeID(dst)))
				}
				before := m.Hops(cur, NodeID(dst))
				for _, p := range ports {
					next, ok := m.Neighbor(cur, p)
					if !ok {
						t.Fatalf("port %s off the mesh at %v", p, m.Coord(cur))
					}
					if m.Hops(next, NodeID(dst)) != before-1 {
						t.Fatalf("non-minimal port %s at %v toward %v", p, m.Coord(cur), m.Coord(NodeID(dst)))
					}
					frontier = append(frontier, next)
				}
			}
		}
	}
}

// TestOddEvenTurnRules verifies Chiu's two turn prohibitions across every
// reachable (arrival direction, departure direction) pair: no east-to-
// north or east-to-south turn at even columns, no north-to-west or
// south-to-west turn at odd columns.
func TestOddEvenTurnRules(t *testing.T) {
	m := MustMesh(6, 6)
	for src := 0; src < m.NumNodes(); src++ {
		for dst := 0; dst < m.NumNodes(); dst++ {
			if src == dst {
				continue
			}
			// State: (cur, inPort). BFS across all adaptive choices.
			type state struct {
				cur NodeID
				in  Port // port the packet arrived on (LocalPort at src)
			}
			seen := map[state]bool{}
			frontier := []state{{NodeID(src), LocalPort}}
			for len(frontier) > 0 {
				s := frontier[len(frontier)-1]
				frontier = frontier[:len(frontier)-1]
				if s.cur == NodeID(dst) || seen[s] {
					continue
				}
				seen[s] = true
				col := m.Coord(s.cur).Col
				for _, out := range m.OddEvenPorts(NodeID(src), s.cur, NodeID(dst)) {
					// Arrival on the west port means the packet was
					// traveling east; arrival on north/south means it was
					// traveling south/north.
					travelingEast := s.in == WestPort
					travelingVert := s.in == NorthPort || s.in == SouthPort
					if travelingEast && (out == NorthPort || out == SouthPort) && col%2 == 0 {
						t.Fatalf("EN/ES turn at even column %d (src %v dst %v)",
							col, m.Coord(NodeID(src)), m.Coord(NodeID(dst)))
					}
					if travelingVert && out == WestPort && col%2 == 1 {
						t.Fatalf("NW/SW turn at odd column %d (src %v dst %v)",
							col, m.Coord(NodeID(src)), m.Coord(NodeID(dst)))
					}
					next, _ := m.Neighbor(s.cur, out)
					frontier = append(frontier, state{next, out.Opposite()})
				}
			}
		}
	}
}

func TestOddEvenSameColumnGoesStraight(t *testing.T) {
	m := MustMesh(4, 4)
	src := m.ID(Coord{Row: 0, Col: 2})
	dst := m.ID(Coord{Row: 3, Col: 2})
	ports := m.OddEvenPorts(src, src, dst)
	if len(ports) != 1 || ports[0] != SouthPort {
		t.Errorf("same-column ports = %v, want [S]", ports)
	}
	if got := m.OddEvenPorts(src, dst, dst); len(got) != 0 {
		t.Errorf("arrived ports = %v, want empty", got)
	}
}
