package topology

// OddEvenPorts returns the productive output ports a packet injected at
// src, currently at cur, may take toward dst under the odd-even turn model
// (Chiu): east-to-north and east-to-south turns are forbidden at nodes in
// even columns, north-to-west and south-to-west turns at nodes in odd
// columns. Unlike west-first, the prohibitions are spread across the whole
// fabric, so no region degenerates to fully deterministic routing. The
// result is empty only when cur == dst.
//
// Odd-even routing is deadlock-free on a mesh (the restricted turn graph
// admits no cycle), minimal, and livelock-free: every returned port
// strictly reduces the Manhattan distance to dst.
func (m *Mesh) OddEvenPorts(src, cur, dst NodeID) []Port {
	return appendOddEven(nil, m.Coord(src), m.Coord(cur), m.Coord(dst))
}

// appendOddEven appends the odd-even productive ports for a packet from cs
// at cc toward cd. The src column matters: a packet still in its injection
// column has not taken an eastward hop yet, so a vertical move there is not
// an east-to-north/south turn and is always legal.
func appendOddEven(ports []Port, cs, cc, cd Coord) []Port {
	if cc == cd {
		return ports
	}
	if cd.Col == cc.Col {
		// Same column: go straight; no turn is involved.
		return append(ports, vertical(cc, cd))
	}
	if cd.Col > cc.Col {
		// Eastbound. A vertical correction here is an east-to-north/south
		// turn unless the packet is still in its source column, so it is
		// allowed only at odd columns (or at the source). Continuing east
		// is allowed only while a legal future turn column remains: the
		// last vertical correction happens at the destination column, so
		// with exactly one column to go the destination column must be odd.
		if cc.Col%2 == 1 || cc.Col == cs.Col {
			if cd.Row != cc.Row {
				ports = append(ports, vertical(cc, cd))
			}
		}
		if cd.Row == cc.Row {
			return append(ports, EastPort)
		}
		if cd.Col%2 == 1 || cd.Col-cc.Col != 1 {
			ports = append(ports, EastPort)
		}
		return ports
	}
	// Westbound: west is always productive (turns into west happen at the
	// verticals below, which even columns permit), and a vertical
	// correction is allowed at even columns, where the subsequent
	// north/south-to-west turn is legal.
	ports = append(ports, WestPort)
	if cd.Row != cc.Row && cc.Col%2 == 0 {
		ports = append(ports, vertical(cc, cd))
	}
	return ports
}

// vertical is the row-correcting port from cc toward cd (rows differ).
func vertical(cc, cd Coord) Port {
	if cd.Row > cc.Row {
		return SouthPort
	}
	return NorthPort
}
