// Package power implements the Orion-3.0-style dynamic-power model the
// paper uses for its Fig. 9/Fig. 10 comparisons. Energy is event-based:
// every buffer write/read, allocation, crossbar traversal and link
// traversal contributes a fixed per-event energy, so two runs of the same
// workload differ exactly by their event counts. The coefficients are
// representative 45 nm values; the paper's improvement figures are energy
// ratios between runs, which depend on relative event counts rather than
// on the absolute coefficients (DESIGN.md §3).
package power

import "fmt"

// Coefficients are per-event dynamic energies in picojoules.
type Coefficients struct {
	// BufferWrite/BufferRead are per flit per router buffer.
	BufferWrite float64
	BufferRead  float64
	// RouteCompute is per packet per router (head flit RC).
	RouteCompute float64
	// VAAllocation is per packet per router output VC allocation.
	VAAllocation float64
	// SAArbitration is per switch-allocator grant.
	SAArbitration float64
	// CrossbarTraversal is per flit copy through the crossbar.
	CrossbarTraversal float64
	// LinkTraversal is per flit per channel.
	LinkTraversal float64
	// GatherUpload is per payload written into a passing flit.
	GatherUpload float64
	// ReduceMerge is per operand folded into a passing accumulate packet:
	// one 32-bit adder operation plus the station read (INA). The merge
	// energy is paid inside the router so the saved link/buffer energy of
	// the operand's own packet can be weighed against it.
	ReduceMerge float64
	// StreamHop is per operand forwarded one hop on the systolic
	// streaming paths (register + short wire).
	StreamHop float64
	// MAC is per multiply-accumulate in a PE (reported separately; not
	// part of NoC power).
	MAC float64
}

// DefaultCoefficients returns representative 45 nm per-event energies (pJ)
// in line with the Orion/DSENT literature for a 98-bit flit datapath.
//
// StreamHop equals a flit's full per-hop traversal energy (buffer write +
// read + crossbar + link = 4.35 pJ): the paper's traces stream the input
// and weight operands over the NoC, so their hop energy matches regular
// flit traffic. This is also what keeps the 8x8 power improvement below 1%
// for every AlexNet layer, as the paper reports — the streamed operands
// dominate the energy the result-collection saving is measured against.
func DefaultCoefficients() Coefficients {
	return Coefficients{
		BufferWrite:       0.75,
		BufferRead:        0.65,
		RouteCompute:      0.08,
		VAAllocation:      0.12,
		SAArbitration:     0.10,
		CrossbarTraversal: 1.20,
		LinkTraversal:     1.75,
		GatherUpload:      0.05,
		ReduceMerge:       0.18, // 32-bit ripple add + station read, well under one MAC
		StreamHop:         4.35,
		MAC:               0.90,
	}
}

// Events are the activity counts of one run. The NoC fields mirror
// noc.Activity; StreamHops and MACs come from the systolic model.
type Events struct {
	BufferWrites   uint64
	BufferReads    uint64
	RCComputations uint64
	VAAllocations  uint64
	SAGrants       uint64
	Crossings      uint64
	LinkFlits      uint64
	GatherUploads  uint64
	ReduceMerges   uint64
	StreamHops     uint64
	MACs           uint64
}

// Add returns the event-wise sum of two activity records.
func (e Events) Add(o Events) Events {
	return Events{
		BufferWrites:   e.BufferWrites + o.BufferWrites,
		BufferReads:    e.BufferReads + o.BufferReads,
		RCComputations: e.RCComputations + o.RCComputations,
		VAAllocations:  e.VAAllocations + o.VAAllocations,
		SAGrants:       e.SAGrants + o.SAGrants,
		Crossings:      e.Crossings + o.Crossings,
		LinkFlits:      e.LinkFlits + o.LinkFlits,
		GatherUploads:  e.GatherUploads + o.GatherUploads,
		ReduceMerges:   e.ReduceMerges + o.ReduceMerges,
		StreamHops:     e.StreamHops + o.StreamHops,
		MACs:           e.MACs + o.MACs,
	}
}

// Scale returns the events multiplied by k (used to extrapolate a
// simulated round sample to a full layer).
func (e Events) Scale(k float64) Events {
	s := func(v uint64) uint64 { return uint64(float64(v)*k + 0.5) }
	return Events{
		BufferWrites:   s(e.BufferWrites),
		BufferReads:    s(e.BufferReads),
		RCComputations: s(e.RCComputations),
		VAAllocations:  s(e.VAAllocations),
		SAGrants:       s(e.SAGrants),
		Crossings:      s(e.Crossings),
		LinkFlits:      s(e.LinkFlits),
		GatherUploads:  s(e.GatherUploads),
		ReduceMerges:   s(e.ReduceMerges),
		StreamHops:     s(e.StreamHops),
		MACs:           s(e.MACs),
	}
}

// Report is the energy/power summary of one run.
type Report struct {
	// RouterPJ is the router-internal dynamic energy (buffers,
	// allocators, crossbar, gather upload).
	RouterPJ float64
	// LinkPJ is the channel traversal energy.
	LinkPJ float64
	// StreamPJ is the systolic operand-forwarding energy.
	StreamPJ float64
	// ComputePJ is the PE MAC energy (reported, excluded from NoCPJ).
	ComputePJ float64
	// NoCPJ = RouterPJ + LinkPJ + StreamPJ: the network dynamic energy
	// the paper's Orion comparison covers (its traces include the
	// streamed input/weight traffic).
	NoCPJ float64
	// TotalPJ = NoCPJ + ComputePJ.
	TotalPJ float64
	// Cycles is the run length used for average power.
	Cycles int64
	// AvgPowerMW is NoC dynamic power at the given clock, in milliwatts.
	AvgPowerMW float64
}

// Compute derives a Report from event counts at the given clock frequency
// (GHz). cycles <= 0 yields AvgPowerMW = 0.
func Compute(e Events, c Coefficients, cycles int64, freqGHz float64) Report {
	r := Report{Cycles: cycles}
	r.RouterPJ = float64(e.BufferWrites)*c.BufferWrite +
		float64(e.BufferReads)*c.BufferRead +
		float64(e.RCComputations)*c.RouteCompute +
		float64(e.VAAllocations)*c.VAAllocation +
		float64(e.SAGrants)*c.SAArbitration +
		float64(e.Crossings)*c.CrossbarTraversal +
		float64(e.GatherUploads)*c.GatherUpload +
		float64(e.ReduceMerges)*c.ReduceMerge
	r.LinkPJ = float64(e.LinkFlits) * c.LinkTraversal
	r.StreamPJ = float64(e.StreamHops) * c.StreamHop
	r.ComputePJ = float64(e.MACs) * c.MAC
	r.NoCPJ = r.RouterPJ + r.LinkPJ + r.StreamPJ
	r.TotalPJ = r.NoCPJ + r.ComputePJ
	if cycles > 0 && freqGHz > 0 {
		// pJ per cycle * cycles/s = pJ/s * 1e-9 = mW.
		r.AvgPowerMW = r.NoCPJ / float64(cycles) * freqGHz * 1e9 * 1e-12 * 1e3
	}
	return r
}

// ImprovementPercent returns the relative saving of b over a in percent:
// (a-b)/a * 100. It returns 0 when a is 0.
func ImprovementPercent(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return (a - b) / a * 100
}

// String summarizes the report.
func (r Report) String() string {
	return fmt.Sprintf("noc=%.1fpJ (router=%.1f link=%.1f stream=%.1f) compute=%.1fpJ avg=%.3fmW",
		r.NoCPJ, r.RouterPJ, r.LinkPJ, r.StreamPJ, r.ComputePJ, r.AvgPowerMW)
}
