package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestComputeBreakdown(t *testing.T) {
	c := Coefficients{
		BufferWrite: 1, BufferRead: 2, RouteCompute: 3, VAAllocation: 4,
		SAArbitration: 5, CrossbarTraversal: 6, LinkTraversal: 7,
		GatherUpload: 8, StreamHop: 9, MAC: 10,
	}
	e := Events{
		BufferWrites: 1, BufferReads: 1, RCComputations: 1, VAAllocations: 1,
		SAGrants: 1, Crossings: 1, LinkFlits: 1, GatherUploads: 1,
		StreamHops: 1, MACs: 1,
	}
	r := Compute(e, c, 100, 1)
	if r.RouterPJ != 1+2+3+4+5+6+8 {
		t.Errorf("RouterPJ = %v, want 29", r.RouterPJ)
	}
	if r.LinkPJ != 7 || r.StreamPJ != 9 || r.ComputePJ != 10 {
		t.Errorf("link/stream/compute = %v/%v/%v", r.LinkPJ, r.StreamPJ, r.ComputePJ)
	}
	if r.NoCPJ != 29+7+9 {
		t.Errorf("NoCPJ = %v, want 45", r.NoCPJ)
	}
	if r.TotalPJ != 55 {
		t.Errorf("TotalPJ = %v, want 55", r.TotalPJ)
	}
	// 45 pJ over 100 cycles at 1 GHz = 0.45 pJ/ns = 0.45 mW.
	if math.Abs(r.AvgPowerMW-0.45) > 1e-9 {
		t.Errorf("AvgPowerMW = %v, want 0.45", r.AvgPowerMW)
	}
}

func TestComputeZeroCycles(t *testing.T) {
	r := Compute(Events{LinkFlits: 5}, DefaultCoefficients(), 0, 1)
	if r.AvgPowerMW != 0 {
		t.Errorf("AvgPowerMW = %v, want 0 for zero cycles", r.AvgPowerMW)
	}
}

func TestEventsAdd(t *testing.T) {
	a := Events{BufferWrites: 1, LinkFlits: 2, MACs: 3}
	b := Events{BufferWrites: 10, StreamHops: 5}
	s := a.Add(b)
	if s.BufferWrites != 11 || s.LinkFlits != 2 || s.MACs != 3 || s.StreamHops != 5 {
		t.Errorf("Add = %+v", s)
	}
}

func TestEventsScale(t *testing.T) {
	e := Events{BufferWrites: 10, LinkFlits: 3}
	s := e.Scale(2.5)
	if s.BufferWrites != 25 {
		t.Errorf("BufferWrites = %d, want 25", s.BufferWrites)
	}
	if s.LinkFlits != 8 { // 7.5 rounds to 8
		t.Errorf("LinkFlits = %d, want 8", s.LinkFlits)
	}
}

func TestImprovementPercent(t *testing.T) {
	if got := ImprovementPercent(200, 150); got != 25 {
		t.Errorf("ImprovementPercent = %v, want 25", got)
	}
	if got := ImprovementPercent(0, 10); got != 0 {
		t.Errorf("zero base should return 0, got %v", got)
	}
	if got := ImprovementPercent(100, 110); got != -10 {
		t.Errorf("regression should be negative, got %v", got)
	}
}

// Property: energy is monotone in every event count.
func TestEnergyMonotone(t *testing.T) {
	c := DefaultCoefficients()
	f := func(w, extra uint16) bool {
		base := Events{BufferWrites: uint64(w), LinkFlits: uint64(w)}
		more := base
		more.LinkFlits += uint64(extra)
		rb := Compute(base, c, 1, 1)
		rm := Compute(more, c, 1, 1)
		return rm.NoCPJ >= rb.NoCPJ
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compute is linear — Compute(a+b) = Compute(a) + Compute(b) in
// every energy component.
func TestEnergyLinear(t *testing.T) {
	c := DefaultCoefficients()
	f := func(a, b uint8) bool {
		ea := Events{BufferWrites: uint64(a), Crossings: uint64(a), StreamHops: uint64(b)}
		eb := Events{BufferReads: uint64(b), LinkFlits: uint64(a), MACs: uint64(a)}
		sum := Compute(ea.Add(eb), c, 1, 1)
		parts := Compute(ea, c, 1, 1).TotalPJ + Compute(eb, c, 1, 1).TotalPJ
		return math.Abs(sum.TotalPJ-parts) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDefaultCoefficientsPositive(t *testing.T) {
	c := DefaultCoefficients()
	vals := []float64{
		c.BufferWrite, c.BufferRead, c.RouteCompute, c.VAAllocation,
		c.SAArbitration, c.CrossbarTraversal, c.LinkTraversal,
		c.GatherUpload, c.StreamHop, c.MAC,
	}
	for i, v := range vals {
		if v <= 0 {
			t.Errorf("coefficient %d not positive: %v", i, v)
		}
	}
}

func TestReportString(t *testing.T) {
	r := Compute(Events{LinkFlits: 1}, DefaultCoefficients(), 10, 1)
	if r.String() == "" {
		t.Error("empty String()")
	}
}

// TestEventsScaleRounding pins the half-up rounding of Scale across edge
// cases: exact halves round up, k=0 zeroes everything, k=1 is identity.
func TestEventsScaleRounding(t *testing.T) {
	e := Events{BufferWrites: 1, LinkFlits: 3, ReduceMerges: 5}
	half := e.Scale(0.5)
	// 0.5 rounds to 1, 1.5 to 2, 2.5 to 3 (round half up, not banker's).
	if half.BufferWrites != 1 || half.LinkFlits != 2 || half.ReduceMerges != 3 {
		t.Errorf("Scale(0.5) = %+v, want 1/2/3", half)
	}
	if z := e.Scale(0); z != (Events{}) {
		t.Errorf("Scale(0) = %+v, want zero", z)
	}
	if id := e.Scale(1); id != e {
		t.Errorf("Scale(1) = %+v, want identity", id)
	}
}

func TestImprovementPercentZeroBaseline(t *testing.T) {
	if got := ImprovementPercent(0, 0); got != 0 {
		t.Errorf("ImprovementPercent(0,0) = %v, want 0", got)
	}
	if got := ImprovementPercent(0, -5); got != 0 {
		t.Errorf("ImprovementPercent(0,-5) = %v, want 0", got)
	}
	if got := ImprovementPercent(100, 100); got != 0 {
		t.Errorf("identical runs should improve 0%%, got %v", got)
	}
	if got := ImprovementPercent(100, 0); got != 100 {
		t.Errorf("eliminating all energy should be 100%%, got %v", got)
	}
}

// TestReduceMergeEnergy pins the INA adder-per-merge accounting: merges
// contribute to router energy, and the per-merge cost is far below the
// per-hop traversal energy a merged operand's own packet would have paid —
// the sign condition that makes in-network accumulation an energy win.
func TestReduceMergeEnergy(t *testing.T) {
	c := DefaultCoefficients()
	base := Compute(Events{}, c, 1, 1)
	merged := Compute(Events{ReduceMerges: 10}, c, 1, 1)
	if got, want := merged.RouterPJ-base.RouterPJ, 10*c.ReduceMerge; math.Abs(got-want) > 1e-9 {
		t.Errorf("10 merges added %.3f pJ, want %.3f", got, want)
	}
	perHop := c.BufferWrite + c.BufferRead + c.CrossbarTraversal + c.LinkTraversal
	if c.ReduceMerge >= perHop {
		t.Errorf("ReduceMerge %.3f pJ not below one flit-hop %.3f pJ", c.ReduceMerge, perHop)
	}
	if c.ReduceMerge <= 0 {
		t.Errorf("ReduceMerge coefficient not positive: %v", c.ReduceMerge)
	}
}

func TestEventsAddIncludesReduceMerges(t *testing.T) {
	a := Events{ReduceMerges: 3}
	b := Events{ReduceMerges: 4, GatherUploads: 1}
	s := a.Add(b)
	if s.ReduceMerges != 7 || s.GatherUploads != 1 {
		t.Errorf("Add = %+v", s)
	}
}
