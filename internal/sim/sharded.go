package sim

// Sharded execution: NewShardedEngine partitions the per-cycle work across
// a fixed number of shards, each evaluated by its own persistent worker
// goroutine, while keeping schedules bit-identical to the sequential
// engine (DESIGN.md §9). Every cycle runs as
//
//	phase A   all shards tick in parallel      (AddShardTicker order)
//	barrier
//	serial    staged dispatch + drivers tick   (AddTicker order)
//	phase B   all shards commit in parallel    (AddShardCommitter order)
//	barrier
//	serial    committers, if any               (AddCommitter order)
//
// The determinism argument needs two properties from the caller's
// partition: (1) during a parallel phase, no two shards touch the same
// mutable state — the noc layer guarantees it by assigning each component
// to exactly one shard and splitting every link's commit into a flit half
// (downstream shard) and a credit half (upstream shard); (2) any work
// whose order across shards is observable — ejection callbacks into
// drivers, the drivers themselves — runs on the serial sub-phase in the
// sequential engine's registration order. Under those two properties the
// parallel phases compute the same per-component state transitions as the
// sequential engine in some interleaving that no component can observe,
// so every cycle ends in the identical global state.
//
// Sharded engines run with always-tick semantics: components are not
// registered with wake handles and no sleep bookkeeping happens. The
// adaptive fallback (Stage 1) already showed per-component bookkeeping is
// a net loss at exactly the high loads where sharding pays, and skipping
// nothing keeps each shard's work deterministic without per-shard wake
// queues.

// shard holds one partition's component lists.
type shard struct {
	tickers    []Ticker
	committers []Committer
}

// workerOp selects the phase a signalled worker should run.
type workerOp byte

const (
	opTick workerOp = iota
	opCommit
)

// NewShardedEngine returns an engine that evaluates n shards in parallel
// each cycle (n >= 1; a single shard runs inline with no goroutines, so
// shards=1 exercises the sharded machinery at sequential cost).
// Components are registered with AddShardTicker/AddShardCommitter;
// AddTicker and AddCommitter still work and feed the serial sub-phases.
// Call Close when done to stop the worker goroutines.
func NewShardedEngine(n int) *Engine {
	if n < 1 {
		n = 1
	}
	return &Engine{shards: make([]shard, n)}
}

// Sharded reports whether the engine runs the sharded two-phase schedule.
func (e *Engine) Sharded() bool { return len(e.shards) > 0 }

// NumShards returns the shard count (0 for a sequential engine).
func (e *Engine) NumShards() int { return len(e.shards) }

// AddShardTicker registers a phase-1 component with one shard. Within a
// shard, registration order is evaluation order; the caller must ensure
// components in different shards share no mutable state during the tick
// phase.
func (e *Engine) AddShardTicker(s int, t Ticker) {
	e.shards[s].tickers = append(e.shards[s].tickers, t)
}

// AddShardCommitter registers a phase-2 component with one shard, under
// the same isolation contract as AddShardTicker.
func (e *Engine) AddShardCommitter(s int, c Committer) {
	e.shards[s].committers = append(e.shards[s].committers, c)
}

// startWorkers lazily spawns the persistent shard workers on the first
// step: one goroutine per shard beyond the first (shard 0 runs inline on
// the stepping goroutine). Workers live until Close so the per-cycle cost
// is two channel sends and a WaitGroup wait, not goroutine churn — the
// allocation ratchet holds on the sharded path too.
func (e *Engine) startWorkers() {
	if e.work != nil {
		return
	}
	e.work = make([]chan workerOp, len(e.shards)-1)
	for i := range e.work {
		ch := make(chan workerOp, 1)
		e.work[i] = ch
		s := &e.shards[i+1]
		go func() {
			for op := range ch {
				cycle := e.cycle
				switch op {
				case opTick:
					for _, t := range s.tickers {
						t.Tick(cycle)
					}
				case opCommit:
					for _, c := range s.committers {
						c.Commit(cycle)
					}
				}
				e.wg.Done()
			}
		}()
	}
}

// Close stops the shard workers. Safe to call on any engine (a no-op
// without workers) and more than once; the engine must not be stepped
// after Close.
func (e *Engine) Close() {
	for _, ch := range e.work {
		close(ch)
	}
	e.work = nil
}

// runShards fans one parallel phase out to the workers, runs shard 0's
// share inline, and waits for the barrier. The channel send/receive pairs
// and the WaitGroup establish the happens-before edges that publish each
// shard's writes to the coordinator (and, through the next phase's sends,
// to every other shard).
func (e *Engine) runShards(op workerOp) {
	e.wg.Add(len(e.work))
	for _, ch := range e.work {
		ch <- op
	}
	s := &e.shards[0]
	cycle := e.cycle
	switch op {
	case opTick:
		for _, t := range s.tickers {
			t.Tick(cycle)
		}
	case opCommit:
		for _, c := range s.committers {
			c.Commit(cycle)
		}
	}
	e.wg.Wait()
}

// stepSharded advances a sharded engine by one cycle.
func (e *Engine) stepSharded() {
	cycle := e.cycle
	if len(e.shards) == 1 {
		// Single shard: the full two-phase schedule, inline.
		s := &e.shards[0]
		for _, t := range s.tickers {
			t.Tick(cycle)
		}
		e.serialTick(cycle)
		for _, c := range s.committers {
			c.Commit(cycle)
		}
		e.serialCommit(cycle)
	} else {
		e.startWorkers()
		e.runShards(opTick)
		e.serialTick(cycle)
		e.runShards(opCommit)
		e.serialCommit(cycle)
	}
	for _, s := range e.shards {
		e.evaluated += uint64(len(s.tickers) + len(s.committers))
	}
	e.evaluated += uint64(len(e.tickers) + len(e.committers))
	e.cycle++
}

// serialTick runs the serial sub-phase between the tick and commit
// barriers: the components registered with AddTicker (the staged-ejection
// dispatcher first, then workload drivers and controllers), in
// registration order, unconditionally — always-tick semantics.
func (e *Engine) serialTick(cycle int64) {
	for _, n := range e.tickers {
		n.ticker.Tick(cycle)
	}
}

// serialCommit runs any AddCommitter components after the parallel commit
// barrier. The wired network registers all links with shards, so this is
// normally empty; it exists so the AddCommitter API keeps working.
func (e *Engine) serialCommit(cycle int64) {
	for _, n := range e.committers {
		n.committer.Commit(cycle)
	}
}
