package sim

import (
	"errors"
	"fmt"
)

// ErrStalled reports that a RunUntil made no forward progress for a full
// watchdog window while its predicate stayed false. Callers detect it with
// errors.Is and read the structured detail from the wrapping *StallError.
var ErrStalled = errors.New("sim: no forward progress within watchdog window")

// StallError is the structured diagnostic a tripped watchdog returns in
// place of spinning to the cycle budget: the cycle it fired at, the
// no-progress window that elapsed, and the component-level dump the
// Diagnose hook produced (stuck flits, starving stations, awake
// components — see noc.StallDiagnostic).
type StallError struct {
	// Cycle is the simulation cycle the watchdog fired at.
	Cycle int64
	// Window is the configured no-progress window in cycles.
	Window int64
	// Progress is the progress-counter value that failed to advance.
	Progress uint64
	// Diagnostic is the rendered component dump (may be empty when no
	// Diagnose hook was configured).
	Diagnostic string
}

// Error summarizes the stall; the full diagnostic is appended when
// present.
func (e *StallError) Error() string {
	msg := fmt.Sprintf("%v (cycle %d, window %d, progress counter stuck at %d)",
		ErrStalled, e.Cycle, e.Window, e.Progress)
	if e.Diagnostic != "" {
		msg += "\n" + e.Diagnostic
	}
	return msg
}

// Unwrap lets errors.Is(err, ErrStalled) match.
func (e *StallError) Unwrap() error { return ErrStalled }

// Watchdog detects no-progress windows during RunUntil. Progress is any
// monotonically non-decreasing counter that moves whenever the simulation
// does useful work (the network layer sums flits carried across links and
// packets ejected); if it holds still for Window cycles while the run
// predicate stays false, RunUntil returns a *StallError instead of
// spinning to its cycle budget.
//
// The watchdog is polled at cycle boundaries, a few times per window, so
// it adds no per-component cost and cannot observe a torn mid-cycle
// state. A nil watchdog (the default) leaves RunUntil exactly as before.
type Watchdog struct {
	// Window is the no-progress span, in cycles, that counts as a stall.
	Window int64
	// Progress returns the monotonic work counter. Called between steps
	// only (never concurrently with shard phases).
	Progress func() uint64
	// Diagnose renders the component-level dump embedded in the
	// StallError. Optional.
	Diagnose func(cycle int64) string
}

// SetWatchdog installs (or, with nil, removes) the stall watchdog used by
// subsequent RunUntil calls.
func (e *Engine) SetWatchdog(w *Watchdog) {
	e.watchdog = w
	e.wdLastCycle = e.cycle
	if w != nil && w.Progress != nil {
		e.wdLastProgress = w.Progress()
	}
}

// checkStall polls the watchdog at a cycle boundary. It returns a non-nil
// *StallError when the progress counter has not moved for a full window.
func (e *Engine) checkStall() *StallError {
	w := e.watchdog
	p := w.Progress()
	if p != e.wdLastProgress {
		e.wdLastProgress = p
		e.wdLastCycle = e.cycle
		return nil
	}
	if e.cycle-e.wdLastCycle < w.Window {
		return nil
	}
	stall := &StallError{Cycle: e.cycle, Window: w.Window, Progress: p}
	if w.Diagnose != nil {
		stall.Diagnostic = w.Diagnose(e.cycle)
	}
	return stall
}
