// Package sim provides the synchronous cycle engine that drives the NoC
// simulator. Every hardware component registers with an Engine and is
// evaluated once per cycle in two phases: a tick phase in which components
// compute and stage their outputs, and a commit phase in which staged
// values (flits on links, returned credits) become visible to consumers.
// The two-phase scheme models registered synchronous hardware: nothing a
// component writes during a cycle can be observed by another component in
// the same cycle.
//
// Components are iterated in registration order and all simulator state is
// owned by the single goroutine calling Step, so identical configurations
// replay bit-for-bit identically.
package sim

import (
	"errors"
	"fmt"
)

// Ticker is evaluated in phase 1 of every cycle. Implementations read
// committed state from previous cycles and stage new outputs.
type Ticker interface {
	Tick(cycle int64)
}

// Committer is evaluated in phase 2 of every cycle, after every Ticker has
// run. Implementations publish staged outputs (e.g. move a flit across a
// link into the downstream buffer).
type Committer interface {
	Commit(cycle int64)
}

// ErrMaxCyclesExceeded reports that RunUntil hit its cycle budget before
// its predicate became true. Callers typically treat it as a deadlock or
// livelock diagnosis.
var ErrMaxCyclesExceeded = errors.New("sim: max cycles exceeded")

// Engine owns the simulated clock and the component lists.
// The zero value is ready to use.
type Engine struct {
	cycle      int64
	tickers    []Ticker
	committers []Committer
}

// NewEngine returns an empty engine at cycle 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Cycle returns the number of completed cycles.
func (e *Engine) Cycle() int64 {
	return e.cycle
}

// AddTicker registers a phase-1 component. Order of registration is the
// order of evaluation.
func (e *Engine) AddTicker(t Ticker) {
	e.tickers = append(e.tickers, t)
}

// AddCommitter registers a phase-2 component. Order of registration is the
// order of evaluation.
func (e *Engine) AddCommitter(c Committer) {
	e.committers = append(e.committers, c)
}

// Step advances the simulation by exactly one cycle.
func (e *Engine) Step() {
	for _, t := range e.tickers {
		t.Tick(e.cycle)
	}
	for _, c := range e.committers {
		c.Commit(e.cycle)
	}
	e.cycle++
}

// Run advances the simulation by n cycles.
func (e *Engine) Run(n int64) {
	for i := int64(0); i < n; i++ {
		e.Step()
	}
}

// RunUntil steps the simulation until done reports true (checked before
// each step) or the budget of maxCycles additional cycles is exhausted.
// It returns the cycle count at exit and ErrMaxCyclesExceeded on budget
// exhaustion.
func (e *Engine) RunUntil(done func() bool, maxCycles int64) (int64, error) {
	deadline := e.cycle + maxCycles
	for !done() {
		if e.cycle >= deadline {
			return e.cycle, fmt.Errorf("%w (budget %d)", ErrMaxCyclesExceeded, maxCycles)
		}
		e.Step()
	}
	return e.cycle, nil
}
