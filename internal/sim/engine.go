// Package sim provides the synchronous cycle engine that drives the NoC
// simulator. Every hardware component registers with an Engine and is
// evaluated once per cycle in two phases: a tick phase in which components
// compute and stage their outputs, and a commit phase in which staged
// values (flits on links, returned credits) become visible to consumers.
// The two-phase scheme models registered synchronous hardware: nothing a
// component writes during a cycle can be observed by another component in
// the same cycle.
//
// Components are iterated in registration order and all simulator state is
// owned by the single goroutine calling Step, so identical configurations
// replay bit-for-bit identically.
//
// # Activity tracking
//
// At the paper's operating points most routers, links and NICs are idle
// most cycles, so the engine supports sleep/wake scheduling: a component
// that also implements Idler is put to sleep whenever it reports Idle after
// its evaluation, and is skipped on subsequent cycles until something wakes
// it through the Handle returned at registration (a flit or credit arriving
// on a link, a packet being enqueued at a NIC, ...).
//
// Sleeping preserves bit-exact determinism under one contract: a component
// reporting Idle must make its next evaluation a pure no-op (no state
// change, no counters, no external effects), and every transition out of
// idleness must be accompanied by a Handle.Wake call. The engine still
// walks the registration-order component list each cycle, so awake
// components are always evaluated in exactly the order the naive engine
// would use; SetAlwaysTick(true) disables the skipping entirely, which the
// golden equivalence tests use to prove both paths produce identical
// results.
package sim

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Ticker is evaluated in phase 1 of every cycle. Implementations read
// committed state from previous cycles and stage new outputs.
type Ticker interface {
	Tick(cycle int64)
}

// Committer is evaluated in phase 2 of every cycle, after every Ticker has
// run. Implementations publish staged outputs (e.g. move a flit across a
// link into the downstream buffer).
type Committer interface {
	Commit(cycle int64)
}

// Idler is optionally implemented by Tickers and Committers that can sleep.
// Idle is consulted right after the component's evaluation; returning true
// promises that evaluating the component again — in any later cycle and
// absent an intervening Wake — would be a pure no-op.
type Idler interface {
	Idle() bool
}

// Clock exposes the current cycle to components that are evaluated lazily:
// a sleeping component cannot rely on having observed every cycle number,
// so timestamps (injection cycles, δ deadlines) must come from the engine's
// clock instead of a remembered tick argument. *Engine implements Clock.
type Clock interface {
	Cycle() int64
}

// node is one registered component with its activity state.
type node struct {
	ticker    Ticker
	committer Committer
	idler     Idler
	awake     bool
}

// Handle wakes one registered component. Handles are safe to share with
// the component's peers (links wake their downstream router, controllers
// wake the NIC they enqueue into) and a nil *Handle ignores Wake calls, so
// components can be used without an engine in unit tests.
type Handle struct {
	n *node
}

// Wake marks the component runnable again. Calling Wake on an already
// awake component (or on a nil handle) is a cheap no-op, so callers wake
// unconditionally on every potentially state-changing event. Duplicate
// wakes are coalesced with a read-before-write: at high load nearly every
// per-flit Wake hits an already awake component, and skipping the store
// keeps the node's cache line clean.
func (h *Handle) Wake() {
	if h != nil && h.n != nil && !h.n.awake {
		h.n.awake = true
	}
}

// ErrMaxCyclesExceeded reports that RunUntil hit its cycle budget before
// its predicate became true. Callers typically treat it as a deadlock or
// livelock diagnosis.
var ErrMaxCyclesExceeded = errors.New("sim: max cycles exceeded")

// ErrInterrupted reports that RunUntil stopped early because Interrupt was
// called. The simulation is left at a clean cycle boundary: the interrupt
// is honored between steps, never inside one, so harvested state (stats,
// telemetry, profiles) is consistent.
var ErrInterrupted = errors.New("sim: interrupted")

// Adaptive-mode tuning: when at least adaptiveNum/adaptiveDen of the
// registered components were awake in a tracked step, the engine runs the
// next adaptiveBurst cycles naively (no awake checks, no Idle calls) and
// then re-arms activity tracking. The threshold is where per-component
// bookkeeping costs more than the few skips it buys; the burst length
// amortizes the re-arm (one full evaluate-and-sleep pass) to ~1.5%.
const (
	adaptiveNum   = 3
	adaptiveDen   = 4
	adaptiveBurst = 64
)

// Engine owns the simulated clock and the component lists.
// The zero value is ready to use, with activity tracking enabled and the
// adaptive high-load fallback off (see SetAdaptive; the network layer
// turns it on for fully wired fabrics).
type Engine struct {
	cycle      int64
	tickers    []*node
	committers []*node
	alwaysTick bool

	// Adaptive mode: when the still-awake fraction crosses the load
	// threshold, fall back to naive ticking for a burst of cycles, then
	// re-arm activity tracking.
	adaptive bool
	burst    int // remaining naive-burst cycles

	// Sharded backend (NewShardedEngine; see sharded.go). A non-empty
	// shards slice switches Step to the two-phase parallel schedule, with
	// the tickers/committers lists above serving as its serial sub-phases.
	shards []shard
	work   []chan workerOp // one signal channel per worker (shards[1:])
	wg     sync.WaitGroup

	evaluated uint64
	skipped   uint64

	// interrupted is set asynchronously (signal handlers) and polled by
	// RunUntil at cycle boundaries; see Interrupt.
	interrupted atomic.Bool

	// Stall watchdog (SetWatchdog; see watchdog.go). Polled by RunUntil a
	// few times per window, between steps only.
	watchdog       *Watchdog
	wdLastProgress uint64
	wdLastCycle    int64
}

// NewEngine returns an empty engine at cycle 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Cycle returns the number of completed cycles. During a Step it returns
// the cycle currently being evaluated, so it is the Clock components use
// to timestamp externally triggered work.
func (e *Engine) Cycle() int64 {
	return e.cycle
}

// RestoreCycle sets the simulated clock to c and wakes every registered
// component. Engine snapshots use it: a freshly built network restored
// onto mid-run state must resume at the captured cycle, and waking
// everything re-arms sleep/wake scheduling from scratch — by the Idle
// contract a spuriously woken component's next evaluation is a pure
// no-op, so the post-restore schedule matches the uninterrupted run
// bit for bit. Sharded engines keep no sleep state; only the clock moves.
func (e *Engine) RestoreCycle(c int64) {
	e.cycle = c
	e.burst = 0
	for _, n := range e.tickers {
		n.awake = true
	}
	for _, n := range e.committers {
		n.awake = true
	}
}

// SetAlwaysTick disables (true) or re-enables (false) sleep/wake
// scheduling. With alwaysTick every component is evaluated every cycle —
// the naive reference path used by the golden equivalence tests.
func (e *Engine) SetAlwaysTick(v bool) {
	e.alwaysTick = v
	if v {
		e.burst = 0
		// Components that slept while tracking was on must not stay
		// skipped if tracking is re-enabled later mid-run: waking
		// everything keeps both toggle orders correct (an idle
		// evaluation is a no-op, so spurious wakes are harmless).
		for _, n := range e.tickers {
			n.awake = true
		}
		for _, n := range e.committers {
			n.awake = true
		}
	}
}

// AlwaysTick reports whether sleep/wake scheduling is disabled.
func (e *Engine) AlwaysTick() bool { return e.alwaysTick }

// SetAdaptive enables or disables the high-load fallback (off by default;
// noc.New enables it): with it on, a tracked step in which at least 3/4 of
// the components stayed awake after their idle checks switches the engine
// to naive ticking for a burst of cycles, after which every component is
// woken and the next tracked step re-arms the sleep states. Naive steps
// evaluate every component in registration order — a superset of the
// tracked evaluation in which the extra calls are pure no-ops by the Idle
// contract — so toggling the mode never changes a schedule; it only moves
// the bookkeeping cost off the hot path when skipping pays for nothing.
func (e *Engine) SetAdaptive(v bool) {
	e.adaptive = v
	if !v {
		e.burst = 0
	}
}

// Adaptive reports whether the high-load naive fallback is enabled.
func (e *Engine) Adaptive() bool { return e.adaptive }

// Evaluated returns how many component evaluations ran; Skipped how many
// were elided by sleep/wake scheduling. Their sum is what the naive engine
// would have run, which makes the split a direct measure of the win.
func (e *Engine) Evaluated() uint64 { return e.evaluated }

// Skipped returns the number of component evaluations elided because the
// component was asleep.
func (e *Engine) Skipped() uint64 { return e.skipped }

func newNode(t Ticker, c Committer) *node {
	n := &node{ticker: t, committer: c, awake: true}
	if t != nil {
		n.idler, _ = t.(Idler)
	} else {
		n.idler, _ = c.(Idler)
	}
	return n
}

// AddTicker registers a phase-1 component. Order of registration is the
// order of evaluation. The returned handle wakes the component; callers
// that never sleep (components not implementing Idler) may ignore it.
func (e *Engine) AddTicker(t Ticker) *Handle {
	n := newNode(t, nil)
	e.tickers = append(e.tickers, n)
	return &Handle{n: n}
}

// AddCommitter registers a phase-2 component. Order of registration is the
// order of evaluation.
func (e *Engine) AddCommitter(c Committer) *Handle {
	n := newNode(nil, c)
	e.committers = append(e.committers, n)
	return &Handle{n: n}
}

// Step advances the simulation by exactly one cycle.
func (e *Engine) Step() {
	if len(e.shards) > 0 {
		e.stepSharded()
		return
	}
	cycle := e.cycle
	if e.alwaysTick {
		e.stepNaive(cycle)
		e.cycle++
		return
	}
	if e.burst > 0 {
		// Adaptive high-load fallback: tick naively (sleeping components'
		// evaluations are no-ops by the Idle contract, and registration
		// order is unchanged, so the schedule is bit-identical). When the
		// burst expires, wake everything so the next tracked step
		// re-evaluates each component once and re-arms its sleep state.
		e.stepNaive(cycle)
		e.burst--
		if e.burst == 0 {
			for _, n := range e.tickers {
				n.awake = true
			}
			for _, n := range e.committers {
				n.awake = true
			}
		}
		e.cycle++
		return
	}
	// load counts components still awake after their idle check — the
	// measure the adaptive fallback thresholds on. Counting evaluations
	// instead would deadlock the heuristic: the post-burst re-arm step
	// evaluates everything by construction, and would always re-trigger
	// the next burst regardless of the actual load.
	ran, load := 0, 0
	for _, n := range e.tickers {
		if !n.awake {
			e.skipped++
			continue
		}
		n.ticker.Tick(cycle)
		ran++
		if n.idler != nil && n.idler.Idle() {
			n.awake = false
		} else {
			load++
		}
	}
	for _, n := range e.committers {
		if !n.awake {
			e.skipped++
			continue
		}
		n.committer.Commit(cycle)
		ran++
		if n.idler != nil && n.idler.Idle() {
			n.awake = false
		} else {
			load++
		}
	}
	e.evaluated += uint64(ran)
	if e.adaptive && load*adaptiveDen >= (len(e.tickers)+len(e.committers))*adaptiveNum {
		e.burst = adaptiveBurst
	}
	e.cycle++
}

// stepNaive evaluates every component in registration order, awake or not.
func (e *Engine) stepNaive(cycle int64) {
	for _, n := range e.tickers {
		n.ticker.Tick(cycle)
	}
	for _, n := range e.committers {
		n.committer.Commit(cycle)
	}
	e.evaluated += uint64(len(e.tickers) + len(e.committers))
}

// Run advances the simulation by n cycles.
func (e *Engine) Run(n int64) {
	for i := int64(0); i < n; i++ {
		e.Step()
	}
}

// Interrupt makes any in-progress or future RunUntil return ErrInterrupted
// at the next cycle boundary. Safe to call from any goroutine (nocsim's
// SIGINT handler uses it); the flag stays set so a run loop cannot race
// past it.
func (e *Engine) Interrupt() { e.interrupted.Store(true) }

// Interrupted reports whether Interrupt has been called.
func (e *Engine) Interrupted() bool { return e.interrupted.Load() }

// RunUntil steps the simulation until done reports true (checked before
// each step) or the budget of maxCycles additional cycles is exhausted.
// It returns the cycle count at exit and ErrMaxCyclesExceeded on budget
// exhaustion, or ErrInterrupted if Interrupt was called.
// When a watchdog is installed (SetWatchdog), a no-progress window turns
// into a *StallError wrapping ErrStalled instead of a spin to the budget.
func (e *Engine) RunUntil(done func() bool, maxCycles int64) (int64, error) {
	deadline := e.cycle + maxCycles
	var wdStride, wdNext int64
	if w := e.watchdog; w != nil && w.Progress != nil && w.Window > 0 {
		// Poll a few times per window: often enough that a stall is
		// reported within ~1.1 windows, rarely enough that the progress
		// sum is off the per-cycle path.
		wdStride = w.Window / 8
		if wdStride < 1 {
			wdStride = 1
		}
		wdNext = e.cycle + wdStride
	}
	for !done() {
		if e.interrupted.Load() {
			return e.cycle, ErrInterrupted
		}
		if e.cycle >= deadline {
			return e.cycle, fmt.Errorf("%w (budget %d)", ErrMaxCyclesExceeded, maxCycles)
		}
		if wdStride > 0 && e.cycle >= wdNext {
			wdNext = e.cycle + wdStride
			if stall := e.checkStall(); stall != nil {
				return e.cycle, stall
			}
		}
		e.Step()
	}
	return e.cycle, nil
}
