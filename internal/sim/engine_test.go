package sim

import (
	"errors"
	"testing"
)

type recorder struct {
	log   *[]string
	name  string
	phase string
}

func (r *recorder) Tick(cycle int64)   { *r.log = append(*r.log, r.name+"-tick") }
func (r *recorder) Commit(cycle int64) { *r.log = append(*r.log, r.name+"-commit") }

func TestEngineStepOrdering(t *testing.T) {
	var log []string
	e := NewEngine()
	e.AddTicker(&recorder{log: &log, name: "a"})
	e.AddTicker(&recorder{log: &log, name: "b"})
	e.AddCommitter(&recorder{log: &log, name: "c"})
	e.AddCommitter(&recorder{log: &log, name: "d"})

	e.Step()

	want := []string{"a-tick", "b-tick", "c-commit", "d-commit"}
	if len(log) != len(want) {
		t.Fatalf("log = %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Errorf("log[%d] = %q, want %q", i, log[i], want[i])
		}
	}
	if e.Cycle() != 1 {
		t.Errorf("Cycle() = %d, want 1", e.Cycle())
	}
}

func TestEngineRun(t *testing.T) {
	e := NewEngine()
	e.Run(10)
	if e.Cycle() != 10 {
		t.Errorf("Cycle() = %d, want 10", e.Cycle())
	}
}

type countdown struct {
	n int
}

func (c *countdown) Tick(cycle int64) {
	if c.n > 0 {
		c.n--
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	c := &countdown{n: 7}
	e.AddTicker(c)

	got, err := e.RunUntil(func() bool { return c.n == 0 }, 100)
	if err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if got != 7 {
		t.Errorf("exit cycle = %d, want 7", got)
	}
}

func TestEngineRunUntilBudget(t *testing.T) {
	e := NewEngine()
	_, err := e.RunUntil(func() bool { return false }, 5)
	if !errors.Is(err, ErrMaxCyclesExceeded) {
		t.Fatalf("err = %v, want ErrMaxCyclesExceeded", err)
	}
	if e.Cycle() != 5 {
		t.Errorf("Cycle() = %d, want 5", e.Cycle())
	}
}

func TestEngineRunUntilAlreadyDone(t *testing.T) {
	e := NewEngine()
	got, err := e.RunUntil(func() bool { return true }, 0)
	if err != nil || got != 0 {
		t.Fatalf("RunUntil = (%d, %v), want (0, nil)", got, err)
	}
}
