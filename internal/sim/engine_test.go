package sim

import (
	"errors"
	"testing"
)

type recorder struct {
	log   *[]string
	name  string
	phase string
}

func (r *recorder) Tick(cycle int64)   { *r.log = append(*r.log, r.name+"-tick") }
func (r *recorder) Commit(cycle int64) { *r.log = append(*r.log, r.name+"-commit") }

func TestEngineStepOrdering(t *testing.T) {
	var log []string
	e := NewEngine()
	e.AddTicker(&recorder{log: &log, name: "a"})
	e.AddTicker(&recorder{log: &log, name: "b"})
	e.AddCommitter(&recorder{log: &log, name: "c"})
	e.AddCommitter(&recorder{log: &log, name: "d"})

	e.Step()

	want := []string{"a-tick", "b-tick", "c-commit", "d-commit"}
	if len(log) != len(want) {
		t.Fatalf("log = %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Errorf("log[%d] = %q, want %q", i, log[i], want[i])
		}
	}
	if e.Cycle() != 1 {
		t.Errorf("Cycle() = %d, want 1", e.Cycle())
	}
}

func TestEngineRun(t *testing.T) {
	e := NewEngine()
	e.Run(10)
	if e.Cycle() != 10 {
		t.Errorf("Cycle() = %d, want 10", e.Cycle())
	}
}

type countdown struct {
	n int
}

func (c *countdown) Tick(cycle int64) {
	if c.n > 0 {
		c.n--
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	c := &countdown{n: 7}
	e.AddTicker(c)

	got, err := e.RunUntil(func() bool { return c.n == 0 }, 100)
	if err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if got != 7 {
		t.Errorf("exit cycle = %d, want 7", got)
	}
}

func TestEngineRunUntilBudget(t *testing.T) {
	e := NewEngine()
	_, err := e.RunUntil(func() bool { return false }, 5)
	if !errors.Is(err, ErrMaxCyclesExceeded) {
		t.Fatalf("err = %v, want ErrMaxCyclesExceeded", err)
	}
	if e.Cycle() != 5 {
		t.Errorf("Cycle() = %d, want 5", e.Cycle())
	}
}

func TestEngineRunUntilAlreadyDone(t *testing.T) {
	e := NewEngine()
	got, err := e.RunUntil(func() bool { return true }, 0)
	if err != nil || got != 0 {
		t.Fatalf("RunUntil = (%d, %v), want (0, nil)", got, err)
	}
}

// sleeper ticks, counts evaluations, and reports idle whenever it has no
// pending work units.
type sleeper struct {
	work  int
	ticks []int64
}

func (s *sleeper) Tick(cycle int64) {
	s.ticks = append(s.ticks, cycle)
	if s.work > 0 {
		s.work--
	}
}

func (s *sleeper) Idle() bool { return s.work == 0 }

func TestEngineSleepsIdleComponents(t *testing.T) {
	e := NewEngine()
	s := &sleeper{work: 3}
	e.AddTicker(s)

	e.Run(10)

	// Idle is checked after each tick: the cycle-2 tick drains the last
	// work unit, so the component sleeps from cycle 3 on.
	want := []int64{0, 1, 2}
	if len(s.ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", s.ticks, want)
	}
	if e.Skipped() != 7 {
		t.Errorf("Skipped() = %d, want 7", e.Skipped())
	}
	if e.Evaluated() != 3 {
		t.Errorf("Evaluated() = %d, want 3", e.Evaluated())
	}
}

func TestEngineWakeResumesEvaluation(t *testing.T) {
	e := NewEngine()
	s := &sleeper{work: 1}
	h := e.AddTicker(s)

	e.Run(5) // ticks at cycle 0, sleeps from cycle 1
	s.work = 2
	h.Wake()
	e.Run(5) // ticks at cycles 5,6, sleeps again

	want := []int64{0, 5, 6}
	if len(s.ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", s.ticks, want)
	}
	for i := range want {
		if s.ticks[i] != want[i] {
			t.Errorf("ticks[%d] = %d, want %d", i, s.ticks[i], want[i])
		}
	}
}

func TestEngineAlwaysTickDisablesSleeping(t *testing.T) {
	e := NewEngine()
	s := &sleeper{}
	e.AddTicker(s)
	e.SetAlwaysTick(true)

	e.Run(4)

	if len(s.ticks) != 4 {
		t.Fatalf("ticks = %v, want every cycle", s.ticks)
	}
	if e.Skipped() != 0 {
		t.Errorf("Skipped() = %d, want 0", e.Skipped())
	}
}

func TestEngineSetAlwaysTickWakesSleepers(t *testing.T) {
	e := NewEngine()
	s := &sleeper{}
	e.AddTicker(s)

	e.Run(3) // sleeps after cycle 0
	e.SetAlwaysTick(true)
	e.Run(2)

	want := []int64{0, 3, 4}
	if len(s.ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", s.ticks, want)
	}
}

func TestNilHandleWakeIsSafe(t *testing.T) {
	var h *Handle
	h.Wake() // must not panic
	(&Handle{}).Wake()
}

func TestEngineImplementsClock(t *testing.T) {
	var c Clock = NewEngine()
	if c.Cycle() != 0 {
		t.Errorf("Cycle() = %d, want 0", c.Cycle())
	}
}
