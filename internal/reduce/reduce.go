// Package reduce implements the router-resident in-network accumulation
// (INA) subsystem: instead of gathering every PE's partial sum into its own
// payload slot and hauling all of them to the global buffer, routers fold
// ("merge") their local operand into a passing accumulate packet's running
// sum, so one constant-length packet arrives at the east sink carrying the
// whole row's reduction. The protocol mirrors the paper's gather support —
// operands are offered to a per-router station, reserved against passing
// accumulate headers during route computation, merged during the body/tail
// flits' idle RC/VA pipeline slots, and recovered by a δ-style timeout with
// a NIC-initiated fallback packet — following Tiwari et al.'s follow-on
// "In-Network Accumulation" work (arXiv:2209.10056).
//
// Arithmetic is exact: merges use wrap-around uint64 addition, and the
// Oracle type computes the same reduction in software so tests can check
// the sink's sums bit for bit, whatever mix of merged and self-initiated
// packets delivered them.
package reduce

import (
	"fmt"

	"gathernoc/internal/flit"
	"gathernoc/internal/ring"
	"gathernoc/internal/topology"
)

// AckFunc is invoked (synchronously, during the router tick) when an
// operand offered to the station has been merged into a passing accumulate
// packet — the INA analogue of the gather ack path back to the PE.
type AckFunc func(op flit.Payload)

type entryState uint8

const (
	entryPending entryState = iota + 1
	entryReserved
)

// Entry is one operand queued at a router's accumulation station.
type Entry struct {
	operand flit.Payload
	state   entryState
	ack     AckFunc
}

// Operand returns the queued operand.
func (e *Entry) Operand() flit.Payload { return e.operand }

// Station is the router-resident payload station shared by the gather and
// accumulation protocols: it holds payloads/operands handed over by the
// local PE, reserves them against passing collective headers, and hands
// them to the upload/merge stage. Gather reservations match on
// destination only (ReserveByDst); accumulate reservations additionally
// match the reduction ID (Reserve). It is passive — only the owning
// router's tick mutates it — so it needs no locking and never wakes the
// router by itself.
type Station struct {
	entries []*Entry
	// spares is the entry freelist: completed and retracted entries are
	// recycled so a steady stream of offers allocates nothing.
	spares ring.FreeList[*Entry]
	cap    int
}

// NewStation returns a station bounding its queue at capacity (minimum 1).
func NewStation(capacity int) *Station {
	if capacity < 1 {
		capacity = 1
	}
	return &Station{cap: capacity}
}

// Offer enqueues an operand, returning false when the station is full.
func (s *Station) Offer(op flit.Payload, ack AckFunc) bool {
	if len(s.entries) >= s.cap {
		return false
	}
	e, ok := s.spares.Get()
	if !ok {
		e = &Entry{}
	}
	e.operand = op
	e.state = entryPending
	e.ack = ack
	s.entries = append(s.entries, e)
	return true
}

// recycle parks a removed entry on the freelist.
func (s *Station) recycle(e *Entry) {
	*e = Entry{}
	s.spares.Put(e)
}

// Reserve finds the oldest pending operand destined for dst and tagged
// with the given reduction ID, marks it reserved and returns it; ok is
// false when none matches. Matching on the reduction ID keeps operands of
// different rows or rounds from folding into the wrong sum.
func (s *Station) Reserve(dst topology.NodeID, reduceID uint64) (*Entry, bool) {
	for _, e := range s.entries {
		if e.state == entryPending && e.operand.Dst == dst && e.operand.ReduceID == reduceID {
			e.state = entryReserved
			return e, true
		}
	}
	return nil, false
}

// ReserveByDst finds the oldest pending payload destined for dst whatever
// its reduction tag — the gather protocol's Load signal (Algorithm 1),
// where a payload keeps its identity and any passing gather packet to the
// same destination may pick it up.
func (s *Station) ReserveByDst(dst topology.NodeID) (*Entry, bool) {
	for _, e := range s.entries {
		if e.state == entryPending && e.operand.Dst == dst {
			e.state = entryReserved
			return e, true
		}
	}
	return nil, false
}

// Release returns a reserved entry to pending; used when an accumulate
// packet's tail departed without the merge completing (defensive: the
// ASpace arithmetic should make this unreachable).
func (s *Station) Release(e *Entry) {
	e.state = entryPending
}

// Complete removes an entry after its operand was merged and fires the ack
// callback. The entry is recycled; callers must drop their reference.
func (s *Station) Complete(e *Entry) {
	for i, cur := range s.entries {
		if cur == e {
			s.entries = append(s.entries[:i], s.entries[i+1:]...)
			break
		}
	}
	if e.ack != nil {
		e.ack(e.operand)
	}
	s.recycle(e)
}

// Retract removes a still-pending operand by sequence number, returning
// false when the operand is absent or already reserved by an in-flight
// packet. The NIC calls this on δ-timeout before initiating its own
// accumulate packet.
func (s *Station) Retract(seq uint64) bool {
	for i, e := range s.entries {
		if e.operand.Seq == seq {
			if e.state != entryPending {
				return false
			}
			s.entries = append(s.entries[:i], s.entries[i+1:]...)
			s.recycle(e)
			return true
		}
	}
	return false
}

// Backlog reports how many operands sit in the station (any state).
func (s *Station) Backlog() int { return len(s.entries) }

// Oracle is the software reduction reference: it accumulates every operand
// of each reduction with the same exact wrap-around uint64 arithmetic the
// in-network merge uses, so a sink's received sums can be checked bit for
// bit against it.
type Oracle struct {
	sums map[uint64]uint64
	ops  map[uint64]int
}

// NewOracle returns an empty oracle.
func NewOracle() *Oracle {
	return &Oracle{sums: map[uint64]uint64{}, ops: map[uint64]int{}}
}

// Add folds value into the reduction's expected sum.
func (o *Oracle) Add(reduceID, value uint64) {
	o.sums[reduceID] += value
	o.ops[reduceID]++
}

// Sum returns the expected sum of the reduction.
func (o *Oracle) Sum(reduceID uint64) uint64 { return o.sums[reduceID] }

// Ops returns how many operands the reduction expects.
func (o *Oracle) Ops(reduceID uint64) int { return o.ops[reduceID] }

// Complete reports whether the reduction has received all its operands:
// gotOps operands summing to gotSum match the oracle exactly.
func (o *Oracle) Complete(reduceID, gotSum uint64, gotOps int) bool {
	return gotOps == o.ops[reduceID] && gotSum == o.sums[reduceID]
}

// Verify returns an error describing the first mismatch between the
// received (sum, ops) and the oracle's expectation, or nil when they agree
// exactly.
func (o *Oracle) Verify(reduceID, gotSum uint64, gotOps int) error {
	if gotOps != o.ops[reduceID] {
		return fmt.Errorf("reduce %d: got %d operands, oracle expects %d", reduceID, gotOps, o.ops[reduceID])
	}
	if gotSum != o.sums[reduceID] {
		return fmt.Errorf("reduce %d: got sum %d, oracle expects %d", reduceID, gotSum, o.sums[reduceID])
	}
	return nil
}
