package reduce

import (
	"testing"

	"gathernoc/internal/flit"
	"gathernoc/internal/topology"
)

func op(seq uint64, dst topology.NodeID, reduceID, value uint64) flit.Payload {
	return flit.Payload{Seq: seq, Dst: dst, ReduceID: reduceID, Value: value, Ops: 1}
}

func TestStationOfferCapacity(t *testing.T) {
	s := NewStation(2)
	if !s.Offer(op(1, 9, 7, 10), nil) || !s.Offer(op(2, 9, 7, 20), nil) {
		t.Fatal("offers under capacity must succeed")
	}
	if s.Offer(op(3, 9, 7, 30), nil) {
		t.Error("offer over capacity must fail")
	}
	if s.Backlog() != 2 {
		t.Errorf("backlog = %d, want 2", s.Backlog())
	}
}

func TestStationZeroCapacityClamped(t *testing.T) {
	s := NewStation(0)
	if !s.Offer(op(1, 9, 7, 10), nil) {
		t.Error("clamped station must accept one operand")
	}
}

func TestReserveMatchesDstAndReduceID(t *testing.T) {
	s := NewStation(4)
	s.Offer(op(1, 9, 100, 10), nil)
	s.Offer(op(2, 8, 200, 20), nil)
	s.Offer(op(3, 9, 200, 30), nil)

	if _, ok := s.Reserve(9, 300); ok {
		t.Error("reserve must not match a foreign reduce ID")
	}
	if _, ok := s.Reserve(7, 100); ok {
		t.Error("reserve must not match a foreign destination")
	}
	e, ok := s.Reserve(9, 200)
	if !ok || e.Operand().Seq != 3 {
		t.Fatalf("reserve(9,200) = %v,%v, want seq 3", e, ok)
	}
	// A reserved entry is not reservable twice.
	if _, ok := s.Reserve(9, 200); ok {
		t.Error("double reservation must fail")
	}
	// Release returns it to the pool.
	s.Release(e)
	if _, ok := s.Reserve(9, 200); !ok {
		t.Error("released entry must be reservable again")
	}
}

func TestReserveOldestFirst(t *testing.T) {
	s := NewStation(4)
	s.Offer(op(5, 9, 1, 0), nil)
	s.Offer(op(6, 9, 1, 0), nil)
	e, ok := s.Reserve(9, 1)
	if !ok || e.Operand().Seq != 5 {
		t.Errorf("reserve picked seq %d, want oldest (5)", e.Operand().Seq)
	}
}

func TestCompleteFiresAckAndRemoves(t *testing.T) {
	s := NewStation(4)
	var acked []uint64
	s.Offer(op(1, 9, 1, 0), func(p flit.Payload) { acked = append(acked, p.Seq) })
	e, _ := s.Reserve(9, 1)
	s.Complete(e)
	if len(acked) != 1 || acked[0] != 1 {
		t.Errorf("ack fired for %v, want [1]", acked)
	}
	if s.Backlog() != 0 {
		t.Errorf("backlog = %d after complete, want 0", s.Backlog())
	}
}

func TestRetract(t *testing.T) {
	s := NewStation(4)
	s.Offer(op(1, 9, 1, 0), nil)
	s.Offer(op(2, 9, 1, 0), nil)
	if !s.Retract(2) {
		t.Error("retract of a pending operand must succeed")
	}
	if s.Retract(2) {
		t.Error("retract of a removed operand must fail")
	}
	// Reserved operands cannot be retracted: the merge is imminent.
	s.Reserve(9, 1)
	if s.Retract(1) {
		t.Error("retract of a reserved operand must fail")
	}
}

func TestOracleExactness(t *testing.T) {
	o := NewOracle()
	// Wrap-around addition must match uint64 arithmetic exactly.
	o.Add(1, ^uint64(0))
	o.Add(1, 2)
	o.Add(2, 5)
	if got := o.Sum(1); got != 1 {
		t.Errorf("sum(1) = %d, want wrap-around 1", got)
	}
	if o.Ops(1) != 2 || o.Ops(2) != 1 {
		t.Errorf("ops = %d/%d, want 2/1", o.Ops(1), o.Ops(2))
	}
	if !o.Complete(1, 1, 2) {
		t.Error("complete reduction not recognized")
	}
	if o.Complete(1, 1, 1) || o.Complete(1, 2, 2) {
		t.Error("incomplete/incorrect reduction accepted")
	}
	if err := o.Verify(1, 1, 2); err != nil {
		t.Errorf("verify: %v", err)
	}
	if err := o.Verify(1, 0, 2); err == nil {
		t.Error("verify must flag a wrong sum")
	}
	if err := o.Verify(1, 1, 3); err == nil {
		t.Error("verify must flag a wrong operand count")
	}
}

func TestMergePayloadExactness(t *testing.T) {
	f := &flit.Flit{PT: flit.Accumulate, Type: flit.Tail, SlotCap: 1}
	f.AddPayload(flit.Payload{ReduceID: 7, Value: ^uint64(0), Ops: 1})
	if !f.MergePayload(flit.Payload{ReduceID: 7, Value: 3, Ops: 1}) {
		t.Fatal("merge with matching reduce ID must succeed")
	}
	if f.MergePayload(flit.Payload{ReduceID: 8, Value: 1}) {
		t.Error("merge with foreign reduce ID must fail")
	}
	if got := f.Payloads[0].Value; got != 2 {
		t.Errorf("merged value = %d, want wrap-around 2", got)
	}
	if got := f.Payloads[0].Ops; got != 2 {
		t.Errorf("merged ops = %d, want 2", got)
	}
}

func TestReserveByDstIgnoresReduceID(t *testing.T) {
	s := NewStation(4)
	s.Offer(op(1, 9, 100, 10), nil)
	s.Offer(op(2, 9, 200, 20), nil)
	// Destination-only reservation (the gather path) picks the oldest
	// pending payload for the destination, whatever its reduction tag.
	e, ok := s.ReserveByDst(9)
	if !ok || e.Operand().Seq != 1 {
		t.Fatalf("ReserveByDst = %v,%v, want seq 1", e, ok)
	}
	if _, ok := s.ReserveByDst(7); ok {
		t.Error("ReserveByDst matched a foreign destination")
	}
	// The ID-matched reservation still works alongside.
	e2, ok := s.Reserve(9, 200)
	if !ok || e2.Operand().Seq != 2 {
		t.Fatalf("Reserve(9,200) = %v,%v, want seq 2", e2, ok)
	}
}
