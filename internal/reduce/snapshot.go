package reduce

import "gathernoc/internal/flit"

// EntrySnapshot is the serialized form of one station entry: the operand
// by value plus its reservation state. The ack callback is not serialized
// — every entry of a station is offered with the owning NIC's single ack
// function (gather or reduce), which the restoring network re-wires.
type EntrySnapshot struct {
	Operand  flit.Payload
	Reserved bool
}

// CaptureEntries serializes the station queue in order.
func (s *Station) CaptureEntries() []EntrySnapshot {
	if len(s.entries) == 0 {
		return nil
	}
	out := make([]EntrySnapshot, len(s.entries))
	for i, e := range s.entries {
		out[i] = EntrySnapshot{Operand: e.operand, Reserved: e.state == entryReserved}
	}
	return out
}

// RestoreEntries replaces the station queue with the captured entries,
// all acked through the given function (the owning NIC's handler, exactly
// as Offer would have wired them).
func (s *Station) RestoreEntries(entries []EntrySnapshot, ack AckFunc) {
	for _, e := range s.entries {
		s.recycle(e)
	}
	s.entries = s.entries[:0]
	for _, es := range entries {
		e, ok := s.spares.Get()
		if !ok {
			e = &Entry{}
		}
		e.operand = es.Operand
		e.state = entryPending
		if es.Reserved {
			e.state = entryReserved
		}
		e.ack = ack
		s.entries = append(s.entries, e)
	}
}

// EntryIndex returns e's position in the station queue, or -1 when e is
// not queued. Snapshots use it to encode a router's live entry pointers
// as stable indices.
func (s *Station) EntryIndex(e *Entry) int {
	for i, cur := range s.entries {
		if cur == e {
			return i
		}
	}
	return -1
}

// EntryAt returns the i-th queued entry (nil when out of range); the
// restore path re-links router-held entry pointers through it.
func (s *Station) EntryAt(i int) *Entry {
	if i < 0 || i >= len(s.entries) {
		return nil
	}
	return s.entries[i]
}
