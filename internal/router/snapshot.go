package router

import (
	"fmt"

	"gathernoc/internal/flit"
	"gathernoc/internal/reduce"
	"gathernoc/internal/topology"
)

// BranchSnapshot serializes one output branch of a packet holding an
// input VC. Destination sets are flattened to member lists; HasDsts and
// HasHeadMD distinguish an absent set (unicast branches) from a present
// one, since the two drive different code paths in flitForBranch.
type BranchSnapshot struct {
	Out       topology.Port
	HasDsts   bool
	Dsts      []topology.NodeID `json:",omitempty"`
	VC        int
	Sent      bool
	HasHeadMD bool
	HeadMD    []topology.NodeID `json:",omitempty"`
}

// VCSnapshot serializes one input virtual channel: buffered flits in
// order, pipeline stage, branch table, and the station entries the VC
// holds reservations on (encoded as queue indices; -1 = none).
type VCSnapshot struct {
	Flits       []flit.State `json:",omitempty"`
	Stage       uint8
	Wait        int
	Branches    []BranchSnapshot `json:",omitempty"`
	VCClass     int
	GatherEntry int
	ReduceEntry int
}

// OutputSnapshot serializes one connected output port's credit counters
// and downstream-VC ownership table. Unconnected ports serialize empty.
type OutputSnapshot struct {
	Credits   []int `json:",omitempty"`
	OwnerPort []int `json:",omitempty"`
	OwnerVC   []int `json:",omitempty"`
}

// State is the complete mutable state of one router. Wiring (links,
// routing function, stations' capacities) is rebuilt by construction;
// the occupancy counters (buffered/loads/vaPending/active) are derived
// and recomputed on restore.
type State struct {
	Inputs        [][]VCSnapshot
	Outputs       []OutputSnapshot
	GatherStation []reduce.EntrySnapshot `json:",omitempty"`
	ReduceStation []reduce.EntrySnapshot `json:",omitempty"`
	SAInputNext   []int
	SAOutputNext  []int
	Counters      Counters
}

// CaptureState serializes the router's mutable state.
func (r *Router) CaptureState() State {
	s := State{
		GatherStation: r.station.CaptureEntries(),
		ReduceStation: r.rstation.CaptureEntries(),
		Counters:      r.Counters,
	}
	s.Inputs = make([][]VCSnapshot, topology.NumPorts)
	s.Outputs = make([]OutputSnapshot, topology.NumPorts)
	s.SAInputNext = make([]int, topology.NumPorts)
	s.SAOutputNext = make([]int, topology.NumPorts)
	for p := 0; p < topology.NumPorts; p++ {
		s.SAInputNext[p] = r.saInputArb[p].next
		s.SAOutputNext[p] = r.saOutputArb[p].next
		vcs := make([]VCSnapshot, len(r.inputs[p]))
		for v := range r.inputs[p] {
			vc := &r.inputs[p][v]
			vs := VCSnapshot{
				Stage:       uint8(vc.stage),
				Wait:        vc.wait,
				VCClass:     vc.vcClass,
				GatherEntry: -1,
				ReduceEntry: -1,
			}
			for i := 0; i < vc.buf.Len(); i++ {
				vs.Flits = append(vs.Flits, flit.CaptureFlit(vc.buf.At(i)))
			}
			for i := range vc.branches {
				br := &vc.branches[i]
				bs := BranchSnapshot{Out: br.out, VC: br.vc, Sent: br.sent}
				if br.dsts != nil {
					bs.HasDsts = true
					bs.Dsts = br.dsts.Nodes()
				}
				if br.headMD != nil {
					bs.HasHeadMD = true
					bs.HeadMD = br.headMD.Nodes()
				}
				vs.Branches = append(vs.Branches, bs)
			}
			if vc.gatherLoad && vc.gatherEntry != nil {
				vs.GatherEntry = r.station.EntryIndex(vc.gatherEntry)
			}
			if vc.reduceLoad && vc.reduceEntry != nil {
				vs.ReduceEntry = r.rstation.EntryIndex(vc.reduceEntry)
			}
			vcs[v] = vs
		}
		s.Inputs[p] = vcs
		o := &r.outputs[p]
		if o.connected() {
			s.Outputs[p] = OutputSnapshot{
				Credits:   append([]int(nil), o.credits...),
				OwnerPort: append([]int(nil), o.ownerPort...),
				OwnerVC:   append([]int(nil), o.ownerVC...),
			}
		}
	}
	return s
}

// RestoreState replaces the router's mutable state with the captured
// one. Buffered flits materialize through pool; station entries are
// re-acked through the owning NIC's handlers; the VC-held entry pointers
// are re-linked by queue index. The derived occupancy counters are
// recomputed from the restored state.
func (r *Router) RestoreState(s State, pool *flit.Pool, numNodes int, gatherAck, reduceAck reduce.AckFunc) error {
	if len(s.Inputs) != topology.NumPorts || len(s.Outputs) != topology.NumPorts ||
		len(s.SAInputNext) != topology.NumPorts || len(s.SAOutputNext) != topology.NumPorts {
		return fmt.Errorf("router %d: snapshot shape mismatch", r.id)
	}
	r.station.RestoreEntries(s.GatherStation, gatherAck)
	r.rstation.RestoreEntries(s.ReduceStation, reduceAck)
	r.Counters = s.Counters
	r.buffered, r.loads, r.vaPending, r.active = 0, 0, 0, 0
	for p := 0; p < topology.NumPorts; p++ {
		if len(s.Inputs[p]) != len(r.inputs[p]) {
			return fmt.Errorf("router %d: snapshot has %d VCs on port %d, router has %d",
				r.id, len(s.Inputs[p]), p, len(r.inputs[p]))
		}
		r.saInputArb[p].next = s.SAInputNext[p]
		r.saOutputArb[p].next = s.SAOutputNext[p]
		for v := range r.inputs[p] {
			vc := &r.inputs[p][v]
			vs := s.Inputs[p][v]
			if len(vs.Flits) > r.cfg.BufferDepth {
				return fmt.Errorf("router %d: snapshot overfills input %d vc%d", r.id, p, v)
			}
			vc.buf.Reset()
			for _, fs := range vs.Flits {
				vc.buf.PushBack(fs.Materialize(pool, numNodes))
				r.buffered++
			}
			vc.stage = vcStage(vs.Stage)
			vc.wait = vs.Wait
			vc.vcClass = vs.VCClass
			vc.branches = vc.branches[:0]
			for _, bs := range vs.Branches {
				br := branchState{out: bs.Out, vc: bs.VC, sent: bs.Sent}
				if bs.HasDsts {
					br.dsts = topology.DestSetOf(numNodes, bs.Dsts...)
				}
				if bs.HasHeadMD {
					br.headMD = topology.DestSetOf(numNodes, bs.HeadMD...)
				}
				vc.branches = append(vc.branches, br)
			}
			vc.gatherLoad, vc.gatherEntry = false, nil
			if vs.GatherEntry >= 0 {
				e := r.station.EntryAt(vs.GatherEntry)
				if e == nil {
					return fmt.Errorf("router %d: snapshot gather entry %d out of range", r.id, vs.GatherEntry)
				}
				vc.gatherEntry = e
				vc.gatherLoad = true
				r.loads++
			}
			vc.reduceLoad, vc.reduceEntry = false, nil
			if vs.ReduceEntry >= 0 {
				e := r.rstation.EntryAt(vs.ReduceEntry)
				if e == nil {
					return fmt.Errorf("router %d: snapshot reduce entry %d out of range", r.id, vs.ReduceEntry)
				}
				vc.reduceEntry = e
				vc.reduceLoad = true
				r.loads++
			}
			switch vc.stage {
			case vcVA:
				r.vaPending++
			case vcActive:
				r.active++
			}
		}
		o := &r.outputs[p]
		if !o.connected() {
			continue
		}
		os := s.Outputs[p]
		if len(os.Credits) != len(o.credits) || len(os.OwnerPort) != len(o.ownerPort) || len(os.OwnerVC) != len(o.ownerVC) {
			return fmt.Errorf("router %d: snapshot output %d shape mismatch", r.id, p)
		}
		copy(o.credits, os.Credits)
		copy(o.ownerPort, os.OwnerPort)
		copy(o.ownerVC, os.OwnerVC)
	}
	return nil
}
