package router

import (
	"fmt"

	"gathernoc/internal/topology"
)

// CheckInvariants validates the router's internal consistency and returns
// the first violation found. It is intended for tests and debugging runs
// (call between cycles); a healthy router never violates these:
//
//   - input buffers never exceed the configured depth;
//   - credit counters stay within [0, downstream depth];
//   - an input VC past route computation has at least one branch;
//   - every downstream-VC ownership entry points back at an input VC that
//     actually holds that allocation;
//   - a raised gather or accumulate Load signal has a reserved station
//     entry;
//   - the incrementally maintained stage-occupancy counters (which let
//     Tick skip whole pipeline stages) agree with a full rescan.
func (r *Router) CheckInvariants() error {
	buffered, loads, vaPending, active := 0, 0, 0, 0
	for p := 0; p < topology.NumPorts; p++ {
		for v := range r.inputs[p] {
			vc := &r.inputs[p][v]
			buffered += vc.buf.Len()
			if vc.gatherLoad {
				loads++
			}
			if vc.reduceLoad {
				loads++
			}
			switch vc.stage {
			case vcVA:
				vaPending++
			case vcActive:
				active++
			}
			if vc.buf.Len() > r.cfg.BufferDepth {
				return fmt.Errorf("router %d: input %s vc%d holds %d flits (depth %d)",
					r.id, topology.Port(p), v, vc.buf.Len(), r.cfg.BufferDepth)
			}
			if (vc.stage == vcActive) && len(vc.branches) == 0 {
				return fmt.Errorf("router %d: input %s vc%d active without branches",
					r.id, topology.Port(p), v)
			}
			if vc.gatherLoad && vc.gatherEntry == nil {
				return fmt.Errorf("router %d: input %s vc%d load raised without reservation",
					r.id, topology.Port(p), v)
			}
			if vc.reduceLoad && vc.reduceEntry == nil {
				return fmt.Errorf("router %d: input %s vc%d reduce load raised without reservation",
					r.id, topology.Port(p), v)
			}
			head := vc.head()
			for bi := range vc.branches {
				br := &vc.branches[bi]
				if br.vc < 0 {
					continue
				}
				out := &r.outputs[br.out]
				if !out.connected() {
					return fmt.Errorf("router %d: branch to unconnected port %s", r.id, br.out)
				}
				// A branch that already forwarded the packet's tail has
				// released its downstream VC (per-branch wormhole
				// teardown) even while sibling branches are pending.
				if br.sent && head != nil && head.IsTail() {
					continue
				}
				if out.ownerPort[br.vc] != p || out.ownerVC[br.vc] != v {
					return fmt.Errorf("router %d: output %s vc%d owned by (%d,%d), branch claims (%d,%d)",
						r.id, br.out, br.vc, out.ownerPort[br.vc], out.ownerVC[br.vc], p, v)
				}
			}
		}
	}
	for p := 0; p < topology.NumPorts; p++ {
		out := &r.outputs[p]
		if !out.connected() {
			continue
		}
		for v, c := range out.credits {
			if c < 0 {
				return fmt.Errorf("router %d: output %s vc%d credit %d < 0",
					r.id, topology.Port(p), v, c)
			}
		}
		for v := range out.ownerPort {
			op, ov := out.ownerPort[v], out.ownerVC[v]
			if op < 0 {
				continue
			}
			vc := &r.inputs[op][ov]
			held := false
			for bi := range vc.branches {
				if vc.branches[bi].out == topology.Port(p) && vc.branches[bi].vc == v {
					held = true
				}
			}
			if !held {
				return fmt.Errorf("router %d: output %s vc%d allocated to (%d,%d) which does not hold it",
					r.id, topology.Port(p), v, op, ov)
			}
		}
	}
	if buffered != r.buffered || loads != r.loads || vaPending != r.vaPending || active != r.active {
		return fmt.Errorf("router %d: occupancy counters (buffered=%d loads=%d vaPending=%d active=%d) drifted from rescan (%d %d %d %d)",
			r.id, r.buffered, r.loads, r.vaPending, r.active, buffered, loads, vaPending, active)
	}
	return nil
}
