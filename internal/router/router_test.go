package router

import (
	"testing"

	"gathernoc/internal/flit"
	"gathernoc/internal/link"
	"gathernoc/internal/reduce"
	"gathernoc/internal/topology"
)

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		wantOK bool
	}{
		{"default", func(c *Config) {}, true},
		{"zero vcs", func(c *Config) { c.VCs = 0 }, false},
		{"zero depth", func(c *Config) { c.BufferDepth = 0 }, false},
		{"zero rc", func(c *Config) { c.RCDelay = 0 }, false},
		{"zero va", func(c *Config) { c.VADelay = 0 }, false},
		{"gather vc out of range", func(c *Config) { c.GatherVC = 4 }, false},
		{"gather vc in range", func(c *Config) { c.GatherVC = 3 }, true},
		{"vc classes zero value", func(c *Config) { c.VCClasses = 0 }, true},
		{"vc classes dateline", func(c *Config) { c.VCClasses = 2 }, true},
		{"vc classes exceed vcs", func(c *Config) { c.VCClasses = 5 }, false},
		{"vc classes negative", func(c *Config) { c.VCClasses = -1 }, false},
		{"vc classes vs gather vc", func(c *Config) { c.VCClasses = 2; c.GatherVC = 3 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			err := cfg.Validate()
			if (err == nil) != tt.wantOK {
				t.Errorf("Validate() err = %v, wantOK %v", err, tt.wantOK)
			}
		})
	}
}

// TestVCClassPartition pins the dateline VC partition arithmetic: with C
// classes over V VCs, VC v belongs to class v*C/V, each class non-empty.
func TestVCClassPartition(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VCClasses = 2
	r, err := New(0, cfg, func(topology.NodeID, *flit.Flit) Route { return Route{} })
	if err != nil {
		t.Fatal(err)
	}
	for vc, want := range []int{0, 0, 1, 1} {
		for class := 0; class < 2; class++ {
			got := r.vcAllowed(flit.Unicast, vc, cfg.VCs, class, true)
			if got != (class == want) {
				t.Errorf("vcAllowed(vc=%d, class=%d) = %v, want %v", vc, class, got, class == want)
			}
			// The ejection channel (datelined=false) is a dependency-graph
			// sink: no partition applies there even with VCClasses set.
			if !r.vcAllowed(flit.Unicast, vc, cfg.VCs, class, false) {
				t.Errorf("ejection vcAllowed(vc=%d, class=%d) = false", vc, class)
			}
		}
	}
	// Single-class configs ignore the partition entirely.
	cfg.VCClasses = 1
	r1, err := New(0, cfg, func(topology.NodeID, *flit.Flit) Route { return Route{} })
	if err != nil {
		t.Fatal(err)
	}
	for vc := 0; vc < cfg.VCs; vc++ {
		if !r1.vcAllowed(flit.Unicast, vc, cfg.VCs, 0, true) {
			t.Errorf("single-class vcAllowed(vc=%d) = false", vc)
		}
	}
}

func TestRRArbiterFairness(t *testing.T) {
	a := newRRArbiter(3)
	always := func(i int) bool { return true }
	got := []int{a.pick(always), a.pick(always), a.pick(always), a.pick(always)}
	want := []int{0, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grants = %v, want %v", got, want)
		}
	}
}

func TestRRArbiterSkipsNonRequesters(t *testing.T) {
	a := newRRArbiter(4)
	only2 := func(i int) bool { return i == 2 }
	if got := a.pick(only2); got != 2 {
		t.Fatalf("pick = %d, want 2", got)
	}
	if got := a.pick(func(i int) bool { return false }); got != -1 {
		t.Fatalf("pick = %d, want -1", got)
	}
	if got := newRRArbiter(0).pick(only2); got != -1 {
		t.Fatalf("empty arbiter pick = %d, want -1", got)
	}
}

func TestGatherStationLifecycle(t *testing.T) {
	// The gather payload station is the shared reduce.Station with
	// destination-only reservation; this pins the gather-facing contract
	// through the router's own API surface.
	s := reduce.NewStation(2)
	acked := 0
	p1 := flit.Payload{Seq: 1, Dst: 9}
	p2 := flit.Payload{Seq: 2, Dst: 9}
	if !s.Offer(p1, func(flit.Payload) { acked++ }) {
		t.Fatal("offer p1 failed")
	}
	if !s.Offer(p2, nil) {
		t.Fatal("offer p2 failed")
	}
	if s.Offer(flit.Payload{Seq: 3}, nil) {
		t.Fatal("offer beyond capacity accepted")
	}

	// Reservation matches on destination and is FIFO by age.
	if _, ok := s.ReserveByDst(8); ok {
		t.Fatal("reserved payload for wrong dst")
	}
	e, ok := s.ReserveByDst(9)
	if !ok || e.Operand().Seq != 1 {
		t.Fatalf("reserve = %+v, %v; want seq 1", e, ok)
	}

	// Reserved payloads cannot be retracted; pending ones can.
	if s.Retract(1) {
		t.Fatal("retracted a reserved payload")
	}
	if !s.Retract(2) {
		t.Fatal("failed to retract pending payload")
	}
	if s.Retract(2) {
		t.Fatal("double retract succeeded")
	}

	// Completion removes the entry and fires the ack.
	s.Complete(e)
	if acked != 1 {
		t.Fatalf("acks = %d, want 1", acked)
	}
	if s.Backlog() != 0 {
		t.Fatalf("backlog = %d, want 0", s.Backlog())
	}
}

func TestGatherStationRelease(t *testing.T) {
	s := reduce.NewStation(1)
	s.Offer(flit.Payload{Seq: 5, Dst: 3}, nil)
	e, _ := s.ReserveByDst(3)
	s.Release(e)
	if !s.Retract(5) {
		t.Fatal("released payload not retractable")
	}
}

// twoRouterHarness wires routerA's east port to routerB's west port and
// collects whatever B would forward to its local port, letting pipeline
// timing be asserted precisely without the full network.
type twoRouterHarness struct {
	a, b  *Router
	ab    *link.Link
	eject *link.Link
	got   []*flit.Flit
	cycle int64
}

type harnessSink struct{ h *twoRouterHarness }

func (s *harnessSink) AcceptFlit(f *flit.Flit, vc int) { s.h.got = append(s.h.got, f) }

func newTwoRouterHarness(t *testing.T, cfg Config) *twoRouterHarness {
	t.Helper()
	mesh := topology.MustMesh(1, 2)
	routeFn := func(cur topology.NodeID, f *flit.Flit) Route {
		return Route{Branches: []topology.MulticastBranch{{Out: mesh.XYRoute(cur, f.Dst)}}}
	}
	a, err := New(0, cfg, routeFn)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(1, cfg, routeFn)
	if err != nil {
		t.Fatal(err)
	}
	h := &twoRouterHarness{a: a, b: b}
	h.ab = link.New("ab", 1, b.InputSink(topology.WestPort), a.CreditSink(topology.EastPort))
	a.ConnectOutput(topology.EastPort, h.ab, cfg.VCs, cfg.BufferDepth)
	b.ConnectInput(topology.WestPort, h.ab)
	h.eject = link.New("bl", 1, &harnessSink{h}, b.CreditSink(topology.LocalPort))
	b.ConnectOutput(topology.LocalPort, h.eject, cfg.VCs, cfg.BufferDepth)
	return h
}

func (h *twoRouterHarness) step() {
	h.a.Tick(h.cycle)
	h.b.Tick(h.cycle)
	h.ab.Commit(h.cycle)
	h.eject.Commit(h.cycle)
	h.cycle++
}

// inject places a flit directly into A's local input buffer, as the
// injection link would.
func (h *twoRouterHarness) inject(f *flit.Flit, vc int) {
	h.a.InputSink(topology.LocalPort).AcceptFlit(f, vc)
}

func TestRouterPipelineLatency(t *testing.T) {
	cfg := DefaultConfig()
	h := newTwoRouterHarness(t, cfg)

	// A 2-flit unicast packet from node 0 to node 1.
	format := flit.MustFormat(flit.DefaultFlitBits, flit.DefaultPayloadBits, 2)
	flits, err := flit.Packetize(flit.Packet{ID: 1, PT: flit.Unicast, Src: 0, Dst: 1, Flits: 2}, format)
	if err != nil {
		t.Fatal(err)
	}
	h.inject(flits[0], 0)
	h.inject(flits[1], 0)

	headAt := int64(-1)
	tailAt := int64(-1)
	for h.cycle < 40 && tailAt < 0 {
		h.step()
		for _, f := range h.got {
			if f.Type == flit.Head && headAt < 0 {
				headAt = h.cycle
			}
			if f.Type == flit.Tail {
				tailAt = h.cycle
			}
		}
		h.got = h.got[:0]
	}
	if headAt < 0 || tailAt < 0 {
		t.Fatal("packet did not arrive")
	}
	// Head visible in A at cycle 0; per hop: RC(1)+VA(1)+SA/ST(1)+link(1)=4.
	// Two router traversals (A then B's ejection) deliver the head into the
	// local sink during commit of cycle 7, i.e. after step() with cycle 7.
	if headAt != 8 {
		t.Errorf("head delivered after cycle %d, want 8", headAt)
	}
	// Tail follows one cycle behind.
	if tailAt != headAt+1 {
		t.Errorf("tail at %d, want head+1 = %d", tailAt, headAt+1)
	}
}

func TestRouterGatherPickupInFlight(t *testing.T) {
	cfg := DefaultConfig()
	h := newTwoRouterHarness(t, cfg)
	format := flit.MustFormat(flit.DefaultFlitBits, flit.DefaultPayloadBits, 2)

	// Router B holds a payload for destination 1 (its own PE's result).
	uploaded := false
	if !h.b.OfferGatherPayload(flit.Payload{Seq: 7, Src: 1, Dst: 1, Value: 77},
		func(flit.Payload) { uploaded = true }) {
		t.Fatal("offer rejected")
	}

	// A gather packet from node 0 to node 1 with spare capacity.
	own := &flit.Payload{Seq: 1, Src: 0, Dst: 1, Value: 11}
	flits, err := flit.Packetize(flit.Packet{
		ID: 2, PT: flit.Gather, Src: 0, Dst: 1,
		Flits: format.GatherFlits(4), GatherCapacity: 4, Carried: own,
	}, format)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range flits {
		h.inject(f, 0)
	}

	var tail *flit.Flit
	for h.cycle < 60 && tail == nil {
		h.step()
		for _, f := range h.got {
			if f.IsTail() {
				tail = f
			}
		}
	}
	if tail == nil {
		t.Fatal("gather packet did not arrive")
	}
	if !uploaded {
		t.Error("payload at intermediate router was not uploaded")
	}
	if h.b.Counters.GatherUploads.Value() != 1 {
		t.Errorf("GatherUploads = %d, want 1", h.b.Counters.GatherUploads.Value())
	}
	// Both payloads must arrive: the initiator's and router B's.
	var values []uint64
	for _, f := range h.got {
		for _, p := range f.Payloads {
			values = append(values, p.Value)
		}
	}
	if len(values) != 2 {
		t.Fatalf("payloads delivered = %v, want 2 values", values)
	}
	seen := map[uint64]bool{}
	for _, v := range values {
		seen[v] = true
	}
	if !seen[11] || !seen[77] {
		t.Errorf("payload values = %v, want {11,77}", values)
	}
}

func TestRouterGatherSkipsFullPacket(t *testing.T) {
	cfg := DefaultConfig()
	h := newTwoRouterHarness(t, cfg)
	format := flit.MustFormat(flit.DefaultFlitBits, flit.DefaultPayloadBits, 2)

	uploaded := false
	h.b.OfferGatherPayload(flit.Payload{Seq: 9, Src: 1, Dst: 1, Value: 99},
		func(flit.Payload) { uploaded = true })

	// Capacity 1 gather packet already carrying its initiator's payload:
	// ASpace is 0 when it reaches B, so B must not reserve or upload.
	own := &flit.Payload{Seq: 1, Src: 0, Dst: 1, Value: 11}
	flits, err := flit.Packetize(flit.Packet{
		ID: 3, PT: flit.Gather, Src: 0, Dst: 1,
		Flits: format.GatherFlits(1), GatherCapacity: 1, Carried: own,
	}, format)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range flits {
		h.inject(f, 0)
	}
	for h.cycle < 60 {
		h.step()
	}
	if uploaded {
		t.Error("payload uploaded into a zero-ASpace packet")
	}
	if h.b.GatherBacklog() != 1 {
		t.Errorf("backlog = %d, want 1 (payload still waiting)", h.b.GatherBacklog())
	}
}

func TestRouterCountersAdvance(t *testing.T) {
	cfg := DefaultConfig()
	h := newTwoRouterHarness(t, cfg)
	format := flit.MustFormat(flit.DefaultFlitBits, flit.DefaultPayloadBits, 2)
	flits, _ := flit.Packetize(flit.Packet{ID: 1, PT: flit.Unicast, Src: 0, Dst: 1, Flits: 2}, format)
	for _, f := range flits {
		h.inject(f, 0)
	}
	for h.cycle < 20 {
		h.step()
	}
	c := &h.a.Counters
	if c.BufferWrites.Value() != 2 || c.BufferReads.Value() != 2 {
		t.Errorf("buffer writes/reads = %d/%d, want 2/2",
			c.BufferWrites.Value(), c.BufferReads.Value())
	}
	if c.RCComputations.Value() != 1 || c.VAAllocations.Value() != 1 {
		t.Errorf("RC/VA = %d/%d, want 1/1",
			c.RCComputations.Value(), c.VAAllocations.Value())
	}
	if c.Crossings.Value() != 2 {
		t.Errorf("Crossings = %d, want 2", c.Crossings.Value())
	}
}

func TestNewRouterRejectsBadInputs(t *testing.T) {
	if _, err := New(0, Config{}, nil); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := New(0, DefaultConfig(), nil); err == nil {
		t.Error("nil routing func accepted")
	}
}
