package router

import (
	"gathernoc/internal/flit"
	"gathernoc/internal/topology"
)

// AckFunc is invoked (synchronously, during the router tick) when a gather
// payload offered to the router has been uploaded into a passing gather
// packet. It corresponds to the ack path from the Gather Payload block back
// to the PE in Fig. 6.
type AckFunc func(p flit.Payload)

type stationState uint8

const (
	stationPending stationState = iota + 1
	stationReserved
)

type stationEntry struct {
	payload flit.Payload
	state   stationState
	ack     AckFunc
}

// gatherStation is the router-resident Gather Payload block of Fig. 6: it
// holds payloads handed over by the local PE, reserves them against passing
// gather headers (the Gather Load Generator of Fig. 3b), and uploads them
// into body/tail flits during those flits' idle RC/VA pipeline slots.
type gatherStation struct {
	entries []*stationEntry
	cap     int
}

func newGatherStation(capacity int) *gatherStation {
	if capacity < 1 {
		capacity = 1
	}
	return &gatherStation{cap: capacity}
}

// offer enqueues a payload, returning false when the station is full.
func (s *gatherStation) offer(p flit.Payload, ack AckFunc) bool {
	if len(s.entries) >= s.cap {
		return false
	}
	s.entries = append(s.entries, &stationEntry{payload: p, state: stationPending, ack: ack})
	return true
}

// reserve finds the oldest pending payload destined for dst, marks it
// reserved and returns it; ok is false when none matches. Reservation
// implements the Load signal of Algorithm 1: the passing packet's header
// has already had its ASpace decremented for this payload.
func (s *gatherStation) reserve(dst topology.NodeID) (*stationEntry, bool) {
	for _, e := range s.entries {
		if e.state == stationPending && e.payload.Dst == dst {
			e.state = stationReserved
			return e, true
		}
	}
	return nil, false
}

// release returns a reserved entry to pending; used when a gather packet's
// tail departed without the upload completing (defensive: the ASpace
// arithmetic should make this unreachable).
func (s *gatherStation) release(e *stationEntry) {
	e.state = stationPending
}

// complete removes an entry after its payload was uploaded and fires the
// ack callback.
func (s *gatherStation) complete(e *stationEntry) {
	for i, cur := range s.entries {
		if cur == e {
			s.entries = append(s.entries[:i], s.entries[i+1:]...)
			break
		}
	}
	if e.ack != nil {
		e.ack(e.payload)
	}
}

// retract removes a still-pending payload by sequence number, returning
// false when the payload is absent or already reserved by an in-flight
// packet. The NIC calls this on δ-timeout before initiating its own gather
// packet.
func (s *gatherStation) retract(seq uint64) bool {
	for i, e := range s.entries {
		if e.payload.Seq == seq {
			if e.state != stationPending {
				return false
			}
			s.entries = append(s.entries[:i], s.entries[i+1:]...)
			return true
		}
	}
	return false
}

// pendingLen reports how many payloads are waiting (any state).
func (s *gatherStation) pendingLen() int { return len(s.entries) }
