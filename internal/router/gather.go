package router

import "gathernoc/internal/reduce"

// AckFunc is invoked (synchronously, during the router tick) when a gather
// payload offered to the router has been uploaded into a passing gather
// packet, or an operand merged into a passing accumulate packet. It
// corresponds to the ack path from the Gather Payload block back to the PE
// in Fig. 6.
//
// The Gather Payload station itself is the same reservation state machine
// the accumulation subsystem uses (reserve against a passing header,
// upload/merge during idle pipeline slots, δ-retract recovery), so both
// protocols share reduce.Station: gather reservations match on destination
// only (Station.ReserveByDst), accumulate reservations additionally match
// the reduction ID (Station.Reserve).
type AckFunc = reduce.AckFunc
