package router

import (
	"testing"

	"gathernoc/internal/flit"
)

// packAccumulate builds an accumulate packet's flits for the two-router
// harness (nodes 0 and 1).
func packAccumulate(t *testing.T, budget int, reduceID uint64, own flit.Payload) []*flit.Flit {
	t.Helper()
	format := flit.MustFormat(flit.DefaultFlitBits, flit.DefaultPayloadBits, 2)
	flits, err := flit.Packetize(flit.Packet{
		ID: 10, PT: flit.Accumulate, Src: 0, Dst: 1,
		Flits: flit.AccumulateFlits, GatherCapacity: budget,
		ReduceID: reduceID, Carried: &own,
	}, format)
	if err != nil {
		t.Fatal(err)
	}
	return flits
}

// TestRouterAccumulateMergeInFlight drives an accumulate packet past a
// router holding a matching operand: the operand must fold into the
// packet's accumulator, exactly once, with the packet length unchanged.
func TestRouterAccumulateMergeInFlight(t *testing.T) {
	cfg := DefaultConfig()
	h := newTwoRouterHarness(t, cfg)

	merged := false
	if !h.b.OfferReduceOperand(flit.Payload{Seq: 7, Src: 1, Dst: 1, ReduceID: 5, Value: 30, Ops: 1},
		func(flit.Payload) { merged = true }) {
		t.Fatal("offer rejected")
	}

	for _, f := range packAccumulate(t, 8, 5, flit.Payload{Seq: 1, Src: 0, Dst: 1, Value: 12, Ops: 1}) {
		h.inject(f, 0)
	}

	var tail *flit.Flit
	for h.cycle < 60 && tail == nil {
		h.step()
		for _, f := range h.got {
			if f.IsTail() {
				tail = f
			}
		}
	}
	if tail == nil {
		t.Fatal("accumulate packet did not arrive")
	}
	if !merged {
		t.Error("operand at intermediate router was not merged")
	}
	if got := h.b.Counters.ReduceMerges.Value(); got != 1 {
		t.Errorf("ReduceMerges = %d, want 1", got)
	}
	if got := h.b.Counters.ReduceReserves.Value(); got != 1 {
		t.Errorf("ReduceReserves = %d, want 1", got)
	}
	if len(tail.Payloads) != 1 {
		t.Fatalf("accumulator carries %d payloads, want 1", len(tail.Payloads))
	}
	acc := tail.Payloads[0]
	if acc.Value != 42 || acc.Ops != 2 {
		t.Errorf("accumulator = value %d ops %d, want 42/2", acc.Value, acc.Ops)
	}
	if h.b.ReduceBacklog() != 0 {
		t.Errorf("station backlog = %d after merge, want 0", h.b.ReduceBacklog())
	}
}

// TestRouterAccumulateSkipsForeignReduceID pins the isolation property: an
// operand of a different reduction must not be reserved or merged.
func TestRouterAccumulateSkipsForeignReduceID(t *testing.T) {
	cfg := DefaultConfig()
	h := newTwoRouterHarness(t, cfg)

	h.b.OfferReduceOperand(flit.Payload{Seq: 7, Src: 1, Dst: 1, ReduceID: 99, Value: 30, Ops: 1}, nil)
	for _, f := range packAccumulate(t, 8, 5, flit.Payload{Seq: 1, Src: 0, Dst: 1, Value: 12, Ops: 1}) {
		h.inject(f, 0)
	}

	var tail *flit.Flit
	for h.cycle < 60 && tail == nil {
		h.step()
		for _, f := range h.got {
			if f.IsTail() {
				tail = f
			}
		}
	}
	if tail == nil {
		t.Fatal("accumulate packet did not arrive")
	}
	if got := h.b.Counters.ReduceReserves.Value(); got != 0 {
		t.Errorf("ReduceReserves = %d, want 0 for a foreign reduction", got)
	}
	if acc := tail.Payloads[0]; acc.Value != 12 || acc.Ops != 1 {
		t.Errorf("accumulator = value %d ops %d, must stay 12/1", acc.Value, acc.Ops)
	}
	if h.b.ReduceBacklog() != 1 {
		t.Errorf("station backlog = %d, operand must remain queued", h.b.ReduceBacklog())
	}
	// The untouched operand is retractable (the δ path would recover it).
	if !h.b.RetractReduceOperand(7) {
		t.Error("retract of the skipped operand failed")
	}
}

// TestRouterAccumulateBudgetExhausted pins ASpace accounting: with the
// merge budget consumed by the initiator's own operand, a passing packet
// must not reserve or merge anything.
func TestRouterAccumulateBudgetExhausted(t *testing.T) {
	cfg := DefaultConfig()
	h := newTwoRouterHarness(t, cfg)

	h.b.OfferReduceOperand(flit.Payload{Seq: 7, Src: 1, Dst: 1, ReduceID: 5, Value: 30, Ops: 1}, nil)
	// Budget 1: the initiator's own operand uses it up (ASpace = 0).
	for _, f := range packAccumulate(t, 1, 5, flit.Payload{Seq: 1, Src: 0, Dst: 1, Value: 12, Ops: 1}) {
		h.inject(f, 0)
	}

	var tail *flit.Flit
	for h.cycle < 60 && tail == nil {
		h.step()
		for _, f := range h.got {
			if f.IsTail() {
				tail = f
			}
		}
	}
	if tail == nil {
		t.Fatal("accumulate packet did not arrive")
	}
	if got := h.b.Counters.ReduceMerges.Value(); got != 0 {
		t.Errorf("ReduceMerges = %d, want 0 with exhausted budget", got)
	}
	if acc := tail.Payloads[0]; acc.Value != 12 || acc.Ops != 1 {
		t.Errorf("accumulator = value %d ops %d, must stay 12/1", acc.Value, acc.Ops)
	}
}

func TestReduceQueueCapDefault(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.ReduceQueueCap != 4 {
		t.Errorf("ReduceQueueCap default = %d, want 4", cfg.ReduceQueueCap)
	}
}
