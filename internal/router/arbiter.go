package router

// rrArbiter is a round-robin arbiter over n requesters. It is the
// allocation primitive behind the VA and SA stages; keeping explicit
// rotation state makes every simulation replay deterministically.
type rrArbiter struct {
	n    int
	next int
}

func newRRArbiter(n int) *rrArbiter {
	return &rrArbiter{n: n}
}

// pick returns the first index i, scanning round-robin from the last
// grant, for which want(i) is true, advancing the rotation past the
// winner. It returns -1 when nothing is requesting.
func (a *rrArbiter) pick(want func(i int) bool) int {
	if a.n == 0 {
		return -1
	}
	for off := 0; off < a.n; off++ {
		i := (a.next + off) % a.n
		if want(i) {
			a.next = (i + 1) % a.n
			return i
		}
	}
	return -1
}
