package router

import (
	"strings"
	"testing"

	"gathernoc/internal/flit"
	"gathernoc/internal/topology"
)

func TestCheckInvariantsHealthyPipeline(t *testing.T) {
	cfg := DefaultConfig()
	h := newTwoRouterHarness(t, cfg)
	format := flit.MustFormat(flit.DefaultFlitBits, flit.DefaultPayloadBits, 2)
	flits, err := flit.Packetize(flit.Packet{ID: 1, PT: flit.Unicast, Src: 0, Dst: 1, Flits: 3}, format)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range flits {
		h.inject(f, 0)
	}
	for h.cycle < 30 {
		h.step()
		for _, r := range []*Router{h.a, h.b} {
			if err := r.CheckInvariants(); err != nil {
				t.Fatalf("cycle %d: %v", h.cycle, err)
			}
		}
	}
}

func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	cfg := DefaultConfig()
	h := newTwoRouterHarness(t, cfg)

	// Corrupt a credit counter directly.
	h.a.outputs[topology.EastPort].credits[0] = -1
	err := h.a.CheckInvariants()
	if err == nil || !strings.Contains(err.Error(), "credit") {
		t.Errorf("negative credit not detected: %v", err)
	}
	h.a.outputs[topology.EastPort].credits[0] = 0

	// Raise a gather load without a reservation.
	h.a.inputs[topology.LocalPort][0].gatherLoad = true
	err = h.a.CheckInvariants()
	if err == nil || !strings.Contains(err.Error(), "load") {
		t.Errorf("dangling load not detected: %v", err)
	}
	h.a.inputs[topology.LocalPort][0].gatherLoad = false

	// Claim ownership pointing at an input VC that holds nothing.
	h.a.outputs[topology.EastPort].ownerPort[1] = 0
	h.a.outputs[topology.EastPort].ownerVC[1] = 0
	err = h.a.CheckInvariants()
	if err == nil || !strings.Contains(err.Error(), "does not hold") {
		t.Errorf("orphan ownership not detected: %v", err)
	}
}
