// Package router implements the virtual-channel wormhole router of
// Sec. IV of the paper: a Fig. 5 pipeline (route computation, VC
// allocation, switch allocation, switch traversal) with credit-based flow
// control, round-robin separable allocators, multicast-tree forking, and
// the gather extensions — the Gather Load Generator and Gather Payload
// blocks of Fig. 6 that let a passing gather packet pick up the local PE's
// partial-sum payload with zero added pipeline latency (the upload uses the
// body/tail flits' idle RC/VA stage slots).
//
// The router is fabric-agnostic: route computation delegates to a
// RoutingFunc the network layer builds from its topology.Routing, and the
// Route it returns carries the output ports (deterministic branches or
// adaptive alternatives) plus the dateline VC class torus routing needs
// (Config.VCClasses, DESIGN.md §7).
package router

import (
	"fmt"

	"gathernoc/internal/flit"
	"gathernoc/internal/link"
	"gathernoc/internal/reduce"
	"gathernoc/internal/ring"
	"gathernoc/internal/sim"
	"gathernoc/internal/stats"
	"gathernoc/internal/telemetry"
	"gathernoc/internal/topology"
)

// Config holds the microarchitectural parameters of one router. The zero
// value is not valid; use DefaultConfig as a base.
type Config struct {
	// VCs is the number of virtual channels per input port (Table I: 4).
	VCs int
	// BufferDepth is the per-VC buffer depth in flits (Table I: 4).
	BufferDepth int
	// RCDelay and VADelay are the route-computation and VC-allocation
	// stage occupancies in cycles (>= 1 each). With 1/1 the per-hop header
	// latency is RC+VA+SA/ST+link = 4 cycles, the κ that reproduces the
	// paper's Table II estimates.
	RCDelay int
	VADelay int
	// GatherVC, when >= 0, dedicates that VC index to gather and
	// accumulate packets: collective packets allocate only it and other
	// traffic never does. This is the mitigation sketched in the paper's
	// conclusion for δ timeouts under mixed traffic. -1 disables the
	// reservation.
	GatherVC int
	// GatherQueueCap bounds the Gather Payload station queue (>= 1).
	GatherQueueCap int
	// ReduceQueueCap bounds the accumulation station queue (>= 1), the
	// INA sibling of GatherQueueCap.
	ReduceQueueCap int
	// VCClasses partitions the virtual channels into dateline classes for
	// deadlock-free torus routing: a packet whose Route carries VCClass k
	// may only allocate downstream VCs of class k (VC v belongs to class
	// v*VCClasses/VCs). 0 or 1 disables the partition — every VC is one
	// class, the mesh configuration, where schedules are bit-identical to
	// the pre-partition router. Must not exceed VCs, and is mutually
	// exclusive with GatherVC (a VC cannot be reserved for collectives and
	// pinned to a dateline class at once).
	VCClasses int
}

// DefaultConfig returns the Table I router configuration.
func DefaultConfig() Config {
	return Config{
		VCs:            4,
		BufferDepth:    4,
		RCDelay:        1,
		VADelay:        1,
		GatherVC:       -1,
		GatherQueueCap: 4,
		ReduceQueueCap: 4,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.VCs < 1:
		return fmt.Errorf("router: VCs must be >= 1, got %d", c.VCs)
	case c.BufferDepth < 1:
		return fmt.Errorf("router: BufferDepth must be >= 1, got %d", c.BufferDepth)
	case c.RCDelay < 1 || c.VADelay < 1:
		return fmt.Errorf("router: stage delays must be >= 1, got RC=%d VA=%d", c.RCDelay, c.VADelay)
	case c.GatherVC >= c.VCs:
		return fmt.Errorf("router: GatherVC %d out of range (VCs=%d)", c.GatherVC, c.VCs)
	case c.VCClasses < 0 || c.VCClasses > c.VCs:
		return fmt.Errorf("router: VCClasses %d out of range (VCs=%d)", c.VCClasses, c.VCs)
	case c.VCClasses > 1 && c.GatherVC >= 0:
		return fmt.Errorf("router: GatherVC %d incompatible with VCClasses %d (a VC cannot serve both policies)", c.GatherVC, c.VCClasses)
	}
	return nil
}

// Route describes where a flit leaves the router: one branch for unicast
// and gather packets, one or more for multicast, with LocalPort used for
// ejection to the attached NIC or edge sink.
//
// For adaptive routing algorithms, Adaptive lists alternative productive
// output ports for a single-destination packet; the router then selects
// the alternative with the most downstream credit at route-computation
// time (deterministic: ties break toward the earlier entry) and ignores
// Branches.
//
// VCClass is the dateline virtual-channel class the hop must allocate its
// downstream VC from (see Config.VCClasses and topology.Routing.VCClass);
// it is 0 for every mesh routing and for multicast trees.
type Route struct {
	Branches []topology.MulticastBranch
	Adaptive []topology.Port
	VCClass  int
}

// RoutingFunc computes the Route for a packet's head flit at node cur. The
// network layer supplies it, which lets the fabric extend node addressing
// beyond the raw mesh (e.g. global-buffer sinks past the east edge).
type RoutingFunc func(cur topology.NodeID, f *flit.Flit) Route

// Counters are the router's activity counts; the power model derives
// dynamic energy from them.
type Counters struct {
	BufferWrites   stats.Counter
	BufferReads    stats.Counter
	RCComputations stats.Counter
	VAAllocations  stats.Counter
	SAGrants       stats.Counter
	Crossings      stats.Counter // crossbar traversals (one per staged flit copy)
	GatherUploads  stats.Counter
	GatherReserves stats.Counter
	ReduceMerges   stats.Counter // operands folded into passing accumulate packets
	ReduceReserves stats.Counter
}

type vcStage uint8

const (
	vcIdle vcStage = iota
	vcRC
	vcVA
	vcActive
)

// branchState tracks one output branch of the packet currently holding an
// input VC.
type branchState struct {
	out    topology.Port
	dsts   *topology.DestSet // multicast subset forwarded on this branch
	vc     int               // allocated downstream VC (-1 until VA)
	sent   bool              // current head-of-buffer flit already copied here
	headMD *topology.DestSet // MDst for the head copy on this branch
}

type inputVC struct {
	buf   ring.Ring[*flit.Flit] // fixed capacity BufferDepth, never grows
	stage vcStage
	wait  int // remaining cycles in the current multi-cycle stage

	branches []branchState
	vcClass  int // dateline class of the packet's current hop (VA restriction)

	// Gather Load Generator state (Fig. 3b / Algorithm 1).
	gatherLoad  bool
	gatherEntry *reduce.Entry

	// Accumulation load state: the local operand reserved against the
	// accumulate packet currently holding this VC (INA merge path).
	reduceLoad  bool
	reduceEntry *reduce.Entry
}

func (v *inputVC) head() *flit.Flit {
	if v.buf.Empty() {
		return nil
	}
	return v.buf.Front()
}

type outputPort struct {
	link    *link.Link
	credits []int // per downstream VC
	// owner[vc] identifies the (inPort, inVC) currently holding the
	// downstream VC; -1 when free.
	ownerPort []int
	ownerVC   []int
}

func (o *outputPort) connected() bool { return o.link != nil }

func (o *outputPort) vcFree(vc int) bool { return o.ownerPort[vc] < 0 }

// Router is one mesh node's switch. It is a phase-1 (tick) component; its
// outgoing links are the matching phase-2 components.
type Router struct {
	id    topology.NodeID
	cfg   Config
	route RoutingFunc

	inputs  [topology.NumPorts][]inputVC
	inLinks [topology.NumPorts]*link.Link // reverse channels for credit return
	outputs [topology.NumPorts]outputPort

	station  *reduce.Station // gather payloads
	rstation *reduce.Station // accumulate operands
	pool     *flit.Pool      // multicast fork copies; forked originals return here

	saInputArb  [topology.NumPorts]*rrArbiter // per input port, across its VCs
	saOutputArb [topology.NumPorts]*rrArbiter // per output port, across input-port candidates

	wake *sim.Handle // engine wake-up, armed on flit/credit arrival

	// probe, when non-nil, records sampled pipeline-stage events for the
	// flit-lifecycle tracer. Every hook is behind a nil-check, so the
	// telemetry-off path does no extra work (DESIGN.md §11).
	probe *telemetry.Probe

	// Stage occupancy counters, maintained incrementally so Tick can skip
	// whole pipeline stages (and Idle can answer) in O(1) instead of
	// scanning every (port, VC) ring. They never influence *what* a stage
	// does — only whether a stage that would be a pure no-op runs at all —
	// so schedules are bit-identical with the scanning implementation.
	buffered  int // flits held across all input VC buffers
	loads     int // raised gather/accumulate Load signals awaiting upload
	vaPending int // input VCs in the vcVA stage
	active    int // input VCs in the vcActive stage

	// Counters is exported for the power model and reports.
	Counters Counters
}

// New constructs a router for node id using the given routing function.
func New(id topology.NodeID, cfg Config, routeFn RoutingFunc) (*Router, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if routeFn == nil {
		return nil, fmt.Errorf("router %d: nil routing function", id)
	}
	r := &Router{id: id, cfg: cfg, route: routeFn}
	for p := 0; p < topology.NumPorts; p++ {
		// The VC buffer rings stay zero-valued and grow to BufferDepth on
		// first use; acceptFlit bounds occupancy before every push, so
		// they never grow past the configured depth (modulo the ring's
		// power-of-two rounding) and idle VCs cost no backing array.
		r.inputs[p] = make([]inputVC, cfg.VCs)
		r.saInputArb[p] = newRRArbiter(cfg.VCs)
		r.saOutputArb[p] = newRRArbiter(topology.NumPorts)
	}
	r.station = reduce.NewStation(cfg.GatherQueueCap)
	r.rstation = reduce.NewStation(cfg.ReduceQueueCap)
	return r, nil
}

// ID returns the node this router serves.
func (r *Router) ID() topology.NodeID { return r.id }

// SetWake attaches the engine wake handle; flit and credit arrivals arm it
// so a sleeping router is re-evaluated. Routers work without one (nil
// handles ignore Wake), which standalone unit tests rely on.
func (r *Router) SetWake(h *sim.Handle) { r.wake = h }

// SetFlitPool attaches the network's flit pool: multicast fork copies are
// acquired from it and forked originals released back. Routers work
// without one (a nil pool falls back to the garbage collector).
func (r *Router) SetFlitPool(p *flit.Pool) { r.pool = p }

// SetTelemetry attaches the owning shard's telemetry probe (nil disables
// tracing; the default).
func (r *Router) SetTelemetry(p *telemetry.Probe) { r.probe = p }

// MaxVCOccupancy returns the deepest input VC buffer in flits — the
// congestion gauge the telemetry epoch collector snapshots alongside the
// total occupancy.
func (r *Router) MaxVCOccupancy() int {
	m := 0
	for p := 0; p < topology.NumPorts; p++ {
		for v := range r.inputs[p] {
			if n := r.inputs[p][v].buf.Len(); n > m {
				m = n
			}
		}
	}
	return m
}

// Idle implements sim.Idler: with every input buffer empty the router's
// tick is a pure no-op (stages only act on buffered flits, the SA arbiters
// only rotate past a winner, and the VA rotation is derived from the cycle
// number), so the engine may skip the router until a flit or credit
// arrives. Buffer occupancy is counted incrementally, so the check is O(1).
func (r *Router) Idle() bool { return r.buffered == 0 }

// ConnectOutput attaches l as the outgoing channel on port p; downstreamDepth
// is the buffer depth of the receiving input VCs (credit initialization).
func (r *Router) ConnectOutput(p topology.Port, l *link.Link, downstreamVCs, downstreamDepth int) {
	o := &r.outputs[p]
	o.link = l
	o.credits = make([]int, downstreamVCs)
	o.ownerPort = make([]int, downstreamVCs)
	o.ownerVC = make([]int, downstreamVCs)
	for v := 0; v < downstreamVCs; v++ {
		o.credits[v] = downstreamDepth
		o.ownerPort[v] = -1
		o.ownerVC[v] = -1
	}
}

// ConnectInput records the reverse channel used to return credits for
// flits consumed from input port p.
func (r *Router) ConnectInput(p topology.Port, reverse *link.Link) {
	r.inLinks[p] = reverse
}

// InputSink returns a link.FlitSink delivering into input port p.
func (r *Router) InputSink(p topology.Port) link.FlitSink {
	return &portSink{r: r, port: p}
}

// CreditSink returns a link.CreditSink crediting output port p.
func (r *Router) CreditSink(p topology.Port) link.CreditSink {
	return &portCredit{r: r, port: p}
}

type portSink struct {
	r    *Router
	port topology.Port
}

func (s *portSink) AcceptFlit(f *flit.Flit, vc int) { s.r.acceptFlit(s.port, f, vc) }

type portCredit struct {
	r    *Router
	port topology.Port
}

func (s *portCredit) AcceptCredit(vc int) { s.r.acceptCredit(s.port, vc) }

func (r *Router) acceptFlit(p topology.Port, f *flit.Flit, vc int) {
	in := &r.inputs[p][vc]
	if in.buf.Len() >= r.cfg.BufferDepth {
		// Credit-protocol violation: upstream sent into a full buffer.
		// This is an internal simulator bug, not a runtime condition.
		panic(fmt.Sprintf("router %d: input %s vc%d overflow (%s)", r.id, p, vc, f))
	}
	in.buf.PushBack(f)
	r.buffered++
	f.Hops++
	r.Counters.BufferWrites.Inc()
	r.wake.Wake()
}

func (r *Router) acceptCredit(p topology.Port, vc int) {
	o := &r.outputs[p]
	if vc < len(o.credits) {
		o.credits[vc]++
	}
	r.wake.Wake()
}

// OfferGatherPayload hands the local PE's payload to the Gather Payload
// station; ack fires when a passing gather packet picked it up. It returns
// false when the station queue is full.
func (r *Router) OfferGatherPayload(p flit.Payload, ack AckFunc) bool {
	return r.station.Offer(p, ack)
}

// RetractGatherPayload removes a not-yet-reserved payload from the station
// (δ-timeout path). It returns false when the payload is gone or already
// reserved by an in-flight packet.
func (r *Router) RetractGatherPayload(seq uint64) bool {
	return r.station.Retract(seq)
}

// GatherBacklog reports how many payloads sit in the station.
func (r *Router) GatherBacklog() int { return r.station.Backlog() }

// OfferReduceOperand hands the local PE's partial-sum operand to the
// accumulation station; ack fires when a passing accumulate packet merged
// it. It returns false when the station queue is full.
func (r *Router) OfferReduceOperand(op flit.Payload, ack reduce.AckFunc) bool {
	return r.rstation.Offer(op, ack)
}

// RetractReduceOperand removes a not-yet-reserved operand from the
// accumulation station (δ-timeout path). It returns false when the operand
// is gone or already reserved by an in-flight packet.
func (r *Router) RetractReduceOperand(seq uint64) bool {
	return r.rstation.Retract(seq)
}

// ReduceBacklog reports how many operands sit in the accumulation station.
func (r *Router) ReduceBacklog() int { return r.rstation.Backlog() }

// BufferedFlits reports the total flits currently held in input buffers;
// the network layer uses it for drain detection.
func (r *Router) BufferedFlits() int { return r.buffered }

// Tick advances the router by one cycle. Stages run in reverse pipeline
// order (gather upload, SA/ST, VA, RC) so a flit progresses through at most
// one stage per cycle.
//
// An idle router's tick is a pure no-op (the Idle contract the sleep/wake
// engine already relies on), so it returns immediately; a busy router runs
// only the stages with work, using the occupancy counters: a stage whose
// skip condition holds would touch nothing (the SA arbiters only rotate
// past a winner and the VA rotation is derived from the cycle number), so
// eliding it changes no schedule.
func (r *Router) Tick(cycle int64) {
	if r.buffered == 0 {
		return
	}
	if r.loads > 0 {
		r.gatherUploadStage(cycle)
	}
	if r.active > 0 {
		r.switchStage(cycle)
	}
	if r.vaPending > 0 {
		r.vaStage(cycle)
	}
	r.rcStage(cycle)
}

// gatherUploadStage writes reserved payloads into head-of-buffer body/tail
// flits of loaded gather packets, and folds reserved operands into
// head-of-buffer accumulate flits (the INA merge). Per Sec. IV this reuses
// the RC/VA slots that body flits leave idle, so it costs no extra cycles:
// the upload or merge happens while the flit waits for switch allocation.
func (r *Router) gatherUploadStage(cycle int64) {
	for p := 0; p < topology.NumPorts; p++ {
		for v := range r.inputs[p] {
			vc := &r.inputs[p][v]
			if vc.gatherLoad && vc.gatherEntry != nil {
				f := vc.head()
				if f != nil && f.PT == flit.Gather && !f.Type.IsHead() &&
					f.AddPayload(vc.gatherEntry.Operand()) {
					r.station.Complete(vc.gatherEntry)
					r.Counters.GatherUploads.Inc()
					if r.probe != nil && r.probe.Sampled(f.PacketID) {
						r.probe.Emit(telemetry.Event{Cycle: cycle, Kind: telemetry.EvGatherUpload,
							Packet: f.PacketID, Tag: f.Tag, Loc: int32(r.id), Aux: int64(f.Payloads[len(f.Payloads)-1].Src)})
					}
					vc.gatherEntry = nil
					vc.gatherLoad = false
					r.loads--
				}
			}
			if vc.reduceLoad && vc.reduceEntry != nil {
				f := vc.head()
				if f != nil && f.PT == flit.Accumulate && !f.Type.IsHead() &&
					f.MergePayload(vc.reduceEntry.Operand()) {
					r.rstation.Complete(vc.reduceEntry)
					r.Counters.ReduceMerges.Inc()
					if r.probe != nil && r.probe.Sampled(f.PacketID) {
						r.probe.Emit(telemetry.Event{Cycle: cycle, Kind: telemetry.EvReduceMerge,
							Packet: f.PacketID, Tag: f.Tag, Loc: int32(r.id), Aux: int64(vc.reduceEntry.Operand().Src)})
					}
					vc.reduceEntry = nil
					vc.reduceLoad = false
					r.loads--
				}
			}
		}
	}
}

// rcStage starts and completes route computation for heads of newly
// arrived packets, and runs the Gather Load Generator on gather headers
// (Algorithm 1, lines 1-4).
func (r *Router) rcStage(cycle int64) {
	for p := 0; p < topology.NumPorts; p++ {
		for v := range r.inputs[p] {
			vc := &r.inputs[p][v]
			switch vc.stage {
			case vcIdle:
				f := vc.head()
				if f == nil || !f.IsHead() {
					continue
				}
				vc.stage = vcRC
				vc.wait = r.cfg.RCDelay - 1
				if vc.wait == 0 {
					r.completeRC(vc, cycle)
				}
			case vcRC:
				if vc.wait > 0 {
					vc.wait--
				}
				if vc.wait == 0 {
					r.completeRC(vc, cycle)
				}
			}
		}
	}
}

func (r *Router) completeRC(vc *inputVC, cycle int64) {
	f := vc.head()
	rt := r.route(r.id, f)
	vc.vcClass = rt.VCClass
	vc.branches = vc.branches[:0]
	if len(rt.Adaptive) > 0 {
		vc.branches = append(vc.branches, branchState{out: r.pickAdaptive(rt.Adaptive), vc: -1})
	} else {
		for _, br := range rt.Branches {
			bs := branchState{out: br.Out, dsts: br.Dsts, vc: -1}
			if f.PT == flit.Multicast {
				bs.headMD = br.Dsts
			}
			vc.branches = append(vc.branches, bs)
		}
	}
	r.Counters.RCComputations.Inc()
	if r.probe != nil && r.probe.Sampled(f.PacketID) {
		r.probe.Emit(telemetry.Event{Cycle: cycle, Kind: telemetry.EvRC,
			Packet: f.PacketID, Tag: f.Tag, Loc: int32(r.id)})
	}

	// Gather Load Generator: reserve the local payload against this packet
	// and decrement ASpace in the header (Fig. 3b). The paper splits the
	// load-signal generation (RC stage) and the ASpace update (VA stage);
	// both are internal to the head's pipeline transit, so we apply them
	// together at RC completion with identical external timing.
	if f.PT == flit.Gather && f.IsHead() && f.ASpace >= 1 {
		if e, ok := r.station.ReserveByDst(f.Dst); ok {
			f.ASpace--
			vc.gatherLoad = true
			vc.gatherEntry = e
			r.loads++
			r.Counters.GatherReserves.Inc()
		}
	}

	// Accumulation load: reserve the local operand against a passing
	// accumulate header with merge budget left, decrementing ASpace —
	// the INA twin of the Gather Load Generator, with the reservation
	// additionally matched on the packet's reduction ID.
	if f.PT == flit.Accumulate && f.IsHead() && f.ASpace >= 1 {
		if e, ok := r.rstation.Reserve(f.Dst, f.ReduceID); ok {
			f.ASpace--
			vc.reduceLoad = true
			vc.reduceEntry = e
			r.loads++
			r.Counters.ReduceReserves.Inc()
		}
	}

	vc.stage = vcVA
	vc.wait = r.cfg.VADelay - 1
	r.vaPending++
}

// vaStage allocates downstream VCs to packets that completed RC. Multicast
// packets must secure a VC on every branch before activating; partial
// allocations persist across cycles.
//
// The (port,vc) scan rotation advances once per cycle for fairness. It is
// derived from the cycle number rather than stored, which keeps an idle
// router's tick stateless — a prerequisite for sleep/wake scheduling to be
// bit-identical with the always-tick engine.
func (r *Router) vaStage(cycle int64) {
	nv := r.cfg.VCs
	total := topology.NumPorts * nv
	start := int(cycle % int64(total))
	p := start / nv
	v := start - p*nv
	// pending snapshots the vcVA population; no VC enters the stage during
	// this pass (only rcStage, which runs later, promotes into it), so the
	// scan may stop once every pending VC has been visited.
	pending := r.vaPending
	for off := 0; off < total && pending > 0; off++ {
		cp, cv := p, v
		vc := &r.inputs[cp][cv]
		v++
		if v == nv {
			v = 0
			p++
			if p == topology.NumPorts {
				p = 0
			}
		}
		if vc.stage != vcVA {
			continue
		}
		pending--
		if vc.wait > 0 {
			vc.wait--
			continue
		}
		f := vc.head()
		if f == nil {
			continue
		}
		done := true
		for i := range vc.branches {
			br := &vc.branches[i]
			if br.vc >= 0 {
				continue
			}
			out := &r.outputs[br.out]
			if !out.connected() {
				panic(fmt.Sprintf("router %d: route to unconnected port %s for %s", r.id, br.out, f))
			}
			alloc := -1
			for dv := 0; dv < len(out.credits); dv++ {
				if !r.vcAllowed(f.PT, dv, len(out.credits), vc.vcClass, br.out != topology.LocalPort) {
					continue
				}
				if out.vcFree(dv) {
					alloc = dv
					break
				}
			}
			if alloc < 0 {
				done = false
				continue
			}
			out.ownerPort[alloc] = cp
			out.ownerVC[alloc] = cv
			br.vc = alloc
			r.Counters.VAAllocations.Inc()
		}
		if done {
			vc.stage = vcActive
			r.vaPending--
			r.active++
			if r.probe != nil && f.IsHead() && r.probe.Sampled(f.PacketID) {
				r.probe.Emit(telemetry.Event{Cycle: cycle, Kind: telemetry.EvVA,
					Packet: f.PacketID, Tag: f.Tag, Loc: int32(r.id)})
			}
		}
	}
}

// pickAdaptive selects the productive port with the most downstream
// credit; ties break toward the earlier alternative, keeping the
// simulation deterministic.
func (r *Router) pickAdaptive(alts []topology.Port) topology.Port {
	best := alts[0]
	bestCredit := -1
	for _, p := range alts {
		out := &r.outputs[p]
		if !out.connected() {
			continue
		}
		total := 0
		for _, c := range out.credits {
			total += c
		}
		if total > bestCredit {
			best = p
			bestCredit = total
		}
	}
	return best
}

// vcAllowed applies the downstream-VC policies for a channel with nVCs
// virtual channels. With VCClasses > 1 the VCs are partitioned into
// dateline classes and the packet may only allocate within class (the
// torus deadlock-avoidance scheme); otherwise the dedicated-collective-VC
// policy applies: gather and accumulate packets share the reserved VC,
// all other traffic keeps off it. The two policies are mutually exclusive
// (Config.Validate).
//
// datelined is false for the ejection channel (the LocalPort output):
// ejectors drain unconditionally, so ejection channels are pure sinks of
// the dependency graph and need no class partition — restricting them
// would halve ejection parallelism on the torus for nothing.
func (r *Router) vcAllowed(pt flit.PacketType, vc, nVCs, class int, datelined bool) bool {
	if c := r.cfg.VCClasses; c > 1 && datelined {
		return vc*c/nVCs == class
	}
	g := r.cfg.GatherVC
	if g < 0 || g >= nVCs {
		return true
	}
	if pt == flit.Gather || pt == flit.Accumulate {
		return vc == g
	}
	return vc != g
}

// switchStage performs switch allocation and traversal: per input port one
// candidate VC (round-robin), per output port one grant (round-robin);
// granted flits are copied onto their branch links and retired once every
// branch has been served.
func (r *Router) switchStage(cycle int64) {
	// Input arbitration: one candidate VC per input port. The round-robin
	// scans are inlined (no closure indirection — this is the hottest loop
	// in the simulator) but advance the arbiters exactly as rrArbiter.pick
	// would, so grant rotations replay identically.
	var candidate [topology.NumPorts]int
	for p := 0; p < topology.NumPorts; p++ {
		candidate[p] = -1
		arb := r.saInputArb[p]
		in := r.inputs[p]
		idx := arb.next
		for off := 0; off < arb.n; off++ {
			if idx >= arb.n {
				idx -= arb.n
			}
			if r.vcReady(&in[idx]) {
				arb.next = idx + 1
				if arb.next == arb.n {
					arb.next = 0
				}
				candidate[p] = idx
				break
			}
			idx++
		}
	}

	// Output arbitration: for each output port, grant one requesting input.
	type grant struct {
		inPort int
		inVC   int
		branch int
	}
	var grants [topology.NumPorts]grant
	nGrants := 0
	for out := 0; out < topology.NumPorts; out++ {
		o := &r.outputs[out]
		if !o.connected() {
			continue
		}
		arb := r.saOutputArb[out]
		idx := arb.next
		for off := 0; off < arb.n; off++ {
			if idx >= arb.n {
				idx -= arb.n
			}
			if v := candidate[idx]; v >= 0 {
				if bi := r.branchRequesting(&r.inputs[idx][v], topology.Port(out)); bi >= 0 {
					arb.next = idx + 1
					if arb.next == arb.n {
						arb.next = 0
					}
					grants[nGrants] = grant{inPort: idx, inVC: v, branch: bi}
					nGrants++
					r.Counters.SAGrants.Inc()
					break
				}
			}
			idx++
		}
	}

	// Switch traversal: copy flits onto links, then retire fully-served
	// flits. touched records input VCs that sent at least one copy this
	// cycle (a multicast flit may win several output ports at once); it is
	// iterated in input-port order to keep the simulation deterministic.
	var touched [topology.NumPorts]int
	for p := range touched {
		touched[p] = -1
	}
	for _, g := range grants[:nGrants] {
		vc := &r.inputs[g.inPort][g.inVC]
		f := vc.head()
		br := &vc.branches[g.branch]
		out := &r.outputs[br.out]

		copyF := r.flitForBranch(f, br, len(vc.branches) > 1)
		out.link.Send(copyF, br.vc, cycle)
		out.credits[br.vc]--
		if out.credits[br.vc] < 0 {
			panic(fmt.Sprintf("router %d: negative credit on %s vc%d", r.id, br.out, br.vc))
		}
		br.sent = true
		r.Counters.Crossings.Inc()
		if r.probe != nil && f.IsHead() && r.probe.Sampled(f.PacketID) {
			r.probe.Emit(telemetry.Event{Cycle: cycle, Kind: telemetry.EvSA,
				Packet: f.PacketID, Tag: f.Tag, Loc: int32(r.id), Aux: int64(br.out)})
		}

		if f.IsTail() || f.Type == flit.HeadTail {
			// Free the downstream VC at this branch once its copy of the
			// tail has departed.
			out.ownerPort[br.vc] = -1
			out.ownerVC[br.vc] = -1
		}
		touched[g.inPort] = g.inVC
	}

	for p, v := range touched {
		if v < 0 {
			continue
		}
		vc := &r.inputs[p][v]
		if !r.allBranchesSent(vc) {
			continue
		}
		f := vc.buf.PopFront()
		r.buffered--
		forked := len(vc.branches) > 1
		r.Counters.BufferReads.Inc()
		if r.inLinks[p] != nil {
			r.inLinks[p].ReturnCredit(v, cycle)
		}
		for i := range vc.branches {
			vc.branches[i].sent = false
		}
		if f.IsTail() {
			if vc.gatherLoad {
				if vc.gatherEntry != nil {
					// The packet left before the upload could complete;
					// return the payload so the δ-timeout can recover it.
					r.station.Release(vc.gatherEntry)
					vc.gatherEntry = nil
				}
				vc.gatherLoad = false
				r.loads--
			}
			if vc.reduceLoad {
				if vc.reduceEntry != nil {
					r.rstation.Release(vc.reduceEntry)
					vc.reduceEntry = nil
				}
				vc.reduceLoad = false
				r.loads--
			}
			vc.branches = vc.branches[:0]
			vc.stage = vcIdle
			r.active--
		}
		if forked {
			// Forked packets sent pool copies on every branch; the
			// original retires here without ever leaving the router.
			// Released last: Release resets the flit.
			r.pool.Release(f)
		}
	}
}

// vcReady reports whether the input VC has a flit that can move this
// cycle: it is active and at least one unserved branch has downstream
// credit.
func (r *Router) vcReady(vc *inputVC) bool {
	if vc.stage != vcActive || vc.buf.Empty() {
		return false
	}
	for i := range vc.branches {
		br := &vc.branches[i]
		if !br.sent && r.outputs[br.out].credits[br.vc] > 0 {
			return true
		}
	}
	return false
}

// branchRequesting returns the index of the unserved credited branch of vc
// aimed at out, or -1.
func (r *Router) branchRequesting(vc *inputVC, out topology.Port) int {
	if vc.stage != vcActive || vc.buf.Empty() {
		return -1
	}
	for i := range vc.branches {
		br := &vc.branches[i]
		if br.out == out && !br.sent && r.outputs[br.out].credits[br.vc] > 0 {
			return i
		}
	}
	return -1
}

// allBranchesSent reports whether the head flit has been copied to every
// branch.
func (r *Router) allBranchesSent(vc *inputVC) bool {
	if len(vc.branches) == 0 {
		return false
	}
	for i := range vc.branches {
		if !vc.branches[i].sent {
			return false
		}
	}
	return true
}

// flitForBranch returns the flit instance to send on a branch: the original
// for single-branch packets, a copy (with the branch's MDst subset on head
// flits) when the packet forks.
func (r *Router) flitForBranch(f *flit.Flit, br *branchState, fork bool) *flit.Flit {
	if !fork {
		if f.IsHead() && f.PT == flit.Multicast && br.headMD != nil {
			f.MDst = br.headMD
		}
		return f
	}
	c := r.pool.Acquire()
	payloads := append(c.Payloads[:0], f.Payloads...)
	*c = *f
	c.Payloads = payloads
	if c.IsHead() && c.PT == flit.Multicast {
		c.MDst = br.headMD
	}
	return c
}
