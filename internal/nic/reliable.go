package nic

import (
	"gathernoc/internal/flit"
	"gathernoc/internal/telemetry"
)

// reliableEntry tracks one payload the NIC has pushed into the fabric but
// not yet seen confirmed by the reliability hub: the payload itself (so a
// retransmission can rebuild the packet), the workload tag it was sent
// under, its retransmission deadline and how many retries it has burned.
type reliableEntry struct {
	payload  flit.Payload
	tag      flit.Tag
	deadline int64
	attempt  int
}

// reliableTable is a NIC's end-to-end reliability state (DESIGN.md §12):
// every payload entering the fabric from this node is tracked by its
// run-unique Seq until an ejector confirms delivery; entries that outlive
// their deadline are retransmitted as plain unicast payloads with capped
// exponential backoff, and abandoned after maxRetries so a permanently
// partitioned destination leaves the NIC quiet (for the stall watchdog)
// instead of retrying forever.
//
// All mutation happens either in the NIC's tick (track, sweep) or in the
// serial sub-phase (Confirm via the reliability hub), so the table has one
// writer per engine phase and its behavior is shard-count-invariant.
type reliableTable struct {
	entries []reliableEntry
	index   map[uint64]int // payload Seq -> entries slot

	base       int64 // base timeout in cycles
	backoffCap int   // max doublings
	maxRetries int   // retransmissions before abandonment
}

// EnableReliability switches on end-to-end payload tracking with the given
// base retransmission timeout, backoff doubling cap and retry bound (see
// fault.Config). Call once at wiring time, before traffic.
func (n *NIC) EnableReliability(timeout int64, backoffCap, maxRetries int) {
	n.reliable = &reliableTable{
		index:      make(map[uint64]int),
		base:       timeout,
		backoffCap: backoffCap,
		maxRetries: maxRetries,
	}
}

// ReliablePending reports payloads tracked but not yet confirmed
// delivered (or abandoned).
func (n *NIC) ReliablePending() int {
	if n.reliable == nil {
		return 0
	}
	return len(n.reliable.entries)
}

// SetTelemetry attaches a lifecycle-trace probe for retransmission events.
// The probe must belong to the shard that ticks this NIC.
func (n *NIC) SetTelemetry(p *telemetry.Probe) { n.probe = p }

// track registers a payload entering the fabric. Idempotent by Seq: a
// retransmission re-enters the send paths but must keep its entry's
// attempt count and deadline.
func (n *NIC) track(p flit.Payload) {
	rt := n.reliable
	if _, ok := rt.index[p.Seq]; ok {
		return
	}
	rt.index[p.Seq] = len(rt.entries)
	rt.entries = append(rt.entries, reliableEntry{
		payload:  p,
		tag:      n.tag,
		deadline: n.currentCycle() + rt.base,
	})
	n.wake.Wake()
}

// ConfirmDelivery removes the tracked entry for a delivered payload.
// Called by the network's reliability hub on the serial sub-phase; a Seq
// with no entry (already confirmed, abandoned, or delivered on first try
// before any retransmit — confirmations are idempotent) is ignored.
func (n *NIC) ConfirmDelivery(seq uint64) {
	rt := n.reliable
	if rt == nil {
		return
	}
	i, ok := rt.index[seq]
	if !ok {
		return
	}
	rt.removeAt(i)
}

// removeAt deletes the entry in slot i by swapping the last entry in,
// keeping the index map consistent. Sweep order changes deterministically
// (the same way at every shard count), which is all equivalence needs.
func (rt *reliableTable) removeAt(i int) {
	last := len(rt.entries) - 1
	delete(rt.index, rt.entries[i].payload.Seq)
	if i != last {
		rt.entries[i] = rt.entries[last]
		rt.index[rt.entries[i].payload.Seq] = i
	}
	rt.entries = rt.entries[:last]
}

// sweepReliable fires retransmissions for entries past their deadline.
// Whatever transport carried the original (unicast, gather piggyback, INA
// merge), the retransmission is a plain unicast payload: after a loss the
// collective path is suspect, so the NIC degrades to the PR 2 reduce-δ
// unicast scheme — the reduction stays oracle-exact because the ejector
// delivers each Seq exactly once no matter which copy arrives.
func (n *NIC) sweepReliable() {
	rt := n.reliable
	if rt == nil || len(rt.entries) == 0 {
		return
	}
	for i := 0; i < len(rt.entries); i++ {
		en := &rt.entries[i]
		if n.now < en.deadline {
			continue
		}
		if en.attempt >= rt.maxRetries {
			n.AbandonedPayloads.Inc()
			rt.removeAt(i)
			i--
			continue
		}
		en.attempt++
		shift := en.attempt
		if shift > rt.backoffCap {
			shift = rt.backoffCap
		}
		en.deadline = n.now + rt.base<<shift
		payload, tag := en.payload, en.tag
		cur := n.tag
		n.tag = tag
		pid := n.SendUnicastPayload(payload.Dst, payload)
		n.tag = cur
		n.Retransmits.Inc()
		if n.probe != nil && n.probe.Sampled(pid) {
			n.probe.Emit(telemetry.Event{Cycle: n.now, Kind: telemetry.EvRetransmit,
				Packet: pid, Tag: tag, Loc: int32(n.id), Aux: int64(payload.Seq)})
		}
	}
}
