package nic

import (
	"fmt"

	"gathernoc/internal/flit"
	"gathernoc/internal/link"
	"gathernoc/internal/sim"
	"gathernoc/internal/stats"
	"gathernoc/internal/topology"
)

// ReceivedPacket is a fully reassembled packet delivered at an ejection
// point (a PE's NIC or a global-buffer edge sink).
type ReceivedPacket struct {
	// ID is the network-unique packet id.
	ID uint64
	// PT is the packet type.
	PT flit.PacketType
	// Src is the injecting node; Dst the addressed destination.
	Src topology.NodeID
	Dst topology.NodeID
	// Flits is the packet length.
	Flits int
	// Payloads are the gather payloads collected by the packet (gather
	// packets only), in upload order.
	Payloads []flit.Payload
	// InjectCycle is when the packet entered its source injection queue;
	// NetworkCycle is when its head flit left the NIC into the router;
	// HeadArrival/TailArrival are the ejection-side timestamps. Packet
	// latency is TailArrival - InjectCycle.
	InjectCycle  int64
	NetworkCycle int64
	HeadArrival  int64
	TailArrival  int64
	// Hops is the number of routers the head flit traversed (source
	// router included; minimal routing yields Manhattan distance + 1).
	Hops int
}

// Latency returns the end-to-end packet latency in cycles.
func (p *ReceivedPacket) Latency() int64 { return p.TailArrival - p.InjectCycle }

// QueueLatency returns the source-side queueing delay: the cycles between
// entering the injection queue and the head flit entering the network.
func (p *ReceivedPacket) QueueLatency() int64 { return p.NetworkCycle - p.InjectCycle }

// NetworkLatency returns the in-network portion of the latency: head
// injection to tail ejection.
func (p *ReceivedPacket) NetworkLatency() int64 { return p.TailArrival - p.NetworkCycle }

type partialPacket struct {
	flits       []*flit.Flit
	headArrival int64
}

// Ejector is the receive side of an ejection point: per-VC buffers fed by
// the router's local output link, a bounded drain rate, credit return, and
// packet reassembly. Both NICs and global-buffer edge sinks embed one.
type Ejector struct {
	name      string
	vcs       int
	depth     int
	drainRate int

	bufs    [][]*flit.Flit
	reverse *link.Link // credits back to the router's output port
	partial map[uint64]*partialPacket
	recv    func(*ReceivedPacket)
	drainRR int
	wake    *sim.Handle // wakes the owning ticker (NIC or edge sink)

	// packetOverhead stalls the drain for this many cycles after every
	// completed packet, modeling a per-packet write transaction at the
	// receiving buffer. The global-buffer sinks use it (see
	// noc.Config.SinkPacketOverhead); PE NICs default to 0.
	packetOverhead int64
	pausedUntil    int64

	// FlitsEjected counts drained flits; PacketsEjected completed packets.
	FlitsEjected   stats.Counter
	PacketsEjected stats.Counter
	// PacketLatency samples end-to-end packet latencies in cycles.
	PacketLatency stats.Sample
}

// NewEjector returns an ejector with vcs virtual channels of the given
// buffer depth, draining up to drainRate flits per cycle (minimum 1).
func NewEjector(name string, vcs, depth, drainRate int) *Ejector {
	if drainRate < 1 {
		drainRate = 1
	}
	e := &Ejector{
		name:      name,
		vcs:       vcs,
		depth:     depth,
		drainRate: drainRate,
		bufs:      make([][]*flit.Flit, vcs),
		partial:   make(map[uint64]*partialPacket),
	}
	return e
}

// ConnectReverse sets the link used to return credits to the router.
func (e *Ejector) ConnectReverse(l *link.Link) { e.reverse = l }

// SetWake attaches the wake handle of the ticker that drains this ejector
// (the owning NIC or edge sink); flit deliveries arm it.
func (e *Ejector) SetWake(h *sim.Handle) { e.wake = h }

// SetPacketOverhead configures the per-packet transaction stall in cycles
// (negative values are ignored).
func (e *Ejector) SetPacketOverhead(cycles int64) {
	if cycles >= 0 {
		e.packetOverhead = cycles
	}
}

// OnReceive registers the completed-packet callback.
func (e *Ejector) OnReceive(fn func(*ReceivedPacket)) { e.recv = fn }

// AcceptFlit implements link.FlitSink.
func (e *Ejector) AcceptFlit(f *flit.Flit, vc int) {
	if len(e.bufs[vc]) >= e.depth {
		panic(fmt.Sprintf("ejector %s: vc%d overflow (%s)", e.name, vc, f))
	}
	e.bufs[vc] = append(e.bufs[vc], f)
	e.wake.Wake()
}

// Buffered reports the flits currently waiting to drain.
func (e *Ejector) Buffered() int {
	n := 0
	for _, b := range e.bufs {
		n += len(b)
	}
	return n
}

// PendingPackets reports partially reassembled packets.
func (e *Ejector) PendingPackets() int { return len(e.partial) }

// Tick drains up to drainRate flits round-robin across VCs, returning one
// credit per drained flit and completing packets on tail arrival. After a
// packet completes, the drain stalls for the configured per-packet
// transaction overhead.
func (e *Ejector) Tick(cycle int64) {
	if cycle < e.pausedUntil {
		return
	}
	for slot := 0; slot < e.drainRate; slot++ {
		drained := false
		for off := 0; off < e.vcs; off++ {
			vc := (e.drainRR + off) % e.vcs
			if len(e.bufs[vc]) == 0 {
				continue
			}
			f := e.bufs[vc][0]
			e.bufs[vc] = e.bufs[vc][1:]
			e.drainRR = (vc + 1) % e.vcs
			if e.reverse != nil {
				e.reverse.ReturnCredit(vc, cycle)
			}
			e.FlitsEjected.Inc()
			isTail := f.IsTail()
			e.assemble(f, cycle)
			if isTail && e.packetOverhead > 0 {
				e.pausedUntil = cycle + 1 + e.packetOverhead
				return
			}
			drained = true
			break
		}
		if !drained {
			return
		}
	}
}

func (e *Ejector) assemble(f *flit.Flit, cycle int64) {
	pp, ok := e.partial[f.PacketID]
	if !ok {
		pp = &partialPacket{headArrival: cycle}
		e.partial[f.PacketID] = pp
	}
	pp.flits = append(pp.flits, f)
	if !f.IsTail() {
		return
	}
	delete(e.partial, f.PacketID)
	head := pp.flits[0]
	rp := &ReceivedPacket{
		ID:           f.PacketID,
		PT:           head.PT,
		Src:          head.Src,
		Dst:          head.Dst,
		Flits:        head.PacketFlits,
		InjectCycle:  head.InjectCycle,
		NetworkCycle: head.NetworkCycle,
		HeadArrival:  pp.headArrival,
		TailArrival:  cycle,
		Hops:         head.Hops,
	}
	for _, fl := range pp.flits {
		rp.Payloads = append(rp.Payloads, fl.Payloads...)
	}
	e.PacketsEjected.Inc()
	e.PacketLatency.Observe(float64(rp.Latency()))
	if e.recv != nil {
		e.recv(rp)
	}
}
