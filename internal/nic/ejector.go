package nic

import (
	"fmt"

	"gathernoc/internal/flit"
	"gathernoc/internal/link"
	"gathernoc/internal/ring"
	"gathernoc/internal/sim"
	"gathernoc/internal/stats"
	"gathernoc/internal/telemetry"
	"gathernoc/internal/topology"
)

// ReceivedPacket is a fully reassembled packet delivered at an ejection
// point (a PE's NIC or a global-buffer edge sink).
//
// Ownership: the packet passed to an OnReceive callback is owned by the
// ejector and valid only for the duration of the callback — the record
// and its Payloads slice are scratch storage reused for the next packet.
// Callbacks that keep the packet (or its payloads) past their return must
// Clone it.
type ReceivedPacket struct {
	// ID is the network-unique packet id.
	ID uint64
	// Tag is the workload job/phase the packet belongs to (zero for
	// untagged traffic); workload schedulers dispatch on it.
	Tag flit.Tag
	// PT is the packet type.
	PT flit.PacketType
	// Src is the injecting node; Dst the addressed destination.
	Src topology.NodeID
	Dst topology.NodeID
	// At is the node where the packet ejected: the receiving NIC's node id
	// or the sink's virtual id. For unicast traffic it equals Dst, but a
	// multicast packet is reassembled once per destination and Dst says
	// nothing about which copy this is — collective drivers dispatch
	// per-node broadcast receipts on At.
	At topology.NodeID
	// Flits is the packet length.
	Flits int
	// Payloads are the gather payloads collected by the packet (gather
	// packets only), in upload order.
	Payloads []flit.Payload
	// InjectCycle is when the packet entered its source injection queue;
	// NetworkCycle is when its head flit left the NIC into the router;
	// HeadArrival/TailArrival are the ejection-side timestamps. Packet
	// latency is TailArrival - InjectCycle.
	InjectCycle  int64
	NetworkCycle int64
	HeadArrival  int64
	TailArrival  int64
	// Hops is the number of routers the head flit traversed (source
	// router included; minimal routing yields Manhattan distance + 1).
	Hops int
}

// Latency returns the end-to-end packet latency in cycles.
func (p *ReceivedPacket) Latency() int64 { return p.TailArrival - p.InjectCycle }

// QueueLatency returns the source-side queueing delay: the cycles between
// entering the injection queue and the head flit entering the network.
func (p *ReceivedPacket) QueueLatency() int64 { return p.NetworkCycle - p.InjectCycle }

// NetworkLatency returns the in-network portion of the latency: head
// injection to tail ejection.
func (p *ReceivedPacket) NetworkLatency() int64 { return p.TailArrival - p.NetworkCycle }

// Clone returns a deep copy of the packet (payloads included) that stays
// valid after the OnReceive callback returns.
func (p *ReceivedPacket) Clone() *ReceivedPacket {
	c := *p
	if len(p.Payloads) > 0 {
		c.Payloads = append([]flit.Payload(nil), p.Payloads...)
	}
	return &c
}

// partialPacket accumulates one packet under reassembly. The head flit's
// routing and timing fields are copied in on arrival and each flit's
// payloads appended, so the flits themselves are released back to the
// pool immediately instead of being held until the tail shows up.
type partialPacket struct {
	id           uint64
	tag          flit.Tag
	pt           flit.PacketType
	src          topology.NodeID
	dst          topology.NodeID
	flits        int
	injectCycle  int64
	networkCycle int64
	hops         int
	headArrival  int64
	corrupted    bool           // any flit arrived fault-corrupted
	payloads     []flit.Payload // backing array reused across packets
}

// DeliveredPayload records one exactly-once payload delivery at an
// ejection point: the payload's run-unique Seq and its source NIC. The
// network's reliability hub drains these each cycle (serial sub-phase)
// and confirms the matching retransmission-table entries — the simulator's
// zero-cycle model of an end-to-end acknowledgment channel.
type DeliveredPayload struct {
	Seq uint64
	Src topology.NodeID
}

// Ejector is the receive side of an ejection point: per-VC buffers fed by
// the router's local output link, a bounded drain rate, credit return, and
// packet reassembly. Both NICs and global-buffer edge sinks embed one.
type Ejector struct {
	name      string
	owner     topology.NodeID
	vcs       int
	depth     int
	drainRate int

	bufs    []ring.Ring[*flit.Flit]
	reverse *link.Link // credits back to the router's output port
	// partial holds the packets under reassembly. Wormhole switching
	// pins a packet to one VC from head to tail, so at most vcs packets
	// are ever open at once and a linear scan beats a map. Finished
	// records park on the spares freelist, payload capacity intact.
	partial []*partialPacket
	spares  ring.FreeList[*partialPacket]
	scratch ReceivedPacket // handed to recv, reused per packet
	pool    *flit.Pool     // drained flits return here
	recv    func(*ReceivedPacket)
	drainRR int
	wake    *sim.Handle // wakes the owning ticker (NIC or edge sink)

	probe    *telemetry.Probe
	probeLoc int32 // this ejection point's node id in trace events

	// packetOverhead stalls the drain for this many cycles after every
	// completed packet, modeling a per-packet write transaction at the
	// receiving buffer. The global-buffer sinks use it (see
	// noc.Config.SinkPacketOverhead); PE NICs default to 0.
	packetOverhead int64
	pausedUntil    int64

	// Staged delivery (sharded engines): instead of firing recv inside
	// Tick — which runs concurrently across shards while the callbacks
	// mutate shared driver state — completed packets are parked here and
	// replayed by DispatchStaged in the serial sub-phase, in the exact
	// order the sequential engine would have fired them. Payloads are
	// copied into the stagedPay arena (slices would dangle once the
	// partial record is recycled); both slices are reused across cycles.
	staged    bool
	stagedPkt []stagedPacket
	stagedPay []flit.Payload

	// Fault awareness (SetFaultAware; nil/false on fault-free fabrics).
	// seen records every payload Seq ever delivered here, so a slow
	// original arriving after its retransmission (or vice versa) is
	// suppressed — the exactly-once guarantee the reduction oracles
	// depend on. delivered stages the cycle's confirmations for the
	// reliability hub (DrainDelivered).
	seen      map[uint64]struct{}
	delivered []DeliveredPayload

	// FlitsEjected counts drained flits; PacketsEjected completed packets.
	FlitsEjected   stats.Counter
	PacketsEjected stats.Counter
	// PacketLatency samples end-to-end packet latencies in cycles.
	PacketLatency stats.Sample
	// PacketsDiscarded counts reassembled packets dropped by the receiver
	// CRC model (a fault corrupted at least one flit); DuplicatesSuppressed
	// counts payloads filtered by exactly-once dedup.
	PacketsDiscarded     stats.Counter
	DuplicatesSuppressed stats.Counter
}

// stagedPacket is one completed packet awaiting serial-phase dispatch.
// Payloads are recorded as an offset/length into the ejector's stagedPay
// arena, not a slice: the arena's backing array may move as later packets
// append to it within the same cycle.
type stagedPacket struct {
	pkt            ReceivedPacket // Payloads nil; filled at dispatch
	payOff, payLen int
}

// NewEjector returns an ejector with vcs virtual channels of the given
// buffer depth, draining up to drainRate flits per cycle (minimum 1).
func NewEjector(name string, vcs, depth, drainRate int) *Ejector {
	if drainRate < 1 {
		drainRate = 1
	}
	// The per-VC rings stay zero-valued and grow to the buffer depth on
	// first delivery (AcceptFlit bounds occupancy first), so unused VCs
	// cost no backing array.
	return &Ejector{
		name:      name,
		vcs:       vcs,
		depth:     depth,
		drainRate: drainRate,
		bufs:      make([]ring.Ring[*flit.Flit], vcs),
	}
}

// SetOwner records the node id of the ejection point (the NIC's node or
// the sink's virtual id), stamped onto every ReceivedPacket's At field.
func (e *Ejector) SetOwner(id topology.NodeID) { e.owner = id }

// ConnectReverse sets the link used to return credits to the router.
func (e *Ejector) ConnectReverse(l *link.Link) { e.reverse = l }

// SetWake attaches the wake handle of the ticker that drains this ejector
// (the owning NIC or edge sink); flit deliveries arm it.
func (e *Ejector) SetWake(h *sim.Handle) { e.wake = h }

// SetFlitPool attaches the network's flit pool; drained flits are released
// into it once their payloads and header fields have been absorbed. A nil
// pool (standalone tests) leaves flits to the garbage collector.
func (e *Ejector) SetFlitPool(p *flit.Pool) { e.pool = p }

// SetTelemetry attaches a lifecycle-trace probe; loc is the node id this
// ejection point reports on its events. On tail arrival the ejector emits
// the packet's full endpoint timeline (inject/network/head/eject) from the
// timestamps the flits carried, so injection needs no hook of its own.
func (e *Ejector) SetTelemetry(p *telemetry.Probe, loc int) {
	e.probe = p
	e.probeLoc = int32(loc)
}

// SetPacketOverhead configures the per-packet transaction stall in cycles
// (negative values are ignored).
func (e *Ejector) SetPacketOverhead(cycles int64) {
	if cycles >= 0 {
		e.packetOverhead = cycles
	}
}

// OnReceive registers the completed-packet callback. The *ReceivedPacket
// argument is only valid during the callback; see ReceivedPacket.
func (e *Ejector) OnReceive(fn func(*ReceivedPacket)) { e.recv = fn }

// SetFaultAware switches on the receive-side recovery machinery:
// corrupted packets are discarded on reassembly (the CRC model) and
// payload deliveries are deduplicated by Seq and staged as confirmations
// for the reliability hub. Off (the default) none of its state exists and
// the assemble path is unchanged.
func (e *Ejector) SetFaultAware() {
	if e.seen == nil {
		e.seen = make(map[uint64]struct{})
	}
}

// DrainDelivered hands every payload delivery confirmed since the last
// drain to fn, in delivery order, and clears the staging list. Called by
// the network's reliability hub on the serial sub-phase.
func (e *Ejector) DrainDelivered(fn func(DeliveredPayload)) {
	for _, d := range e.delivered {
		fn(d)
	}
	e.delivered = e.delivered[:0]
}

// AcceptFlit implements link.FlitSink.
func (e *Ejector) AcceptFlit(f *flit.Flit, vc int) {
	if e.bufs[vc].Len() >= e.depth {
		panic(fmt.Sprintf("ejector %s: vc%d overflow (%s)", e.name, vc, f))
	}
	e.bufs[vc].PushBack(f)
	e.wake.Wake()
}

// Buffered reports the flits currently waiting to drain.
func (e *Ejector) Buffered() int {
	n := 0
	for v := range e.bufs {
		n += e.bufs[v].Len()
	}
	return n
}

// PendingPackets reports partially reassembled packets.
func (e *Ejector) PendingPackets() int { return len(e.partial) }

// Tick drains up to drainRate flits round-robin across VCs, returning one
// credit per drained flit and completing packets on tail arrival. After a
// packet completes, the drain stalls for the configured per-packet
// transaction overhead.
func (e *Ejector) Tick(cycle int64) {
	if cycle < e.pausedUntil {
		return
	}
	for slot := 0; slot < e.drainRate; slot++ {
		drained := false
		for off := 0; off < e.vcs; off++ {
			vc := (e.drainRR + off) % e.vcs
			if e.bufs[vc].Empty() {
				continue
			}
			f := e.bufs[vc].PopFront()
			e.drainRR = (vc + 1) % e.vcs
			if e.reverse != nil {
				e.reverse.ReturnCredit(vc, cycle)
			}
			e.FlitsEjected.Inc()
			isTail := f.IsTail()
			e.assemble(f, cycle)
			if isTail && e.packetOverhead > 0 {
				e.pausedUntil = cycle + 1 + e.packetOverhead
				return
			}
			drained = true
			break
		}
		if !drained {
			return
		}
	}
}

// lookup finds the open partial record for the packet, or nil.
func (e *Ejector) lookup(id uint64) *partialPacket {
	for _, pp := range e.partial {
		if pp.id == id {
			return pp
		}
	}
	return nil
}

func (e *Ejector) acquirePartial() *partialPacket {
	if pp, ok := e.spares.Get(); ok {
		return pp
	}
	return &partialPacket{}
}

// releasePartial removes pp from the open list and parks it on the
// freelist, keeping its payload capacity.
func (e *Ejector) releasePartial(pp *partialPacket) {
	for i, cur := range e.partial {
		if cur == pp {
			e.partial = append(e.partial[:i], e.partial[i+1:]...)
			break
		}
	}
	payloads := pp.payloads[:0]
	*pp = partialPacket{payloads: payloads}
	e.spares.Put(pp)
}

func (e *Ejector) assemble(f *flit.Flit, cycle int64) {
	pp := e.lookup(f.PacketID)
	if pp == nil {
		pp = e.acquirePartial()
		pp.id = f.PacketID
		pp.headArrival = cycle
		e.partial = append(e.partial, pp)
	}
	if f.IsHead() {
		pp.pt = f.PT
		pp.tag = f.Tag
		pp.src = f.Src
		pp.dst = f.Dst
		pp.flits = f.PacketFlits
		pp.injectCycle = f.InjectCycle
		pp.networkCycle = f.NetworkCycle
		pp.hops = f.Hops
	}
	pp.payloads = append(pp.payloads, f.Payloads...)
	pp.corrupted = pp.corrupted || f.Corrupted
	isTail := f.IsTail()
	e.pool.Release(f)
	if !isTail {
		return
	}
	if e.seen != nil && pp.corrupted {
		// Receiver CRC check: the packet arrived damaged, so nothing is
		// delivered and no payload is confirmed — the source's
		// retransmission timer recovers the loss.
		e.PacketsDiscarded.Inc()
		e.releasePartial(pp)
		return
	}
	if e.seen != nil && len(pp.payloads) > 0 {
		pp.payloads = e.dedupPayloads(pp.payloads)
	}
	rp := &e.scratch
	*rp = ReceivedPacket{
		ID:           pp.id,
		Tag:          pp.tag,
		PT:           pp.pt,
		Src:          pp.src,
		Dst:          pp.dst,
		At:           e.owner,
		Flits:        pp.flits,
		Payloads:     pp.payloads,
		InjectCycle:  pp.injectCycle,
		NetworkCycle: pp.networkCycle,
		HeadArrival:  pp.headArrival,
		TailArrival:  cycle,
		Hops:         pp.hops,
	}
	if len(rp.Payloads) == 0 {
		rp.Payloads = nil
	}
	e.PacketsEjected.Inc()
	e.PacketLatency.Observe(float64(rp.Latency()))
	if e.probe != nil && e.probe.Sampled(pp.id) {
		// Back-dated endpoint events: the source-side timestamps rode on
		// the head flit, so the whole timeline is emitted here at once.
		e.probe.Emit(telemetry.Event{Cycle: pp.injectCycle, Kind: telemetry.EvInject,
			Packet: pp.id, Tag: pp.tag, Loc: int32(pp.src), Aux: int64(pp.dst)})
		e.probe.Emit(telemetry.Event{Cycle: pp.networkCycle, Kind: telemetry.EvNetwork,
			Packet: pp.id, Tag: pp.tag, Loc: int32(pp.src)})
		e.probe.Emit(telemetry.Event{Cycle: pp.headArrival, Kind: telemetry.EvHead,
			Packet: pp.id, Tag: pp.tag, Loc: e.probeLoc})
		e.probe.Emit(telemetry.Event{Cycle: cycle, Kind: telemetry.EvEject,
			Packet: pp.id, Tag: pp.tag, Loc: e.probeLoc, Aux: int64(pp.hops)})
	}
	if e.staged {
		sp := stagedPacket{pkt: *rp, payOff: len(e.stagedPay), payLen: len(rp.Payloads)}
		sp.pkt.Payloads = nil
		e.stagedPay = append(e.stagedPay, rp.Payloads...)
		e.stagedPkt = append(e.stagedPkt, sp)
	} else if e.recv != nil {
		e.recv(rp)
	}
	// The callback has returned (or the packet was deep-copied into the
	// staging arena); pp, whose payload array rp borrowed, may now be
	// recycled.
	e.releasePartial(pp)
}

// dedupPayloads enforces exactly-once delivery: payloads whose Seq was
// already delivered here (a retransmission raced its slow original) are
// filtered out in place, and fresh ones are marked seen and staged as
// confirmations for the reliability hub.
func (e *Ejector) dedupPayloads(payloads []flit.Payload) []flit.Payload {
	kept := payloads[:0]
	for _, p := range payloads {
		if _, dup := e.seen[p.Seq]; dup {
			e.DuplicatesSuppressed.Inc()
			continue
		}
		e.seen[p.Seq] = struct{}{}
		e.delivered = append(e.delivered, DeliveredPayload{Seq: p.Seq, Src: p.Src})
		kept = append(kept, p)
	}
	return kept
}

// SetStaged switches the ejector to staged delivery: completed packets are
// buffered during Tick and their receive callbacks fired only when
// DispatchStaged is called. Sharded engines enable this so Tick can run
// concurrently while callbacks — which reach into shared workload/driver
// state — stay on the serial sub-phase.
func (e *Ejector) SetStaged(on bool) { e.staged = on }

// DispatchStaged fires the receive callback for every packet completed
// since the last dispatch, in completion order. The sharded engine calls
// it once per cycle, ejector by ejector in the sequential engine's
// registration order, which reproduces the sequential callback schedule
// exactly (DESIGN.md §9).
func (e *Ejector) DispatchStaged() {
	for i := range e.stagedPkt {
		sp := &e.stagedPkt[i]
		rp := &e.scratch
		*rp = sp.pkt
		if sp.payLen > 0 {
			rp.Payloads = e.stagedPay[sp.payOff : sp.payOff+sp.payLen]
		}
		if e.recv != nil {
			e.recv(rp)
		}
	}
	e.stagedPkt = e.stagedPkt[:0]
	e.stagedPay = e.stagedPay[:0]
}
