package nic

import (
	"testing"

	"gathernoc/internal/flit"
	"gathernoc/internal/link"
)

func validConfig() Config {
	return Config{
		VCs:               4,
		RouterBufferDepth: 4,
		EjectDepth:        4,
		EjectRate:         1,
		Delta:             5,
		UnicastFlits:      2,
		GatherCapacity:    8,
		GatherVC:          -1,
		Format:            flit.MustFormat(flit.DefaultFlitBits, flit.DefaultPayloadBits, 64),
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		wantOK bool
	}{
		{"valid", func(c *Config) {}, true},
		{"no vcs", func(c *Config) { c.VCs = 0 }, false},
		{"no depth", func(c *Config) { c.RouterBufferDepth = 0 }, false},
		{"no eject depth", func(c *Config) { c.EjectDepth = 0 }, false},
		{"no unicast flits", func(c *Config) { c.UnicastFlits = 0 }, false},
		{"no gather capacity", func(c *Config) { c.GatherCapacity = 0 }, false},
		{"negative delta", func(c *Config) { c.Delta = -1 }, false},
		{"nil format", func(c *Config) { c.Format = nil }, false},
		{"gather vc out of range", func(c *Config) { c.GatherVC = 4 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := validConfig()
			tt.mutate(&cfg)
			err := cfg.Validate()
			if (err == nil) != tt.wantOK {
				t.Errorf("Validate() = %v, wantOK = %v", err, tt.wantOK)
			}
		})
	}
}

type flitCapture struct {
	flits []*flit.Flit
	vcs   []int
}

func (c *flitCapture) AcceptFlit(f *flit.Flit, vc int) {
	c.flits = append(c.flits, f)
	c.vcs = append(c.vcs, vc)
}

func TestNICInjectsOneFlitPerCycle(t *testing.T) {
	cfg := validConfig()
	n, err := New(3, cfg, nil, seq())
	if err != nil {
		t.Fatal(err)
	}
	cap := &flitCapture{}
	out := link.New("inj", 1, cap, n)
	n.ConnectInjection(out)

	n.SendUnicast(9)
	n.SendUnicast(10)

	for c := int64(0); c < 10; c++ {
		n.Tick(c)
		out.Commit(c)
	}
	// 2 packets x 2 flits at 1 flit/cycle: all 4 delivered by cycle 9.
	if len(cap.flits) != 4 {
		t.Fatalf("flits delivered = %d, want 4", len(cap.flits))
	}
	if n.FlitsInjected.Value() != 4 || n.PacketsInjected.Value() != 2 {
		t.Errorf("counters flits=%d packets=%d, want 4/2",
			n.FlitsInjected.Value(), n.PacketsInjected.Value())
	}
	// Wormhole discipline: each packet's flits stay on one VC, in order.
	perVC := map[int][]*flit.Flit{}
	for i, f := range cap.flits {
		perVC[cap.vcs[i]] = append(perVC[cap.vcs[i]], f)
	}
	for vc, fl := range perVC {
		var lastSeq = -1
		for _, f := range fl {
			if f.Seq <= lastSeq && f.Seq != 0 {
				t.Errorf("vc%d out of order", vc)
			}
			lastSeq = f.Seq
		}
	}
}

func TestNICRespectsCredits(t *testing.T) {
	cfg := validConfig()
	cfg.VCs = 1
	cfg.RouterBufferDepth = 1
	n, err := New(0, cfg, nil, seq())
	if err != nil {
		t.Fatal(err)
	}
	cap := &flitCapture{}
	out := link.New("inj", 1, cap, n)
	n.ConnectInjection(out)

	n.SendUnicast(5)
	n.Tick(0) // sends head, consuming the only credit
	n.Tick(1) // blocked: no credit
	out.Commit(0)
	out.Commit(1)
	if len(cap.flits) != 1 {
		t.Fatalf("flits = %d, want 1 (credit-limited)", len(cap.flits))
	}
	// Returning the credit unblocks the tail.
	n.AcceptCredit(0)
	n.Tick(2)
	out.Commit(3)
	if len(cap.flits) != 2 {
		t.Fatalf("flits = %d, want 2 after credit", len(cap.flits))
	}
}

func TestNICGatherVCPolicy(t *testing.T) {
	cfg := validConfig()
	cfg.GatherVC = 0
	n, err := New(0, cfg, nil, seq())
	if err != nil {
		t.Fatal(err)
	}
	cap := &flitCapture{}
	out := link.New("inj", 1, cap, n)
	n.ConnectInjection(out)

	n.SendGather(9, nil)
	n.SendUnicast(9)
	for c := int64(0); c < 20; c++ {
		n.Tick(c)
		out.Commit(c)
	}
	for i, f := range cap.flits {
		if f.PT == flit.Gather && cap.vcs[i] != 0 {
			t.Errorf("gather flit on vc%d, want 0", cap.vcs[i])
		}
		if f.PT != flit.Gather && cap.vcs[i] == 0 {
			t.Errorf("non-gather flit on reserved vc0")
		}
	}
}

func TestEjectorReassembly(t *testing.T) {
	e := NewEjector("t", 2, 8, 1)
	var got []*ReceivedPacket
	e.OnReceive(func(p *ReceivedPacket) { got = append(got, p.Clone()) })

	format := flit.MustFormat(flit.DefaultFlitBits, flit.DefaultPayloadBits, 64)
	fl, err := flit.Packetize(flit.Packet{
		ID: 11, PT: flit.Unicast, Src: 1, Dst: 2, Flits: 3, InjectCycle: 4,
	}, format)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fl {
		e.AcceptFlit(f, 0)
	}
	for c := int64(10); c < 14; c++ {
		e.Tick(c)
	}
	if len(got) != 1 {
		t.Fatalf("packets = %d, want 1", len(got))
	}
	p := got[0]
	if p.ID != 11 || p.Src != 1 || p.Dst != 2 || p.Flits != 3 {
		t.Errorf("packet fields wrong: %+v", p)
	}
	if p.HeadArrival != 10 || p.TailArrival != 12 {
		t.Errorf("arrivals = %d/%d, want 10/12", p.HeadArrival, p.TailArrival)
	}
	if p.Latency() != 8 {
		t.Errorf("Latency = %d, want 8", p.Latency())
	}
}

func TestEjectorInterleavedVCs(t *testing.T) {
	e := NewEjector("t", 2, 8, 2)
	var got []*ReceivedPacket
	e.OnReceive(func(p *ReceivedPacket) { got = append(got, p.Clone()) })

	format := flit.MustFormat(flit.DefaultFlitBits, flit.DefaultPayloadBits, 64)
	a, _ := flit.Packetize(flit.Packet{ID: 1, PT: flit.Unicast, Flits: 2}, format)
	b, _ := flit.Packetize(flit.Packet{ID: 2, PT: flit.Unicast, Flits: 2}, format)
	// Interleave the two packets across VCs, as wormhole switching allows.
	e.AcceptFlit(a[0], 0)
	e.AcceptFlit(b[0], 1)
	e.AcceptFlit(a[1], 0)
	e.AcceptFlit(b[1], 1)
	for c := int64(0); c < 6; c++ {
		e.Tick(c)
	}
	if len(got) != 2 {
		t.Fatalf("packets = %d, want 2", len(got))
	}
}

func TestEjectorGatherPayloadCollection(t *testing.T) {
	e := NewEjector("t", 1, 8, 4)
	var got []*ReceivedPacket
	e.OnReceive(func(p *ReceivedPacket) { got = append(got, p.Clone()) })

	format := flit.MustFormat(flit.DefaultFlitBits, flit.DefaultPayloadBits, 64)
	own := &flit.Payload{Seq: 1, Value: 5}
	fl, _ := flit.Packetize(flit.Packet{
		ID: 9, PT: flit.Gather, Flits: format.GatherFlits(8),
		GatherCapacity: 8, Carried: own,
	}, format)
	// Simulate two more uploads along the way.
	fl[1].AddPayload(flit.Payload{Seq: 2, Value: 6})
	fl[2].AddPayload(flit.Payload{Seq: 3, Value: 7})
	for _, f := range fl {
		e.AcceptFlit(f, 0)
	}
	for c := int64(0); c < 10; c++ {
		e.Tick(c)
	}
	if len(got) != 1 {
		t.Fatalf("packets = %d, want 1", len(got))
	}
	if len(got[0].Payloads) != 3 {
		t.Fatalf("payloads = %d, want 3", len(got[0].Payloads))
	}
}

func TestNICPending(t *testing.T) {
	n, err := New(0, validConfig(), nil, seq())
	if err != nil {
		t.Fatal(err)
	}
	if n.Pending() {
		t.Error("fresh NIC pending")
	}
	n.SendUnicast(3)
	if !n.Pending() {
		t.Error("queued packet not reported pending")
	}
}

// seq returns a fresh packet-id allocator.
func seq() func() uint64 {
	var n uint64
	return func() uint64 {
		n++
		return n
	}
}

func TestNICConfigRejectsBadReduceKnobs(t *testing.T) {
	cfg := validConfig()
	cfg.ReduceCapacity = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative ReduceCapacity accepted")
	}
	cfg = validConfig()
	cfg.ReduceDelta = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative ReduceDelta accepted")
	}
}

func TestNICReduceDefaults(t *testing.T) {
	cfg := validConfig()
	n, err := New(0, cfg, nil, func() uint64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	n.SetReduceDelta(17)
	n.SetReduceDelta(-1) // ignored
	if got := n.reduceDelta(); got != 17 {
		t.Errorf("reduceDelta = %d, want 17", got)
	}
}

func TestNICConfigEnableINANeedsCapacity(t *testing.T) {
	cfg := validConfig()
	cfg.EnableINA = true
	if err := cfg.Validate(); err == nil {
		t.Error("EnableINA without ReduceCapacity accepted")
	}
	cfg.ReduceCapacity = 8
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid INA config rejected: %v", err)
	}
}

func TestNICRejectsAccumulateWithoutINA(t *testing.T) {
	cfg := validConfig()
	n, err := New(0, cfg, nil, func() uint64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s without EnableINA did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("SendAccumulate", func() { n.SendAccumulate(9, 1, flit.Payload{}) })
	mustPanic("SubmitReduceOperand", func() { n.SubmitReduceOperand(flit.Payload{}) })
}
