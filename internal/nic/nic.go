// Package nic implements the network interface sitting between a
// processing element and its router: packetization and injection with
// per-VC wormhole discipline and credit tracking, ejection with packet
// reassembly, and the PE side of the gather protocol — offering the
// partial-sum payload to the router's Gather Payload station and falling
// back to a self-initiated gather packet when the δ-cycle timeout of
// Algorithm 1 expires without an ack. The in-network accumulation (INA)
// protocol mirrors it operand for payload: SubmitReduceOperand offers the
// partial sum to the router's accumulation station and SendAccumulate is
// both the row-initiator path and the reduce-δ fallback.
//
// The NIC is topology-agnostic: destinations are opaque NodeIDs, routing
// and fabric shape live behind the network layer's topology.Routing, and
// who initiates a row's collective packet is decided by the network's
// RowCollect plan, not here (DESIGN.md §7).
package nic

import (
	"fmt"

	"gathernoc/internal/flit"
	"gathernoc/internal/link"
	"gathernoc/internal/ring"
	"gathernoc/internal/router"
	"gathernoc/internal/sim"
	"gathernoc/internal/stats"
	"gathernoc/internal/telemetry"
	"gathernoc/internal/topology"
)

// Config holds the per-NIC parameters.
type Config struct {
	// VCs mirrors the router VC count on the injection channel.
	VCs int
	// RouterBufferDepth is the router input buffer depth (credit init).
	RouterBufferDepth int
	// EjectDepth is the ejection buffer depth per VC.
	EjectDepth int
	// EjectRate is the maximum flits drained per cycle at ejection.
	EjectRate int
	// Delta is the δ timeout in cycles before a PE whose payload was not
	// picked up initiates its own gather packet (Table I: 5).
	Delta int64
	// UnicastFlits is the unicast packet length (Table I: 2).
	UnicastFlits int
	// GatherCapacity is η, the payload capacity of a gather packet.
	GatherCapacity int
	// EnableINA permits accumulate traffic on this NIC; with it off,
	// SendAccumulate and SubmitReduceOperand are programming errors, so
	// no accumulate packet can enter the fabric.
	EnableINA bool
	// ReduceCapacity is the merge budget of an accumulate packet (INA):
	// how many operands one packet may absorb, its own included. The
	// network layer owns the default (noc.Config.EffectiveReduceCapacity
	// resolves 0 to the row width); here it must be >= 1 when EnableINA
	// is set.
	ReduceCapacity int
	// ReduceDelta is the δ timeout for reduce operands awaiting a merge;
	// 0 falls back to Delta.
	ReduceDelta int64
	// GatherVC, when >= 0, restricts gather and accumulate packets to
	// that VC at injection and keeps other packets off it.
	GatherVC int
	// Format supplies the wire-format arithmetic.
	Format *flit.Format
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.VCs < 1:
		return fmt.Errorf("nic: VCs must be >= 1, got %d", c.VCs)
	case c.RouterBufferDepth < 1:
		return fmt.Errorf("nic: RouterBufferDepth must be >= 1, got %d", c.RouterBufferDepth)
	case c.EjectDepth < 1:
		return fmt.Errorf("nic: EjectDepth must be >= 1, got %d", c.EjectDepth)
	case c.UnicastFlits < 1:
		return fmt.Errorf("nic: UnicastFlits must be >= 1, got %d", c.UnicastFlits)
	case c.GatherCapacity < 1:
		return fmt.Errorf("nic: GatherCapacity must be >= 1, got %d", c.GatherCapacity)
	case c.ReduceCapacity < 0:
		return fmt.Errorf("nic: ReduceCapacity must be >= 0, got %d", c.ReduceCapacity)
	case c.EnableINA && c.ReduceCapacity < 1:
		return fmt.Errorf("nic: EnableINA needs ReduceCapacity >= 1, got %d", c.ReduceCapacity)
	case c.Delta < 0:
		return fmt.Errorf("nic: Delta must be >= 0, got %d", c.Delta)
	case c.ReduceDelta < 0:
		return fmt.Errorf("nic: ReduceDelta must be >= 0, got %d", c.ReduceDelta)
	case c.Format == nil:
		return fmt.Errorf("nic: Format is required")
	case c.GatherVC >= c.VCs:
		return fmt.Errorf("nic: GatherVC %d out of range (VCs=%d)", c.GatherVC, c.VCs)
	}
	return nil
}

// gatherWait tracks one payload or operand awaiting pickup by a passing
// collective packet (gather upload or INA merge), with its δ deadline.
// Waits are stored by value and compacted in place, so the wait lists
// allocate nothing in steady state; acks find their wait by payload
// sequence number.
type gatherWait struct {
	payload  flit.Payload
	deadline int64
	acked    bool
	// tag is the workload tag active when the payload was submitted; the
	// δ-timeout fallback packet is stamped with it, not with whatever tag
	// happens to be current when the timeout fires (another job's driver
	// may have retagged the NIC in between).
	tag flit.Tag
}

// vcStream is the flit sequence of the packet currently streaming on one
// injection VC. The backing array is reused across packets (PacketizeInto
// appends into flits[:0]), and next advances instead of re-slicing so the
// array never leaks.
type vcStream struct {
	flits []*flit.Flit
	next  int
}

func (s *vcStream) empty() bool { return s.next >= len(s.flits) }

// NIC is the PE-side network interface. Register it with the engine as a
// Ticker after its router (ordering among tickers is irrelevant for
// correctness; links decouple them).
type NIC struct {
	id     topology.NodeID
	cfg    Config
	rtr    *router.Router
	out    *link.Link
	eject  *Ejector
	nextID func() uint64

	credits []int
	// vcPkt holds the remaining flits of the packet currently streaming on
	// each injection VC.
	vcPkt []vcStream
	// queue holds packets awaiting a free injection VC. A chunked deque
	// rather than an append/filter slice: open-loop workloads run the
	// queue deep past saturation, and the deque's recycled fixed-size
	// blocks never copy on growth and never abandon a backing array.
	queue    ring.Deque[flit.Packet]
	waiting  []gatherWait
	rwaiting []gatherWait // reduce operands awaiting an INA merge
	sendRR   int
	// streaming counts injection VCs with flits left to send, so Idle and
	// Pending answer without scanning vcPkt.
	streaming int
	pool      *flit.Pool // flit allocation for outgoing packets
	// tag stamps every enqueued packet with the workload job/phase it
	// belongs to. Multiple drivers share one NIC, so each driver sets the
	// tag immediately before its Send/Submit calls (the simulator is
	// single-threaded); the zero tag marks untagged traffic.
	tag flit.Tag

	// The ack callbacks handed to the router's stations are allocated
	// once here, not per submission.
	gatherAckFn router.AckFunc
	reduceAckFn router.AckFunc

	// now tracks the last observed tick; clock, when set, supersedes it so
	// that work submitted from outside Tick (controllers enqueueing packets
	// or offering gather payloads) is timestamped correctly even when
	// sleep/wake scheduling skipped this NIC's recent ticks.
	now   int64
	clock sim.Clock
	wake  *sim.Handle

	// reliable, when enabled, tracks every payload this NIC sends until an
	// ejector confirms delivery, retransmitting on timeout (reliable.go).
	// probe records retransmission events in the lifecycle trace.
	reliable *reliableTable
	probe    *telemetry.Probe

	// PacketsInjected / FlitsInjected count injection activity;
	// SelfInitiatedGathers counts δ-timeout fallbacks; PiggybackAcks
	// counts payloads picked up by passing gather packets. The INA twins:
	// SelfInitiatedReduces counts reduce-δ fallback accumulate packets,
	// MergeAcks operands folded into passing accumulate packets.
	PacketsInjected      stats.Counter
	FlitsInjected        stats.Counter
	SelfInitiatedGathers stats.Counter
	PiggybackAcks        stats.Counter
	SelfInitiatedReduces stats.Counter
	MergeAcks            stats.Counter
	// Retransmits counts timeout-driven resends of unconfirmed payloads;
	// AbandonedPayloads counts payloads given up on after MaxRetries (only
	// unreachable destinations abandon — see sweepReliable).
	Retransmits       stats.Counter
	AbandonedPayloads stats.Counter
}

// New constructs a NIC for node id attached to rtr. nextID must return
// network-unique packet ids.
func New(id topology.NodeID, cfg Config, rtr *router.Router, nextID func() uint64) (*NIC, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if nextID == nil {
		return nil, fmt.Errorf("nic %d: nil id allocator", id)
	}
	n := &NIC{
		id:      id,
		cfg:     cfg,
		rtr:     rtr,
		nextID:  nextID,
		credits: make([]int, cfg.VCs),
		vcPkt:   make([]vcStream, cfg.VCs),
		eject:   NewEjector(fmt.Sprintf("nic%d", id), cfg.VCs, cfg.EjectDepth, cfg.EjectRate),
	}
	n.eject.SetOwner(id)
	for v := range n.credits {
		n.credits[v] = cfg.RouterBufferDepth
	}
	n.gatherAckFn = n.onGatherAck
	n.reduceAckFn = n.onReduceAck
	return n, nil
}

// ID returns the node this NIC serves.
func (n *NIC) ID() topology.NodeID { return n.id }

// Ejector returns the receive side, for wiring to the router's local
// output link.
func (n *NIC) Ejector() *Ejector { return n.eject }

// QueueDepth reports packets waiting in the injection queue; the telemetry
// epoch collector samples it as a gauge.
func (n *NIC) QueueDepth() int { return n.queue.Len() }

// ConnectInjection sets the NIC-to-router link.
func (n *NIC) ConnectInjection(l *link.Link) { n.out = l }

// SetFlitPool attaches the network's flit pool; outgoing packets acquire
// their flits from it (and the pool's owner releases them at ejection). A
// nil pool (standalone tests) heap-allocates.
func (n *NIC) SetFlitPool(p *flit.Pool) { n.pool = p }

// SetClock attaches the engine clock used to timestamp externally
// submitted work; without one the NIC falls back to the cycle of its last
// tick (fine when it is ticked every cycle, as in standalone unit tests).
func (n *NIC) SetClock(c sim.Clock) { n.clock = c }

// SetWake attaches the engine wake handle; credit arrivals, enqueues and
// gather-payload submissions arm it so a sleeping NIC is re-evaluated.
func (n *NIC) SetWake(h *sim.Handle) { n.wake = h }

// currentCycle returns the cycle to timestamp externally triggered work
// with: the engine clock when attached, else the last observed tick.
func (n *NIC) currentCycle() int64 {
	if n.clock != nil {
		return n.clock.Cycle()
	}
	return n.now
}

// Idle implements sim.Idler: with no queued packets, no streaming flits,
// no payloads awaiting pickup and an empty ejection buffer, the NIC's tick
// is a pure no-op, so the engine may skip it until new work arrives (wakes
// come from enqueues, payload submissions, credit returns and ejection
// deliveries).
func (n *NIC) Idle() bool {
	return n.streaming == 0 && n.queue.Len() == 0 &&
		len(n.waiting) == 0 && len(n.rwaiting) == 0 && n.eject.Buffered() == 0 &&
		(n.reliable == nil || len(n.reliable.entries) == 0)
}

// AcceptCredit implements link.CreditSink for the injection channel.
func (n *NIC) AcceptCredit(vc int) {
	n.credits[vc]++
	n.wake.Wake()
}

// OnReceive registers the completed-packet callback.
func (n *NIC) OnReceive(fn func(*ReceivedPacket)) { n.eject.OnReceive(fn) }

// SetTag sets the workload tag stamped onto subsequently enqueued packets
// and submitted payloads. Workload drivers sharing the NIC call it before
// every injection; the zero tag (the default) marks untagged traffic.
func (n *NIC) SetTag(t flit.Tag) { n.tag = t }

// Tag returns the currently active workload tag.
func (n *NIC) Tag() flit.Tag { return n.tag }

// SetDelta overrides this NIC's δ timeout. The paper notes δ "can be
// configured for each router" to cover "the router pipeline delay to reach
// the neighboring node"; workload layers use this to scale the timeout
// with the node's distance from its row's gather initiator so that a
// packet in flight is not preempted by spurious self-initiations.
func (n *NIC) SetDelta(d int64) {
	if d >= 0 {
		n.cfg.Delta = d
	}
}

// Delta returns the NIC's current δ timeout.
func (n *NIC) Delta() int64 { return n.cfg.Delta }

// SendUnicast queues a unicast packet of the configured length to dst and
// returns its packet id.
func (n *NIC) SendUnicast(dst topology.NodeID) uint64 {
	return n.enqueue(flit.Packet{
		PT: flit.Unicast, Src: n.id, Dst: dst, Flits: n.cfg.UnicastFlits,
	})
}

// SendUnicastN queues a unicast packet of nFlits flits to dst.
func (n *NIC) SendUnicastN(dst topology.NodeID, nFlits int) uint64 {
	return n.enqueue(flit.Packet{PT: flit.Unicast, Src: n.id, Dst: dst, Flits: nFlits})
}

// SendUnicastPayload queues a unicast packet carrying one result payload —
// the repetitive-unicast transport for a PE's partial sum.
func (n *NIC) SendUnicastPayload(dst topology.NodeID, p flit.Payload) uint64 {
	return n.enqueue(flit.Packet{
		PT: flit.Unicast, Src: n.id, Dst: dst, Flits: n.cfg.UnicastFlits, Carried: &p,
	})
}

// SendMulticast queues a multicast packet of nFlits flits to the
// destination set.
func (n *NIC) SendMulticast(dsts *topology.DestSet, nFlits int) uint64 {
	return n.enqueue(flit.Packet{
		PT: flit.Multicast, Src: n.id, MDst: dsts.Clone(), Flits: nFlits,
	})
}

// SendMulticastPayload queues a multicast packet of nFlits flits carrying
// one payload to every destination — the broadcast leg of a collective
// tree. The XY multicast tree copies the payload on every fork
// (router.flitForBranch clones flit payload slices), so each destination's
// ejector reassembles a packet delivering the same value.
func (n *NIC) SendMulticastPayload(dsts *topology.DestSet, nFlits int, p flit.Payload) uint64 {
	return n.enqueue(flit.Packet{
		PT: flit.Multicast, Src: n.id, MDst: dsts.Clone(), Flits: nFlits, Carried: &p,
	})
}

// SendGather queues a gather packet to dst with the configured capacity,
// optionally pre-loaded with the sender's own payload. This is the
// initiator path: in the paper's row-based scheme the leftmost PE of each
// row launches the packet toward the global buffer.
func (n *NIC) SendGather(dst topology.NodeID, own *flit.Payload) uint64 {
	capacity := n.cfg.GatherCapacity
	return n.enqueue(flit.Packet{
		PT: flit.Gather, Src: n.id, Dst: dst,
		Flits:          n.cfg.Format.GatherFlits(capacity),
		GatherCapacity: capacity,
		Carried:        own,
	})
}

// SubmitGatherPayload is the piggyback path of Algorithm 1: the payload is
// offered to the router's Gather Payload station; if no passing gather
// packet picks it up within δ cycles the NIC retracts it and initiates its
// own gather packet to the payload's destination.
func (n *NIC) SubmitGatherPayload(p flit.Payload) {
	if n.reliable != nil {
		n.track(p)
	}
	ok := n.rtr.OfferGatherPayload(p, n.gatherAckFn)
	if !ok {
		// Station full: fall back immediately.
		n.selfInitiate(p)
		return
	}
	n.waiting = append(n.waiting, gatherWait{payload: p, deadline: n.currentCycle() + n.cfg.Delta, tag: n.tag})
	n.wake.Wake()
}

// onGatherAck marks the waiting payload picked up by a passing gather
// packet. Payload sequence numbers are run-unique, so the lookup is exact.
func (n *NIC) onGatherAck(p flit.Payload) {
	markAcked(n.waiting, p.Seq)
	n.PiggybackAcks.Inc()
}

// onReduceAck is the INA twin of onGatherAck.
func (n *NIC) onReduceAck(p flit.Payload) {
	markAcked(n.rwaiting, p.Seq)
	n.MergeAcks.Inc()
}

func markAcked(waiting []gatherWait, seq uint64) {
	for i := range waiting {
		if waiting[i].payload.Seq == seq {
			waiting[i].acked = true
			return
		}
	}
}

// requireINA guards the accumulate entry points: calling them on a NIC
// whose network has INA disabled is a programming error, like mis-sized
// packets.
func (n *NIC) requireINA(op string) {
	if !n.cfg.EnableINA {
		panic(fmt.Sprintf("nic %d: %s without Config.EnableINA", n.id, op))
	}
}

// reduceDelta returns the δ applied to reduce operands (ReduceDelta,
// falling back to the gather Delta).
func (n *NIC) reduceDelta() int64 {
	if n.cfg.ReduceDelta > 0 {
		return n.cfg.ReduceDelta
	}
	return n.cfg.Delta
}

// SetReduceDelta overrides this NIC's reduce-operand δ timeout; like
// SetDelta it lets workload layers scale the timeout with the node's
// distance from its row's accumulate initiator.
func (n *NIC) SetReduceDelta(d int64) {
	if d >= 0 {
		n.cfg.ReduceDelta = d
	}
}

// SendAccumulate queues an accumulate packet to dst seeded with the
// sender's own operand — the INA initiator path: in the row-based scheme
// the leftmost PE of each row launches the packet toward the global
// buffer, and every router en route folds its local partial sum in.
func (n *NIC) SendAccumulate(dst topology.NodeID, reduceID uint64, own flit.Payload) uint64 {
	n.requireINA("SendAccumulate")
	return n.enqueue(flit.Packet{
		PT: flit.Accumulate, Src: n.id, Dst: dst,
		Flits:          flit.AccumulateFlits,
		GatherCapacity: n.cfg.ReduceCapacity,
		ReduceID:       reduceID,
		Carried:        &own,
		// With end-to-end reliability on, merged operands stay separate
		// payload entries so the ejector can suppress duplicates per
		// operand (flit.MergePayload).
		TrackOperands: n.reliable != nil,
	})
}

// SubmitReduceOperand is the INA merge path: the operand is offered to the
// router's accumulation station; if no passing accumulate packet folds it
// in within the reduce δ the NIC retracts it and initiates its own
// accumulate packet carrying the operand.
func (n *NIC) SubmitReduceOperand(p flit.Payload) {
	n.requireINA("SubmitReduceOperand")
	p.Ops = p.OpsCount()
	if n.reliable != nil {
		n.track(p)
	}
	ok := n.rtr.OfferReduceOperand(p, n.reduceAckFn)
	if !ok {
		n.selfInitiateReduce(p)
		return
	}
	n.rwaiting = append(n.rwaiting, gatherWait{payload: p, deadline: n.currentCycle() + n.reduceDelta(), tag: n.tag})
	n.wake.Wake()
}

// Pending reports whether the NIC still has packets queued, flits
// streaming, or payloads awaiting pickup.
func (n *NIC) Pending() bool {
	return n.streaming > 0 || n.queue.Len() > 0 ||
		len(n.waiting) > 0 || len(n.rwaiting) > 0 ||
		n.eject.Buffered() > 0 || n.eject.PendingPackets() > 0 ||
		(n.reliable != nil && len(n.reliable.entries) > 0)
}

// Tick advances the NIC: δ timeouts, packet-to-VC binding, and one flit of
// injection bandwidth.
func (n *NIC) Tick(cycle int64) {
	n.now = cycle
	n.eject.Tick(cycle)
	n.checkTimeouts()
	n.sweepReliable()
	n.bindPackets()
	n.injectOne(cycle)
}

func (n *NIC) checkTimeouts() {
	n.waiting = n.sweepTimeouts(n.waiting, n.rtr.RetractGatherPayload, n.selfInitiate)
	n.rwaiting = n.sweepTimeouts(n.rwaiting, n.rtr.RetractReduceOperand, n.selfInitiateReduce)
}

// sweepTimeouts drops acked waiters and fires the δ fallback for expired
// ones. Retract succeeds only while the payload is still pending at the
// station; if a packet reserved it, the ack is imminent and we keep
// waiting (retry next cycle if the reservation is released). The fallback
// packet is enqueued under the tag the payload was submitted with.
func (n *NIC) sweepTimeouts(waiting []gatherWait, retract func(uint64) bool, fallback func(flit.Payload)) []gatherWait {
	if len(waiting) == 0 {
		return waiting
	}
	keep := waiting[:0]
	for i := range waiting {
		w := waiting[i]
		if w.acked {
			continue
		}
		if n.now >= w.deadline && retract(w.payload.Seq) {
			cur := n.tag
			n.tag = w.tag
			fallback(w.payload)
			n.tag = cur
			continue
		}
		keep = append(keep, w)
	}
	return keep
}

func (n *NIC) selfInitiate(p flit.Payload) {
	own := p
	n.SendGather(p.Dst, &own)
	n.SelfInitiatedGathers.Inc()
}

func (n *NIC) selfInitiateReduce(p flit.Payload) {
	n.SendAccumulate(p.Dst, p.ReduceID, p)
	n.SelfInitiatedReduces.Inc()
}

func (n *NIC) enqueue(p flit.Packet) uint64 {
	p.ID = n.nextID()
	p.Tag = n.tag
	p.InjectCycle = n.currentCycle()
	if n.reliable != nil && p.Carried != nil {
		n.track(*p.Carried)
	}
	n.queue.PushBack(p)
	n.PacketsInjected.Inc()
	n.wake.Wake()
	return p.ID
}

// bindPackets assigns queued packets to free injection VCs (one packet per
// VC at a time: the NIC is the upstream end of a wormhole channel).
//
// Without a dedicated collective VC every packet may use every VC, so
// binding is strictly FIFO: the front packet binds or nothing behind it
// can either, and the pass costs O(bound packets) however long the
// saturated queue grows. With GatherVC set there are two traffic classes
// and a packet behind a blocked head may still bind to its class's VC, so
// the whole queue is considered once, non-binding packets cycling back in
// their original relative order.
func (n *NIC) bindPackets() {
	if n.cfg.GatherVC < 0 {
		for n.queue.Len() > 0 {
			vc := n.freeVCFor(n.queue.Front().PT)
			if vc < 0 {
				return
			}
			n.bindTo(vc, n.queue.PopFront())
		}
		return
	}
	for i, m := 0, n.queue.Len(); i < m; i++ {
		p := n.queue.PopFront()
		vc := n.freeVCFor(p.PT)
		if vc < 0 {
			n.queue.PushBack(p)
			continue
		}
		n.bindTo(vc, p)
	}
}

func (n *NIC) bindTo(vc int, p flit.Packet) {
	s := &n.vcPkt[vc]
	flits, err := flit.PacketizeInto(s.flits[:0], p, n.cfg.Format, n.pool)
	if err != nil {
		// Mis-sized packets are a programming error in the caller.
		panic(fmt.Sprintf("nic %d: %v", n.id, err))
	}
	s.flits = flits
	s.next = 0
	if !s.empty() {
		n.streaming++
	}
}

func (n *NIC) freeVCFor(pt flit.PacketType) int {
	for v := 0; v < n.cfg.VCs; v++ {
		if !n.vcPkt[v].empty() {
			continue
		}
		if !n.vcAllowed(pt, v) {
			continue
		}
		return v
	}
	return -1
}

func (n *NIC) vcAllowed(pt flit.PacketType, vc int) bool {
	g := n.cfg.GatherVC
	if g < 0 {
		return true
	}
	if pt == flit.Gather || pt == flit.Accumulate {
		return vc == g
	}
	return vc != g
}

// injectOne sends at most one flit this cycle (the injection channel is a
// single physical link), round-robin across VCs with credit.
func (n *NIC) injectOne(cycle int64) {
	if n.out == nil {
		return
	}
	for off := 0; off < n.cfg.VCs; off++ {
		vc := (n.sendRR + off) % n.cfg.VCs
		s := &n.vcPkt[vc]
		if s.empty() || n.credits[vc] == 0 {
			continue
		}
		f := s.flits[s.next]
		s.flits[s.next] = nil // do not pin the flit once it leaves
		s.next++
		if s.empty() {
			n.streaming--
		}
		f.NetworkCycle = cycle
		n.out.Send(f, vc, cycle)
		n.credits[vc]--
		n.FlitsInjected.Inc()
		n.sendRR = (vc + 1) % n.cfg.VCs
		return
	}
}
