package nic

import (
	"fmt"
	"sort"

	"gathernoc/internal/flit"
	"gathernoc/internal/stats"
	"gathernoc/internal/topology"
)

// PacketState serializes one queued packet by value; the multicast
// destination set and the carried payload (the two pointers a Packet
// holds) are flattened so a restored queue shares nothing with the
// captured network.
type PacketState struct {
	ID             uint64
	Tag            flit.Tag
	PT             flit.PacketType
	Src            topology.NodeID
	Dst            topology.NodeID
	HasMDst        bool
	MDst           []topology.NodeID `json:",omitempty"`
	Flits          int
	GatherCapacity int
	ReduceID       uint64
	HasCarried     bool
	Carried        flit.Payload
	TrackOperands  bool
	InjectCycle    int64
}

func capturePacket(p flit.Packet) PacketState {
	ps := PacketState{
		ID: p.ID, Tag: p.Tag, PT: p.PT, Src: p.Src, Dst: p.Dst,
		Flits: p.Flits, GatherCapacity: p.GatherCapacity, ReduceID: p.ReduceID,
		TrackOperands: p.TrackOperands, InjectCycle: p.InjectCycle,
	}
	if p.MDst != nil {
		ps.HasMDst = true
		ps.MDst = p.MDst.Nodes()
	}
	if p.Carried != nil {
		ps.HasCarried = true
		ps.Carried = *p.Carried
	}
	return ps
}

func (ps PacketState) materialize(numNodes int) flit.Packet {
	p := flit.Packet{
		ID: ps.ID, Tag: ps.Tag, PT: ps.PT, Src: ps.Src, Dst: ps.Dst,
		Flits: ps.Flits, GatherCapacity: ps.GatherCapacity, ReduceID: ps.ReduceID,
		TrackOperands: ps.TrackOperands, InjectCycle: ps.InjectCycle,
	}
	if ps.HasMDst {
		p.MDst = topology.DestSetOf(numNodes, ps.MDst...)
	}
	if ps.HasCarried {
		carried := ps.Carried
		p.Carried = &carried
	}
	return p
}

// WaitState serializes one payload awaiting collective pickup with its δ
// deadline.
type WaitState struct {
	Payload  flit.Payload
	Deadline int64
	Acked    bool
	Tag      flit.Tag
}

// ReliableEntryState serializes one unconfirmed payload of the
// end-to-end reliability table.
type ReliableEntryState struct {
	Payload  flit.Payload
	Tag      flit.Tag
	Deadline int64
	Attempt  int
}

// PartialState serializes one packet under reassembly at an ejector.
type PartialState struct {
	ID           uint64
	Tag          flit.Tag
	PT           flit.PacketType
	Src          topology.NodeID
	Dst          topology.NodeID
	Flits        int
	InjectCycle  int64
	NetworkCycle int64
	Hops         int
	HeadArrival  int64
	Corrupted    bool
	Payloads     []flit.Payload `json:",omitempty"`
}

// EjectorState serializes an ejection point's mutable state: the per-VC
// buffers, open reassembly records, drain rotation/stall, the
// exactly-once dedup set, staged delivery confirmations, and counters.
type EjectorState struct {
	Bufs                 [][]flit.State
	Partials             []PartialState `json:",omitempty"`
	DrainRR              int
	PausedUntil          int64
	Seen                 []uint64           `json:",omitempty"`
	Delivered            []DeliveredPayload `json:",omitempty"`
	FlitsEjected         stats.Counter
	PacketsEjected       stats.Counter
	PacketLatency        stats.Sample
	PacketsDiscarded     stats.Counter
	DuplicatesSuppressed stats.Counter
}

// CaptureState serializes the ejector. It must be called at a cycle
// boundary: in sharded mode the staged-delivery arenas are drained by
// DispatchStaged every cycle, so a non-empty arena means the snapshot
// was attempted mid-cycle.
func (e *Ejector) CaptureState() (EjectorState, error) {
	if len(e.stagedPkt) > 0 || len(e.stagedPay) > 0 {
		return EjectorState{}, fmt.Errorf("ejector %s: staged deliveries pending; snapshot only at cycle boundaries", e.name)
	}
	s := EjectorState{
		DrainRR:              e.drainRR,
		PausedUntil:          e.pausedUntil,
		FlitsEjected:         e.FlitsEjected,
		PacketsEjected:       e.PacketsEjected,
		PacketLatency:        e.PacketLatency.Clone(),
		PacketsDiscarded:     e.PacketsDiscarded,
		DuplicatesSuppressed: e.DuplicatesSuppressed,
	}
	s.Bufs = make([][]flit.State, e.vcs)
	for v := range e.bufs {
		for i := 0; i < e.bufs[v].Len(); i++ {
			s.Bufs[v] = append(s.Bufs[v], flit.CaptureFlit(e.bufs[v].At(i)))
		}
	}
	for _, pp := range e.partial {
		s.Partials = append(s.Partials, PartialState{
			ID: pp.id, Tag: pp.tag, PT: pp.pt, Src: pp.src, Dst: pp.dst,
			Flits: pp.flits, InjectCycle: pp.injectCycle, NetworkCycle: pp.networkCycle,
			Hops: pp.hops, HeadArrival: pp.headArrival, Corrupted: pp.corrupted,
			Payloads: append([]flit.Payload(nil), pp.payloads...),
		})
	}
	if e.seen != nil {
		s.Seen = make([]uint64, 0, len(e.seen))
		for seq := range e.seen {
			s.Seen = append(s.Seen, seq)
		}
		sort.Slice(s.Seen, func(i, j int) bool { return s.Seen[i] < s.Seen[j] })
	}
	if len(e.delivered) > 0 {
		s.Delivered = append([]DeliveredPayload(nil), e.delivered...)
	}
	return s, nil
}

// RestoreState replaces a freshly constructed ejector's state with the
// captured one; buffered flits materialize through the attached pool.
func (e *Ejector) RestoreState(s EjectorState, numNodes int) error {
	if len(s.Bufs) != e.vcs {
		return fmt.Errorf("ejector %s: snapshot has %d VCs, ejector has %d", e.name, len(s.Bufs), e.vcs)
	}
	e.drainRR = s.DrainRR
	e.pausedUntil = s.PausedUntil
	e.FlitsEjected = s.FlitsEjected
	e.PacketsEjected = s.PacketsEjected
	e.PacketLatency = s.PacketLatency.Clone()
	e.PacketsDiscarded = s.PacketsDiscarded
	e.DuplicatesSuppressed = s.DuplicatesSuppressed
	for v := range e.bufs {
		if len(s.Bufs[v]) > e.depth {
			return fmt.Errorf("ejector %s: snapshot overfills vc%d", e.name, v)
		}
		e.bufs[v].Reset()
		for _, fs := range s.Bufs[v] {
			e.bufs[v].PushBack(fs.Materialize(e.pool, numNodes))
		}
	}
	e.partial = e.partial[:0]
	for _, ps := range s.Partials {
		pp := e.acquirePartial()
		pp.id = ps.ID
		pp.tag = ps.Tag
		pp.pt = ps.PT
		pp.src = ps.Src
		pp.dst = ps.Dst
		pp.flits = ps.Flits
		pp.injectCycle = ps.InjectCycle
		pp.networkCycle = ps.NetworkCycle
		pp.hops = ps.Hops
		pp.headArrival = ps.HeadArrival
		pp.corrupted = ps.Corrupted
		pp.payloads = append(pp.payloads[:0], ps.Payloads...)
		e.partial = append(e.partial, pp)
	}
	if len(s.Seen) > 0 && e.seen == nil {
		return fmt.Errorf("ejector %s: snapshot carries dedup state but fault awareness is off", e.name)
	}
	if e.seen != nil {
		clear(e.seen)
		for _, seq := range s.Seen {
			e.seen[seq] = struct{}{}
		}
	}
	e.delivered = append(e.delivered[:0], s.Delivered...)
	return nil
}

// State is the complete mutable state of one NIC (its ejector included).
// Wiring — router, links, pool, clock, wake handles, ack callbacks — is
// rebuilt by construction; the streaming count is derived and recomputed.
type State struct {
	Credits []int
	// Streams holds the not-yet-sent remainder of the packet bound to
	// each injection VC.
	Streams  [][]flit.State `json:",omitempty"`
	Queue    []PacketState  `json:",omitempty"`
	Waiting  []WaitState    `json:",omitempty"`
	RWaiting []WaitState    `json:",omitempty"`
	SendRR   int
	Tag      flit.Tag
	Now      int64
	Reliable []ReliableEntryState `json:",omitempty"`

	PacketsInjected      stats.Counter
	FlitsInjected        stats.Counter
	SelfInitiatedGathers stats.Counter
	PiggybackAcks        stats.Counter
	SelfInitiatedReduces stats.Counter
	MergeAcks            stats.Counter
	Retransmits          stats.Counter
	AbandonedPayloads    stats.Counter

	Ejector EjectorState
}

// CaptureState serializes the NIC's mutable state at a cycle boundary.
func (n *NIC) CaptureState() (State, error) {
	es, err := n.eject.CaptureState()
	if err != nil {
		return State{}, err
	}
	s := State{
		Credits: append([]int(nil), n.credits...),
		SendRR:  n.sendRR,
		Tag:     n.tag,
		Now:     n.now,

		PacketsInjected:      n.PacketsInjected,
		FlitsInjected:        n.FlitsInjected,
		SelfInitiatedGathers: n.SelfInitiatedGathers,
		PiggybackAcks:        n.PiggybackAcks,
		SelfInitiatedReduces: n.SelfInitiatedReduces,
		MergeAcks:            n.MergeAcks,
		Retransmits:          n.Retransmits,
		AbandonedPayloads:    n.AbandonedPayloads,

		Ejector: es,
	}
	s.Streams = make([][]flit.State, n.cfg.VCs)
	for v := range n.vcPkt {
		st := &n.vcPkt[v]
		for i := st.next; i < len(st.flits); i++ {
			s.Streams[v] = append(s.Streams[v], flit.CaptureFlit(st.flits[i]))
		}
	}
	for i := 0; i < n.queue.Len(); i++ {
		s.Queue = append(s.Queue, capturePacket(n.queue.At(i)))
	}
	for _, w := range n.waiting {
		s.Waiting = append(s.Waiting, WaitState{Payload: w.payload, Deadline: w.deadline, Acked: w.acked, Tag: w.tag})
	}
	for _, w := range n.rwaiting {
		s.RWaiting = append(s.RWaiting, WaitState{Payload: w.payload, Deadline: w.deadline, Acked: w.acked, Tag: w.tag})
	}
	if n.reliable != nil {
		for _, en := range n.reliable.entries {
			s.Reliable = append(s.Reliable, ReliableEntryState{
				Payload: en.payload, Tag: en.tag, Deadline: en.deadline, Attempt: en.attempt,
			})
		}
	}
	return s, nil
}

// RestoreState replaces a freshly constructed NIC's state with the
// captured one. Streaming flits materialize through the attached pool;
// the streaming count is recomputed.
func (n *NIC) RestoreState(s State, numNodes int) error {
	if len(s.Credits) != len(n.credits) {
		return fmt.Errorf("nic %d: snapshot has %d VCs, nic has %d", n.id, len(s.Credits), len(n.credits))
	}
	if len(s.Reliable) > 0 && n.reliable == nil {
		return fmt.Errorf("nic %d: snapshot carries reliability state but reliability is off", n.id)
	}
	if err := n.eject.RestoreState(s.Ejector, numNodes); err != nil {
		return err
	}
	copy(n.credits, s.Credits)
	n.sendRR = s.SendRR
	n.tag = s.Tag
	n.now = s.Now

	n.PacketsInjected = s.PacketsInjected
	n.FlitsInjected = s.FlitsInjected
	n.SelfInitiatedGathers = s.SelfInitiatedGathers
	n.PiggybackAcks = s.PiggybackAcks
	n.SelfInitiatedReduces = s.SelfInitiatedReduces
	n.MergeAcks = s.MergeAcks
	n.Retransmits = s.Retransmits
	n.AbandonedPayloads = s.AbandonedPayloads

	n.streaming = 0
	for v := range n.vcPkt {
		st := &n.vcPkt[v]
		st.flits = st.flits[:0]
		st.next = 0
		if v < len(s.Streams) {
			for _, fs := range s.Streams[v] {
				st.flits = append(st.flits, fs.Materialize(n.pool, numNodes))
			}
		}
		if !st.empty() {
			n.streaming++
		}
	}
	for n.queue.Len() > 0 {
		n.queue.PopFront()
	}
	for _, ps := range s.Queue {
		n.queue.PushBack(ps.materialize(numNodes))
	}
	n.waiting = n.waiting[:0]
	for _, w := range s.Waiting {
		n.waiting = append(n.waiting, gatherWait{payload: w.Payload, deadline: w.Deadline, acked: w.Acked, tag: w.Tag})
	}
	n.rwaiting = n.rwaiting[:0]
	for _, w := range s.RWaiting {
		n.rwaiting = append(n.rwaiting, gatherWait{payload: w.Payload, deadline: w.Deadline, acked: w.Acked, tag: w.Tag})
	}
	if n.reliable != nil {
		rt := n.reliable
		rt.entries = rt.entries[:0]
		clear(rt.index)
		for _, es := range s.Reliable {
			rt.index[es.Payload.Seq] = len(rt.entries)
			rt.entries = append(rt.entries, reliableEntry{
				payload: es.Payload, tag: es.Tag, deadline: es.Deadline, attempt: es.Attempt,
			})
		}
	}
	return nil
}

// GatherAckFunc exposes the NIC's gather-station ack handler so a
// restoring network can re-wire the router's station entries exactly as
// SubmitGatherPayload would have.
func (n *NIC) GatherAckFunc() func(flit.Payload) { return n.gatherAckFn }

// ReduceAckFunc is the INA twin of GatherAckFunc.
func (n *NIC) ReduceAckFunc() func(flit.Payload) { return n.reduceAckFn }
