// Package link models the registered point-to-point channels between
// routers (and between a network interface and its router): a forward flit
// path with configurable latency and a one-cycle credit return path for
// credit-based flow control.
//
// A Link is a phase-2 component: upstream routers stage flits with Send
// during the tick phase, and the link publishes them into the downstream
// input buffer during the commit phase once their latency has elapsed, so
// a flit is never visible on both sides of a channel in the same cycle.
package link

import (
	"gathernoc/internal/fault"
	"gathernoc/internal/flit"
	"gathernoc/internal/ring"
	"gathernoc/internal/sim"
	"gathernoc/internal/stats"
	"gathernoc/internal/telemetry"
)

// FlitSink receives flits delivered by a link into a per-VC input buffer.
type FlitSink interface {
	AcceptFlit(f *flit.Flit, vc int)
}

// CreditSink receives returned credits for a virtual channel.
type CreditSink interface {
	AcceptCredit(vc int)
}

type inflightFlit struct {
	f   *flit.Flit
	vc  int
	due int64
}

type inflightCredit struct {
	vc  int
	due int64
}

// Link is one direction of a channel. Construct with New and register with
// the engine as a Committer.
//
// In-flight traffic is staged in ring buffers: items are pushed in send
// order with monotonically non-decreasing due cycles (the latency is
// uniform per link), so Commit pops ripe items off the front and the
// backing arrays are reused forever — zero steady-state allocation.
type Link struct {
	name    string
	latency int64
	down    FlitSink
	up      CreditSink

	flits   ring.Ring[inflightFlit]
	credits ring.Ring[inflightCredit]

	wake *sim.Handle // engine wake-up, armed when traffic is staged

	probe *telemetry.Probe
	loc   int32 // downstream node id reported in trace events

	// Fault injection (SetFaults; nil on fault-free fabrics). faults
	// decides drops/corruption per flit during CommitFlits; pool reclaims
	// dropped flits (the downstream shard's view — CommitFlits runs
	// there); owedCredits accumulates, per VC, the credits the upstream
	// spent on flits that vanished at this link. The credits cannot be
	// pushed from the commit phase (the upstream shard pops the credit
	// ring concurrently), so the flusher ticker returns them in the next
	// tick phase — the same cycle offset as a downstream component that
	// consumed the flit instantly.
	faults      *fault.LinkState
	pool        *flit.Pool
	owedCredits []int
	owedAny     bool
	flushWake   *sim.Handle

	// FlitsCarried counts flits that completed traversal, by the power
	// model and utilization reports.
	FlitsCarried stats.Counter
	// CreditsCarried counts credits returned upstream; telemetry derives
	// credit-path activity per epoch from it.
	CreditsCarried stats.Counter
}

// New returns a link with the given forward latency in cycles (minimum 1:
// a flit sent in cycle c is visible downstream in cycle c+latency+1, i.e.
// it spends latency cycles on the wire after the send cycle). down receives
// delivered flits; up (may be nil) receives returned credits after one
// cycle.
func New(name string, latency int, down FlitSink, up CreditSink) *Link {
	if latency < 1 {
		latency = 1
	}
	// The staging rings stay zero-valued: they grow on first use, so the
	// many links an experiment never exercises cost nothing, and a busy
	// link settles at its in-flight high-water mark after a handful of
	// doublings.
	return &Link{name: name, latency: int64(latency), down: down, up: up}
}

// Name returns the link's diagnostic name.
func (l *Link) Name() string { return l.name }

// SetWake attaches the engine wake handle; Send and ReturnCredit arm it so
// a sleeping link is committed. Links work without one (nil handles ignore
// Wake).
func (l *Link) SetWake(h *sim.Handle) { l.wake = h }

// SetTelemetry attaches a lifecycle-trace probe. loc is the downstream
// node id recorded on link-traversal events. The probe must belong to the
// shard that commits this link's flit half (single-writer rule).
func (l *Link) SetTelemetry(p *telemetry.Probe, loc int) {
	l.probe = p
	l.loc = int32(loc)
}

// SetFaults attaches fault-injection decision state and the flit-pool
// view that reclaims dropped flits (the view owned by the shard that
// commits this link's flits). Call before the first cycle; a link without
// faults skips every fault check.
func (l *Link) SetFaults(ls *fault.LinkState, pool *flit.Pool) {
	l.faults = ls
	l.pool = pool
}

// Faults returns the link's fault state (nil on fault-free fabrics).
func (l *Link) Faults() *fault.LinkState { return l.faults }

// CreditFlusher is the tick-phase companion of a faulted link: it returns
// the credits owed for flits dropped during the previous commit phase.
// Register it as a ticker on the shard that owns the link's downstream
// endpoint (the same shard that runs CommitFlits), so the owed counters
// have a single writer per phase.
type CreditFlusher struct{ l *Link }

// NewCreditFlusher returns the link's credit flusher.
func (l *Link) NewCreditFlusher() *CreditFlusher { return &CreditFlusher{l: l} }

// SetWake attaches the flusher's engine wake handle; CommitFlits arms it
// when a drop leaves credits owed.
func (cf *CreditFlusher) SetWake(h *sim.Handle) { cf.l.flushWake = h }

// Idle implements sim.Idler: nothing owed means the tick is a no-op.
func (cf *CreditFlusher) Idle() bool { return !cf.l.owedAny }

// Tick returns every owed credit upstream via the normal staged credit
// path (due next cycle), exactly as a downstream component that consumed
// the dropped flit immediately would have.
func (cf *CreditFlusher) Tick(cycle int64) {
	l := cf.l
	if !l.owedAny {
		return
	}
	for vc, n := range l.owedCredits {
		for ; n > 0; n-- {
			l.ReturnCredit(vc, cycle)
		}
		l.owedCredits[vc] = 0
	}
	l.owedAny = false
}

// oweCredit records, during CommitFlits, one credit to return for a
// dropped flit.
func (l *Link) oweCredit(vc int) {
	for len(l.owedCredits) <= vc {
		l.owedCredits = append(l.owedCredits, 0)
	}
	l.owedCredits[vc]++
	l.owedAny = true
	l.flushWake.Wake()
}

// Idle implements sim.Idler: with nothing in flight the commit is a pure
// no-op, so the engine may skip the link until traffic is staged again.
func (l *Link) Idle() bool { return l.flits.Empty() && l.credits.Empty() }

// Send stages a flit for traversal; called by the upstream component
// during its tick at cycle now.
func (l *Link) Send(f *flit.Flit, vc int, now int64) {
	l.flits.PushBack(inflightFlit{f: f, vc: vc, due: now + l.latency})
	l.wake.Wake()
}

// ReturnCredit stages a credit for the upstream component; called by the
// downstream component during its tick at cycle now when it frees a buffer
// slot on vc.
func (l *Link) ReturnCredit(vc int, now int64) {
	l.credits.PushBack(inflightCredit{vc: vc, due: now + 1})
	l.wake.Wake()
}

// InFlight returns the number of flits currently traversing the link.
func (l *Link) InFlight() int { return l.flits.Len() }

// Commit delivers flits and credits whose latency has elapsed. Items are
// staged in send order with non-decreasing due cycles and latencies are
// uniform, so popping ripe items off the ring front preserves per-VC flit
// order.
func (l *Link) Commit(now int64) {
	l.CommitFlits(now)
	l.CommitCredits(now)
}

// CommitFlits delivers the ripe half of the forward path only: flits into
// the downstream input buffer. The sharded engine registers it with the
// shard owning the downstream endpoint, while CommitCredits goes to the
// upstream endpoint's shard — the two halves touch disjoint state (the
// flits ring and the downstream buffers vs the credits ring and the
// upstream counters), so a link spanning a shard boundary is committed by
// two goroutines without a race, and in either order without a schedule
// change.
func (l *Link) CommitFlits(now int64) {
	for !l.flits.Empty() && l.flits.Front().due <= now {
		in := l.flits.PopFront()
		if l.faults != nil && l.faultFlit(in, now) {
			continue
		}
		if l.probe != nil && in.f.IsHead() && l.probe.Sampled(in.f.PacketID) {
			l.probe.Emit(telemetry.Event{Cycle: now, Kind: telemetry.EvLink,
				Packet: in.f.PacketID, Tag: in.f.Tag, Loc: l.loc, Aux: int64(in.vc)})
		}
		l.down.AcceptFlit(in.f, in.vc)
		l.FlitsCarried.Inc()
	}
}

// faultFlit applies the link's fault schedule to a ripe flit. It reports
// true when the flit was dropped (released to the pool, credit owed,
// nothing delivered); corrupted flits are marked and travel on.
func (l *Link) faultFlit(in inflightFlit, now int64) bool {
	pid := in.f.PacketID
	head, tail := in.f.IsHead(), in.f.IsTail()
	if l.faults.DropFlit(pid, head, tail, now) {
		if l.probe != nil && head && l.probe.Sampled(pid) {
			l.probe.Emit(telemetry.Event{Cycle: now, Kind: telemetry.EvFaultDrop,
				Packet: pid, Tag: in.f.Tag, Loc: l.loc, Aux: int64(in.vc)})
		}
		l.oweCredit(in.vc)
		l.FlitsCarried.Inc() // the wire was traversed; the far end ate it
		l.pool.ReleaseDropped(in.f)
		return true
	}
	if l.faults.CorruptFlit(pid, head) {
		in.f.Corrupted = true
		if l.probe != nil && head && l.probe.Sampled(pid) {
			l.probe.Emit(telemetry.Event{Cycle: now, Kind: telemetry.EvFaultCorrupt,
				Packet: pid, Tag: in.f.Tag, Loc: l.loc, Aux: int64(in.vc)})
		}
	}
	return false
}

// CommitCredits delivers the ripe credits to the upstream endpoint; see
// CommitFlits for the sharding contract.
func (l *Link) CommitCredits(now int64) {
	for !l.credits.Empty() && l.credits.Front().due <= now {
		c := l.credits.PopFront()
		if l.up != nil {
			l.up.AcceptCredit(c.vc)
		}
		l.CreditsCarried.Inc()
	}
}
