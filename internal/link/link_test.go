package link

import (
	"testing"

	"gathernoc/internal/flit"
)

type captureSink struct {
	flits []*flit.Flit
	vcs   []int
}

func (c *captureSink) AcceptFlit(f *flit.Flit, vc int) {
	c.flits = append(c.flits, f)
	c.vcs = append(c.vcs, vc)
}

type captureCredit struct {
	vcs []int
}

func (c *captureCredit) AcceptCredit(vc int) { c.vcs = append(c.vcs, vc) }

func TestLinkDeliversAfterLatency(t *testing.T) {
	down := &captureSink{}
	l := New("t", 1, down, nil)
	f := &flit.Flit{PacketID: 1}

	l.Send(f, 2, 10) // due at cycle 11
	l.Commit(10)
	if len(down.flits) != 0 {
		t.Fatal("delivered before latency elapsed")
	}
	if l.InFlight() != 1 {
		t.Fatalf("InFlight = %d, want 1", l.InFlight())
	}
	l.Commit(11)
	if len(down.flits) != 1 || down.flits[0] != f || down.vcs[0] != 2 {
		t.Fatalf("delivery wrong: %v %v", down.flits, down.vcs)
	}
	if l.InFlight() != 0 {
		t.Fatalf("InFlight = %d, want 0", l.InFlight())
	}
	if l.FlitsCarried.Value() != 1 {
		t.Errorf("FlitsCarried = %d, want 1", l.FlitsCarried.Value())
	}
}

func TestLinkLatencyFloor(t *testing.T) {
	down := &captureSink{}
	l := New("t", 0, down, nil) // coerced to 1
	l.Send(&flit.Flit{}, 0, 5)
	l.Commit(5)
	if len(down.flits) != 0 {
		t.Fatal("zero-latency link delivered same cycle")
	}
	l.Commit(6)
	if len(down.flits) != 1 {
		t.Fatal("flit lost")
	}
}

func TestLinkPreservesOrder(t *testing.T) {
	down := &captureSink{}
	l := New("t", 3, down, nil)
	for i := 0; i < 5; i++ {
		l.Send(&flit.Flit{PacketID: uint64(i)}, 0, int64(i))
	}
	for c := int64(0); c < 10; c++ {
		l.Commit(c)
	}
	if len(down.flits) != 5 {
		t.Fatalf("delivered %d, want 5", len(down.flits))
	}
	for i, f := range down.flits {
		if f.PacketID != uint64(i) {
			t.Errorf("position %d: packet %d", i, f.PacketID)
		}
	}
}

func TestLinkCreditReturn(t *testing.T) {
	up := &captureCredit{}
	l := New("t", 1, &captureSink{}, up)
	l.ReturnCredit(3, 7) // due at cycle 8
	l.Commit(7)
	if len(up.vcs) != 0 {
		t.Fatal("credit returned same cycle")
	}
	l.Commit(8)
	if len(up.vcs) != 1 || up.vcs[0] != 3 {
		t.Fatalf("credits = %v, want [3]", up.vcs)
	}
}

func TestLinkNilCreditSink(t *testing.T) {
	l := New("t", 1, &captureSink{}, nil)
	l.ReturnCredit(0, 0)
	l.Commit(1) // must not panic
}

func TestLinkName(t *testing.T) {
	if got := New("east", 1, &captureSink{}, nil).Name(); got != "east" {
		t.Errorf("Name = %q", got)
	}
}

// TestLinkCreditBurstGrowsRing stages far more credits in one cycle than
// the ring's initial latency-derived capacity (an ejector drain burst) and
// checks every credit is still delivered, in order, one cycle later.
func TestLinkCreditBurstGrowsRing(t *testing.T) {
	up := &captureCredit{}
	l := New("t", 1, &captureSink{}, up)
	const burst = 64
	for i := 0; i < burst; i++ {
		l.ReturnCredit(i%4, 10)
	}
	l.Commit(10)
	if len(up.vcs) != 0 {
		t.Fatalf("credits delivered same-cycle: %d", len(up.vcs))
	}
	l.Commit(11)
	if len(up.vcs) != burst {
		t.Fatalf("credits delivered = %d, want %d", len(up.vcs), burst)
	}
	for i, vc := range up.vcs {
		if vc != i%4 {
			t.Fatalf("credit %d on vc%d, want vc%d (order lost)", i, vc, i%4)
		}
	}
	if !l.Idle() {
		t.Error("link not idle after delivering the burst")
	}
}

// TestLinkFlitBurstGrowsRing checks the flit ring's growth path the same
// way: more staged flits than the initial capacity, delivered in order.
func TestLinkFlitBurstGrowsRing(t *testing.T) {
	down := &captureSink{}
	l := New("t", 2, down, nil)
	const burst = 32
	for i := 0; i < burst; i++ {
		l.Send(&flit.Flit{PacketID: uint64(i + 1)}, 0, 5)
	}
	l.Commit(6)
	if len(down.flits) != 0 {
		t.Fatalf("flits delivered early: %d", len(down.flits))
	}
	l.Commit(7)
	if len(down.flits) != burst {
		t.Fatalf("flits delivered = %d, want %d", len(down.flits), burst)
	}
	for i, f := range down.flits {
		if f.PacketID != uint64(i+1) {
			t.Fatalf("flit %d is packet %d (order lost)", i, f.PacketID)
		}
	}
}
