package link

import (
	"gathernoc/internal/fault"
	"gathernoc/internal/flit"
	"gathernoc/internal/stats"
)

// InflightFlit is one serialized entry of the forward staging ring.
type InflightFlit struct {
	Flit flit.State
	VC   int
	Due  int64
}

// InflightCredit is one serialized entry of the credit staging ring.
type InflightCredit struct {
	VC  int
	Due int64
}

// State is the serialized mutable state of one link: both staging rings
// in send order (due cycles are absolute, matching the snapshot's engine
// cycle), the owed-credit ledger of the fault path, the carried counters,
// and the fault decision state when injection is enabled.
type State struct {
	Flits          []InflightFlit   `json:",omitempty"`
	Credits        []InflightCredit `json:",omitempty"`
	OwedCredits    []int            `json:",omitempty"`
	FlitsCarried   stats.Counter
	CreditsCarried stats.Counter
	Faults         *fault.LinkSnapshot `json:",omitempty"`
}

// CaptureState serializes the link's mutable state.
func (l *Link) CaptureState() State {
	s := State{
		FlitsCarried:   l.FlitsCarried,
		CreditsCarried: l.CreditsCarried,
	}
	for i := 0; i < l.flits.Len(); i++ {
		in := l.flits.At(i)
		s.Flits = append(s.Flits, InflightFlit{Flit: flit.CaptureFlit(in.f), VC: in.vc, Due: in.due})
	}
	for i := 0; i < l.credits.Len(); i++ {
		c := l.credits.At(i)
		s.Credits = append(s.Credits, InflightCredit{VC: c.vc, Due: c.due})
	}
	if l.owedAny {
		s.OwedCredits = append([]int(nil), l.owedCredits...)
	}
	if l.faults != nil {
		fs := l.faults.Capture()
		s.Faults = &fs
	}
	return s
}

// RestoreState replaces the link's mutable state with the captured one,
// materializing in-flight flits through pool (the restored network's
// acquire/release accounting must balance). numNodes sizes rebuilt
// multicast destination sets.
func (l *Link) RestoreState(s State, pool *flit.Pool, numNodes int) {
	l.FlitsCarried = s.FlitsCarried
	l.CreditsCarried = s.CreditsCarried
	l.flits.Reset()
	for _, in := range s.Flits {
		l.flits.PushBack(inflightFlit{f: in.Flit.Materialize(pool, numNodes), vc: in.VC, due: in.Due})
	}
	l.credits.Reset()
	for _, c := range s.Credits {
		l.credits.PushBack(inflightCredit{vc: c.VC, due: c.Due})
	}
	l.owedCredits = l.owedCredits[:0]
	l.owedAny = false
	for vc, n := range s.OwedCredits {
		if n > 0 {
			l.oweCredit(vc)
			l.owedCredits[vc] = n
		}
	}
	if s.Faults != nil && l.faults != nil {
		l.faults.Restore(*s.Faults)
	}
}
