package cnn

import "testing"

func TestLayerKindStreamFactor(t *testing.T) {
	tests := []struct {
		kind LayerKind
		want int
	}{
		{Conv, 2}, {Pool, 1}, {FullyConnected, 2},
	}
	for _, tt := range tests {
		if got := tt.kind.StreamFactor(); got != tt.want {
			t.Errorf("%s.StreamFactor() = %d, want %d", tt.kind, got, tt.want)
		}
	}
}

func TestLayerKindString(t *testing.T) {
	if Conv.String() != "conv" || Pool.String() != "pool" || FullyConnected.String() != "fc" {
		t.Error("kind names wrong")
	}
}

func TestAlexNetPoolLayersShapes(t *testing.T) {
	layers := AlexNetPoolLayers()
	if len(layers) != 3 {
		t.Fatalf("len = %d, want 3", len(layers))
	}
	// 3x3 stride-2 pooling halves AlexNet's spatial dims: 55->27->13->6.
	wants := []struct{ in, out, q int }{
		{55, 27, 64}, {27, 13, 192}, {13, 6, 256},
	}
	for i, w := range wants {
		l := layers[i]
		if l.Kind != Pool {
			t.Errorf("%s: kind = %s", l.Name, l.Kind)
		}
		if l.InputSize != w.in || l.OutputSize != w.out || l.OutKernels != w.q {
			t.Errorf("%s: %d->%d @%d, want %d->%d @%d",
				l.Name, l.InputSize, l.OutputSize, l.OutKernels, w.in, w.out, w.q)
		}
		if got := l.ExpectedOutputSize(); got != l.OutputSize {
			t.Errorf("%s: shape formula gives %d", l.Name, got)
		}
		if got := l.MACsPerPE(); got != 9 {
			t.Errorf("%s: ops per output = %d, want 9 (3x3 window)", l.Name, got)
		}
		if err := l.Validate(); err != nil {
			t.Errorf("%s: %v", l.Name, err)
		}
	}
}

func TestAlexNetFCLayersShapes(t *testing.T) {
	layers := AlexNetFCLayers()
	wants := []struct{ in, out int }{
		{9216, 4096}, {4096, 4096}, {4096, 1000},
	}
	for i, w := range wants {
		l := layers[i]
		if l.Kind != FullyConnected {
			t.Errorf("%s: kind = %s", l.Name, l.Kind)
		}
		if l.InChannels != w.in || l.OutKernels != w.out {
			t.Errorf("%s: %dx%d, want %dx%d", l.Name, l.InChannels, l.OutKernels, w.in, w.out)
		}
		if l.MACsPerPE() != w.in {
			t.Errorf("%s: MACs per output = %d, want %d", l.Name, l.MACsPerPE(), w.in)
		}
		if l.OutputPositions() != 1 {
			t.Errorf("%s: P = %d, want 1", l.Name, l.OutputPositions())
		}
		if err := l.Validate(); err != nil {
			t.Errorf("%s: %v", l.Name, err)
		}
	}
	// FC6 on 8x8: ceil(1/8)*ceil(4096/8) = 512 rounds.
	if got := layers[0].Rounds(8, 8); got != 512 {
		t.Errorf("FC6 rounds = %d, want 512", got)
	}
}

func TestAlexNetAllLayersSequence(t *testing.T) {
	all := AlexNetAllLayers()
	if len(all) != 11 {
		t.Fatalf("len = %d, want 11 (5 conv + 3 pool + 3 fc)", len(all))
	}
	wantOrder := []string{
		"Conv1", "Pool1", "Conv2", "Pool2", "Conv3", "Conv4", "Conv5", "Pool5", "FC6", "FC7", "FC8",
	}
	for i, name := range wantOrder {
		if all[i].Name != name {
			t.Errorf("position %d = %s, want %s", i, all[i].Name, name)
		}
	}
	// Spatial dims must chain: each layer's input is the previous
	// feature map's output (same-kind transitions).
	if all[1].InputSize != all[0].OutputSize {
		t.Errorf("Pool1 input %d != Conv1 output %d", all[1].InputSize, all[0].OutputSize)
	}
	if all[3].InputSize != all[2].OutputSize {
		t.Errorf("Pool2 input %d != Conv2 output %d", all[3].InputSize, all[2].OutputSize)
	}
	// FC6's fan-in is the flattened Pool5 output: 256 * 6 * 6.
	if all[8].InChannels != 256*6*6 {
		t.Errorf("FC6 fan-in = %d, want %d", all[8].InChannels, 256*6*6)
	}
}

func TestVGG16AllLayersSequence(t *testing.T) {
	all := VGG16AllLayers()
	if len(all) != 21 {
		t.Fatalf("len = %d, want 21 (13 conv + 5 pool + 3 fc)", len(all))
	}
	kinds := map[LayerKind]int{}
	for _, l := range all {
		kinds[l.Kind]++
		if err := l.Validate(); err != nil {
			t.Errorf("%s: %v", l.Name, err)
		}
		if got := l.ExpectedOutputSize(); got != l.OutputSize {
			t.Errorf("%s: shape formula gives %d, config says %d", l.Name, got, l.OutputSize)
		}
	}
	if kinds[Conv] != 13 || kinds[Pool] != 5 || kinds[FullyConnected] != 3 {
		t.Errorf("kind mix = %v", kinds)
	}
	// VGG's classifier fan-in is the flattened 512x7x7 feature map.
	fc1, _ := LayerByName(all, "FC1")
	if fc1.InChannels != 512*7*7 {
		t.Errorf("FC1 fan-in = %d, want %d", fc1.InChannels, 512*7*7)
	}
	// Spatial chaining across the first block: conv 224 -> pool -> 112.
	if all[2].InputSize != 224 || all[2].OutputSize != 112 {
		t.Errorf("PoolA = %d->%d, want 224->112", all[2].InputSize, all[2].OutputSize)
	}
	if all[3].InputSize != all[2].OutputSize {
		t.Errorf("Conv2-1 input %d != PoolA output %d", all[3].InputSize, all[2].OutputSize)
	}
}
