package cnn

import "fmt"

// LayerKind distinguishes how a layer maps onto the accelerator. The zero
// value is Conv, so the Table III layer lists need no annotation.
type LayerKind uint8

// Layer kinds.
const (
	// Conv is a convolution layer: inputs and weights both stream.
	Conv LayerKind = iota
	// Pool is a max/avg pooling layer: only inputs stream (no weights),
	// each output needs R·R compare/accumulate operations. The paper
	// names pooling alongside convolution as a source of many-to-one
	// traffic (Sec. I, Sec. VI).
	Pool
	// FullyConnected is a dense layer: a matrix-vector product mapped as
	// a 1x1 "convolution" over a single spatial position.
	FullyConnected
)

// String names the kind.
func (k LayerKind) String() string {
	switch k {
	case Conv:
		return "conv"
	case Pool:
		return "pool"
	case FullyConnected:
		return "fc"
	default:
		return fmt.Sprintf("LayerKind(%d)", uint8(k))
	}
}

// StreamFactor returns how many operand streams feed each PE per cycle:
// convolution and fully-connected layers stream inputs and weights (2);
// pooling streams only inputs (1). The systolic energy accounting uses it.
func (k LayerKind) StreamFactor() int {
	if k == Pool {
		return 1
	}
	return 2
}

// AlexNetPoolLayers returns AlexNet's three max-pooling layers (3x3,
// stride 2), mapped with channels on the filter axis and one pooling
// window per PE round.
func AlexNetPoolLayers() []LayerConfig {
	return []LayerConfig{
		{Model: "AlexNet", Name: "Pool1", Kind: Pool, InChannels: 1, OutKernels: 64, Kernel: 3, InputSize: 55, OutputSize: 27, Stride: 2, Pad: 0},
		{Model: "AlexNet", Name: "Pool2", Kind: Pool, InChannels: 1, OutKernels: 192, Kernel: 3, InputSize: 27, OutputSize: 13, Stride: 2, Pad: 0},
		{Model: "AlexNet", Name: "Pool5", Kind: Pool, InChannels: 1, OutKernels: 256, Kernel: 3, InputSize: 13, OutputSize: 6, Stride: 2, Pad: 0},
	}
}

// AlexNetFCLayers returns AlexNet's three fully-connected layers as 1x1
// mappings over a single spatial position.
func AlexNetFCLayers() []LayerConfig {
	return []LayerConfig{
		{Model: "AlexNet", Name: "FC6", Kind: FullyConnected, InChannels: 9216, OutKernels: 4096, Kernel: 1, InputSize: 1, OutputSize: 1, Stride: 1, Pad: 0},
		{Model: "AlexNet", Name: "FC7", Kind: FullyConnected, InChannels: 4096, OutKernels: 4096, Kernel: 1, InputSize: 1, OutputSize: 1, Stride: 1, Pad: 0},
		{Model: "AlexNet", Name: "FC8", Kind: FullyConnected, InChannels: 4096, OutKernels: 1000, Kernel: 1, InputSize: 1, OutputSize: 1, Stride: 1, Pad: 0},
	}
}

// AlexNetAllLayers returns the complete AlexNet layer sequence
// (convolution, pooling and fully-connected) in execution order — the
// paper's future-work target of accelerating the complete model.
func AlexNetAllLayers() []LayerConfig {
	conv := AlexNetConvLayers()
	pool := AlexNetPoolLayers()
	fc := AlexNetFCLayers()
	return []LayerConfig{
		conv[0], pool[0],
		conv[1], pool[1],
		conv[2], conv[3], conv[4], pool[2],
		fc[0], fc[1], fc[2],
	}
}

// VGG16PoolLayers returns VGG-16's five max-pooling layers (2x2, stride
// 2) with channels on the filter axis.
func VGG16PoolLayers() []LayerConfig {
	mk := func(name string, q, in int) LayerConfig {
		return LayerConfig{
			Model: "VGG-16", Name: name, Kind: Pool, InChannels: 1,
			OutKernels: q, Kernel: 2, InputSize: in, OutputSize: in / 2,
			Stride: 2, Pad: 0,
		}
	}
	return []LayerConfig{
		mk("PoolA", 64, 224),
		mk("PoolB", 128, 112),
		mk("PoolC", 256, 56),
		mk("PoolD", 512, 28),
		mk("PoolE", 512, 14),
	}
}

// VGG16FCLayers returns VGG-16's three fully-connected layers.
func VGG16FCLayers() []LayerConfig {
	mk := func(name string, in, out int) LayerConfig {
		return LayerConfig{
			Model: "VGG-16", Name: name, Kind: FullyConnected,
			InChannels: in, OutKernels: out, Kernel: 1,
			InputSize: 1, OutputSize: 1, Stride: 1, Pad: 0,
		}
	}
	return []LayerConfig{
		mk("FC1", 512*7*7, 4096),
		mk("FC2", 4096, 4096),
		mk("FC3", 4096, 1000),
	}
}

// VGG16AllLayers returns the complete VGG-16 layer sequence (13 conv, 5
// pool, 3 fc) in execution order.
func VGG16AllLayers() []LayerConfig {
	conv := VGG16AllConvLayers()
	pool := VGG16PoolLayers()
	fc := VGG16FCLayers()
	return []LayerConfig{
		conv[0], conv[1], pool[0],
		conv[2], conv[3], pool[1],
		conv[4], conv[5], conv[6], pool[2],
		conv[7], conv[8], conv[9], pool[3],
		conv[10], conv[11], conv[12], pool[4],
		fc[0], fc[1], fc[2],
	}
}
