package cnn

import (
	"strings"
	"testing"
)

func TestAlexNetMatchesTableIII(t *testing.T) {
	layers := AlexNetConvLayers()
	if len(layers) != 5 {
		t.Fatalf("len = %d, want 5", len(layers))
	}
	tests := []struct {
		name    string
		c, q, r int
		out     int
	}{
		{"Conv1", 3, 64, 11, 55},
		{"Conv2", 64, 192, 5, 27},
		{"Conv3", 192, 384, 3, 13},
		{"Conv4", 384, 256, 3, 13},
		{"Conv5", 256, 256, 3, 13},
	}
	for i, tt := range tests {
		l := layers[i]
		if l.Name != tt.name || l.InChannels != tt.c || l.OutKernels != tt.q ||
			l.Kernel != tt.r || l.OutputSize != tt.out {
			t.Errorf("layer %d = %s, want %s %dx%d@%dx%d out %d",
				i, l, tt.name, tt.c, tt.q, tt.r, tt.r, tt.out)
		}
		if err := l.Validate(); err != nil {
			t.Errorf("%s: %v", l.Name, err)
		}
	}
}

func TestVGGSelectedMatchesTableIII(t *testing.T) {
	layers := VGG16SelectedConvLayers()
	if len(layers) != 4 {
		t.Fatalf("len = %d, want 4", len(layers))
	}
	tests := []struct {
		c, q, out int
	}{
		{64, 64, 224},
		{128, 128, 112},
		{256, 256, 56},
		{512, 512, 14},
	}
	for i, tt := range tests {
		l := layers[i]
		if l.InChannels != tt.c || l.OutKernels != tt.q || l.OutputSize != tt.out || l.Kernel != 3 {
			t.Errorf("layer %d = %s", i, l)
		}
	}
}

func TestShapeFormulaConsistent(t *testing.T) {
	// Every published layer's OutputSize must satisfy the standard
	// convolution shape formula (the cross-check that replaces the
	// paper's PyTorch extraction).
	all := append(AlexNetConvLayers(), VGG16SelectedConvLayers()...)
	all = append(all, VGG16AllConvLayers()...)
	for _, l := range all {
		if got := l.ExpectedOutputSize(); got != l.OutputSize {
			t.Errorf("%s: shape formula gives %d, table says %d", l, got, l.OutputSize)
		}
	}
}

func TestMACsPerPE(t *testing.T) {
	l, ok := LayerByName(AlexNetConvLayers(), "Conv1")
	if !ok {
		t.Fatal("Conv1 missing")
	}
	if got := l.MACsPerPE(); got != 363 { // 3*11*11
		t.Errorf("C·R·R = %d, want 363", got)
	}
	l2, _ := LayerByName(AlexNetConvLayers(), "Conv3")
	if got := l2.MACsPerPE(); got != 1728 { // 192*9
		t.Errorf("C·R·R = %d, want 1728", got)
	}
}

func TestRounds(t *testing.T) {
	l, _ := LayerByName(AlexNetConvLayers(), "Conv1")
	// P = 55*55 = 3025, Q = 64; 8x8: ceil(3025/8)*ceil(64/8) = 379*8.
	if got := l.Rounds(8, 8); got != 379*8 {
		t.Errorf("Rounds(8,8) = %d, want %d", got, 379*8)
	}
	if got := l.Rounds(16, 16); got != 190*4 {
		t.Errorf("Rounds(16,16) = %d, want %d", got, 190*4)
	}
	if got := l.Rounds(0, 8); got != 0 {
		t.Errorf("Rounds(0,8) = %d, want 0", got)
	}
}

func TestTotalMACs(t *testing.T) {
	l, _ := LayerByName(AlexNetConvLayers(), "Conv1")
	want := int64(3025) * 64 * 363
	if got := l.TotalMACs(); got != want {
		t.Errorf("TotalMACs = %d, want %d", got, want)
	}
}

func TestVGG16AllLayersPlausible(t *testing.T) {
	layers := VGG16AllConvLayers()
	if len(layers) != 13 {
		t.Fatalf("len = %d, want 13", len(layers))
	}
	// The paper's selected layers 2,4,6,13 must match the full list.
	sel := VGG16SelectedConvLayers()
	for i, idx := range []int{1, 3, 5, 12} {
		a, b := sel[i], layers[idx]
		if a.InChannels != b.InChannels || a.OutKernels != b.OutKernels || a.OutputSize != b.OutputSize {
			t.Errorf("selected layer %d != full list layer %d: %s vs %s", i, idx, a, b)
		}
	}
}

func TestValidateRejectsBadShapes(t *testing.T) {
	bad := []LayerConfig{
		{Model: "m", Name: "x", InChannels: 0, OutKernels: 1, Kernel: 3, OutputSize: 4, Stride: 1},
		{Model: "m", Name: "x", InChannels: 1, OutKernels: 1, Kernel: 0, OutputSize: 4, Stride: 1},
		{Model: "m", Name: "x", InChannels: 1, OutKernels: 1, Kernel: 3, OutputSize: 0, Stride: 1},
		{Model: "m", Name: "x", InChannels: 1, OutKernels: 1, Kernel: 3, OutputSize: 4, Stride: 0},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("bad layer %d accepted", i)
		}
	}
}

func TestLayerByNameMissing(t *testing.T) {
	if _, ok := LayerByName(AlexNetConvLayers(), "Conv9"); ok {
		t.Error("found nonexistent layer")
	}
}

func TestStringFormat(t *testing.T) {
	l, _ := LayerByName(AlexNetConvLayers(), "Conv1")
	s := l.String()
	for _, frag := range []string{"AlexNet", "Conv1", "3x64@11x11", "64@55x55"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}

func TestAccumulationRounds(t *testing.T) {
	l := LayerConfig{Model: "x", Name: "x", InChannels: 8, OutKernels: 10,
		Kernel: 3, InputSize: 6, OutputSize: 6, Stride: 1, Pad: 1}
	// P·Q = 36·10 = 360 outputs over 8 rows: ⌈360/8⌉ = 45 rounds.
	if got := l.AccumulationRounds(8); got != 45 {
		t.Errorf("AccumulationRounds(8) = %d, want 45", got)
	}
	if got := l.AccumulationRounds(7); got != 52 {
		t.Errorf("AccumulationRounds(7) = %d, want ceil(360/7)=52", got)
	}
	if got := l.AccumulationRounds(0); got != 0 {
		t.Errorf("AccumulationRounds(0) = %d, want 0", got)
	}
}

func TestPartialMACsPerPE(t *testing.T) {
	l := LayerConfig{InChannels: 8, Kernel: 3} // C·R·R = 72
	if got := l.PartialMACsPerPE(8); got != 9 {
		t.Errorf("PartialMACsPerPE(8) = %d, want 9", got)
	}
	if got := l.PartialMACsPerPE(7); got != 11 {
		t.Errorf("PartialMACsPerPE(7) = %d, want ceil(72/7)=11", got)
	}
	if got := l.PartialMACsPerPE(0); got != 0 {
		t.Errorf("PartialMACsPerPE(0) = %d, want 0", got)
	}
}
