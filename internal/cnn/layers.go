// Package cnn models convolution-layer workloads: the shape algebra that
// determines how much data streams through the accelerator and the
// published layer parameters of AlexNet and VGG-16 (Table III of the
// paper), from which traffic traces and systolic schedules are derived.
//
// The paper used PyTorch only to read these shape parameters; they are
// reproduced here directly from Table III (and cross-checked against the
// standard model definitions by the shape tests).
package cnn

import "fmt"

// LayerConfig describes one convolution layer mapped onto the output-
// stationary systolic array: P = OutputSize² input positions stream from
// the west edge, Q = OutKernels filter columns stream from the north edge,
// and every PE performs C·R·R multiply-accumulates per round (Sec. III-A).
type LayerConfig struct {
	// Model is the network name ("AlexNet", "VGG-16").
	Model string
	// Name is the layer label used in the paper's tables ("Conv1"...).
	Name string
	// Kind distinguishes convolution, pooling and fully-connected
	// mappings (zero value: Conv).
	Kind LayerKind
	// InChannels is C, the input channel count.
	InChannels int
	// OutKernels is Q, the number of filters (output channels).
	OutKernels int
	// Kernel is R, the filter's spatial size (R×R).
	Kernel int
	// InputSize is the input feature map's H (H×H).
	InputSize int
	// OutputSize is the output feature map's spatial size.
	OutputSize int
	// Stride and Pad are the convolution's stride and padding, used to
	// cross-check OutputSize against the standard shape formula.
	Stride int
	Pad    int
}

// Validate reports impossible layer shapes.
func (l LayerConfig) Validate() error {
	switch {
	case l.InChannels < 1 || l.OutKernels < 1:
		return fmt.Errorf("cnn %s/%s: channels %dx%d invalid", l.Model, l.Name, l.InChannels, l.OutKernels)
	case l.Kernel < 1:
		return fmt.Errorf("cnn %s/%s: kernel %d invalid", l.Model, l.Name, l.Kernel)
	case l.OutputSize < 1:
		return fmt.Errorf("cnn %s/%s: output size %d invalid", l.Model, l.Name, l.OutputSize)
	case l.Stride < 1:
		return fmt.Errorf("cnn %s/%s: stride %d invalid", l.Model, l.Name, l.Stride)
	}
	return nil
}

// MACsPerPE returns C·R·R, the multiply-accumulate count (and input/weight
// streaming cycle count) each PE performs per round.
func (l LayerConfig) MACsPerPE() int {
	return l.InChannels * l.Kernel * l.Kernel
}

// OutputPositions returns P, the number of output pixel positions.
func (l LayerConfig) OutputPositions() int {
	return l.OutputSize * l.OutputSize
}

// Rounds returns the number of systolic rounds ⌈P/N⌉·⌈Q/M⌉ needed on an
// N-row, M-column PE array (Eq. 2/3).
func (l LayerConfig) Rounds(rows, cols int) int64 {
	if rows < 1 || cols < 1 {
		return 0
	}
	p := (l.OutputPositions() + rows - 1) / rows
	q := (l.OutKernels + cols - 1) / cols
	return int64(p) * int64(q)
}

// TotalMACs returns the layer's total multiply-accumulate count
// P·Q·C·R·R.
func (l LayerConfig) TotalMACs() int64 {
	return int64(l.OutputPositions()) * int64(l.OutKernels) * int64(l.MACsPerPE())
}

// AccumulationRounds returns the round count of the layer's accumulation
// phase under an input-channel-partitioned mapping on an N-row array: the
// C·R·R MACs of one output are split across a row's M PEs, each row
// completes one output per round and reduces its M partial sums into the
// global buffer, so the P·Q outputs take ⌈P·Q/N⌉ rounds. This is the
// many-to-one partial-sum traffic the in-network accumulation subsystem
// targets (DESIGN.md §5).
func (l LayerConfig) AccumulationRounds(rows int) int64 {
	if rows < 1 {
		return 0
	}
	total := int64(l.OutputPositions()) * int64(l.OutKernels)
	return (total + int64(rows) - 1) / int64(rows)
}

// PartialMACsPerPE returns ⌈C·R·R/M⌉, the per-PE compute time of one
// accumulation-phase round when the output's MACs are partitioned across
// the row's M columns.
func (l LayerConfig) PartialMACsPerPE(cols int) int {
	if cols < 1 {
		return 0
	}
	return (l.MACsPerPE() + cols - 1) / cols
}

// ExpectedOutputSize applies the standard convolution shape formula
// ⌊(H + 2·pad − R)/stride⌋ + 1.
func (l LayerConfig) ExpectedOutputSize() int {
	return (l.InputSize+2*l.Pad-l.Kernel)/l.Stride + 1
}

// String renders the Table III notation, e.g. "3x64@11x11 -> 64@55x55".
func (l LayerConfig) String() string {
	return fmt.Sprintf("%s %s: %dx%d@%dx%d -> %d@%dx%d",
		l.Model, l.Name, l.InChannels, l.OutKernels, l.Kernel, l.Kernel,
		l.OutKernels, l.OutputSize, l.OutputSize)
}

// AlexNetConvLayers returns the five AlexNet convolution layers exactly as
// listed in Table III.
func AlexNetConvLayers() []LayerConfig {
	return []LayerConfig{
		{Model: "AlexNet", Name: "Conv1", InChannels: 3, OutKernels: 64, Kernel: 11, InputSize: 224, OutputSize: 55, Stride: 4, Pad: 2},
		{Model: "AlexNet", Name: "Conv2", InChannels: 64, OutKernels: 192, Kernel: 5, InputSize: 27, OutputSize: 27, Stride: 1, Pad: 2},
		{Model: "AlexNet", Name: "Conv3", InChannels: 192, OutKernels: 384, Kernel: 3, InputSize: 13, OutputSize: 13, Stride: 1, Pad: 1},
		{Model: "AlexNet", Name: "Conv4", InChannels: 384, OutKernels: 256, Kernel: 3, InputSize: 13, OutputSize: 13, Stride: 1, Pad: 1},
		{Model: "AlexNet", Name: "Conv5", InChannels: 256, OutKernels: 256, Kernel: 3, InputSize: 13, OutputSize: 13, Stride: 1, Pad: 1},
	}
}

// VGG16SelectedConvLayers returns the four VGG-16 convolution layers the
// paper evaluates (its Table III labels them Conv1–Conv4; they are VGG-16
// convolution layers 2, 4, 6 and 13).
func VGG16SelectedConvLayers() []LayerConfig {
	return []LayerConfig{
		{Model: "VGG-16", Name: "Conv1", InChannels: 64, OutKernels: 64, Kernel: 3, InputSize: 224, OutputSize: 224, Stride: 1, Pad: 1},
		{Model: "VGG-16", Name: "Conv2", InChannels: 128, OutKernels: 128, Kernel: 3, InputSize: 112, OutputSize: 112, Stride: 1, Pad: 1},
		{Model: "VGG-16", Name: "Conv3", InChannels: 256, OutKernels: 256, Kernel: 3, InputSize: 56, OutputSize: 56, Stride: 1, Pad: 1},
		{Model: "VGG-16", Name: "Conv4", InChannels: 512, OutKernels: 512, Kernel: 3, InputSize: 14, OutputSize: 14, Stride: 1, Pad: 1},
	}
}

// VGG16AllConvLayers returns all thirteen VGG-16 convolution layers
// (extension beyond the paper's selected subset).
func VGG16AllConvLayers() []LayerConfig {
	mk := func(name string, c, q, h int) LayerConfig {
		return LayerConfig{
			Model: "VGG-16", Name: name, InChannels: c, OutKernels: q,
			Kernel: 3, InputSize: h, OutputSize: h, Stride: 1, Pad: 1,
		}
	}
	return []LayerConfig{
		mk("Conv1-1", 3, 64, 224),
		mk("Conv1-2", 64, 64, 224),
		mk("Conv2-1", 64, 128, 112),
		mk("Conv2-2", 128, 128, 112),
		mk("Conv3-1", 128, 256, 56),
		mk("Conv3-2", 256, 256, 56),
		mk("Conv3-3", 256, 256, 56),
		mk("Conv4-1", 256, 512, 28),
		mk("Conv4-2", 512, 512, 28),
		mk("Conv4-3", 512, 512, 28),
		mk("Conv5-1", 512, 512, 14),
		mk("Conv5-2", 512, 512, 14),
		mk("Conv5-3", 512, 512, 14),
	}
}

// LayerByName finds a layer by its paper label in a layer list.
func LayerByName(layers []LayerConfig, name string) (LayerConfig, bool) {
	for _, l := range layers {
		if l.Name == name {
			return l, true
		}
	}
	return LayerConfig{}, false
}
