package core

import (
	"testing"

	"gathernoc/internal/cnn"
	"gathernoc/internal/noc"
)

func keyFor(t *testing.T, opts Options) string {
	t.Helper()
	layer, ok := cnn.LayerByName(cnn.AlexNetConvLayers(), "Conv3")
	if !ok {
		t.Fatal("Conv3 missing")
	}
	key, err := ComparisonKey(8, 8, layer, opts)
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// TestComparisonKeyNormalizesDefaults: spelling out the zero-value
// defaults must produce the same key as leaving them implicit, and a
// mutator that writes a field's default value must collide with no
// mutator at all — semantically identical runs share one cache entry.
func TestComparisonKeyNormalizesDefaults(t *testing.T) {
	implicit := keyFor(t, Options{})
	explicit := keyFor(t, Options{Rounds: 2, TMAC: 5, MaxCycles: 50_000_000})
	if implicit != explicit {
		t.Errorf("explicit defaults changed the key:\n%s\nvs\n%s", implicit, explicit)
	}
	noopMutated := keyFor(t, Options{MutateNetwork: func(c *noc.Config) {
		c.GatherCapacity = c.EffectiveGatherCapacity()
	}})
	if implicit != noopMutated {
		t.Errorf("default-writing mutator changed the key:\n%s\nvs\n%s", implicit, noopMutated)
	}
}

// TestComparisonKeySeparatesInputs: anything that changes the simulation
// must change the key.
func TestComparisonKeySeparatesInputs(t *testing.T) {
	base := keyFor(t, Options{})
	seen := map[string]string{"base": base}
	for name, opts := range map[string]Options{
		"rounds":  {Rounds: 3},
		"tmac":    {TMAC: 7},
		"exact":   {ExactRounds: true},
		"network": {MutateNetwork: func(c *noc.Config) { c.Router.VCs = 2 }},
	} {
		key := keyFor(t, opts)
		for prev, k := range seen {
			if key == k {
				t.Errorf("%s collides with %s", name, prev)
			}
		}
		seen[name] = key
	}

	layer, _ := cnn.LayerByName(cnn.AlexNetConvLayers(), "Conv1")
	other, err := ComparisonKey(8, 8, layer, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if other == base {
		t.Error("different layers share a key")
	}
	mesh, err := ComparisonKey(4, 4, mustLayer(t, "Conv3"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mesh == base {
		t.Error("different meshes share a key")
	}
}

func mustLayer(t *testing.T, name string) cnn.LayerConfig {
	t.Helper()
	l, ok := cnn.LayerByName(cnn.AlexNetConvLayers(), name)
	if !ok {
		t.Fatalf("layer %s missing", name)
	}
	return l
}
