package core

import (
	"math"
	"testing"

	"gathernoc/internal/cnn"
	"gathernoc/internal/noc"
	"gathernoc/internal/systolic"
)

func testLayer() cnn.LayerConfig {
	return cnn.LayerConfig{
		Model: "test", Name: "tiny", InChannels: 4, OutKernels: 8, Kernel: 3,
		InputSize: 10, OutputSize: 10, Stride: 1, Pad: 1,
	}
}

func TestRunLayerBothModes(t *testing.T) {
	for _, mode := range []systolic.Mode{systolic.RepetitiveUnicast, systolic.GatherMode} {
		rep, err := RunLayer(4, 4, testLayer(), mode, Options{Rounds: 1})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if rep.Result.TotalCycles <= 0 {
			t.Errorf("%s: no cycles", mode)
		}
		if rep.Energy.NoCPJ <= 0 {
			t.Errorf("%s: no energy", mode)
		}
		if rep.Events.StreamHops == 0 || rep.Events.MACs == 0 {
			t.Errorf("%s: streaming/MAC events missing", mode)
		}
	}
}

func TestCompareLayerImprovements(t *testing.T) {
	cmp, err := CompareLayer(4, 4, testLayer(), Options{Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.LatencyImprovementPct <= 0 {
		t.Errorf("latency improvement = %.2f, want > 0", cmp.LatencyImprovementPct)
	}
	if cmp.PowerImprovementPct <= 0 {
		t.Errorf("power improvement = %.2f, want > 0", cmp.PowerImprovementPct)
	}
	if cmp.EstimatedImprovementPct <= 0 {
		t.Errorf("estimated improvement = %.2f, want > 0", cmp.EstimatedImprovementPct)
	}
	// Gather must use fewer link traversals (the Fig. 1 hop argument).
	if cmp.Gather.Events.LinkFlits >= cmp.RU.Events.LinkFlits {
		t.Errorf("gather link flits %d >= RU %d",
			cmp.Gather.Events.LinkFlits, cmp.RU.Events.LinkFlits)
	}
}

func TestEstimateParamsMatchesTableII(t *testing.T) {
	layer, _ := cnn.LayerByName(cnn.AlexNetConvLayers(), "Conv2")
	p := EstimateParams(noc.DefaultConfig(8, 8), layer, 5)
	if p.Kappa != 4 || p.GatherFlits != 4 || p.Eta != 8 || p.UnicastFlits != 2 {
		t.Fatalf("params = %+v", p)
	}
	if got := p.Improvement(); math.Abs(got-0.73) > 0.005 {
		t.Errorf("Conv2 estimate = %.3f, want 0.73", got)
	}
}

func TestEstimateParams16x16GatherFlits(t *testing.T) {
	layer, _ := cnn.LayerByName(cnn.AlexNetConvLayers(), "Conv1")
	p := EstimateParams(noc.DefaultConfig(16, 16), layer, 5)
	if p.GatherFlits != 7 {
		t.Errorf("16-wide gather packet = %d flits, want 7", p.GatherFlits)
	}
}

func TestRunLayerRejectsBadNetwork(t *testing.T) {
	_, err := RunLayer(4, 4, testLayer(), systolic.GatherMode, Options{
		Rounds:        1,
		MutateNetwork: func(c *noc.Config) { c.Router.VCs = 0 },
	})
	if err == nil {
		t.Error("invalid network config accepted")
	}
}

func TestRunLayerRejectsBadLayer(t *testing.T) {
	if _, err := RunLayer(4, 4, cnn.LayerConfig{}, systolic.GatherMode, Options{Rounds: 1}); err == nil {
		t.Error("invalid layer accepted")
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.rounds() != 2 || o.tmac() != 5 || o.maxCycles() != 50_000_000 {
		t.Errorf("defaults = %d/%d/%d", o.rounds(), o.tmac(), o.maxCycles())
	}
	if o.coefficients().BufferWrite <= 0 {
		t.Error("default coefficients empty")
	}
}

func TestMutateSystolicApplied(t *testing.T) {
	rep, err := RunLayer(4, 4, testLayer(), systolic.GatherMode, Options{
		Rounds:         1,
		MutateSystolic: func(s *systolic.Config) { s.SkewPerHop = 2 },
	})
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunLayer(4, 4, testLayer(), systolic.GatherMode, Options{Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Skewed completion stretches the round.
	if rep.Result.RoundCycles.Mean() <= base.Result.RoundCycles.Mean() {
		t.Errorf("skewed round %.1f <= base %.1f",
			rep.Result.RoundCycles.Mean(), base.Result.RoundCycles.Mean())
	}
}
