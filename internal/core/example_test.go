package core_test

import (
	"fmt"

	"gathernoc/internal/cnn"
	"gathernoc/internal/core"
)

// A complete layer comparison in one call: repetitive unicast vs gather on
// the Table I 8x8 mesh. Improvements are deterministic; the exact latency
// golden values live in the root package's TestGoldenDeterminism.
func ExampleCompareLayer() {
	layer, _ := cnn.LayerByName(cnn.AlexNetConvLayers(), "Conv2")
	cmp, err := core.CompareLayer(8, 8, layer, core.Options{Rounds: 1})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("estimated: %.2f%%\n", cmp.EstimatedImprovementPct)
	fmt.Printf("simulated: %.2f%%\n", cmp.LatencyImprovementPct)
	fmt.Println("gather wins:", cmp.Gather.Result.TotalCycles < cmp.RU.Result.TotalCycles)
	// Output:
	// estimated: 0.73%
	// simulated: 1.16%
	// gather wins: true
}
