package core

import (
	"encoding/json"
	"fmt"

	"gathernoc/internal/cnn"
	"gathernoc/internal/noc"
	"gathernoc/internal/power"
	"gathernoc/internal/systolic"
)

// ComparisonKeyVersion tags comparison cache keys. Bump it whenever the
// meaning of a comparison changes — a simulator behaviour fix, a new
// Comparison field, a changed extrapolation rule — so stale cached
// results are invalidated by construction instead of being served.
const ComparisonKeyVersion = "gathernoc/core.Comparison/v1"

// comparisonKey is the canonical content of a CompareLayer invocation:
// everything that determines its result and nothing that does not. The
// network configuration enters through its canonical hash (noc.Config.Hash
// normalizes defaults and excludes result-invariant execution knobs), and
// the systolic configurations enter fully materialized — Options carries
// mutation closures, which cannot be hashed, so the key captures what they
// produced rather than what they are.
type comparisonKey struct {
	Version      string
	Rows, Cols   int
	NetworkHash  string
	RU, Gather   systolic.Config
	MaxCycles    int64
	Coefficients power.Coefficients
}

// ComparisonKey returns the canonical key of the CompareLayer call with
// the same arguments: two calls get equal keys exactly when they would
// run identical simulations. It materializes the network and systolic
// configurations through the same construction path RunLayer uses
// (defaults, then mutation), so closures in Options are keyed by effect.
// Mutators must be deterministic functions of their input config — a
// mutator that reads ambient state would alias distinct runs; none in
// this repository does.
func ComparisonKey(rows, cols int, layer cnn.LayerConfig, opts Options) (string, error) {
	netCfg := noc.DefaultConfig(rows, cols)
	if opts.MutateNetwork != nil {
		opts.MutateNetwork(&netCfg)
	}
	k := comparisonKey{
		Version:      ComparisonKeyVersion,
		Rows:         rows,
		Cols:         cols,
		NetworkHash:  netCfg.Hash(),
		RU:           materializeSystolic(layer, systolic.RepetitiveUnicast, opts),
		Gather:       materializeSystolic(layer, systolic.GatherMode, opts),
		MaxCycles:    opts.maxCycles(),
		Coefficients: opts.coefficients(),
	}
	data, err := json.Marshal(k)
	if err != nil {
		return "", fmt.Errorf("core: comparison key: %w", err)
	}
	return string(data), nil
}

// materializeSystolic mirrors RunLayer's systolic.Config construction for
// one collection mode, mutation included.
func materializeSystolic(layer cnn.LayerConfig, mode systolic.Mode, opts Options) systolic.Config {
	cfg := systolic.Config{
		Layer:             layer,
		Mode:              mode,
		TMAC:              opts.tmac(),
		MaxRounds:         opts.rounds(),
		SimulateAllRounds: opts.ExactRounds,
	}
	if opts.MutateSystolic != nil {
		opts.MutateSystolic(&cfg)
	}
	return cfg
}
