package core

import (
	"gathernoc/internal/flit"
	"gathernoc/internal/noc"
)

// flitFormat mirrors the format construction the network performs, for
// analytic parameter derivation without building a network.
func flitFormat(cfg noc.Config) (*flit.Format, error) {
	return flit.NewFormat(cfg.FlitBits, cfg.PayloadBits, cfg.Rows*cfg.Cols+cfg.Rows)
}
