// Package core is the library facade: it ties the network, systolic
// dataflow, power and analytic models together into single-call layer runs
// and RU-vs-gather comparisons — the API the examples, CLI tools and
// benchmark harness consume.
package core

import (
	"fmt"

	"gathernoc/internal/analytic"
	"gathernoc/internal/cnn"
	"gathernoc/internal/noc"
	"gathernoc/internal/power"
	"gathernoc/internal/systolic"
)

// Options tune a layer run. The zero value selects the paper's defaults.
type Options struct {
	// Rounds is how many systolic rounds to simulate before extrapolation
	// (0 = 2).
	Rounds int
	// ExactRounds simulates every round of the layer (slow on real
	// layers).
	ExactRounds bool
	// TMAC overrides the MAC latency (0 = Table I's 5).
	TMAC int
	// MaxCycles bounds a single run (0 = 50M).
	MaxCycles int64
	// MutateNetwork, when non-nil, adjusts the network configuration
	// before construction (ablations).
	MutateNetwork func(*noc.Config)
	// MutateSystolic, when non-nil, adjusts the systolic configuration.
	MutateSystolic func(*systolic.Config)
	// Coefficients overrides the energy model (nil = defaults).
	Coefficients *power.Coefficients
}

func (o Options) rounds() int {
	if o.Rounds == 0 {
		return 2
	}
	return o.Rounds
}

func (o Options) tmac() int {
	if o.TMAC == 0 {
		return 5
	}
	return o.TMAC
}

func (o Options) maxCycles() int64 {
	if o.MaxCycles == 0 {
		return 50_000_000
	}
	return o.MaxCycles
}

func (o Options) coefficients() power.Coefficients {
	if o.Coefficients != nil {
		return *o.Coefficients
	}
	return power.DefaultCoefficients()
}

// LayerReport is the outcome of one layer run in one collection mode.
type LayerReport struct {
	// Result is the systolic run summary (latencies, protocol counters,
	// integrity checks).
	Result *systolic.Result
	// Events are the power-model inputs for the simulated rounds.
	Events power.Events
	// Energy is the energy/power report over the simulated rounds.
	Energy power.Report
	// NetworkConfig echoes the configuration used.
	NetworkConfig noc.Config
}

// RunLayer executes one convolution layer on a rows×cols mesh in the given
// collection mode and returns latency and energy results.
func RunLayer(rows, cols int, layer cnn.LayerConfig, mode systolic.Mode, opts Options) (*LayerReport, error) {
	cfg := noc.DefaultConfig(rows, cols)
	if opts.MutateNetwork != nil {
		opts.MutateNetwork(&cfg)
	}
	nw, err := noc.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	// Stop any shard workers when the run ends (no-op for the default
	// sequential engine); RunLayer owns the network for its whole life.
	defer nw.Close()
	sysCfg := systolic.Config{
		Layer:             layer,
		Mode:              mode,
		TMAC:              opts.tmac(),
		MaxRounds:         opts.rounds(),
		SimulateAllRounds: opts.ExactRounds,
	}
	if opts.MutateSystolic != nil {
		opts.MutateSystolic(&sysCfg)
	}
	ctl, err := systolic.NewController(nw, sysCfg)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	res, err := ctl.Run(opts.maxCycles())
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if res.PayloadErrors != 0 {
		return nil, fmt.Errorf("core: %s/%s on %dx%d: %d payload integrity errors",
			layer.Name, mode, rows, cols, res.PayloadErrors)
	}

	a := res.Activity
	events := power.Events{
		BufferWrites:   a.BufferWrites,
		BufferReads:    a.BufferReads,
		RCComputations: a.RCComputations,
		VAAllocations:  a.VAAllocations,
		SAGrants:       a.SAGrants,
		Crossings:      a.Crossings,
		LinkFlits:      a.LinkFlits,
		GatherUploads:  a.GatherUploads,
		ReduceMerges:   a.ReduceMerges,
		StreamHops:     res.StreamHops,
		MACs:           res.MACs,
	}
	report := power.Compute(events, opts.coefficients(), res.MeasuredCycles, 1.0)
	return &LayerReport{
		Result:        res,
		Events:        events,
		Energy:        report,
		NetworkConfig: cfg,
	}, nil
}

// Comparison holds matched RU and gather runs of the same layer plus the
// derived improvement figures.
type Comparison struct {
	// RU and Gather are the two runs.
	RU     *LayerReport
	Gather *LayerReport
	// LatencyImprovementPct is Eq. (4)'s form: (RU − G) / G × 100 over
	// the extrapolated total latencies (Figs. 7/8 and Table II's
	// "Simulated" row).
	LatencyImprovementPct float64
	// PowerImprovementPct is the NoC dynamic-energy saving
	// (RU − G) / RU × 100 (Figs. 9/10).
	PowerImprovementPct float64
	// EstimatedImprovementPct is Eq. (4) with ideal terms (Table II's
	// "Estimated" row).
	EstimatedImprovementPct float64
}

// CompareLayer runs the layer in both collection modes and derives the
// improvement figures.
func CompareLayer(rows, cols int, layer cnn.LayerConfig, opts Options) (*Comparison, error) {
	ru, err := RunLayer(rows, cols, layer, systolic.RepetitiveUnicast, opts)
	if err != nil {
		return nil, err
	}
	g, err := RunLayer(rows, cols, layer, systolic.GatherMode, opts)
	if err != nil {
		return nil, err
	}
	c := &Comparison{RU: ru, Gather: g}
	if g.Result.TotalCycles > 0 {
		c.LatencyImprovementPct = float64(ru.Result.TotalCycles-g.Result.TotalCycles) /
			float64(g.Result.TotalCycles) * 100
	}
	c.PowerImprovementPct = power.ImprovementPercent(ru.Energy.NoCPJ, g.Energy.NoCPJ)
	c.EstimatedImprovementPct = EstimateParams(ru.NetworkConfig, layer, opts.tmac()).Improvement()
	return c, nil
}

// EstimateParams builds the Eq. (2)–(4) parameter set matching a network
// configuration and layer (ideal terms: tδ = ΔR = ΔG = 0).
func EstimateParams(cfg noc.Config, layer cnn.LayerConfig, tmac int) analytic.Params {
	format, err := flitFormat(cfg)
	gflits := 4
	if err == nil {
		gflits = format.GatherFlits(cfg.EffectiveGatherCapacity())
	}
	return analytic.Params{
		N:            cfg.Rows,
		M:            cfg.Cols,
		Kappa:        cfg.HeaderHopLatency(),
		UnicastFlits: cfg.UnicastFlits,
		GatherFlits:  gflits,
		Eta:          cfg.EffectiveGatherCapacity(),
		TMAC:         tmac,
		CRR:          layer.MACsPerPE(),
	}
}
