package gathernoc

import (
	"testing"

	"gathernoc/internal/cnn"
	"gathernoc/internal/core"
	"gathernoc/internal/noc"
	"gathernoc/internal/systolic"
)

// TestGoldenDeterminism pins the simulator's exact cycle counts for a
// reference configuration. These values are a contract: the simulation is
// bit-for-bit deterministic, so any change here means the timing model
// changed and EXPERIMENTS.md needs re-measuring.
func TestGoldenDeterminism(t *testing.T) {
	layer, ok := cnn.LayerByName(cnn.AlexNetConvLayers(), "Conv1")
	if !ok {
		t.Fatal("Conv1 missing")
	}

	ru, err := core.RunLayer(8, 8, layer, systolic.RepetitiveUnicast, core.Options{Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.RunLayer(8, 8, layer, systolic.GatherMode, core.Options{Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}

	// One round of AlexNet Conv1 on the Table I 8x8 configuration:
	// C·R·R + T_MAC = 368 compute cycles plus the measured collection
	// phases (57 for RU under per-packet buffer transactions, 38 for the
	// single gather packet).
	if got := int64(ru.Result.RoundCycles.Mean()); got != 425 {
		t.Errorf("RU round = %d cycles, golden 425", got)
	}
	if got := int64(g.Result.RoundCycles.Mean()); got != 406 {
		t.Errorf("gather round = %d cycles, golden 406", got)
	}

	// Gather wire activity for one full round: the 8 per-row packets are
	// 4 flits each; every non-initiator PE piggybacked.
	if got := g.Result.PiggybackAcks; got != 56 {
		t.Errorf("piggyback acks = %d, golden 56 (7 cols x 8 rows)", got)
	}
	if got := g.Result.SelfInitiatedGathers; got != 0 {
		t.Errorf("self-initiated = %d, golden 0", got)
	}

	// Re-running must give identical activity — full determinism.
	g2, err := core.RunLayer(8, 8, layer, systolic.GatherMode, core.Options{Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.Events != g2.Events {
		t.Errorf("replay diverged:\n%+v\n%+v", g.Events, g2.Events)
	}

	// The sharded engine is the same contract from a different backend:
	// the row-partitioned two-phase schedule must land on the identical
	// golden numbers at every shard count (here the interesting extremes;
	// the full matrix runs in TestShardedEngineEquivalenceLayers).
	for _, shards := range []int{1, 4} {
		gs, err := core.RunLayer(8, 8, layer, systolic.GatherMode, core.Options{
			Rounds:        1,
			MutateNetwork: func(c *noc.Config) { c.Shards = shards },
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := int64(gs.Result.RoundCycles.Mean()); got != 406 {
			t.Errorf("shards=%d gather round = %d cycles, golden 406", shards, got)
		}
		if g.Events != gs.Events {
			t.Errorf("shards=%d activity diverged:\n%+v\n%+v", shards, g.Events, gs.Events)
		}
	}
}
