package gathernoc

import (
	"testing"

	"gathernoc/internal/cnn"
	"gathernoc/internal/collective"
	"gathernoc/internal/core"
	"gathernoc/internal/noc"
	"gathernoc/internal/systolic"
)

// TestGoldenDeterminism pins the simulator's exact cycle counts for a
// reference configuration. These values are a contract: the simulation is
// bit-for-bit deterministic, so any change here means the timing model
// changed and EXPERIMENTS.md needs re-measuring.
func TestGoldenDeterminism(t *testing.T) {
	layer, ok := cnn.LayerByName(cnn.AlexNetConvLayers(), "Conv1")
	if !ok {
		t.Fatal("Conv1 missing")
	}

	ru, err := core.RunLayer(8, 8, layer, systolic.RepetitiveUnicast, core.Options{Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.RunLayer(8, 8, layer, systolic.GatherMode, core.Options{Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}

	// One round of AlexNet Conv1 on the Table I 8x8 configuration:
	// C·R·R + T_MAC = 368 compute cycles plus the measured collection
	// phases (57 for RU under per-packet buffer transactions, 38 for the
	// single gather packet).
	if got := int64(ru.Result.RoundCycles.Mean()); got != 425 {
		t.Errorf("RU round = %d cycles, golden 425", got)
	}
	if got := int64(g.Result.RoundCycles.Mean()); got != 406 {
		t.Errorf("gather round = %d cycles, golden 406", got)
	}

	// Gather wire activity for one full round: the 8 per-row packets are
	// 4 flits each; every non-initiator PE piggybacked.
	if got := g.Result.PiggybackAcks; got != 56 {
		t.Errorf("piggyback acks = %d, golden 56 (7 cols x 8 rows)", got)
	}
	if got := g.Result.SelfInitiatedGathers; got != 0 {
		t.Errorf("self-initiated = %d, golden 0", got)
	}

	// Re-running must give identical activity — full determinism.
	g2, err := core.RunLayer(8, 8, layer, systolic.GatherMode, core.Options{Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.Events != g2.Events {
		t.Errorf("replay diverged:\n%+v\n%+v", g.Events, g2.Events)
	}

	// The sharded engine is the same contract from a different backend:
	// the row-partitioned two-phase schedule must land on the identical
	// golden numbers at every shard count (here the interesting extremes;
	// the full matrix runs in TestShardedEngineEquivalenceLayers).
	for _, shards := range []int{1, 4} {
		gs, err := core.RunLayer(8, 8, layer, systolic.GatherMode, core.Options{
			Rounds:        1,
			MutateNetwork: func(c *noc.Config) { c.Shards = shards },
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := int64(gs.Result.RoundCycles.Mean()); got != 406 {
			t.Errorf("shards=%d gather round = %d cycles, golden 406", shards, got)
		}
		if g.Events != gs.Events {
			t.Errorf("shards=%d activity diverged:\n%+v\n%+v", shards, g.Events, gs.Events)
		}
	}
}

// TestGoldenCollectives pins the tree collectives' exact timing and root
// traffic on the reference 8x8 fabrics — the same contract as
// TestGoldenDeterminism extended to the mesh-wide collective layer, at
// every shard count. On the mesh the reduce roots at the last row's sink
// (2-round gather: 8 flits); on the torus it roots at the east-column PE,
// whose ejector also sees its own row's level-1 packets. The broadcast is
// topology-independent: one 2-flit multicast per round from the corner.
func TestGoldenCollectives(t *testing.T) {
	type golden struct {
		round     int64
		rootFlits uint64
		merges    uint64
	}
	goldens := map[string]golden{
		"mesh/reduce":     {round: 86, rootFlits: 8, merges: 126},
		"mesh/bcast":      {round: 74, rootFlits: 4, merges: 0},
		"mesh/allreduce":  {round: 150, rootFlits: 20, merges: 126},
		"torus/reduce":    {round: 62, rootFlits: 32, merges: 108},
		"torus/bcast":     {round: 74, rootFlits: 4, merges: 0},
		"torus/allreduce": {round: 126, rootFlits: 36, merges: 108},
	}
	for _, topo := range []string{"mesh", "torus"} {
		for _, op := range []collective.Op{collective.Reduce, collective.Broadcast, collective.AllReduce} {
			key := topo + "/" + op.String()
			t.Run(key, func(t *testing.T) {
				want := goldens[key]
				for _, shards := range []int{1, 2, 4} {
					cfg := noc.DefaultConfig(8, 8)
					if topo == "torus" {
						cfg = noc.DefaultTorusConfig(8, 8)
					}
					cfg.Shards = shards
					nw, err := noc.New(cfg)
					if err != nil {
						t.Fatal(err)
					}
					ctl, err := collective.NewController(nw, collective.Config{
						Op: op, Algorithm: collective.AlgTree, Rounds: 2, ComputeLatency: 10,
					})
					if err != nil {
						nw.Close()
						t.Fatal(err)
					}
					res, err := ctl.Run(1_000_000)
					nw.Close()
					if err != nil {
						t.Fatal(err)
					}
					if res.OracleErrors != 0 || res.BroadcastErrors != 0 {
						t.Fatalf("shards=%d: %d oracle / %d broadcast errors",
							shards, res.OracleErrors, res.BroadcastErrors)
					}
					if got := int64(res.RoundCycles.Mean()); got != want.round {
						t.Errorf("shards=%d round = %d cycles, golden %d", shards, got, want.round)
					}
					if res.RootFlits != want.rootFlits {
						t.Errorf("shards=%d root flits = %d, golden %d", shards, res.RootFlits, want.rootFlits)
					}
					if res.Merges != want.merges {
						t.Errorf("shards=%d merges = %d, golden %d", shards, res.Merges, want.merges)
					}
				}
			})
		}
	}
}
