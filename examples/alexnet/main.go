// AlexNet: sweep all five AlexNet convolution layers (Table III) on the
// paper's 8x8 and 16x16 meshes and print the Fig. 7 (latency) and Fig. 9
// (power) series plus Table II's estimated-vs-simulated comparison.
//
//	go run ./examples/alexnet
package main

import (
	"fmt"
	"log"

	"gathernoc/internal/experiments"
)

func main() {
	opts := experiments.Options{Rounds: 2}

	t2, err := experiments.Table2(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.RenderTable2(t2))
	fmt.Println()

	f7, err := experiments.Fig7(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.RenderImprovements(
		"Fig. 7: total-latency improvement, AlexNet", "% gather vs RU", f7))
	fmt.Println()

	f9, err := experiments.Fig9(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.RenderImprovements(
		"Fig. 9: NoC power improvement, AlexNet", "% gather vs RU", f9))
}
