// Tracereplay: generate a convolution-layer traffic trace (as the paper
// did from PyTorch layer shapes), serialize it to the JSON-lines format,
// read it back, and replay it cycle-accurately on the NoC — comparing the
// gather and repetitive-unicast versions of the same round.
//
//	go run ./examples/tracereplay
package main

import (
	"bytes"
	"fmt"
	"log"

	"gathernoc/internal/cnn"
	"gathernoc/internal/nic"
	"gathernoc/internal/noc"
	"gathernoc/internal/topology"
	"gathernoc/internal/traffic"
)

func main() {
	layer, ok := cnn.LayerByName(cnn.AlexNetConvLayers(), "Conv3")
	if !ok {
		log.Fatal("AlexNet Conv3 missing")
	}

	for _, gather := range []bool{false, true} {
		mode := "repetitive unicast"
		if gather {
			mode = "gather"
		}

		cfg := noc.DefaultConfig(8, 8)
		nw, err := noc.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		// Scale per-column δ as the accelerator layer would.
		for row := 0; row < cfg.Rows; row++ {
			for col := 0; col < cfg.Cols; col++ {
				id := nw.Mesh().ID(topology.Coord{Row: row, Col: col})
				nw.NIC(id).SetDelta(cfg.Delta * int64(1+col))
			}
		}

		// One round of result collection, starting after streaming+MAC.
		start := int64(layer.MACsPerPE() + 5)
		events := traffic.GenerateLayerTrace(layer, cfg.Rows, cfg.Cols, gather, start, nw.Mesh().NumNodes())

		// Round-trip through the wire format.
		var buf bytes.Buffer
		if err := traffic.Write(&buf, events); err != nil {
			log.Fatal(err)
		}
		parsed, err := traffic.Read(&buf)
		if err != nil {
			log.Fatal(err)
		}

		rp, err := traffic.NewReplayer(nw, parsed)
		if err != nil {
			log.Fatal(err)
		}
		payloads, packets := 0, 0
		for row := 0; row < cfg.Rows; row++ {
			nw.Sink(row).OnReceive(func(p *nic.ReceivedPacket) {
				packets++
				payloads += len(p.Payloads)
			})
		}
		cycles, err := rp.Run(1_000_000)
		if err != nil {
			log.Fatal(err)
		}
		a := nw.Activity()
		fmt.Printf("%-20s events=%-3d packets-at-buffer=%-3d payloads=%-3d cycles=%-5d link-flits=%d\n",
			mode, len(parsed), packets, payloads, cycles, a.LinkFlits)
	}
	fmt.Println("\n(gather delivers the same 64 payloads in 8 packets instead of 64,")
	fmt.Println(" with correspondingly fewer link traversals)")
}
