// Synthetic: drive the NoC with classic synthetic traffic patterns and
// print a latency-throughput curve — the standard way to characterize an
// interconnect before running application workloads on it.
//
//	go run ./examples/synthetic
package main

import (
	"fmt"
	"log"

	"gathernoc/internal/noc"
	"gathernoc/internal/traffic"
)

func main() {
	fmt.Println("8x8 mesh, uniform random traffic, 2-flit packets")
	fmt.Printf("%10s %12s %12s %12s\n", "rate", "avg lat", "p99 lat", "throughput")

	for _, rate := range []float64{0.005, 0.01, 0.02, 0.04, 0.06} {
		cfg := noc.DefaultConfig(8, 8)
		cfg.EastSinks = false
		nw, err := noc.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		gen, err := traffic.NewGenerator(nw, traffic.GeneratorConfig{
			Pattern:       traffic.UniformRandom{Nodes: nw.Mesh().NumNodes()},
			InjectionRate: rate,
			PacketFlits:   2,
			Warmup:        1000,
			Measure:       4000,
			Seed:          42,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := gen.Run(10_000_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10.3f %12.1f %12.0f %12.4f\n",
			rate, res.Latency.Mean(), res.Latency.Percentile(99), res.Throughput)
	}

	fmt.Println("\nhotspot traffic toward node 0 (the many-to-one pattern gather targets)")
	fmt.Printf("%10s %12s %12s\n", "rate", "avg lat", "p99 lat")
	for _, rate := range []float64{0.005, 0.01, 0.02} {
		cfg := noc.DefaultConfig(8, 8)
		cfg.EastSinks = false
		nw, err := noc.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		gen, err := traffic.NewGenerator(nw, traffic.GeneratorConfig{
			Pattern:       traffic.Hotspot{Nodes: nw.Mesh().NumNodes(), Target: 0, Fraction: 0.3},
			InjectionRate: rate,
			PacketFlits:   2,
			Warmup:        1000,
			Measure:       4000,
			Seed:          42,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := gen.Run(10_000_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10.3f %12.1f %12.0f\n",
			rate, res.Latency.Mean(), res.Latency.Percentile(99))
	}
}
