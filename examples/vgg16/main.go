// VGG-16: evaluate the paper's selected VGG-16 convolution layers
// (Table III: VGG layers 2, 4, 6 and 13) on 8x8 and 16x16 meshes,
// reproducing the Fig. 8 (latency) and Fig. 10 (power) series, and — as an
// extension beyond the paper — the same comparison for all thirteen VGG-16
// convolution layers on the 8x8 mesh.
//
//	go run ./examples/vgg16            # the paper's four layers
//	go run ./examples/vgg16 -all       # all 13 conv layers (slower)
package main

import (
	"flag"
	"fmt"
	"log"

	"gathernoc/internal/cnn"
	"gathernoc/internal/core"
	"gathernoc/internal/experiments"
)

func main() {
	all := flag.Bool("all", false, "also run all 13 VGG-16 conv layers on 8x8")
	flag.Parse()

	opts := experiments.Options{Rounds: 2}
	f8, err := experiments.Fig8(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.RenderImprovements(
		"Fig. 8: total-latency improvement, VGG-16", "% gather vs RU", f8))
	fmt.Println()

	f10, err := experiments.Fig10(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.RenderImprovements(
		"Fig. 10: NoC power improvement, VGG-16", "% gather vs RU", f10))

	if !*all {
		return
	}
	fmt.Println("\nExtension: all 13 VGG-16 conv layers on 8x8")
	fmt.Printf("%-10s %10s %10s %12s\n", "layer", "latency%", "power%", "C·R·R")
	for _, layer := range cnn.VGG16AllConvLayers() {
		cmp, err := core.CompareLayer(8, 8, layer, core.Options{Rounds: 2})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %10.2f %10.2f %12d\n",
			layer.Name, cmp.LatencyImprovementPct, cmp.PowerImprovementPct, layer.MACsPerPE())
	}
}
