// Mixedtraffic: the paper's Sec. VI scenario — gather collection sharing
// the mesh with unrelated background traffic. Compares shared virtual
// channels against a VC dedicated to gather packets (the mitigation the
// paper sketches for δ timeouts under mixed traffic), at increasing
// background load.
//
//	go run ./examples/mixedtraffic
package main

import (
	"fmt"
	"log"

	"gathernoc/internal/experiments"
)

func main() {
	rows, err := experiments.MixedTraffic(experiments.Options{Rounds: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.RenderMixedTraffic(rows))
	fmt.Println()

	// How much does background load stretch the collection phase?
	var quiet, busyShared, busyDedicated float64
	for _, r := range rows {
		switch {
		case r.Rate == 0 && !r.DedicatedVC:
			quiet = r.Collection
		case r.Rate == 0.15 && !r.DedicatedVC:
			busyShared = r.Collection
		case r.Rate == 0.15 && r.DedicatedVC:
			busyDedicated = r.Collection
		}
	}
	fmt.Printf("background load stretches result collection by %.1f%% with shared VCs\n",
		(busyShared/quiet-1)*100)
	fmt.Printf("and by %.1f%% with a dedicated gather VC\n",
		(busyDedicated/quiet-1)*100)
}
