// Quickstart: run one AlexNet convolution layer on an 8x8 mesh NoC in both
// collection modes — the paper's repetitive-unicast baseline and its gather
// packets — and print the latency/energy comparison.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gathernoc/internal/cnn"
	"gathernoc/internal/core"
)

func main() {
	layer, ok := cnn.LayerByName(cnn.AlexNetConvLayers(), "Conv1")
	if !ok {
		log.Fatal("AlexNet Conv1 missing")
	}

	cmp, err := core.CompareLayer(8, 8, layer, core.Options{Rounds: 2})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("layer                 %s\n", layer)
	fmt.Printf("rounds (total)        %d\n", cmp.RU.Result.TotalRounds)
	fmt.Printf("RU total latency      %d cycles\n", cmp.RU.Result.TotalCycles)
	fmt.Printf("gather total latency  %d cycles\n", cmp.Gather.Result.TotalCycles)
	fmt.Printf("latency improvement   %.2f%% (paper's Eq. 4 estimate: %.2f%%)\n",
		cmp.LatencyImprovementPct, cmp.EstimatedImprovementPct)
	fmt.Printf("RU NoC energy         %.0f pJ (simulated rounds)\n", cmp.RU.Energy.NoCPJ)
	fmt.Printf("gather NoC energy     %.0f pJ\n", cmp.Gather.Energy.NoCPJ)
	fmt.Printf("power improvement     %.2f%%\n", cmp.PowerImprovementPct)
	fmt.Printf("payloads piggybacked  %d (self-initiated: %d)\n",
		cmp.Gather.Result.PiggybackAcks, cmp.Gather.Result.SelfInitiatedGathers)
}
