package gathernoc

import (
	"bytes"
	"fmt"
	"testing"

	"gathernoc/internal/noc"
	"gathernoc/internal/telemetry"
	"gathernoc/internal/traffic"
	"gathernoc/internal/workload"
)

// telemetryRun drives the scheduler workload of the sharded-equivalence
// suite — three concurrent tagged jobs on an 8x8 mesh — with telemetry
// on, and returns the harvested report plus both rendered exports.
func telemetryRun(t *testing.T, shards int) (*telemetry.Report, []byte, []byte) {
	t.Helper()
	cfg := noc.DefaultConfig(8, 8)
	cfg.EastSinks = false
	cfg.Shards = shards
	cfg.Telemetry = &telemetry.Config{Epoch: 64, TraceSample: 4}
	nw, err := noc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	jobs := make([]workload.Job, 3)
	for i := range jobs {
		gen, err := traffic.NewGeneratorDriver(nw, traffic.GeneratorConfig{
			Pattern:       traffic.UniformRandom{Nodes: 64},
			InjectionRate: 0.02,
			PacketFlits:   2,
			Warmup:        100,
			Measure:       400,
			Seed:          int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = workload.Job{
			Name:   fmt.Sprintf("soak%d", i),
			Phases: []workload.Phase{{Name: "uniform", Driver: gen}},
		}
	}
	s, err := workload.New(nw, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	rep := nw.HarvestTelemetry()
	if rep == nil {
		t.Fatal("telemetry enabled but HarvestTelemetry returned nil")
	}
	var csv, trace bytes.Buffer
	if err := rep.WriteMetricsCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteChromeTrace(&trace); err != nil {
		t.Fatal(err)
	}
	return rep, csv.Bytes(), trace.Bytes()
}

// TestTelemetryShardInvariance is the observability twin of the sharded
// bit-identity matrix (DESIGN.md §11): the same workload with telemetry
// on must harvest the identical epoch series and — after the canonical
// event sort — the identical trace stream at every shard count, down to
// the exported bytes. Hash-based packet sampling and the per-shard
// single-writer probes are what this pins; it runs under -race in CI so
// a cross-shard probe write fails even when the bytes happen to match.
func TestTelemetryShardInvariance(t *testing.T) {
	seqRep, seqCSV, seqTrace := telemetryRun(t, 0)
	if seqRep.DroppedEvents != 0 {
		t.Fatalf("sequential run dropped %d events; grow MaxEvents, the comparison needs the full stream", seqRep.DroppedEvents)
	}
	if len(seqRep.EpochIndex) == 0 || len(seqRep.Events) == 0 {
		t.Fatalf("sequential run harvested %d epochs, %d events — workload did not exercise telemetry",
			len(seqRep.EpochIndex), len(seqRep.Events))
	}
	for _, shards := range shardMatrix() {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			rep, csv, trace := telemetryRun(t, shards)
			if rep.DroppedEvents != 0 {
				t.Fatalf("dropped %d events", rep.DroppedEvents)
			}
			if len(rep.Events) != len(seqRep.Events) {
				t.Errorf("event count diverged: sequential %d, sharded %d", len(seqRep.Events), len(rep.Events))
			}
			for i := range rep.Events {
				if i < len(seqRep.Events) && rep.Events[i] != seqRep.Events[i] {
					t.Errorf("event %d diverged:\nsequential %+v\nsharded    %+v", i, seqRep.Events[i], rep.Events[i])
					break
				}
			}
			if !bytes.Equal(csv, seqCSV) {
				t.Error("metrics CSV diverged from the sequential engine")
			}
			if !bytes.Equal(trace, seqTrace) {
				t.Error("Chrome trace JSON diverged from the sequential engine")
			}
		})
	}
}

// TestTelemetryOffIsIdentical pins the zero-cost-off contract: a network
// with no Telemetry config and one with a nil-equivalent disabled config
// produce the same schedule as each other (the golden and equivalence
// suites already pin the off-schedule itself; here the point is that the
// disabled config wires no probes at all).
func TestTelemetryOffIsIdentical(t *testing.T) {
	run := func(tcfg *telemetry.Config) noc.Activity {
		cfg := noc.DefaultConfig(8, 8)
		cfg.EastSinks = false
		cfg.Telemetry = tcfg
		nw, err := noc.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer nw.Close()
		gen, err := traffic.NewGenerator(nw, traffic.GeneratorConfig{
			Pattern:       traffic.UniformRandom{Nodes: 64},
			InjectionRate: 0.05,
			PacketFlits:   2,
			Warmup:        100,
			Measure:       400,
			Seed:          3,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := gen.Run(1_000_000); err != nil {
			t.Fatal(err)
		}
		if rep := nw.HarvestTelemetry(); rep != nil && tcfg == nil {
			t.Fatal("nil telemetry config produced a report")
		}
		return nw.Activity()
	}
	off := run(nil)
	disabled := run(&telemetry.Config{}) // zero value: Enabled() == false
	if off != disabled {
		t.Errorf("disabled-config schedule diverged:\nnil      %+v\ndisabled %+v", off, disabled)
	}
	on := run(&telemetry.Config{Epoch: 64, TraceSample: 8})
	if off != on {
		t.Errorf("telemetry-on schedule diverged (must be purely observational):\noff %+v\non  %+v", off, on)
	}
}
