package gathernoc

import (
	"testing"

	"gathernoc/internal/analytic"
	"gathernoc/internal/cnn"
	"gathernoc/internal/nic"
	"gathernoc/internal/noc"
	"gathernoc/internal/topology"
	"gathernoc/internal/traffic"
)

// TestWireTrafficMatchesClosedForm replays one collection round of both
// schemes on the live simulator and requires the measured link-flit and
// buffer-write counters to equal the analytic closed forms exactly — the
// quantitative version of the paper's Fig. 1 resource argument.
func TestWireTrafficMatchesClosedForm(t *testing.T) {
	layer, _ := cnn.LayerByName(cnn.AlexNetConvLayers(), "Conv3")
	for _, gather := range []bool{false, true} {
		cfg := noc.DefaultConfig(8, 8)
		nw, err := noc.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for row := 0; row < cfg.Rows; row++ {
			for col := 0; col < cfg.Cols; col++ {
				id := nw.Mesh().ID(topology.Coord{Row: row, Col: col})
				nw.NIC(id).SetDelta(cfg.Delta * int64(1+col))
			}
		}
		events := traffic.GenerateLayerTrace(layer, cfg.Rows, cfg.Cols, gather, 0, nw.Mesh().NumNodes())
		rp, err := traffic.NewReplayer(nw, events)
		if err != nil {
			t.Fatal(err)
		}
		payloads := 0
		for row := 0; row < cfg.Rows; row++ {
			nw.Sink(row).OnReceive(func(p *nic.ReceivedPacket) { payloads += len(p.Payloads) })
		}
		if _, err := rp.Run(1_000_000); err != nil {
			t.Fatal(err)
		}
		if payloads != 64 {
			t.Fatalf("gather=%v: payloads = %d, want 64", gather, payloads)
		}

		format := nw.Format()
		model := analytic.Traffic{
			N: cfg.Rows, M: cfg.Cols,
			UnicastFlits: cfg.UnicastFlits,
			GatherFlits:  format.GatherFlits(cfg.EffectiveGatherCapacity()),
		}
		a := nw.Activity()
		wantLink := uint64(model.RULinkFlits())
		wantWrites := uint64(model.RUBufferWrites())
		if gather {
			wantLink = uint64(model.GatherLinkFlits())
			wantWrites = uint64(model.GatherBufferWrites())
		}
		if a.LinkFlits != wantLink {
			t.Errorf("gather=%v: link flits = %d, closed form %d", gather, a.LinkFlits, wantLink)
		}
		if a.BufferWrites != wantWrites {
			t.Errorf("gather=%v: buffer writes = %d, closed form %d", gather, a.BufferWrites, wantWrites)
		}
	}
}
