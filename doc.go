// Package gathernoc reproduces "Improving the Performance of a NoC-based
// CNN Accelerator with Gather Support" (Tiwari et al., IEEE SOCC 2020;
// arXiv:2108.02567): a cycle-accurate virtual-channel wormhole mesh NoC
// simulator whose routers can piggyback a PE's partial-sum payload onto a
// passing gather packet, compared against the repetitive-unicast baseline
// on AlexNet and VGG-16 convolution workloads mapped as output-stationary
// systolic arrays.
//
// The root package carries the integration tests and the benchmark harness
// (one benchmark per paper table/figure); the implementation lives under
// internal/ — see README.md for the architecture map and DESIGN.md /
// EXPERIMENTS.md for the reproduction methodology and results.
package gathernoc
