// Package gathernoc reproduces "Improving the Performance of a NoC-based
// CNN Accelerator with Gather Support" (Tiwari et al., IEEE SOCC 2020;
// arXiv:2108.02567): a cycle-accurate virtual-channel wormhole mesh NoC
// simulator whose routers can piggyback a PE's partial-sum payload onto a
// passing gather packet, compared against the repetitive-unicast baseline
// on AlexNet and VGG-16 convolution workloads mapped as output-stationary
// systolic arrays.
//
// Beyond the paper, internal/reduce implements the follow-on in-network
// accumulation (INA) idea (arXiv:2209.10056) as a fourth packet type,
// flit.Accumulate: a constant 2-flit packet whose tail flit carries a
// running sum that routers extend in place. A packet's walk down a row
// looks like this — the leftmost PE launches the packet seeded with its
// own partial sum and a merge budget in the header's ASpace field; at
// each hop, route computation reserves the local accumulation station's
// operand when the destination and reduction ID match, decrementing
// ASpace; the reserved operand's value is added into the accumulator
// during the tail flit's idle RC/VA pipeline slots (exact wrap-around
// uint64 arithmetic, one adder event in the power model); operands the
// packet misses fall back to self-initiated accumulate packets after a
// reduce-δ timeout. The east sink thus receives the row's bit-exact sum
// in one 2-flit packet instead of η gathered payloads, checked against a
// software reduction oracle (reduce.Oracle).
//
// The interconnect fabric and routing algorithm are pluggable
// (internal/topology): a Topology/Routing interface pair with mesh and
// 2-D torus fabrics and XY dimension-order, west-first and odd-even
// routing. On the torus, dimension-order routing exploits the wraparound
// links under two dateline VC classes for deadlock freedom, and row
// collection generalizes through noc.Network.RowCollect — two initiators
// cover each row ring where no single minimal route can. The paper's
// mesh + XY configuration remains the bit-pinned default; DESIGN.md §7
// documents the interfaces, the deadlock arguments and the extension
// guide.
//
// The root package carries the integration tests and the benchmark harness
// (one benchmark per paper table/figure); the implementation lives under
// internal/ — see README.md for the architecture map and DESIGN.md /
// EXPERIMENTS.md for the reproduction methodology and results.
package gathernoc
