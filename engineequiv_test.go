package gathernoc

import (
	"testing"

	"gathernoc/internal/cnn"
	"gathernoc/internal/core"
	"gathernoc/internal/noc"
	"gathernoc/internal/stats"
	"gathernoc/internal/systolic"
	"gathernoc/internal/traffic"
	"gathernoc/internal/workload"
)

// sameSample reports whether two samples hold bit-identical statistics.
func sameSample(a, b *stats.Sample) bool {
	return a.N() == b.N() && a.Sum() == b.Sum() &&
		a.Min() == b.Min() && a.Max() == b.Max() &&
		a.Percentile(50) == b.Percentile(50) && a.Percentile(99) == b.Percentile(99)
}

// TestEngineEquivalenceLayers is the golden replay proof for the
// sleep/wake engine: the activity-tracked scheduler must produce
// bit-identical results to the naive always-tick engine for the paper's
// workloads. Any divergence — one counter, one cycle — means a component
// either mutated state in a tick it claimed was idle, or missed a wake.
func TestEngineEquivalenceLayers(t *testing.T) {
	layer, ok := cnn.LayerByName(cnn.AlexNetConvLayers(), "Conv1")
	if !ok {
		t.Fatal("Conv1 missing")
	}
	for _, mode := range []systolic.Mode{systolic.RepetitiveUnicast, systolic.GatherMode} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			run := func(alwaysTick bool) *core.LayerReport {
				t.Helper()
				rep, err := core.RunLayer(8, 8, layer, mode, core.Options{
					Rounds:        1,
					MutateNetwork: func(c *noc.Config) { c.AlwaysTick = alwaysTick },
				})
				if err != nil {
					t.Fatal(err)
				}
				return rep
			}
			naive := run(true)
			tracked := run(false)

			if naive.Events != tracked.Events {
				t.Errorf("activity diverged:\nnaive   %+v\ntracked %+v", naive.Events, tracked.Events)
			}
			nr, tr := naive.Result, tracked.Result
			if nr.TotalCycles != tr.TotalCycles || nr.MeasuredCycles != tr.MeasuredCycles {
				t.Errorf("cycles diverged: naive total=%d measured=%d, tracked total=%d measured=%d",
					nr.TotalCycles, nr.MeasuredCycles, tr.TotalCycles, tr.MeasuredCycles)
			}
			if nr.RoundCycles.Mean() != tr.RoundCycles.Mean() ||
				nr.CollectionCycles.Mean() != tr.CollectionCycles.Mean() {
				t.Errorf("round latencies diverged: naive %v/%v, tracked %v/%v",
					nr.RoundCycles.Mean(), nr.CollectionCycles.Mean(),
					tr.RoundCycles.Mean(), tr.CollectionCycles.Mean())
			}
			if nr.SelfInitiatedGathers != tr.SelfInitiatedGathers || nr.PiggybackAcks != tr.PiggybackAcks {
				t.Errorf("gather protocol diverged: naive self=%d acks=%d, tracked self=%d acks=%d",
					nr.SelfInitiatedGathers, nr.PiggybackAcks,
					tr.SelfInitiatedGathers, tr.PiggybackAcks)
			}
			if nr.PayloadErrors != 0 || tr.PayloadErrors != 0 {
				t.Errorf("payload errors: naive %d, tracked %d", nr.PayloadErrors, tr.PayloadErrors)
			}
		})
	}
}

// TestEngineEquivalenceSyntheticTraffic replays identical seeded
// uniform-random workloads on both engine paths across injection rates
// (including saturation) and requires bit-identical packet accounting,
// latency statistics and network activity.
func TestEngineEquivalenceSyntheticTraffic(t *testing.T) {
	for _, rate := range []float64{0.005, 0.05, 0.30} {
		rate := rate
		t.Run(ratename(rate), func(t *testing.T) {
			type outcome struct {
				res      *traffic.GeneratorResult
				activity noc.Activity
				skipped  uint64
			}
			run := func(alwaysTick bool) outcome {
				t.Helper()
				cfg := noc.DefaultConfig(8, 8)
				cfg.EastSinks = false
				cfg.AlwaysTick = alwaysTick
				nw, err := noc.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				gen, err := traffic.NewGenerator(nw, traffic.GeneratorConfig{
					Pattern:       traffic.UniformRandom{Nodes: 64},
					InjectionRate: rate,
					PacketFlits:   2,
					Warmup:        200,
					Measure:       1800,
					Seed:          7,
				})
				if err != nil {
					t.Fatal(err)
				}
				res, err := gen.Run(1_000_000)
				if err != nil {
					t.Fatal(err)
				}
				return outcome{res: res, activity: nw.Activity(), skipped: nw.Engine().Skipped()}
			}
			naive := run(true)
			tracked := run(false)

			if naive.activity != tracked.activity {
				t.Errorf("activity diverged:\nnaive   %+v\ntracked %+v", naive.activity, tracked.activity)
			}
			n, tr := naive.res, tracked.res
			if n.Injected != tr.Injected || n.Received != tr.Received || n.Cycles != tr.Cycles {
				t.Errorf("accounting diverged: naive inj=%d recv=%d cyc=%d, tracked inj=%d recv=%d cyc=%d",
					n.Injected, n.Received, n.Cycles, tr.Injected, tr.Received, tr.Cycles)
			}
			for _, s := range []struct {
				name         string
				naive, track *stats.Sample
			}{
				{"latency", &n.Latency, &tr.Latency},
				{"queue-latency", &n.QueueLatency, &tr.QueueLatency},
				{"network-latency", &n.NetworkLatency, &tr.NetworkLatency},
			} {
				if !sameSample(s.naive, s.track) {
					t.Errorf("%s sample diverged: naive %s, tracked %s", s.name, s.naive, s.track)
				}
			}
			if naive.skipped != 0 {
				t.Errorf("naive engine skipped %d evaluations, want 0", naive.skipped)
			}
			if tracked.skipped == 0 {
				t.Error("tracked engine skipped nothing — sleep/wake not engaged, equivalence is vacuous")
			}
		})
	}
}

func ratename(rate float64) string {
	switch {
	case rate < 0.01:
		return "low"
	case rate < 0.1:
		return "mid"
	default:
		return "high"
	}
}

// TestSchedulerEquivalenceDirectGenerator proves the workload scheduler
// is a pure re-plumbing for a single job: a one-phase generator job run
// through workload.New/Run must be bit-identical — packet accounting,
// latency statistics, network activity, run length — to the same
// generator driving the network directly.
func TestSchedulerEquivalenceDirectGenerator(t *testing.T) {
	genCfg := traffic.GeneratorConfig{
		Pattern:       traffic.UniformRandom{Nodes: 64},
		InjectionRate: 0.05,
		PacketFlits:   2,
		Warmup:        200,
		Measure:       1500,
		Seed:          11,
	}
	newNet := func() *noc.Network {
		cfg := noc.DefaultConfig(8, 8)
		cfg.EastSinks = false
		nw, err := noc.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return nw
	}

	nwD := newNet()
	gd, err := traffic.NewGenerator(nwD, genCfg)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := gd.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}

	nwS := newNet()
	gs, err := traffic.NewGeneratorDriver(nwS, genCfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := workload.New(nwS, []workload.Job{
		{Name: "soak", Phases: []workload.Phase{{Name: "uniform", Driver: gs}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	sched := gs.Result(res.Cycles)

	if direct.Injected != sched.Injected || direct.Received != sched.Received || direct.Cycles != sched.Cycles {
		t.Errorf("accounting diverged: direct inj=%d recv=%d cyc=%d, scheduled inj=%d recv=%d cyc=%d",
			direct.Injected, direct.Received, direct.Cycles, sched.Injected, sched.Received, sched.Cycles)
	}
	for _, c := range []struct {
		name           string
		direct, tagged *stats.Sample
	}{
		{"latency", &direct.Latency, &sched.Latency},
		{"queue-latency", &direct.QueueLatency, &sched.QueueLatency},
		{"network-latency", &direct.NetworkLatency, &sched.NetworkLatency},
		{"hops", &direct.Hops, &sched.Hops},
	} {
		if !sameSample(c.direct, c.tagged) {
			t.Errorf("%s sample diverged: direct %s, scheduled %s", c.name, c.direct, c.tagged)
		}
	}
	if nwD.Activity() != nwS.Activity() {
		t.Errorf("activity diverged:\ndirect    %+v\nscheduled %+v", nwD.Activity(), nwS.Activity())
	}
	if res.Jobs[0].PacketsEjected != gs.Delivered() || gs.Sent() != gs.Delivered() {
		t.Errorf("per-job conservation: ejected=%d sent=%d delivered=%d",
			res.Jobs[0].PacketsEjected, gs.Sent(), gs.Delivered())
	}
}

// TestSchedulerEquivalenceDirectAccumulation is the collective-traffic
// twin: a single accumulation phase (gather and INA collection) under the
// scheduler must replay the direct controller bit for bit.
func TestSchedulerEquivalenceDirectAccumulation(t *testing.T) {
	for _, scheme := range []traffic.CollectScheme{traffic.CollectGather, traffic.CollectINA} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			accCfg := traffic.AccumulationConfig{Scheme: scheme, Rounds: 3, ComputeLatency: 10}
			newNet := func() *noc.Network {
				cfg := noc.DefaultConfig(8, 8)
				cfg.EnableINA = scheme == traffic.CollectINA
				nw, err := noc.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return nw
			}

			nwD := newNet()
			cd, err := traffic.NewAccumulationController(nwD, accCfg)
			if err != nil {
				t.Fatal(err)
			}
			direct, err := cd.Run(1_000_000)
			if err != nil {
				t.Fatal(err)
			}

			nwS := newNet()
			cs, err := traffic.NewAccumulationDriver(nwS, accCfg)
			if err != nil {
				t.Fatal(err)
			}
			s, err := workload.New(nwS, []workload.Job{
				{Name: "layer", Phases: []workload.Phase{{Name: "acc", Driver: cs}}},
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Run(1_000_000)
			if err != nil {
				t.Fatal(err)
			}
			sched := cs.Snapshot()

			if direct.OracleErrors != 0 || sched.OracleErrors != 0 {
				t.Errorf("oracle errors: direct %d, scheduled %d", direct.OracleErrors, sched.OracleErrors)
			}
			if !sameSample(&direct.RoundCycles, &sched.RoundCycles) {
				t.Errorf("round cycles diverged: direct %s, scheduled %s", &direct.RoundCycles, &sched.RoundCycles)
			}
			if !sameSample(&direct.PacketLatency, &sched.PacketLatency) {
				t.Errorf("packet latency diverged: direct %s, scheduled %s", &direct.PacketLatency, &sched.PacketLatency)
			}
			if direct.Cycles != res.Cycles {
				t.Errorf("run length diverged: direct %d, scheduled %d", direct.Cycles, res.Cycles)
			}
			if nwD.Activity() != nwS.Activity() {
				t.Errorf("activity diverged:\ndirect    %+v\nscheduled %+v", nwD.Activity(), nwS.Activity())
			}
		})
	}
}
