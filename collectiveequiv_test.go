package gathernoc

import (
	"fmt"
	"testing"

	"gathernoc/internal/collective"
	"gathernoc/internal/noc"
	"gathernoc/internal/traffic"
	"gathernoc/internal/workload"
)

// collectiveConfigs returns the topology grid for the metamorphic suite.
func collectiveConfigs(rows, cols int) map[string]noc.Config {
	return map[string]noc.Config{
		"mesh":  noc.DefaultConfig(rows, cols),
		"torus": noc.DefaultTorusConfig(rows, cols),
	}
}

// runCollectiveOn executes one collective to completion on a fresh fabric
// and fails the test on any oracle or broadcast mismatch.
func runCollectiveOn(t *testing.T, cfg noc.Config, ccfg collective.Config) *collective.Result {
	t.Helper()
	nw, err := noc.New(cfg)
	if err != nil {
		t.Fatalf("noc.New: %v", err)
	}
	defer nw.Close()
	ctl, err := collective.NewController(nw, ccfg)
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	res, err := ctl.Run(1_000_000)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.OracleErrors != 0 || res.BroadcastErrors != 0 {
		t.Fatalf("oracle errors %d, broadcast errors %d", res.OracleErrors, res.BroadcastErrors)
	}
	return res
}

// TestAllReduceEqualsReduceThenBroadcast is the metamorphic identity at
// the heart of this suite: an all-reduce must be indistinguishable from a
// reduce whose result is then broadcast — bit-for-bit, on every node, for
// every transport and topology. The composition reuses the reduce run's
// sums as the broadcast operands, so any disagreement pins the defect to
// one half of the fused path.
func TestAllReduceEqualsReduceThenBroadcast(t *testing.T) {
	const rounds = 2
	for topoName, base := range collectiveConfigs(4, 4) {
		for _, alg := range []collective.Algorithm{collective.AlgTree, collective.AlgFlat, collective.AlgFused} {
			t.Run(topoName+"/"+alg.String(), func(t *testing.T) {
				cfg := base
				if alg == collective.AlgFused {
					cfg.EnableINA = true
				}
				all := runCollectiveOn(t, cfg, collective.Config{
					Op: collective.AllReduce, Algorithm: alg, Rounds: rounds, ComputeLatency: 6,
				})
				red := runCollectiveOn(t, cfg, collective.Config{
					Op: collective.Reduce, Algorithm: alg, Rounds: rounds, ComputeLatency: 6,
				})
				for r := 0; r < rounds; r++ {
					if red.Sums[r] != all.Sums[r] {
						t.Fatalf("round %d: reduce sum %#x != all-reduce sum %#x", r, red.Sums[r], all.Sums[r])
					}
				}
				bc := runCollectiveOn(t, cfg, collective.Config{
					Op: collective.Broadcast, Algorithm: alg, Rounds: rounds,
					BroadcastValues: red.Sums,
				})
				for r := 0; r < rounds; r++ {
					for node := range all.NodeValues[r] {
						if bc.NodeValues[r][node] != all.NodeValues[r][node] {
							t.Fatalf("round %d node %d: reduce∘broadcast %#x != all-reduce %#x",
								r, node, bc.NodeValues[r][node], all.NodeValues[r][node])
						}
					}
				}
			})
		}
	}
}

// TestReduceSumPermutationInvariant checks the other metamorphic relation:
// the reduction is a sum, so shuffling which PE holds which operand must
// not change any round's result, whatever the tree's merge order does to
// the intermediate partial sums.
func TestReduceSumPermutationInvariant(t *testing.T) {
	const rounds = 2
	nodes := 4 * 4
	table := make([]uint64, nodes)
	for i := range table {
		table[i] = uint64(i+1) * 0x9E3779B97F4A7C15
	}
	valuesFor := func(perm func(int) int) func(int, int) uint64 {
		return func(node, round int) uint64 {
			return table[perm(node)] + uint64(round)*0xD1B54A32D192ED03
		}
	}
	identity := func(n int) int { return n }
	reversed := func(n int) int { return nodes - 1 - n }
	rotated := func(n int) int { return (n + 5) % nodes }

	for topoName, cfg := range collectiveConfigs(4, 4) {
		t.Run(topoName, func(t *testing.T) {
			base := runCollectiveOn(t, cfg, collective.Config{
				Op: collective.Reduce, Algorithm: collective.AlgTree, Rounds: rounds,
				Values: valuesFor(identity),
			})
			for name, perm := range map[string]func(int) int{"reversed": reversed, "rotated": rotated} {
				got := runCollectiveOn(t, cfg, collective.Config{
					Op: collective.Reduce, Algorithm: collective.AlgTree, Rounds: rounds,
					Values: valuesFor(perm),
				})
				for r := 0; r < rounds; r++ {
					if got.Sums[r] != base.Sums[r] {
						t.Errorf("%s round %d: sum %#x != identity sum %#x", name, r, got.Sums[r], base.Sums[r])
					}
				}
			}
		})
	}
}

// TestCollectiveSaturationDeadlockFree extends the deadlock matrix with a
// tree-traffic cell: a multi-round tree all-reduce shares every (topology,
// routing) fabric with a near-saturation uniform-random generator, and the
// run must drain completely with the reduction still oracle-exact. The
// stall watchdog bounds detection — a wedged cell fails within one
// no-progress window with a component diagnostic instead of burning the
// whole cycle budget.
func TestCollectiveSaturationDeadlockFree(t *testing.T) {
	for topoName, base := range collectiveConfigs(4, 4) {
		for _, routing := range []string{"xy", "westfirst", "oddeven"} {
			t.Run(topoName+"/"+routing, func(t *testing.T) {
				cfg := base
				cfg.Routing = routing
				if err := cfg.Validate(); err != nil {
					t.Skipf("combination rejected: %v", err)
				}
				nw, err := noc.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer nw.Close()
				collJob, drivers, err := workload.NewCollectiveJob(nw, "sync", []collective.Config{
					{Op: collective.AllReduce, Algorithm: collective.AlgTree, Rounds: 4, ComputeLatency: 4},
				}, false)
				if err != nil {
					t.Fatal(err)
				}
				gen, err := traffic.NewGeneratorDriver(nw, traffic.GeneratorConfig{
					Pattern:       traffic.UniformRandom{Nodes: nw.Topology().NumNodes()},
					InjectionRate: 0.4,
					PacketFlits:   2,
					Warmup:        50,
					Measure:       400,
					Seed:          7,
				})
				if err != nil {
					t.Fatal(err)
				}
				jobs := []workload.Job{collJob, {
					Name:   "saturate",
					Phases: []workload.Phase{{Name: "traffic", Driver: gen}},
				}}
				s, err := workload.New(nw, jobs)
				if err != nil {
					t.Fatal(err)
				}
				nw.Engine().SetWatchdog(nw.Watchdog(20_000))
				res, err := s.Run(5_000_000)
				if err != nil {
					t.Fatalf("did not drain (deadlock?): %v", err)
				}
				snap := drivers[0].Snapshot()
				if snap.OracleErrors != 0 || snap.BroadcastErrors != 0 {
					t.Errorf("%d oracle / %d broadcast errors under saturation",
						snap.OracleErrors, snap.BroadcastErrors)
				}
				if gen.Sent() == 0 || gen.Sent() != gen.Delivered() {
					t.Errorf("saturator sent %d, delivered %d", gen.Sent(), gen.Delivered())
				}
				if res.OrphanPackets != 0 || res.OrphanPayloads != 0 {
					t.Errorf("orphans: %d packets, %d payloads", res.OrphanPackets, res.OrphanPayloads)
				}
				if err := nw.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestCollectiveShardEquivalence is the determinism contract extended to
// the collectives: every topology × routing × transport cell must produce
// bit-identical sums, per-node deliveries, timing and activity at every
// shard count. Run under -race this also exercises the sharded engine's
// ownership discipline with multicast forks and two-level gather traffic
// in flight.
func TestCollectiveShardEquivalence(t *testing.T) {
	routings := []string{"xy", "westfirst", "oddeven"}
	for topoName, base := range collectiveConfigs(4, 4) {
		for _, routing := range routings {
			for _, alg := range []collective.Algorithm{collective.AlgTree, collective.AlgFlat, collective.AlgFused} {
				t.Run(fmt.Sprintf("%s/%s/%s", topoName, routing, alg), func(t *testing.T) {
					cfg := base
					cfg.Routing = routing
					if alg == collective.AlgFused {
						cfg.EnableINA = true
					}
					if err := cfg.Validate(); err != nil {
						t.Skipf("combination rejected: %v", err)
					}
					ccfg := collective.Config{
						Op: collective.AllReduce, Algorithm: alg, Rounds: 1, ComputeLatency: 6,
					}
					var ref *collective.Result
					for _, shards := range []int{1, 2, 4} {
						scfg := cfg
						scfg.Shards = shards
						res := runCollectiveOn(t, scfg, ccfg)
						if ref == nil {
							ref = res
							continue
						}
						if res.Cycles != ref.Cycles {
							t.Errorf("shards=%d: %d cycles, shard-1 ran %d", shards, res.Cycles, ref.Cycles)
						}
						if res.RootFlits != ref.RootFlits || res.Merges != ref.Merges {
							t.Errorf("shards=%d: root flits/merges %d/%d, shard-1 %d/%d",
								shards, res.RootFlits, res.Merges, ref.RootFlits, ref.Merges)
						}
						for r := range ref.Sums {
							if res.Sums[r] != ref.Sums[r] {
								t.Errorf("shards=%d round %d: sum %#x != %#x", shards, r, res.Sums[r], ref.Sums[r])
							}
							for node := range ref.NodeValues[r] {
								if res.NodeValues[r][node] != ref.NodeValues[r][node] {
									t.Errorf("shards=%d round %d node %d: %#x != %#x",
										shards, r, node, res.NodeValues[r][node], ref.NodeValues[r][node])
								}
							}
						}
					}
				})
			}
		}
	}
}
