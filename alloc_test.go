package gathernoc

import (
	"testing"

	"gathernoc/internal/noc"
	"gathernoc/internal/telemetry"
	"gathernoc/internal/traffic"
	"gathernoc/internal/workload"
)

// maxSteadyStateAllocsPerCycle is the allocation ratchet: the pinned
// ceiling on heap allocations per simulated cycle once a network has
// reached its steady state (pools, rings and sample chunks warmed to
// their high-water marks). The zero-allocation hot-path work (PR 3)
// brought the steady state to ~0 allocs/cycle — the only remaining
// sources are the occasional stats chunk and deque block at high-water
// growth. The ceiling leaves headroom for measurement jitter while
// still failing loudly if a per-flit or per-packet allocation sneaks
// back into the pipeline (pre-PR3 steady state was ~10 allocs/cycle at
// this operating point, ~270 at saturation). PR 5 tightened it from 1.0
// to 0.5 after the workload-scheduler path measured the same ~0.11
// allocs/cycle as the direct path — per-tag dispatch, admission scans
// and job accounting all stay off the allocator.
//
// If this test fails, profile with:
//
//	go test -run '^$' -bench BenchmarkEngineStepping/naive/high -memprofile mem.out .
const maxSteadyStateAllocsPerCycle = 0.5

// TestAllocationRatchet drives an 8x8 mesh under sustained uniform-random
// traffic, warms it past every one-time growth, then measures allocations
// per cycle with the allocator's own accounting. The workload stays below
// saturation so queues oscillate around a fixed depth — the steady state
// the zero-alloc discipline is about.
func TestAllocationRatchet(t *testing.T) {
	cfg := noc.DefaultConfig(8, 8)
	cfg.EastSinks = false
	nw, err := noc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := traffic.NewGenerator(nw, traffic.GeneratorConfig{
		Pattern:       traffic.UniformRandom{Nodes: 64},
		InjectionRate: 0.05,
		PacketFlits:   2,
		Warmup:        0,
		Measure:       1 << 40, // never stop injecting
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := nw.Engine()
	eng.AddTicker(gen)

	// Warm-up: reach the pool/ring/chunk high-water marks.
	eng.Run(3000)

	const cyclesPerRun = 500
	avg := testing.AllocsPerRun(4, func() {
		eng.Run(cyclesPerRun)
	})
	perCycle := avg / cyclesPerRun
	t.Logf("steady state: %.4f allocs/cycle (%.0f allocs per %d-cycle run)", perCycle, avg, cyclesPerRun)
	if perCycle > maxSteadyStateAllocsPerCycle {
		t.Fatalf("steady-state allocations regressed: %.4f allocs/cycle, ratchet ceiling %v",
			perCycle, maxSteadyStateAllocsPerCycle)
	}
}

// TestShardedAllocationRatchet extends the ratchet to the sharded tick
// loop (DESIGN.md §9): the same operating point as the direct test, run
// on 4 row-partition shards. The parallel phases must not allocate per
// cycle either — shard views of the flit pool keep freelists local, the
// worker loop reuses its channels and WaitGroup, and staged ejection
// reuses its packet and payload arenas. The ceiling is shared with the
// sequential path.
func TestShardedAllocationRatchet(t *testing.T) {
	cfg := noc.DefaultConfig(8, 8)
	cfg.EastSinks = false
	cfg.Shards = 4
	nw, err := noc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	gen, err := traffic.NewGenerator(nw, traffic.GeneratorConfig{
		Pattern:       traffic.UniformRandom{Nodes: 64},
		InjectionRate: 0.05,
		PacketFlits:   2,
		Warmup:        0,
		Measure:       1 << 40, // never stop injecting
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := nw.Engine()
	eng.AddTicker(gen)

	// Warm-up: reach the high-water marks *and* start the shard workers
	// (lazily spawned on the first step — their goroutine and channel
	// allocations are one-time, not steady state).
	eng.Run(3000)

	const cyclesPerRun = 500
	avg := testing.AllocsPerRun(4, func() {
		eng.Run(cyclesPerRun)
	})
	perCycle := avg / cyclesPerRun
	t.Logf("sharded steady state: %.4f allocs/cycle (%.0f allocs per %d-cycle run)", perCycle, avg, cyclesPerRun)
	if perCycle > maxSteadyStateAllocsPerCycle {
		t.Fatalf("sharded steady-state allocations regressed: %.4f allocs/cycle, ratchet ceiling %v",
			perCycle, maxSteadyStateAllocsPerCycle)
	}
}

// TestShardedFlitPoolLeakFreedom runs cross-shard traffic with the
// pool's ownership checker on and asserts a drained sharded network
// holds zero outstanding flits. Flits routinely migrate between shard
// views here — acquired by a NIC in one row block, released by an
// ejector in another — so this pins the aggregate accounting across
// views (per-view counters may individually go negative; only the
// root's sum is meaningful).
func TestShardedFlitPoolLeakFreedom(t *testing.T) {
	cfg := noc.DefaultConfig(8, 8)
	cfg.EastSinks = false
	cfg.Shards = 4
	cfg.DebugFlitPool = true
	nw, err := noc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	gen, err := traffic.NewGenerator(nw, traffic.GeneratorConfig{
		Pattern:       traffic.UniformRandom{Nodes: 64},
		InjectionRate: 0.05,
		PacketFlits:   2,
		Warmup:        100,
		Measure:       900,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := gen.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected != res.Received {
		t.Fatalf("drain incomplete: injected %d, received %d", res.Injected, res.Received)
	}
	if live := nw.FlitPool().Live(); live != 0 {
		t.Fatalf("drained sharded network holds %d leaked flits", live)
	}
	if nw.FlitPool().Misses() == 0 {
		t.Fatal("pool never allocated — workload did not exercise it")
	}
}

// TestTelemetryAllocationRatchet extends the ratchet to a telemetry-on
// network (DESIGN.md §11): every probe ring and event buffer is
// preallocated at Collector.Start, so epoch snapshots write into fixed
// slots and sampled Emits append within capacity — the recording path
// must stay off the allocator cycle to cycle, bounded by the same
// ceiling as the dark network.
func TestTelemetryAllocationRatchet(t *testing.T) {
	cfg := noc.DefaultConfig(8, 8)
	cfg.EastSinks = false
	cfg.Telemetry = &telemetry.Config{Epoch: 64, TraceSample: 16}
	nw, err := noc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := traffic.NewGenerator(nw, traffic.GeneratorConfig{
		Pattern:       traffic.UniformRandom{Nodes: 64},
		InjectionRate: 0.05,
		PacketFlits:   2,
		Warmup:        0,
		Measure:       1 << 40, // never stop injecting
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := nw.Engine()
	eng.AddTicker(gen)

	// Warm-up: reach the pool/ring/chunk high-water marks.
	eng.Run(3000)

	const cyclesPerRun = 500
	avg := testing.AllocsPerRun(4, func() {
		eng.Run(cyclesPerRun)
	})
	perCycle := avg / cyclesPerRun
	t.Logf("telemetry-on steady state: %.4f allocs/cycle (%.0f allocs per %d-cycle run)", perCycle, avg, cyclesPerRun)
	if perCycle > maxSteadyStateAllocsPerCycle {
		t.Fatalf("telemetry-on steady-state allocations regressed: %.4f allocs/cycle, ratchet ceiling %v",
			perCycle, maxSteadyStateAllocsPerCycle)
	}
}

// TestSchedulerAllocationRatchet extends the ratchet to the workload
// scheduler's multi-job path: three concurrent tagged jobs on one fabric,
// dispatched per-cycle through the scheduler's admission scan and
// per-tag packet routing. Phase admission, job tagging and dispatch must
// not allocate per cycle; the steady state is bounded by the same
// ceiling as the direct path (the only allocators left are the
// amortized stats chunks, now one latency sample per job).
func TestSchedulerAllocationRatchet(t *testing.T) {
	cfg := noc.DefaultConfig(8, 8)
	cfg.EastSinks = false
	nw, err := noc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]workload.Job, 3)
	for i := range jobs {
		gen, err := traffic.NewGeneratorDriver(nw, traffic.GeneratorConfig{
			Pattern:       traffic.UniformRandom{Nodes: 64},
			InjectionRate: 0.02,
			PacketFlits:   2,
			Warmup:        0,
			Measure:       1 << 40, // never stop injecting
			Seed:          int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = workload.Job{
			Name:   "soak",
			Phases: []workload.Phase{{Name: "uniform", Driver: gen}},
		}
	}
	s, err := workload.New(nw, jobs)
	if err != nil {
		t.Fatal(err)
	}
	eng := nw.Engine()
	eng.AddTicker(s)

	// Warm-up: reach the pool/ring/chunk high-water marks.
	eng.Run(3000)

	const cyclesPerRun = 500
	avg := testing.AllocsPerRun(4, func() {
		eng.Run(cyclesPerRun)
	})
	perCycle := avg / cyclesPerRun
	t.Logf("multi-job steady state: %.4f allocs/cycle (%.0f allocs per %d-cycle run)", perCycle, avg, cyclesPerRun)
	if perCycle > maxSteadyStateAllocsPerCycle {
		t.Fatalf("scheduler steady-state allocations regressed: %.4f allocs/cycle, ratchet ceiling %v",
			perCycle, maxSteadyStateAllocsPerCycle)
	}
}
