// Package gathernoc's benchmark harness regenerates every table and figure
// of the paper's evaluation on the cycle-accurate simulator, one benchmark
// per artifact. Each benchmark reports the headline metric of its artifact
// (improvement percentage) via b.ReportMetric alongside the usual
// simulation cost figures.
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkFig7 -benchtime=1x
package gathernoc

import (
	"fmt"
	"runtime"
	"testing"

	"gathernoc/internal/cnn"
	"gathernoc/internal/collective"
	"gathernoc/internal/core"
	"gathernoc/internal/experiments"
	"gathernoc/internal/fault"
	"gathernoc/internal/noc"
	"gathernoc/internal/systolic"
	"gathernoc/internal/telemetry"
	"gathernoc/internal/topology"
	"gathernoc/internal/traffic"
	"gathernoc/internal/workload"
)

var benchOpts = core.Options{Rounds: 1}

// skipLargeMeshInShort elides the 16x16 grid rows under -short: the CI
// smoke job runs every benchmark once (-benchtime 1x -short) to keep the
// harness compiling and executing, and the 8x8 rows already cover every
// code path at a quarter of the cost.
func skipLargeMeshInShort(b *testing.B, mesh int) {
	b.Helper()
	if testing.Short() && mesh > 8 {
		b.Skipf("%dx%d mesh skipped in -short", mesh, mesh)
	}
}

// benchCompare runs one layer comparison and reports the latency and power
// improvements.
func benchCompare(b *testing.B, mesh int, layer cnn.LayerConfig) {
	b.Helper()
	var lat, pow float64
	for i := 0; i < b.N; i++ {
		cmp, err := core.CompareLayer(mesh, mesh, layer, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		lat = cmp.LatencyImprovementPct
		pow = cmp.PowerImprovementPct
	}
	b.ReportMetric(lat, "latency-improv-%")
	b.ReportMetric(pow, "power-improv-%")
}

// BenchmarkTable2 regenerates Table II: the estimated-vs-simulated
// total-latency improvement for AlexNet on the 8x8 mesh.
func BenchmarkTable2(b *testing.B) {
	for _, layer := range cnn.AlexNetConvLayers() {
		layer := layer
		b.Run(layer.Name, func(b *testing.B) {
			var est, sim float64
			for i := 0; i < b.N; i++ {
				cmp, err := core.CompareLayer(8, 8, layer, benchOpts)
				if err != nil {
					b.Fatal(err)
				}
				est = cmp.EstimatedImprovementPct
				sim = cmp.LatencyImprovementPct
			}
			b.ReportMetric(est, "estimated-%")
			b.ReportMetric(sim, "simulated-%")
		})
	}
}

// BenchmarkFig7 regenerates Fig. 7: total-latency improvement for AlexNet
// on 8x8 and 16x16 meshes.
func BenchmarkFig7(b *testing.B) {
	for _, mesh := range []int{8, 16} {
		for _, layer := range cnn.AlexNetConvLayers() {
			mesh, layer := mesh, layer
			b.Run(fmt.Sprintf("%dx%d/%s", mesh, mesh, layer.Name), func(b *testing.B) {
				skipLargeMeshInShort(b, mesh)
				benchCompare(b, mesh, layer)
			})
		}
	}
}

// BenchmarkFig8 regenerates Fig. 8: total-latency improvement for the
// paper's selected VGG-16 layers on 8x8 and 16x16 meshes.
func BenchmarkFig8(b *testing.B) {
	for _, mesh := range []int{8, 16} {
		for _, layer := range cnn.VGG16SelectedConvLayers() {
			mesh, layer := mesh, layer
			b.Run(fmt.Sprintf("%dx%d/%s", mesh, mesh, layer.Name), func(b *testing.B) {
				skipLargeMeshInShort(b, mesh)
				benchCompare(b, mesh, layer)
			})
		}
	}
}

// BenchmarkFig9 regenerates Fig. 9: NoC dynamic-power improvement for
// AlexNet (same runs as Fig. 7; the reported metric is the power figure).
func BenchmarkFig9(b *testing.B) {
	for _, mesh := range []int{8, 16} {
		for _, layer := range cnn.AlexNetConvLayers() {
			mesh, layer := mesh, layer
			b.Run(fmt.Sprintf("%dx%d/%s", mesh, mesh, layer.Name), func(b *testing.B) {
				skipLargeMeshInShort(b, mesh)
				var pow float64
				for i := 0; i < b.N; i++ {
					cmp, err := core.CompareLayer(mesh, mesh, layer, benchOpts)
					if err != nil {
						b.Fatal(err)
					}
					pow = cmp.PowerImprovementPct
				}
				b.ReportMetric(pow, "power-improv-%")
			})
		}
	}
}

// BenchmarkFig10 regenerates Fig. 10: NoC dynamic-power improvement for
// VGG-16.
func BenchmarkFig10(b *testing.B) {
	for _, mesh := range []int{8, 16} {
		for _, layer := range cnn.VGG16SelectedConvLayers() {
			mesh, layer := mesh, layer
			b.Run(fmt.Sprintf("%dx%d/%s", mesh, mesh, layer.Name), func(b *testing.B) {
				skipLargeMeshInShort(b, mesh)
				var pow float64
				for i := 0; i < b.N; i++ {
					cmp, err := core.CompareLayer(mesh, mesh, layer, benchOpts)
					if err != nil {
						b.Fatal(err)
					}
					pow = cmp.PowerImprovementPct
				}
				b.ReportMetric(pow, "power-improv-%")
			})
		}
	}
}

// BenchmarkFig1 regenerates the Fig. 1 hop-count example.
func BenchmarkFig1(b *testing.B) {
	var hops int
	for i := 0; i < b.N; i++ {
		r := experiments.Fig1()
		hops = r.UnicastHops - r.GatherHops
	}
	b.ReportMetric(float64(hops), "hops-saved")
}

// BenchmarkAblationDelta sweeps the flat δ timeout (AlexNet Conv3, 8x8).
func BenchmarkAblationDelta(b *testing.B) {
	for _, delta := range []int{0, 5, 20} {
		delta := delta
		b.Run(fmt.Sprintf("delta=%d", delta), func(b *testing.B) {
			var self float64
			for i := 0; i < b.N; i++ {
				opts := benchOpts
				opts.MutateNetwork = func(c *noc.Config) { c.Delta = int64(delta) }
				opts.MutateSystolic = func(s *systolic.Config) { s.FlatDelta = true }
				layer, _ := cnn.LayerByName(cnn.AlexNetConvLayers(), "Conv3")
				cmp, err := core.CompareLayer(8, 8, layer, opts)
				if err != nil {
					b.Fatal(err)
				}
				self = float64(cmp.Gather.Result.SelfInitiatedGathers)
			}
			b.ReportMetric(self, "self-initiated")
		})
	}
}

// BenchmarkAblationSinkCost sweeps the per-packet buffer transaction cost
// (the DESIGN.md §3 substitution).
func BenchmarkAblationSinkCost(b *testing.B) {
	for _, cost := range []int{0, 5, 10} {
		cost := cost
		b.Run(fmt.Sprintf("cost=%d", cost), func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				opts := benchOpts
				opts.MutateNetwork = func(c *noc.Config) { c.SinkPacketOverhead = int64(cost) }
				layer, _ := cnn.LayerByName(cnn.AlexNetConvLayers(), "Conv3")
				cmp, err := core.CompareLayer(8, 8, layer, opts)
				if err != nil {
					b.Fatal(err)
				}
				lat = cmp.LatencyImprovementPct
			}
			b.ReportMetric(lat, "latency-improv-%")
		})
	}
}

// BenchmarkRouterThroughput measures raw simulator speed: cycles per
// second on an 8x8 mesh under moderate uniform traffic.
func BenchmarkRouterThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := noc.DefaultConfig(8, 8)
		cfg.EastSinks = false
		nw, err := noc.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		gen, err := traffic.NewGenerator(nw, traffic.GeneratorConfig{
			Pattern:       traffic.UniformRandom{Nodes: 64},
			InjectionRate: 0.05,
			PacketFlits:   2,
			Warmup:        100,
			Measure:       900,
			Seed:          1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := gen.Run(1_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineStepping compares the naive always-tick engine against
// activity-tracked sleep/wake scheduling on an 8x8 uniform-random workload.
// At the low rate most components are quiescent most cycles, which is the
// operating point the sleep/wake refactor targets; the high rate bounds
// the scheduling overhead when nearly everything is busy.
func BenchmarkEngineStepping(b *testing.B) {
	cases := []struct {
		name   string
		always bool
		rate   float64
	}{
		{"naive/low", true, 0.005},
		{"activity/low", false, 0.005},
		{"naive/high", true, 0.30},
		{"activity/high", false, 0.30},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			if testing.Short() && tc.rate > 0.1 {
				b.Skip("saturated injection skipped in -short")
			}
			var cycles int64
			var evaluated, skipped uint64
			for i := 0; i < b.N; i++ {
				cfg := noc.DefaultConfig(8, 8)
				cfg.EastSinks = false
				cfg.AlwaysTick = tc.always
				nw, err := noc.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				gen, err := traffic.NewGenerator(nw, traffic.GeneratorConfig{
					Pattern:       traffic.UniformRandom{Nodes: 64},
					InjectionRate: tc.rate,
					PacketFlits:   2,
					Warmup:        100,
					Measure:       4900,
					Seed:          1,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := gen.Run(1_000_000)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
				evaluated = nw.Engine().Evaluated()
				skipped = nw.Engine().Skipped()
			}
			b.ReportMetric(float64(cycles), "cycles")
			total := evaluated + skipped
			if total > 0 {
				b.ReportMetric(float64(skipped)/float64(total)*100, "skipped-%")
			}
		})
	}
}

// runTelemetryOverheadPoint is the workload BenchmarkTelemetryOverhead
// and benchreport's TelemetryOverhead family share: an 8x8 mesh under
// moderate uniform traffic, dark (tcfg nil) or with the CLI's default
// observability configuration. The run is long enough (10K cycles, ~40
// epochs) that the one-time ring preallocation at Collector.Start
// amortizes as it would in any real observation window and the pair
// prices the recording path, not buffer zeroing.
func runTelemetryOverheadPoint(tcfg *telemetry.Config) error {
	cfg := noc.DefaultConfig(8, 8)
	cfg.EastSinks = false
	cfg.Telemetry = tcfg
	nw, err := noc.New(cfg)
	if err != nil {
		return err
	}
	defer nw.Close()
	gen, err := traffic.NewGenerator(nw, traffic.GeneratorConfig{
		Pattern:       traffic.UniformRandom{Nodes: 64},
		InjectionRate: 0.05,
		PacketFlits:   2,
		Warmup:        100,
		Measure:       9900,
		Seed:          1,
	})
	if err != nil {
		return err
	}
	_, err = gen.Run(1_000_000)
	return err
}

// BenchmarkTelemetryOverhead prices the observability layer (DESIGN.md
// §11): the identical workload dark versus with default-sampling
// telemetry (256-cycle epochs, one traced packet in 64). The acceptance
// bar is on/off overhead under 10% — the epoch snapshot touches every
// source only once per 256 cycles and the tracer's hot-path cost is a
// nil-check plus a hash on sampled heads.
func BenchmarkTelemetryOverhead(b *testing.B) {
	dcfg := telemetry.DefaultConfig()
	for _, tc := range []struct {
		name string
		tcfg *telemetry.Config
	}{
		{"off", nil},
		{"on", &dcfg},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := runTelemetryOverheadPoint(tc.tcfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// runFaultOverheadPoint is the workload BenchmarkFaultOverhead and
// benchreport's FaultOverhead family share: the same 8x8 uniform-traffic
// run as the telemetry pair, fault-free (fcfg nil, the configuration
// every published number uses) or with a 1% transient drop schedule and
// the full recovery stack armed (DESIGN.md §12).
func runFaultOverheadPoint(fcfg *fault.Config) error {
	cfg := noc.DefaultConfig(8, 8)
	cfg.EastSinks = false
	cfg.Faults = fcfg
	nw, err := noc.New(cfg)
	if err != nil {
		return err
	}
	defer nw.Close()
	gen, err := traffic.NewGenerator(nw, traffic.GeneratorConfig{
		Pattern:       traffic.UniformRandom{Nodes: 64},
		InjectionRate: 0.05,
		PacketFlits:   2,
		Warmup:        100,
		Measure:       9900,
		Seed:          1,
	})
	if err != nil {
		return err
	}
	_, err = gen.Run(1_000_000)
	return err
}

// BenchmarkFaultOverhead prices the reliability layer: the identical
// workload on a fault-free fabric versus one with a 1% transient drop
// schedule, per-link decision state, credit flushers and fault-aware
// ejectors all armed. The "off" leg is the hot path every prior
// benchmark exercises — its only new cost is the nil checks the fault
// hooks hide behind, bounded at < 2% against the PR7 baseline.
func BenchmarkFaultOverhead(b *testing.B) {
	for _, tc := range []struct {
		name string
		fcfg *fault.Config
	}{
		{"off", nil},
		{"on", &fault.Config{Seed: 1, DropRate: 0.01, CorruptRate: 0.0025}},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := runFaultOverheadPoint(tc.fcfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// engineScalingShards returns the shard grid BenchmarkEngineScaling and
// benchreport sweep: 1, 2, 4 plus NumCPU when it differs.
func engineScalingShards() []int {
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

// runEngineScaling drives one sharded large-fabric workload — uniform
// traffic at a moderate per-node rate, so total load grows with the node
// count — and returns the simulated cycles (identical for every shard
// count; the equivalence tests enforce it).
func runEngineScaling(mesh, shards int) (int64, error) {
	cfg := noc.DefaultConfig(mesh, mesh)
	cfg.EastSinks = false
	cfg.Shards = shards
	nw, err := noc.New(cfg)
	if err != nil {
		return 0, err
	}
	defer nw.Close()
	gen, err := traffic.NewGenerator(nw, traffic.GeneratorConfig{
		Pattern:       traffic.UniformRandom{Nodes: mesh * mesh},
		InjectionRate: 0.02,
		PacketFlits:   2,
		Warmup:        100,
		Measure:       900,
		Seed:          1,
	})
	if err != nil {
		return 0, err
	}
	res, err := gen.Run(1_000_000)
	if err != nil {
		return 0, err
	}
	return res.Cycles, nil
}

// BenchmarkEngineScaling measures the sharded engine's strong scaling on
// the ROADMAP's large fabrics: one simulation spread across worker
// goroutines, shards ∈ {1, 2, 4, NumCPU}, with cycles/sec as the headline
// metric. shards=1 runs the sharded two-phase schedule inline and is the
// scaling baseline; the acceptance bar is >= 2x cycles/sec at 4 shards on
// the 64x64 fabric.
func BenchmarkEngineScaling(b *testing.B) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(runtime.NumCPU()))
	for _, mesh := range []int{32, 64} {
		for _, shards := range engineScalingShards() {
			mesh, shards := mesh, shards
			b.Run(fmt.Sprintf("%dx%d/shards=%d", mesh, mesh, shards), func(b *testing.B) {
				if testing.Short() && (mesh > 32 || shards > 2) {
					b.Skip("large scaling grid skipped in -short")
				}
				var cycles int64
				for i := 0; i < b.N; i++ {
					c, err := runEngineScaling(mesh, shards)
					if err != nil {
						b.Fatal(err)
					}
					cycles = c
				}
				b.ReportMetric(float64(cycles), "cycles")
				b.ReportMetric(float64(cycles)*float64(b.N)/b.Elapsed().Seconds(), "cycles/sec")
			})
		}
	}
}

// BenchmarkSweepFig7 regenerates the whole Fig. 7 grid through the
// parallel sweep harness, serial vs all-cores — the end-to-end win of the
// engine refactor plus worker-pool sweeps.
func BenchmarkSweepFig7(b *testing.B) {
	for _, workers := range []int{1, 0} {
		workers := workers
		name := "serial"
		if workers == 0 {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			if workers == 0 {
				// The parallel harness is meaningless on one CPU: the
				// PR2 snapshot measured serial==parallel because the
				// process ran at GOMAXPROCS=1.
				defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(runtime.NumCPU()))
				b.ResetTimer()
			}
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Fig7(experiments.Options{Rounds: 1, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSweepCached measures the Fig. 7 sweep served from a warm
// result cache: a cold pass fills it outside the timer, then every
// measured pass replays from memoized comparisons without constructing a
// network. The gap to BenchmarkSweepFig7 is the price of resimulation.
func BenchmarkSweepCached(b *testing.B) {
	cache, err := experiments.NewCache(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	opts := experiments.Options{Rounds: 1, Cache: cache}
	if _, err := experiments.Fig7(opts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(opts); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if s := cache.Stats(); s.Misses != 5*2 {
		b.Fatalf("cache stats %+v: warm passes missed", s)
	}
}

// BenchmarkSnapshotRestore prices the checkpoint machinery itself:
// capture + serialize, then deserialize + restore onto a fresh network,
// on a mid-flight 8x8 run. snapshot_bytes records the envelope size.
func BenchmarkSnapshotRestore(b *testing.B) {
	cfg := noc.DefaultConfig(8, 8)
	cfg.EastSinks = false
	nw, err := noc.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer nw.Close()
	gen, err := traffic.NewGenerator(nw, traffic.GeneratorConfig{
		Pattern:       traffic.UniformRandom{Nodes: 64},
		InjectionRate: 0.05,
		PacketFlits:   2,
		Warmup:        200,
		Measure:       1800,
		Seed:          7,
	})
	if err != nil {
		b.Fatal(err)
	}
	nw.Engine().AddTicker(gen)
	nw.Engine().Run(600)

	var bytes int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := nw.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		data, err := noc.EncodeSnapshot(snap)
		if err != nil {
			b.Fatal(err)
		}
		bytes = len(data)
		decoded, err := noc.DecodeSnapshot(data)
		if err != nil {
			b.Fatal(err)
		}
		fresh, err := noc.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := fresh.Restore(decoded); err != nil {
			b.Fatal(err)
		}
		fresh.Close()
	}
	b.StopTimer()
	b.ReportMetric(float64(bytes), "snapshot_bytes")
}

// BenchmarkINAComparison regenerates the accumulation-phase comparison
// (unicast vs gather vs in-network accumulation) on the 8x8 mesh through
// the sweep harness, reporting INA's sink-flit advantage over gather.
func BenchmarkINAComparison(b *testing.B) {
	var gatherFlits, inaFlits float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.INAComparison(experiments.Options{Rounds: 1, Meshes: []int{8}})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Scheme {
			case "gather":
				gatherFlits = r.SinkFlitsPerRow
			case "ina":
				inaFlits = r.SinkFlitsPerRow
			}
		}
	}
	b.ReportMetric(gatherFlits, "gather-sinkflits/row")
	b.ReportMetric(inaFlits, "ina-sinkflits/row")
}

// BenchmarkINARowReduction measures one in-network row reduction: the
// microbenchmark version of the INA mechanism, the accumulate twin of
// BenchmarkGatherRowCollection.
func BenchmarkINARowReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := noc.DefaultConfig(8, 8)
		cfg.EnableINA = true
		nw, err := noc.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		dst := nw.RowSinkID(0)
		for col := 1; col < 8; col++ {
			id := nw.Mesh().ID(topology.Coord{Row: 0, Col: col})
			nw.NIC(id).SetReduceDelta(5 * int64(1+col))
			p := flitPayload(uint64(col), id, dst)
			p.Ops = 1
			nw.NIC(id).SubmitReduceOperand(p)
		}
		left := nw.Mesh().ID(topology.Coord{Row: 0, Col: 0})
		own := flitPayload(0, left, dst)
		own.Ops = 1
		nw.NIC(left).SendAccumulate(dst, 0, own)
		if _, err := nw.RunUntilQuiescent(100000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollectives runs a mesh-wide all-reduce per iteration under
// each transport on the 8x8 and 16x16 meshes, reporting the simulated
// round latency and root-port flit traffic — the serialization the tree
// exists to amortize.
func BenchmarkCollectives(b *testing.B) {
	for _, mesh := range []int{8, 16} {
		for _, alg := range []collective.Algorithm{collective.AlgTree, collective.AlgFlat, collective.AlgFused} {
			b.Run(fmt.Sprintf("mesh=%d/alg=%s", mesh, alg), func(b *testing.B) {
				skipLargeMeshInShort(b, mesh)
				var round float64
				var rootFlits uint64
				for i := 0; i < b.N; i++ {
					cfg := noc.DefaultConfig(mesh, mesh)
					if alg == collective.AlgFused {
						cfg.EnableINA = true
					}
					nw, err := noc.New(cfg)
					if err != nil {
						b.Fatal(err)
					}
					ctl, err := collective.NewController(nw, collective.Config{
						Op: collective.AllReduce, Algorithm: alg, Rounds: 2, ComputeLatency: 10,
					})
					if err != nil {
						nw.Close()
						b.Fatal(err)
					}
					res, err := ctl.Run(50_000_000)
					nw.Close()
					if err != nil {
						b.Fatal(err)
					}
					if res.OracleErrors != 0 || res.BroadcastErrors != 0 {
						b.Fatalf("%d oracle / %d broadcast errors", res.OracleErrors, res.BroadcastErrors)
					}
					round = res.RoundCycles.Mean()
					rootFlits = res.RootFlits
				}
				b.ReportMetric(round, "round-cycles")
				b.ReportMetric(float64(rootFlits), "root-flits")
			})
		}
	}
}

// BenchmarkGatherRowCollection measures one row-collection on the NoC: the
// microbenchmark version of the paper's mechanism.
func BenchmarkGatherRowCollection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		nw, err := noc.New(noc.DefaultConfig(8, 8))
		if err != nil {
			b.Fatal(err)
		}
		dst := nw.RowSinkID(0)
		for col := 1; col < 8; col++ {
			id := nw.Mesh().ID(topology.Coord{Row: 0, Col: col})
			nw.NIC(id).SetDelta(5 * int64(1+col))
			nw.NIC(id).SubmitGatherPayload(flitPayload(uint64(col), id, dst))
		}
		left := nw.Mesh().ID(topology.Coord{Row: 0, Col: 0})
		own := flitPayload(0, left, dst)
		nw.NIC(left).SendGather(dst, &own)
		if _, err := nw.RunUntilQuiescent(100000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineAlexNet runs the complete AlexNet layer sequence as a
// cycle-accurate phase DAG on one 8x8 mesh — strict barrier vs
// double-buffered overlap — reporting the simulated makespan of each
// composition mode.
func BenchmarkPipelineAlexNet(b *testing.B) {
	for _, overlap := range []bool{false, true} {
		overlap := overlap
		name := "barrier"
		if overlap {
			name = "overlap"
		}
		b.Run(name, func(b *testing.B) {
			var makespan int64
			for i := 0; i < b.N; i++ {
				nw, err := noc.New(noc.DefaultConfig(8, 8))
				if err != nil {
					b.Fatal(err)
				}
				job, _, err := workload.NewPipelineJob(nw, "alexnet", workload.PipelineConfig{
					Layers:  cnn.AlexNetAllLayers(),
					Scheme:  traffic.CollectGather,
					Rounds:  1,
					Overlap: overlap,
				})
				if err != nil {
					b.Fatal(err)
				}
				s, err := workload.New(nw, []workload.Job{job})
				if err != nil {
					b.Fatal(err)
				}
				res, err := s.Run(10_000_000)
				if err != nil {
					b.Fatal(err)
				}
				makespan = res.Jobs[0].Time()
			}
			b.ReportMetric(float64(makespan), "makespan-cycles")
		})
	}
}

// BenchmarkMultiJob runs four batched two-layer inference jobs plus
// background uniform traffic on one shared 8x8 mesh through the workload
// scheduler, reporting the batch makespan and the max/min job slowdown.
func BenchmarkMultiJob(b *testing.B) {
	var cycles int64
	var slowdown float64
	for i := 0; i < b.N; i++ {
		rep, err := experiments.MultiJob(experiments.Options{Rounds: 1, Jobs: 4})
		if err != nil {
			b.Fatal(err)
		}
		if rep.OracleErrors != 0 {
			b.Fatalf("%d oracle errors", rep.OracleErrors)
		}
		cycles = rep.Cycles
		slowdown = rep.MaxMinSlowdown
	}
	b.ReportMetric(float64(cycles), "batch-cycles")
	b.ReportMetric(slowdown, "maxmin-slowdown")
}
