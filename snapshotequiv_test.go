package gathernoc

import (
	"bytes"
	"fmt"
	"testing"

	"gathernoc/internal/fault"

	"gathernoc/internal/noc"
	"gathernoc/internal/traffic"
)

// snapRunConfig is the shared workload for the snapshot equivalence
// suite: the same seeded uniform-random load the engine equivalence
// tests replay, with the flit-pool leak checker armed.
func snapRunConfig(shards int) (noc.Config, traffic.GeneratorConfig) {
	cfg := noc.DefaultConfig(8, 8)
	cfg.EastSinks = false
	cfg.Shards = shards
	cfg.DebugFlitPool = true
	gcfg := traffic.GeneratorConfig{
		Pattern:       traffic.UniformRandom{Nodes: 64},
		InjectionRate: 0.05,
		PacketFlits:   2,
		Warmup:        200,
		Measure:       1800,
		Seed:          7,
	}
	return cfg, gcfg
}

// runSnapWorkload builds a network + generator pair, steps the engine to
// pauseAt cycles (0 = don't pause), and returns the live pieces so the
// caller can snapshot, fork, or run to completion.
func buildSnapWorkload(t *testing.T, cfg noc.Config, gcfg traffic.GeneratorConfig) (*noc.Network, *traffic.Generator) {
	t.Helper()
	nw, err := noc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := traffic.NewGenerator(nw, gcfg)
	if err != nil {
		t.Fatal(err)
	}
	nw.Engine().AddTicker(gen)
	return nw, gen
}

// finishSnapWorkload drives the pair to completion and returns the
// result, asserting the flit pool drained to zero.
func finishSnapWorkload(t *testing.T, nw *noc.Network, gen *traffic.Generator) *traffic.GeneratorResult {
	t.Helper()
	done := func() bool { return gen.Injected() && nw.Quiescent() }
	cycles, err := nw.Engine().RunUntil(done, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if live := nw.FlitPool().Live(); live != 0 {
		t.Errorf("flit pool leaked %d flits", live)
	}
	return gen.Result(cycles)
}

func sameGeneratorResult(t *testing.T, label string, a, b *traffic.GeneratorResult) {
	t.Helper()
	if a.Injected != b.Injected || a.Received != b.Received || a.Cycles != b.Cycles {
		t.Errorf("%s: accounting diverged: inj=%d/%d recv=%d/%d cyc=%d/%d",
			label, a.Injected, b.Injected, a.Received, b.Received, a.Cycles, b.Cycles)
	}
	if !sameSample(&a.Latency, &b.Latency) {
		t.Errorf("%s: latency sample diverged: %v vs %v", label, &a.Latency, &b.Latency)
	}
	if !sameSample(&a.QueueLatency, &b.QueueLatency) {
		t.Errorf("%s: queue-latency sample diverged", label)
	}
	if !sameSample(&a.NetworkLatency, &b.NetworkLatency) {
		t.Errorf("%s: network-latency sample diverged", label)
	}
	if !sameSample(&a.Hops, &b.Hops) {
		t.Errorf("%s: hops sample diverged", label)
	}
}

// TestSnapshotResumeBitIdentical checkpoints a run mid-flight through
// the full serialize/deserialize path, resumes it on a freshly built
// network, and requires the resumed run's results — packet accounting,
// every latency sample, and the network activity counters — to be
// bit-identical to an uninterrupted run at every shard count.
func TestSnapshotResumeBitIdentical(t *testing.T) {
	for _, shards := range []int{0, 1, 2, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			cfg, gcfg := snapRunConfig(shards)

			// Reference: uninterrupted run.
			refNW, refGen := buildSnapWorkload(t, cfg, gcfg)
			defer refNW.Close()
			refRes := finishSnapWorkload(t, refNW, refGen)
			refAct := refNW.Activity()

			// Interrupted run: stop mid-measurement, checkpoint, discard.
			nw1, gen1 := buildSnapWorkload(t, cfg, gcfg)
			nw1.Engine().Run(600)
			snap, err := nw1.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			gstate := gen1.CaptureState()
			data, err := noc.EncodeSnapshot(snap)
			if err != nil {
				t.Fatal(err)
			}
			nw1.Close()

			// Resume on a fresh network from the serialized bytes.
			decoded, err := noc.DecodeSnapshot(data)
			if err != nil {
				t.Fatal(err)
			}
			nw2, gen2 := buildSnapWorkload(t, cfg, gcfg)
			defer nw2.Close()
			if err := nw2.Restore(decoded); err != nil {
				t.Fatal(err)
			}
			if err := gen2.RestoreState(gstate); err != nil {
				t.Fatal(err)
			}
			if got := nw2.Engine().Cycle(); got != 600 {
				t.Fatalf("restored engine at cycle %d, want 600", got)
			}
			res := finishSnapWorkload(t, nw2, gen2)

			sameGeneratorResult(t, "resume", refRes, res)
			if act := nw2.Activity(); act != refAct {
				t.Errorf("activity diverged:\nref     %+v\nresumed %+v", refAct, act)
			}
		})
	}
}

// TestSnapshotCrossShardRestore captures on a sequential network and
// resumes on a 4-shard one: Shards is excluded from the canonical config
// hash because schedules are bit-identical at every shard count, and the
// snapshot layer must honor that equivalence end to end.
func TestSnapshotCrossShardRestore(t *testing.T) {
	seqCfg, gcfg := snapRunConfig(0)
	refNW, refGen := buildSnapWorkload(t, seqCfg, gcfg)
	defer refNW.Close()
	refRes := finishSnapWorkload(t, refNW, refGen)

	nw1, gen1 := buildSnapWorkload(t, seqCfg, gcfg)
	nw1.Engine().Run(600)
	snap, err := nw1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	gstate := gen1.CaptureState()
	nw1.Close()

	shardCfg, _ := snapRunConfig(4)
	nw2, gen2 := buildSnapWorkload(t, shardCfg, gcfg)
	defer nw2.Close()
	if err := nw2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if err := gen2.RestoreState(gstate); err != nil {
		t.Fatal(err)
	}
	res := finishSnapWorkload(t, nw2, gen2)
	sameGeneratorResult(t, "cross-shard", refRes, res)
}

// TestForkDivergenceIndependence forks a network mid-run and drives the
// original and the fork to completion independently. Both must match the
// uninterrupted reference bit for bit, and both pools must drain to zero
// — any shared mutable state (an aliased destination set, a shared
// sample chunk, a flit owned by the wrong pool) breaks one or the other.
func TestForkDivergenceIndependence(t *testing.T) {
	cfg, gcfg := snapRunConfig(0)

	refNW, refGen := buildSnapWorkload(t, cfg, gcfg)
	defer refNW.Close()
	refRes := finishSnapWorkload(t, refNW, refGen)

	nw1, gen1 := buildSnapWorkload(t, cfg, gcfg)
	defer nw1.Close()
	nw1.Engine().Run(600)
	gstate := gen1.CaptureState()
	fork, err := nw1.Fork()
	if err != nil {
		t.Fatal(err)
	}
	defer fork.Close()

	// Original continues first, fork after — if the fork aliased any of
	// the original's state, the original's extra 1000+ cycles of mutation
	// corrupt the fork's replay.
	res1 := finishSnapWorkload(t, nw1, gen1)

	genF, err := traffic.NewGenerator(fork, gcfg)
	if err != nil {
		t.Fatal(err)
	}
	fork.Engine().AddTicker(genF)
	if err := genF.RestoreState(gstate); err != nil {
		t.Fatal(err)
	}
	resF := finishSnapWorkload(t, fork, genF)

	sameGeneratorResult(t, "original", refRes, res1)
	sameGeneratorResult(t, "fork", refRes, resF)
	if a, b := nw1.Activity(), fork.Activity(); a != b {
		t.Errorf("activity diverged between original and fork:\noriginal %+v\nfork     %+v", a, b)
	}
}

// TestSnapshotRejectsMismatchedConfig proves the config-hash guard: a
// snapshot must not restore onto a semantically different network.
func TestSnapshotRejectsMismatchedConfig(t *testing.T) {
	cfg, _ := snapRunConfig(0)
	nw, err := noc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	snap, err := nw.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	other := cfg
	other.Router.BufferDepth++
	nw2, err := noc.New(other)
	if err != nil {
		t.Fatal(err)
	}
	defer nw2.Close()
	if err := nw2.Restore(snap); err == nil {
		t.Fatal("restore onto a different config succeeded, want hash-mismatch error")
	}
}

// TestSnapshotResumeWithFaults is the reliability variant of the resume
// contract: with seeded fault injection active, the doomed-packet sets
// and drop/corrupt counters ride the snapshot, so a resumed run replays
// the exact same loss schedule and retransmissions as the uninterrupted
// one.
func TestSnapshotResumeWithFaults(t *testing.T) {
	cfg, gcfg := snapRunConfig(0)
	cfg.Faults = &fault.Config{Seed: 21, DropRate: 0.05, CorruptRate: 0.02}

	refNW, refGen := buildSnapWorkload(t, cfg, gcfg)
	defer refNW.Close()
	refRes := finishSnapWorkload(t, refNW, refGen)
	refAct := refNW.Activity()

	nw1, gen1 := buildSnapWorkload(t, cfg, gcfg)
	nw1.Engine().Run(600)
	snap, err := nw1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	gstate := gen1.CaptureState()
	data, err := noc.EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	nw1.Close()

	decoded, err := noc.DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	nw2, gen2 := buildSnapWorkload(t, cfg, gcfg)
	defer nw2.Close()
	if err := nw2.Restore(decoded); err != nil {
		t.Fatal(err)
	}
	if err := gen2.RestoreState(gstate); err != nil {
		t.Fatal(err)
	}
	res := finishSnapWorkload(t, nw2, gen2)

	sameGeneratorResult(t, "faulty resume", refRes, res)
	if act := nw2.Activity(); act != refAct {
		t.Errorf("activity diverged under faults:\nref     %+v\nresumed %+v", refAct, act)
	}
}

// TestSnapshotRoundTripMidCollection freezes a gather (and an INA)
// collection mid-round — station entries queued, VC-held entry pointers
// live — restores onto a fresh network and requires the re-captured
// snapshot to serialize byte-identically: capture and restore are exact
// inverses even for the protocol state the synthetic workloads never
// exercise.
func TestSnapshotRoundTripMidCollection(t *testing.T) {
	for _, tc := range []struct {
		name   string
		scheme traffic.CollectScheme
	}{
		{"gather", traffic.CollectGather},
		{"ina", traffic.CollectINA},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := noc.DefaultConfig(4, 4)
			cfg.DebugFlitPool = true
			if tc.scheme == traffic.CollectINA {
				cfg.EnableINA = true
			}
			nw, err := noc.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer nw.Close()
			ctrl, err := traffic.NewAccumulationController(nw, traffic.AccumulationConfig{
				Scheme: tc.scheme, Rounds: 2, ComputeLatency: 20,
			})
			if err != nil {
				t.Fatal(err)
			}
			eng := nw.Engine()
			eng.AddTicker(ctrl)

			// Step cycle by cycle until a station holds an in-flight entry.
			var snap *noc.Snapshot
			for !ctrl.Done() && eng.Cycle() < 10_000 {
				eng.Run(1)
				s, err := nw.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				entries := 0
				for _, rs := range s.Routers {
					entries += len(rs.GatherStation) + len(rs.ReduceStation)
				}
				if entries > 0 {
					snap = s
					break
				}
			}
			if snap == nil {
				t.Fatal("no in-flight station entries observed; workload too small")
			}
			data1, err := noc.EncodeSnapshot(snap)
			if err != nil {
				t.Fatal(err)
			}

			nw2, err := noc.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer nw2.Close()
			if err := nw2.Restore(snap); err != nil {
				t.Fatal(err)
			}
			snap2, err := nw2.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			data2, err := noc.EncodeSnapshot(snap2)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data1, data2) {
				t.Errorf("restore is not an exact inverse of capture:\n%s\nvs\n%s", data1, data2)
			}
		})
	}
}
