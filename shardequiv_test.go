package gathernoc

import (
	"fmt"
	"runtime"
	"testing"

	"gathernoc/internal/cnn"
	"gathernoc/internal/core"
	"gathernoc/internal/noc"
	"gathernoc/internal/stats"
	"gathernoc/internal/systolic"
	"gathernoc/internal/traffic"
	"gathernoc/internal/workload"
)

// shardMatrix is the shard-count grid the equivalence tests sweep,
// NumCPU included so CI exercises whatever parallelism the host has.
func shardMatrix() []int {
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

// TestShardedEngineEquivalenceSyntheticTraffic is the bit-identity proof
// for the sharded engine on synthetic traffic: for every shard count the
// row-partitioned two-phase engine must reproduce the sequential engine's
// packet accounting, latency statistics and network activity exactly,
// from the low operating point through saturation. Any divergence means a
// parallel phase touched state it did not own, or serial-phase work ran
// out of canonical order (DESIGN.md §9).
func TestShardedEngineEquivalenceSyntheticTraffic(t *testing.T) {
	for _, rate := range []float64{0.005, 0.30} {
		rate := rate
		t.Run(ratename(rate), func(t *testing.T) {
			type outcome struct {
				res      *traffic.GeneratorResult
				activity noc.Activity
			}
			run := func(shards int) outcome {
				t.Helper()
				cfg := noc.DefaultConfig(8, 8)
				cfg.EastSinks = false
				cfg.Shards = shards
				nw, err := noc.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer nw.Close()
				gen, err := traffic.NewGenerator(nw, traffic.GeneratorConfig{
					Pattern:       traffic.UniformRandom{Nodes: 64},
					InjectionRate: rate,
					PacketFlits:   2,
					Warmup:        200,
					Measure:       1800,
					Seed:          7,
				})
				if err != nil {
					t.Fatal(err)
				}
				res, err := gen.Run(1_000_000)
				if err != nil {
					t.Fatal(err)
				}
				return outcome{res: res, activity: nw.Activity()}
			}
			seq := run(0)
			for _, shards := range shardMatrix() {
				shards := shards
				t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
					got := run(shards)
					if got.activity != seq.activity {
						t.Errorf("activity diverged:\nsequential %+v\nsharded    %+v", seq.activity, got.activity)
					}
					s, g := seq.res, got.res
					if s.Injected != g.Injected || s.Received != g.Received || s.Cycles != g.Cycles {
						t.Errorf("accounting diverged: sequential inj=%d recv=%d cyc=%d, sharded inj=%d recv=%d cyc=%d",
							s.Injected, s.Received, s.Cycles, g.Injected, g.Received, g.Cycles)
					}
					for _, c := range []struct {
						name string
						seq  *stats.Sample
						got  *stats.Sample
					}{
						{"latency", &s.Latency, &g.Latency},
						{"queue-latency", &s.QueueLatency, &g.QueueLatency},
						{"network-latency", &s.NetworkLatency, &g.NetworkLatency},
						{"hops", &s.Hops, &g.Hops},
					} {
						if !sameSample(c.seq, c.got) {
							t.Errorf("%s sample diverged: sequential %s, sharded %s", c.name, c.seq, c.got)
						}
					}
				})
			}
		})
	}
}

// TestShardedEngineEquivalenceScheduler drives the workload scheduler —
// the serial sub-phase's main customer, with its per-cycle tag clearing
// and multi-job admission — on a sharded fabric and requires the
// sequential schedule bit for bit: per-job timelines, latency samples and
// total activity.
func TestShardedEngineEquivalenceScheduler(t *testing.T) {
	run := func(shards int) (*workload.Result, noc.Activity) {
		t.Helper()
		cfg := noc.DefaultConfig(8, 8)
		cfg.EastSinks = false
		cfg.Shards = shards
		nw, err := noc.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer nw.Close()
		jobs := make([]workload.Job, 3)
		for i := range jobs {
			gen, err := traffic.NewGeneratorDriver(nw, traffic.GeneratorConfig{
				Pattern:       traffic.UniformRandom{Nodes: 64},
				InjectionRate: 0.02,
				PacketFlits:   2,
				Warmup:        100,
				Measure:       900,
				Seed:          int64(i + 1),
			})
			if err != nil {
				t.Fatal(err)
			}
			jobs[i] = workload.Job{
				Name:   fmt.Sprintf("soak%d", i),
				Phases: []workload.Phase{{Name: "uniform", Driver: gen}},
			}
		}
		s, err := workload.New(nw, jobs)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return res, nw.Activity()
	}
	seqRes, seqAct := run(0)
	for _, shards := range shardMatrix() {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			res, act := run(shards)
			if act != seqAct {
				t.Errorf("activity diverged:\nsequential %+v\nsharded    %+v", seqAct, act)
			}
			if res.Cycles != seqRes.Cycles {
				t.Errorf("run length diverged: sequential %d, sharded %d", seqRes.Cycles, res.Cycles)
			}
			for j := range seqRes.Jobs {
				sj, gj := &seqRes.Jobs[j], &res.Jobs[j]
				if sj.StartCycle != gj.StartCycle || sj.DrainedCycle != gj.DrainedCycle ||
					sj.PacketsEjected != gj.PacketsEjected {
					t.Errorf("job %s diverged: sequential start=%d done=%d pkts=%d, sharded start=%d done=%d pkts=%d",
						sj.Name, sj.StartCycle, sj.DrainedCycle, sj.PacketsEjected,
						gj.StartCycle, gj.DrainedCycle, gj.PacketsEjected)
				}
				if !sameSample(sj.Latency, gj.Latency) {
					t.Errorf("job %s latency diverged: sequential %s, sharded %s", sj.Name, sj.Latency, gj.Latency)
				}
			}
		})
	}
}

// TestShardedEngineEquivalenceLayers replays the paper's CNN collection
// workloads — repetitive unicast and gather mode, with their east-edge
// sinks, gather stations and piggybacked acks — on the sharded engine and
// requires the golden-pinned schedule bit for bit at every shard count.
func TestShardedEngineEquivalenceLayers(t *testing.T) {
	layer, ok := cnn.LayerByName(cnn.AlexNetConvLayers(), "Conv1")
	if !ok {
		t.Fatal("Conv1 missing")
	}
	for _, mode := range []systolic.Mode{systolic.RepetitiveUnicast, systolic.GatherMode} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			run := func(shards int) *core.LayerReport {
				t.Helper()
				rep, err := core.RunLayer(8, 8, layer, mode, core.Options{
					Rounds:        1,
					MutateNetwork: func(c *noc.Config) { c.Shards = shards },
				})
				if err != nil {
					t.Fatal(err)
				}
				return rep
			}
			seq := run(0)
			for _, shards := range shardMatrix() {
				shards := shards
				t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
					got := run(shards)
					if seq.Events != got.Events {
						t.Errorf("activity diverged:\nsequential %+v\nsharded    %+v", seq.Events, got.Events)
					}
					sr, gr := seq.Result, got.Result
					if sr.TotalCycles != gr.TotalCycles || sr.MeasuredCycles != gr.MeasuredCycles {
						t.Errorf("cycles diverged: sequential total=%d measured=%d, sharded total=%d measured=%d",
							sr.TotalCycles, sr.MeasuredCycles, gr.TotalCycles, gr.MeasuredCycles)
					}
					if sr.RoundCycles.Mean() != gr.RoundCycles.Mean() ||
						sr.CollectionCycles.Mean() != gr.CollectionCycles.Mean() {
						t.Errorf("round latencies diverged: sequential %v/%v, sharded %v/%v",
							sr.RoundCycles.Mean(), sr.CollectionCycles.Mean(),
							gr.RoundCycles.Mean(), gr.CollectionCycles.Mean())
					}
					if sr.SelfInitiatedGathers != gr.SelfInitiatedGathers || sr.PiggybackAcks != gr.PiggybackAcks {
						t.Errorf("gather protocol diverged: sequential self=%d acks=%d, sharded self=%d acks=%d",
							sr.SelfInitiatedGathers, sr.PiggybackAcks,
							gr.SelfInitiatedGathers, gr.PiggybackAcks)
					}
					if sr.PayloadErrors != 0 || gr.PayloadErrors != 0 {
						t.Errorf("payload errors: sequential %d, sharded %d", sr.PayloadErrors, gr.PayloadErrors)
					}
				})
			}
		})
	}
}
